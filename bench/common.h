// Shared machinery for the experiment harnesses (one binary per paper
// table; see DESIGN.md §3). A BenchEnv owns one corpus — generator,
// repository, queries, tokenization, cell-vector store, subword embedder —
// and method runners produce per-query rankings plus timing breakdowns
// that the printers format like the paper's tables.
#ifndef DEEPJOIN_BENCH_COMMON_H_
#define DEEPJOIN_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/deepjoin.h"
#include "eval/metrics.h"
#include "eval/oracle.h"
#include "join/josie.h"
#include "join/lsh_ensemble.h"
#include "join/pexeso.h"
#include "lake/generator.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace deepjoin {
namespace bench {

/// Scaled-down defaults (the paper uses 30K training / 1M repository
/// columns on a GPU server; see DESIGN.md §1 "Scale defaults").
struct BenchConfig {
  std::string corpus = "webtable";
  size_t repo_size = 3000;
  size_t sample_size = 350;   ///< training sample (the "30K" analogue)
  size_t num_queries = 24;
  size_t k_max = 50;
  int ft_dim = 24;            ///< subword/cell embedding dim
  int steps = 90;             ///< fine-tuning steps
  int batch = 16;
  int seq_len = 64;
  double shuffle_rate = 0.2;  ///< paper-best for Webtable equi (Table 11)
  float tau = 0.9f;
  u64 seed = 1;

  static BenchConfig FromFlags(const Flags& flags);
};

enum class Method {
  kLshEnsemble,
  kJosie,
  kFastText,
  kRawDistil,   // "BERT" row: PLM without fine-tuning
  kRawMPNet,    // "MPNet" row
  kTabert,
  kMlp,
  kDeepJoinDistil,
  kDeepJoinMPNet,
  kPexeso,
};
const char* MethodName(Method m);

/// Per-method evaluation output.
struct MethodResult {
  std::string name;
  /// rankings[q] = top-k_max repository ids, best first.
  std::vector<std::vector<u32>> rankings;
  double mean_encode_ms = 0.0;
  double mean_total_ms = 0.0;
};

class BenchEnv {
 public:
  explicit BenchEnv(const BenchConfig& config);

  /// Takes externally built corpus pieces (the column-size strata of
  /// Tables 8 and 15 filter the repository before evaluation).
  BenchEnv(const BenchConfig& config, lake::Repository repo,
           std::vector<lake::Column> sample,
           std::vector<lake::Column> queries);

  const BenchConfig& config() const { return config_; }
  lake::LakeGenerator& generator() { return *gen_; }
  const lake::Repository& repo() const { return repo_; }
  const std::vector<lake::Column>& queries() const { return queries_; }
  const join::TokenizedRepository& tok() const { return *tok_; }
  const FastTextEmbedder& ft() const { return *ft_; }
  const std::vector<lake::Column>& sample() const { return sample_; }

  /// Cell-vector store (built lazily; only semantic benches pay for it).
  const join::ColumnVectorStore& store();

  /// Exact equi top-k ground truth per query (k = k_max).
  const std::vector<std::vector<Scored>>& ExactEqui();
  /// Exact semantic top-k ground truth per query at `tau`.
  std::vector<std::vector<Scored>> ExactSemantic(float tau);

  /// True equi joinability of repo column `id` to query `q`.
  double EquiJn(size_t q, u32 id) const;
  /// True semantic joinability at `tau`.
  double SemanticJn(size_t q, u32 id, float tau);

  /// Per-query flat cell vectors (for PEXESO / semantic ground truth).
  const std::vector<float>& QueryVectors(size_t q);

  // ---- method runners ----

  /// Fine-tunes DeepJoin with the given knobs and evaluates it. The
  /// returned DeepJoin can be reused (e.g., Table 14's k sweep).
  struct DeepJoinRun {
    MethodResult result;
    std::unique_ptr<core::DeepJoin> model;
  };
  DeepJoinRun RunDeepJoin(core::PlmKind kind, core::JoinType join_type,
                          core::TransformOption transform,
                          double shuffle_rate, bool quiet = false);
  DeepJoinRun RunDeepJoin(core::JoinType join_type) {
    return RunDeepJoin(core::PlmKind::kMPNetSim, join_type,
                       core::TransformOption::kTitleColnameStatCol,
                       config_.shuffle_rate);
  }

  MethodResult RunFastText();
  MethodResult RunRawPlm(core::PlmKind kind);  // no fine-tuning
  MethodResult RunTabert();
  MethodResult RunMlp(core::JoinType join_type);
  MethodResult RunLshEnsemble();
  MethodResult RunJosie();
  MethodResult RunPexeso(float tau);

  /// Evaluates any embedding encoder through the shared ANNS scheme.
  MethodResult RunEncoder(core::ColumnEncoder* encoder,
                          const std::string& name);

 private:
  core::TrainingData PrepareData(core::JoinType join_type,
                                 double shuffle_rate);
  core::TrainingDataConfig TrainingConfig(core::JoinType join_type,
                                          double shuffle_rate) const;

  BenchConfig config_;
  std::unique_ptr<lake::LakeGenerator> gen_;
  lake::Repository repo_;
  std::vector<lake::Column> sample_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<join::TokenizedRepository> tok_;
  std::unique_ptr<FastTextEmbedder> ft_;
  std::unique_ptr<join::ColumnVectorStore> store_;
  std::vector<std::vector<Scored>> exact_equi_;
  std::vector<std::vector<float>> query_vectors_;
};

/// Prefix of a ranking (model top-k is the first k of the k_max ranking).
std::vector<u32> TopIds(const std::vector<u32>& ranking, size_t k);
std::vector<u32> TopIds(const std::vector<Scored>& scored, size_t k);

/// Prints a paper-style Precision@k / NDCG@k grid for k in `ks`.
/// `jn_of(q, id)` returns the true joinability used by NDCG.
void PrintAccuracyTable(
    const std::string& title, const std::vector<MethodResult>& methods,
    const std::vector<std::vector<Scored>>& exact,
    const std::function<double(size_t, u32)>& jn_of,
    const std::vector<size_t>& ks = {10, 20, 30, 40, 50});

/// Mean Precision@k over queries.
double MeanPrecision(const MethodResult& method,
                     const std::vector<std::vector<Scored>>& exact,
                     size_t k);
/// Mean NDCG@k over queries.
double MeanNdcg(const MethodResult& method,
                const std::vector<std::vector<Scored>>& exact, size_t k,
                const std::function<double(size_t, u32)>& jn_of);

}  // namespace bench
}  // namespace deepjoin

#endif  // DEEPJOIN_BENCH_COMMON_H_
