// Table 15: mean processing time per query by column-size group
// (Webtable, k = 10). Each group indexes the same number of target
// columns to isolate the column-size effect, as the paper does with its
// 300K-per-group sample. Expected shape: JOSIE and PEXESO grow markedly
// with column size; embedding methods grow only through query encoding.
#include <thread>

#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

namespace {

struct Group {
  const char* label;
  size_t lo;
  size_t hi;
};
constexpr Group kGroups[] = {
    {"5-10", 5, 10}, {"11-50", 11, 50}, {">50", 51, 100000}};

struct Row {
  std::string method;
  std::vector<double> encode_ms;  // per group; empty = n/a
  std::vector<double> total_ms;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  BenchConfig base = BenchConfig::FromFlags(flags);
  base.corpus = "webtable";
  if (!flags.Has("steps")) base.steps = 30;  // latency-only bench
  const size_t group_repo = base.repo_size / 2;
  const size_t nq = std::min<size_t>(base.num_queries, 15);
  const size_t k = 10;

  std::vector<Row> equi_rows(5), sem_rows(3);
  equi_rows[0].method = "LSH Ensemble";
  equi_rows[1].method = "JOSIE";
  equi_rows[2].method = "fastText";
  equi_rows[3].method = "DeepJoin (CPU)";
  equi_rows[4].method = "DeepJoin (batched)";
  sem_rows[0].method = "PEXESO";
  sem_rows[1].method = "DeepJoin (CPU)";
  sem_rows[2].method = "DeepJoin (batched)";

  for (const Group& g : kGroups) {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(base.seed));
    auto repo = gen.GenerateRepositoryInSizeRange(group_repo, g.lo, g.hi);
    auto sample = gen.GenerateQueries(base.sample_size, 0x5A17);
    auto queries = gen.GenerateQueriesInSizeRange(nq, g.lo, g.hi, 0xC0FE);
    std::printf("[group %s] repo=%zu queries=%zu\n", g.label, repo.size(),
                queries.size());
    BenchEnv env(base, std::move(repo), std::move(sample),
                 std::move(queries));
    auto dj_equi = env.RunDeepJoin(core::JoinType::kEqui);
    auto dj_sem = env.RunDeepJoin(core::JoinType::kSemantic);

    // Exact equi methods.
    std::vector<join::TokenSet> qts;
    for (const auto& q : env.queries()) {
      qts.push_back(env.tok().EncodeQuery(q));
    }
    join::LshEnsembleIndex lsh(&env.tok(), join::LshEnsembleConfig{});
    join::JosieIndex josie(&env.tok());
    {
      TimeAccumulator a;
      for (const auto& qt : qts) {
        WallTimer t;
        lsh.SearchTopK(qt, k);
        a.Add(t.ElapsedSeconds());
      }
      equi_rows[0].total_ms.push_back(a.MeanMillis());
    }
    {
      TimeAccumulator a;
      for (const auto& qt : qts) {
        WallTimer t;
        josie.SearchTopK(qt, k);
        a.Add(t.ElapsedSeconds());
      }
      equi_rows[1].total_ms.push_back(a.MeanMillis());
    }

    // Embedding methods through the shared searcher.
    core::TransformConfig ft_tc;
    ft_tc.option = core::TransformOption::kCol;
    ft_tc.cell_budget = 0;
    core::FastTextColumnEncoder ft_encoder(&env.ft(), ft_tc);
    auto run_encoder = [&](core::ColumnEncoder* enc, Row& row,
                           bool batched) {
      core::SearcherConfig sc;
      core::EmbeddingSearcher searcher(enc, sc);
      DJ_CHECK(searcher.BuildIndex(env.repo()).ok());
      if (batched) {
        const size_t threads =
            std::max(2u, std::thread::hardware_concurrency());
        ThreadPool pool(threads);
        auto outs = searcher.SearchBatch(env.queries(), {.k = k}, &pool);
        row.encode_ms.push_back(outs.front().stats.SpanMs("searcher.encode"));
        row.total_ms.push_back(outs.front().stats.total_ms());
      } else {
        TimeAccumulator enc_acc, total_acc;
        for (const auto& q : env.queries()) {
          auto out = searcher.Search(q, {.k = k});
          enc_acc.Add(out.stats.SpanMs("searcher.encode") / 1e3);
          total_acc.Add(out.stats.total_ms() / 1e3);
        }
        row.encode_ms.push_back(enc_acc.MeanMillis());
        row.total_ms.push_back(total_acc.MeanMillis());
      }
    };
    run_encoder(&ft_encoder, equi_rows[2], false);
    run_encoder(&dj_equi.model->encoder(), equi_rows[3], false);
    run_encoder(&dj_equi.model->encoder(), equi_rows[4], true);

    // Semantic methods.
    join::PexesoConfig pc;
    pc.tau = base.tau;
    join::PexesoIndex pexeso(&env.store(), pc);
    {
      TimeAccumulator a;
      for (size_t q = 0; q < env.queries().size(); ++q) {
        const auto& qv = env.QueryVectors(q);
        WallTimer t;
        pexeso.SearchTopK(qv.data(), env.queries()[q].cells.size(), k);
        a.Add(t.ElapsedSeconds());
      }
      sem_rows[0].total_ms.push_back(a.MeanMillis());
    }
    run_encoder(&dj_sem.model->encoder(), sem_rows[1], false);
    run_encoder(&dj_sem.model->encoder(), sem_rows[2], true);
  }

  auto print = [&](const std::string& title, const std::vector<Row>& rows) {
    TablePrinter printer({"Method", "enc (5-10)", "enc (11-50)", "enc (>50)",
                          "total (5-10)", "total (11-50)", "total (>50)"});
    for (const auto& r : rows) {
      std::vector<std::string> cells = {r.method};
      for (size_t g = 0; g < 3; ++g) {
        cells.push_back(g < r.encode_ms.size()
                            ? FormatDouble(r.encode_ms[g], 2)
                            : "-");
      }
      for (size_t g = 0; g < 3; ++g) {
        cells.push_back(FormatDouble(r.total_ms[g], 2));
      }
      printer.AddRow(std::move(cells));
    }
    printer.Print(title);
  };
  print("Table 15 (Webtable, equi-joins): time per query vs column size (ms)",
        equi_rows);
  print(
      "Table 15 (Webtable, semantic joins): time per query vs column size "
      "(ms)",
      sem_rows);
  return 0;
}
