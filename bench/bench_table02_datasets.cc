// Table 2: dataset statistics — |X|, max/min/avg column size, and the
// number of positive training examples produced by the self-join for both
// join types, for both corpora.
#include "bench/common.h"

#include "core/training_data.h"

using namespace deepjoin;
using namespace deepjoin::bench;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);

  TablePrinter printer({"Dataset", "|X|", "max |X|", "min |X|", "avg |X|",
                        "# equi positives", "# semantic positives"});
  for (const std::string corpus : {"webtable", "wikitable"}) {
    BenchConfig cfg = BenchConfig::FromFlags(flags);
    cfg.corpus = corpus;
    BenchEnv env(cfg);

    core::TrainingDataConfig tc;
    tc.shuffle_rate = 0.0;
    tc.max_pairs = 1u << 30;  // count everything
    tc.join_type = core::JoinType::kEqui;
    const auto equi =
        core::PrepareTrainingData(env.sample(), &env.ft(), tc);
    tc.join_type = core::JoinType::kSemantic;
    tc.tau = cfg.tau;
    const auto semantic =
        core::PrepareTrainingData(env.sample(), &env.ft(), tc);

    // Stats over the *training* sample mirror Table 2's *-train rows; the
    // repository row mirrors *-test.
    const auto stats = env.repo().ComputeStats();
    printer.AddRow({corpus + "-train (sample)",
                    std::to_string(env.sample().size()), "-", "-", "-",
                    std::to_string(equi.num_base),
                    std::to_string(semantic.num_base)});
    printer.AddRow({corpus + "-test (repository)",
                    std::to_string(stats.num_columns),
                    std::to_string(stats.max_size),
                    std::to_string(stats.min_size),
                    FormatDouble(stats.avg_size, 2), "N/A", "N/A"});
  }
  printer.Print("Table 2: dataset statistics (scaled; see DESIGN.md)");
  return 0;
}
