// Table 9: ablation of the column-to-text transformation options (Table 1)
// for equi-joins. One DeepJoin-MPNetSim fine-tune per option. An extra
// "naive-truncation" row ablates the frequency-based cell selection of
// §3.2 (a design choice DESIGN.md calls out).
#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const std::string which = flags.GetString("corpus", "webtable");
  for (const std::string corpus : {"webtable", "wikitable"}) {
    if (which != "both" && which != corpus) continue;
    BenchConfig cfg = BenchConfig::FromFlags(flags);
    cfg.corpus = corpus;
    // Ablations train many models; default to a lighter profile.
    if (!flags.Has("steps")) cfg.steps = 50;
    BenchEnv env(cfg);

    std::vector<MethodResult> methods;
    for (core::TransformOption opt : core::AllTransformOptions()) {
      auto run = env.RunDeepJoin(core::PlmKind::kMPNetSim,
                                 core::JoinType::kEqui, opt,
                                 cfg.shuffle_rate);
      run.result.name = core::TransformOptionName(opt);
      methods.push_back(std::move(run.result));
    }
    auto jn = [&env](size_t q, u32 id) { return env.EquiJn(q, id); };
    PrintAccuracyTable(
        "Table 9 (" + corpus + "): column-to-text transformation, equi-joins",
        methods, env.ExactEqui(), jn);
  }
  return 0;
}
