// Shared driver for Tables 4-6 (semantic-join accuracy at tau = 0.9 / 0.8
// / 0.7, labelled by the exact semantic solution as in the paper).
#ifndef DEEPJOIN_BENCH_SEMANTIC_ACCURACY_H_
#define DEEPJOIN_BENCH_SEMANTIC_ACCURACY_H_

#include "bench/common.h"

namespace deepjoin {
namespace bench {

/// Runs the semantic accuracy experiment for one tau; `table_no` only
/// affects the printed title. Honors --corpus=webtable|wikitable|both.
int RunSemanticAccuracyMain(int argc, char** argv, float default_tau,
                            int table_no,
                            const char* default_corpus = "both");

}  // namespace bench
}  // namespace deepjoin

#endif  // DEEPJOIN_BENCH_SEMANTIC_ACCURACY_H_
