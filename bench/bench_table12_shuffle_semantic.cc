// Table 12: ablation of the cell-shuffle data augmentation for semantic
// joins.
#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const std::string which = flags.GetString("corpus", "webtable");
  for (const std::string corpus : {"webtable", "wikitable"}) {
    if (which != "both" && which != corpus) continue;
    BenchConfig cfg = BenchConfig::FromFlags(flags);
    cfg.corpus = corpus;
    // Ablations train many models; default to a lighter profile.
    if (!flags.Has("steps")) cfg.steps = 50;
    BenchEnv env(cfg);
    auto exact = env.ExactSemantic(cfg.tau);

    std::vector<MethodResult> methods;
    for (double rate : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
      auto run = env.RunDeepJoin(core::PlmKind::kMPNetSim,
                                 core::JoinType::kSemantic,
                                 core::TransformOption::kTitleColnameStatCol,
                                 rate);
      run.result.name =
          rate == 0.0 ? "no-shuffle" : FormatDouble(rate, 1);
      methods.push_back(std::move(run.result));
    }
    auto jn = [&env, &cfg](size_t q, u32 id) {
      return env.SemanticJn(q, id, cfg.tau);
    };
    PrintAccuracyTable("Table 12 (" + corpus +
                           "): cell-shuffle augmentation, semantic joins",
                       methods, exact, jn);
  }
  return 0;
}
