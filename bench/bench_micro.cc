// Micro-benchmarks (google-benchmark) over the library's hot kernels:
// column encoding, ANN search, exact search, sketching and training steps.
// These complement the table harnesses: they isolate per-component cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace deepjoin {
namespace {

using bench::BenchConfig;
using bench::BenchEnv;

BenchEnv& SharedEnv() {
  static BenchEnv* env = [] {
    BenchConfig cfg;
    cfg.repo_size = 2000;
    cfg.sample_size = 200;
    cfg.num_queries = 10;
    return std::make_unique<BenchEnv>(cfg).release();
  }();
  return *env;
}

void BM_FastTextCellEmbed(benchmark::State& state) {
  auto& env = SharedEnv();
  std::vector<float> out(env.ft().dim());
  size_t i = 0;
  const auto& cells = env.repo().column(0).cells;
  for (auto _ : state) {
    env.ft().TextVectorInto(cells[i++ % cells.size()], out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FastTextCellEmbed);

void BM_TransformColumn(benchmark::State& state) {
  auto& env = SharedEnv();
  core::TransformConfig tc;
  tc.dict = &env.tok().dict();
  size_t i = 0;
  for (auto _ : state) {
    auto text = core::TransformColumn(
        env.repo().column(static_cast<u32>(i++ % env.repo().size())), tc);
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_TransformColumn);

void BM_PlmEncodeColumn(benchmark::State& state) {
  auto& env = SharedEnv();
  static core::PlmColumnEncoder* encoder = [&] {
    core::PlmEncoderConfig pc;
    pc.kind = core::PlmKind::kMPNetSim;
    return std::make_unique<core::PlmColumnEncoder>(pc, env.sample(),
                                                    env.ft()).release();
  }();
  size_t i = 0;
  for (auto _ : state) {
    auto v = encoder->Encode(
        env.repo().column(static_cast<u32>(i++ % env.repo().size())));
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_PlmEncodeColumn);

void BM_HnswSearch(benchmark::State& state) {
  const int dim = 32;
  // Deliberately leaked so teardown stays off the benchmark clock.
  static ann::HnswIndex* index = [&] {
    ann::HnswConfig hc;
    hc.dim = dim;
    auto idx = std::make_unique<ann::HnswIndex>(hc);
    Rng rng(1);
    std::vector<float> v(dim);
    for (int i = 0; i < 20000; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Normal());
      idx->Add(v.data());
    }
    return idx.release();
  }();
  Rng rng(2);
  std::vector<float> q(dim);
  for (auto _ : state) {
    for (auto& x : q) x = static_cast<float>(rng.Normal());
    auto hits = index->Search(q.data(), static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(hits.data());
  }
}
BENCHMARK(BM_HnswSearch)->Arg(10)->Arg(50);

void BM_JosieSearch(benchmark::State& state) {
  auto& env = SharedEnv();
  static join::JosieIndex* index =
      std::make_unique<join::JosieIndex>(&env.tok()).release();
  std::vector<join::TokenSet> qts;
  for (const auto& q : env.queries()) qts.push_back(env.tok().EncodeQuery(q));
  size_t i = 0;
  for (auto _ : state) {
    auto hits = index->SearchTopK(qts[i++ % qts.size()], 10);
    benchmark::DoNotOptimize(hits.data());
  }
}
BENCHMARK(BM_JosieSearch);

void BM_MinHashSignature(benchmark::State& state) {
  auto& env = SharedEnv();
  const auto& tokens = env.tok().columns()[0].tokens;
  for (auto _ : state) {
    auto sig = join::MinHashSignature::Compute(tokens, 128);
    benchmark::DoNotOptimize(sig.values().data());
  }
}
BENCHMARK(BM_MinHashSignature);

void BM_SemanticJoinability(benchmark::State& state) {
  auto& env = SharedEnv();
  auto& store = const_cast<BenchEnv&>(env).store();
  const auto& qv = const_cast<BenchEnv&>(env).QueryVectors(0);
  const size_t nq = env.queries()[0].cells.size();
  u32 c = 0;
  for (auto _ : state) {
    const u32 id = c++ % static_cast<u32>(store.num_columns());
    benchmark::DoNotOptimize(join::SemanticJoinability(
        qv.data(), nq, store.column_vectors(id), store.column_count(id),
        store.dim(), 0.9f));
  }
}
BENCHMARK(BM_SemanticJoinability);

void BM_FineTuneStep(benchmark::State& state) {
  auto& env = SharedEnv();
  static core::PlmColumnEncoder* encoder = [&] {
    core::PlmEncoderConfig pc;
    pc.kind = core::PlmKind::kMPNetSim;
    return std::make_unique<core::PlmColumnEncoder>(pc, env.sample(),
                                                    env.ft()).release();
  }();
  nn::AdamW opt(encoder->transformer().params().params(), nn::AdamConfig{});
  const int batch = static_cast<int>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    std::vector<nn::VarPtr> xs, ys;
    for (int b = 0; b < batch; ++b) {
      const auto& col =
          env.sample()[(i + static_cast<size_t>(b)) % env.sample().size()];
      xs.push_back(encoder->EncodeForTraining(col));
      ys.push_back(encoder->EncodeForTraining(col));
    }
    i += static_cast<size_t>(batch);
    auto loss = nn::MultipleNegativesRankingLoss(xs, ys);
    nn::Backward(loss);
    opt.Step(1.0);
    encoder->transformer().params().ZeroGrads();
  }
}
BENCHMARK(BM_FineTuneStep)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace deepjoin

BENCHMARK_MAIN();
