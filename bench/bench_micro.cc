// Micro-benchmarks (google-benchmark) over the library's hot kernels:
// column encoding, ANN search, exact search, sketching and training steps.
// These complement the table harnesses: they isolate per-component cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/alloc_guard.h"
#include "util/kernels.h"
#include "util/metrics.h"

namespace deepjoin {
namespace {

using bench::BenchConfig;
using bench::BenchEnv;

// Attaches an allocs-per-op counter when the alloc-guard runtime is
// compiled in (Debug / -DDJ_ALLOC_GUARD=ON builds). Release snapshots
// simply omit the column — the guard's new/delete hooks are not there to
// count, and timing numbers stay unperturbed.
void ReportAllocsPerOp(benchmark::State& state,
                       const alloc_guard::ScopedAllocCount& tally) {
  if (!alloc_guard::Enabled()) return;
  state.counters["allocs_per_op"] =
      benchmark::Counter(static_cast<double>(tally.allocations()),
                         benchmark::Counter::kAvgIterations);
}

BenchEnv& SharedEnv() {
  static BenchEnv* env = [] {
    BenchConfig cfg;
    cfg.repo_size = 2000;
    cfg.sample_size = 200;
    cfg.num_queries = 10;
    return std::make_unique<BenchEnv>(cfg).release();
  }();
  return *env;
}

// ---- Kernel-layer benchmarks (util/kernels.h) ------------------------------
// The trailing benchmark arg selects the dispatch tier: 0 = scalar,
// 1 = avx2+fma (skipped when the host lacks it). tools/bench_snapshot.sh
// records both so BENCH_micro.json always carries the scalar/SIMD ratio.

bool PinTier(benchmark::State& state, std::int64_t tier_arg) {
  if (tier_arg == 1 && kern::DetectedTier() != kern::Tier::kAvx2) {
    state.SkipWithError("avx2 tier unavailable on this host");
    return false;
  }
  kern::ForceTierForTest(tier_arg == 1 ? kern::Tier::kAvx2
                                       : kern::Tier::kScalar);
  return true;
}

std::vector<float> BenchVector(int n, int salt) {
  std::vector<float> v(static_cast<size_t>(n));
  Rng rng(static_cast<u64>(salt));
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

void BM_KernelDot(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  if (!PinTier(state, state.range(1))) return;
  const auto a = BenchVector(dim, 1);
  const auto b = BenchVector(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern::Dot(a.data(), b.data(), dim));
  }
  kern::ClearForcedTierForTest();
}
BENCHMARK(BM_KernelDot)->ArgsProduct({{32, 48, 64, 128}, {0, 1}});

void BM_KernelSquaredL2(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  if (!PinTier(state, state.range(1))) return;
  const auto a = BenchVector(dim, 3);
  const auto b = BenchVector(dim, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern::SquaredL2(a.data(), b.data(), dim));
  }
  kern::ClearForcedTierForTest();
}
BENCHMARK(BM_KernelSquaredL2)->ArgsProduct({{32, 48, 64, 128}, {0, 1}});

// The repo's GEMM shapes: transformer forward/backward at the two model
// sizes (d_model 48/64, d_ff 192/256) over max_seq_len = 64 rows.
void SgemmShapes(benchmark::internal::Benchmark* b) {
  for (std::int64_t tier : {0, 1}) {
    b->Args({64, 192, 48, tier});   // DistilSim FFN up
    b->Args({64, 48, 192, tier});   // DistilSim FFN down
    b->Args({64, 256, 64, tier});   // MPNetSim FFN up
    b->Args({64, 64, 256, tier});   // MPNetSim FFN down
    b->Args({64, 64, 64, tier});    // QKV projection (d=64)
  }
}

void BM_SgemmNN(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  if (!PinTier(state, state.range(3))) return;
  const auto a = BenchVector(m * k, 5);
  const auto b = BenchVector(k * n, 6);
  std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
  for (auto _ : state) {
    kern::SgemmNN(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  kern::ClearForcedTierForTest();
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);  // MACs*2
}
BENCHMARK(BM_SgemmNN)->Apply(SgemmShapes);

void BM_SgemmNT(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  if (!PinTier(state, state.range(3))) return;
  const auto a = BenchVector(m * k, 7);
  const auto b = BenchVector(n * k, 8);
  std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
  for (auto _ : state) {
    kern::SgemmNT(m, n, k, a.data(), k, b.data(), k, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  kern::ClearForcedTierForTest();
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_SgemmNT)->Apply(SgemmShapes);

void BM_SgemmTN(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  if (!PinTier(state, state.range(3))) return;
  const auto a = BenchVector(k * m, 9);
  const auto b = BenchVector(k * n, 10);
  std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
  for (auto _ : state) {
    kern::SgemmTN(m, n, k, a.data(), m, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  kern::ClearForcedTierForTest();
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_SgemmTN)->Apply(SgemmShapes);

// Pre-kernel baseline: the naive row*col triple loop the MatMul*Accum
// variants used before the kernel layer. Kept so BENCH_micro.json always
// carries the before/after ratio on the machine that produced it.
void BM_NaiveGemmNN(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  const auto a = BenchVector(m * k, 11);
  const auto b = BenchVector(k * n, 12);
  std::vector<float> c(static_cast<size_t>(m) * n, 0.0f);
  for (auto _ : state) {
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        float s = 0.0f;
        for (int p = 0; p < k; ++p) s += a[i * k + p] * b[p * n + j];
        c[static_cast<size_t>(i) * n + j] += s;
      }
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_NaiveGemmNN)
    ->Args({64, 192, 48})
    ->Args({64, 48, 192})
    ->Args({64, 256, 64})
    ->Args({64, 64, 256})
    ->Args({64, 64, 64});

void BM_FastTextCellEmbed(benchmark::State& state) {
  auto& env = SharedEnv();
  std::vector<float> out(env.ft().dim());
  size_t i = 0;
  const auto& cells = env.repo().column(0).cells;
  for (auto _ : state) {
    env.ft().TextVectorInto(cells[i++ % cells.size()], out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FastTextCellEmbed);

void BM_TransformColumn(benchmark::State& state) {
  auto& env = SharedEnv();
  core::TransformConfig tc;
  tc.dict = &env.tok().dict();
  size_t i = 0;
  for (auto _ : state) {
    auto text = core::TransformColumn(
        env.repo().column(static_cast<u32>(i++ % env.repo().size())), tc);
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_TransformColumn);

void BM_PlmEncodeColumn(benchmark::State& state) {
  auto& env = SharedEnv();
  static core::PlmColumnEncoder* encoder = [&] {
    core::PlmEncoderConfig pc;
    pc.kind = core::PlmKind::kMPNetSim;
    return std::make_unique<core::PlmColumnEncoder>(pc, env.sample(),
                                                    env.ft()).release();
  }();
  size_t i = 0;
  for (auto _ : state) {
    auto v = encoder->Encode(
        env.repo().column(static_cast<u32>(i++ % env.repo().size())));
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_PlmEncodeColumn);

// Same encode loop with the DJ_METRICS kill switch thrown: the delta
// against BM_PlmEncodeColumn is the instrumentation overhead DESIGN.md §9
// budgets at <2%. bench_snapshot.sh records both in BENCH_micro.json.
void BM_PlmEncodeColumnMetricsOff(benchmark::State& state) {
  auto& env = SharedEnv();
  static core::PlmColumnEncoder* encoder = [&] {
    core::PlmEncoderConfig pc;
    pc.kind = core::PlmKind::kMPNetSim;
    return std::make_unique<core::PlmColumnEncoder>(pc, env.sample(),
                                                    env.ft()).release();
  }();
  const bool was_enabled = metrics::SetEnabledForTest(false);
  size_t i = 0;
  for (auto _ : state) {
    auto v = encoder->Encode(
        env.repo().column(static_cast<u32>(i++ % env.repo().size())));
    benchmark::DoNotOptimize(v.data());
  }
  metrics::SetEnabledForTest(was_enabled);
}
BENCHMARK(BM_PlmEncodeColumnMetricsOff);

// EncodeToVector fast path vs the graph-building path it replaced
// (NoGradGuard + Encode + copy — what EncodeToVector did before the
// workspace forward). Same encoder, same columns, both tiers.
core::PlmColumnEncoder& SharedMpnetEncoder() {
  auto& env = SharedEnv();
  static core::PlmColumnEncoder* encoder = [&] {
    core::PlmEncoderConfig pc;
    pc.kind = core::PlmKind::kMPNetSim;
    return std::make_unique<core::PlmColumnEncoder>(pc, env.sample(),
                                                    env.ft()).release();
  }();
  return *encoder;
}

void BM_EncodeToVectorFastPath(benchmark::State& state) {
  auto& env = SharedEnv();
  auto& encoder = SharedMpnetEncoder();
  if (!PinTier(state, state.range(0))) return;
  std::vector<float> out(static_cast<size_t>(encoder.dim()));
  size_t i = 0;
  // Warm the thread-local scratch and workspace pool so the tally below
  // sees the steady state, not first-call growth.
  encoder.EncodeInto(env.repo().column(0), out.data());
  alloc_guard::ScopedAllocCount tally;
  for (auto _ : state) {
    encoder.EncodeInto(
        env.repo().column(static_cast<u32>(i++ % env.repo().size())),
        out.data());
    benchmark::DoNotOptimize(out.data());
  }
  ReportAllocsPerOp(state, tally);
  kern::ClearForcedTierForTest();
}
BENCHMARK(BM_EncodeToVectorFastPath)->Arg(0)->Arg(1);

void BM_EncodeToVectorGraph(benchmark::State& state) {
  auto& env = SharedEnv();
  auto& encoder = SharedMpnetEncoder();
  if (!PinTier(state, state.range(0))) return;
  size_t i = 0;
  for (auto _ : state) {
    nn::NoGradGuard guard;
    nn::VarPtr v = encoder.EncodeForTraining(
        env.repo().column(static_cast<u32>(i++ % env.repo().size())));
    benchmark::DoNotOptimize(v->value().data());
  }
  kern::ClearForcedTierForTest();
}
BENCHMARK(BM_EncodeToVectorGraph)->Arg(0)->Arg(1);

void BM_HnswSearch(benchmark::State& state) {
  const int dim = 32;
  // Deliberately leaked so teardown stays off the benchmark clock.
  static ann::HnswIndex* index = [&] {
    ann::HnswConfig hc;
    hc.dim = dim;
    auto idx = std::make_unique<ann::HnswIndex>(hc);
    Rng rng(1);
    std::vector<float> v(dim);
    for (int i = 0; i < 20000; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Normal());
      idx->Add(v.data());
    }
    return idx.release();
  }();
  Rng rng(2);
  std::vector<float> q(dim);
  alloc_guard::ScopedAllocCount tally;
  for (auto _ : state) {
    for (auto& x : q) x = static_cast<float>(rng.Normal());
    auto hits = index->Search(q.data(), static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(hits.data());
  }
  ReportAllocsPerOp(state, tally);
}
BENCHMARK(BM_HnswSearch)->Arg(10)->Arg(50);

// Steady-state variant: SearchInto with a capacity-reusing output vector —
// the DJ_NOALLOC contract path EmbeddingSearcher::SearchInto rides. Paired
// with BM_HnswSearch, the allocs_per_op counters (guard-enabled builds)
// show the convenience wrapper's per-call result vector vs zero here.
void BM_HnswSearchInto(benchmark::State& state) {
  const int dim = 32;
  static ann::HnswIndex* index = [&] {
    ann::HnswConfig hc;
    hc.dim = dim;
    auto idx = std::make_unique<ann::HnswIndex>(hc);
    Rng rng(1);
    std::vector<float> v(dim);
    for (int i = 0; i < 20000; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Normal());
      idx->Add(v.data());
    }
    return idx.release();
  }();
  Rng rng(2);
  std::vector<float> q(dim);
  std::vector<ann::Neighbor> hits;
  const ann::AnnSearchParams params;
  const auto k = static_cast<size_t>(state.range(0));
  for (auto& x : q) x = static_cast<float>(rng.Normal());
  index->SearchInto(q.data(), k, params, &hits);  // warm scratch + pool
  alloc_guard::ScopedAllocCount tally;
  for (auto _ : state) {
    for (auto& x : q) x = static_cast<float>(rng.Normal());
    index->SearchInto(q.data(), k, params, &hits);
    benchmark::DoNotOptimize(hits.data());
  }
  ReportAllocsPerOp(state, tally);
}
BENCHMARK(BM_HnswSearchInto)->Arg(10)->Arg(50);

// HNSW search with metrics disabled; paired with BM_HnswSearch the ratio
// bounds the per-search instrumentation cost (counter adds + histogram
// record per Search call).
void BM_HnswSearchMetricsOff(benchmark::State& state) {
  const int dim = 32;
  static ann::HnswIndex* index = [&] {
    ann::HnswConfig hc;
    hc.dim = dim;
    auto idx = std::make_unique<ann::HnswIndex>(hc);
    Rng rng(1);
    std::vector<float> v(dim);
    for (int i = 0; i < 20000; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Normal());
      idx->Add(v.data());
    }
    return idx.release();
  }();
  const bool was_enabled = metrics::SetEnabledForTest(false);
  Rng rng(2);
  std::vector<float> q(dim);
  for (auto _ : state) {
    for (auto& x : q) x = static_cast<float>(rng.Normal());
    auto hits = index->Search(q.data(), static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(hits.data());
  }
  metrics::SetEnabledForTest(was_enabled);
}
BENCHMARK(BM_HnswSearchMetricsOff)->Arg(10)->Arg(50);

// Full steady-state DeepJoin query (transform -> tokenize -> transformer
// forward -> HNSW -> copy-out) through EmbeddingSearcher::SearchInto. In
// guard-enabled builds allocs_per_op is the headline allocations-per-query
// number; the guarded test suite pins it to zero.
void BM_SearcherSteadyStateQuery(benchmark::State& state) {
  auto& env = SharedEnv();
  static core::EmbeddingSearcher* searcher = [&] {
    core::SearcherConfig sc;
    sc.backend = core::AnnBackend::kHnsw;
    auto s = std::make_unique<core::EmbeddingSearcher>(&SharedMpnetEncoder(),
                                                       sc);
    DJ_CHECK(s->BuildIndex(SharedEnv().repo()).ok());
    return s.release();
  }();
  const core::SearchOptions options{.k = 10, .collect_stats = false};
  core::EmbeddingSearcher::SearchResult result;
  // One pass over every query warms each thread-local scratch buffer and
  // pool to its steady-state footprint before the tally starts.
  for (const auto& q : env.queries()) searcher->SearchInto(q, options, &result);
  size_t i = 0;
  alloc_guard::ScopedAllocCount tally;
  for (auto _ : state) {
    searcher->SearchInto(env.queries()[i++ % env.queries().size()], options,
                         &result);
    benchmark::DoNotOptimize(result.ids.data());
  }
  ReportAllocsPerOp(state, tally);
}
BENCHMARK(BM_SearcherSteadyStateQuery);

// Batched flat scan — the serving-layer execution path (DESIGN.md §13).
// FlatIndex::SearchBatchInto amortises one pass over the corpus across the
// whole batch via blocked SGEMM, so per-item time falls as Arg (the batch
// size) grows; the Arg(1) row is the unbatched per-query baseline the
// serving sweep's saturation_speedup figure compares against. The corpus
// here is cache-resident, so this tracks the compute amortisation only —
// BENCH_serve.json measures the full memory-bound regime.
void BM_FlatSearchBatch(benchmark::State& state) {
  const int dim = 64;
  static ann::FlatIndex* index = [&] {
    auto idx = std::make_unique<ann::FlatIndex>(dim);
    Rng rng(1);
    std::vector<float> v(dim);
    for (int i = 0; i < 100000; ++i) {
      for (auto& x : v) x = static_cast<float>(rng.Normal());
      idx->Add(v.data());
    }
    return idx.release();
  }();
  const auto batch = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<float> queries(batch * static_cast<size_t>(dim));
  for (auto& x : queries) x = static_cast<float>(rng.Normal());
  std::vector<std::vector<ann::Neighbor>> outs(batch);
  const ann::AnnSearchParams params;
  index->SearchBatchInto(queries.data(), batch, 10, params, outs.data());
  alloc_guard::ScopedAllocCount tally;
  for (auto _ : state) {
    index->SearchBatchInto(queries.data(), batch, 10, params, outs.data());
    benchmark::DoNotOptimize(outs[0].data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(batch));
  ReportAllocsPerOp(state, tally);
}
BENCHMARK(BM_FlatSearchBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(64);

void BM_JosieSearch(benchmark::State& state) {
  auto& env = SharedEnv();
  static join::JosieIndex* index =
      std::make_unique<join::JosieIndex>(&env.tok()).release();
  std::vector<join::TokenSet> qts;
  for (const auto& q : env.queries()) qts.push_back(env.tok().EncodeQuery(q));
  size_t i = 0;
  for (auto _ : state) {
    auto hits = index->SearchTopK(qts[i++ % qts.size()], 10);
    benchmark::DoNotOptimize(hits.data());
  }
}
BENCHMARK(BM_JosieSearch);

void BM_MinHashSignature(benchmark::State& state) {
  auto& env = SharedEnv();
  const auto& tokens = env.tok().columns()[0].tokens;
  for (auto _ : state) {
    auto sig = join::MinHashSignature::Compute(tokens, 128);
    benchmark::DoNotOptimize(sig.values().data());
  }
}
BENCHMARK(BM_MinHashSignature);

void BM_SemanticJoinability(benchmark::State& state) {
  auto& env = SharedEnv();
  auto& store = const_cast<BenchEnv&>(env).store();
  const auto& qv = const_cast<BenchEnv&>(env).QueryVectors(0);
  const size_t nq = env.queries()[0].cells.size();
  u32 c = 0;
  for (auto _ : state) {
    const u32 id = c++ % static_cast<u32>(store.num_columns());
    benchmark::DoNotOptimize(join::SemanticJoinability(
        qv.data(), nq, store.column_vectors(id), store.column_count(id),
        store.dim(), 0.9f));
  }
}
BENCHMARK(BM_SemanticJoinability);

void BM_FineTuneStep(benchmark::State& state) {
  auto& env = SharedEnv();
  static core::PlmColumnEncoder* encoder = [&] {
    core::PlmEncoderConfig pc;
    pc.kind = core::PlmKind::kMPNetSim;
    return std::make_unique<core::PlmColumnEncoder>(pc, env.sample(),
                                                    env.ft()).release();
  }();
  nn::AdamW opt(encoder->transformer().params().params(), nn::AdamConfig{});
  const int batch = static_cast<int>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    std::vector<nn::VarPtr> xs, ys;
    for (int b = 0; b < batch; ++b) {
      const auto& col =
          env.sample()[(i + static_cast<size_t>(b)) % env.sample().size()];
      xs.push_back(encoder->EncodeForTraining(col));
      ys.push_back(encoder->EncodeForTraining(col));
    }
    i += static_cast<size_t>(batch);
    auto loss = nn::MultipleNegativesRankingLoss(xs, ys);
    nn::Backward(loss);
    opt.Step(1.0);
    encoder->transformer().params().ZeroGrads();
  }
}
BENCHMARK(BM_FineTuneStep)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace deepjoin

BENCHMARK_MAIN();
