// Ablations of the design choices DESIGN.md §4 calls out (beyond the
// paper's own Tables 9-12):
//   1. negative mining: in-batch (paper's choice) vs removed-overlap hard
//      negatives — the paper reports in-batch "shows better empirical
//      results" (§4.1).
//   2. cell selection under the token budget: frequency-based (§3.2) vs
//      naive truncation.
//   3. ANN backend behind the same encoder: flat (exact) vs HNSW vs IVFPQ
//      — accuracy cost of the approximate index.
#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

namespace {

MethodResult RunWithSearcher(BenchEnv& env, core::DeepJoin& dj,
                             core::AnnBackend backend,
                             const std::string& name) {
  core::SearcherConfig sc;
  sc.backend = backend;
  core::EmbeddingSearcher searcher(&dj.encoder(), sc);
  DJ_CHECK(searcher.BuildIndex(env.repo()).ok());
  MethodResult out;
  out.name = name;
  TimeAccumulator total;
  for (const auto& q : env.queries()) {
    auto s = searcher.Search(q, {.k = env.config().k_max});
    total.Add(s.stats.total_ms() / 1e3);
    out.rankings.push_back(std::move(s.ids));
  }
  out.mean_total_ms = total.MeanMillis();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  BenchConfig cfg = BenchConfig::FromFlags(flags);
  if (!flags.Has("steps")) cfg.steps = 60;
  BenchEnv env(cfg);
  auto jn = [&env](size_t q, u32 id) { return env.EquiJn(q, id); };

  // --- 1. negative-mining strategy ---
  {
    std::vector<MethodResult> methods;
    for (auto neg : {core::NegativeStrategy::kInBatch,
                     core::NegativeStrategy::kRemovedOverlap}) {
      core::DeepJoinConfig djc;
      djc.plm.kind = core::PlmKind::kMPNetSim;
      djc.plm.max_seq_len = cfg.seq_len;
      djc.plm.transform.dict = &env.tok().dict();
      djc.plm.transform.cell_budget = cfg.seq_len / 3;
      djc.training.shuffle_rate = cfg.shuffle_rate;
      djc.finetune.batch_size = cfg.batch;
      djc.finetune.max_steps = cfg.steps;
      djc.finetune.negatives = neg;
      auto dj = core::DeepJoin::Train(env.sample(), env.ft(), djc);
      auto result = RunWithSearcher(
          env, *dj, core::AnnBackend::kHnsw,
          neg == core::NegativeStrategy::kInBatch ? "in-batch negatives"
                                                  : "removed-overlap negs");
      methods.push_back(std::move(result));
    }
    PrintAccuracyTable("Ablation: negative mining (equi, " + cfg.corpus + ")",
                       methods, env.ExactEqui(), jn, {10, 30, 50});
  }

  // --- 2. cell selection under the budget ---
  {
    std::vector<MethodResult> methods;
    for (bool use_freq : {true, false}) {
      core::DeepJoinConfig djc;
      djc.plm.kind = core::PlmKind::kMPNetSim;
      djc.plm.max_seq_len = cfg.seq_len;
      djc.plm.transform.cell_budget = 10;  // tight budget: selection matters
      djc.plm.transform.dict = use_freq ? &env.tok().dict() : nullptr;
      djc.training.shuffle_rate = cfg.shuffle_rate;
      djc.finetune.batch_size = cfg.batch;
      djc.finetune.max_steps = cfg.steps;
      auto dj = core::DeepJoin::Train(env.sample(), env.ft(), djc);
      methods.push_back(RunWithSearcher(env, *dj, core::AnnBackend::kHnsw,
                                        use_freq ? "frequency-based cells"
                                                 : "naive truncation"));
    }
    PrintAccuracyTable(
        "Ablation: cell selection under a 10-cell budget (equi, " +
            cfg.corpus + ")",
        methods, env.ExactEqui(), jn, {10, 30, 50});
  }

  // --- 3. ANN backend ---
  {
    core::DeepJoinConfig djc;
    djc.plm.kind = core::PlmKind::kMPNetSim;
    djc.plm.max_seq_len = cfg.seq_len;
    djc.plm.transform.dict = &env.tok().dict();
    djc.plm.transform.cell_budget = cfg.seq_len / 3;
    djc.training.shuffle_rate = cfg.shuffle_rate;
    djc.finetune.batch_size = cfg.batch;
    djc.finetune.max_steps = cfg.steps;
    auto dj = core::DeepJoin::Train(env.sample(), env.ft(), djc);
    std::vector<MethodResult> methods;
    methods.push_back(
        RunWithSearcher(env, *dj, core::AnnBackend::kFlat, "flat (exact)"));
    methods.push_back(
        RunWithSearcher(env, *dj, core::AnnBackend::kHnsw, "hnsw"));
    methods.push_back(
        RunWithSearcher(env, *dj, core::AnnBackend::kIvfPq, "ivfpq"));
    PrintAccuracyTable("Ablation: ANN backend (same encoder, equi, " +
                           cfg.corpus + ")",
                       methods, env.ExactEqui(), jn, {10, 30, 50});
    TablePrinter lat({"Backend", "mean query (ms)"});
    for (const auto& m : methods) {
      lat.AddRow({m.name, FormatDouble(m.mean_total_ms, 3)});
    }
    lat.Print("Ablation: ANN backend latency");
  }
  return 0;
}
