// Table 6: semantic-join accuracy, tau = 0.7.
#include "bench/semantic_accuracy.h"

// Defaults to Webtable (pass --corpus=both for the full grid).
int main(int argc, char** argv) {
  return deepjoin::bench::RunSemanticAccuracyMain(argc, argv, 0.7f, 6, "webtable");
}
