// Table 3: Precision@k / NDCG@k of equi-joinable table discovery for
// k = 10..50 on both corpora. JOSIE is omitted from the accuracy rows (it
// is exact, i.e. the ground truth), as in the paper.
#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

namespace {

void RunCorpus(const BenchConfig& cfg) {
  BenchEnv env(cfg);
  std::vector<MethodResult> methods;
  methods.push_back(env.RunLshEnsemble());
  methods.push_back(env.RunFastText());
  methods.push_back(env.RunRawPlm(core::PlmKind::kDistilSim));
  methods.push_back(env.RunRawPlm(core::PlmKind::kMPNetSim));
  methods.push_back(env.RunTabert());
  methods.push_back(env.RunMlp(core::JoinType::kEqui));
  methods.push_back(env.RunDeepJoin(core::PlmKind::kDistilSim,
                                    core::JoinType::kEqui,
                                    core::TransformOption::kTitleColnameStatCol,
                                    cfg.shuffle_rate)
                        .result);
  methods.push_back(env.RunDeepJoin(core::PlmKind::kMPNetSim,
                                    core::JoinType::kEqui,
                                    core::TransformOption::kTitleColnameStatCol,
                                    cfg.shuffle_rate)
                        .result);
  auto jn = [&env](size_t q, u32 id) { return env.EquiJn(q, id); };
  PrintAccuracyTable("Table 3 (" + cfg.corpus + "): accuracy of equi-joins",
                     methods, env.ExactEqui(), jn);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const std::string which = flags.GetString("corpus", "both");
  for (const std::string corpus : {"webtable", "wikitable"}) {
    if (which != "both" && which != corpus) continue;
    BenchConfig cfg = BenchConfig::FromFlags(flags);
    cfg.corpus = corpus;
    RunCorpus(cfg);
  }
  return 0;
}
