// Table 10: ablation of the column-to-text transformation options for
// semantic joins (labels from the exact semantic solution at tau).
#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const std::string which = flags.GetString("corpus", "webtable");
  for (const std::string corpus : {"webtable", "wikitable"}) {
    if (which != "both" && which != corpus) continue;
    BenchConfig cfg = BenchConfig::FromFlags(flags);
    cfg.corpus = corpus;
    // Ablations train many models; default to a lighter profile.
    if (!flags.Has("steps")) cfg.steps = 50;
    BenchEnv env(cfg);
    auto exact = env.ExactSemantic(cfg.tau);

    std::vector<MethodResult> methods;
    for (core::TransformOption opt : core::AllTransformOptions()) {
      auto run = env.RunDeepJoin(core::PlmKind::kMPNetSim,
                                 core::JoinType::kSemantic, opt,
                                 cfg.shuffle_rate);
      run.result.name = core::TransformOptionName(opt);
      methods.push_back(std::move(run.result));
    }
    auto jn = [&env, &cfg](size_t q, u32 id) {
      return env.SemanticJn(q, id, cfg.tau);
    };
    PrintAccuracyTable("Table 10 (" + corpus +
                           "): column-to-text transformation, semantic joins",
                       methods, exact, jn);
  }
  return 0;
}
