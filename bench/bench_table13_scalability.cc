// Table 13: mean processing time per query while the repository grows
// (the paper sweeps 1M-5M Webtable / 200K-1M Wikitable columns; scaled
// sizes here, --full raises them). Shapes to reproduce: JOSIE / PEXESO /
// LSH Ensemble grow with |X|; embedding methods are dominated by query
// encoding and grow only slightly; the batched ("GPU") DeepJoin path has
// the same profile with cheaper amortised encoding.
#include <thread>

#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

namespace {

struct Row {
  std::string method;
  double encode_ms = -1.0;  // <0 = not applicable
  std::vector<double> total_ms;
};

void PrintRows(const std::string& title, const std::vector<Row>& rows,
               const std::vector<size_t>& sizes) {
  std::vector<std::string> header = {"Method", "query encoding (ms)"};
  for (size_t n : sizes) header.push_back("|X|=" + std::to_string(n));
  TablePrinter printer(header);
  for (const auto& r : rows) {
    std::vector<std::string> cells = {
        r.method, r.encode_ms < 0 ? "-" : FormatDouble(r.encode_ms, 2)};
    for (double t : r.total_ms) cells.push_back(FormatDouble(t, 2));
    printer.AddRow(std::move(cells));
  }
  printer.Print(title);
}

/// Embedding-method sweep: pre-encode the full repository once, then per
/// size index a prefix and measure per-query encode + ANNS time.
Row SweepEncoder(core::ColumnEncoder* encoder, const std::string& name,
                 const lake::Repository& repo,
                 const std::vector<lake::Column>& queries,
                 const std::vector<size_t>& sizes, bool batched) {
  const int dim = encoder->dim();
  std::vector<float> embeddings(repo.size() * static_cast<size_t>(dim));
  for (size_t i = 0; i < repo.size(); ++i) {
    auto v = encoder->Encode(repo.column(static_cast<u32>(i)));
    std::copy(v.begin(), v.end(),
              embeddings.begin() + static_cast<long>(i * dim));
  }
  Row row;
  row.method = name;
  const size_t pool_threads = std::max(2u, std::thread::hardware_concurrency());
  ThreadPool pool(pool_threads);
  for (size_t n : sizes) {
    ann::HnswConfig hc;
    hc.dim = dim;
    ann::HnswIndex index(hc);
    index.AddBatch(embeddings.data(), n);
    if (batched) {
      // Amortised batch path (the GPU substitute; DESIGN.md).
      WallTimer total;
      std::vector<std::vector<float>> qembs(queries.size());
      WallTimer enc;
      pool.ParallelFor(queries.size(), [&](size_t i) {
        qembs[i] = encoder->Encode(queries[i]);
      });
      const double enc_s = enc.ElapsedSeconds();
      for (const auto& qe : qembs) index.Search(qe.data(), 10);
      const double total_s = total.ElapsedSeconds();
      row.encode_ms = enc_s * 1e3 / static_cast<double>(queries.size());
      row.total_ms.push_back(total_s * 1e3 /
                             static_cast<double>(queries.size()));
    } else {
      TimeAccumulator encode_acc, total_acc;
      for (const auto& q : queries) {
        WallTimer total;
        WallTimer enc;
        auto qe = encoder->Encode(q);
        encode_acc.Add(enc.ElapsedSeconds());
        index.Search(qe.data(), 10);
        total_acc.Add(total.ElapsedSeconds());
      }
      row.encode_ms = encode_acc.MeanMillis();
      row.total_ms.push_back(total_acc.MeanMillis());
    }
  }
  return row;
}

lake::Repository Prefix(const lake::Repository& repo, size_t n) {
  lake::Repository out;
  for (size_t i = 0; i < n; ++i) out.Add(repo.column(static_cast<u32>(i)));
  return out;
}

void RunCorpus(const BenchConfig& base, const std::vector<size_t>& sizes) {
  BenchConfig cfg = base;
  cfg.repo_size = sizes.back();
  cfg.num_queries = std::min<size_t>(cfg.num_queries, 20);
  BenchEnv env(cfg);

  // Train both DeepJoin variants once (training is size-independent).
  auto dj_equi = env.RunDeepJoin(core::JoinType::kEqui);
  auto dj_sem = env.RunDeepJoin(core::JoinType::kSemantic);

  core::TransformConfig ft_tc;
  ft_tc.option = core::TransformOption::kCol;
  ft_tc.cell_budget = 0;
  core::FastTextColumnEncoder ft_encoder(&env.ft(), ft_tc);

  // --- equi-join rows ---
  std::vector<Row> equi_rows;
  {
    Row lsh{"LSH Ensemble", -1.0, {}};
    Row josie{"JOSIE", -1.0, {}};
    for (size_t n : sizes) {
      auto repo = Prefix(env.repo(), n);
      auto tok = join::TokenizedRepository::Build(repo);
      join::LshEnsembleIndex lsh_index(&tok, join::LshEnsembleConfig{});
      join::JosieIndex josie_index(&tok);
      TimeAccumulator lsh_acc, josie_acc;
      for (const auto& q : env.queries()) {
        const auto qt = tok.EncodeQuery(q);
        WallTimer t1;
        lsh_index.SearchTopK(qt, 10);
        lsh_acc.Add(t1.ElapsedSeconds());
        WallTimer t2;
        josie_index.SearchTopK(qt, 10);
        josie_acc.Add(t2.ElapsedSeconds());
      }
      lsh.total_ms.push_back(lsh_acc.MeanMillis());
      josie.total_ms.push_back(josie_acc.MeanMillis());
    }
    equi_rows.push_back(std::move(lsh));
    equi_rows.push_back(std::move(josie));
    equi_rows.push_back(SweepEncoder(&ft_encoder, "fastText", env.repo(),
                                     env.queries(), sizes, false));
    equi_rows.push_back(SweepEncoder(&dj_equi.model->encoder(),
                                     "DeepJoin (CPU)", env.repo(),
                                     env.queries(), sizes, false));
    equi_rows.push_back(SweepEncoder(&dj_equi.model->encoder(),
                                     "DeepJoin (batched)", env.repo(),
                                     env.queries(), sizes, true));
  }
  PrintRows("Table 13 (" + cfg.corpus + ", equi-joins): time per query vs |X|",
            equi_rows, sizes);

  // --- semantic-join rows ---
  std::vector<Row> sem_rows;
  {
    Row pexeso{"PEXESO", -1.0, {}};
    for (size_t n : sizes) {
      auto repo = Prefix(env.repo(), n);
      auto store = join::ColumnVectorStore::Build(repo, env.ft());
      join::PexesoConfig pc;
      pc.tau = cfg.tau;
      join::PexesoIndex index(&store, pc);
      TimeAccumulator acc;
      for (size_t q = 0; q < env.queries().size(); ++q) {
        const auto qv =
            join::ColumnVectorStore::EmbedColumn(env.queries()[q], env.ft());
        WallTimer t;
        index.SearchTopK(qv.data(), env.queries()[q].cells.size(), 10);
        acc.Add(t.ElapsedSeconds());
      }
      pexeso.total_ms.push_back(acc.MeanMillis());
    }
    sem_rows.push_back(std::move(pexeso));
    sem_rows.push_back(SweepEncoder(&dj_sem.model->encoder(),
                                    "DeepJoin (CPU)", env.repo(),
                                    env.queries(), sizes, false));
    sem_rows.push_back(SweepEncoder(&dj_sem.model->encoder(),
                                    "DeepJoin (batched)", env.repo(),
                                    env.queries(), sizes, true));
  }
  PrintRows("Table 13 (" + cfg.corpus +
                ", semantic joins): time per query vs |X|",
            sem_rows, sizes);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  BenchConfig base = BenchConfig::FromFlags(flags);
  // Latency does not depend on model quality; train briefly by default.
  if (!flags.Has("steps")) base.steps = 30;
  const bool full = flags.GetBool("full", false);
  const std::string which = flags.GetString("corpus", "both");

  if (which == "both" || which == "webtable") {
    base.corpus = "webtable";
    RunCorpus(base, full ? std::vector<size_t>{10000, 20000, 30000, 40000,
                                               50000}
                         : std::vector<size_t>{2000, 4000, 6000, 8000,
                                               10000});
  }
  if (which == "both" || which == "wikitable") {
    base.corpus = "wikitable";
    RunCorpus(base, full ? std::vector<size_t>{4000, 8000, 12000, 16000,
                                               20000}
                         : std::vector<size_t>{1000, 2000, 3000, 4000,
                                               5000});
  }
  return 0;
}
