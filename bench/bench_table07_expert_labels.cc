// Table 7: semantic-join accuracy under expert labels (the domain oracle;
// DESIGN.md substitution table) with the retrieved-pool protocol: the pool
// is the union of every method's top-k, the oracle labels the pool, and
// precision/recall/F1 are computed per query and averaged. PEXESO itself
// is in the comparison — the paper's headline is that DeepJoin beats the
// exact solution that labelled its training data.
#include <unordered_set>

#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

namespace {

void RunCorpus(const BenchConfig& cfg) {
  BenchEnv env(cfg);
  std::vector<MethodResult> methods;
  methods.push_back(env.RunLshEnsemble());
  methods.push_back(env.RunFastText());
  methods.push_back(env.RunPexeso(cfg.tau));
  methods.push_back(env.RunDeepJoin(core::PlmKind::kMPNetSim,
                                    core::JoinType::kSemantic,
                                    core::TransformOption::kTitleColnameStatCol,
                                    cfg.shuffle_rate)
                        .result);

  const eval::DomainOracle oracle(0.25);
  const size_t k = 10;

  TablePrinter printer({"Method", "Precision", "Recall", "F1"});
  std::vector<std::vector<double>> p(methods.size()), r(methods.size()),
      f1(methods.size());
  for (size_t q = 0; q < env.queries().size(); ++q) {
    // Pool = union of all methods' retrieved top-k for this query.
    std::unordered_set<u32> pool;
    for (const auto& m : methods) {
      for (u32 id : TopIds(m.rankings[q], k)) pool.insert(id);
    }
    // "Expert" labels over the pool.
    std::vector<u32> joinable;
    for (u32 id : pool) {
      if (oracle.Joinable(env.queries()[q], env.repo().column(id))) {
        joinable.push_back(id);
      }
    }
    for (size_t m = 0; m < methods.size(); ++m) {
      const auto prf =
          eval::PoolPRF1(TopIds(methods[m].rankings[q], k), joinable);
      p[m].push_back(prf.precision);
      r[m].push_back(prf.recall);
      f1[m].push_back(prf.f1);
    }
  }
  for (size_t m = 0; m < methods.size(); ++m) {
    printer.AddRow({methods[m].name, FormatDouble(eval::Mean(p[m]), 3),
                    FormatDouble(eval::Mean(r[m]), 3),
                    FormatDouble(eval::Mean(f1[m]), 3)});
  }
  printer.Print("Table 7 (" + cfg.corpus +
                "): semantic joins under expert labels (k=10)");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const std::string which = flags.GetString("corpus", "both");
  for (const std::string corpus : {"webtable", "wikitable"}) {
    if (which != "both" && which != corpus) continue;
    BenchConfig cfg = BenchConfig::FromFlags(flags);
    cfg.corpus = corpus;
    RunCorpus(cfg);
  }
  return 0;
}
