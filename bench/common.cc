#include "bench/common.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"
#include "util/timer.h"

namespace deepjoin {
namespace bench {

BenchConfig BenchConfig::FromFlags(const Flags& flags) {
  BenchConfig c;
  c.corpus = flags.GetString("corpus", c.corpus);
  c.repo_size = static_cast<size_t>(flags.GetInt("repo", c.repo_size));
  c.sample_size = static_cast<size_t>(flags.GetInt("sample", c.sample_size));
  c.num_queries =
      static_cast<size_t>(flags.GetInt("queries", c.num_queries));
  c.steps = static_cast<int>(flags.GetInt("steps", c.steps));
  c.batch = static_cast<int>(flags.GetInt("batch", c.batch));
  c.seq_len = static_cast<int>(flags.GetInt("seq", c.seq_len));
  c.shuffle_rate = flags.GetDouble("shuffle", c.shuffle_rate);
  c.tau = static_cast<float>(flags.GetDouble("tau", c.tau));
  c.seed = static_cast<u64>(flags.GetInt("seed", c.seed));
  if (flags.GetBool("fast", false)) {
    c.repo_size = 1500;
    c.sample_size = 200;
    c.num_queries = 12;
    c.steps = 40;
  }
  if (flags.GetBool("full", false)) {
    c.repo_size = 20000;
    c.sample_size = 1000;
    c.num_queries = 50;
    c.steps = 200;
  }
  return c;
}

const char* MethodName(Method m) {
  switch (m) {
    case Method::kLshEnsemble: return "LSH Ensemble";
    case Method::kJosie: return "JOSIE";
    case Method::kFastText: return "fastText";
    case Method::kRawDistil: return "BERT";
    case Method::kRawMPNet: return "MPNet";
    case Method::kTabert: return "TaBERT";
    case Method::kMlp: return "MLP";
    case Method::kDeepJoinDistil: return "DeepJoin_DistilSim";
    case Method::kDeepJoinMPNet: return "DeepJoin_MPNetSim";
    case Method::kPexeso: return "PEXESO";
  }
  return "?";
}

BenchEnv::BenchEnv(const BenchConfig& config) : config_(config) {
  const auto lc = config.corpus == "wikitable"
                      ? lake::LakeConfig::Wikitable(config.seed)
                      : lake::LakeConfig::Webtable(config.seed);
  gen_ = std::make_unique<lake::LakeGenerator>(lc);
  WallTimer t;
  repo_ = gen_->GenerateRepository(config.repo_size);
  sample_ = gen_->GenerateQueries(config.sample_size, 0x5A17);
  queries_ = gen_->GenerateQueries(config.num_queries, 0xC0FE);
  tok_ = std::make_unique<join::TokenizedRepository>(
      join::TokenizedRepository::Build(repo_));
  FastTextConfig fc;
  fc.dim = config.ft_dim;
  ft_ = std::make_unique<FastTextEmbedder>(fc);
  ft_->TrainSynonyms(gen_->SynonymLexicon(), 0.8, 2);
  std::printf("[env] corpus=%s repo=%zu sample=%zu queries=%zu (%.1fs)\n",
              config.corpus.c_str(), repo_.size(), sample_.size(),
              queries_.size(), t.ElapsedSeconds());
  std::fflush(stdout);
}

BenchEnv::BenchEnv(const BenchConfig& config, lake::Repository repo,
                   std::vector<lake::Column> sample,
                   std::vector<lake::Column> queries)
    : config_(config),
      repo_(std::move(repo)),
      sample_(std::move(sample)),
      queries_(std::move(queries)) {
  const auto lc = config.corpus == "wikitable"
                      ? lake::LakeConfig::Wikitable(config.seed)
                      : lake::LakeConfig::Webtable(config.seed);
  gen_ = std::make_unique<lake::LakeGenerator>(lc);
  tok_ = std::make_unique<join::TokenizedRepository>(
      join::TokenizedRepository::Build(repo_));
  FastTextConfig fc;
  fc.dim = config.ft_dim;
  ft_ = std::make_unique<FastTextEmbedder>(fc);
  ft_->TrainSynonyms(gen_->SynonymLexicon(), 0.8, 2);
}

const join::ColumnVectorStore& BenchEnv::store() {
  if (!store_) {
    store_ = std::make_unique<join::ColumnVectorStore>(
        join::ColumnVectorStore::Build(repo_, *ft_));
  }
  return *store_;
}

const std::vector<std::vector<Scored>>& BenchEnv::ExactEqui() {
  if (exact_equi_.empty()) {
    exact_equi_.reserve(queries_.size());
    for (const auto& q : queries_) {
      exact_equi_.push_back(
          join::ExactEquiTopK(*tok_, tok_->EncodeQuery(q), config_.k_max));
    }
  }
  return exact_equi_;
}

const std::vector<float>& BenchEnv::QueryVectors(size_t q) {
  if (query_vectors_.empty()) {
    query_vectors_.resize(queries_.size());
    for (size_t i = 0; i < queries_.size(); ++i) {
      query_vectors_[i] =
          join::ColumnVectorStore::EmbedColumn(queries_[i], *ft_);
    }
  }
  return query_vectors_[q];
}

std::vector<std::vector<Scored>> BenchEnv::ExactSemantic(float tau) {
  const auto& st = store();
  std::vector<std::vector<Scored>> out;
  out.reserve(queries_.size());
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto& qv = QueryVectors(q);
    out.push_back(join::ExactSemanticTopK(st, qv.data(),
                                          queries_[q].cells.size(), tau,
                                          config_.k_max));
  }
  return out;
}

double BenchEnv::EquiJn(size_t q, u32 id) const {
  return join::EquiJoinability(tok_->EncodeQuery(queries_[q]),
                               tok_->columns()[id]);
}

double BenchEnv::SemanticJn(size_t q, u32 id, float tau) {
  const auto& st = store();
  const auto& qv = QueryVectors(q);
  return join::SemanticJoinability(qv.data(), queries_[q].cells.size(),
                                   st.column_vectors(id),
                                   st.column_count(id), st.dim(), tau);
}

core::TrainingDataConfig BenchEnv::TrainingConfig(
    core::JoinType join_type, double shuffle_rate) const {
  core::TrainingDataConfig tc;
  tc.join_type = join_type;
  tc.positive_threshold = 0.7;
  tc.tau = config_.tau;
  tc.shuffle_rate = shuffle_rate;
  tc.max_pairs = 4000;
  tc.seed = config_.seed ^ 0x77;
  return tc;
}

core::TrainingData BenchEnv::PrepareData(core::JoinType join_type,
                                         double shuffle_rate) {
  return core::PrepareTrainingData(sample_, ft_.get(),
                                   TrainingConfig(join_type, shuffle_rate));
}

MethodResult BenchEnv::RunEncoder(core::ColumnEncoder* encoder,
                                  const std::string& name) {
  core::SearcherConfig sc;
  sc.backend = core::AnnBackend::kHnsw;
  core::EmbeddingSearcher searcher(encoder, sc);
  DJ_CHECK(searcher.BuildIndex(repo_).ok());
  MethodResult out;
  out.name = name;
  TimeAccumulator encode_acc, total_acc;
  for (const auto& q : queries_) {
    auto s = searcher.Search(q, {.k = config_.k_max});
    encode_acc.Add(s.stats.SpanMs("searcher.encode") / 1e3);
    total_acc.Add(s.stats.total_ms() / 1e3);
    out.rankings.push_back(std::move(s.ids));
  }
  out.mean_encode_ms = encode_acc.MeanMillis();
  out.mean_total_ms = total_acc.MeanMillis();
  return out;
}

BenchEnv::DeepJoinRun BenchEnv::RunDeepJoin(core::PlmKind kind,
                                            core::JoinType join_type,
                                            core::TransformOption transform,
                                            double shuffle_rate,
                                            bool quiet) {
  core::DeepJoinConfig cfg;
  cfg.plm.kind = kind;
  cfg.plm.max_seq_len = config_.seq_len;
  cfg.plm.transform.option = transform;
  cfg.plm.transform.cell_budget = config_.seq_len / 3;
  cfg.plm.transform.dict = &tok_->dict();
  cfg.plm.seed = config_.seed ^ 0x1234;
  cfg.training = TrainingConfig(join_type, shuffle_rate);
  cfg.finetune.batch_size = config_.batch;
  cfg.finetune.max_steps = config_.steps;
  cfg.finetune.lr = 4e-4;
  cfg.finetune.seed = config_.seed ^ 0x99;

  WallTimer t;
  DeepJoinRun run;
  run.model = core::DeepJoin::Train(sample_, *ft_, cfg);
  if (!quiet) {
    std::printf(
        "[train] %s %s transform=%s shuffle=%.1f: %zu pairs, loss %.3f -> "
        "%.3f (%.1fs)\n",
        run.model->encoder().name().c_str(),
        join_type == core::JoinType::kEqui ? "equi" : "semantic",
        core::TransformOptionName(transform), shuffle_rate,
        run.model->training_data().pairs.size(),
        run.model->train_stats().first_loss,
        run.model->train_stats().final_loss, t.ElapsedSeconds());
    std::fflush(stdout);
  }
  // RunEncoder owns its searcher + index, keeping one code path for every
  // embedding method; callers that need run.model's own index call
  // BuildIndex themselves.
  run.result = RunEncoder(&run.model->encoder(),
                          kind == core::PlmKind::kDistilSim
                              ? MethodName(Method::kDeepJoinDistil)
                              : MethodName(Method::kDeepJoinMPNet));
  return run;
}

MethodResult BenchEnv::RunFastText() {
  core::TransformConfig tc;
  tc.option = core::TransformOption::kCol;
  tc.cell_budget = 0;  // the baseline averages over all cells
  core::FastTextColumnEncoder encoder(ft_.get(), tc);
  return RunEncoder(&encoder, MethodName(Method::kFastText));
}

MethodResult BenchEnv::RunRawPlm(core::PlmKind kind) {
  core::PlmEncoderConfig pc;
  pc.kind = kind;
  pc.max_seq_len = config_.seq_len;
  pc.transform.cell_budget = config_.seq_len / 3;
  pc.transform.dict = &tok_->dict();
  pc.seed = config_.seed ^ 0x4321;
  core::PlmColumnEncoder encoder(pc, sample_, *ft_);
  return RunEncoder(&encoder, MethodName(kind == core::PlmKind::kDistilSim
                                             ? Method::kRawDistil
                                             : Method::kRawMPNet));
}

MethodResult BenchEnv::RunTabert() {
  core::PlmEncoderConfig pc;
  pc.kind = core::PlmKind::kDistilSim;
  pc.max_seq_len = config_.seq_len;
  pc.transform.cell_budget = config_.seq_len / 3;
  pc.transform.dict = &tok_->dict();
  pc.seed = config_.seed ^ 0xABCD;
  core::PlmColumnEncoder encoder(pc, sample_, *ft_);
  core::FineTuneConfig ftc;
  ftc.batch_size = config_.batch;
  ftc.max_steps = config_.steps / 2;
  ftc.seed = config_.seed ^ 0x321;
  core::TrainTabertStyle(encoder, sample_, ftc);
  return RunEncoder(&encoder, MethodName(Method::kTabert));
}

MethodResult BenchEnv::RunMlp(core::JoinType join_type) {
  nn::MlpConfig mc;
  mc.input_dim = ft_->dim();
  mc.hidden_dim = 64;
  mc.seed = config_.seed ^ 0x33;
  auto mlp = std::make_shared<nn::MlpRegressor>(mc);
  core::TransformConfig tc;
  tc.option = core::TransformOption::kCol;
  tc.cell_budget = 0;
  core::MlpColumnEncoder encoder(mlp, ft_.get(), tc);
  core::FineTuneConfig ftc;
  ftc.batch_size = config_.batch;
  ftc.max_steps = config_.steps * 6;  // MLP steps are cheap
  ftc.lr = 2e-3;
  ftc.weight_decay = 0.0;  // regression on small nets: decay only hurts
  ftc.seed = config_.seed ^ 0x55;
  auto data = PrepareData(join_type, 0.0);
  core::TrainMlp(encoder, sample_, data, ftc);
  return RunEncoder(&encoder, MethodName(Method::kMlp));
}

MethodResult BenchEnv::RunLshEnsemble() {
  join::LshEnsembleConfig lc;
  join::LshEnsembleIndex index(tok_.get(), lc);
  MethodResult out;
  out.name = MethodName(Method::kLshEnsemble);
  TimeAccumulator total_acc;
  for (const auto& q : queries_) {
    const auto qt = tok_->EncodeQuery(q);
    WallTimer t;
    auto scored = index.SearchTopK(qt, config_.k_max);
    total_acc.Add(t.ElapsedSeconds());
    out.rankings.push_back(TopIds(scored, config_.k_max));
  }
  out.mean_total_ms = total_acc.MeanMillis();
  return out;
}

MethodResult BenchEnv::RunJosie() {
  join::JosieIndex index(tok_.get());
  MethodResult out;
  out.name = MethodName(Method::kJosie);
  TimeAccumulator total_acc;
  for (const auto& q : queries_) {
    const auto qt = tok_->EncodeQuery(q);
    WallTimer t;
    auto scored = index.SearchTopK(qt, config_.k_max);
    total_acc.Add(t.ElapsedSeconds());
    out.rankings.push_back(TopIds(scored, config_.k_max));
  }
  out.mean_total_ms = total_acc.MeanMillis();
  return out;
}

MethodResult BenchEnv::RunPexeso(float tau) {
  join::PexesoConfig pc;
  pc.tau = tau;
  join::PexesoIndex index(&store(), pc);
  MethodResult out;
  out.name = MethodName(Method::kPexeso);
  TimeAccumulator total_acc;
  for (size_t q = 0; q < queries_.size(); ++q) {
    const auto& qv = QueryVectors(q);
    WallTimer t;
    auto scored =
        index.SearchTopK(qv.data(), queries_[q].cells.size(), config_.k_max);
    total_acc.Add(t.ElapsedSeconds());
    out.rankings.push_back(TopIds(scored, config_.k_max));
  }
  out.mean_total_ms = total_acc.MeanMillis();
  return out;
}

std::vector<u32> TopIds(const std::vector<u32>& ranking, size_t k) {
  return {ranking.begin(),
          ranking.begin() + static_cast<long>(std::min(k, ranking.size()))};
}

std::vector<u32> TopIds(const std::vector<Scored>& scored, size_t k) {
  std::vector<u32> out;
  out.reserve(std::min(k, scored.size()));
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    out.push_back(scored[i].id);
  }
  return out;
}

double MeanPrecision(const MethodResult& method,
                     const std::vector<std::vector<Scored>>& exact,
                     size_t k) {
  std::vector<double> ps;
  for (size_t q = 0; q < method.rankings.size(); ++q) {
    ps.push_back(eval::PrecisionAtK(TopIds(method.rankings[q], k),
                                    TopIds(exact[q], k)));
  }
  return eval::Mean(ps);
}

double MeanNdcg(const MethodResult& method,
                const std::vector<std::vector<Scored>>& exact, size_t k,
                const std::function<double(size_t, u32)>& jn_of) {
  std::vector<double> ns;
  for (size_t q = 0; q < method.rankings.size(); ++q) {
    auto jn = [&](u32 id) { return jn_of(q, id); };
    ns.push_back(eval::NdcgAtK(TopIds(method.rankings[q], k),
                               TopIds(exact[q], k), jn));
  }
  return eval::Mean(ns);
}

void PrintAccuracyTable(const std::string& title,
                        const std::vector<MethodResult>& methods,
                        const std::vector<std::vector<Scored>>& exact,
                        const std::function<double(size_t, u32)>& jn_of,
                        const std::vector<size_t>& ks) {
  std::vector<std::string> header = {"Method"};
  for (size_t k : ks) header.push_back("P@" + std::to_string(k));
  for (size_t k : ks) header.push_back("N@" + std::to_string(k));
  TablePrinter printer(header);
  for (const auto& m : methods) {
    std::vector<std::string> row = {m.name};
    for (size_t k : ks) {
      row.push_back(FormatDouble(MeanPrecision(m, exact, k), 3));
    }
    for (size_t k : ks) {
      row.push_back(FormatDouble(MeanNdcg(m, exact, k, jn_of), 3));
    }
    printer.AddRow(std::move(row));
  }
  printer.Print(title);
}

}  // namespace bench
}  // namespace deepjoin
