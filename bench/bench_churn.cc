// Churn benchmarks (google-benchmark) for the live-mutability layer
// (DESIGN.md §12): query latency while a mutator thread inserts and
// tombstones columns, the cost of each mutation primitive (in-memory and
// WAL-backed), snapshot publication, compaction, and the recall drift a
// churned graph accumulates against exact flat-index ground truth.
// tools/bench_snapshot.sh records the output in BENCH_churn.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/searcher.h"
#include "lake/generator.h"

namespace deepjoin {
namespace {

// One corpus for every benchmark: a repository pool the churn scripts draw
// fresh columns from, plus a fixed query set. Deliberately leaked so
// teardown stays off the benchmark clock (same idiom as bench_micro.cc).
struct ChurnCorpus {
  lake::Repository repo;
  std::vector<lake::Column> queries;
  std::unique_ptr<FastTextEmbedder> embedder;
  std::unique_ptr<core::FastTextColumnEncoder> encoder;
};

ChurnCorpus& Corpus() {
  static ChurnCorpus* corpus = [] {
    auto c = std::make_unique<ChurnCorpus>();
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(1234));
    c->repo = gen.GenerateRepository(1200);
    c->queries = gen.GenerateQueries(16);
    FastTextConfig fc;
    fc.dim = 16;
    c->embedder = std::make_unique<FastTextEmbedder>(fc);
    c->encoder = std::make_unique<core::FastTextColumnEncoder>(
        c->embedder.get(), core::TransformConfig{});
    return c.release();
  }();
  return *corpus;
}

/// Seeds a searcher with the first `n` pool columns (searcher ids 0..n-1
/// match pool positions, which the recall benchmark relies on).
lake::Repository SeedRepo(size_t n) {
  lake::Repository seed;
  for (u32 i = 0; i < static_cast<u32>(n); ++i) {
    seed.Add(Corpus().repo.column(i));
  }
  return seed;
}

/// Scratch directories for the live-mode benchmarks. A process-local
/// counter keeps repeated benchmark invocations (google-benchmark re-enters
/// the function while calibrating iteration counts) from colliding.
std::string FreshLiveDir(const char* tag) {
  static std::atomic<int> counter{0};
  auto dir = std::filesystem::temp_directory_path() /
             ("bench_churn_" + std::string(tag) + "_" +
              std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Background mutator: alternates AddColumn (drawing unseen pool columns,
/// wrapping when exhausted) with RemoveColumn of the oldest live id, so the
/// live size stays flat while ids churn. Auto-compaction (enabled by the
/// caller's SearcherConfig) bounds tombstone growth.
void ChurnLoop(core::EmbeddingSearcher& searcher,
               const std::atomic<bool>& stop) {
  auto& pool = Corpus().repo;
  std::vector<u32> live;
  for (u32 i = 0; i < static_cast<u32>(searcher.index_size()); ++i) {
    live.push_back(i);
  }
  size_t next_pool = live.size();
  size_t op = 0;
  while (!stop.load(std::memory_order_acquire)) {
    if (op % 2 == 0 || live.size() < 8) {
      auto id = searcher.AddColumn(
          pool.column(static_cast<u32>(next_pool++ % pool.size())));
      if (id.ok()) live.push_back(*id);
    } else {
      const u32 victim = live.front();
      live.erase(live.begin());
      searcher.RemoveColumn(victim).IgnoreError();
    }
    ++op;
  }
}

void ReportTail(benchmark::State& state, std::vector<double>& micros) {
  if (micros.empty()) return;
  std::sort(micros.begin(), micros.end());
  const auto pct = [&](double p) {
    const size_t i = static_cast<size_t>(p * static_cast<double>(
                                                 micros.size() - 1));
    return micros[i];
  };
  state.counters["p50_us"] = benchmark::Counter(pct(0.50));
  state.counters["p99_us"] = benchmark::Counter(pct(0.99));
  state.counters["max_us"] = benchmark::Counter(micros.back());
}

// ---- Search latency under churn --------------------------------------------
// Arg 0: churn on/off. The off run is the baseline; the paired JSON entries
// carry the interference cost of the writer (link-lock contention plus
// snapshot pins) on the read path, mean and tail.

void BM_SearchUnderChurn(benchmark::State& state) {
  const bool churn = state.range(0) != 0;
  auto& corpus = Corpus();
  core::SearcherConfig cfg;
  cfg.compact_min_dead = 128;
  cfg.compact_dead_fraction = 0.25;
  core::EmbeddingSearcher searcher(corpus.encoder.get(), cfg);
  if (!searcher.BuildIndex(SeedRepo(600)).ok()) {
    state.SkipWithError("BuildIndex failed");
    return;
  }

  std::atomic<bool> stop{false};
  std::thread mutator;
  if (churn) mutator = std::thread([&] { ChurnLoop(searcher, stop); });

  const core::SearchOptions options{.k = 10, .collect_stats = false};
  core::EmbeddingSearcher::SearchResult result;
  searcher.SearchInto(corpus.queries[0], options, &result);  // warm scratch
  std::vector<double> micros;
  micros.reserve(1 << 14);
  size_t i = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    searcher.SearchInto(corpus.queries[i++ % corpus.queries.size()], options,
                        &result);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result.ids.data());
    micros.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

  stop.store(true, std::memory_order_release);
  if (mutator.joinable()) mutator.join();
  ReportTail(state, micros);
}
BENCHMARK(BM_SearchUnderChurn)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"churn"})
    ->UseRealTime();

// ---- Mutation primitives ---------------------------------------------------

void BM_AddColumn(benchmark::State& state) {
  auto& corpus = Corpus();
  core::SearcherConfig cfg;
  core::EmbeddingSearcher searcher(corpus.encoder.get(), cfg);
  if (!searcher.BuildIndex(SeedRepo(200)).ok()) {
    state.SkipWithError("BuildIndex failed");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto id = searcher.AddColumn(
        corpus.repo.column(static_cast<u32>(i++ % corpus.repo.size())));
    benchmark::DoNotOptimize(id.ok());
  }
}
BENCHMARK(BM_AddColumn);

// Live-mode insert: the in-memory path plus one WAL record and its fsync.
// The gap against BM_AddColumn is the durability tax per mutation.
void BM_AddColumnLive(benchmark::State& state) {
  auto& corpus = Corpus();
  const std::string dir = FreshLiveDir("add");
  core::SearcherConfig cfg;
  core::EmbeddingSearcher searcher(corpus.encoder.get(), cfg);
  if (!searcher.OpenLive(dir).ok()) {
    state.SkipWithError("OpenLive failed");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto id = searcher.AddColumn(
        corpus.repo.column(static_cast<u32>(i++ % corpus.repo.size())));
    benchmark::DoNotOptimize(id.ok());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_AddColumnLive)->Unit(benchmark::kMillisecond);

// Add + remove as one cycle: removal alone cannot repeat (a column id dies
// for good), so the steady-state churn unit is the pair. Subtracting
// BM_AddColumn isolates the tombstone write.
void BM_AddRemoveCycle(benchmark::State& state) {
  auto& corpus = Corpus();
  core::SearcherConfig cfg;
  cfg.compact_min_dead = 1u << 30;  // never auto-compact: pure op cost
  core::EmbeddingSearcher searcher(corpus.encoder.get(), cfg);
  if (!searcher.BuildIndex(SeedRepo(200)).ok()) {
    state.SkipWithError("BuildIndex failed");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto id = searcher.AddColumn(
        corpus.repo.column(static_cast<u32>(i++ % corpus.repo.size())));
    if (!id.ok() || !searcher.RemoveColumn(*id).ok()) {
      state.SkipWithError("mutation failed");
      return;
    }
  }
}
BENCHMARK(BM_AddRemoveCycle);

// ---- Snapshot publication and compaction -----------------------------------

void BM_PublishSnapshotLive(benchmark::State& state) {
  auto& corpus = Corpus();
  const std::string dir = FreshLiveDir("publish");
  core::SearcherConfig cfg;
  core::EmbeddingSearcher searcher(corpus.encoder.get(), cfg);
  if (!searcher.BuildIndex(SeedRepo(static_cast<size_t>(state.range(0))))
           .ok() ||
      !searcher.OpenLive(dir).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    if (!searcher.PublishSnapshot().ok()) {
      state.SkipWithError("publish failed");
      return;
    }
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PublishSnapshotLive)
    ->Arg(200)
    ->Arg(600)
    ->ArgNames({"cols"})
    ->Unit(benchmark::kMillisecond);

void BM_Compact(benchmark::State& state) {
  auto& corpus = Corpus();
  const int dead = static_cast<int>(state.range(1));
  core::SearcherConfig cfg;
  cfg.compact_min_dead = 1u << 30;  // compaction only when we call it
  core::EmbeddingSearcher searcher(corpus.encoder.get(), cfg);
  if (!searcher.BuildIndex(SeedRepo(static_cast<size_t>(state.range(0))))
           .ok()) {
    state.SkipWithError("BuildIndex failed");
    return;
  }
  // Compaction retires tombstones, so each iteration re-creates them
  // off-clock: add `dead` columns, remove them, then time the rebuild.
  size_t next = corpus.repo.size();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<u32> victims;
    for (int d = 0; d < dead; ++d) {
      auto id = searcher.AddColumn(
          corpus.repo.column(static_cast<u32>(next++ % corpus.repo.size())));
      if (id.ok()) victims.push_back(*id);
    }
    for (const u32 v : victims) searcher.RemoveColumn(v).IgnoreError();
    state.ResumeTiming();
    if (!searcher.Compact().ok()) {
      state.SkipWithError("Compact failed");
      return;
    }
  }
}
BENCHMARK(BM_Compact)
    ->Args({300, 30})
    ->Args({300, 150})
    ->ArgNames({"cols", "dead"})
    ->Unit(benchmark::kMillisecond);

// ---- Recall drift ----------------------------------------------------------
// A churned HNSW graph is not the graph a fresh build would produce: links
// chosen against since-deleted neighbors stay, and tombstone filtering
// narrows the beam. This benchmark scripts a deterministic churn episode
// off-clock, times post-churn searches on-clock, and reports recall@10 of
// (a) the churned graph and (b) a fresh rebuild of the identical live set,
// both against exact flat-index ground truth. The drift counter
// (recall_rebuilt - recall_churned) is the headline number; the churn
// torture tests bound correctness, this bounds quality.

void BM_RecallAfterChurn(benchmark::State& state) {
  auto& corpus = Corpus();
  const size_t kSeed = 400;
  const int kOps = static_cast<int>(state.range(0));
  core::SearcherConfig cfg;
  cfg.compact_min_dead = 64;
  cfg.compact_dead_fraction = 0.25;
  core::EmbeddingSearcher churned(corpus.encoder.get(), cfg);
  if (!churned.BuildIndex(SeedRepo(kSeed)).ok()) {
    state.SkipWithError("BuildIndex failed");
    return;
  }

  // Scripted churn, tracking (searcher id -> pool position) for the live
  // survivors. Two adds per remove so the index grows while old ids die.
  std::vector<std::pair<u32, u32>> live;  // {searcher id, pool position}
  for (u32 i = 0; i < static_cast<u32>(kSeed); ++i) live.push_back({i, i});
  size_t next_pool = kSeed;
  for (int op = 0; op < kOps; ++op) {
    if (op % 3 == 2) {
      // Deterministic mid-list victim (not always the oldest) so removals
      // hit entry-point-adjacent nodes too.
      const size_t vi = (static_cast<size_t>(op) * 7919) % live.size();
      const u32 victim = live[vi].first;
      live.erase(live.begin() + static_cast<long>(vi));
      if (!churned.RemoveColumn(victim).ok()) {
        state.SkipWithError("RemoveColumn failed");
        return;
      }
    } else {
      const u32 pool_pos =
          static_cast<u32>(next_pool++ % corpus.repo.size());
      auto id = churned.AddColumn(corpus.repo.column(pool_pos));
      if (!id.ok()) {
        state.SkipWithError("AddColumn failed");
        return;
      }
      live.push_back({*id, pool_pos});
    }
  }

  // Exact ground truth and a fresh rebuild over the identical live set.
  // Both use position-in-`live` ids; `live` maps them back.
  lake::Repository live_repo;
  for (const auto& [id, pool_pos] : live) {
    live_repo.Add(corpus.repo.column(pool_pos));
  }
  core::SearcherConfig flat_cfg;
  flat_cfg.backend = core::AnnBackend::kFlat;
  core::EmbeddingSearcher exact(corpus.encoder.get(), flat_cfg);
  core::EmbeddingSearcher rebuilt(corpus.encoder.get(), cfg);
  if (!exact.BuildIndex(live_repo).ok() ||
      !rebuilt.BuildIndex(live_repo).ok()) {
    state.SkipWithError("ground-truth build failed");
    return;
  }

  const core::SearchOptions options{.k = 10, .collect_stats = false};
  const size_t k = static_cast<size_t>(options.k);
  double hit_churned = 0, hit_rebuilt = 0, total = 0;
  for (const auto& q : corpus.queries) {
    const auto truth = exact.Search(q, options).ids;
    // Translate ground-truth positions into churned-searcher ids.
    std::vector<u32> truth_ids;
    for (const u32 pos : truth) truth_ids.push_back(live[pos].first);
    const auto got_churned = churned.Search(q, options).ids;
    const auto got_rebuilt = rebuilt.Search(q, options).ids;
    for (size_t j = 0; j < std::min(k, truth.size()); ++j) {
      total += 1.0;
      if (std::find(got_churned.begin(), got_churned.end(), truth_ids[j]) !=
          got_churned.end()) {
        hit_churned += 1.0;
      }
      if (std::find(got_rebuilt.begin(), got_rebuilt.end(), truth[j]) !=
          got_rebuilt.end()) {
        hit_rebuilt += 1.0;
      }
    }
  }

  // The timed loop measures post-churn query latency on the aged graph.
  core::EmbeddingSearcher::SearchResult result;
  size_t i = 0;
  for (auto _ : state) {
    churned.SearchInto(corpus.queries[i++ % corpus.queries.size()], options,
                       &result);
    benchmark::DoNotOptimize(result.ids.data());
  }
  state.counters["recall_churned"] =
      benchmark::Counter(total > 0 ? hit_churned / total : 0.0);
  state.counters["recall_rebuilt"] =
      benchmark::Counter(total > 0 ? hit_rebuilt / total : 0.0);
  state.counters["recall_drift"] =
      benchmark::Counter((hit_rebuilt - hit_churned) / std::max(total, 1.0));
}
BENCHMARK(BM_RecallAfterChurn)
    ->Arg(300)
    ->Arg(900)
    ->ArgNames({"ops"});

}  // namespace
}  // namespace deepjoin

BENCHMARK_MAIN();
