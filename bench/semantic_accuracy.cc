#include "bench/semantic_accuracy.h"

#include "util/string_util.h"

namespace deepjoin {
namespace bench {

int RunSemanticAccuracyMain(int argc, char** argv, float default_tau,
                            int table_no, const char* default_corpus) {
  Flags flags;
  flags.Parse(argc, argv);
  const std::string which = flags.GetString("corpus", default_corpus);
  for (const std::string corpus : {"webtable", "wikitable"}) {
    if (which != "both" && which != corpus) continue;
    BenchConfig cfg = BenchConfig::FromFlags(flags);
    cfg.corpus = corpus;
    if (!flags.Has("tau")) cfg.tau = default_tau;

    BenchEnv env(cfg);
    auto exact = env.ExactSemantic(cfg.tau);
    std::vector<MethodResult> methods;
    methods.push_back(env.RunLshEnsemble());
    methods.push_back(env.RunFastText());
    methods.push_back(env.RunDeepJoin(core::PlmKind::kDistilSim,
                                      core::JoinType::kSemantic,
                                      core::TransformOption::kTitleColnameStatCol,
                                      cfg.shuffle_rate)
                          .result);
    methods.push_back(env.RunDeepJoin(core::PlmKind::kMPNetSim,
                                      core::JoinType::kSemantic,
                                      core::TransformOption::kTitleColnameStatCol,
                                      cfg.shuffle_rate)
                          .result);
    auto jn = [&env, &cfg](size_t q, u32 id) {
      return env.SemanticJn(q, id, cfg.tau);
    };
    PrintAccuracyTable("Table " + std::to_string(table_no) + " (" + corpus +
                           "): accuracy of semantic joins, tau = " +
                           FormatDouble(cfg.tau, 1),
                       methods, exact, jn);
  }
  return 0;
}

}  // namespace bench
}  // namespace deepjoin
