// Table 14: mean processing time per query for k = 10..50. Expected
// shapes: the exact methods' cost moves with k a little and stays two
// orders of magnitude above the embedding methods; DeepJoin's cost is
// dominated by query encoding, which is independent of k, so its growth
// is marginal.
#include <thread>

#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

namespace {

const std::vector<size_t> kKs = {10, 20, 30, 40, 50};

struct Row {
  std::string method;
  double encode_ms = -1.0;
  std::vector<double> total_ms;
};

void PrintRows(const std::string& title, const std::vector<Row>& rows) {
  std::vector<std::string> header = {"Method", "query encoding (ms)"};
  for (size_t k : kKs) header.push_back("k=" + std::to_string(k));
  TablePrinter printer(header);
  for (const auto& r : rows) {
    std::vector<std::string> cells = {
        r.method, r.encode_ms < 0 ? "-" : FormatDouble(r.encode_ms, 2)};
    for (double t : r.total_ms) cells.push_back(FormatDouble(t, 2));
    printer.AddRow(std::move(cells));
  }
  printer.Print(title);
}

template <typename SearchFn>
Row TimeSweep(const std::string& name, SearchFn&& search, size_t queries) {
  Row row;
  row.method = name;
  for (size_t k : kKs) {
    WallTimer t;
    search(k);
    row.total_ms.push_back(t.ElapsedMillis() / static_cast<double>(queries));
  }
  return row;
}

void RunCorpus(const BenchConfig& cfg) {
  BenchEnv env(cfg);
  auto dj_equi = env.RunDeepJoin(core::JoinType::kEqui);
  auto dj_sem = env.RunDeepJoin(core::JoinType::kSemantic);
  const size_t nq = env.queries().size();

  // Pre-encode query token sets / vectors so the sweep times only search.
  std::vector<join::TokenSet> qts;
  for (const auto& q : env.queries()) qts.push_back(env.tok().EncodeQuery(q));

  std::vector<Row> equi_rows;
  {
    join::LshEnsembleIndex lsh(&env.tok(), join::LshEnsembleConfig{});
    equi_rows.push_back(TimeSweep("LSH Ensemble", [&](size_t k) {
      for (const auto& qt : qts) lsh.SearchTopK(qt, k);
    }, nq));
    join::JosieIndex josie(&env.tok());
    equi_rows.push_back(TimeSweep("JOSIE", [&](size_t k) {
      for (const auto& qt : qts) josie.SearchTopK(qt, k);
    }, nq));

    core::TransformConfig ft_tc;
    ft_tc.option = core::TransformOption::kCol;
    ft_tc.cell_budget = 0;
    core::FastTextColumnEncoder ft_encoder(&env.ft(), ft_tc);
    auto encoder_sweep = [&](core::ColumnEncoder* enc,
                             const std::string& name, bool batched) {
      core::SearcherConfig sc;
      core::EmbeddingSearcher searcher(enc, sc);
      DJ_CHECK(searcher.BuildIndex(env.repo()).ok());
      Row row;
      row.method = name;
      const size_t threads =
          std::max(2u, std::thread::hardware_concurrency());
      ThreadPool pool(threads);
      for (size_t k : kKs) {
        if (batched) {
          auto outs = searcher.SearchBatch(env.queries(), {.k = k}, &pool);
          row.encode_ms = outs.front().stats.SpanMs("searcher.encode");
          row.total_ms.push_back(outs.front().stats.total_ms());
        } else {
          TimeAccumulator enc_acc, total_acc;
          for (const auto& q : env.queries()) {
            auto out = searcher.Search(q, {.k = k});
            enc_acc.Add(out.stats.SpanMs("searcher.encode") / 1e3);
            total_acc.Add(out.stats.total_ms() / 1e3);
          }
          row.encode_ms = enc_acc.MeanMillis();
          row.total_ms.push_back(total_acc.MeanMillis());
        }
      }
      return row;
    };
    equi_rows.push_back(encoder_sweep(&ft_encoder, "fastText", false));
    equi_rows.push_back(
        encoder_sweep(&dj_equi.model->encoder(), "DeepJoin (CPU)", false));
    equi_rows.push_back(encoder_sweep(&dj_equi.model->encoder(),
                                      "DeepJoin (batched)", true));

    PrintRows("Table 14 (" + cfg.corpus + ", equi-joins): time vs k",
              equi_rows);

    std::vector<Row> sem_rows;
    join::PexesoConfig pc;
    pc.tau = cfg.tau;
    join::PexesoIndex pexeso(&env.store(), pc);
    std::vector<std::vector<float>> qvs;
    for (size_t q = 0; q < nq; ++q) qvs.push_back(env.QueryVectors(q));
    sem_rows.push_back(TimeSweep("PEXESO", [&](size_t k) {
      for (size_t q = 0; q < nq; ++q) {
        pexeso.SearchTopK(qvs[q].data(), env.queries()[q].cells.size(), k);
      }
    }, nq));
    sem_rows.push_back(
        encoder_sweep(&dj_sem.model->encoder(), "DeepJoin (CPU)", false));
    sem_rows.push_back(encoder_sweep(&dj_sem.model->encoder(),
                                     "DeepJoin (batched)", true));
    PrintRows("Table 14 (" + cfg.corpus + ", semantic joins): time vs k",
              sem_rows);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const std::string which = flags.GetString("corpus", "both");
  for (const std::string corpus : {"webtable", "wikitable"}) {
    if (which != "both" && which != corpus) continue;
    BenchConfig cfg = BenchConfig::FromFlags(flags);
    cfg.corpus = corpus;
    if (!flags.Has("steps")) cfg.steps = 30;  // latency-only bench
    cfg.num_queries = std::min<size_t>(cfg.num_queries, 20);
    RunCorpus(cfg);
  }
  return 0;
}
