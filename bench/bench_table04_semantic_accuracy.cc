// Table 4: semantic-join accuracy, tau = 0.9, labelled by the exact
// semantic solution (PEXESO's definition).
#include "bench/semantic_accuracy.h"

int main(int argc, char** argv) {
  return deepjoin::bench::RunSemanticAccuracyMain(argc, argv, 0.9f, 4);
}
