// bench_scale: the beyond-RAM matrix of DESIGN.md §14 — {float32, SQ8} x
// {owned, mapped} over one flat-backend corpus, measured end to end
// through the unified ann::SaveIndexFile / ann::OpenIndex API.
//
// For every matrix point it records:
//   open_ms            wall time of OpenIndex (mapped opens must be O(1)
//                      in the index size — compare against owned)
//   store_memory_bytes heap bytes of the primary row store (mapped
//                      payloads count 0: they live in the page cache)
//   search_ms_per_query  mean exact-scan latency at k
//   recall_at_k        against the float in-memory ground truth
// plus a refine_factor sweep over the SQ8+refine artifact, which is the
// recall-vs-memory trade the README table quotes.
//
// The headline acceptance numbers land in the derived block:
//   sq8_memory_reduction >= 3.5   (owned float bytes / owned SQ8 bytes)
//   mapped open_ms flat across a corpus hundreds of MB large
//
// Usage: bench_scale [--rows=500000] [--dim=256] [--queries=32] [--k=10]
//                    [--dir=/tmp] [--out=BENCH_scale.json]
// Emits JSON to --out (stdout when unset). Runs in minutes at the default
// 500K x 256 scale; shrink --rows for a smoke run.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ann/index_io.h"
#include "ann/vector_index.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace deepjoin {
namespace {

struct MatrixPoint {
  std::string storage;
  std::string map;
  bool refine_payload = false;
  double open_ms = 0.0;
  u64 store_memory_bytes = 0;
  u64 refine_memory_bytes = 0;
  double search_ms_per_query = 0.0;
  double recall = 0.0;
};

std::vector<float> RandomRows(u64 n, int dim, u64 seed) {
  Rng rng(seed);
  std::vector<float> rows(n * static_cast<u64>(dim));
  for (float& v : rows) {
    v = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  }
  return rows;
}

double Recall(const std::vector<std::vector<ann::Neighbor>>& truth,
              const std::vector<std::vector<ann::Neighbor>>& got) {
  size_t agree = 0, total = 0;
  for (size_t q = 0; q < truth.size(); ++q) {
    for (const ann::Neighbor& w : truth[q]) {
      ++total;
      for (const ann::Neighbor& g : got[q]) {
        if (g.id == w.id) {
          ++agree;
          break;
        }
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(agree) / static_cast<double>(total);
}

std::vector<std::vector<ann::Neighbor>> SearchAll(
    const ann::VectorIndex& index, const std::vector<float>& queries,
    size_t nq, int dim, size_t k, int refine_factor, double* ms_per_query) {
  ann::AnnSearchParams params;
  params.refine_factor = refine_factor;
  std::vector<std::vector<ann::Neighbor>> out(nq);
  WallTimer timer;
  for (size_t q = 0; q < nq; ++q) {
    index.SearchInto(queries.data() + q * static_cast<size_t>(dim), k, params,
                     &out[q]);
  }
  *ms_per_query = timer.ElapsedMillis() / static_cast<double>(nq);
  return out;
}

int Run(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  const u64 rows_n = static_cast<u64>(flags.GetInt("rows", 500000));
  const int dim = static_cast<int>(flags.GetInt("dim", 256));
  const size_t nq = static_cast<size_t>(flags.GetInt("queries", 32));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const std::string dir = flags.GetString("dir", "/tmp");
  const std::string out_path = flags.GetString("out", "");
  const int refine_sweep[] = {0, 2, 4, 8};

  std::fprintf(stderr, "bench_scale: %llu rows x %d dims, %zu queries, k=%zu\n",
               static_cast<unsigned long long>(rows_n), dim, nq, k);

  const std::vector<float> rows = RandomRows(rows_n, dim, 42);
  const std::vector<float> queries =
      RandomRows(static_cast<u64>(nq), dim, 1337);

  ann::FlatIndex original(dim);
  original.AddBatch(rows.data(), rows_n);
  double truth_ms = 0.0;
  const auto truth =
      SearchAll(original, queries, nq, dim, k, 0, &truth_ms);
  std::fprintf(stderr, "bench_scale: ground truth %.2f ms/query\n", truth_ms);

  struct Artifact {
    std::string path;
    std::string storage;
    bool refine_payload;
  };
  const std::vector<Artifact> artifacts = {
      {dir + "/bench_scale_float.djix", "float", false},
      {dir + "/bench_scale_sq8.djix", "sq8", false},
      {dir + "/bench_scale_sq8_refine.djix", "sq8+refine", true},
  };
  for (const Artifact& a : artifacts) {
    ann::SaveOptions save;
    if (a.storage != "float") {
      save.storage = ann::StorageKind::kSq8;
      save.keep_float_refine = a.refine_payload;
    }
    WallTimer timer;
    const Status st = ann::SaveIndexFile(original, a.path, save);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_scale: save %s: %s\n", a.path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "bench_scale: saved %s in %.0f ms\n",
                 a.storage.c_str(), timer.ElapsedMillis());
  }

  std::vector<MatrixPoint> points;
  std::vector<MatrixPoint> refine_points;
  for (const Artifact& a : artifacts) {
    for (const ann::MapMode map :
         {ann::MapMode::kOwned, ann::MapMode::kMapped}) {
      ann::OpenOptions open;
      open.map = map;
      WallTimer open_timer;
      auto loaded = ann::OpenIndex(a.path, open);
      const double open_ms = open_timer.ElapsedMillis();
      if (!loaded.ok()) {
        std::fprintf(stderr, "bench_scale: open %s: %s\n", a.path.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      const std::unique_ptr<ann::VectorIndex> index =
          std::move(loaded).value();
      const ann::FlatIndex* flat = index->AsFlat();
      MatrixPoint p;
      p.storage = a.storage;
      p.map = map == ann::MapMode::kOwned ? "owned" : "mapped";
      p.refine_payload = a.refine_payload;
      p.open_ms = open_ms;
      p.store_memory_bytes = flat->store().memory_bytes();
      p.refine_memory_bytes = flat->refine_store() != nullptr
                                  ? flat->refine_store()->memory_bytes()
                                  : 0;
      p.recall = Recall(truth, SearchAll(*index, queries, nq, dim, k, 0,
                                         &p.search_ms_per_query));
      std::fprintf(stderr,
                   "bench_scale: %-10s %-6s open %8.2f ms  mem %10llu B  "
                   "%7.2f ms/q  recall %.3f\n",
                   p.storage.c_str(), p.map.c_str(), p.open_ms,
                   static_cast<unsigned long long>(p.store_memory_bytes),
                   p.search_ms_per_query, p.recall);
      points.push_back(p);

      // The recall-vs-memory knob: rerank a growing quantized candidate
      // pool with the exact float payload (mapped artifact only — the
      // serving configuration).
      if (a.refine_payload && map == ann::MapMode::kMapped) {
        for (const int r : refine_sweep) {
          MatrixPoint rp = p;
          rp.recall = Recall(truth,
                             SearchAll(*index, queries, nq, dim, k, r,
                                       &rp.search_ms_per_query));
          rp.map = "mapped/refine=" + std::to_string(r);
          std::fprintf(stderr,
                       "bench_scale: %-10s refine=%d  %7.2f ms/q  "
                       "recall %.3f\n",
                       p.storage.c_str(), r, rp.search_ms_per_query,
                       rp.recall);
          refine_points.push_back(rp);
        }
      }
    }
    std::remove(a.path.c_str());
  }

  // ---- derived acceptance figures ----
  double float_owned_mem = 0, sq8_owned_mem = 0;
  double float_owned_open = 0, float_mapped_open = 0;
  double mapped_open_max = 0;
  for (const MatrixPoint& p : points) {
    if (p.storage == "float" && p.map == "owned") {
      float_owned_mem = static_cast<double>(p.store_memory_bytes);
      float_owned_open = p.open_ms;
    }
    if (p.storage == "sq8" && p.map == "owned") {
      sq8_owned_mem = static_cast<double>(p.store_memory_bytes);
    }
    if (p.storage == "float" && p.map == "mapped") {
      float_mapped_open = p.open_ms;
    }
    if (p.map == "mapped" && p.open_ms > mapped_open_max) {
      mapped_open_max = p.open_ms;
    }
  }
  const double reduction =
      sq8_owned_mem > 0 ? float_owned_mem / sq8_owned_mem : 0.0;
  const double open_speedup =
      float_mapped_open > 0 ? float_owned_open / float_mapped_open : 0.0;

  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"rows\": %llu,\n  \"dim\": %d,\n  \"queries\": %zu,\n"
                "  \"k\": %zu,\n",
                static_cast<unsigned long long>(rows_n), dim, nq, k);
  json += buf;
  json += "  \"matrix\": [\n";
  const auto emit = [&](const MatrixPoint& p, bool last) {
    std::snprintf(
        buf, sizeof(buf),
        "    {\"storage\": \"%s\", \"map\": \"%s\", \"open_ms\": %.3f, "
        "\"store_memory_bytes\": %llu, \"refine_memory_bytes\": %llu, "
        "\"search_ms_per_query\": %.3f, \"recall_at_k\": %.4f}%s\n",
        p.storage.c_str(), p.map.c_str(), p.open_ms,
        static_cast<unsigned long long>(p.store_memory_bytes),
        static_cast<unsigned long long>(p.refine_memory_bytes),
        p.search_ms_per_query, p.recall, last ? "" : ",");
    json += buf;
  };
  for (size_t i = 0; i < points.size(); ++i) {
    emit(points[i], false);
  }
  for (size_t i = 0; i < refine_points.size(); ++i) {
    emit(refine_points[i], i + 1 == refine_points.size());
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"derived\": {\n"
                "    \"sq8_memory_reduction\": %.2f,\n"
                "    \"float_owned_open_ms\": %.2f,\n"
                "    \"float_mapped_open_ms\": %.2f,\n"
                "    \"mapped_open_speedup\": %.1f,\n"
                "    \"mapped_open_ms_max\": %.2f\n"
                "  }\n}\n",
                reduction, float_owned_open, float_mapped_open, open_speedup,
                mapped_open_max);
  json += buf;

  if (out_path.empty()) {
    std::printf("%s", json.c_str());
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_scale: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "bench_scale: wrote %s\n", out_path.c_str());
  }
  if (reduction < 3.5) {
    std::fprintf(stderr,
                 "bench_scale: FAIL sq8_memory_reduction %.2f < 3.5\n",
                 reduction);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace deepjoin

int main(int argc, char** argv) { return deepjoin::Run(argc, argv); }
