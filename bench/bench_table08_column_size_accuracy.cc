// Table 8: accuracy by target-column size group (5-10, 11-50, >50 cells)
// on Webtable, k = 10, for equi- and semantic joins. Each group gets its
// own filtered repository and size-matched queries, as in the paper.
#include "bench/common.h"

using namespace deepjoin;
using namespace deepjoin::bench;

namespace {

struct Group {
  const char* label;
  size_t lo;
  size_t hi;
};

constexpr Group kGroups[] = {
    {"5-10", 5, 10}, {"11-50", 11, 50}, {">50", 51, 100000}};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  BenchConfig base = BenchConfig::FromFlags(flags);
  base.corpus = "webtable";
  // Six fine-tunes (3 groups x 2 join types); default to a lighter profile.
  if (!flags.Has("steps")) base.steps = 60;
  const size_t group_repo = base.repo_size / 2;
  const size_t k = 10;

  TablePrinter equi_printer(
      {"Method", "P@10 (5-10)", "(11-50)", "(>50)", "N@10 (5-10)", "(11-50)",
       "(>50)"});
  TablePrinter sem_printer(
      {"Method", "P@10 (5-10)", "(11-50)", "(>50)", "N@10 (5-10)", "(11-50)",
       "(>50)"});
  // method name -> per-group metric cells
  std::vector<std::string> equi_names, sem_names;
  std::vector<std::vector<std::string>> equi_cells, sem_cells;

  for (const Group& g : kGroups) {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(base.seed));
    auto repo = gen.GenerateRepositoryInSizeRange(group_repo, g.lo, g.hi);
    auto sample = gen.GenerateQueries(base.sample_size, 0x5A17);
    auto queries = gen.GenerateQueriesInSizeRange(
        std::min<size_t>(base.num_queries, 20), g.lo, g.hi, 0xC0FE);
    std::printf("[group %s] repo=%zu queries=%zu\n", g.label, repo.size(),
                queries.size());
    BenchEnv env(base, std::move(repo), std::move(sample),
                 std::move(queries));

    // --- equi methods ---
    std::vector<MethodResult> equi;
    equi.push_back(env.RunLshEnsemble());
    equi.push_back(env.RunFastText());
    equi.push_back(env.RunRawPlm(core::PlmKind::kDistilSim));
    equi.push_back(env.RunRawPlm(core::PlmKind::kMPNetSim));
    equi.push_back(env.RunTabert());
    equi.push_back(env.RunMlp(core::JoinType::kEqui));
    equi.push_back(env.RunDeepJoin(core::JoinType::kEqui).result);
    auto ejn = [&env](size_t q, u32 id) { return env.EquiJn(q, id); };
    const auto& exact_equi = env.ExactEqui();
    // --- semantic methods ---
    std::vector<MethodResult> sem;
    sem.push_back(env.RunLshEnsemble());
    sem.push_back(env.RunFastText());
    sem.push_back(env.RunDeepJoin(core::JoinType::kSemantic).result);
    auto exact_sem = env.ExactSemantic(base.tau);
    auto sjn = [&env, &base](size_t q, u32 id) {
      return env.SemanticJn(q, id, base.tau);
    };

    auto fold = [&](const std::vector<MethodResult>& methods,
                    const std::vector<std::vector<Scored>>& exact,
                    const std::function<double(size_t, u32)>& jn,
                    std::vector<std::string>& names,
                    std::vector<std::vector<std::string>>& cells) {
      for (size_t m = 0; m < methods.size(); ++m) {
        if (names.size() <= m) {
          names.push_back(methods[m].name);
          cells.emplace_back();
        }
        cells[m].push_back(FormatDouble(MeanPrecision(methods[m], exact, k), 3));
        cells[m].push_back(FormatDouble(MeanNdcg(methods[m], exact, k, jn), 3));
      }
    };
    fold(equi, exact_equi, ejn, equi_names, equi_cells);
    fold(sem, exact_sem, sjn, sem_names, sem_cells);
  }

  // Cells arrive (P,N) per group; reorder to P,P,P,N,N,N like the paper.
  auto emit = [](TablePrinter& printer,
                 const std::vector<std::string>& names,
                 const std::vector<std::vector<std::string>>& cells) {
    for (size_t m = 0; m < names.size(); ++m) {
      std::vector<std::string> row = {names[m]};
      for (size_t g = 0; g < 3; ++g) row.push_back(cells[m][2 * g]);
      for (size_t g = 0; g < 3; ++g) row.push_back(cells[m][2 * g + 1]);
      printer.AddRow(std::move(row));
    }
  };
  emit(equi_printer, equi_names, equi_cells);
  emit(sem_printer, sem_names, sem_cells);
  equi_printer.Print("Table 8 (Webtable, equi-joins): accuracy by column size");
  sem_printer.Print(
      "Table 8 (Webtable, semantic joins): accuracy by column size");
  return 0;
}
