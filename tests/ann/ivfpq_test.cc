#include "ann/ivfpq.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace deepjoin {
namespace ann {
namespace {

std::vector<float> ClusteredData(size_t n, int dim, Rng& rng) {
  // Clustered data is PQ's natural habitat (residuals are small).
  std::vector<float> centers(8 * static_cast<size_t>(dim));
  for (auto& x : centers) x = static_cast<float>(rng.Normal(0.0, 3.0));
  std::vector<float> data(n * static_cast<size_t>(dim));
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.UniformU64(8);
    for (int d = 0; d < dim; ++d) {
      data[i * dim + d] = centers[c * dim + d] +
                          static_cast<float>(rng.Normal(0.0, 0.3));
    }
  }
  return data;
}

TEST(IvfPqTest, RequiresTraining) {
  IvfPqConfig c;
  c.dim = 8;
  IvfPqIndex index(c);
  EXPECT_FALSE(index.trained());
}

TEST(IvfPqTest, RecallOnClusteredData) {
  Rng rng(11);
  const int dim = 16;
  const size_t n = 2000;
  auto data = ClusteredData(n, dim, rng);

  IvfPqConfig c;
  c.dim = dim;
  c.nlist = 16;
  c.m = 4;
  c.nbits = 6;
  c.nprobe = 8;
  IvfPqIndex index(c);
  index.Train(data.data(), n);
  index.AddBatch(data.data(), n);

  FlatIndex flat(dim);
  flat.AddBatch(data.data(), n);

  double recall = 0.0;
  const int nq = 20;
  for (int q = 0; q < nq; ++q) {
    const size_t probe = rng.UniformU64(n);
    auto exact = flat.Search(&data[probe * dim], 10);
    auto approx = index.Search(&data[probe * dim], 10);
    size_t hits = 0;
    for (const auto& a : approx) {
      for (const auto& e : exact) {
        if (a.id == e.id) {
          ++hits;
          break;
        }
      }
    }
    recall += static_cast<double>(hits) / 10.0;
  }
  EXPECT_GT(recall / nq, 0.5) << "IVFPQ recall collapsed";
}

TEST(IvfPqTest, MoreProbesNeverHurtRecallMuch) {
  Rng rng(13);
  const int dim = 8;
  const size_t n = 1000;
  auto data = ClusteredData(n, dim, rng);
  IvfPqConfig c;
  c.dim = dim;
  c.nlist = 16;
  c.m = 4;
  c.nbits = 5;
  IvfPqIndex index(c);
  index.Train(data.data(), n);
  index.AddBatch(data.data(), n);
  FlatIndex flat(dim);
  flat.AddBatch(data.data(), n);

  auto mean_recall = [&](int nprobe) {
    AnnSearchParams params;
    params.nprobe = nprobe;
    Rng qrng(17);
    double sum = 0.0;
    for (int q = 0; q < 15; ++q) {
      const size_t probe = qrng.UniformU64(n);
      auto exact = flat.Search(&data[probe * dim], 5);
      auto approx = index.Search(&data[probe * dim], 5, params);
      size_t hits = 0;
      for (const auto& a : approx) {
        for (const auto& e : exact) {
          if (a.id == e.id) {
            ++hits;
            break;
          }
        }
      }
      sum += hits / 5.0;
    }
    return sum / 15;
  };
  EXPECT_GE(mean_recall(16) + 0.05, mean_recall(2));
}

TEST(IvfPqTest, HnswCoarseQuantizerWorks) {
  Rng rng(19);
  const int dim = 8;
  const size_t n = 800;
  auto data = ClusteredData(n, dim, rng);
  IvfPqConfig c;
  c.dim = dim;
  c.nlist = 32;
  c.m = 4;
  c.nbits = 5;
  c.nprobe = 8;
  c.hnsw_coarse = true;  // the Faiss-style composition of §3.3
  IvfPqIndex index(c);
  index.Train(data.data(), n);
  index.AddBatch(data.data(), n);
  EXPECT_STREQ(index.name(), "ivfpq+hnsw");
  auto hits = index.Search(data.data(), 5);
  EXPECT_EQ(hits.size(), 5u);
}

TEST(IvfPqTest, NlistClampedToTrainingSize) {
  Rng rng(23);
  const int dim = 4;
  std::vector<float> data(10 * dim);
  for (auto& x : data) x = static_cast<float>(rng.Normal());
  IvfPqConfig c;
  c.dim = dim;
  c.nlist = 64;  // > n
  c.m = 2;
  c.nbits = 4;
  IvfPqIndex index(c);
  index.Train(data.data(), 10);
  index.AddBatch(data.data(), 10);
  EXPECT_EQ(index.size(), 10u);
  auto hits = index.Search(data.data(), 3);
  EXPECT_FALSE(hits.empty());
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
