#include "ann/vector_index.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace deepjoin {
namespace ann {
namespace {

TEST(FlatIndexTest, FindsNearest) {
  FlatIndex index(2);
  const float vecs[] = {0, 0, 1, 1, 5, 5};
  index.AddBatch(vecs, 3);
  const float q[] = {0.9f, 0.9f};
  auto hits = index.Search(q, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].id, 0u);
}

TEST(FlatIndexTest, DistancesAreSquaredL2) {
  FlatIndex index(2);
  const float v[] = {3, 4};
  index.Add(v);
  const float q[] = {0, 0};
  auto hits = index.Search(q, 1);
  EXPECT_FLOAT_EQ(hits[0].dist, 25.0f);
}

TEST(FlatIndexTest, KLargerThanIndexSize) {
  FlatIndex index(1);
  const float v[] = {1.0f};
  index.Add(v);
  auto hits = index.Search(v, 10);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(FlatIndexTest, EmptyIndex) {
  FlatIndex index(3);
  const float q[] = {0, 0, 0};
  EXPECT_TRUE(index.Search(q, 5).empty());
}

TEST(FlatIndexTest, TieBreaksByLowerId) {
  FlatIndex index(1);
  const float v[] = {2.0f};
  index.Add(v);
  index.Add(v);
  index.Add(v);
  const float q[] = {2.0f};
  auto hits = index.Search(q, 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[1].id, 1u);
  EXPECT_EQ(hits[2].id, 2u);
}

TEST(FlatIndexTest, SortedAscendingOnRandomData) {
  Rng rng(7);
  FlatIndex index(4);
  std::vector<float> data(4 * 200);
  for (auto& x : data) x = static_cast<float>(rng.Normal());
  index.AddBatch(data.data(), 200);
  const float q[] = {0, 0, 0, 0};
  auto hits = index.Search(q, 50);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].dist, hits[i].dist);
  }
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
