// Parameterized recall sweeps over the ANN indexes: for every (M,
// ef_search) / (nlist, nprobe) configuration, recall against the flat
// ground truth must clear a floor, results must be sorted, and ids valid.
#include <tuple>

#include <gtest/gtest.h>

#include "ann/hnsw.h"
#include "ann/ivfpq.h"
#include "util/rng.h"

namespace deepjoin {
namespace ann {
namespace {

constexpr int kDim = 12;
constexpr size_t kN = 1200;
constexpr size_t kK = 10;

std::vector<float> MakeData(u64 seed) {
  Rng rng(seed);
  std::vector<float> data(kN * kDim);
  for (auto& x : data) x = static_cast<float>(rng.Normal());
  return data;
}

double Recall(const std::vector<Neighbor>& approx,
              const std::vector<Neighbor>& exact) {
  size_t hits = 0;
  for (const auto& a : approx) {
    for (const auto& e : exact) {
      if (a.id == e.id) {
        ++hits;
        break;
      }
    }
  }
  return exact.empty() ? 1.0
                       : static_cast<double>(hits) /
                             static_cast<double>(exact.size());
}

// ---- HNSW sweep: (M, ef_search, expected recall floor) ----

class HnswParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(HnswParamTest, RecallClearsFloor) {
  const auto [M, ef, floor] = GetParam();
  auto data = MakeData(0xA11CE);
  HnswConfig hc;
  hc.dim = kDim;
  hc.M = M;
  hc.ef_construction = 100;
  hc.ef_search = ef;
  HnswIndex hnsw(hc);
  hnsw.AddBatch(data.data(), kN);
  FlatIndex flat(kDim);
  flat.AddBatch(data.data(), kN);

  Rng rng(0xBEE);
  double recall = 0.0;
  const int nq = 15;
  std::vector<float> q(kDim);
  for (int i = 0; i < nq; ++i) {
    for (auto& x : q) x = static_cast<float>(rng.Normal());
    auto approx = hnsw.Search(q.data(), kK);
    // Sorted + valid ids on every config.
    for (size_t j = 1; j < approx.size(); ++j) {
      ASSERT_LE(approx[j - 1].dist, approx[j].dist);
    }
    for (const auto& h : approx) ASSERT_LT(h.id, kN);
    recall += Recall(approx, flat.Search(q.data(), kK));
  }
  EXPECT_GE(recall / nq, floor)
      << "M=" << M << " ef=" << ef;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HnswParamTest,
    ::testing::Values(std::make_tuple(8, 32, 0.65),
                      std::make_tuple(8, 128, 0.85),
                      std::make_tuple(16, 64, 0.85),
                      std::make_tuple(16, 200, 0.92),
                      std::make_tuple(32, 128, 0.92)));

// ---- IVFPQ sweep: (nlist, nprobe, m, recall floor) ----

class IvfPqParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(IvfPqParamTest, RecallClearsFloor) {
  const auto [nlist, nprobe, m, floor] = GetParam();
  auto data = MakeData(0xCAFE);
  IvfPqConfig ic;
  ic.dim = kDim;
  ic.nlist = nlist;
  ic.nprobe = nprobe;
  ic.m = m;
  ic.nbits = 6;
  IvfPqIndex index(ic);
  index.Train(data.data(), kN);
  index.AddBatch(data.data(), kN);
  FlatIndex flat(kDim);
  flat.AddBatch(data.data(), kN);

  // Self-queries: the indexed vector itself should be recoverable.
  Rng rng(0xDEED);
  double recall = 0.0;
  const int nq = 15;
  for (int i = 0; i < nq; ++i) {
    const size_t probe = rng.UniformU64(kN);
    recall += Recall(index.Search(&data[probe * kDim], kK),
                     flat.Search(&data[probe * kDim], kK));
  }
  EXPECT_GE(recall / nq, floor)
      << "nlist=" << nlist << " nprobe=" << nprobe << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, IvfPqParamTest,
    ::testing::Values(std::make_tuple(8, 8, 4, 0.45),
                      std::make_tuple(16, 8, 4, 0.35),
                      std::make_tuple(16, 16, 6, 0.45),
                      std::make_tuple(32, 32, 12, 0.55)));

}  // namespace
}  // namespace ann
}  // namespace deepjoin
