#include "ann/kmeans.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace ann {
namespace {

TEST(KMeansTest, SeparatesObviousClusters) {
  // Two tight blobs around (0,0) and (10,10).
  Rng rng(1);
  std::vector<float> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back(static_cast<float>(rng.Normal(0.0, 0.1)));
    data.push_back(static_cast<float>(rng.Normal(0.0, 0.1)));
  }
  for (int i = 0; i < 50; ++i) {
    data.push_back(static_cast<float>(rng.Normal(10.0, 0.1)));
    data.push_back(static_cast<float>(rng.Normal(10.0, 0.1)));
  }
  auto km = KMeans(data.data(), 100, 2, 2, 20, rng);
  // Points 0..49 share an assignment distinct from points 50..99.
  const u32 a = km.assignments[0];
  const u32 b = km.assignments[50];
  EXPECT_NE(a, b);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(km.assignments[i], a);
  for (int i = 50; i < 100; ++i) EXPECT_EQ(km.assignments[i], b);
}

TEST(KMeansTest, CentroidsNearBlobMeans) {
  Rng rng(2);
  std::vector<float> data;
  for (int i = 0; i < 200; ++i) {
    data.push_back(static_cast<float>(rng.Normal(5.0, 0.2)));
  }
  auto km = KMeans(data.data(), 200, 1, 1, 10, rng);
  EXPECT_NEAR(km.centroids[0], 5.0f, 0.2f);
}

TEST(KMeansTest, AssignmentsMatchNearestCentroid) {
  Rng rng(3);
  std::vector<float> data(300);
  for (auto& x : data) x = static_cast<float>(rng.Normal());
  auto km = KMeans(data.data(), 100, 3, 4, 15, rng);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(km.assignments[i], NearestCentroid(km, &data[i * 3]));
  }
}

TEST(KMeansTest, HandlesDuplicatePoints) {
  std::vector<float> data(40, 1.0f);  // 20 identical 2-d points
  Rng rng(4);
  auto km = KMeans(data.data(), 20, 2, 3, 5, rng);
  EXPECT_EQ(km.k, 3);
  for (u32 a : km.assignments) EXPECT_LT(a, 3u);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng rng1(5), rng2(5);
  std::vector<float> data(200);
  Rng drng(6);
  for (auto& x : data) x = static_cast<float>(drng.Normal());
  auto a = KMeans(data.data(), 100, 2, 4, 10, rng1);
  auto b = KMeans(data.data(), 100, 2, 4, 10, rng2);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.centroids, b.centroids);
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
