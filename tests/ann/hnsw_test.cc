#include "ann/hnsw.h"

#include <gtest/gtest.h>

#include "ann/vector_index.h"
#include "util/rng.h"

namespace deepjoin {
namespace ann {
namespace {

std::vector<float> RandomVectors(size_t n, int dim, Rng& rng) {
  std::vector<float> data(n * static_cast<size_t>(dim));
  for (auto& x : data) x = static_cast<float>(rng.Normal());
  return data;
}

double RecallAtK(const std::vector<Neighbor>& approx,
                 const std::vector<Neighbor>& exact) {
  size_t hits = 0;
  for (const auto& a : approx) {
    for (const auto& e : exact) {
      if (a.id == e.id) {
        ++hits;
        break;
      }
    }
  }
  return exact.empty() ? 1.0
                       : static_cast<double>(hits) /
                             static_cast<double>(exact.size());
}

TEST(HnswTest, EmptyIndexReturnsNothing) {
  HnswConfig c;
  c.dim = 4;
  HnswIndex index(c);
  float q[4] = {0, 0, 0, 0};
  EXPECT_TRUE(index.Search(q, 5).empty());
}

TEST(HnswTest, SingleElement) {
  HnswConfig c;
  c.dim = 2;
  HnswIndex index(c);
  float v[2] = {1.0f, 2.0f};
  index.Add(v);
  auto hits = index.Search(v, 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_FLOAT_EQ(hits[0].dist, 0.0f);
}

TEST(HnswTest, FindsExactMatchAmongMany) {
  Rng rng(5);
  const int dim = 8;
  HnswConfig c;
  c.dim = dim;
  HnswIndex index(c);
  auto data = RandomVectors(500, dim, rng);
  index.AddBatch(data.data(), 500);
  for (u32 probe : {0u, 123u, 499u}) {
    auto hits = index.Search(&data[probe * dim], 1);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].id, probe);
  }
}

TEST(HnswTest, HighRecallVsBruteForce) {
  Rng rng(7);
  const int dim = 16;
  const size_t n = 2000;
  auto data = RandomVectors(n, dim, rng);

  HnswConfig hc;
  hc.dim = dim;
  hc.M = 16;
  hc.ef_construction = 150;
  hc.ef_search = 80;
  HnswIndex hnsw(hc);
  hnsw.AddBatch(data.data(), n);
  FlatIndex flat(dim);
  flat.AddBatch(data.data(), n);

  double recall_sum = 0.0;
  const int num_queries = 30;
  for (int q = 0; q < num_queries; ++q) {
    auto query = RandomVectors(1, dim, rng);
    recall_sum += RecallAtK(hnsw.Search(query.data(), 10),
                            flat.Search(query.data(), 10));
  }
  EXPECT_GT(recall_sum / num_queries, 0.9);
}

TEST(HnswTest, EfSearchImprovesRecall) {
  Rng rng(9);
  const int dim = 16;
  const size_t n = 1500;
  auto data = RandomVectors(n, dim, rng);
  HnswConfig hc;
  hc.dim = dim;
  hc.M = 8;
  hc.ef_construction = 60;
  HnswIndex hnsw(hc);
  hnsw.AddBatch(data.data(), n);
  FlatIndex flat(dim);
  flat.AddBatch(data.data(), n);

  auto mean_recall = [&](int ef) {
    AnnSearchParams params;
    params.ef_search = ef;
    Rng qrng(11);
    double sum = 0.0;
    for (int q = 0; q < 20; ++q) {
      auto query = RandomVectors(1, dim, qrng);
      sum += RecallAtK(hnsw.Search(query.data(), 10, params),
                       flat.Search(query.data(), 10));
    }
    return sum / 20;
  };
  EXPECT_GE(mean_recall(128) + 1e-9, mean_recall(4));
}

TEST(HnswTest, ResultsAreSortedByDistance) {
  Rng rng(13);
  const int dim = 4;
  HnswConfig c;
  c.dim = dim;
  HnswIndex index(c);
  auto data = RandomVectors(300, dim, rng);
  index.AddBatch(data.data(), 300);
  auto query = RandomVectors(1, dim, rng);
  auto hits = index.Search(query.data(), 15);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].dist, hits[i].dist);
  }
}

TEST(HnswTest, BuildsMultipleLevels) {
  Rng rng(17);
  const int dim = 4;
  HnswConfig c;
  c.dim = dim;
  c.M = 4;  // low M -> taller hierarchy
  HnswIndex index(c);
  auto data = RandomVectors(2000, dim, rng);
  index.AddBatch(data.data(), 2000);
  EXPECT_GE(index.max_level(), 1) << "hierarchy never formed";
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
