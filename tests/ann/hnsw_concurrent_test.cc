// Concurrent-search stress test: one shared HNSW index queried from many
// threads must return exactly the single-threaded answers. Labeled `tsan`
// so tools/check.sh runs it under -fsanitize=thread, which is what caught
// the original shared visited-marker scratch being mutated from a const
// Search (now a per-query pool, see hnsw.h).
#include <vector>

#include <gtest/gtest.h>

#include "ann/hnsw.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepjoin {
namespace ann {
namespace {

std::vector<float> RandomVectors(size_t n, int dim, u64 seed) {
  Rng rng(seed);
  std::vector<float> data(n * static_cast<size_t>(dim));
  for (auto& x : data) x = static_cast<float>(rng.Normal());
  return data;
}

TEST(HnswConcurrentTest, ParallelQueriesMatchSerialAnswers) {
  HnswConfig hc;
  hc.dim = 16;
  HnswIndex index(hc);
  const size_t n = 1500;
  const auto base = RandomVectors(n, hc.dim, 7);
  for (size_t i = 0; i < n; ++i) index.Add(&base[i * hc.dim]);

  const size_t num_queries = 256;
  const size_t k = 10;
  const auto queries = RandomVectors(num_queries, hc.dim, 99);

  // Ground truth from the single-threaded path.
  std::vector<std::vector<Neighbor>> serial(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    serial[q] = index.Search(&queries[q * hc.dim], k);
  }

  // Same queries, 8 threads, several rounds to vary the interleavings.
  ThreadPool pool(8);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<Neighbor>> parallel(num_queries);
    pool.ParallelFor(num_queries, [&](size_t q) {
      parallel[q] = index.Search(&queries[q * hc.dim], k);
    });
    for (size_t q = 0; q < num_queries; ++q) {
      ASSERT_EQ(parallel[q].size(), serial[q].size()) << "query " << q;
      for (size_t j = 0; j < serial[q].size(); ++j) {
        EXPECT_EQ(parallel[q][j].id, serial[q][j].id)
            << "query " << q << " rank " << j;
        EXPECT_FLOAT_EQ(parallel[q][j].dist, serial[q][j].dist);
      }
    }
  }
}

TEST(HnswConcurrentTest, ConcurrentSearchOnTinyIndex) {
  HnswConfig hc;
  hc.dim = 4;
  HnswIndex index(hc);
  const auto base = RandomVectors(3, hc.dim, 5);
  for (size_t i = 0; i < 3; ++i) index.Add(&base[i * hc.dim]);

  const auto queries = RandomVectors(64, hc.dim, 17);
  ThreadPool pool(8);
  pool.ParallelFor(64, [&](size_t q) {
    auto hits = index.Search(&queries[q * hc.dim], 2);
    ASSERT_EQ(hits.size(), 2u);
  });
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
