// Concurrent-search stress test: one shared HNSW index queried from many
// threads must return exactly the single-threaded answers. Labeled `tsan`
// so tools/check.sh runs it under -fsanitize=thread, which is what caught
// the original shared visited-marker scratch being mutated from a const
// Search (now a per-query pool, see hnsw.h).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ann/hnsw.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace deepjoin {
namespace ann {
namespace {

std::vector<float> RandomVectors(size_t n, int dim, u64 seed) {
  Rng rng(seed);
  std::vector<float> data(n * static_cast<size_t>(dim));
  for (auto& x : data) x = static_cast<float>(rng.Normal());
  return data;
}

TEST(HnswConcurrentTest, ParallelQueriesMatchSerialAnswers) {
  HnswConfig hc;
  hc.dim = 16;
  HnswIndex index(hc);
  const size_t n = 1500;
  const auto base = RandomVectors(n, hc.dim, 7);
  for (size_t i = 0; i < n; ++i) index.Add(&base[i * hc.dim]);

  const size_t num_queries = 256;
  const size_t k = 10;
  const auto queries = RandomVectors(num_queries, hc.dim, 99);

  // Ground truth from the single-threaded path.
  std::vector<std::vector<Neighbor>> serial(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    serial[q] = index.Search(&queries[q * hc.dim], k);
  }

  // Same queries, 8 threads, several rounds to vary the interleavings.
  ThreadPool pool(8);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<Neighbor>> parallel(num_queries);
    pool.ParallelFor(num_queries, [&](size_t q) {
      parallel[q] = index.Search(&queries[q * hc.dim], k);
    });
    for (size_t q = 0; q < num_queries; ++q) {
      ASSERT_EQ(parallel[q].size(), serial[q].size()) << "query " << q;
      for (size_t j = 0; j < serial[q].size(); ++j) {
        EXPECT_EQ(parallel[q][j].id, serial[q][j].id)
            << "query " << q << " rank " << j;
        EXPECT_FLOAT_EQ(parallel[q][j].dist, serial[q][j].dist);
      }
    }
  }
}

TEST(HnswConcurrentTest, InsertsAndRemovesRunAlongsideSearches) {
  // The live-mutability contract (hnsw.h): Insert/Remove serialize with
  // each other but run concurrently with SearchInto. A writer thread grows
  // and tombstones the graph while reader threads query it; TSan checks
  // the striped link locks and the count/entry-point publication, the
  // asserts check reader-visible invariants mid-churn.
  HnswConfig hc;
  hc.dim = 8;
  hc.max_elements = 4096;
  HnswIndex index(hc);
  const size_t seed_nodes = 300;
  const size_t churn_nodes = 400;
  const auto base = RandomVectors(seed_nodes + churn_nodes, hc.dim, 21);
  for (size_t i = 0; i < seed_nodes; ++i) index.Add(&base[i * hc.dim]);

  const auto queries = RandomVectors(32, hc.dim, 77);
  std::atomic<bool> done{false};
  std::vector<u32> removed;

  std::thread writer([&] {
    for (size_t i = 0; i < churn_nodes; ++i) {
      u32 id = 0;
      ASSERT_TRUE(
          index.Insert(&base[(seed_nodes + i) * hc.dim], &id).ok());
      if (i % 3 == 0) {
        ASSERT_TRUE(index.Remove(id).ok());
        removed.push_back(id);
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t round = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto& q = queries[((round + t) % 32) * hc.dim];
        const auto hits = index.Search(&q, 5);
        EXPECT_LE(hits.size(), 5u);
        // A query pins the published count when it starts; every hit id
        // must be below the count observed afterwards (ids only grow).
        const size_t n = index.size();
        for (const auto& h : hits) EXPECT_LT(h.id, n);
        ++round;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();

  EXPECT_EQ(index.size(), seed_nodes + churn_nodes);
  EXPECT_EQ(index.deleted_count(), removed.size());
  // Once Remove returns, the tombstone filter is absolute: a wide-beam
  // search never surfaces a removed id again.
  for (size_t qi = 0; qi < 8; ++qi) {
    AnnSearchParams params;
    params.ef_search = 256;
    const auto hits = index.Search(&queries[qi * hc.dim], 50, params);
    for (const auto& h : hits) {
      EXPECT_FALSE(index.IsDeleted(h.id));
      for (const u32 r : removed) EXPECT_NE(h.id, r);
    }
  }
}

TEST(HnswConcurrentTest, CompactedCopyRunsAlongsideSearches) {
  // CompactedCopy reads only immutable vectors + atomic tombstones, so it
  // may overlap searches (not mutators). Readers hammer the source index
  // while a copy is taken; the copy must contain exactly the live nodes.
  HnswConfig hc;
  hc.dim = 8;
  HnswIndex index(hc);
  const size_t n = 500;
  const auto base = RandomVectors(n, hc.dim, 33);
  for (size_t i = 0; i < n; ++i) index.Add(&base[i * hc.dim]);
  for (u32 id = 0; id < n; id += 5) ASSERT_TRUE(index.Remove(id).ok());

  const auto queries = RandomVectors(16, hc.dim, 55);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      size_t round = 0;
      while (!done.load(std::memory_order_acquire)) {
        index.Search(&queries[(round++ % 16) * hc.dim], 10);
      }
    });
  }
  std::vector<u32> new_to_old;
  HnswIndex compacted = index.CompactedCopy(&new_to_old);
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(compacted.size(), n - n / 5);
  EXPECT_EQ(compacted.deleted_count(), 0u);
  ASSERT_EQ(new_to_old.size(), compacted.size());
  for (const u32 old_id : new_to_old) {
    EXPECT_FALSE(index.IsDeleted(old_id));
  }
}

TEST(HnswConcurrentTest, ConcurrentSearchOnTinyIndex) {
  HnswConfig hc;
  hc.dim = 4;
  HnswIndex index(hc);
  const auto base = RandomVectors(3, hc.dim, 5);
  for (size_t i = 0; i < 3; ++i) index.Add(&base[i * hc.dim]);

  const auto queries = RandomVectors(64, hc.dim, 17);
  ThreadPool pool(8);
  pool.ParallelFor(64, [&](size_t q) {
    auto hits = index.Search(&queries[q * hc.dim], 2);
    ASSERT_EQ(hits.size(), 2u);
  });
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
