// FlatIndex::SharedScan tests (DESIGN.md §13): the cooperative
// tile-granular scan must return exactly what Search() returns for every
// rider — including riders that board mid-scan and ride the wrap-around —
// on both the scalar (small cohort) and tiled-SGEMM (large cohort) arms.
#include <vector>

#include <gtest/gtest.h>

#include "ann/vector_index.h"
#include "util/rng.h"

namespace deepjoin {
namespace ann {
namespace {

constexpr int kDim = 8;
// > 2 tiles (kScoreTileRows = 2048) so the wrap-around is exercised.
constexpr size_t kRows = 5000;

class FlatSharedScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    index_ = std::make_unique<FlatIndex>(kDim);
    std::vector<float> data(kRows * kDim);
    for (auto& x : data) x = static_cast<float>(rng.Normal());
    index_->AddBatch(data.data(), kRows);
    queries_.resize(16 * kDim);
    for (auto& x : queries_) x = static_cast<float>(rng.Normal());
  }

  const float* query(size_t i) const { return queries_.data() + i * kDim; }

  /// Runs the scan to empty, harvesting every completion into hits[slot].
  void Drain(FlatIndex::SharedScan* scan,
             std::vector<std::vector<Neighbor>>* by_slot) {
    std::vector<size_t> done;
    size_t steps = 0;
    while (!scan->empty()) {
      done.clear();
      scan->Step(&done);
      for (const size_t slot : done) {
        if (slot >= by_slot->size()) by_slot->resize(slot + 1);
        scan->Harvest(slot, &(*by_slot)[slot]);
      }
      ASSERT_LT(++steps, 10000u) << "scan failed to drain";
    }
  }

  std::unique_ptr<FlatIndex> index_;
  std::vector<float> queries_;
};

TEST_F(FlatSharedScanTest, SingleRiderMatchesSearch) {
  FlatIndex::SharedScan scan(index_.get());
  EXPECT_EQ(scan.tiles(), 3u);
  const size_t slot = scan.Board(query(0), 10);
  std::vector<std::vector<Neighbor>> hits;
  Drain(&scan, &hits);
  // A lone rider takes the scalar arm — bit-identical to Search.
  const auto expect = index_->Search(query(0), 10);
  ASSERT_EQ(hits[slot].size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(hits[slot][i].id, expect[i].id);
    EXPECT_EQ(hits[slot][i].dist, expect[i].dist);
  }
}

TEST_F(FlatSharedScanTest, MidScanBoardingRidesTheWrapAround) {
  FlatIndex::SharedScan scan(index_.get());
  const size_t a = scan.Board(query(0), 7);
  std::vector<size_t> done;
  // Tile 0 is scored with only A aboard; B boards at the tile-1 boundary
  // and must still cover every tile (1, 2, then wrap to 0).
  EXPECT_EQ(scan.Step(&done), 0u);
  const size_t b = scan.Board(query(1), 7);
  EXPECT_EQ(scan.active(), 2u);
  std::vector<std::vector<Neighbor>> hits;
  Drain(&scan, &hits);
  for (const auto& [slot, q, k] :
       {std::tuple<size_t, size_t, size_t>{a, 0, 7}, {b, 1, 7}}) {
    const auto expect = index_->Search(query(q), k);
    ASSERT_EQ(hits[slot].size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(hits[slot][i].id, expect[i].id) << "rider slot " << slot;
      EXPECT_EQ(hits[slot][i].dist, expect[i].dist);
    }
  }
}

TEST_F(FlatSharedScanTest, GemmCohortMatchesBatchedScorer) {
  // 8 riders boarded together take the tiled-SGEMM arm — identical
  // arithmetic (same kernel, same tiling, same norm recombination) to
  // SearchBatchInto, so results must match it exactly.
  constexpr size_t kNq = 8;
  std::vector<std::vector<Neighbor>> expect(kNq);
  index_->SearchBatchInto(queries_.data(), kNq, 5, AnnSearchParams{},
                          expect.data());
  FlatIndex::SharedScan scan(index_.get());
  std::vector<size_t> slots;
  for (size_t q = 0; q < kNq; ++q) slots.push_back(scan.Board(query(q), 5));
  std::vector<std::vector<Neighbor>> hits;
  Drain(&scan, &hits);
  for (size_t q = 0; q < kNq; ++q) {
    ASSERT_EQ(hits[slots[q]].size(), expect[q].size());
    for (size_t i = 0; i < expect[q].size(); ++i) {
      EXPECT_EQ(hits[slots[q]][i].id, expect[q][i].id) << "query " << q;
      EXPECT_EQ(hits[slots[q]][i].dist, expect[q][i].dist);
    }
  }
}

TEST_F(FlatSharedScanTest, MixedCohortSizesStayExact) {
  // One rider scans tile 0 alone (scalar arm); seven more board at the
  // next boundary, pushing the cohort onto the SGEMM arm mid-ride. Every
  // rider still sees every row exactly once.
  FlatIndex::SharedScan scan(index_.get());
  const size_t a = scan.Board(query(0), 10);
  std::vector<size_t> done;
  scan.Step(&done);
  std::vector<size_t> slots;
  for (size_t q = 1; q < 8; ++q) slots.push_back(scan.Board(query(q), 10));
  std::vector<std::vector<Neighbor>> hits;
  Drain(&scan, &hits);
  // Arms differ in reduction order, so compare ids under a distance
  // tolerance rather than bitwise.
  for (size_t q = 0; q < 8; ++q) {
    const size_t slot = (q == 0) ? a : slots[q - 1];
    const auto expect = index_->Search(query(q), 10);
    ASSERT_EQ(hits[slot].size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_NEAR(hits[slot][i].dist, expect[i].dist, 1e-3f)
          << "query " << q << " rank " << i;
    }
  }
}

TEST_F(FlatSharedScanTest, TombstonedRowsAreExcluded) {
  ASSERT_TRUE(index_->Remove(0).ok());
  ASSERT_TRUE(index_->Remove(2500).ok());  // second tile
  ASSERT_TRUE(index_->Remove(4999).ok());  // last row
  FlatIndex::SharedScan scan(index_.get());
  const size_t slot = scan.Board(query(3), static_cast<size_t>(kRows));
  std::vector<std::vector<Neighbor>> hits;
  Drain(&scan, &hits);
  EXPECT_EQ(hits[slot].size(), kRows - 3);
  for (const auto& h : hits[slot]) {
    EXPECT_NE(h.id, 0u);
    EXPECT_NE(h.id, 2500u);
    EXPECT_NE(h.id, 4999u);
  }
}

TEST_F(FlatSharedScanTest, KZeroCompletesEmptyOnNextStep) {
  FlatIndex::SharedScan scan(index_.get());
  const size_t slot = scan.Board(query(0), 0);
  std::vector<size_t> done;
  EXPECT_EQ(scan.Step(&done), 1u);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], slot);
  std::vector<Neighbor> out{{1.0f, 1u}};  // must be cleared
  scan.Harvest(slot, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(scan.empty());
}

TEST_F(FlatSharedScanTest, EmptyCorpusCompletesEmpty) {
  FlatIndex empty(kDim);
  FlatIndex::SharedScan scan(&empty);
  EXPECT_EQ(scan.tiles(), 0u);
  const size_t slot = scan.Board(query(0), 5);
  std::vector<size_t> done;
  EXPECT_EQ(scan.Step(&done), 1u);
  std::vector<Neighbor> out;
  scan.Harvest(slot, &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(FlatSharedScanTest, HarvestedSlotsAreRecycled) {
  FlatIndex::SharedScan scan(index_.get());
  std::vector<std::vector<Neighbor>> hits;
  const size_t first = scan.Board(query(0), 3);
  Drain(&scan, &hits);
  // The freed slot is reused: a session serving one query at a time never
  // grows its rider pool.
  for (size_t round = 1; round < 4; ++round) {
    EXPECT_EQ(scan.Board(query(round), 3), first);
    Drain(&scan, &hits);
    const auto expect = index_->Search(query(round), 3);
    ASSERT_EQ(hits[first].size(), expect.size());
    EXPECT_EQ(hits[first][0].id, expect[0].id);
  }
}

TEST_F(FlatSharedScanTest, StepWithNoRidersIsANoOp) {
  FlatIndex::SharedScan scan(index_.get());
  std::vector<size_t> done;
  EXPECT_EQ(scan.Step(&done), 0u);
  EXPECT_TRUE(done.empty());
  EXPECT_TRUE(scan.empty());
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
