// Persistence tests for the HNSW index: round-trip fidelity plus the
// corrupt-artifact contract — wrong magic, wrong version, or a truncated
// header must surface as Status (DataLoss), never a DJ_CHECK abort.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "ann/hnsw.h"
#include "ann/index_io.h"
#include "util/rng.h"

namespace deepjoin {
namespace ann {
namespace {

class HnswPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    path_ = std::string(::testing::TempDir()) + "/hnsw_persist_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    config_.dim = 8;
    config_.M = 4;
    config_.ef_construction = 32;
    config_.ef_search = 16;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  HnswIndex BuildSmallIndex(size_t n) {
    HnswIndex index(config_);
    Rng rng(7);
    std::vector<float> vec(config_.dim);
    for (size_t i = 0; i < n; ++i) {
      for (auto& v : vec) v = static_cast<float>(rng.Normal());
      index.Add(vec.data());
    }
    return index;
  }

  // The fixture exercises the pre-DJIX standalone format end to end: it
  // both checks the legacy loader's validation and generates the
  // backward-compat fixtures the OpenIndex tests below read.
  void SaveToPath(const HnswIndex& index) {
    BinaryWriter writer(path_);
    ASSERT_TRUE(writer.Open().ok());
    index.SaveLegacy(writer);
    ASSERT_TRUE(writer.Close().ok());
  }

  Result<HnswIndex> LoadFromPath() {
    BinaryReader reader(path_);
    Status st = reader.Open();
    if (!st.ok()) return st;
    u32 magic = 0;
    DJ_RETURN_IF_ERROR(reader.ReadU32(&magic));
    if (magic != 0x484E5357) {
      return Status::DataLoss("not an HNSW index (bad magic)");
    }
    return HnswIndex::LoadLegacyAfterMagic(reader);
  }

  HnswConfig config_;
  std::string path_;
};

TEST_F(HnswPersistenceTest, RoundTripPreservesSearchResults) {
  HnswIndex index = BuildSmallIndex(60);
  SaveToPath(index);
  auto loaded = LoadFromPath();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), index.size());
  EXPECT_EQ(loaded->dim(), index.dim());
  EXPECT_EQ(loaded->max_level(), index.max_level());

  Rng rng(99);
  std::vector<float> q(config_.dim);
  for (int trial = 0; trial < 10; ++trial) {
    for (auto& v : q) v = static_cast<float>(rng.Normal());
    const auto a = index.Search(q.data(), 5);
    const auto b = loaded->Search(q.data(), 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "trial " << trial << " rank " << i;
    }
  }
}

TEST_F(HnswPersistenceTest, EmptyIndexRoundTrips) {
  HnswIndex index(config_);
  SaveToPath(index);
  auto loaded = LoadFromPath();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
}

TEST_F(HnswPersistenceTest, WrongMagicIsDataLossNotAbort) {
  HnswIndex index = BuildSmallIndex(10);
  {
    // A valid container whose first record is not the HNSW magic.
    BinaryWriter writer(path_);
    ASSERT_TRUE(writer.Open().ok());
    writer.WriteU32(0xBADC0DE5);
    writer.WriteU32(1);
    ASSERT_TRUE(writer.Close().ok());
  }
  auto loaded = LoadFromPath();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("not an HNSW index"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(HnswPersistenceTest, WrongVersionIsDataLoss) {
  {
    BinaryWriter writer(path_);
    ASSERT_TRUE(writer.Open().ok());
    writer.WriteU32(0x484E5357);  // correct magic
    writer.WriteU32(999);         // future version
    ASSERT_TRUE(writer.Close().ok());
  }
  auto loaded = LoadFromPath();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST_F(HnswPersistenceTest, TruncatedHeaderIsDataLoss) {
  HnswIndex index = BuildSmallIndex(10);
  SaveToPath(index);
  // Chop the file inside the HNSW header records.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(24);
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<long>(bytes.size()));
  out.close();

  auto loaded = LoadFromPath();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(HnswPersistenceTest, LegacyFileOpensThroughUnifiedApi) {
  // Backward compat: an index saved in the pre-DJIX standalone format
  // must still open through OpenIndex, produce identical results, and
  // come back live (mutable).
  HnswIndex index = BuildSmallIndex(40);
  SaveToPath(index);
  auto opened = OpenIndex(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<VectorIndex> loaded = std::move(opened).value();
  EXPECT_EQ(loaded->size(), index.size());
  ASSERT_STREQ(loaded->name(), "hnsw");
  EXPECT_FALSE(static_cast<const HnswIndex*>(loaded.get())->read_only());

  Rng rng(4);
  std::vector<float> q(config_.dim);
  for (int trial = 0; trial < 5; ++trial) {
    for (auto& v : q) v = static_cast<float>(rng.Normal());
    const auto a = index.Search(q.data(), 5);
    const auto b = loaded->Search(q.data(), 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST_F(HnswPersistenceTest, LegacyFileRejectsNonDefaultOpenOptions) {
  // The legacy format predates aligned sections and quantized payloads:
  // asking for them must fail loudly instead of being silently ignored.
  HnswIndex index = BuildSmallIndex(10);
  SaveToPath(index);
  auto mapped = OpenIndex(path_, OpenOptions{.map = MapMode::kMapped});
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kFailedPrecondition);
  auto sq8 = OpenIndex(path_, OpenOptions{.storage = StorageKind::kSq8});
  ASSERT_FALSE(sq8.ok());
  EXPECT_EQ(sq8.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(HnswPersistenceTest, InconsistentGraphIsDataLoss) {
  // A structurally valid container claiming one node whose entry point is
  // out of range: semantic validation must reject it.
  {
    BinaryWriter writer(path_);
    ASSERT_TRUE(writer.Open().ok());
    writer.WriteU32(0x484E5357);
    writer.WriteU32(1);
    writer.WriteI32(2);   // dim
    writer.WriteI32(2);   // M
    writer.WriteI32(8);   // ef_construction
    writer.WriteI32(8);   // ef_search
    writer.WriteU64(11);  // seed
    const float data[2] = {0.0f, 1.0f};
    writer.WriteFloatArray(data, 2);  // one node
    const i32 levels[1] = {0};
    writer.WriteI32Array(levels, 1);
    const u32 list_sizes[1] = {0};
    writer.WriteU32Array(list_sizes, 1);
    writer.WriteU32Array(nullptr, 0);  // all_ids
    writer.WriteU32(5);                // entry_ out of range
    writer.WriteI32(0);                // max_level_
    ASSERT_TRUE(writer.Close().ok());
  }
  auto loaded = LoadFromPath();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
