// VectorStore contract tests (DESIGN.md §14): the SQ8 reconstruction
// bound the header promises (error per dim <= scale[d]/2), owned vs
// mapped round trips, read-only mutation rejection, lazy taint on a
// corrupt mapped page, and the memory accounting the beyond-RAM story
// rests on.
#include "ann/vector_store.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace deepjoin {
namespace ann {
namespace {

std::vector<float> RandomRows(u64 n, int dim, u64 seed) {
  Rng rng(seed);
  std::vector<float> rows(n * static_cast<u64>(dim));
  for (float& v : rows) {
    v = static_cast<float>(rng.UniformDouble(-3.0, 3.0));
  }
  return rows;
}

class VectorStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    path_ = std::string(::testing::TempDir()) + "/vstore_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void SaveStore(const VectorStore& store) {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    ASSERT_TRUE(store.Save(w).ok());
    ASSERT_TRUE(w.Close().ok());
  }

  Result<std::unique_ptr<VectorStore>> LoadStore(const OpenOptions& options) {
    BinaryReader r(path_);
    DJ_RETURN_IF_ERROR(r.Open());
    return LoadVectorStore(r, options);
  }

  std::string path_;
};

// The bound documented in vector_store.h: with round-to-nearest encoding
// every in-range dimension reconstructs to within scale[d]/2.
TEST_F(VectorStoreTest, Sq8ReconstructionErrorWithinHalfScale) {
  const int dim = 24;
  const u64 n = 200;
  const auto rows = RandomRows(n, dim, 11);
  Sq8Store store(dim);
  ASSERT_TRUE(store.AppendRows(rows.data(), n).ok());
  ASSERT_TRUE(store.trained());
  ASSERT_EQ(store.size(), n);

  const auto& scale = store.scale();
  ASSERT_EQ(scale.size(), static_cast<size_t>(dim));
  std::vector<float> decoded(static_cast<size_t>(dim));
  for (u64 i = 0; i < n; ++i) {
    store.Reconstruct(static_cast<u32>(i), decoded.data());
    for (int d = 0; d < dim; ++d) {
      const float orig = rows[i * static_cast<u64>(dim) + d];
      // Tiny epsilon: the decode rounds lo + scale*code once.
      const float bound = scale[static_cast<size_t>(d)] * 0.5f + 1e-5f;
      ASSERT_LE(std::fabs(decoded[static_cast<size_t>(d)] - orig), bound)
          << "row " << i << " dim " << d;
    }
  }
}

// Rows appended after training clamp-encode with the frozen parameters:
// values inside the trained range still honour the scale/2 bound.
TEST_F(VectorStoreTest, Sq8LateAppendsReuseFrozenParameters) {
  const int dim = 8;
  const auto rows = RandomRows(64, dim, 5);
  Sq8Store store(dim);
  ASSERT_TRUE(store.AppendRows(rows.data(), 32).ok());
  const auto lo_before = store.lo();
  const auto scale_before = store.scale();
  for (u64 i = 32; i < 64; ++i) {
    ASSERT_TRUE(store.AppendRow(rows.data() + i * dim).ok());
  }
  EXPECT_EQ(store.lo(), lo_before);
  EXPECT_EQ(store.scale(), scale_before);
  EXPECT_EQ(store.size(), 64u);
}

TEST_F(VectorStoreTest, Sq8DistanceMatchesDecodedReference) {
  const int dim = 40;
  const u64 n = 50;
  const auto rows = RandomRows(n, dim, 23);
  const auto query = RandomRows(1, dim, 99);
  Sq8Store store(dim);
  ASSERT_TRUE(store.AppendRows(rows.data(), n).ok());
  std::vector<float> decoded(static_cast<size_t>(dim));
  for (u64 i = 0; i < n; ++i) {
    store.Reconstruct(static_cast<u32>(i), decoded.data());
    double want = 0.0;
    for (int d = 0; d < dim; ++d) {
      const double diff = static_cast<double>(query[static_cast<size_t>(d)]) -
                          static_cast<double>(decoded[static_cast<size_t>(d)]);
      want += diff * diff;
    }
    const float got = store.Distance(query.data(), static_cast<u32>(i));
    EXPECT_NEAR(got, static_cast<float>(want), 1e-3f * (1.0f + got))
        << "row " << i;
  }
}

TEST_F(VectorStoreTest, OwnedAndMappedRoundTripsAreIdentical) {
  const int dim = 16;
  const u64 n = 300;  // > one 4096-byte page of codes and of floats
  const auto rows = RandomRows(n, dim, 3);
  const auto query = RandomRows(1, dim, 71);
  for (const StorageKind kind : {StorageKind::kFloat, StorageKind::kSq8}) {
    std::unique_ptr<VectorStore> built;
    if (kind == StorageKind::kFloat) {
      built = std::make_unique<FloatStore>(dim);
    } else {
      built = std::make_unique<Sq8Store>(dim);
    }
    ASSERT_TRUE(built->AppendRows(rows.data(), n).ok());
    SaveStore(*built);

    for (const MapMode map : {MapMode::kOwned, MapMode::kMapped}) {
      OpenOptions open;
      open.map = map;
      auto loaded = LoadStore(open);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      const auto& store = *loaded.value();
      EXPECT_EQ(store.kind(), kind);
      EXPECT_EQ(store.dim(), dim);
      EXPECT_EQ(store.size(), n);
      EXPECT_TRUE(store.read_only());
      std::vector<float> a(static_cast<size_t>(dim));
      std::vector<float> b(static_cast<size_t>(dim));
      for (u64 i = 0; i < n; i += 17) {
        built->Reconstruct(static_cast<u32>(i), a.data());
        store.Reconstruct(static_cast<u32>(i), b.data());
        EXPECT_EQ(a, b) << "row " << i;
        EXPECT_EQ(built->Distance(query.data(), static_cast<u32>(i)),
                  store.Distance(query.data(), static_cast<u32>(i)));
      }
      EXPECT_FALSE(store.tainted());
      EXPECT_TRUE(store.VerifyAll().ok());
    }
  }
}

TEST_F(VectorStoreTest, LoadedStoresRejectAppends) {
  const int dim = 4;
  const auto rows = RandomRows(10, dim, 1);
  FloatStore built(dim);
  ASSERT_TRUE(built.AppendRows(rows.data(), 10).ok());
  SaveStore(built);
  for (const MapMode map : {MapMode::kOwned, MapMode::kMapped}) {
    OpenOptions open;
    open.map = map;
    auto loaded = LoadStore(open);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value()->AppendRow(rows.data()).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(loaded.value()->AppendRows(rows.data(), 2).code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST_F(VectorStoreTest, CloneOwnedIsMutableAndFaithful) {
  const int dim = 12;
  const u64 n = 80;
  const auto rows = RandomRows(n, dim, 9);
  for (const StorageKind kind : {StorageKind::kFloat, StorageKind::kSq8}) {
    std::unique_ptr<VectorStore> built;
    if (kind == StorageKind::kFloat) {
      built = std::make_unique<FloatStore>(dim);
    } else {
      built = std::make_unique<Sq8Store>(dim);
    }
    ASSERT_TRUE(built->AppendRows(rows.data(), n).ok());
    SaveStore(*built);
    OpenOptions open;
    open.map = MapMode::kMapped;
    auto loaded = LoadStore(open);
    ASSERT_TRUE(loaded.ok());

    auto clone = loaded.value()->CloneOwned();
    ASSERT_NE(clone, nullptr);
    EXPECT_EQ(clone->kind(), kind);
    EXPECT_EQ(clone->size(), n);
    EXPECT_FALSE(clone->read_only());
    std::vector<float> a(static_cast<size_t>(dim));
    std::vector<float> b(static_cast<size_t>(dim));
    for (u64 i = 0; i < n; ++i) {
      loaded.value()->Reconstruct(static_cast<u32>(i), a.data());
      clone->Reconstruct(static_cast<u32>(i), b.data());
      ASSERT_EQ(a, b) << "row " << i;
    }
    // The clone accepts new rows (SQ8 keeps its frozen quantization).
    ASSERT_TRUE(clone->AppendRow(rows.data()).ok());
    EXPECT_EQ(clone->size(), n + 1);
  }
}

// The headline number: an SQ8 store holds one byte per dimension instead
// of four, so resident bytes shrink by >= 3.5x (lo/scale overhead keeps
// it just under 4x at small dims), and a mapped store owns no heap rows
// at all.
TEST_F(VectorStoreTest, Sq8AndMappedMemoryAccounting) {
  const int dim = 64;
  const u64 n = 512;
  const auto rows = RandomRows(n, dim, 4);
  FloatStore fstore(dim);
  Sq8Store qstore(dim);
  ASSERT_TRUE(fstore.AppendRows(rows.data(), n).ok());
  ASSERT_TRUE(qstore.AppendRows(rows.data(), n).ok());
  EXPECT_GE(fstore.memory_bytes(), n * static_cast<u64>(dim) * sizeof(float));
  EXPECT_GE(static_cast<double>(fstore.memory_bytes()),
            3.5 * static_cast<double>(qstore.memory_bytes()));

  SaveStore(qstore);
  OpenOptions open;
  open.map = MapMode::kMapped;
  auto mapped = LoadStore(open);
  ASSERT_TRUE(mapped.ok());
  // Mapped pages live in the page cache, not the heap: only the small
  // lo/scale vectors count.
  EXPECT_LT(mapped.value()->memory_bytes(), qstore.memory_bytes() / 4);
}

// A corrupt page under a lazily-verified mapped store must taint, not
// crash: searches keep returning defined (if wrong) results and
// VerifyAll reports DataLoss.
TEST_F(VectorStoreTest, CorruptMappedPageTaintsInsteadOfFailing) {
  const int dim = 16;
  const u64 n = 600;  // ~38 KiB of float rows: several pages
  const auto rows = RandomRows(n, dim, 2);
  FloatStore built(dim);
  ASSERT_TRUE(built.AppendRows(rows.data(), n).ok());
  SaveStore(built);

  // Flip one byte late in the file — inside the last section's payload
  // (the norms), past every metadata record.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekg(size - 16);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(size - 16);
    f.write(&byte, 1);
  }

  // An owned (eagerly verified) open refuses the file outright.
  {
    OpenOptions open;
    open.map = MapMode::kOwned;
    auto owned = LoadStore(open);
    ASSERT_FALSE(owned.ok());
    EXPECT_EQ(owned.status().code(), StatusCode::kDataLoss);
  }
  // A full-verify mapped open refuses it too.
  {
    OpenOptions open;
    open.map = MapMode::kMapped;
    open.verify = VerifyMode::kFull;
    auto full = LoadStore(open);
    ASSERT_FALSE(full.ok());
    EXPECT_EQ(full.status().code(), StatusCode::kDataLoss);
  }
  // The lazy mapped open succeeds in O(1), then taints on first touch.
  OpenOptions open;
  open.map = MapMode::kMapped;
  auto lazy = LoadStore(open);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  const auto& store = *lazy.value();
  const auto query = RandomRows(1, dim, 8);
  std::vector<float> sink(static_cast<size_t>(dim));
  store.TouchRows(0, n);
  for (u64 i = 0; i < n; ++i) {
    (void)store.Distance(query.data(), static_cast<u32>(i));
    store.Reconstruct(static_cast<u32>(i), sink.data());
  }
  EXPECT_TRUE(store.tainted());
  EXPECT_EQ(store.VerifyAll().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
