// The unified open/save API end to end (DESIGN.md §14): every backend x
// {owned, mapped} round trip through SaveIndexFile/OpenIndex, SQ8 saves
// with refine_factor reranking, clean failure when mmap itself fails
// (FaultInjectionEnv), and a mapped-path corruption torture — one byte
// flipped per 64-byte stride must yield a non-OK open or defined (and
// detectable) results, never UB. Runs under the `fault` ctest label so
// the ASan/UBSan legs of tools/check.sh cover the mapped reads.
#include "ann/index_io.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ann/hnsw.h"
#include "ann/ivfpq.h"
#include "ann/vector_index.h"
#include "util/rng.h"

namespace deepjoin {
namespace ann {
namespace {

constexpr int kDim = 16;
constexpr u64 kRows = 400;

std::vector<float> RandomRows(u64 n, int dim, u64 seed) {
  Rng rng(seed);
  std::vector<float> rows(n * static_cast<u64>(dim));
  for (float& v : rows) {
    v = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
  }
  return rows;
}

class OpenIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rows_ = RandomRows(kRows, kDim, 42);
    queries_ = RandomRows(8, kDim, 1337);
    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    path_ = std::string(::testing::TempDir()) + "/djix_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  const float* query(size_t q) const {
    return queries_.data() + q * static_cast<size_t>(kDim);
  }

  std::unique_ptr<VectorIndex> BuildBackend(const std::string& kind) {
    if (kind == "flat") {
      auto index = std::make_unique<FlatIndex>(kDim);
      index->AddBatch(rows_.data(), kRows);
      return index;
    }
    if (kind == "hnsw") {
      HnswConfig hc;
      hc.dim = kDim;
      hc.M = 8;
      hc.ef_construction = 64;
      hc.max_elements = kRows;
      auto index = std::make_unique<HnswIndex>(hc);
      index->AddBatch(rows_.data(), kRows);
      return index;
    }
    IvfPqConfig ic;
    ic.dim = kDim;
    ic.nlist = 8;
    ic.m = 4;
    ic.nprobe = 8;  // scan every cell: deterministic results
    ic.hnsw_coarse = (kind == "ivfpq+hnsw");
    auto index = std::make_unique<IvfPqIndex>(ic);
    index->Train(rows_.data(), kRows);
    index->AddBatch(rows_.data(), kRows);
    return index;
  }

  /// Fraction of `want` ids present in `got` (both order-insensitive).
  static double Overlap(const std::vector<Neighbor>& want,
                        const std::vector<Neighbor>& got) {
    size_t agree = 0;
    for (const Neighbor& w : want) {
      for (const Neighbor& g : got) {
        if (g.id == w.id) {
          ++agree;
          break;
        }
      }
    }
    return want.empty() ? 1.0
                        : static_cast<double>(agree) /
                              static_cast<double>(want.size());
  }

  std::vector<float> rows_;
  std::vector<float> queries_;
  std::string path_;
};

// Each backend survives save -> open in both map modes with results
// identical to the in-memory original (same data, same structure, same
// scoring order).
TEST_F(OpenIndexTest, EveryBackendRoundTripsOwnedAndMapped) {
  for (const std::string kind : {"flat", "hnsw", "ivfpq", "ivfpq+hnsw"}) {
    auto original = BuildBackend(kind);
    ASSERT_EQ(original->name(), kind);
    ASSERT_TRUE(SaveIndexFile(*original, path_).ok()) << kind;

    for (const MapMode map : {MapMode::kOwned, MapMode::kMapped}) {
      OpenOptions open;
      open.map = map;
      auto loaded = OpenIndex(path_, open);
      ASSERT_TRUE(loaded.ok())
          << kind << ": " << loaded.status().ToString();
      const auto& index = *loaded.value();
      EXPECT_STREQ(index.name(), kind.c_str());
      EXPECT_EQ(index.size(), kRows);
      EXPECT_EQ(index.dim(), kDim);
      for (size_t q = 0; q < 8; ++q) {
        const auto want = original->Search(query(q), 10);
        const auto got = index.Search(query(q), 10);
        ASSERT_EQ(got.size(), want.size()) << kind;
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(got[i].id, want[i].id) << kind << " q=" << q;
          EXPECT_EQ(got[i].dist, want[i].dist) << kind << " q=" << q;
        }
      }
    }
  }
}

// Float -> SQ8 conversion at save time, with the float refinement payload
// enabling exact reranking: refined top-10s recover the float ground
// truth almost everywhere, and strictly improve on unrefined SQ8.
TEST_F(OpenIndexTest, QuantizedSaveWithRefineRecoversFloatRecall) {
  FlatIndex original(kDim);
  original.AddBatch(rows_.data(), kRows);
  SaveOptions save;
  save.storage = StorageKind::kSq8;
  save.keep_float_refine = true;
  ASSERT_TRUE(SaveIndexFile(original, path_, save).ok());

  OpenOptions open;
  open.map = MapMode::kMapped;
  auto loaded = OpenIndex(path_, open);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& index = *loaded.value();
  ASSERT_EQ(index.AsFlat()->store().kind(), StorageKind::kSq8);
  ASSERT_NE(index.AsFlat()->refine_store(), nullptr);

  double refined_recall = 0.0;
  for (size_t q = 0; q < 8; ++q) {
    const auto want = original.Search(query(q), 10);
    AnnSearchParams refine;
    refine.refine_factor = 4;
    refined_recall += Overlap(want, index.Search(query(q), 10, refine));
  }
  refined_recall /= 8.0;
  // Exact reranking over a 4x candidate pool: demand a conservative
  // floor well above what raw SQ8 scoring alone guarantees.
  EXPECT_GE(refined_recall, 0.9) << "refined recall " << refined_recall;
}

// An SQ8 save without the refinement payload still opens and searches;
// asking such a file for a float open is refused (quantization is lossy —
// there is nothing to reconstruct from).
TEST_F(OpenIndexTest, Sq8OnlyFileServesQuantizedAndRefusesFloatOpen) {
  FlatIndex original(kDim);
  original.AddBatch(rows_.data(), kRows);
  SaveOptions save;
  save.storage = StorageKind::kSq8;
  ASSERT_TRUE(SaveIndexFile(original, path_, save).ok());

  auto loaded = OpenIndex(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->AsFlat()->store().kind(), StorageKind::kSq8);
  double recall = 0.0;
  for (size_t q = 0; q < 8; ++q) {
    const auto want = original.Search(query(q), 10);
    recall += Overlap(want, loaded.value()->Search(query(q), 10));
  }
  EXPECT_GE(recall / 8.0, 0.5);  // lossy but far from random

  OpenOptions as_float;
  as_float.storage = StorageKind::kFloat;
  auto refused = OpenIndex(path_, as_float);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

// Graph backends quantize at save time too: an HNSW saved as SQ8 opens
// read-only and still routes to near-neighbours.
TEST_F(OpenIndexTest, HnswQuantizedSaveRoundTrips) {
  auto original = BuildBackend("hnsw");
  SaveOptions save;
  save.storage = StorageKind::kSq8;
  save.keep_float_refine = true;
  ASSERT_TRUE(SaveIndexFile(*original, path_, save).ok());

  OpenOptions open;
  open.map = MapMode::kMapped;
  auto loaded = OpenIndex(path_, open);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto* hnsw = static_cast<HnswIndex*>(loaded.value().get());
  EXPECT_TRUE(hnsw->read_only());
  double recall = 0.0;
  for (size_t q = 0; q < 8; ++q) {
    const auto want = original->Search(query(q), 10);
    AnnSearchParams refine;
    refine.refine_factor = 4;
    recall += Overlap(want, hnsw->Search(query(q), 10, refine));
  }
  EXPECT_GE(recall / 8.0, 0.8);
}

TEST_F(OpenIndexTest, MissingFileIsIoErrorNotCrash) {
  auto loaded = OpenIndex(std::string(::testing::TempDir()) + "/absent.djx");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// When mmap itself fails (resource exhaustion, filesystem without mmap
// support), a mapped open degrades to a clean error — not a crash, not a
// silent owned fallback.
TEST_F(OpenIndexTest, MapFailureSurfacesAsStatus) {
  FlatIndex original(kDim);
  original.AddBatch(rows_.data(), kRows);
  ASSERT_TRUE(SaveIndexFile(original, path_).ok());

  FaultInjectionEnv fault(Env::Default());
  OpenOptions open;
  open.map = MapMode::kMapped;
  // Learn how many NewMappedRegion calls a clean open makes.
  {
    auto ok = OpenIndex(path_, open, &fault);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  }
  const i64 maps = fault.counters().maps;
  ASSERT_GE(maps, 1);
  // Fail each one in turn.
  for (i64 k = 0; k < maps; ++k) {
    fault.ResetCounters();
    fault.plan().fail_map_index = k;
    auto loaded = OpenIndex(path_, open, &fault);
    ASSERT_FALSE(loaded.ok()) << "map fault " << k << " was swallowed";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
}

// The mapped-path torture. Zero-copy opens skip the eager whole-file CRC
// sweep, so a flipped byte can make it into a live index — the contract
// is weaker than the owned path's (which must refuse the file) but still
// absolute: the open fails cleanly, OR the index serves well-defined
// results and a full verification detects the damage. ASan (via the
// `fault` label) turns any out-of-bounds mapped read into a hard failure.
TEST_F(OpenIndexTest, MappedOpenSurvivesBitFlipTorture) {
  FlatIndex original(kDim);
  original.AddBatch(rows_.data(), kRows);
  SaveOptions save;
  save.storage = StorageKind::kSq8;
  save.keep_float_refine = true;
  ASSERT_TRUE(SaveIndexFile(original, path_, save).ok());

  std::string baseline;
  {
    std::ifstream in(path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    baseline.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(baseline.size(), 4096u);

  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good());
  OpenOptions open;
  open.map = MapMode::kMapped;
  size_t opened_ok = 0;
  for (size_t i = 0; i < baseline.size(); i += 64) {
    file.seekp(static_cast<long>(i));
    file.put(static_cast<char>(baseline[i] ^ '\xFF'));
    file.flush();

    auto loaded = OpenIndex(path_, open);
    if (loaded.ok()) {
      // The flip landed in a lazily-verified section. Searches must stay
      // defined; a full check must notice the corruption.
      ++opened_ok;
      const auto& index = *loaded.value();
      for (size_t q = 0; q < 2; ++q) {
        AnnSearchParams refine;
        refine.refine_factor = 2;
        const auto got = index.Search(query(q), 5, refine);
        ASSERT_LE(got.size(), 5u) << "byte " << i;
        for (const Neighbor& nb : got) {
          ASSERT_LT(nb.id, kRows) << "byte " << i;
        }
      }
      const auto* flat = index.AsFlat();
      ASSERT_NE(flat, nullptr);
      Status full = flat->store().VerifyAll();
      if (full.ok() && flat->refine_store() != nullptr) {
        full = flat->refine_store()->VerifyAll();
      }
      EXPECT_FALSE(full.ok()) << "byte " << i << ": flip undetected";
    }

    file.seekp(static_cast<long>(i));
    file.put(baseline[i]);
    file.flush();
  }
  // Sanity: the torture exercised the lazy path, not just header
  // rejections — most flips land in the page-aligned sections.
  EXPECT_GT(opened_ok, 0u);

  // And the restored file still opens with full verification.
  open.verify = VerifyMode::kFull;
  auto pristine = OpenIndex(path_, open);
  ASSERT_TRUE(pristine.ok()) << pristine.status().ToString();
}

}  // namespace
}  // namespace ann
}  // namespace deepjoin
