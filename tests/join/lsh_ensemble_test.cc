#include "join/lsh_ensemble.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "lake/generator.h"

namespace deepjoin {
namespace join {
namespace {

class LshEnsembleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(555));
    repo_ = gen.GenerateRepository(500);
    tok_ = std::make_unique<TokenizedRepository>(
        TokenizedRepository::Build(repo_));
    queries_ = gen.GenerateQueries(10);
  }

  lake::Repository repo_;
  std::unique_ptr<TokenizedRepository> tok_;
  std::vector<lake::Column> queries_;
};

TEST_F(LshEnsembleTest, ExactVerifyModeReturnsTrueJoinability) {
  LshEnsembleConfig cfg;
  cfg.exact_verify = true;
  LshEnsembleIndex index(tok_.get(), cfg);
  for (const auto& q : queries_) {
    auto qt = tok_->EncodeQuery(q);
    for (const auto& s : index.SearchThreshold(qt, 0.6)) {
      EXPECT_GE(s.score, 0.6);
      EXPECT_DOUBLE_EQ(s.score, EquiJoinability(qt, tok_->columns()[s.id]));
    }
  }
}

TEST_F(LshEnsembleTest, SketchScoresApproximateTrueJoinability) {
  LshEnsembleIndex index(tok_.get(), LshEnsembleConfig{});
  double err_sum = 0.0;
  size_t n = 0;
  for (const auto& q : queries_) {
    auto qt = tok_->EncodeQuery(q);
    for (const auto& s : index.SearchThreshold(qt, 0.5)) {
      err_sum +=
          std::abs(s.score - EquiJoinability(qt, tok_->columns()[s.id]));
      ++n;
    }
  }
  if (n > 0) {
    EXPECT_LT(err_sum / static_cast<double>(n), 0.35);
  }
}

TEST_F(LshEnsembleTest, FindsSelfAtThresholdOne) {
  LshEnsembleIndex index(tok_.get(), LshEnsembleConfig{});
  // A repository column used as its own query must collide in every band.
  const TokenSet& self = tok_->columns()[100];
  auto hits = index.SearchThreshold(self, 0.99);
  bool found = false;
  for (const auto& s : hits) found |= (s.id == 100u);
  EXPECT_TRUE(found);
}

TEST_F(LshEnsembleTest, TopKReturnsKResults) {
  LshEnsembleIndex index(tok_.get(), LshEnsembleConfig{});
  for (const auto& q : queries_) {
    auto got = index.SearchTopK(tok_->EncodeQuery(q), 10);
    EXPECT_EQ(got.size(), 10u);
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_GE(got[i - 1].score, got[i].score);
    }
  }
}

TEST_F(LshEnsembleTest, ApproximationLosesSomePrecisionButNotAll) {
  // The method is approximate (its candidate recall is imperfect) but must
  // stay well above random.
  LshEnsembleIndex index(tok_.get(), LshEnsembleConfig{});
  std::vector<double> precisions;
  for (const auto& q : queries_) {
    auto qt = tok_->EncodeQuery(q);
    auto exact = ExactEquiTopK(*tok_, qt, 10);
    std::vector<u32> exact_ids, got_ids;
    for (const auto& s : exact) exact_ids.push_back(s.id);
    for (const auto& s : index.SearchTopK(qt, 10)) got_ids.push_back(s.id);
    precisions.push_back(eval::PrecisionAtK(got_ids, exact_ids));
  }
  const double mean = eval::Mean(precisions);
  EXPECT_GT(mean, 0.15);
}

TEST_F(LshEnsembleTest, PartitionsCoverRepository) {
  // Every column must be retrievable through some partition: query with
  // each column itself at a moderate threshold and expect self-retrieval
  // for the vast majority.
  LshEnsembleIndex index(tok_.get(), LshEnsembleConfig{});
  size_t found = 0;
  for (u32 c = 0; c < 100; ++c) {
    for (const auto& s : index.SearchThreshold(tok_->columns()[c], 0.9)) {
      if (s.id == c) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GT(found, 90u);
}

}  // namespace
}  // namespace join
}  // namespace deepjoin
