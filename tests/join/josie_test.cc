#include "join/josie.h"

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace join {
namespace {

class JosieTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(101));
    repo_ = gen.GenerateRepository(400);
    tok_ = std::make_unique<TokenizedRepository>(
        TokenizedRepository::Build(repo_));
    queries_ = gen.GenerateQueries(15);
  }

  lake::Repository repo_;
  std::unique_ptr<TokenizedRepository> tok_;
  std::vector<lake::Column> queries_;
};

TEST_F(JosieTest, MatchesBruteForceTopK) {
  JosieIndex josie(tok_.get());
  for (const auto& q : queries_) {
    const TokenSet qt = tok_->EncodeQuery(q);
    for (size_t k : {1u, 5u, 10u}) {
      auto exact = ExactEquiTopK(*tok_, qt, k);
      auto got = josie.SearchTopK(qt, k);
      ASSERT_EQ(got.size(), exact.size());
      for (size_t i = 0; i < got.size(); ++i) {
        // Scores must agree exactly; ids may differ only among ties.
        EXPECT_DOUBLE_EQ(got[i].score, exact[i].score) << "rank " << i;
      }
    }
  }
}

TEST_F(JosieTest, ScoresAreTrueJoinability) {
  JosieIndex josie(tok_.get());
  const TokenSet qt = tok_->EncodeQuery(queries_[0]);
  for (const auto& s : josie.SearchTopK(qt, 10)) {
    EXPECT_DOUBLE_EQ(s.score,
                     EquiJoinability(qt, tok_->columns()[s.id]));
  }
}

TEST_F(JosieTest, SelfQueryRanksSelfFirst) {
  JosieIndex josie(tok_.get());
  // Querying with a repository column must return that column at jn = 1.
  const TokenSet& self = tok_->columns()[42];
  auto got = josie.SearchTopK(self, 3);
  ASSERT_FALSE(got.empty());
  EXPECT_DOUBLE_EQ(got.front().score, 1.0);
  EXPECT_EQ(got.front().id, 42u);
}

TEST_F(JosieTest, UnknownCellsLowerJoinability) {
  lake::Column q = repo_.column(7);
  const size_t original = q.cells.size();
  for (size_t i = 0; i < original; ++i) {
    q.cells.push_back("certainly-not-in-any-table-" + std::to_string(i));
    q.entity_ids.push_back(lake::kNoDomain);
  }
  JosieIndex josie(tok_.get());
  auto got = josie.SearchTopK(tok_->EncodeQuery(q), 1);
  ASSERT_FALSE(got.empty());
  EXPECT_NEAR(got.front().score, 0.5, 1e-9);
}

TEST_F(JosieTest, EmptyQueryYieldsZeroScores) {
  lake::Column q;
  q.cells = {"nope-a", "nope-b", "nope-c", "nope-d", "nope-e"};
  JosieIndex josie(tok_.get());
  auto got = josie.SearchTopK(tok_->EncodeQuery(q), 5);
  ASSERT_EQ(got.size(), 5u);
  for (const auto& s : got) EXPECT_DOUBLE_EQ(s.score, 0.0);
}

}  // namespace
}  // namespace join
}  // namespace deepjoin
