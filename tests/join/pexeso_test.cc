#include "join/pexeso.h"

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace join {
namespace {

class PexesoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(202));
    repo_ = gen.GenerateRepository(150);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    embedder_->TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);
    store_ = std::make_unique<ColumnVectorStore>(
        ColumnVectorStore::Build(repo_, *embedder_));
    queries_ = gen.GenerateQueries(8);
  }

  lake::Repository repo_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<ColumnVectorStore> store_;
  std::vector<lake::Column> queries_;
};

TEST_F(PexesoTest, MatchesBruteForceTopK) {
  for (float tau : {0.7f, 0.9f}) {
    PexesoConfig pc;
    pc.tau = tau;
    PexesoIndex pexeso(store_.get(), pc);
    for (const auto& q : queries_) {
      auto qv = ColumnVectorStore::EmbedColumn(q, *embedder_);
      const size_t nq = q.cells.size();
      auto exact = ExactSemanticTopK(*store_, qv.data(), nq, tau, 10);
      auto got = pexeso.SearchTopK(qv.data(), nq, 10);
      ASSERT_EQ(got.size(), exact.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].score, exact[i].score, 1e-9)
            << "tau " << tau << " rank " << i;
      }
    }
  }
}

TEST_F(PexesoTest, SelfQueryScoresOne) {
  PexesoConfig pc;
  pc.tau = 0.9f;
  PexesoIndex pexeso(store_.get(), pc);
  const u32 col = 17;
  const float* v = store_->column_vectors(col);
  const size_t n = store_->column_count(col);
  auto got = pexeso.SearchTopK(v, n, 3);
  ASSERT_FALSE(got.empty());
  EXPECT_DOUBLE_EQ(got.front().score, 1.0);
}

TEST_F(PexesoTest, JoinabilityHelperAgreesWithFreeFunction) {
  PexesoConfig pc;
  pc.tau = 0.8f;
  PexesoIndex pexeso(store_.get(), pc);
  auto qv = ColumnVectorStore::EmbedColumn(queries_[0], *embedder_);
  const size_t nq = queries_[0].cells.size();
  for (u32 c : {0u, 5u, 20u}) {
    EXPECT_DOUBLE_EQ(
        pexeso.Joinability(qv.data(), nq, c),
        SemanticJoinability(qv.data(), nq, store_->column_vectors(c),
                            store_->column_count(c), store_->dim(), 0.8f));
  }
}

TEST_F(PexesoTest, TypoVariantsStillMatchSemantically) {
  // A column queried against a typo'd copy of itself should keep a high
  // semantic joinability at tau = 0.9 (char-ngram vectors absorb edits).
  lake::Column original = repo_.column(3);
  lake::Column typod = original;
  for (auto& cell : typod.cells) {
    if (cell.size() > 4) std::swap(cell[1], cell[2]);
  }
  auto ov = ColumnVectorStore::EmbedColumn(original, *embedder_);
  auto tv = ColumnVectorStore::EmbedColumn(typod, *embedder_);
  const double jn =
      SemanticJoinability(tv.data(), typod.cells.size(), ov.data(),
                          original.cells.size(), embedder_->dim(), 0.9f);
  EXPECT_GT(jn, 0.6);
}


TEST_F(PexesoTest, ThresholdSearchMatchesBruteForce) {
  PexesoConfig pc;
  pc.tau = 0.9f;
  PexesoIndex pexeso(store_.get(), pc);
  for (double t : {0.3, 0.6, 0.9}) {
    for (const auto& q : queries_) {
      auto qv = ColumnVectorStore::EmbedColumn(q, *embedder_);
      const size_t nq = q.cells.size();
      auto got = pexeso.SearchThreshold(qv.data(), nq, t);
      // Brute-force reference: every column with jn >= t.
      std::vector<Scored> expected;
      for (u32 c = 0; c < store_->num_columns(); ++c) {
        const double jn = SemanticJoinability(
            qv.data(), nq, store_->column_vectors(c), store_->column_count(c),
            store_->dim(), 0.9f);
        if (jn >= t) expected.push_back({jn, c});
      }
      ASSERT_EQ(got.size(), expected.size()) << "t=" << t;
      std::sort(expected.begin(), expected.end(),
                [](const Scored& a, const Scored& b) { return b < a; });
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].score, expected[i].score, 1e-12);
      }
    }
  }
}

TEST_F(PexesoTest, ThresholdSearchSelfQueryQualifiesAtOne) {
  PexesoConfig pc;
  pc.tau = 0.9f;
  PexesoIndex pexeso(store_.get(), pc);
  const u32 col = 9;
  auto got = pexeso.SearchThreshold(store_->column_vectors(col),
                                    store_->column_count(col), 1.0);
  bool found = false;
  for (const auto& s : got) found |= (s.id == col && s.score == 1.0);
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace join
}  // namespace deepjoin
