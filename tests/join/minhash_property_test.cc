// Parameterized sweep: MinHash estimation error shrinks as num_perm grows
// (the knob behind LSH Ensemble's accuracy/latency trade-off).
#include <cmath>

#include <gtest/gtest.h>

#include "join/minhash.h"
#include "util/rng.h"

namespace deepjoin {
namespace join {
namespace {

class MinHashParamTest : public ::testing::TestWithParam<int> {};

TEST_P(MinHashParamTest, ErrorWithinTheoreticalBand) {
  const int num_perm = GetParam();
  // sigma = sqrt(J(1-J)/n); allow 4 sigma over many trials.
  Rng rng(0x31337);
  double max_err = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    const size_t inter = 100 + rng.UniformU64(200);
    const size_t only = 50 + rng.UniformU64(300);
    std::vector<u32> a, b;
    for (u32 i = 0; i < inter; ++i) {
      a.push_back(i);
      b.push_back(i);
    }
    for (u32 i = 0; i < only; ++i) {
      a.push_back(100000 + i);
      b.push_back(200000 + i);
    }
    const double truth = static_cast<double>(inter) /
                         static_cast<double>(inter + 2 * only);
    auto sa = MinHashSignature::Compute(a, num_perm, 7 + trial);
    auto sb = MinHashSignature::Compute(b, num_perm, 7 + trial);
    max_err = std::max(max_err, std::abs(sa.EstimateJaccard(sb) - truth));
  }
  const double sigma = std::sqrt(0.25 / num_perm);
  EXPECT_LE(max_err, 4.0 * sigma) << "num_perm " << num_perm;
}

TEST_P(MinHashParamTest, SubsetSignatureDominates) {
  // min over a subset is >= min over the superset, per permutation.
  const int num_perm = GetParam();
  std::vector<u32> superset, subset;
  for (u32 i = 0; i < 400; ++i) {
    superset.push_back(i * 3);
    if (i % 2 == 0) subset.push_back(i * 3);
  }
  auto ss = MinHashSignature::Compute(superset, num_perm);
  auto sub = MinHashSignature::Compute(subset, num_perm);
  for (int p = 0; p < num_perm; ++p) {
    EXPECT_GE(sub.values()[p], ss.values()[p]);
  }
}

INSTANTIATE_TEST_SUITE_P(NumPerms, MinHashParamTest,
                         ::testing::Values(16, 32, 64, 128, 256));

}  // namespace
}  // namespace join
}  // namespace deepjoin
