// The §2.1 multiset extension: joinability as join-result count normalized
// by |Q| * |X|.
#include <gtest/gtest.h>

#include "join/joinability.h"

namespace deepjoin {
namespace join {
namespace {

lake::Column MakeCol(std::vector<std::string> cells) {
  lake::Column c;
  c.cells = std::move(cells);
  return c;
}

TEST(MultisetJoinabilityTest, DistinctEqualSetsScoreInverseSize) {
  CellDictionary dict;
  auto q = TokenizeMultiset(MakeCol({"a", "b"}), &dict);
  auto x = TokenizeMultiset(MakeCol({"a", "b"}), &dict);
  // 2 join results / (2 * 2).
  EXPECT_DOUBLE_EQ(MultisetJoinability(q, x), 0.5);
}

TEST(MultisetJoinabilityTest, ManyToManyCountsProducts) {
  CellDictionary dict;
  // Q has "a" twice, X has "a" three times: 6 join results.
  auto q = TokenizeMultiset(MakeCol({"a", "a", "b"}), &dict);
  auto x = TokenizeMultiset(MakeCol({"a", "a", "a"}), &dict);
  EXPECT_DOUBLE_EQ(MultisetJoinability(q, x), 6.0 / (3.0 * 3.0));
}

TEST(MultisetJoinabilityTest, Symmetric) {
  CellDictionary dict;
  auto q = TokenizeMultiset(MakeCol({"a", "a", "b", "c"}), &dict);
  auto x = TokenizeMultiset(MakeCol({"b", "c", "c", "d"}), &dict);
  EXPECT_DOUBLE_EQ(MultisetJoinability(q, x), MultisetJoinability(x, q));
}

TEST(MultisetJoinabilityTest, DisjointIsZero) {
  CellDictionary dict;
  auto q = TokenizeMultiset(MakeCol({"a", "b"}), &dict);
  auto x = TokenizeMultiset(MakeCol({"c", "d"}), &dict);
  EXPECT_DOUBLE_EQ(MultisetJoinability(q, x), 0.0);
}

TEST(MultisetJoinabilityTest, EmptyIsZero) {
  CellDictionary dict;
  auto q = TokenizeMultiset(MakeCol({}), &dict);
  auto x = TokenizeMultiset(MakeCol({"a"}), &dict);
  EXPECT_DOUBLE_EQ(MultisetJoinability(q, x), 0.0);
  EXPECT_DOUBLE_EQ(MultisetJoinability(x, q), 0.0);
}

TEST(MultisetJoinabilityTest, BoundedByOne) {
  CellDictionary dict;
  auto q = TokenizeMultiset(MakeCol({"a", "a", "a"}), &dict);
  // 9 results / 9 = 1 — the maximum (every pair joins).
  EXPECT_DOUBLE_EQ(MultisetJoinability(q, q), 1.0);
}

TEST(MultisetJoinabilityTest, AgreesWithSetCaseWhenDistinct) {
  // When both sides are duplicate-free, result count = |Q ∩ X|, so the
  // multiset measure is overlap / (|Q| |X|).
  CellDictionary dict;
  auto q = TokenizeMultiset(MakeCol({"a", "b", "c", "d"}), &dict);
  auto x = TokenizeMultiset(MakeCol({"c", "d", "e"}), &dict);
  EXPECT_DOUBLE_EQ(MultisetJoinability(q, x), 2.0 / 12.0);
}

}  // namespace
}  // namespace join
}  // namespace deepjoin
