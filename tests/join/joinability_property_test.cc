// Property sweeps over generator seeds: invariants of the joinability
// definitions (§2.1) that must hold on every corpus draw.
#include <gtest/gtest.h>

#include "core/training_data.h"
#include "join/joinability.h"
#include "lake/generator.h"

namespace deepjoin {
namespace join {
namespace {

class JoinabilityPropertyTest : public ::testing::TestWithParam<u64> {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(GetParam()));
    repo_ = gen.GenerateRepository(120);
    tok_ = std::make_unique<TokenizedRepository>(
        TokenizedRepository::Build(repo_));
  }
  lake::Repository repo_;
  std::unique_ptr<TokenizedRepository> tok_;
};

TEST_P(JoinabilityPropertyTest, SelfJoinabilityIsOne) {
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(
        EquiJoinability(tok_->columns()[i], tok_->columns()[i]), 1.0);
  }
}

TEST_P(JoinabilityPropertyTest, JoinabilityBounded) {
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 20; ++j) {
      const double jn =
          EquiJoinability(tok_->columns()[i], tok_->columns()[j]);
      EXPECT_GE(jn, 0.0);
      EXPECT_LE(jn, 1.0);
    }
  }
}

TEST_P(JoinabilityPropertyTest, OrderInsensitivity) {
  // Definition 2.1 is set-based: shuffling a column's cells must not
  // change any jn value (the property the shuffle augmentation teaches
  // the encoder).
  Rng rng(GetParam() ^ 0xF00);
  for (size_t i = 0; i < 10; ++i) {
    const lake::Column& original = repo_.column(static_cast<u32>(i));
    lake::Column shuffled = core::ShuffleColumn(original, rng);
    const auto qo = tok_->EncodeQuery(original);
    const auto qs = tok_->EncodeQuery(shuffled);
    for (size_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(EquiJoinability(qo, tok_->columns()[j]),
                       EquiJoinability(qs, tok_->columns()[j]));
    }
  }
}

TEST_P(JoinabilityPropertyTest, GrowingTargetNeverLowersJoinability) {
  // Q_M = Q ∩ X grows monotonically with X.
  const TokenSet& q = tok_->columns()[0];
  TokenSet target;
  target.query_size = 0;
  double prev = 0.0;
  for (size_t j = 1; j < 15; ++j) {
    // Accumulate the union of columns 1..j as the target.
    std::vector<u32> merged = target.tokens;
    merged.insert(merged.end(), tok_->columns()[j].tokens.begin(),
                  tok_->columns()[j].tokens.end());
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    target.tokens = std::move(merged);
    const double jn = EquiJoinability(q, target);
    EXPECT_GE(jn + 1e-12, prev);
    prev = jn;
  }
}

TEST_P(JoinabilityPropertyTest, SemanticDominatesEquiAtAnyTau) {
  // Identical cells are at distance 0, so semantic jn >= equi jn for the
  // same pair at every tau > 0.
  FastTextConfig fc;
  fc.dim = 16;
  FastTextEmbedder emb(fc);
  auto store = ColumnVectorStore::Build(repo_, emb);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      const double equi =
          EquiJoinability(tok_->columns()[i], tok_->columns()[j]);
      const double sem = SemanticJoinability(
          store.column_vectors(static_cast<u32>(i)), store.column_count(i),
          store.column_vectors(static_cast<u32>(j)), store.column_count(j),
          store.dim(), 0.3f);
      EXPECT_GE(sem + 1e-9, equi) << i << "," << j;
    }
  }
}

TEST_P(JoinabilityPropertyTest, SemanticMonotoneInTau) {
  FastTextConfig fc;
  fc.dim = 16;
  FastTextEmbedder emb(fc);
  auto store = ColumnVectorStore::Build(repo_, emb);
  for (size_t i = 0; i < 5; ++i) {
    double prev = 0.0;
    for (float tau : {0.1f, 0.4f, 0.7f, 1.0f, 1.5f}) {
      const double jn = SemanticJoinability(
          store.column_vectors(0), store.column_count(0),
          store.column_vectors(static_cast<u32>(i)), store.column_count(i),
          store.dim(), tau);
      EXPECT_GE(jn + 1e-12, prev) << "tau " << tau;
      prev = jn;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinabilityPropertyTest,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

}  // namespace
}  // namespace join
}  // namespace deepjoin
