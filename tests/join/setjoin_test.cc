#include "join/setjoin.h"

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace join {
namespace {

std::vector<TokenSet> MakeSets(std::vector<std::vector<u32>> raw) {
  std::vector<TokenSet> out;
  for (auto& tokens : raw) {
    TokenSet ts;
    std::sort(tokens.begin(), tokens.end());
    ts.tokens = std::move(tokens);
    ts.query_size = ts.tokens.size();
    out.push_back(std::move(ts));
  }
  return out;
}

TEST(EquiSelfJoinTest, FindsDirectedPairs) {
  // col0 ⊂ col1: jn(0->1) = 1.0, jn(1->0) = 0.5.
  auto sets = MakeSets({{1, 2}, {1, 2, 3, 4}});
  auto pairs = EquiSelfJoin(sets, 0.7);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].x, 0u);
  EXPECT_EQ(pairs[0].y, 1u);
  EXPECT_DOUBLE_EQ(pairs[0].jn, 1.0);
}

TEST(EquiSelfJoinTest, BothDirectionsWhenSymmetric) {
  auto sets = MakeSets({{1, 2, 3}, {1, 2, 3}});
  auto pairs = EquiSelfJoin(sets, 0.7);
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(EquiSelfJoinTest, ThresholdFilters) {
  auto sets = MakeSets({{1, 2, 3, 4}, {1, 2, 9, 10}});  // jn = 0.5 both ways
  EXPECT_TRUE(EquiSelfJoin(sets, 0.7).empty());
  EXPECT_EQ(EquiSelfJoin(sets, 0.5).size(), 2u);
}

TEST(EquiSelfJoinTest, MatchesBruteForceOnGeneratedData) {
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(77));
  auto repo = gen.GenerateRepository(120);
  auto tok = TokenizedRepository::Build(repo);
  auto pairs = EquiSelfJoin(tok.columns(), 0.7);

  // Brute force reference.
  size_t expected = 0;
  for (size_t x = 0; x < tok.size(); ++x) {
    for (size_t y = 0; y < tok.size(); ++y) {
      if (x == y) continue;
      if (EquiJoinability(tok.columns()[x], tok.columns()[y]) >= 0.7) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(pairs.size(), expected);
  for (const auto& p : pairs) {
    EXPECT_GE(p.jn, 0.7);
    EXPECT_DOUBLE_EQ(
        p.jn, EquiJoinability(tok.columns()[p.x], tok.columns()[p.y]));
  }
}

TEST(SemanticSelfJoinTest, FindsVariantPairs) {
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(88));
  auto sample = gen.GenerateQueries(60, 0x99);
  lake::Repository repo;
  for (const auto& c : sample) repo.Add(c);
  FastTextConfig fc;
  fc.dim = 16;
  FastTextEmbedder emb(fc);
  emb.TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);
  auto store = ColumnVectorStore::Build(repo, emb);
  auto pairs = SemanticSelfJoin(store, 0.7, 0.9f);
  EXPECT_FALSE(pairs.empty());
  for (const auto& p : pairs) {
    EXPECT_GE(p.jn, 0.7);
    EXPECT_NE(p.x, p.y);
  }
}

TEST(SemanticSelfJoinTest, SemanticSupersetOfEqui) {
  // Any equi jn >= t pair is also semantic jn >= t (identical strings are
  // at distance 0 <= tau).
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(91));
  auto sample = gen.GenerateQueries(50, 0xAB);
  lake::Repository repo;
  join::CellDictionary dict;
  for (const auto& c : sample) repo.Add(c);
  auto tok = TokenizedRepository::Build(repo);
  FastTextConfig fc;
  fc.dim = 16;
  FastTextEmbedder emb(fc);
  auto store = ColumnVectorStore::Build(repo, emb);

  auto equi = EquiSelfJoin(tok.columns(), 0.8);
  auto sem = SemanticSelfJoin(store, 0.8, 0.5f);
  for (const auto& ep : equi) {
    bool found = false;
    for (const auto& sp : sem) {
      if (sp.x == ep.x && sp.y == ep.y) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "equi pair (" << ep.x << "," << ep.y
                       << ") missing from semantic join";
  }
}

}  // namespace
}  // namespace join
}  // namespace deepjoin
