#include "join/joinability.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace join {
namespace {

lake::Column MakeColumn(std::vector<std::string> cells) {
  lake::Column c;
  c.cells = std::move(cells);
  return c;
}

TEST(CellDictionaryTest, AssignsStableIds) {
  CellDictionary dict;
  const u32 a = dict.GetOrAssign("apple");
  const u32 b = dict.GetOrAssign("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.GetOrAssign("apple"), a);
  EXPECT_EQ(*dict.Lookup("banana"), b);
  EXPECT_FALSE(dict.Lookup("cherry").has_value());
  EXPECT_EQ(dict.size(), 2u);
}

TEST(CellDictionaryTest, DocFreqCounts) {
  CellDictionary dict;
  const u32 t = dict.GetOrAssign("x");
  dict.BumpDocFreq(t);
  dict.BumpDocFreq(t);
  EXPECT_EQ(dict.DocFreq(t), 2u);
  EXPECT_EQ(dict.DocFreq(999), 0u);
}

TEST(SetOverlapTest, Basics) {
  EXPECT_EQ(SetOverlap({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(SetOverlap({}, {1}), 0u);
  EXPECT_EQ(SetOverlap({1, 5, 9}, {2, 6, 10}), 0u);
  EXPECT_EQ(SetOverlap({1, 2}, {1, 2}), 2u);
}

TEST(TokenizedRepositoryTest, BuildAndQueryEncoding) {
  lake::Repository repo;
  repo.Add(MakeColumn({"a", "b", "c"}));
  repo.Add(MakeColumn({"b", "c", "d", "b"}));  // duplicate collapses
  auto tok = TokenizedRepository::Build(repo);
  EXPECT_EQ(tok.columns()[1].tokens.size(), 3u);

  lake::Column q = MakeColumn({"a", "b", "zz"});
  auto qt = tok.EncodeQuery(q);
  EXPECT_EQ(qt.tokens.size(), 2u);   // "zz" unseen
  EXPECT_EQ(qt.query_size, 3u);      // but still counted in |Q|
}

TEST(EquiJoinabilityTest, MatchesDefinition) {
  lake::Repository repo;
  repo.Add(MakeColumn({"a", "b", "c", "d"}));
  auto tok = TokenizedRepository::Build(repo);
  auto qt = tok.EncodeQuery(MakeColumn({"a", "b", "x", "y"}));
  // |Q ∩ X| = 2, |Q| = 4.
  EXPECT_DOUBLE_EQ(EquiJoinability(qt, tok.columns()[0]), 0.5);
}

TEST(EquiJoinabilityTest, AsymmetryOfDefinition21) {
  lake::Repository repo;
  repo.Add(MakeColumn({"a", "b"}));
  repo.Add(MakeColumn({"a", "b", "c", "d"}));
  auto tok = TokenizedRepository::Build(repo);
  // jn(small -> big) = 1, jn(big -> small) = 0.5.
  EXPECT_DOUBLE_EQ(EquiJoinability(tok.columns()[0], tok.columns()[1]), 1.0);
  EXPECT_DOUBLE_EQ(EquiJoinability(tok.columns()[1], tok.columns()[0]), 0.5);
}

TEST(ExactEquiTopKTest, RanksByJoinability) {
  lake::Repository repo;
  repo.Add(MakeColumn({"a", "b", "c"}));       // jn 1.0
  repo.Add(MakeColumn({"a", "b", "x"}));       // jn 2/3
  repo.Add(MakeColumn({"p", "q", "r"}));       // jn 0
  auto tok = TokenizedRepository::Build(repo);
  auto qt = tok.EncodeQuery(MakeColumn({"a", "b", "c"}));
  auto top = ExactEquiTopK(tok, qt, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_EQ(top[1].id, 1u);
}

TEST(SemanticJoinabilityTest, CountsThresholdMatches) {
  // dim 2; q has 2 vectors, x has 1. tau = 0.5.
  const float q[] = {0, 0, 1, 1};
  const float x[] = {0.1f, 0.0f};
  EXPECT_DOUBLE_EQ(SemanticJoinability(q, 2, x, 1, 2, 0.5f), 0.5);
  EXPECT_DOUBLE_EQ(SemanticJoinability(q, 2, x, 1, 2, 2.0f), 1.0);
  EXPECT_DOUBLE_EQ(SemanticJoinability(q, 2, x, 1, 2, 0.05f), 0.0);
}

TEST(SemanticJoinabilityTest, EmptyQueryIsZero) {
  const float x[] = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(SemanticJoinability(nullptr, 0, x, 1, 2, 1.0f), 0.0);
}

TEST(ColumnVectorStoreTest, LayoutAndOwners) {
  lake::Repository repo;
  repo.Add(MakeColumn({"aa", "bb"}));
  repo.Add(MakeColumn({"cc"}));
  FastTextConfig fc;
  fc.dim = 8;
  FastTextEmbedder emb(fc);
  auto store = ColumnVectorStore::Build(repo, emb);
  EXPECT_EQ(store.num_columns(), 2u);
  EXPECT_EQ(store.total_vectors(), 3u);
  EXPECT_EQ(store.column_count(0), 2u);
  EXPECT_EQ(store.OwnerOf(0), 0u);
  EXPECT_EQ(store.OwnerOf(2), 1u);
  // Column vectors match direct embedding.
  auto direct = emb.TextVector("cc");
  const float* stored = store.column_vectors(1);
  for (int d = 0; d < 8; ++d) EXPECT_FLOAT_EQ(stored[d], direct[d]);
}

}  // namespace
}  // namespace join
}  // namespace deepjoin
