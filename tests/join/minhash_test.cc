#include "join/minhash.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace deepjoin {
namespace join {
namespace {

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  const std::vector<u32> s = {1, 5, 9, 13};
  auto a = MinHashSignature::Compute(s, 64);
  auto b = MinHashSignature::Compute(s, 64);
  EXPECT_DOUBLE_EQ(a.EstimateJaccard(b), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  std::vector<u32> a_set, b_set;
  for (u32 i = 0; i < 50; ++i) {
    a_set.push_back(i);
    b_set.push_back(1000 + i);
  }
  auto a = MinHashSignature::Compute(a_set, 128);
  auto b = MinHashSignature::Compute(b_set, 128);
  EXPECT_LT(a.EstimateJaccard(b), 0.05);
}

TEST(MinHashTest, EstimateTracksTrueJaccard) {
  Rng rng(3);
  for (double target : {0.2, 0.5, 0.8}) {
    // Build sets with |A ∩ B| / |A ∪ B| == target.
    const size_t union_size = 600;
    const auto inter = static_cast<size_t>(target * union_size);
    std::vector<u32> a_set, b_set;
    for (u32 i = 0; i < inter; ++i) {
      a_set.push_back(i);
      b_set.push_back(i);
    }
    const size_t rest = union_size - inter;
    for (u32 i = 0; i < rest / 2; ++i) {
      a_set.push_back(10000 + i);
      b_set.push_back(20000 + i);
    }
    const double truth =
        static_cast<double>(inter) /
        static_cast<double>(inter + 2 * (rest / 2));
    auto a = MinHashSignature::Compute(a_set, 256);
    auto b = MinHashSignature::Compute(b_set, 256);
    EXPECT_NEAR(a.EstimateJaccard(b), truth, 0.08) << "target " << target;
  }
}

TEST(MinHashTest, DifferentSeedsGiveDifferentSignatures) {
  const std::vector<u32> s = {1, 2, 3, 4, 5};
  auto a = MinHashSignature::Compute(s, 32, 111);
  auto b = MinHashSignature::Compute(s, 32, 222);
  EXPECT_NE(a.values(), b.values());
}

TEST(MinHashTest, NumPermRespected) {
  auto sig = MinHashSignature::Compute({1, 2, 3}, 77);
  EXPECT_EQ(sig.num_perm(), 77);
}

}  // namespace
}  // namespace join
}  // namespace deepjoin
