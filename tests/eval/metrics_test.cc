#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace deepjoin {
namespace eval {
namespace {

TEST(MetricsTest, PrecisionAtKBasics) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2, 9}, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({7, 8, 9}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, {1, 2}), 0.0);
}

TEST(MetricsTest, PrecisionIsOrderInsensitive) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({3, 1, 2}, {1, 2, 3}), 1.0);
}

TEST(MetricsTest, NdcgPerfectRankingIsOne) {
  auto jn = [](u32 id) { return id == 0 ? 1.0 : (id == 1 ? 0.5 : 0.1); };
  EXPECT_DOUBLE_EQ(NdcgAtK({0, 1, 2}, {0, 1, 2}, jn), 1.0);
}

TEST(MetricsTest, NdcgPenalizesMisordering) {
  auto jn = [](u32 id) { return id == 0 ? 1.0 : (id == 1 ? 0.5 : 0.1); };
  const double swapped = NdcgAtK({2, 1, 0}, {0, 1, 2}, jn);
  EXPECT_LT(swapped, 1.0);
  EXPECT_GT(swapped, 0.0);
}

TEST(MetricsTest, NdcgUsesPaperDefinition) {
  // DCG = sum jn / log2(i+1), i starting at 1.
  auto jn = [](u32 id) { return id == 0 ? 0.8 : 0.4; };
  const double dcg_exact = 0.8 / std::log2(2.0) + 0.4 / std::log2(3.0);
  const double dcg_model = 0.4 / std::log2(2.0) + 0.8 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK({1, 0}, {0, 1}, jn), dcg_model / dcg_exact, 1e-12);
}

TEST(MetricsTest, NdcgEmptyExactIsVacuouslyPerfect) {
  auto jn = [](u32) { return 0.0; };
  EXPECT_DOUBLE_EQ(NdcgAtK({5, 6}, {7, 8}, jn), 1.0);
}

TEST(MetricsTest, PoolPRF1) {
  // retrieved = {1,2,3,4}; joinable pool = {2,4,6}.
  auto r = PoolPRF1({1, 2, 3, 4}, {2, 4, 6});
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 2.0 / 3.0);
  EXPECT_NEAR(r.f1, 2 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0), 1e-12);
}

TEST(MetricsTest, PoolPRF1EdgeCases) {
  EXPECT_DOUBLE_EQ(PoolPRF1({}, {1}).f1, 0.0);
  auto none_joinable = PoolPRF1({1, 2}, {});
  EXPECT_DOUBLE_EQ(none_joinable.precision, 0.0);
  EXPECT_DOUBLE_EQ(none_joinable.recall, 0.0);
}

TEST(MetricsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace deepjoin
