#include "eval/oracle.h"

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace eval {
namespace {

lake::Column MakeCol(u32 domain, std::vector<u32> entities) {
  lake::Column c;
  c.domain_id = domain;
  c.entity_ids = std::move(entities);
  for (u32 e : c.entity_ids) c.cells.push_back("cell" + std::to_string(e));
  return c;
}

TEST(OracleTest, SameDomainHighOverlapIsJoinable) {
  DomainOracle oracle(0.25);
  auto q = MakeCol(1, {1, 2, 3, 4});
  auto t = MakeCol(1, {1, 2, 99});
  EXPECT_TRUE(oracle.Joinable(q, t));
}

TEST(OracleTest, CrossDomainNeverJoinable) {
  DomainOracle oracle(0.0);
  auto q = MakeCol(1, {1, 2, 3});
  auto t = MakeCol(2, {1, 2, 3});
  EXPECT_FALSE(oracle.Joinable(q, t));
}

TEST(OracleTest, LowOverlapRejected) {
  DomainOracle oracle(0.5);
  auto q = MakeCol(1, {1, 2, 3, 4, 5, 6, 7, 8});
  auto t = MakeCol(1, {1, 100, 101});
  EXPECT_FALSE(oracle.Joinable(q, t));  // 1/8 < 0.5
}

TEST(OracleTest, UnknownDomainRejected) {
  DomainOracle oracle(0.1);
  auto q = MakeCol(lake::kNoDomain, {1, 2});
  auto t = MakeCol(lake::kNoDomain, {1, 2});
  EXPECT_FALSE(oracle.Joinable(q, t));
}

TEST(OracleTest, OverlapCountsDistinctEntities) {
  DomainOracle oracle(0.5);
  // Duplicated entity in target must not double-count.
  auto q = MakeCol(1, {1, 2});
  auto t = MakeCol(1, {1, 1, 1});
  EXPECT_TRUE(oracle.Joinable(q, t));  // 1/2 >= 0.5
}

TEST(OracleTest, GeneratedFamilyMatesAreJoinable) {
  // Columns from the same generator family should usually be judged
  // joinable; cross-domain columns never.
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(909));
  auto repo = gen.GenerateRepository(200);
  DomainOracle oracle(0.25);
  size_t same_domain_joinable = 0, same_domain_total = 0;
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = i + 1; j < 50; ++j) {
      const auto& a = repo.column(static_cast<u32>(i));
      const auto& b = repo.column(static_cast<u32>(j));
      if (a.domain_id == b.domain_id) {
        ++same_domain_total;
        same_domain_joinable += oracle.Joinable(a, b);
      } else {
        EXPECT_FALSE(oracle.Joinable(a, b));
      }
    }
  }
  EXPECT_GT(same_domain_total, 0u);
  EXPECT_GT(same_domain_joinable, 0u);
}

}  // namespace
}  // namespace eval
}  // namespace deepjoin
