#include "core/encoders.h"

#include <cmath>

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class EncodersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(606));
    sample_ = gen.GenerateQueries(60, 0x11);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
  }

  std::vector<lake::Column> sample_;
  std::unique_ptr<FastTextEmbedder> embedder_;
};

TEST_F(EncodersTest, PlmEncoderShapesAndDeterminism) {
  PlmEncoderConfig cfg;
  cfg.kind = PlmKind::kDistilSim;
  PlmColumnEncoder enc(cfg, sample_, *embedder_);
  auto a = enc.Encode(sample_[0]);
  EXPECT_EQ(static_cast<int>(a.size()), enc.dim());
  EXPECT_EQ(a, enc.Encode(sample_[0]));
}

TEST_F(EncodersTest, PlmKindsDiffer) {
  PlmEncoderConfig c1;
  c1.kind = PlmKind::kDistilSim;
  PlmEncoderConfig c2;
  c2.kind = PlmKind::kMPNetSim;
  PlmColumnEncoder e1(c1, sample_, *embedder_);
  PlmColumnEncoder e2(c2, sample_, *embedder_);
  EXPECT_EQ(e1.dim(), 48);
  EXPECT_EQ(e2.dim(), 64);
  EXPECT_EQ(e1.name(), "DeepJoin-DistilSim");
  EXPECT_EQ(e2.name(), "DeepJoin-MPNetSim");
}

TEST_F(EncodersTest, ColumnToIdsStartsWithCls) {
  PlmEncoderConfig cfg;
  PlmColumnEncoder enc(cfg, sample_, *embedder_);
  auto ids = enc.ColumnToIds(sample_[0]);
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(ids[0], Vocab::kClsId);
  EXPECT_GT(ids.size(), 3u);
}

TEST_F(EncodersTest, FastTextEncoderMatchesEmbedderOutput) {
  TransformConfig tc;
  tc.option = TransformOption::kCol;
  tc.cell_budget = 0;
  FastTextColumnEncoder enc(embedder_.get(), tc);
  auto got = enc.Encode(sample_[0]);
  lake::Column c = sample_[0];
  auto expected = embedder_->TextVector(TransformColumn(c, tc));
  EXPECT_EQ(got, expected);
}

TEST_F(EncodersTest, MlpEncoderUsesHiddenDim) {
  nn::MlpConfig mc;
  mc.input_dim = embedder_->dim();
  mc.hidden_dim = 24;
  auto mlp = std::make_shared<nn::MlpRegressor>(mc);
  MlpColumnEncoder enc(mlp, embedder_.get(), TransformConfig{});
  EXPECT_EQ(enc.dim(), 24);
  EXPECT_EQ(enc.Encode(sample_[0]).size(), 24u);
  EXPECT_EQ(enc.name(), "MLP");
}

TEST_F(EncodersTest, TransformOptionChangesEmbedding) {
  PlmEncoderConfig cfg;
  PlmColumnEncoder enc(cfg, sample_, *embedder_);
  auto a = enc.Encode(sample_[0]);
  TransformConfig tc = enc.transform_config();
  tc.option = TransformOption::kCol;
  enc.set_transform_config(tc);
  auto b = enc.Encode(sample_[0]);
  double diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST_F(EncodersTest, SimilarColumnsStartCloserThanDissimilar) {
  // Even before fine-tuning, the subword-initialised embeddings should put
  // a column nearer to a copy of itself than to an unrelated column.
  PlmEncoderConfig cfg;
  PlmColumnEncoder enc(cfg, sample_, *embedder_);
  lake::Column copy = sample_[0];
  auto a = enc.Encode(sample_[0]);
  auto b = enc.Encode(copy);
  auto c = enc.Encode(sample_[1]);
  double d_same = 0, d_other = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d_same += (a[i] - b[i]) * (a[i] - b[i]);
    d_other += (a[i] - c[i]) * (a[i] - c[i]);
  }
  EXPECT_LT(d_same, d_other);
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
