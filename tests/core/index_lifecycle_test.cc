// Index lifecycle: parallel builds, incremental column adds, and HNSW
// index persistence — the offline/online split of paper §3.3 in practice.
#include <filesystem>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class IndexLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(1414));
    repo_ = gen.GenerateRepository(300);
    queries_ = gen.GenerateQueries(5);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    path_ = std::string(::testing::TempDir()) + "/index_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".djx";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
  std::string path_;
};

TEST_F(IndexLifecycleTest, ParallelBuildMatchesSerialBuild) {
  SearcherConfig sc;
  EmbeddingSearcher serial(encoder_.get(), sc);
  ASSERT_TRUE(serial.BuildIndex(repo_).ok());
  EmbeddingSearcher parallel(encoder_.get(), sc);
  ThreadPool pool(3);
  BuildStats build_stats;
  ASSERT_TRUE(parallel.BuildIndex(repo_, &pool, &build_stats).ok());
  EXPECT_EQ(build_stats.columns, repo_.size());
  EXPECT_GT(build_stats.trace.total_ms(), 0.0);
  ASSERT_EQ(parallel.index_size(), serial.index_size());
  for (const auto& q : queries_) {
    EXPECT_EQ(parallel.Search(q, {.k = 10}).ids,
              serial.Search(q, {.k = 10}).ids);
  }
}

TEST_F(IndexLifecycleTest, IncrementalAddMatchesBulkBuild) {
  SearcherConfig sc;
  EmbeddingSearcher bulk(encoder_.get(), sc);
  ASSERT_TRUE(bulk.BuildIndex(repo_).ok());
  EmbeddingSearcher incremental(encoder_.get(), sc);
  for (size_t i = 0; i < repo_.size(); ++i) {
    auto id = incremental.AddColumn(repo_.column(static_cast<u32>(i)));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<u32>(i));
  }
  // HNSW construction is order-dependent, so graphs may differ slightly;
  // the result sets must still agree heavily.
  size_t agree = 0, total = 0;
  for (const auto& q : queries_) {
    auto a = bulk.Search(q, {.k = 10}).ids;
    auto b = incremental.Search(q, {.k = 10}).ids;
    for (u32 x : a) {
      for (u32 y : b) {
        if (x == y) {
          ++agree;
          break;
        }
      }
    }
    total += a.size();
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.85);
}

TEST_F(IndexLifecycleTest, AddAfterBuildExtendsIndex) {
  SearcherConfig sc;
  EmbeddingSearcher searcher(encoder_.get(), sc);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  auto id = searcher.AddColumn(queries_[0]);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, static_cast<u32>(repo_.size()));
  // The freshly added column is its own nearest neighbour.
  auto out = searcher.Search(queries_[0], {.k = 1});
  ASSERT_EQ(out.ids.size(), 1u);
  EXPECT_EQ(out.ids[0], *id);
}

TEST_F(IndexLifecycleTest, SaveLoadRoundTripPreservesResults) {
  SearcherConfig sc;
  EmbeddingSearcher original(encoder_.get(), sc);
  ASSERT_TRUE(original.BuildIndex(repo_).ok());
  ASSERT_TRUE(original.SaveIndex(path_).ok());

  EmbeddingSearcher restored(encoder_.get(), sc);
  ASSERT_TRUE(restored.LoadIndex(path_).ok());
  EXPECT_EQ(restored.index_size(), repo_.size());
  for (const auto& q : queries_) {
    EXPECT_EQ(restored.Search(q, {.k = 10}).ids,
              original.Search(q, {.k = 10}).ids);
  }
}

TEST_F(IndexLifecycleTest, FlatBackendRoundTripsThroughUnifiedFormat) {
  // The unified DJIX path persists every backend; pre-DJIX this returned
  // FailedPrecondition for anything but HNSW.
  SearcherConfig sc;
  sc.backend = AnnBackend::kFlat;
  EmbeddingSearcher original(encoder_.get(), sc);
  ASSERT_TRUE(original.BuildIndex(repo_).ok());
  ASSERT_TRUE(original.SaveIndex(path_).ok());

  EmbeddingSearcher restored(encoder_.get(), sc);
  ASSERT_TRUE(restored.LoadIndex(path_).ok());
  EXPECT_EQ(restored.index_size(), repo_.size());
  for (const auto& q : queries_) {
    EXPECT_EQ(restored.Search(q, {.k = 10}).ids,
              original.Search(q, {.k = 10}).ids);
  }
}

TEST_F(IndexLifecycleTest, LoadRejectsBackendKindMismatch) {
  SearcherConfig flat_sc;
  flat_sc.backend = AnnBackend::kFlat;
  EmbeddingSearcher original(encoder_.get(), flat_sc);
  ASSERT_TRUE(original.BuildIndex(repo_).ok());
  ASSERT_TRUE(original.SaveIndex(path_).ok());

  SearcherConfig hnsw_sc;  // default backend: HNSW
  EmbeddingSearcher mismatched(encoder_.get(), hnsw_sc);
  EXPECT_EQ(mismatched.LoadIndex(path_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(IndexLifecycleTest, QuantizedSaveServesMappedSearches) {
  // The beyond-RAM path end to end: save SQ8 with a float refinement
  // payload, reopen zero-copy mapped, and check refined results against
  // the float original.
  SearcherConfig sc;
  EmbeddingSearcher original(encoder_.get(), sc);
  ASSERT_TRUE(original.BuildIndex(repo_).ok());
  ann::SaveOptions save;
  save.storage = ann::StorageKind::kSq8;
  save.keep_float_refine = true;
  ASSERT_TRUE(original.SaveIndex(path_, nullptr, save).ok());

  EmbeddingSearcher served(encoder_.get(), sc);
  ann::OpenOptions open;
  open.map = ann::MapMode::kMapped;
  ASSERT_TRUE(served.LoadIndex(path_, nullptr, open).ok());
  EXPECT_EQ(served.index_size(), repo_.size());
  size_t agree = 0, total = 0;
  for (const auto& q : queries_) {
    const auto want = original.Search(q, {.k = 5}).ids;
    const auto got = served.Search(q, {.k = 5, .refine_factor = 4}).ids;
    ASSERT_EQ(got.size(), want.size());
    for (const u32 id : want) {
      ++total;
      for (const u32 g : got) {
        if (g == id) {
          ++agree;
          break;
        }
      }
    }
  }
  // SQ8 + exact reranking should agree with the float index almost
  // always; demand a conservative floor so the test is not flaky.
  EXPECT_GE(agree * 10, total * 8)
      << agree << "/" << total << " results matched";

  // A mapped open is read-only: mutations surface as status, searches
  // keep working.
  lake::Column extra = repo_.column(0);
  EXPECT_EQ(served.AddColumn(extra).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(IndexLifecycleTest, LoadRejectsDimensionMismatch) {
  SearcherConfig sc;
  EmbeddingSearcher original(encoder_.get(), sc);
  ASSERT_TRUE(original.BuildIndex(repo_).ok());
  ASSERT_TRUE(original.SaveIndex(path_).ok());

  FastTextConfig other_fc;
  other_fc.dim = 8;  // different embedding dim
  FastTextEmbedder other_emb(other_fc);
  FastTextColumnEncoder other_encoder(&other_emb, TransformConfig{});
  EmbeddingSearcher mismatched(&other_encoder, sc);
  EXPECT_EQ(mismatched.LoadIndex(path_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IndexLifecycleTest, LoadMissingFileIsIoError) {
  SearcherConfig sc;
  EmbeddingSearcher searcher(encoder_.get(), sc);
  EXPECT_EQ(searcher.LoadIndex("/no/such/file").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
