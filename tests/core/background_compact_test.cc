// Background compaction (SearcherConfig::compaction_pool): the
// auto-compaction trigger hands the work to a worker thread instead of
// running it inside the remove, so the mutator returns while the
// compaction takes the writer token off-thread. TSan-labeled, and the
// test names carry the Churn prefix so the churn leg of tools/check.sh
// re-selects them alongside the other live-mutability suites.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace deepjoin {
namespace core {
namespace {

class ChurnBackgroundCompactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(909));
    repo_ = gen.GenerateRepository(80);
    queries_ = gen.GenerateQueries(4);
    FastTextConfig fc;
    fc.dim = 8;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
  }

  u64 Compactions() {
    return metrics::MetricsRegistry::Global()
        .GetCounter("dj_index_compactions")
        ->value();
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
};

TEST_F(ChurnBackgroundCompactTest, RemoveTriggersCompactionOffThread) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 8;
  cfg.compact_dead_fraction = 0.05;
  ThreadPool pool(1);
  cfg.compaction_pool = &pool;
  // NB: the searcher outlives any queued compaction because the test
  // drains the pool (pool.Wait()) after the last mutation — nothing
  // re-arms the trigger afterwards.
  EmbeddingSearcher with_pool(encoder_.get(), cfg);
  ASSERT_TRUE(with_pool.BuildIndex(repo_).ok());

  const u64 before = Compactions();
  // Cross the dead threshold: the trigger fires on a worker, not inline.
  for (u32 id = 0; id < 20; ++id) {
    ASSERT_TRUE(with_pool.RemoveColumn(id).ok());
  }
  pool.Wait();
  EXPECT_GT(Compactions(), before);
  // Post-compaction correctness: removed columns stay gone at full depth.
  for (const auto& q : queries_) {
    const auto ids =
        with_pool.Search(q, {.k = 30, .collect_stats = false}).ids;
    for (const u32 id : ids) EXPECT_GE(id, 20u) << "removed id resurfaced";
  }
}

TEST_F(ChurnBackgroundCompactTest, ChurnRacesBackgroundCompactionAndReaders) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 6;
  cfg.compact_dead_fraction = 0.05;
  ThreadPool pool(1);
  cfg.compaction_pool = &pool;
  EmbeddingSearcher hammered(encoder_.get(), cfg);
  ASSERT_TRUE(hammered.BuildIndex(repo_).ok());

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      size_t round = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto out = hammered.Search(
            queries_[(round + static_cast<size_t>(t)) % queries_.size()],
            {.k = 5, .collect_stats = false});
        EXPECT_LE(out.ids.size(), 5u);
        ++round;
      }
    });
  }
  // The mutator interleaves adds and removes; background compactions fire
  // on the pool underneath both the mutator and the readers.
  u32 next_remove = 0;
  std::vector<u32> removed;
  for (int it = 0; it < 180; ++it) {
    if (it % 2 == 1) {
      if (hammered.RemoveColumn(next_remove).ok()) {
        removed.push_back(next_remove);
      }
      ++next_remove;
    } else {
      ASSERT_TRUE(
          hammered.AddColumn(repo_.column(static_cast<u32>(it) % repo_.size()))
              .ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  pool.Wait();

  EXPECT_GT(removed.size(), 40u);
  for (const auto& q : queries_) {
    const auto ids = hammered.Search(q, {.k = 20, .collect_stats = false}).ids;
    for (const u32 id : ids) {
      for (const u32 r : removed) {
        EXPECT_NE(id, r) << "removed column resurfaced";
      }
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
