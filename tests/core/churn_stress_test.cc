// TSan-labeled churn stress: AddColumn / RemoveColumn / Compact hammering
// one searcher while reader threads run Search and SearchBatch against it.
// Exercises the whole concurrency design of DESIGN.md §12 at once — the
// writer token, the RCU snapshot swap, the striped HNSW link locks, and
// the lock-free IdMap — under -fsanitize=thread via tools/check.sh.
#include <filesystem>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"
#include "util/thread_pool.h"

namespace deepjoin {
namespace core {
namespace {

class ChurnStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(4242));
    repo_ = gen.GenerateRepository(60);
    queries_ = gen.GenerateQueries(6);
    FastTextConfig fc;
    fc.dim = 8;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
    dir_ = std::string(::testing::TempDir()) + "/churn_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static bool Contains(const std::vector<u32>& ids, u32 id) {
    for (const u32 x : ids) {
      if (x == id) return true;
    }
    return false;
  }

  /// Readers spin until `done`: single searches with rotating beam widths
  /// plus the batched path, asserting only invariants that hold mid-churn
  /// (result size; no duplicate hits within one result).
  void ReadUntilDone(EmbeddingSearcher& searcher,
                     const std::atomic<bool>& done, int salt) {
    const int efs[3] = {16, 64, 128};
    size_t round = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto& q = queries_[(round + salt) % queries_.size()];
      const auto out = searcher.Search(
          q, {.k = 5,
              .ef_search = efs[round % 3],
              .collect_stats = false});
      EXPECT_LE(out.ids.size(), 5u);
      for (size_t i = 0; i < out.ids.size(); ++i) {
        for (size_t j = i + 1; j < out.ids.size(); ++j) {
          EXPECT_NE(out.ids[i], out.ids[j]) << "duplicate hit";
        }
      }
      if (round % 17 == 0) {
        for (const auto& r :
             searcher.SearchBatch(queries_, {.k = 5, .collect_stats = false},
                                  nullptr)) {
          EXPECT_LE(r.ids.size(), 5u);
        }
      }
      ++round;
    }
  }

  /// The scripted churn: interleaved adds and removes (every third op a
  /// remove of the oldest live column) with periodic manual compactions.
  /// Runs on one thread — mutators serialize on the writer token anyway —
  /// and records what was removed for the post-churn visibility check.
  void Churn(EmbeddingSearcher& searcher, int ops, bool manual_compact,
             std::vector<u32>* removed) {
    std::vector<u32> live;
    for (u32 i = 0; i < static_cast<u32>(searcher.index_size()); ++i) {
      live.push_back(i);
    }
    for (int it = 0; it < ops; ++it) {
      if (it % 3 == 2 && live.size() > 4) {
        const u32 victim = live.front();
        live.erase(live.begin());
        ASSERT_TRUE(searcher.RemoveColumn(victim).ok()) << "op " << it;
        removed->push_back(victim);
      } else {
        auto id = searcher.AddColumn(
            repo_.column(static_cast<u32>(it) % repo_.size()));
        ASSERT_TRUE(id.ok()) << "op " << it;
        live.push_back(*id);
      }
      if (manual_compact && it % 40 == 39) {
        ASSERT_TRUE(searcher.Compact().ok()) << "op " << it;
      }
    }
  }

  void AssertRemovedStayGone(EmbeddingSearcher& searcher,
                             const std::vector<u32>& removed) {
    for (const auto& q : queries_) {
      for (const int ef : {32, 128}) {
        const auto ids =
            searcher
                .Search(q, {.k = 20, .ef_search = ef, .collect_stats = false})
                .ids;
        for (const u32 r : removed) {
          EXPECT_FALSE(Contains(ids, r)) << "removed column resurfaced";
        }
      }
    }
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
  std::string dir_;
};

TEST_F(ChurnStressTest, InMemoryChurnAlongsideSearches) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 12;  // let auto-compaction fire mid-churn too
  cfg.compact_dead_fraction = 0.1;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());

  std::atomic<bool> done{false};
  std::vector<u32> removed;
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] { ReadUntilDone(searcher, done, t); });
  }
  Churn(searcher, 240, /*manual_compact=*/true, &removed);
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_GT(removed.size(), 50u);
  AssertRemovedStayGone(searcher, removed);
}

TEST_F(ChurnStressTest, LiveModeChurnAlongsideSearchesAndReopen) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 16;
  cfg.compact_dead_fraction = 0.2;
  std::vector<u32> removed;
  std::vector<std::vector<u32>> before;
  {
    EmbeddingSearcher searcher(encoder_.get(), cfg);
    ASSERT_TRUE(searcher.OpenLive(dir_).ok());
    for (u32 i = 0; i < 20; ++i) {
      ASSERT_TRUE(searcher.AddColumn(repo_.column(i)).ok());
    }
    std::atomic<bool> done{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
      readers.emplace_back([&, t] { ReadUntilDone(searcher, done, t); });
    }
    // Every mutation WAL-fsyncs, so fewer ops than the in-memory run.
    Churn(searcher, 90, /*manual_compact=*/false, &removed);
    done.store(true, std::memory_order_release);
    for (auto& th : readers) th.join();

    AssertRemovedStayGone(searcher, removed);
    for (const auto& q : queries_) {
      before.push_back(
          searcher.Search(q, {.k = 10, .collect_stats = false}).ids);
    }
  }
  // The full churn history replays into an identical serving state.
  EmbeddingSearcher reopened(encoder_.get(), cfg);
  ASSERT_TRUE(reopened.OpenLive(dir_).ok());
  std::vector<std::vector<u32>> after;
  for (const auto& q : queries_) {
    after.push_back(
        reopened.Search(q, {.k = 10, .collect_stats = false}).ids);
  }
  EXPECT_EQ(after, before);
  AssertRemovedStayGone(reopened, removed);
}

TEST_F(ChurnStressTest, ConcurrentMutatorsSerializeOnTheWriterToken) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());

  // Two mutator threads race AddColumn while a reader spins: the writer
  // token must serialize them into a gap-free, duplicate-free id sequence.
  constexpr int kPerThread = 40;
  std::vector<u32> ids_a, ids_b;
  std::atomic<bool> done{false};
  std::thread reader([&] { ReadUntilDone(searcher, done, 0); });
  std::thread a([&] {
    for (int i = 0; i < kPerThread; ++i) {
      auto id = searcher.AddColumn(repo_.column(i % repo_.size()));
      ASSERT_TRUE(id.ok());
      ids_a.push_back(*id);
    }
  });
  std::thread b([&] {
    for (int i = 0; i < kPerThread; ++i) {
      auto id = searcher.AddColumn(repo_.column((i + 7) % repo_.size()));
      ASSERT_TRUE(id.ok());
      ids_b.push_back(*id);
    }
  });
  a.join();
  b.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(searcher.index_size(), repo_.size() + 2 * kPerThread);
  std::vector<bool> seen(repo_.size() + 2 * kPerThread, false);
  for (const auto* ids : {&ids_a, &ids_b}) {
    for (const u32 id : *ids) {
      ASSERT_LT(id, seen.size());
      EXPECT_FALSE(seen[id]) << "duplicate column id " << id;
      seen[id] = true;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
