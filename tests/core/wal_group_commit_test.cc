// Group-commit WAL tests (SearcherConfig::wal_group_commit): concurrent
// mutators share fsyncs (amortisation), the acked-durability contract
// holds under injected sync failures at every point of the mutation
// script, and a group-commit history replays into the same serving state
// as a sync-per-mutation one. Fault-labeled: tools/check.sh runs this
// under ASan/UBSan so every injected failure path is leak- and UB-checked.
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"
#include "util/env.h"

namespace deepjoin {
namespace core {
namespace {

class WalGroupCommitTest : public ::testing::Test {
 protected:
  static constexpr u32 kAdds = 10;

  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(2024));
    repo_ = gen.GenerateRepository(kAdds + 8);
    FastTextConfig fc;
    fc.dim = 8;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
    // OpenLive supports the HNSW backend only. At this corpus size the
    // graph search is exhaustive in practice, so searching a column's own
    // embedding still ranks it in-k — the presence oracle the durability
    // checks use.
    cfg_.backend = AnnBackend::kHnsw;
    cfg_.compact_min_dead = 1u << 30;  // deterministic sync counts
    cfg_.wal_group_commit = true;
    cfg_.wal_commit_window_ms = 2.0;
    base_dir_ = std::string(::testing::TempDir()) + "/group_commit_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    std::error_code ec;
    for (const auto& d : dirs_) std::filesystem::remove_all(d, ec);
  }

  std::string FreshDir(const std::string& tag) {
    const std::string d = base_dir_ + "_" + tag;
    dirs_.push_back(d);
    return d;
  }

  static bool Contains(const std::vector<u32>& ids, u32 id) {
    for (const u32 x : ids) {
      if (x == id) return true;
    }
    return false;
  }

  /// Presence oracle: the column's own embedding is an exact match, so on
  /// the flat backend an indexed column must appear in its own top-k.
  bool Indexed(EmbeddingSearcher& s, u32 id) {
    return Contains(
        s.Search(repo_.column(id), {.k = 5, .collect_stats = false}).ids, id);
  }

  lake::Repository repo_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
  SearcherConfig cfg_;
  std::string base_dir_;
  std::vector<std::string> dirs_;
};

// Concurrent mutators pile onto the shared fsync: with a commit window
// open, the sync count comes out well below one-per-mutation (the whole
// point of group commit), while every acknowledged add still replays.
TEST_F(WalGroupCommitTest, ConcurrentMutatorsShareFsyncs) {
  const std::string dir = FreshDir("amortize");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  cfg_.wal_commit_window_ms = 20.0;  // wide window: followers accumulate
  i64 mutation_syncs = 0;
  {
    FaultInjectionEnv env(Env::Default());
    EmbeddingSearcher searcher(encoder_.get(), cfg_);
    ASSERT_TRUE(searcher.OpenLive(dir, &env).ok());
    const i64 syncs_before = env.counters().syncs;
    std::vector<std::thread> mutators;
    for (int t = 0; t < kThreads; ++t) {
      mutators.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto id = searcher.AddColumn(
              repo_.column(static_cast<u32>((t * kPerThread + i) %
                                            static_cast<int>(repo_.size()))));
          EXPECT_TRUE(id.ok()) << id.status().ToString();
        }
      });
    }
    for (auto& m : mutators) m.join();
    mutation_syncs = env.counters().syncs - syncs_before;
    EXPECT_EQ(searcher.index_size(), size_t{kThreads * kPerThread});
  }
  // Strictly fewer fsyncs than acknowledged mutations — with a 20ms window
  // on this workload the ratio is typically several-to-one, but any
  // sharing at all proves the leader/follower path. (Per-mutation sync
  // mode would pin this at exactly one per mutation.)
  EXPECT_LT(mutation_syncs, i64{kThreads * kPerThread});
  EXPECT_GT(mutation_syncs, 0);

  // The amortised log still replays completely.
  EmbeddingSearcher reopened(encoder_.get(), cfg_);
  ASSERT_TRUE(reopened.OpenLive(dir).ok());
  EXPECT_EQ(reopened.index_size(), size_t{kThreads * kPerThread});
}

// The acked-durability contract under faults: inject a sync failure at
// EVERY sync point of a scripted mutation run, crash (drop the searcher
// without a clean close), reopen — every mutation that was acknowledged
// OK must be visible; acknowledged removes must stay gone. Mutations that
// returned an error are indeterminate (the group fsync may have covered
// them or a repair checkpoint may have captured them) and are not
// asserted either way.
TEST_F(WalGroupCommitTest, NoAcknowledgedMutationLostAcrossSyncFaults) {
  // Dry run: learn how many syncs the script performs after OpenLive.
  i64 open_syncs = 0;
  i64 script_syncs = 0;
  {
    const std::string dir = FreshDir("dry");
    FaultInjectionEnv env(Env::Default());
    EmbeddingSearcher searcher(encoder_.get(), cfg_);
    ASSERT_TRUE(searcher.OpenLive(dir, &env).ok());
    open_syncs = env.counters().syncs;
    for (u32 i = 0; i < kAdds; ++i) {
      ASSERT_TRUE(searcher.AddColumn(repo_.column(i)).ok());
    }
    ASSERT_TRUE(searcher.RemoveColumn(1).ok());
    ASSERT_TRUE(searcher.RemoveColumn(4).ok());
    script_syncs = env.counters().syncs - open_syncs;
  }
  ASSERT_GT(script_syncs, 0);

  for (i64 k = 0; k < script_syncs; ++k) {
    const std::string dir = FreshDir("fault" + std::to_string(k));
    std::vector<u32> acked_adds;
    std::vector<u32> acked_removes;
    std::vector<u32> errored_removes;  // indeterminate: may have applied
    bool saw_failure = false;
    {
      FaultInjectionEnv env(Env::Default());
      env.plan().fail_sync_index = open_syncs + k;
      EmbeddingSearcher searcher(encoder_.get(), cfg_);
      ASSERT_TRUE(searcher.OpenLive(dir, &env).ok());
      for (u32 i = 0; i < kAdds; ++i) {
        auto id = searcher.AddColumn(repo_.column(i));
        if (id.ok()) {
          acked_adds.push_back(*id);
        } else {
          saw_failure = true;
        }
      }
      for (const u32 id : {1u, 4u}) {
        if (!Contains(acked_adds, id)) continue;
        if (searcher.RemoveColumn(id).ok()) {
          acked_removes.push_back(id);
        } else {
          // An errored remove is indeterminate: the repair checkpoint may
          // have captured the in-memory delete even though the caller got
          // an error. Neither presence nor absence is asserted for it.
          errored_removes.push_back(id);
          saw_failure = true;
        }
      }
      // Crash: the searcher is destroyed here with no clean shutdown.
    }
    EXPECT_TRUE(saw_failure) << "sync fault " << k << " never fired";

    EmbeddingSearcher reopened(encoder_.get(), cfg_);
    ASSERT_TRUE(reopened.OpenLive(dir).ok()) << "sync fault " << k;
    for (const u32 id : acked_adds) {
      if (Contains(acked_removes, id) || Contains(errored_removes, id)) {
        continue;
      }
      EXPECT_TRUE(Indexed(reopened, id))
          << "acked add " << id << " lost after sync fault " << k;
    }
    for (const u32 id : acked_removes) {
      EXPECT_FALSE(Indexed(reopened, id))
          << "acked remove " << id << " resurfaced after sync fault " << k;
    }
  }
}

// Same mutation script, group commit on vs off: the recovered serving
// states are identical (group commit changes WHEN records become durable,
// never WHAT replays).
TEST_F(WalGroupCommitTest, ReplaysIdenticallyToPerMutationSync) {
  auto run_script = [&](const std::string& dir, bool group_commit) {
    SearcherConfig cfg = cfg_;
    cfg.wal_group_commit = group_commit;
    EmbeddingSearcher searcher(encoder_.get(), cfg);
    ASSERT_TRUE(searcher.OpenLive(dir).ok());
    for (u32 i = 0; i < kAdds; ++i) {
      ASSERT_TRUE(searcher.AddColumn(repo_.column(i)).ok());
    }
    ASSERT_TRUE(searcher.RemoveColumn(2).ok());
    ASSERT_TRUE(searcher.RemoveColumn(7).ok());
  };
  const std::string dir_group = FreshDir("group");
  const std::string dir_plain = FreshDir("plain");
  run_script(dir_group, true);
  run_script(dir_plain, false);

  EmbeddingSearcher a(encoder_.get(), cfg_);
  EmbeddingSearcher b(encoder_.get(), cfg_);
  ASSERT_TRUE(a.OpenLive(dir_group).ok());
  ASSERT_TRUE(b.OpenLive(dir_plain).ok());
  ASSERT_EQ(a.index_size(), b.index_size());
  for (u32 i = 0; i < kAdds; ++i) {
    EXPECT_EQ(a.Search(repo_.column(i), {.k = 8, .collect_stats = false}).ids,
              b.Search(repo_.column(i), {.k = 8, .collect_stats = false}).ids)
        << "query column " << i;
  }
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
