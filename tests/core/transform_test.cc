#include "core/transform.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace core {
namespace {

lake::Column TestColumn() {
  lake::Column c;
  c.meta.table_title = "best lakes";
  c.meta.column_name = "lake name";
  c.meta.context = "hydrology survey page";
  c.cells = {"erie", "huron", "superior deep water"};
  return c;
}

TEST(TransformTest, ColPattern) {
  TransformConfig cfg;
  cfg.option = TransformOption::kCol;
  EXPECT_EQ(TransformColumn(TestColumn(), cfg),
            "erie, huron, superior deep water");
}

TEST(TransformTest, ColnameColPattern) {
  TransformConfig cfg;
  cfg.option = TransformOption::kColnameCol;
  EXPECT_EQ(TransformColumn(TestColumn(), cfg),
            "lake name: erie, huron, superior deep water.");
}

TEST(TransformTest, ContextAppended) {
  TransformConfig cfg;
  cfg.option = TransformOption::kColnameColContext;
  const auto text = TransformColumn(TestColumn(), cfg);
  EXPECT_NE(text.find("hydrology survey page"), std::string::npos);
}

TEST(TransformTest, StatPatternIncludesCountsAndWordStats) {
  TransformConfig cfg;
  cfg.option = TransformOption::kColnameStatCol;
  const auto text = TransformColumn(TestColumn(), cfg);
  // n = 3 values; max words 3 ("superior deep water"), min 1, avg 1.67.
  EXPECT_NE(text.find("contains 3 values"), std::string::npos);
  EXPECT_NE(text.find("(3, 1, 1.67)"), std::string::npos);
}

TEST(TransformTest, TitleVariants) {
  TransformConfig cfg;
  cfg.option = TransformOption::kTitleColnameCol;
  EXPECT_EQ(TransformColumn(TestColumn(), cfg).rfind("best lakes. ", 0), 0u);
  cfg.option = TransformOption::kTitleColnameStatCol;
  const auto text = TransformColumn(TestColumn(), cfg);
  EXPECT_EQ(text.rfind("best lakes. ", 0), 0u);
  EXPECT_NE(text.find("contains 3 values"), std::string::npos);
}

TEST(TransformTest, AllOptionsProduceDistinctText) {
  std::vector<std::string> texts;
  for (auto opt : AllTransformOptions()) {
    TransformConfig cfg;
    cfg.option = opt;
    texts.push_back(TransformColumn(TestColumn(), cfg));
  }
  for (size_t i = 0; i < texts.size(); ++i) {
    for (size_t j = i + 1; j < texts.size(); ++j) {
      EXPECT_NE(texts[i], texts[j])
          << TransformOptionName(AllTransformOptions()[i]) << " vs "
          << TransformOptionName(AllTransformOptions()[j]);
    }
  }
}

TEST(TransformTest, BudgetTruncatesInOriginalOrderWithoutDict) {
  lake::Column c = TestColumn();
  TransformConfig cfg;
  cfg.cell_budget = 2;
  auto cells = SelectCells(c, cfg);
  EXPECT_EQ(cells, (std::vector<std::string>{"erie", "huron"}));
}

TEST(TransformTest, BudgetPrefersFrequentCellsWithDict) {
  lake::Column c = TestColumn();
  join::CellDictionary dict;
  // "superior deep water" appears in many columns; "erie" in none.
  const u32 t = dict.GetOrAssign("superior deep water");
  for (int i = 0; i < 5; ++i) dict.BumpDocFreq(t);
  const u32 h = dict.GetOrAssign("huron");
  dict.BumpDocFreq(h);
  TransformConfig cfg;
  cfg.cell_budget = 2;
  cfg.dict = &dict;
  auto cells = SelectCells(c, cfg);
  // Keeps the two most frequent, in original order.
  EXPECT_EQ(cells,
            (std::vector<std::string>{"huron", "superior deep water"}));
}

TEST(TransformTest, NoBudgetKeepsEverything) {
  TransformConfig cfg;
  cfg.cell_budget = 0;
  EXPECT_EQ(SelectCells(TestColumn(), cfg).size(), 3u);
}

TEST(TransformTest, OptionNamesMatchTable1) {
  EXPECT_STREQ(TransformOptionName(TransformOption::kCol), "col");
  EXPECT_STREQ(TransformOptionName(TransformOption::kTitleColnameStatCol),
               "title-colname-stat-col");
  EXPECT_EQ(AllTransformOptions().size(), 7u);
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
