// Checkpoint/resume contract for FineTunePlm: a run that crashes after a
// checkpoint and is resumed must reproduce the uninterrupted run's loss
// trajectory bit-identically (parameters, AdamW moments, RNG state, and
// shuffle position are all restored exactly). Checkpoint writes are atomic
// under injected failures.
#include "core/trainer.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class TrainerCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(404));
    sample_ = gen.GenerateQueries(120, 0x7EA2);
    FastTextConfig fc;
    fc.dim = 24;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    embedder_->TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);

    TrainingDataConfig tc;
    tc.join_type = JoinType::kEqui;
    tc.shuffle_rate = 0.2;
    tc.max_pairs = 300;
    data_ = PrepareTrainingData(sample_, embedder_.get(), tc);

    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    ckpt_path_ = std::string(::testing::TempDir()) + "/finetune_" +
                 ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                 ".ckpt";
  }
  void TearDown() override {
    std::remove(ckpt_path_.c_str());
    std::remove((ckpt_path_ + ".tmp").c_str());
  }

  PlmColumnEncoder FreshEncoder() {
    PlmEncoderConfig pc;
    pc.kind = PlmKind::kDistilSim;
    pc.max_seq_len = 32;
    pc.transform.cell_budget = 12;
    return PlmColumnEncoder(pc, sample_, *embedder_);
  }

  FineTuneConfig BaseConfig() {
    FineTuneConfig fc;
    fc.batch_size = 8;
    fc.max_steps = 20;
    fc.lr = 6e-4;
    return fc;
  }

  std::vector<lake::Column> sample_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  TrainingData data_;
  std::string ckpt_path_;
};

TEST_F(TrainerCheckpointTest, ResumeReproducesLossBitIdentically) {
  ASSERT_FALSE(data_.pairs.empty());

  // Run A: uninterrupted reference.
  PlmColumnEncoder encoder_a = FreshEncoder();
  auto stats_a = FineTunePlm(encoder_a, data_, BaseConfig());
  ASSERT_TRUE(stats_a.ok());
  ASSERT_EQ(stats_a->steps, 20);

  // Run B: checkpoints every 5 steps, "crashes" right after step 9 (a
  // checkpoint for step 10 is on disk at that point).
  PlmColumnEncoder encoder_b = FreshEncoder();
  auto cfg_b = BaseConfig();
  cfg_b.checkpoint_every = 5;
  cfg_b.checkpoint_path = ckpt_path_;
  cfg_b.stop_after_step = 9;
  auto stats_b = FineTunePlm(encoder_b, data_, cfg_b);
  ASSERT_TRUE(stats_b.ok()) << stats_b.status().ToString();
  ASSERT_EQ(stats_b->steps, 10);
  ASSERT_TRUE(Env::Default()->FileExists(ckpt_path_));

  // Run C: a fresh encoder (as after a real crash) resumed from the
  // checkpoint must land on run A's final loss to the last bit.
  PlmColumnEncoder encoder_c = FreshEncoder();
  auto cfg_c = BaseConfig();
  cfg_c.checkpoint_every = 5;
  cfg_c.checkpoint_path = ckpt_path_;
  cfg_c.resume = true;
  auto stats_c = FineTunePlm(encoder_c, data_, cfg_c);
  ASSERT_TRUE(stats_c.ok()) << stats_c.status().ToString();
  EXPECT_EQ(stats_c->steps, 10);  // steps 10..19

  EXPECT_EQ(stats_c->final_loss, stats_a->final_loss)
      << "resumed loss trajectory diverged from the uninterrupted run";
  EXPECT_EQ(stats_c->first_loss, stats_a->first_loss);

  // The restored model itself matches: identical embeddings.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(encoder_a.Encode(sample_[i]), encoder_c.Encode(sample_[i]))
        << "column " << i;
  }
}

TEST_F(TrainerCheckpointTest, FailedCheckpointSaveKeepsPreviousCheckpoint) {
  FaultInjectionEnv fenv(Env::Default());
  // First checkpoint (step 5) renames fine; the second (step 10) fails.
  fenv.plan().fail_rename_index = 1;

  PlmColumnEncoder encoder = FreshEncoder();
  auto cfg = BaseConfig();
  cfg.checkpoint_every = 5;
  cfg.checkpoint_path = ckpt_path_;
  cfg.env = &fenv;
  auto stats = FineTunePlm(encoder, data_, cfg);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);

  // The step-5 checkpoint survived the failed replacement, and resuming
  // from it still reaches the uninterrupted run's exact final loss.
  ASSERT_TRUE(Env::Default()->FileExists(ckpt_path_));
  EXPECT_FALSE(Env::Default()->FileExists(ckpt_path_ + ".tmp"));

  PlmColumnEncoder encoder_ref = FreshEncoder();
  auto stats_ref = FineTunePlm(encoder_ref, data_, BaseConfig());
  ASSERT_TRUE(stats_ref.ok());

  PlmColumnEncoder encoder_resume = FreshEncoder();
  auto cfg_resume = BaseConfig();
  cfg_resume.checkpoint_path = ckpt_path_;
  cfg_resume.resume = true;
  auto stats_resume = FineTunePlm(encoder_resume, data_, cfg_resume);
  ASSERT_TRUE(stats_resume.ok()) << stats_resume.status().ToString();
  EXPECT_EQ(stats_resume->steps, 15);  // steps 5..19
  EXPECT_EQ(stats_resume->final_loss, stats_ref->final_loss);
}

TEST_F(TrainerCheckpointTest, ResumeWithoutCheckpointFileErrors) {
  PlmColumnEncoder encoder = FreshEncoder();
  auto cfg = BaseConfig();
  cfg.checkpoint_path = ckpt_path_ + ".missing";
  cfg.resume = true;
  auto stats = FineTunePlm(encoder, data_, cfg);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
}

TEST_F(TrainerCheckpointTest, ResumeWithoutPathIsInvalid) {
  PlmColumnEncoder encoder = FreshEncoder();
  auto cfg = BaseConfig();
  cfg.resume = true;
  auto stats = FineTunePlm(encoder, data_, cfg);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TrainerCheckpointTest, CorruptCheckpointIsDataLossNotAbort) {
  {
    std::ofstream out(ckpt_path_, std::ios::binary);
    out << "garbage, not a checkpoint";
  }
  PlmColumnEncoder encoder = FreshEncoder();
  auto cfg = BaseConfig();
  cfg.checkpoint_path = ckpt_path_;
  cfg.resume = true;
  auto stats = FineTunePlm(encoder, data_, cfg);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss);
}

TEST_F(TrainerCheckpointTest, CheckpointFromDifferentDataIsRejected) {
  // Take a checkpoint on the full data, then try to resume against a
  // training set with a different pair count.
  PlmColumnEncoder encoder = FreshEncoder();
  auto cfg = BaseConfig();
  cfg.checkpoint_every = 5;
  cfg.checkpoint_path = ckpt_path_;
  cfg.stop_after_step = 4;
  ASSERT_TRUE(FineTunePlm(encoder, data_, cfg).ok());

  TrainingData smaller = data_;
  smaller.pairs.resize(data_.pairs.size() / 2);
  PlmColumnEncoder encoder2 = FreshEncoder();
  auto cfg2 = BaseConfig();
  cfg2.checkpoint_path = ckpt_path_;
  cfg2.resume = true;
  auto stats = FineTunePlm(encoder2, smaller, cfg2);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
