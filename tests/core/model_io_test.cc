#include "core/model_io.h"

#include <cstdio>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(1010));
    sample_ = gen.GenerateQueries(80, 0x10);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    path_ = std::string(::testing::TempDir()) + "/encoder_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".djm";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<lake::Column> sample_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::string path_;
};

TEST_F(ModelIoTest, RoundTripPreservesEmbeddingsBitExactly) {
  PlmEncoderConfig cfg;
  cfg.kind = PlmKind::kMPNetSim;
  cfg.max_seq_len = 32;
  PlmColumnEncoder encoder(cfg, sample_, *embedder_);

  // A couple of training steps so the parameters are non-trivial.
  TrainingDataConfig tdc;
  tdc.max_pairs = 100;
  auto data = PrepareTrainingData(sample_, embedder_.get(), tdc);
  FineTuneConfig ftc;
  ftc.batch_size = 4;
  ftc.max_steps = 5;
  ASSERT_TRUE(FineTunePlm(encoder, data, ftc).ok());

  ASSERT_TRUE(SaveEncoder(encoder, path_).ok());
  auto loaded = LoadEncoder(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(encoder.Encode(sample_[i]), (*loaded)->Encode(sample_[i]))
        << "column " << i;
  }
}

TEST_F(ModelIoTest, RoundTripPreservesConfigAndVocab) {
  PlmEncoderConfig cfg;
  cfg.kind = PlmKind::kDistilSim;
  cfg.transform.option = TransformOption::kColnameStatCol;
  cfg.transform.cell_budget = 13;
  cfg.max_seq_len = 24;
  PlmColumnEncoder encoder(cfg, sample_, *embedder_);
  ASSERT_TRUE(SaveEncoder(encoder, path_).ok());
  auto loaded = LoadEncoder(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->config().kind, PlmKind::kDistilSim);
  EXPECT_EQ((*loaded)->config().transform.option,
            TransformOption::kColnameStatCol);
  EXPECT_EQ((*loaded)->config().transform.cell_budget, 13);
  EXPECT_EQ((*loaded)->config().max_seq_len, 24);
  EXPECT_EQ((*loaded)->vocab().size(), encoder.vocab().size());
  EXPECT_EQ((*loaded)->vocab().Encode("some-word"),
            encoder.vocab().Encode("some-word"));
}

TEST_F(ModelIoTest, MissingFileReportsIoError) {
  auto loaded = LoadEncoder("/nonexistent/dir/x.djm");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(ModelIoTest, GarbageFileRejected) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  std::fputs("this is not a model", f);
  std::fclose(f);
  auto loaded = LoadEncoder(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(ModelIoTest, TruncatedFileRejected) {
  PlmEncoderConfig cfg;
  cfg.max_seq_len = 24;
  PlmColumnEncoder encoder(cfg, sample_, *embedder_);
  ASSERT_TRUE(SaveEncoder(encoder, path_).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  auto loaded = LoadEncoder(path_);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
