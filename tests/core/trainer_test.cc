#include "core/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(303));
    sample_ = gen.GenerateQueries(150, 0x7EA1);
    FastTextConfig fc;
    fc.dim = 24;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    embedder_->TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);

    TrainingDataConfig tc;
    tc.join_type = JoinType::kEqui;
    tc.shuffle_rate = 0.2;
    tc.max_pairs = 400;
    data_ = PrepareTrainingData(sample_, embedder_.get(), tc);
  }

  PlmEncoderConfig SmallPlm(PlmKind kind) {
    PlmEncoderConfig pc;
    pc.kind = kind;
    pc.max_seq_len = 32;
    pc.transform.cell_budget = 12;
    return pc;
  }

  FineTuneConfig FastConfig() {
    FineTuneConfig fc;
    fc.batch_size = 8;
    fc.max_steps = 25;
    fc.lr = 6e-4;
    return fc;
  }

  std::vector<lake::Column> sample_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  TrainingData data_;
};

TEST_F(TrainerTest, LossDecreases) {
  ASSERT_FALSE(data_.pairs.empty());
  PlmColumnEncoder encoder(SmallPlm(PlmKind::kDistilSim), sample_,
                           *embedder_);
  auto stats = FineTunePlm(encoder, data_, FastConfig()).value();
  EXPECT_EQ(stats.steps, 25);
  EXPECT_LT(stats.final_loss, stats.first_loss)
      << "fine-tuning failed to reduce the MNR loss";
}

TEST_F(TrainerTest, TrainingPullsPositivePairsTogether) {
  PlmColumnEncoder encoder(SmallPlm(PlmKind::kMPNetSim), sample_,
                           *embedder_);
  const auto& pair = data_.pairs.front();
  const double before =
      Cosine(encoder.Encode(pair.x), encoder.Encode(pair.y));
  auto cfg = FastConfig();
  cfg.max_steps = 40;
  ASSERT_TRUE(FineTunePlm(encoder, data_, cfg).ok());
  const double after =
      Cosine(encoder.Encode(pair.x), encoder.Encode(pair.y));
  EXPECT_GT(after, before);
}

TEST_F(TrainerTest, RemovedOverlapNegativesAlsoTrain) {
  PlmColumnEncoder encoder(SmallPlm(PlmKind::kDistilSim), sample_,
                           *embedder_);
  auto cfg = FastConfig();
  cfg.negatives = NegativeStrategy::kRemovedOverlap;
  auto stats = FineTunePlm(encoder, data_, cfg).value();
  EXPECT_LT(stats.final_loss, stats.first_loss);
}

TEST_F(TrainerTest, TabertStyleTrains) {
  PlmColumnEncoder encoder(SmallPlm(PlmKind::kDistilSim), sample_,
                           *embedder_);
  auto stats = TrainTabertStyle(encoder, sample_, FastConfig());
  EXPECT_LT(stats.final_loss, stats.first_loss);
}

TEST_F(TrainerTest, MlpRegressionTrains) {
  nn::MlpConfig mc;
  mc.input_dim = embedder_->dim();
  mc.hidden_dim = 32;
  auto mlp = std::make_shared<nn::MlpRegressor>(mc);
  TransformConfig tc;
  MlpColumnEncoder encoder(mlp, embedder_.get(), tc);
  auto cfg = FastConfig();
  cfg.max_steps = 60;
  cfg.lr = 2e-3;
  auto stats = TrainMlp(encoder, sample_, data_, cfg);
  EXPECT_LT(stats.final_loss, stats.first_loss);
  EXPECT_EQ(encoder.Encode(sample_[0]).size(), 32u);
}

TEST_F(TrainerTest, EmptyDataIsANoOp) {
  PlmColumnEncoder encoder(SmallPlm(PlmKind::kDistilSim), sample_,
                           *embedder_);
  TrainingData empty;
  auto stats = FineTunePlm(encoder, empty, FastConfig()).value();
  EXPECT_EQ(stats.steps, 0);
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
