#include "core/reranker.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class RerankerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(1212));
    repo_ = gen.GenerateRepository(400);
    queries_ = gen.GenerateQueries(8);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
    SearcherConfig sc;
    searcher_ = std::make_unique<EmbeddingSearcher>(encoder_.get(), sc);
    ASSERT_TRUE(searcher_->BuildIndex(repo_).ok());
    tok_ = std::make_unique<join::TokenizedRepository>(
        join::TokenizedRepository::Build(repo_));
    store_ = std::make_unique<join::ColumnVectorStore>(
        join::ColumnVectorStore::Build(repo_, *embedder_));
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
  std::unique_ptr<EmbeddingSearcher> searcher_;
  std::unique_ptr<join::TokenizedRepository> tok_;
  std::unique_ptr<join::ColumnVectorStore> store_;
};

TEST_F(RerankerTest, ScoresAreExactJoinability) {
  TwoStageConfig cfg;
  TwoStageSearcher two_stage(searcher_.get(), tok_.get(), nullptr, nullptr,
                             cfg);
  for (const auto& q : queries_) {
    auto out = two_stage.Search(q, {.k = 5});
    const auto qt = tok_->EncodeQuery(q);
    for (const auto& s : out.results) {
      EXPECT_DOUBLE_EQ(s.score,
                       join::EquiJoinability(qt, tok_->columns()[s.id]));
    }
    // Sorted best-first.
    for (size_t i = 1; i < out.results.size(); ++i) {
      EXPECT_GE(out.results[i - 1].score, out.results[i].score);
    }
  }
}

TEST_F(RerankerTest, RerankingNeverHurtsPrecision) {
  TwoStageConfig cfg;
  cfg.pool_multiplier = 5;
  TwoStageSearcher two_stage(searcher_.get(), tok_.get(), nullptr, nullptr,
                             cfg);
  double p_one = 0.0, p_two = 0.0;
  const size_t k = 10;
  for (const auto& q : queries_) {
    const auto qt = tok_->EncodeQuery(q);
    auto exact = join::ExactEquiTopK(*tok_, qt, k);
    std::vector<u32> exact_ids;
    for (const auto& s : exact) exact_ids.push_back(s.id);

    auto stage1 = searcher_->Search(q, {.k = k});
    p_one += eval::PrecisionAtK(stage1.ids, exact_ids);

    auto out = two_stage.Search(q, {.k = k});
    std::vector<u32> two_ids;
    for (const auto& s : out.results) two_ids.push_back(s.id);
    p_two += eval::PrecisionAtK(two_ids, exact_ids);
  }
  EXPECT_GE(p_two + 1e-9, p_one)
      << "re-ranking a superset pool should not lower precision";
}

TEST_F(RerankerTest, SemanticModeUsesVectorMatching) {
  TwoStageConfig cfg;
  cfg.semantic = true;
  cfg.tau = 0.9f;
  TwoStageSearcher two_stage(searcher_.get(), nullptr, store_.get(),
                             embedder_.get(), cfg);
  auto out = two_stage.Search(queries_[0], {.k = 5});
  ASSERT_FALSE(out.results.empty());
  const auto qv =
      join::ColumnVectorStore::EmbedColumn(queries_[0], *embedder_);
  for (const auto& s : out.results) {
    EXPECT_DOUBLE_EQ(
        s.score,
        join::SemanticJoinability(qv.data(), queries_[0].cells.size(),
                                  store_->column_vectors(s.id),
                                  store_->column_count(s.id), store_->dim(),
                                  0.9f));
  }
}

TEST_F(RerankerTest, ReportsNestedStageStats) {
  TwoStageConfig cfg;
  TwoStageSearcher two_stage(searcher_.get(), tok_.get(), nullptr, nullptr,
                             cfg);
  auto out = two_stage.Search(queries_[0], {.k = 5});
  EXPECT_EQ(out.stats.root.name, "twostage.search");
  // Stage 1 (ANN shortlist) is grafted in as a nested searcher.search
  // span; the rerank pass has its own span; both fit inside the total.
  EXPECT_GT(out.stats.SpanMs("searcher.search"), 0.0);
  EXPECT_GE(out.stats.total_ms(), out.stats.SpanMs("searcher.search"));
  EXPECT_GE(out.stats.total_ms(), out.stats.SpanMs("twostage.rerank"));
  // The candidate-pool counter reflects pool_multiplier * k.
  EXPECT_GE(out.stats.CounterValue("twostage.candidates"), 5u);
}

TEST_F(RerankerTest, CollectStatsFalseLeavesStatsEmpty) {
  TwoStageConfig cfg;
  TwoStageSearcher two_stage(searcher_.get(), tok_.get(), nullptr, nullptr,
                             cfg);
  auto out =
      two_stage.Search(queries_[0], {.k = 5, .collect_stats = false});
  ASSERT_EQ(out.results.size(), 5u);
  EXPECT_TRUE(out.stats.root.name.empty());
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
