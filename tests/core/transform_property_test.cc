// Parameterized invariants over all seven column-to-text options
// (Table 1): every option must be deterministic, respect the cell budget,
// include the selected cells, and embed the metadata its pattern names.
#include <gtest/gtest.h>

#include "core/transform.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class TransformPropertyTest
    : public ::testing::TestWithParam<TransformOption> {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(99));
    columns_ = gen.GenerateQueries(20, 0x7A);
  }
  std::vector<lake::Column> columns_;
};

TEST_P(TransformPropertyTest, Deterministic) {
  TransformConfig cfg;
  cfg.option = GetParam();
  for (const auto& col : columns_) {
    EXPECT_EQ(TransformColumn(col, cfg), TransformColumn(col, cfg));
  }
}

TEST_P(TransformPropertyTest, ContainsSelectedCells) {
  TransformConfig cfg;
  cfg.option = GetParam();
  cfg.cell_budget = 8;
  for (const auto& col : columns_) {
    const std::string text = TransformColumn(col, cfg);
    for (const auto& cell : SelectCells(col, cfg)) {
      EXPECT_NE(text.find(cell), std::string::npos)
          << TransformOptionName(GetParam()) << " lost cell " << cell;
    }
  }
}

TEST_P(TransformPropertyTest, BudgetBoundsSelectedCells) {
  TransformConfig cfg;
  cfg.option = GetParam();
  for (int budget : {1, 4, 16}) {
    cfg.cell_budget = budget;
    for (const auto& col : columns_) {
      EXPECT_LE(SelectCells(col, cfg).size(),
                static_cast<size_t>(budget));
    }
  }
}

TEST_P(TransformPropertyTest, MetadataAppearsWhenPatternNamesIt) {
  TransformConfig cfg;
  cfg.option = GetParam();
  const auto opt = GetParam();
  const bool has_title = opt == TransformOption::kTitleColnameCol ||
                         opt == TransformOption::kTitleColnameColContext ||
                         opt == TransformOption::kTitleColnameStatCol;
  const bool has_name = opt != TransformOption::kCol;
  for (const auto& col : columns_) {
    const std::string text = TransformColumn(col, cfg);
    if (has_title) {
      EXPECT_NE(text.find(col.meta.table_title), std::string::npos);
    }
    if (has_name) {
      EXPECT_NE(text.find(col.meta.column_name), std::string::npos);
    }
    if (opt == TransformOption::kCol) {
      EXPECT_EQ(text.find(col.meta.table_title), std::string::npos);
    }
  }
}

TEST_P(TransformPropertyTest, NonEmptyForNonEmptyColumns) {
  TransformConfig cfg;
  cfg.option = GetParam();
  for (const auto& col : columns_) {
    EXPECT_FALSE(TransformColumn(col, cfg).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptions, TransformPropertyTest,
    ::testing::ValuesIn(AllTransformOptions()),
    [](const ::testing::TestParamInfo<TransformOption>& info) {
      std::string name = TransformOptionName(info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace core
}  // namespace deepjoin
