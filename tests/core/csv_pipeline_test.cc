// Integration test: the CSV ingestion path feeds the full DeepJoin
// pipeline (train -> persist -> reload -> index -> two-stage search) —
// the adoption path a downstream user takes with real files.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/deepjoin.h"
#include "core/model_io.h"
#include "core/reranker.h"
#include "lake/csv_loader.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class CsvPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("csv_pipeline_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    // Materialise a lake of 120 single-column CSVs from the generator.
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(31));
    lake::Repository repo = gen.GenerateRepository(120);
    for (size_t i = 0; i < repo.size(); ++i) {
      const auto& col = repo.column(static_cast<u32>(i));
      std::ofstream out(dir_ / ("t" + std::to_string(i) + ".csv"));
      out << col.meta.column_name << "\n";
      for (const auto& cell : col.cells) {
        out << '"';
        for (char c : cell) {
          if (c == '"') out << '"';
          out << c;
        }
        out << "\"\n";
      }
    }
    sample_ = gen.GenerateQueries(80, 0x8A);
    queries_ = gen.GenerateQueries(4, 0x8B);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::vector<lake::Column> sample_;
  std::vector<lake::Column> queries_;
};

TEST_F(CsvPipelineTest, EndToEndThroughFiles) {
  lake::CsvLoadOptions opts;
  auto repo = lake::LoadCsvDirectory(dir_.string(), opts);
  ASSERT_TRUE(repo.ok());
  ASSERT_GT(repo->size(), 100u);

  FastTextConfig fc;
  fc.dim = 16;
  FastTextEmbedder pretrained(fc);

  DeepJoinConfig cfg;
  cfg.plm.max_seq_len = 32;
  cfg.finetune.max_steps = 10;
  cfg.finetune.batch_size = 8;
  auto dj = DeepJoin::Train(sample_, pretrained, cfg);

  // Persist + reload the encoder, then serve from the loaded copy.
  const std::string model_path = (dir_ / "m.djm").string();
  ASSERT_TRUE(SaveEncoder(dj->encoder(), model_path).ok());
  auto loaded = LoadEncoder(model_path);
  ASSERT_TRUE(loaded.ok());

  SearcherConfig sc;
  EmbeddingSearcher searcher(loaded->get(), sc);
  ASSERT_TRUE(searcher.BuildIndex(*repo).ok());
  auto tok = join::TokenizedRepository::Build(*repo);
  TwoStageSearcher two_stage(&searcher, &tok, nullptr, nullptr,
                             TwoStageConfig{});

  for (const auto& q : queries_) {
    auto out = two_stage.Search(q, {.k = 5});
    ASSERT_EQ(out.results.size(), 5u);
    for (const auto& s : out.results) {
      EXPECT_LT(s.id, repo->size());
      EXPECT_GE(s.score, 0.0);
      EXPECT_LE(s.score, 1.0);
    }
  }
}

TEST_F(CsvPipelineTest, CsvRoundTripPreservesCells) {
  // Loading back the CSVs must reproduce the original distinct cells
  // (quoting/escaping survives commas and quotes in generated values).
  lake::CsvLoadOptions opts;
  auto repo = lake::LoadCsvDirectory(dir_.string(), opts);
  ASSERT_TRUE(repo.ok());
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(31));
  lake::Repository original = gen.GenerateRepository(120);
  // Files load in lexicographic name order (t0, t1, t10, ...), so match
  // by column name + first cell instead of position.
  size_t matched = 0;
  for (const auto& col : repo->columns()) {
    for (const auto& orig : original.columns()) {
      if (orig.meta.column_name == col.meta.column_name &&
          orig.cells == col.cells) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GT(matched, repo->size() / 2);
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
