// Live index mutability (DESIGN.md §12): concurrent-era AddColumn /
// RemoveColumn / Compact semantics, the delete-visibility regression
// contract (a removed column never reappears, at any ef_search, on either
// search path), and the OpenLive durability lifecycle — generations, WAL
// replay, and bit-identical recovery.
#include <filesystem>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class LiveIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(2024));
    repo_ = gen.GenerateRepository(120);
    queries_ = gen.GenerateQueries(5);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
    // Per-test directory: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    dir_ = std::string(::testing::TempDir()) + "/live_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static bool Contains(const std::vector<u32>& ids, u32 id) {
    for (const u32 x : ids) {
      if (x == id) return true;
    }
    return false;
  }

  /// Result ids for every query at several beam widths — the fingerprint
  /// two searchers must share to count as serving the same state.
  std::vector<std::vector<u32>> Fingerprint(EmbeddingSearcher& s,
                                            size_t k = 10) {
    std::vector<std::vector<u32>> out;
    for (const auto& q : queries_) {
      for (const int ef : {16, 64, 200}) {
        out.push_back(
            s.Search(q, {.k = k, .ef_search = ef, .collect_stats = false})
                .ids);
      }
    }
    return out;
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
  std::string dir_;
};

// ---- Delete visibility (regression contract) ----

TEST_F(LiveIndexTest, RemovedColumnAbsentAtEveryEfSearchOnBothPaths) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 1u << 30;  // keep tombstones: test the filter
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());

  // The query's top hit is a known-joinable column — the strongest
  // candidate to leak back into results after its removal.
  const u32 victim = searcher.Search(queries_[0], {.k = 1}).ids.at(0);
  ASSERT_TRUE(searcher.RemoveColumn(victim).ok());

  for (const int ef : {8, 16, 32, 64, 128, 256}) {
    const SearchOptions opt{.k = 20, .ef_search = ef, .collect_stats = false};
    for (const auto& q : queries_) {
      EXPECT_FALSE(Contains(searcher.Search(q, opt).ids, victim))
          << "Search returned removed column at ef_search " << ef;
    }
    ThreadPool pool(3);
    for (const auto& out : searcher.SearchBatch(queries_, opt, &pool)) {
      EXPECT_FALSE(Contains(out.ids, victim))
          << "SearchBatch returned removed column at ef_search " << ef;
    }
  }
}

TEST_F(LiveIndexTest, RemoveAccountingAndErrors) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 1u << 30;
  EmbeddingSearcher fresh(encoder_.get(), cfg);
  EXPECT_EQ(fresh.RemoveColumn(0).code(), StatusCode::kFailedPrecondition);

  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  EXPECT_EQ(searcher.live_size(), repo_.size());
  ASSERT_TRUE(searcher.RemoveColumn(7).ok());
  ASSERT_TRUE(searcher.RemoveColumn(13).ok());
  // Tombstoned, not erased: the graph keeps routing through dead nodes.
  EXPECT_EQ(searcher.index_size(), repo_.size());
  EXPECT_EQ(searcher.live_size(), repo_.size() - 2);
  // Double-remove and never-added ids are NotFound, not silent no-ops.
  EXPECT_EQ(searcher.RemoveColumn(7).code(), StatusCode::kNotFound);
  EXPECT_EQ(searcher.RemoveColumn(100000).code(), StatusCode::kNotFound);
}

// ---- Compaction ----

TEST_F(LiveIndexTest, CompactDropsTombstonesAndPreservesColumnIds) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 1u << 30;  // manual compaction only
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  const std::vector<u32> removed = {3, 10, 57, 119};
  for (const u32 id : removed) ASSERT_TRUE(searcher.RemoveColumn(id).ok());

  ASSERT_TRUE(searcher.Compact().ok());
  EXPECT_EQ(searcher.index_size(), repo_.size() - removed.size());
  EXPECT_EQ(searcher.live_size(), repo_.size() - removed.size());

  // Index ids were renumbered, but results still speak column ids: every
  // hit is a valid never-removed column, and the removed ones stay gone.
  for (const auto& q : queries_) {
    for (const int ef : {16, 64, 256}) {
      const auto ids =
          searcher.Search(q, {.k = 15, .ef_search = ef}).ids;
      EXPECT_EQ(ids.size(), 15u);
      for (const u32 id : ids) {
        EXPECT_LT(id, repo_.size());
        EXPECT_FALSE(Contains(removed, id));
      }
    }
  }
}

TEST_F(LiveIndexTest, AddAfterCompactContinuesTheColumnIdSpace) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 1u << 30;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  ASSERT_TRUE(searcher.RemoveColumn(5).ok());
  ASSERT_TRUE(searcher.Compact().ok());

  // Column ids are stable across compactions: the next add continues the
  // sequence instead of reusing a renumbered index id.
  auto id = searcher.AddColumn(queries_[0]);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, static_cast<u32>(repo_.size()));
  const auto out = searcher.Search(queries_[0], {.k = 1});
  ASSERT_EQ(out.ids.size(), 1u);
  EXPECT_EQ(out.ids[0], *id);  // its own nearest neighbour

  // And that column can be removed again through the compacted mapping.
  ASSERT_TRUE(searcher.RemoveColumn(*id).ok());
  EXPECT_FALSE(Contains(searcher.Search(queries_[0], {.k = 10}).ids, *id));
}

TEST_F(LiveIndexTest, AutoCompactTriggersUnderChurn) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 4;
  cfg.compact_dead_fraction = 0.01;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  for (const u32 id : {2u, 4u, 6u, 8u}) {
    ASSERT_TRUE(searcher.RemoveColumn(id).ok());
  }
  // The fourth remove crossed both thresholds: tombstones are gone.
  EXPECT_EQ(searcher.index_size(), searcher.live_size());
  EXPECT_EQ(searcher.live_size(), repo_.size() - 4);
}

TEST_F(LiveIndexTest, CompactRequiresHnswBackend) {
  SearcherConfig cfg;
  cfg.backend = AnnBackend::kFlat;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  EXPECT_EQ(searcher.Compact().code(), StatusCode::kFailedPrecondition);
}

// ---- OpenLive lifecycle ----

TEST_F(LiveIndexTest, OpenLivePreconditions) {
  SearcherConfig flat_cfg;
  flat_cfg.backend = AnnBackend::kFlat;
  EmbeddingSearcher flat(encoder_.get(), flat_cfg);
  EXPECT_EQ(flat.OpenLive(dir_).code(), StatusCode::kFailedPrecondition);

  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  EXPECT_EQ(searcher.PublishSnapshot().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(searcher.OpenLive(dir_).ok());
  EXPECT_EQ(searcher.OpenLive(dir_).code(), StatusCode::kFailedPrecondition);
}

TEST_F(LiveIndexTest, FreshDirectoryStartsAtGenerationOne) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  EXPECT_EQ(searcher.generation(), 0u);
  ASSERT_TRUE(searcher.OpenLive(dir_).ok());
  EXPECT_EQ(searcher.generation(), 1u);
  // Mutations ride the WAL — no generation churn per insert.
  for (u32 i = 0; i < 8; ++i) {
    ASSERT_TRUE(searcher.AddColumn(repo_.column(i)).ok());
  }
  EXPECT_EQ(searcher.generation(), 1u);
  ASSERT_TRUE(searcher.PublishSnapshot().ok());
  EXPECT_EQ(searcher.generation(), 2u);
}

TEST_F(LiveIndexTest, ReopenRecoversWalStateBitIdentically) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 1u << 30;
  std::vector<std::vector<u32>> expected;
  u64 gen = 0;
  {
    EmbeddingSearcher searcher(encoder_.get(), cfg);
    ASSERT_TRUE(searcher.OpenLive(dir_).ok());
    for (u32 i = 0; i < 40; ++i) {
      auto id = searcher.AddColumn(repo_.column(i));
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, i);
    }
    for (const u32 id : {1u, 9u, 22u, 37u}) {
      ASSERT_TRUE(searcher.RemoveColumn(id).ok());
    }
    expected = Fingerprint(searcher);
    gen = searcher.generation();
  }
  // A new process over the same directory: checkpoint load + WAL replay
  // with the recorded insert levels must rebuild the exact graph.
  EmbeddingSearcher reopened(encoder_.get(), cfg);
  ASSERT_TRUE(reopened.OpenLive(dir_).ok());
  EXPECT_GT(reopened.generation(), gen);  // recovery rolls forward
  EXPECT_EQ(reopened.index_size(), 40u);
  EXPECT_EQ(reopened.live_size(), 36u);
  EXPECT_EQ(Fingerprint(reopened), expected);
  // The id sequence continues where the crashed process stopped.
  auto id = reopened.AddColumn(repo_.column(40));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 40u);
}

TEST_F(LiveIndexTest, BuildIndexOnLiveSearcherPublishesImmediately) {
  SearcherConfig cfg;
  std::vector<std::vector<u32>> expected;
  {
    EmbeddingSearcher searcher(encoder_.get(), cfg);
    ASSERT_TRUE(searcher.OpenLive(dir_).ok());
    ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
    // The bulk build replaced the index, so it rolled a new generation —
    // the old WAL cannot describe the new graph.
    EXPECT_EQ(searcher.generation(), 2u);
    auto id = searcher.AddColumn(queries_[0]);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<u32>(repo_.size()));
    ASSERT_TRUE(searcher.RemoveColumn(3).ok());
    expected = Fingerprint(searcher);
  }
  EmbeddingSearcher reopened(encoder_.get(), cfg);
  ASSERT_TRUE(reopened.OpenLive(dir_).ok());
  EXPECT_EQ(reopened.index_size(), repo_.size() + 1);
  EXPECT_EQ(Fingerprint(reopened), expected);
}

TEST_F(LiveIndexTest, CompactionSurvivesReopenWithStableColumnIds) {
  SearcherConfig cfg;
  cfg.compact_min_dead = 1u << 30;
  std::vector<std::vector<u32>> expected;
  {
    EmbeddingSearcher searcher(encoder_.get(), cfg);
    ASSERT_TRUE(searcher.OpenLive(dir_).ok());
    for (u32 i = 0; i < 30; ++i) {
      ASSERT_TRUE(searcher.AddColumn(repo_.column(i)).ok());
    }
    for (const u32 id : {0u, 11u, 29u}) {
      ASSERT_TRUE(searcher.RemoveColumn(id).ok());
    }
    ASSERT_TRUE(searcher.Compact().ok());
    // Post-compaction mutations exercise the non-identity id map in the
    // WAL (insert records carry column ids, not index ids).
    ASSERT_TRUE(searcher.AddColumn(repo_.column(30)).ok());
    ASSERT_TRUE(searcher.RemoveColumn(4).ok());
    expected = Fingerprint(searcher);
  }
  EmbeddingSearcher reopened(encoder_.get(), cfg);
  ASSERT_TRUE(reopened.OpenLive(dir_).ok());
  EXPECT_EQ(reopened.index_size(), 28u);  // 30 - 3 compacted + 1 added
  EXPECT_EQ(reopened.live_size(), 27u);
  EXPECT_EQ(Fingerprint(reopened), expected);
  auto id = reopened.AddColumn(repo_.column(31));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 31u);
}

TEST_F(LiveIndexTest, PublishRetiresGrandparentGenerationOnly) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.OpenLive(dir_).ok());
  ASSERT_TRUE(searcher.AddColumn(repo_.column(0)).ok());
  ASSERT_TRUE(searcher.PublishSnapshot().ok());  // gen 2
  ASSERT_TRUE(searcher.PublishSnapshot().ok());  // gen 3, retires gen 1
  EXPECT_EQ(searcher.generation(), 3u);
  // Current + previous generations stay on disk as recovery fallbacks;
  // the grandparent is gone.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/index-3.dj"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/wal-3.log"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/index-2.dj"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/index-1.dj"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/wal-1.log"));
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
