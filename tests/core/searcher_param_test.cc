// Parameterized sweep over ANN backends behind the searcher: every
// backend must return valid, deduplicated, k-sized result sets, and the
// approximate backends must agree with the exact one on most results.
#include <memory>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class SearcherBackendTest : public ::testing::TestWithParam<AnnBackend> {
 protected:
  static void SetUpTestSuite() {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(1515));
    repo_ = std::make_unique<lake::Repository>(gen.GenerateRepository(400));
    queries_ =
        std::make_unique<std::vector<lake::Column>>(gen.GenerateQueries(6));
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
    SearcherConfig flat_cfg;
    flat_cfg.backend = AnnBackend::kFlat;
    exact_ = std::make_unique<EmbeddingSearcher>(encoder_.get(), flat_cfg);
    DJ_CHECK(exact_->BuildIndex(*repo_).ok());
  }
  static void TearDownTestSuite() {
    exact_.reset();
    encoder_.reset();
    embedder_.reset();
    queries_.reset();
    repo_.reset();
  }

  static std::unique_ptr<lake::Repository> repo_;
  static std::unique_ptr<std::vector<lake::Column>> queries_;
  static std::unique_ptr<FastTextEmbedder> embedder_;
  static std::unique_ptr<FastTextColumnEncoder> encoder_;
  static std::unique_ptr<EmbeddingSearcher> exact_;
};

std::unique_ptr<lake::Repository> SearcherBackendTest::repo_;
std::unique_ptr<std::vector<lake::Column>> SearcherBackendTest::queries_;
std::unique_ptr<FastTextEmbedder> SearcherBackendTest::embedder_;
std::unique_ptr<FastTextColumnEncoder> SearcherBackendTest::encoder_;
std::unique_ptr<EmbeddingSearcher> SearcherBackendTest::exact_;

TEST_P(SearcherBackendTest, ValidDedupedKResults) {
  SearcherConfig cfg;
  cfg.backend = GetParam();
  cfg.ivfpq_m = 4;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(*repo_).ok());
  for (const auto& q : *queries_) {
    auto out = searcher.Search(q, {.k = 10});
    EXPECT_EQ(out.ids.size(), 10u);
    std::unordered_set<u32> unique(out.ids.begin(), out.ids.end());
    EXPECT_EQ(unique.size(), out.ids.size()) << "duplicate result ids";
    for (u32 id : out.ids) EXPECT_LT(id, repo_->size());
  }
}

TEST_P(SearcherBackendTest, AgreesWithExactOnMostResults) {
  SearcherConfig cfg;
  cfg.backend = GetParam();
  cfg.ivfpq_m = 4;
  cfg.ivfpq_nprobe = 16;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(*repo_).ok());
  size_t agree = 0, total = 0;
  for (const auto& q : *queries_) {
    auto approx = searcher.Search(q, {.k = 10}).ids;
    auto exact = exact_->Search(q, {.k = 10}).ids;
    for (u32 a : approx) {
      for (u32 e : exact) {
        if (a == e) {
          ++agree;
          break;
        }
      }
    }
    total += exact.size();
  }
  const double recall = static_cast<double>(agree) / total;
  // IVFPQ compresses aggressively; HNSW and flat should be near-perfect.
  const double floor = GetParam() == AnnBackend::kIvfPq ? 0.4 : 0.9;
  EXPECT_GE(recall, floor);
}

TEST_P(SearcherBackendTest, KLargerThanRepositoryClamps) {
  SearcherConfig cfg;
  cfg.backend = GetParam();
  cfg.ivfpq_m = 4;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  lake::Repository tiny;
  for (size_t i = 0; i < 5; ++i) tiny.Add(repo_->column(static_cast<u32>(i)));
  ASSERT_TRUE(searcher.BuildIndex(tiny).ok());
  auto out = searcher.Search((*queries_)[0], {.k = 50});
  EXPECT_LE(out.ids.size(), 5u);
  EXPECT_GE(out.ids.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SearcherBackendTest,
                         ::testing::Values(AnnBackend::kFlat,
                                           AnnBackend::kHnsw,
                                           AnnBackend::kIvfPq),
                         [](const ::testing::TestParamInfo<AnnBackend>& i) {
                           switch (i.param) {
                             case AnnBackend::kFlat: return "flat";
                             case AnnBackend::kHnsw: return "hnsw";
                             case AnnBackend::kIvfPq: return "ivfpq";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace core
}  // namespace deepjoin
