// TSan-labeled coverage for the concurrency contract on ColumnEncoder:
// EmbeddingSearcher::BuildIndex and SearchBatch fan Encode out over a
// ThreadPool, so one encoder instance is called from many threads at once.
// Encode must therefore use only per-call or thread_local scratch (see the
// contract comment in src/core/encoders.h). An encoder that grows a shared
// mutable cache without a Mutex shows up here as a TSan report under
// `tools/check.sh` and as a determinism failure everywhere else.
#include <thread>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"
#include "util/thread_pool.h"

namespace deepjoin {
namespace core {
namespace {

class SearcherConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(909));
    repo_ = gen.GenerateRepository(200);
    queries_ = gen.GenerateQueries(24);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
};

TEST_F(SearcherConcurrentTest, ParallelBuildMatchesSerialBuild) {
  SearcherConfig cfg;
  cfg.backend = AnnBackend::kFlat;

  EmbeddingSearcher serial(encoder_.get(), cfg);
  ASSERT_TRUE(serial.BuildIndex(repo_).ok());

  ThreadPool pool(4);
  EmbeddingSearcher parallel(encoder_.get(), cfg);
  ASSERT_TRUE(parallel.BuildIndex(repo_, &pool).ok());

  ASSERT_EQ(serial.index_size(), parallel.index_size());
  // Same encoder, same repository: a racy Encode would perturb embeddings
  // and flip rankings; the flat backend is exact, so results must agree.
  for (const auto& q : queries_) {
    EXPECT_EQ(serial.Search(q, {.k = 10}).ids,
              parallel.Search(q, {.k = 10}).ids);
  }
}

TEST_F(SearcherConcurrentTest, PooledSearchBatchMatchesSerialSearches) {
  SearcherConfig cfg;
  cfg.backend = AnnBackend::kHnsw;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());

  ThreadPool pool(4);
  const auto batched = searcher.SearchBatch(queries_, {.k = 10}, &pool);
  ASSERT_EQ(batched.size(), queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(batched[i].ids, searcher.Search(queries_[i], {.k = 10}).ids)
        << "query " << i;
  }
}

TEST_F(SearcherConcurrentTest, ConcurrentSearchesWithPerQueryEfSearch) {
  // The old API set ef_search by mutating the searcher's config between
  // calls, which raced when threads wanted different beam widths. The
  // per-query override in SearchOptions must be free of shared writes:
  // every thread hammers one searcher with its own ef_search while
  // collecting stats, and each result must match a serial rerun.
  SearcherConfig cfg;
  cfg.backend = AnnBackend::kHnsw;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());

  constexpr int kThreads = 4;
  const int efs[kThreads] = {16, 48, 96, 192};
  std::vector<std::vector<std::vector<u32>>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      got[t].reserve(queries_.size());
      for (const auto& q : queries_) {
        auto out = searcher.Search(q, {.k = 10, .ef_search = efs[t]});
        EXPECT_EQ(out.stats.root.name, "searcher.search");
        got[t].push_back(std::move(out.ids));
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < queries_.size(); ++i) {
      EXPECT_EQ(got[t][i],
                searcher.Search(queries_[i], {.k = 10, .ef_search = efs[t]})
                    .ids)
          << "thread " << t << " query " << i;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
