#include "core/training_data.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class TrainingDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(707));
    sample_ = gen.GenerateQueries(120, 0x22);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    embedder_->TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);
  }

  std::vector<lake::Column> sample_;
  std::unique_ptr<FastTextEmbedder> embedder_;
};

TEST_F(TrainingDataTest, EquiPositivesMeetThreshold) {
  TrainingDataConfig cfg;
  cfg.join_type = JoinType::kEqui;
  cfg.positive_threshold = 0.7;
  cfg.shuffle_rate = 0.0;
  auto data = PrepareTrainingData(sample_, embedder_.get(), cfg);
  ASSERT_FALSE(data.pairs.empty());
  for (const auto& p : data.pairs) {
    EXPECT_GE(p.jn, 0.7);
    EXPECT_FALSE(p.shuffled);
  }
  EXPECT_EQ(data.num_shuffled, 0u);
}

TEST_F(TrainingDataTest, ShuffleRateProducesAugmentedCopies) {
  TrainingDataConfig cfg;
  cfg.shuffle_rate = 1.0;  // every base pair spawns a shuffled twin
  auto data = PrepareTrainingData(sample_, embedder_.get(), cfg);
  EXPECT_EQ(data.pairs.size(), 2 * data.num_base);
  EXPECT_EQ(data.num_shuffled, data.num_base);
}

TEST_F(TrainingDataTest, ShuffleRateFractionApproximatelyHolds) {
  TrainingDataConfig cfg;
  cfg.shuffle_rate = 0.3;
  auto data = PrepareTrainingData(sample_, embedder_.get(), cfg);
  // r/(1+r) of all positives should come from shuffles (paper §4.1).
  const double frac = static_cast<double>(data.num_shuffled) /
                      static_cast<double>(data.pairs.size());
  EXPECT_NEAR(frac, 0.3 / 1.3, 0.12);
}

TEST_F(TrainingDataTest, ShuffledColumnsKeepCellMultiset) {
  Rng rng(1);
  auto shuffled = ShuffleColumn(sample_[0], rng);
  auto a = sample_[0].cells;
  auto b = shuffled.cells;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(shuffled.entity_ids.size(), shuffled.cells.size());
}

TEST_F(TrainingDataTest, MaxPairsCapRespected) {
  TrainingDataConfig cfg;
  cfg.max_pairs = 10;
  cfg.shuffle_rate = 0.0;
  auto data = PrepareTrainingData(sample_, embedder_.get(), cfg);
  EXPECT_LE(data.pairs.size(), 10u);
}

TEST_F(TrainingDataTest, SemanticPositivesIncludeVariantPairs) {
  TrainingDataConfig cfg;
  cfg.join_type = JoinType::kSemantic;
  cfg.tau = 0.9f;
  cfg.shuffle_rate = 0.0;
  auto data = PrepareTrainingData(sample_, embedder_.get(), cfg);
  EXPECT_FALSE(data.pairs.empty());
  // Paper Table 2: semantic joins yield at least as many positives as
  // equi (identical strings always vector-match).
  TrainingDataConfig ecfg = cfg;
  ecfg.join_type = JoinType::kEqui;
  auto equi = PrepareTrainingData(sample_, embedder_.get(), ecfg);
  EXPECT_GE(data.num_base, equi.num_base);
}

TEST_F(TrainingDataTest, DeterministicForSeed) {
  TrainingDataConfig cfg;
  auto d1 = PrepareTrainingData(sample_, embedder_.get(), cfg);
  auto d2 = PrepareTrainingData(sample_, embedder_.get(), cfg);
  ASSERT_EQ(d1.pairs.size(), d2.pairs.size());
  for (size_t i = 0; i < d1.pairs.size(); ++i) {
    EXPECT_EQ(d1.pairs[i].x.cells, d2.pairs[i].x.cells);
  }
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
