// End-to-end pipeline test: generate a lake, fine-tune DeepJoin on a small
// sample, index a repository, and verify the retrieval quality against the
// exact solutions — the headline behaviour of the paper at miniature scale.
#include "core/deepjoin.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "join/joinability.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class DeepJoinE2ETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = std::make_unique<lake::LakeGenerator>(
        lake::LakeConfig::Webtable(404));
    repo_ = std::make_unique<lake::Repository>(gen_->GenerateRepository(800));
    FastTextConfig fc;
    fc.dim = 24;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    embedder_->TrainSynonyms(gen_->SynonymLexicon(), 0.8, 2);
    sample_ = std::make_unique<std::vector<lake::Column>>(
        gen_->GenerateQueries(200, 0x5A));
    queries_ = std::make_unique<std::vector<lake::Column>>(
        gen_->GenerateQueries(12, 0xD1));

    DeepJoinConfig cfg;
    cfg.plm.kind = PlmKind::kMPNetSim;
    cfg.plm.max_seq_len = 40;
    cfg.plm.transform.cell_budget = 16;
    cfg.training.join_type = JoinType::kEqui;
    cfg.training.max_pairs = 600;
    cfg.finetune.batch_size = 12;
    cfg.finetune.max_steps = 60;
    cfg.finetune.lr = 5e-4;
    dj_ = DeepJoin::Train(*sample_, *embedder_, cfg);
    DJ_CHECK(dj_->BuildIndex(*repo_).ok());
  }

  static void TearDownTestSuite() {
    dj_.reset();
    queries_.reset();
    sample_.reset();
    embedder_.reset();
    repo_.reset();
    gen_.reset();
  }

  static std::unique_ptr<lake::LakeGenerator> gen_;
  static std::unique_ptr<lake::Repository> repo_;
  static std::unique_ptr<FastTextEmbedder> embedder_;
  static std::unique_ptr<std::vector<lake::Column>> sample_;
  static std::unique_ptr<std::vector<lake::Column>> queries_;
  static std::unique_ptr<DeepJoin> dj_;
};

std::unique_ptr<lake::LakeGenerator> DeepJoinE2ETest::gen_;
std::unique_ptr<lake::Repository> DeepJoinE2ETest::repo_;
std::unique_ptr<FastTextEmbedder> DeepJoinE2ETest::embedder_;
std::unique_ptr<std::vector<lake::Column>> DeepJoinE2ETest::sample_;
std::unique_ptr<std::vector<lake::Column>> DeepJoinE2ETest::queries_;
std::unique_ptr<DeepJoin> DeepJoinE2ETest::dj_;

TEST_F(DeepJoinE2ETest, TrainingProducedPositivesAndReducedLoss) {
  EXPECT_GT(dj_->training_data().pairs.size(), 50u);
  EXPECT_LT(dj_->train_stats().final_loss, dj_->train_stats().first_loss);
}

TEST_F(DeepJoinE2ETest, SearchReturnsKResultsWithStats) {
  auto out = dj_->Search((*queries_)[0], {.k = 10});
  EXPECT_EQ(out.ids.size(), 10u);
  EXPECT_GT(out.stats.SpanMs("searcher.encode"), 0.0);
  EXPECT_GE(out.stats.total_ms(), out.stats.SpanMs("searcher.encode"));
}

TEST_F(DeepJoinE2ETest, PrecisionBeatsRandomByAWideMargin) {
  auto tok = join::TokenizedRepository::Build(*repo_);
  std::vector<double> precisions;
  for (const auto& q : *queries_) {
    const auto qt = tok.EncodeQuery(q);
    auto exact = join::ExactEquiTopK(tok, qt, 10);
    std::vector<u32> exact_ids;
    for (const auto& s : exact) exact_ids.push_back(s.id);
    auto out = dj_->Search(q, {.k = 10});
    precisions.push_back(eval::PrecisionAtK(out.ids, exact_ids));
  }
  const double mean_p = eval::Mean(precisions);
  // Random top-10 of 800 columns has precision 0.0125; the trained model
  // must be far above that (the paper reports ~0.7 at full scale).
  EXPECT_GT(mean_p, 0.2) << "DeepJoin barely beats random retrieval";
}

TEST_F(DeepJoinE2ETest, NdcgIsReasonable) {
  auto tok = join::TokenizedRepository::Build(*repo_);
  std::vector<double> ndcgs;
  for (const auto& q : *queries_) {
    const auto qt = tok.EncodeQuery(q);
    auto exact = join::ExactEquiTopK(tok, qt, 10);
    std::vector<u32> exact_ids;
    for (const auto& s : exact) exact_ids.push_back(s.id);
    auto out = dj_->Search(q, {.k = 10});
    auto jn_of = [&](u32 id) {
      return join::EquiJoinability(qt, tok.columns()[id]);
    };
    ndcgs.push_back(eval::NdcgAtK(out.ids, exact_ids, jn_of));
  }
  EXPECT_GT(eval::Mean(ndcgs), 0.3);
}

TEST_F(DeepJoinE2ETest, BatchedSearchMatchesSingleSearch) {
  ThreadPool pool(2);
  auto batched = dj_->SearchBatch(*queries_, {.k = 10}, &pool);
  ASSERT_EQ(batched.size(), queries_->size());
  for (size_t i = 0; i < queries_->size(); ++i) {
    auto single = dj_->Search((*queries_)[i], {.k = 10});
    EXPECT_EQ(batched[i].ids, single.ids) << "query " << i;
  }
}

TEST_F(DeepJoinE2ETest, FixedLengthEmbeddingIndependentOfColumnSize) {
  // Goal (B) of §2.2: the embedding is fixed-length regardless of |Q|.
  auto small = dj_->encoder().Encode((*queries_)[0]);
  lake::Column big = (*queries_)[0];
  for (int i = 0; i < 200; ++i) {
    big.cells.push_back("extra cell value " + std::to_string(i));
    big.entity_ids.push_back(lake::kNoDomain);
  }
  auto large = dj_->encoder().Encode(big);
  EXPECT_EQ(small.size(), large.size());
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
