// Churn-crash torture (DESIGN.md §12): a live searcher is killed at every
// injectable I/O point of a snapshot publish — each write (clean and
// torn), fsync, rename, and open — and must (a) fail the publish without
// disturbing the serving state and (b) reopen serving the previous durable
// generation bit-identically. Companion cases cover WAL-append faults
// (poison + repair), torn WAL tails, auto-compaction publish failures, and
// checkpoint/manifest corruption fallback.
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class ChurnTortureTest : public ::testing::Test {
 protected:
  static constexpr u32 kCols = 12;

  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(3131));
    repo_ = gen.GenerateRepository(kCols + 4);
    queries_ = gen.GenerateQueries(3);
    FastTextConfig fc;
    fc.dim = 8;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
    cfg_.compact_min_dead = 1u << 30;  // deterministic op counts
    dir_ = std::string(::testing::TempDir()) + "/torture_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    std::error_code ec;
    for (const auto& d : dirs_) std::filesystem::remove_all(d, ec);
    std::filesystem::remove_all(dir_, ec);
  }

  std::string FreshDir(const std::string& tag) {
    const std::string d = dir_ + "_" + tag;
    dirs_.push_back(d);
    return d;
  }

  /// Opens `dir` live and applies the scripted churn: kCols inserts, then
  /// three deletes — enough WAL records of both kinds for every replay
  /// path to run.
  void BuildLiveState(const std::string& dir, Env* env,
                      EmbeddingSearcher* s) {
    ASSERT_TRUE(s->OpenLive(dir, env).ok());
    for (u32 i = 0; i < kCols; ++i) {
      auto id = s->AddColumn(repo_.column(i));
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(*id, i);
    }
    for (const u32 id : {1u, 5u, 9u}) {
      ASSERT_TRUE(s->RemoveColumn(id).ok());
    }
  }

  /// Result ids for every query at several beam widths: the fingerprint
  /// two states must share to count as bit-identical.
  std::vector<std::vector<u32>> Fingerprint(EmbeddingSearcher& s) {
    std::vector<std::vector<u32>> out;
    for (const auto& q : queries_) {
      for (const int ef : {16, 64, 200}) {
        out.push_back(
            s.Search(q, {.k = 8, .ef_search = ef, .collect_stats = false})
                .ids);
      }
    }
    return out;
  }

  static void FlipByteAt(const std::string& path, u64 offset) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b ^= 0x5a;
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
  SearcherConfig cfg_;
  std::string dir_;
  std::vector<std::string> dirs_;
};

TEST_F(ChurnTortureTest, EveryPublishFaultPointLeavesPreviousGenServable) {
  // Baseline pass: count the injection points one publish exposes.
  FaultCounters ops;
  {
    FaultInjectionEnv env(Env::Default());
    EmbeddingSearcher s(encoder_.get(), cfg_);
    ASSERT_NO_FATAL_FAILURE(BuildLiveState(FreshDir("base"), &env, &s));
    env.ResetCounters();
    ASSERT_TRUE(s.PublishSnapshot().ok());
    ops = env.counters();
  }
  ASSERT_GT(ops.writes, 0);
  ASSERT_GT(ops.syncs, 0);
  ASSERT_GT(ops.renames, 0);
  ASSERT_GT(ops.opens, 0);

  struct Point {
    char kind;
    i64 index;
    bool torn;
  };
  std::vector<Point> points;
  for (i64 i = 0; i < ops.writes; ++i) {
    points.push_back({'w', i, false});
    points.push_back({'w', i, true});
  }
  for (i64 i = 0; i < ops.syncs; ++i) points.push_back({'s', i, false});
  for (i64 i = 0; i < ops.renames; ++i) points.push_back({'r', i, false});
  for (i64 i = 0; i < ops.opens; ++i) points.push_back({'o', i, false});

  int n = 0;
  for (const auto& p : points) {
    SCOPED_TRACE(std::string("fault kind=") + p.kind + " index=" +
                 std::to_string(p.index) + (p.torn ? " torn" : ""));
    const std::string dir = FreshDir(std::to_string(n++));
    FaultInjectionEnv env(Env::Default());
    std::optional<EmbeddingSearcher> s;
    s.emplace(encoder_.get(), cfg_);
    ASSERT_NO_FATAL_FAILURE(BuildLiveState(dir, &env, &*s));
    const auto expected = Fingerprint(*s);
    const u64 durable = s->generation();

    env.ResetCounters();
    switch (p.kind) {
      case 'w':
        env.plan().fail_write_index = p.index;
        env.plan().short_write = p.torn;
        break;
      case 's':
        env.plan().fail_sync_index = p.index;
        break;
      case 'r':
        env.plan().fail_rename_index = p.index;
        break;
      case 'o':
        env.plan().fail_open_index = p.index;
        break;
    }
    ASSERT_FALSE(s->PublishSnapshot().ok());
    // The failed publish disturbed nothing: same generation, same answers.
    EXPECT_EQ(s->generation(), durable);
    EXPECT_EQ(Fingerprint(*s), expected);

    // Crash (drop the process state) and reopen on a healthy filesystem:
    // the previous durable generation serves bit-identically.
    s.reset();
    EmbeddingSearcher reopened(encoder_.get(), cfg_);
    ASSERT_TRUE(reopened.OpenLive(dir).ok());
    EXPECT_EQ(reopened.index_size(), kCols);
    EXPECT_EQ(reopened.live_size(), kCols - 3);
    EXPECT_EQ(Fingerprint(reopened), expected);

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

TEST_F(ChurnTortureTest, WalFaultPoisonsLogAndNextMutationRepairs) {
  struct Case {
    const char* tag;
    bool sync_fault;
    bool torn;
  };
  for (const Case c : {Case{"write", false, false}, Case{"torn", false, true},
                       Case{"sync", true, false}}) {
    SCOPED_TRACE(c.tag);
    const std::string dir = FreshDir(c.tag);
    FaultInjectionEnv env(Env::Default());
    std::optional<EmbeddingSearcher> s;
    s.emplace(encoder_.get(), cfg_);
    ASSERT_NO_FATAL_FAILURE(BuildLiveState(dir, &env, &*s));
    const auto expected = Fingerprint(*s);
    const u64 gen = s->generation();

    env.ResetCounters();
    if (c.sync_fault) {
      env.plan().fail_sync_index = 0;
    } else {
      env.plan().fail_write_index = 0;
      env.plan().short_write = c.torn;
    }
    // The WAL append (the first I/O of a live AddColumn) fails: the add
    // reports the error and memory stays exactly where it was.
    auto bad = s->AddColumn(repo_.column(kCols));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(s->index_size(), kCols);
    EXPECT_EQ(Fingerprint(*s), expected);

    // The next mutation repairs the poisoned log by rolling a fresh
    // generation, then lands normally — same column id as the failed try.
    auto good = s->AddColumn(repo_.column(kCols));
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, kCols);
    EXPECT_EQ(s->generation(), gen + 1);
    const auto expected2 = Fingerprint(*s);

    s.reset();
    EmbeddingSearcher reopened(encoder_.get(), cfg_);
    ASSERT_TRUE(reopened.OpenLive(dir).ok());
    EXPECT_EQ(reopened.index_size(), kCols + 1);
    EXPECT_EQ(Fingerprint(reopened), expected2);
  }
}

TEST_F(ChurnTortureTest, AutoCompactPublishFailureDoesNotFailTheRemove) {
  SearcherConfig cfg = cfg_;
  cfg.compact_min_dead = 2;
  cfg.compact_dead_fraction = 0.1;
  FaultInjectionEnv env(Env::Default());
  std::optional<EmbeddingSearcher> s;
  s.emplace(encoder_.get(), cfg);
  ASSERT_TRUE(s->OpenLive(dir_, &env).ok());
  for (u32 i = 0; i < kCols; ++i) {
    ASSERT_TRUE(s->AddColumn(repo_.column(i)).ok());
  }
  ASSERT_TRUE(s->RemoveColumn(0).ok());

  // The second remove crosses the auto-compact thresholds, and the
  // compaction's publish dies on an injected rename. Compaction is an
  // optimisation: the remove itself must succeed, leaving tombstones.
  env.ResetCounters();
  env.plan().fail_rename_index = 0;
  ASSERT_TRUE(s->RemoveColumn(1).ok());
  EXPECT_EQ(s->index_size(), kCols);  // still tombstoned, not compacted
  EXPECT_EQ(s->live_size(), kCols - 2);

  // With the fault cleared, a manual compaction drains the tombstones.
  // (The rebuilt graph may rank differently — compaction re-runs
  // construction — so only the reopen below asserts bit-identity.)
  ASSERT_TRUE(s->Compact().ok());
  EXPECT_EQ(s->index_size(), kCols - 2);

  // And the whole history (including the pre-compaction removes) survives
  // a reopen.
  const auto final_fp = Fingerprint(*s);
  s.reset();
  EmbeddingSearcher reopened(encoder_.get(), cfg);
  ASSERT_TRUE(reopened.OpenLive(dir_).ok());
  EXPECT_EQ(reopened.index_size(), kCols - 2);
  EXPECT_EQ(Fingerprint(reopened), final_fp);
}

TEST_F(ChurnTortureTest, TornWalTailRecoversTheDurablePrefix) {
  std::vector<std::vector<u32>> expected;
  u64 gen = 0;
  {
    EmbeddingSearcher s(encoder_.get(), cfg_);
    ASSERT_TRUE(s.OpenLive(dir_).ok());
    for (u32 i = 0; i < kCols; ++i) {
      ASSERT_TRUE(s.AddColumn(repo_.column(i)).ok());
    }
    expected = Fingerprint(s);
    gen = s.generation();
    // One more add, whose WAL record the "crash" tears below.
    ASSERT_TRUE(s.AddColumn(repo_.column(kCols)).ok());
  }
  const std::string wal = dir_ + "/wal-" + std::to_string(gen) + ".log";
  const u64 size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 5);

  // Replay stops at the torn frame — exactly the state the first kCols
  // acknowledged mutations described — and the id sequence resumes there.
  EmbeddingSearcher reopened(encoder_.get(), cfg_);
  ASSERT_TRUE(reopened.OpenLive(dir_).ok());
  EXPECT_EQ(reopened.index_size(), kCols);
  EXPECT_EQ(Fingerprint(reopened), expected);
  auto id = reopened.AddColumn(repo_.column(kCols));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, kCols);
}

TEST_F(ChurnTortureTest, CorruptCheckpointFallsBackToPreviousGeneration) {
  std::vector<std::vector<u32>> expected;
  u64 gen = 0;
  {
    EmbeddingSearcher s(encoder_.get(), cfg_);
    ASSERT_NO_FATAL_FAILURE(BuildLiveState(dir_, Env::Default(), &s));
    ASSERT_TRUE(s.PublishSnapshot().ok());
    expected = Fingerprint(s);
    gen = s.generation();
  }
  // Flip a byte in the newest checkpoint: its CRC framing must reject it,
  // and recovery must fall back to the retained previous generation —
  // whose checkpoint + WAL replay describe the same logical state.
  const std::string ckpt = dir_ + "/index-" + std::to_string(gen) + ".dj";
  ASSERT_NO_FATAL_FAILURE(
      FlipByteAt(ckpt, std::filesystem::file_size(ckpt) / 2));

  EmbeddingSearcher reopened(encoder_.get(), cfg_);
  ASSERT_TRUE(reopened.OpenLive(dir_).ok());
  EXPECT_EQ(reopened.index_size(), kCols);
  EXPECT_EQ(reopened.live_size(), kCols - 3);
  EXPECT_EQ(Fingerprint(reopened), expected);
}

TEST_F(ChurnTortureTest, CorruptManifestFailsOpenCleanly) {
  {
    EmbeddingSearcher s(encoder_.get(), cfg_);
    ASSERT_NO_FATAL_FAILURE(BuildLiveState(dir_, Env::Default(), &s));
  }
  const std::string manifest = dir_ + "/MANIFEST";
  ASSERT_NO_FATAL_FAILURE(
      FlipByteAt(manifest, std::filesystem::file_size(manifest) / 2));

  // A destroyed manifest is unrecoverable by design (it is tiny and
  // atomically replaced); OpenLive reports it instead of aborting, and
  // the searcher stays usable in memory.
  EmbeddingSearcher reopened(encoder_.get(), cfg_);
  const Status st = reopened.OpenLive(dir_);
  ASSERT_FALSE(st.ok());
  ASSERT_TRUE(reopened.AddColumn(repo_.column(0)).ok());  // in-memory mode
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
