#include "core/searcher.h"

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class SearcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(808));
    repo_ = gen.GenerateRepository(300);
    queries_ = gen.GenerateQueries(5);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
};

TEST_F(SearcherTest, AllBackendsReturnKResults) {
  for (AnnBackend backend :
       {AnnBackend::kFlat, AnnBackend::kHnsw, AnnBackend::kIvfPq}) {
    SearcherConfig cfg;
    cfg.backend = backend;
    cfg.ivfpq_m = 4;
    EmbeddingSearcher searcher(encoder_.get(), cfg);
    searcher.BuildIndex(repo_);
    EXPECT_EQ(searcher.index_size(), repo_.size());
    auto out = searcher.Search(queries_[0], 10);
    EXPECT_EQ(out.ids.size(), 10u)
        << "backend " << static_cast<int>(backend);
  }
}

TEST_F(SearcherTest, HnswAgreesWithFlatMostOfTheTime) {
  SearcherConfig flat_cfg;
  flat_cfg.backend = AnnBackend::kFlat;
  SearcherConfig hnsw_cfg;
  hnsw_cfg.backend = AnnBackend::kHnsw;
  hnsw_cfg.hnsw_ef_search = 96;
  EmbeddingSearcher flat(encoder_.get(), flat_cfg);
  EmbeddingSearcher hnsw(encoder_.get(), hnsw_cfg);
  flat.BuildIndex(repo_);
  hnsw.BuildIndex(repo_);
  double recall = 0;
  for (const auto& q : queries_) {
    auto ef = flat.Search(q, 10).ids;
    auto eh = hnsw.Search(q, 10).ids;
    size_t hits = 0;
    for (u32 a : eh) {
      for (u32 b : ef) {
        if (a == b) {
          ++hits;
          break;
        }
      }
    }
    recall += hits / 10.0;
  }
  EXPECT_GT(recall / queries_.size(), 0.85);
}

TEST_F(SearcherTest, TimingsArePopulated) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  searcher.BuildIndex(repo_);
  auto out = searcher.Search(queries_[0], 5);
  EXPECT_GE(out.total_ms, out.encode_ms);
  EXPECT_GE(out.encode_ms, 0.0);
}

TEST_F(SearcherTest, BatchAmortisesTimings) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  searcher.BuildIndex(repo_);
  ThreadPool pool(2);
  auto outs = searcher.SearchBatch(queries_, 5, &pool);
  ASSERT_EQ(outs.size(), queries_.size());
  for (const auto& o : outs) {
    EXPECT_EQ(o.ids.size(), 5u);
    EXPECT_GT(o.total_ms, 0.0);
  }
}

TEST_F(SearcherTest, SearchBeforeBuildAborts) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  EXPECT_DEATH(searcher.Search(queries_[0], 5), "BuildIndex");
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
