#include "core/searcher.h"

#include <gtest/gtest.h>

#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class SearcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(808));
    repo_ = gen.GenerateRepository(300);
    queries_ = gen.GenerateQueries(5);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<FastTextColumnEncoder>(embedder_.get(),
                                                       TransformConfig{});
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<FastTextColumnEncoder> encoder_;
};

TEST_F(SearcherTest, AllBackendsReturnKResults) {
  for (AnnBackend backend :
       {AnnBackend::kFlat, AnnBackend::kHnsw, AnnBackend::kIvfPq}) {
    SearcherConfig cfg;
    cfg.backend = backend;
    cfg.ivfpq_m = 4;
    EmbeddingSearcher searcher(encoder_.get(), cfg);
    ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
    EXPECT_EQ(searcher.index_size(), repo_.size());
    auto out = searcher.Search(queries_[0], {.k = 10});
    EXPECT_EQ(out.ids.size(), 10u)
        << "backend " << static_cast<int>(backend);
  }
}

TEST_F(SearcherTest, HnswAgreesWithFlatMostOfTheTime) {
  SearcherConfig flat_cfg;
  flat_cfg.backend = AnnBackend::kFlat;
  SearcherConfig hnsw_cfg;
  hnsw_cfg.backend = AnnBackend::kHnsw;
  hnsw_cfg.hnsw_ef_search = 96;
  EmbeddingSearcher flat(encoder_.get(), flat_cfg);
  EmbeddingSearcher hnsw(encoder_.get(), hnsw_cfg);
  ASSERT_TRUE(flat.BuildIndex(repo_).ok());
  ASSERT_TRUE(hnsw.BuildIndex(repo_).ok());
  double recall = 0;
  for (const auto& q : queries_) {
    auto ef = flat.Search(q, {.k = 10}).ids;
    auto eh = hnsw.Search(q, {.k = 10}).ids;
    size_t hits = 0;
    for (u32 a : eh) {
      for (u32 b : ef) {
        if (a == b) {
          ++hits;
          break;
        }
      }
    }
    recall += hits / 10.0;
  }
  EXPECT_GT(recall / queries_.size(), 0.85);
}

TEST_F(SearcherTest, QueryStatsSpansNestAndCoverTotal) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  auto out = searcher.Search(queries_[0], {.k = 5});
  EXPECT_EQ(out.stats.root.name, "searcher.search");
  const double encode = out.stats.SpanMs("searcher.encode");
  const double ann = out.stats.SpanMs("searcher.ann");
  EXPECT_GE(encode, 0.0);
  EXPECT_GE(ann, 0.0);
  // Child spans never exceed the enclosing span.
  EXPECT_GE(out.stats.total_ms(), encode);
  EXPECT_GE(out.stats.total_ms(), ann);
}

TEST_F(SearcherTest, CollectStatsFalseSkipsTrace) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  auto out = searcher.Search(queries_[0], {.k = 5, .collect_stats = false});
  EXPECT_EQ(out.ids.size(), 5u);
  EXPECT_TRUE(out.stats.root.name.empty());
  EXPECT_EQ(out.stats.total_ms(), 0.0);
}

TEST_F(SearcherTest, BatchAmortisesEncodeIntoPerQueryStats) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  ThreadPool pool(2);
  auto outs = searcher.SearchBatch(queries_, {.k = 5}, &pool);
  ASSERT_EQ(outs.size(), queries_.size());
  for (const auto& o : outs) {
    EXPECT_EQ(o.ids.size(), 5u);
    EXPECT_GT(o.stats.total_ms(), 0.0);
    // Per-query root = amortised encode + this query's ANN.
    const double sum = o.stats.SpanMs("searcher.encode") +
                       o.stats.SpanMs("searcher.ann");
    EXPECT_NEAR(o.stats.total_ms(), sum, 1e-9);
  }
}

TEST_F(SearcherTest, SearchBeforeBuildAborts) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  EXPECT_DEATH(searcher.Search(queries_[0], {.k = 5}), "BuildIndex");
}

TEST_F(SearcherTest, IndexAccessorBeforeBuildAborts) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  EXPECT_EQ(searcher.index_size(), 0u);  // size is safe on an empty searcher
  EXPECT_DEATH(searcher.index(), "BuildIndex");
}

TEST_F(SearcherTest, IvfPqBuildOnEmptyRepositoryFails) {
  SearcherConfig cfg;
  cfg.backend = AnnBackend::kIvfPq;
  cfg.ivfpq_m = 4;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  lake::Repository empty;
  const Status st = searcher.BuildIndex(empty);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(SearcherTest, IvfPqAddColumnBeforeBuildFailsCleanly) {
  SearcherConfig cfg;
  cfg.backend = AnnBackend::kIvfPq;
  cfg.ivfpq_m = 4;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  auto id = searcher.AddColumn(queries_[0]);
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SearcherTest, AddColumnOnFreshHnswSearcherStartsAnIndex) {
  SearcherConfig cfg;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  auto first = searcher.AddColumn(repo_.column(0));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  auto second = searcher.AddColumn(repo_.column(1));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1u);
  auto out = searcher.Search(queries_[0], {.k = 2});
  EXPECT_EQ(out.ids.size(), 2u);
}

TEST_F(SearcherTest, PerQueryEfSearchWidensTheBeam) {
  SearcherConfig cfg;
  cfg.hnsw_ef_search = 64;
  EmbeddingSearcher searcher(encoder_.get(), cfg);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
  // The per-query override rides with the SearchOptions — no config
  // mutation. A wider beam must evaluate at least as many distances.
  auto narrow = searcher.Search(queries_[0], {.k = 10, .ef_search = 16});
  auto wide = searcher.Search(queries_[0], {.k = 10, .ef_search = 256});
  const u64 narrow_evals = narrow.stats.CounterValue("hnsw.dist_evals");
  const u64 wide_evals = wide.stats.CounterValue("hnsw.dist_evals");
  EXPECT_GT(narrow_evals, 0u);
  EXPECT_GT(wide_evals, narrow_evals);
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
