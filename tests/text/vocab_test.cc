#include "text/vocab.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(VocabTest, MostFrequentWordsKept) {
  Vocab v(2, 4);
  v.Observe({"rare", "common", "common", "mid", "mid", "common"});
  v.Finalize();
  EXPECT_EQ(v.num_learned_words(), 2u);
  // "common" and "mid" survive; "rare" falls into an OOV bucket.
  const u32 common_id = v.Encode("common");
  const u32 rare_id = v.Encode("rare");
  EXPECT_GE(common_id, v.word_base());
  EXPECT_LT(rare_id, v.word_base());
  EXPECT_GE(rare_id, Vocab::kUnkBase);
}

TEST(VocabTest, EncodeIsStable) {
  Vocab v(10, 4);
  v.Observe({"a", "b", "a"});
  v.Finalize();
  EXPECT_EQ(v.Encode("a"), v.Encode("a"));
  EXPECT_NE(v.Encode("a"), v.Encode("b"));
}

TEST(VocabTest, OovBucketsAreDeterministic) {
  Vocab v(1, 8);
  v.Observe({"keep"});
  v.Finalize();
  EXPECT_EQ(v.Encode("never-seen"), v.Encode("never-seen"));
  EXPECT_LT(v.Encode("never-seen"), v.word_base());
}

TEST(VocabTest, DecodeRoundTripsLearnedWords) {
  Vocab v(5, 2);
  v.Observe({"alpha", "beta", "alpha"});
  v.Finalize();
  EXPECT_EQ(v.Decode(v.Encode("alpha")), "alpha");
  EXPECT_EQ(v.Decode(Vocab::kPadId), "[pad]");
  EXPECT_EQ(v.Decode(Vocab::kClsId), "[cls]");
}

TEST(VocabTest, SizeAccountsForSpecialsAndBuckets) {
  Vocab v(3, 7);
  v.Observe({"x", "y"});
  v.Finalize();
  EXPECT_EQ(v.size(), 3u + 7u + 2u);
}

TEST(VocabTest, TieBreakIsLexicographic) {
  Vocab v(1, 2);
  v.Observe({"bb", "aa"});  // equal frequency
  v.Finalize();
  EXPECT_EQ(v.Decode(v.word_base()), "aa");
}

}  // namespace
}  // namespace deepjoin
