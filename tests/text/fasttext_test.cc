#include "text/fasttext.h"

#include <cmath>

#include <gtest/gtest.h>

#include "text/char_ngram.h"

namespace deepjoin {
namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const double d = std::sqrt(na) * std::sqrt(nb);
  return d > 0 ? dot / d : 0.0;
}

class FastTextTest : public ::testing::Test {
 protected:
  FastTextTest() : embedder_(FastTextConfig{}) {}
  FastTextEmbedder embedder_;
};

TEST_F(FastTextTest, WordVectorsAreUnitLength) {
  auto v = embedder_.WordVector("example");
  double n = 0;
  for (float x : v) n += x * x;
  EXPECT_NEAR(std::sqrt(n), 1.0, 1e-5);
}

TEST_F(FastTextTest, DeterministicAcrossInstances) {
  FastTextEmbedder other{FastTextConfig{}};
  EXPECT_EQ(embedder_.WordVector("table"), other.WordVector("table"));
}

TEST_F(FastTextTest, TyposAreCloserThanUnrelatedWords) {
  const auto base = embedder_.WordVector("preston");
  const auto typo = embedder_.WordVector("perston");   // transposition
  const auto other = embedder_.WordVector("zqvxkjuw");
  EXPECT_GT(Cosine(base, typo), Cosine(base, other) + 0.2);
}

TEST_F(FastTextTest, SharedSubwordsInduceSimilarity) {
  const auto a = embedder_.WordVector("nation");
  const auto b = embedder_.WordVector("national");
  const auto c = embedder_.WordVector("bridge");
  EXPECT_GT(Cosine(a, b), Cosine(a, c));
}

TEST_F(FastTextTest, TextVectorAveragesWords) {
  const auto ab = embedder_.TextVector("alpha beta");
  const auto a = embedder_.WordVector("alpha");
  const auto b = embedder_.WordVector("beta");
  std::vector<float> mean(a.size());
  for (size_t i = 0; i < a.size(); ++i) mean[i] = (a[i] + b[i]) / 2;
  L2Normalize(mean.data(), static_cast<int>(mean.size()));
  EXPECT_GT(Cosine(ab, mean), 0.999);
}

TEST_F(FastTextTest, EmptyTextIsZeroVector) {
  const auto v = embedder_.TextVector("!!!");
  for (float x : v) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST_F(FastTextTest, TrainSynonymsPullsGroupTogether) {
  const auto before = Cosine(embedder_.WordVector("frentol"),
                             embedder_.WordVector("gastupi"));
  embedder_.TrainSynonyms({{"frentol", "gastupi"}}, 0.9, 3);
  const auto after = Cosine(embedder_.WordVector("frentol"),
                            embedder_.WordVector("gastupi"));
  EXPECT_GT(after, before + 0.3);
}

TEST_F(FastTextTest, TrainSynonymsLeavesOthersAlone) {
  const auto before = embedder_.WordVector("bystander");
  embedder_.TrainSynonyms({{"frentol", "gastupi"}}, 0.9, 3);
  EXPECT_EQ(embedder_.WordVector("bystander"), before);
}

TEST_F(FastTextTest, SkipGramBringsCooccurringWordsCloser) {
  FastTextConfig fc;
  fc.dim = 16;
  FastTextEmbedder emb(fc);
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back({"soltar", "brimel", "soltar", "brimel"});
    corpus.push_back({"quvane", "drosit", "quvane", "drosit"});
  }
  const double before =
      Cosine(emb.WordVector("soltar"), emb.WordVector("brimel"));
  Rng rng(3);
  emb.TrainSkipGram(corpus, 2, 3, 0.05, 3, rng);
  const double after =
      Cosine(emb.WordVector("soltar"), emb.WordVector("brimel"));
  EXPECT_GT(after, before);
}

TEST_F(FastTextTest, L2DistanceAndDotBasics) {
  const float a[3] = {1, 0, 0};
  const float b[3] = {0, 1, 0};
  EXPECT_NEAR(L2Distance(a, b, 3), std::sqrt(2.0), 1e-6);
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 0.0f);
}

TEST(CharNgramTest, BoundaryMarkersDistinguishAffixes) {
  std::vector<u32> a, b;
  HashedCharNgrams("abc", 3, 3, 1 << 16, &a);
  HashedCharNgrams("bca", 3, 3, 1 << 16, &b);
  EXPECT_NE(a, b);
}

TEST(CharNgramTest, IncludesWholeWordFeature) {
  std::vector<u32> grams;
  HashedCharNgrams("hi", 3, 5, 1 << 16, &grams);
  EXPECT_FALSE(grams.empty());  // "<hi>" itself even if shorter than minn+2
}

}  // namespace
}  // namespace deepjoin
