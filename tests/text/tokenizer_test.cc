#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(TokenizerTest, BasicSplit) {
  EXPECT_EQ(TokenizeWords("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, NumbersAreTokens) {
  EXPECT_EQ(TokenizeWords("id 12345"),
            (std::vector<std::string>{"id", "12345"}));
}

TEST(TokenizerTest, PunctuationVariantsNormalize) {
  EXPECT_EQ(TokenizeWords("U.S.A."), TokenizeWords("u s a"));
  EXPECT_EQ(TokenizeWords("new-york"), TokenizeWords("New York"));
}

TEST(TokenizerTest, EmptyAndPurePunctuation) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("--- !!! ...").empty());
}

TEST(TokenizerTest, CountWordsMatchesTokenize) {
  for (const char* s : {"a b c", "", "one", "x,y;z", "  spaced   out "}) {
    EXPECT_EQ(CountWords(s), TokenizeWords(s).size()) << s;
  }
}

TEST(TokenizerTest, TokenizeIntoAppends) {
  std::vector<std::string> out = {"pre"};
  TokenizeWordsInto("a b", &out);
  EXPECT_EQ(out, (std::vector<std::string>{"pre", "a", "b"}));
}

}  // namespace
}  // namespace deepjoin
