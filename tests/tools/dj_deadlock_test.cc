// Self-test for tools/dj_deadlock.cc: runs the real binary (path injected
// by CMake as DJ_DEADLOCK_BIN) over fixture trees in
// tests/tools/testdata/deadlock/ — each a miniature repo with its own
// src/util/lock_rank.h rank table — and asserts every rule fires at the
// expected file:line, that suppression comments silence it, and that both
// the `clean` fixture and the real tree exit 0.
#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct ToolRun {
  int exit_code = -1;
  std::string output;
};

ToolRun RunDeadlock(const std::string& args) {
  const std::string cmd = std::string(DJ_DEADLOCK_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << cmd;
  ToolRun run;
  if (!pipe) return run;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int rc = pclose(pipe);
  run.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return run;
}

std::string Fixture(const std::string& subdir) {
  return std::string(DJ_DEADLOCK_TESTDATA) + "/" + subdir;
}

TEST(DjDeadlockTest, CleanTreeExitsZero) {
  // Uphill nesting, a satisfied DJ_REQUIRES contract, and a condvar wait
  // holding only its own mutex: nothing to report.
  const ToolRun run = RunDeadlock("--root " + Fixture("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("dj_deadlock: clean"), std::string::npos)
      << run.output;
}

TEST(DjDeadlockTest, MutationPathFixtureIsCleanWithoutSuppressions) {
  // Miniature of the live-index mutation path (DESIGN.md §12): the writer
  // token's busy-flag wait, blocking WAL/checkpoint I/O with no mutex
  // held, the uphill hnsw.update -> hnsw.links nesting, and the snapshot
  // swap. Clean by construction — if a rule ever fires here, the real
  // mutation path's discipline has been misunderstood, not suppressed.
  const ToolRun run = RunDeadlock("--root " + Fixture("mutation"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("dj_deadlock: clean"), std::string::npos)
      << run.output;

  // The static graph must show exactly the one nested acquisition; the
  // writer token never appears as a holder (its mutex guards only the
  // flag), which is what lets the mutator block on I/O token-held.
  const ToolRun graph =
      RunDeadlock("--root " + Fixture("mutation") + " --dump-graph");
  EXPECT_EQ(graph.exit_code, 0) << graph.output;
  EXPECT_NE(graph.output.find("hnsw.update -> hnsw.links"),
            std::string::npos)
      << graph.output;
  EXPECT_EQ(graph.output.find("searcher.writer ->"), std::string::npos)
      << graph.output;
}

TEST(DjDeadlockTest, TwoLockInversionReportsRankOrderAndCycle) {
  const ToolRun run = RunDeadlock("--root " + Fixture("cycle2"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // Backward() takes b then a (line 17): downhill in rank, and the b -> a
  // edge closes a two-node cycle against Forward()'s a -> b.
  EXPECT_NE(run.output.find("src/two.cc:17: error: [rank-order]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("acquires 'fixture.a' (rank 100)"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("while holding 'fixture.b' (rank 200)"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(
                "[lock-cycle] lock-order cycle: "
                "fixture.a -> fixture.b -> fixture.a"),
            std::string::npos)
      << run.output;
}

TEST(DjDeadlockTest, ThreeLockCycleThroughRequiresAnnotation) {
  const ToolRun run = RunDeadlock("--root " + Fixture("cycle3"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The c -> a edge comes from TakeA()'s DJ_REQUIRES(c_) contract, not a
  // lexical nesting — the cycle spans three functions.
  EXPECT_NE(run.output.find("src/trio.cc:23: error: [rank-order]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(
                "[lock-cycle] lock-order cycle: "
                "trio.a -> trio.b -> trio.c -> trio.a"),
            std::string::npos)
      << run.output;
}

TEST(DjDeadlockTest, MiscTreeFiresEveryRemainingRule) {
  const ToolRun run = RunDeadlock("--root " + Fixture("misc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/misc.cc:8: error: [unranked-mutex]"),
            std::string::npos)
      << run.output;
  // Direct blocking call under misc.a (17) and the same call reached
  // through DoSave() (30), with the witness chain in the message.
  EXPECT_NE(run.output.find("src/misc.cc:17: error: [blocking-under-lock]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/misc.cc:30: error: [blocking-under-lock]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("DoSave() -> AtomicSave()"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/misc.cc:36: error: [wait-holding-lock]"),
            std::string::npos)
      << run.output;
  // Timed wait on a member-access mutex (`slot_.mu`): the waited lock must
  // resolve through the member expression — same-lock wait stays silent,
  // waiting with a second lock held still fires.
  EXPECT_EQ(run.output.find("src/misc.cc:63:"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/misc.cc:69: error: [wait-holding-lock]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/misc.cc:45: error: [excludes-held]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/misc.cc:50: error: [requires-unheld]"),
            std::string::npos)
      << run.output;
}

TEST(DjDeadlockTest, SuppressionCommentsSilenceRules) {
  const ToolRun run = RunDeadlock("--root " + Fixture("misc"));
  // quiet_ (line 9) carries allow(unranked-mutex) on its own line;
  // SaveAllowed()'s AtomicSave (line 23) carries allow(blocking-under-lock)
  // on the line above. Neither may appear.
  EXPECT_EQ(run.output.find("src/misc.cc:9:"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/misc.cc:23:"), std::string::npos)
      << run.output;
}

TEST(DjDeadlockTest, ListRulesDocumentsEveryRule) {
  const ToolRun run = RunDeadlock("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"unranked-mutex", "rank-order", "lock-cycle", "rank-mismatch",
        "blocking-under-lock", "wait-holding-lock", "excludes-held",
        "requires-unheld"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << rule;
  }
}

TEST(DjDeadlockTest, DumpGraphShowsRealTreeEdges) {
  // --dump-graph prints the static acquired-while-holding edges; the
  // ThreadPool queue -> metrics registry nesting (counter registration
  // during Submit) is a stable, genuine edge of the real tree.
  const ToolRun run =
      RunDeadlock("--root " + std::string(DJ_SOURCE_ROOT) + " --dump-graph");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("threadpool.queue -> metrics.registry"),
            std::string::npos)
      << run.output;
}

TEST(DjDeadlockTest, RealTreeIsClean) {
  // The same invocation ctest registers as dj_deadlock_tree; duplicated
  // here so a violation shows up with full output in the gtest log too.
  const ToolRun run =
      RunDeadlock("--root " + std::string(DJ_SOURCE_ROOT));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
