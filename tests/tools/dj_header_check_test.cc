// Self-test for tools/dj_header_check.cc: runs the real binary (path
// injected by CMake as DJ_HEADER_CHECK_BIN, compiler as DJ_CXX_COMPILER)
// over fixture trees in tests/tools/testdata/headers/ and asserts that a
// self-sufficient header passes, a header missing <cstdint>/<string> fails
// with actionable hints, and the `dj_header_check: skip` marker opts a
// header out. Fixtures live under "testdata", which the tree-wide lint and
// header-check runs skip by design.
#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct CheckRun {
  int exit_code = -1;
  std::string output;
};

CheckRun RunCheck(const std::string& args) {
  const std::string cmd =
      std::string(DJ_HEADER_CHECK_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << cmd;
  CheckRun run;
  if (!pipe) return run;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int rc = pclose(pipe);
  run.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return run;
}

std::string TreeArgs(const std::string& subdir) {
  return "--root " + std::string(DJ_HEADER_CHECK_TESTDATA) + "/" + subdir +
         " --compiler " + std::string(DJ_CXX_COMPILER) + " --std c++20";
}

TEST(DjHeaderCheckTest, CleanTreeExitsZero) {
  const CheckRun run = RunCheck(TreeArgs("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("dj_header_check: clean"), std::string::npos)
      << run.output;
}

TEST(DjHeaderCheckTest, BrokenHeaderFailsWithMissingIncludeHints) {
  const CheckRun run = RunCheck(TreeArgs("broken"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("needs_cstdint.h: error: [self-contained]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("hint: add #include <cstdint>"),
            std::string::npos)
      << run.output;
}

TEST(DjHeaderCheckTest, SkipMarkerOptsHeaderOut) {
  // fragment.h is just as broken as needs_cstdint.h but carries the
  // `dj_header_check: skip` marker; it must not be reported.
  const CheckRun run = RunCheck(TreeArgs("broken"));
  EXPECT_EQ(run.output.find("fragment.h"), std::string::npos) << run.output;
}

TEST(DjHeaderCheckTest, UnknownFlagIsAUsageError) {
  const CheckRun run = RunCheck("--no-such-flag");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
