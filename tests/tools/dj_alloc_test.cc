// Self-test for tools/dj_alloc.cc: runs the real binary (path injected by
// CMake as DJ_ALLOC_BIN) over miniature fixture repos in
// tests/tools/testdata/alloc/ and asserts the may-allocate fixpoint fires
// at the expected file:line with the expected witness chain, that both
// suppression forms silence it, that annotation inheritance crosses the
// declaration/definition split, and that the real tree exits 0.
#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct ToolRun {
  int exit_code = -1;
  std::string output;
};

ToolRun RunAlloc(const std::string& args) {
  const std::string cmd = std::string(DJ_ALLOC_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << cmd;
  ToolRun run;
  if (!pipe) return run;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int rc = pclose(pipe);
  run.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return run;
}

std::string Fixture(const std::string& subdir) {
  return std::string(DJ_ALLOC_TESTDATA) + "/" + subdir;
}

TEST(DjAllocTest, CleanTreeExitsZero) {
  // An allocation-free DJ_NOALLOC chain, plus an allocating function that
  // no annotated root reaches: nothing to report.
  const ToolRun run = RunAlloc("--root " + Fixture("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("dj_alloc: clean"), std::string::npos)
      << run.output;
}

TEST(DjAllocTest, DirectAllocationInAnnotatedFunctionReports) {
  // Grow() is DJ_NOALLOC via its declaration only — the finding proves the
  // definition inherits the header contract — and allocates with `new` in
  // its own body.
  const ToolRun run = RunAlloc("--root " + Fixture("direct"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/direct.cc:8: error: [noalloc]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(
                "DJ_NOALLOC function 'Grow' may allocate: "
                "new (src/direct.cc:9)"),
            std::string::npos)
      << run.output;
}

TEST(DjAllocTest, TransitiveCrossTuChainReportsWitness) {
  // Root() (root.cc) -> Leaf() (leaf.cc) -> std::to_string: the fixpoint
  // crosses the translation-unit boundary and prints the full chain down
  // to the allocating line.
  const ToolRun run = RunAlloc("--root " + Fixture("transitive"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/root.cc:11: error: [noalloc]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(
                "DJ_NOALLOC function 'Root' may allocate: "
                "Leaf() -> to_string() (src/leaf.cc:7)"),
            std::string::npos)
      << run.output;
}

TEST(DjAllocTest, SuppressionsSilenceEventAndEdge) {
  // Same-line allow() on a growth event and line-above allow() on a call
  // edge: both forms make the fixture clean.
  const ToolRun run = RunAlloc("--root " + Fixture("suppressed"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("dj_alloc: clean"), std::string::npos)
      << run.output;
}

TEST(DjAllocTest, RealTreeIsClean) {
  // The actual repository must stay allocation-disciplined: every
  // DJ_NOALLOC chain clean, every suppression justified in-line.
  const ToolRun run = RunAlloc(std::string("--root ") + DJ_SOURCE_ROOT);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(DjAllocTest, ListRulesMentionsSuppressionSyntax) {
  const ToolRun run = RunAlloc("--list-rules");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("noalloc"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("dj_alloc: allow(alloc)"), std::string::npos)
      << run.output;
}

TEST(DjAllocTest, UnknownFlagFailsUsage) {
  const ToolRun run = RunAlloc("--bogus");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
