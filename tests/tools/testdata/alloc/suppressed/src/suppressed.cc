// Fixture: both suppression forms — at the allocation site (discards the
// event) and at a call site (cuts that edge) — silence the checker.
#include "alloc_guard.h"

namespace fixture {

DJ_NOALLOC void Warm(int* out_size);

void Warm(int* out_size) {
  // Capacity-reusing scratch: growth is warmup-only.
  scratch_.push_back(*out_size);  // dj_alloc: allow(alloc)
  *out_size = static_cast<int>(scratch_.size());
}

int* MakePool() { return new int[64]; }

DJ_NOALLOC int* PoolSlot();

int* PoolSlot() {
  // One-time pool construction, excluded from the steady state.
  // dj_alloc: allow(alloc)
  return MakePool();
}

}  // namespace fixture
