// Miniature stand-in for src/util/alloc_guard.h: only the annotation.
#define DJ_NOALLOC
