// Fixture: the allocating leaf of the cross-TU chain rooted in root.cc.
#include "alloc_guard.h"

namespace fixture {

int Leaf(int n) {
  return static_cast<int>(std::to_string(n).size());
}

}  // namespace fixture
