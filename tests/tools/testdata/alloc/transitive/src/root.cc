// Fixture: the DJ_NOALLOC root reaches an allocation two hops away, in a
// different translation unit (cross-TU witness chain).
#include "alloc_guard.h"

namespace fixture {

int Leaf(int n);  // defined in leaf.cc

DJ_NOALLOC int Root(int n);

int Root(int n) { return Leaf(n) + 1; }

}  // namespace fixture
