// Fixture: a DJ_NOALLOC root whose whole call chain is allocation-free,
// plus an allocating function outside any annotated root (not a finding).
#include "alloc_guard.h"

namespace fixture {

DJ_NOALLOC int Accumulate(const int* xs, int n);

int Helper(const int* xs, int n) {
  int s = 0;
  for (int i = 0; i < n; ++i) s += xs[i];
  return s;
}

// Definition inherits the declaration's DJ_NOALLOC (header contract).
int Accumulate(const int* xs, int n) { return Helper(xs, n); }

// Allocates, but is reachable from no DJ_NOALLOC root.
int* MakeBuffer(int n) { return new int[n]; }

}  // namespace fixture
