// Fixture: a DJ_NOALLOC function that allocates directly in its own body.
#include "alloc_guard.h"

namespace fixture {

DJ_NOALLOC void Grow(int n);

void Grow(int n) {
  int* p = new int[n];
  delete[] p;
}

}  // namespace fixture
