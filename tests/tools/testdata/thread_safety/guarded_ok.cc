// Positive control for the thread-safety negative-compile test: correct
// lock discipline (scoped MutexLock, DJ_REQUIRES on the *Locked helper)
// must compile warning-free under -Wthread-safety
// -Werror=thread-safety-analysis. Also built as a plain executable test on
// every compiler so the fixture cannot rot.
#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    deepjoin::MutexLock lock(mu_);
    IncrementLocked();
  }
  int Get() {
    deepjoin::MutexLock lock(mu_);
    return value_;
  }

 private:
  void IncrementLocked() DJ_REQUIRES(mu_) { ++value_; }

  deepjoin::Mutex mu_;
  int value_ DJ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Get() == 1 ? 0 : 1;
}
