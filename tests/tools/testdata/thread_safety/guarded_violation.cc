// Negative fixture for the thread-safety negative-compile test: touching a
// DJ_GUARDED_BY field without holding its mutex. Under Clang with
// -Werror=thread-safety-analysis this translation unit must NOT compile —
// proving the annotations in util/mutex.h are live, not decorative. (On
// compilers without the analysis the macros no-op and this compiles; the
// driving CMake project refuses to run there.)
#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() { ++value_; }  // guarded-by violation: mu_ not held

 private:
  deepjoin::Mutex mu_;
  int value_ DJ_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
