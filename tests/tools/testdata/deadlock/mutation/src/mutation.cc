// Miniature of the live-index mutation path (src/core/searcher.cc,
// DESIGN.md §12), kept clean by the same discipline the real tree uses:
// the writer "token" is a busy flag whose mutex guards only the flag — the
// mutator's blocking work (WAL fsync, checkpoint AtomicSave) runs with no
// mutex held — and the remaining locks (snapshot swap, HNSW update, HNSW
// link stripes) are each brief and only ever nest uphill in rank.
// dj_deadlock must exit 0 with zero suppressions.
#include "util/lock_rank.h"

struct LiveSearcher {
  Mutex writer_mu_{"searcher.writer", rank::kWriter};
  CondVar writer_cv_;
  bool writer_busy_ = false;
  Mutex snapshot_mu_{"searcher.snapshot", rank::kSnapshot};
  Mutex update_mu_{"hnsw.update", rank::kUpdate};
  Mutex links_mu_{"hnsw.links", rank::kLinks};

  void AcquireWriter() {
    MutexLock lock(writer_mu_);
    // Only the waited mutex is held: the token wait can never deadlock
    // against a mutator, which touches writer_mu_ only to flip the flag.
    while (writer_busy_) writer_cv_.Wait(writer_mu_);
    writer_busy_ = true;
  }

  void ReleaseWriter() {
    MutexLock lock(writer_mu_);
    writer_busy_ = false;
    writer_cv_.Signal();
  }

  /// One durable mutation, exactly as the real AddColumn sequences it.
  /// The blocking WAL/checkpoint I/O happens between the token acquire and
  /// release — token held, but NO mutex held, so [blocking-under-lock]
  /// stays silent without a suppression.
  void AddColumn() {
    AcquireWriter();
    AtomicSave("wal.log");  // durable WAL record: fsync with no lock held
    Insert();
    Publish();
    ReleaseWriter();
  }

  /// HNSW insert: the update serializer, then one link stripe — the only
  /// nested acquisition on the mutation path, and it runs uphill.
  void Insert() {
    MutexLock update(update_mu_);
    MutexLock links(links_mu_);  // 350 -> 450: uphill, fine
  }

  /// RCU snapshot swap: a brief pointer exchange under its own mutex,
  /// nothing nested beneath it.
  void Publish() {
    MutexLock snap(snapshot_mu_);
  }

  /// Readers pin the current snapshot the same way Publish swaps it.
  void PinSnapshot() {
    MutexLock snap(snapshot_mu_);
  }
};
