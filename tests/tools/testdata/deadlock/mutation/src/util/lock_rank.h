// Fixture rank table for the `mutation` dj_deadlock tree: the live-index
// mutation path's slice of the real table (src/util/lock_rank.h).
namespace rank {
inline constexpr int kWriter = 150;    // searcher.writer (busy-flag guard)
inline constexpr int kSnapshot = 250;  // searcher.snapshot
inline constexpr int kUpdate = 350;    // hnsw.update
inline constexpr int kLinks = 450;     // hnsw.links
}  // namespace rank
