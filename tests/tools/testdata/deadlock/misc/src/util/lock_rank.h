// Fixture rank table for the `misc` dj_deadlock tree.
namespace rank {
inline constexpr int kA = 100;  // misc.a
inline constexpr int kB = 200;  // misc.b
inline constexpr int kC = 300;  // misc.slot
}  // namespace rank
