// One of every non-ordering rule: an unranked mutex, blocking calls under a
// lock (direct and through a helper), a condvar wait with a second lock
// held, and annotation-contract violations — each next to a suppressed twin
// that must stay silent.
#include "util/lock_rank.h"

struct Misc {
  Mutex plain_;  // unranked: must fire
  Mutex quiet_;  // dj_deadlock: allow(unranked-mutex)
  Mutex a_{"misc.a", rank::kA};
  Mutex b_{"misc.b", rank::kB};
  CondVar cv_;
  bool done_ = false;

  void SaveUnderLock() {
    MutexLock la(a_);
    AtomicSave("state.bin");  // blocking call with misc.a held: must fire
  }

  void SaveAllowed() {
    MutexLock la(a_);
    // dj_deadlock: allow(blocking-under-lock)
    AtomicSave("state.bin");
  }

  void DoSave() { AtomicSave("state.bin"); }

  void TransitiveBlock() {
    MutexLock la(a_);
    DoSave();  // blocks through the callee: must fire here
  }

  void WaitHoldingTwo() {
    MutexLock la(a_);
    MutexLock lb(b_);
    while (!done_) cv_.Wait(b_);  // misc.a still held: must fire
  }

  void Excluded() DJ_EXCLUDES(a_) { done_ = true; }

  void NeedsA() DJ_REQUIRES(a_) { done_ = true; }

  void BreaksContracts() {
    MutexLock la(a_);
    Excluded();  // callee excludes misc.a, which is held: must fire
    NeedsA();    // fine: misc.a is held
  }

  void MissingRequired() {
    NeedsA();  // callee requires misc.a, nothing held: must fire
  }

  struct Slot {
    Mutex mu{"misc.slot", rank::kC};
    CondVar cv;
  };
  Slot slot_;

  void TimedWaitOwnMemberMutex() {
    MutexLock ls(slot_.mu);
    // Member-access spelling: the WaitFor mutex must resolve to the held
    // lock (not to the receiver identifier), so nothing fires here.
    while (!done_) (void)slot_.cv.WaitFor(slot_.mu, Nanos(10));
  }

  void TimedWaitHoldingSecondLock() {
    MutexLock la(a_);
    MutexLock ls(slot_.mu);
    while (!done_) (void)slot_.cv.WaitFor(slot_.mu, Nanos(10));  // must fire
  }
};
