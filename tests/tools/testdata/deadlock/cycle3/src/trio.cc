// Three-lock cycle where one edge comes from a DJ_REQUIRES contract rather
// than a lexical nesting: Step1 gives a -> b, Step2 gives b -> c, and
// TakeA acquires a while its caller must hold c (c -> a). dj_deadlock must
// report the rank-order violation in TakeA() and a three-node lock-cycle.
#include "util/lock_rank.h"

struct Trio {
  Mutex a_{"trio.a", rank::kA};
  Mutex b_{"trio.b", rank::kB};
  Mutex c_{"trio.c", rank::kC};

  void Step1() {
    MutexLock la(a_);
    MutexLock lb(b_);  // a -> b
  }

  void Step2() {
    MutexLock lb(b_);
    MutexLock lc(c_);  // b -> c
  }

  void TakeA() DJ_REQUIRES(c_) {
    MutexLock la(a_);  // c -> a: downhill, closes the cycle
  }
};
