// Fixture rank table for the `cycle3` dj_deadlock tree.
namespace rank {
inline constexpr int kA = 100;  // trio.a
inline constexpr int kB = 200;  // trio.b
inline constexpr int kC = 300;  // trio.c
}  // namespace rank
