// Fixture rank table for the `cycle2` dj_deadlock tree.
namespace rank {
inline constexpr int kA = 100;  // fixture.a
inline constexpr int kB = 200;  // fixture.b
}  // namespace rank
