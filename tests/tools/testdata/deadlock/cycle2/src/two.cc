// Classic two-lock deadlock: one path takes a then b, the other b then a.
// dj_deadlock must report a rank-order violation in Backward() and a
// two-node lock-cycle.
#include "util/lock_rank.h"

struct Pair {
  Mutex a_{"fixture.a", rank::kA};
  Mutex b_{"fixture.b", rank::kB};

  void Forward() {
    MutexLock la(a_);
    MutexLock lb(b_);  // a -> b, uphill: fine on its own
  }

  void Backward() {
    MutexLock lb(b_);
    MutexLock la(a_);  // b -> a closes the cycle and runs downhill in rank
  }
};
