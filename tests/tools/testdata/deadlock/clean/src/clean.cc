// A tree with correct lock discipline: every acquisition runs uphill in
// rank, the DJ_REQUIRES contract is satisfied at the call site, and the
// condvar wait holds only the mutex it waits on. dj_deadlock must exit 0.
#include "util/lock_rank.h"

struct Clean {
  Mutex low_{"clean.low", rank::kA};
  Mutex high_{"clean.high", rank::kB};
  CondVar cv_;
  bool ready_ = false;

  void Nest() {
    MutexLock lo(low_);
    Touch();              // DJ_REQUIRES(low_) and low_ is held: fine
    MutexLock hi(high_);  // 100 -> 200, uphill: fine
    ready_ = true;
  }

  void Touch() DJ_REQUIRES(low_) { ready_ = true; }

  void Sleep() {
    MutexLock lo(low_);
    while (!ready_) cv_.Wait(low_);  // only the waited lock is held: fine
  }
};
