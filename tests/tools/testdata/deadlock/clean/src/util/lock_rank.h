// Fixture rank table for the `clean` dj_deadlock tree.
namespace rank {
inline constexpr int kA = 100;  // clean.low
inline constexpr int kB = 200;  // clean.high
}  // namespace rank
