// Fixture for dj_lint_test: a serving-layer file whose waits are all
// time-bounded. WaitFor( must not match the untimed-wait-in-serve token
// scan for Wait( — the token boundary is the whole point.
#include "util/mutex.h"

void BoundedDispatcherFixture(deepjoin::CondVar& cv, deepjoin::Mutex& mu) {
  (void)cv.WaitFor(mu, std::chrono::milliseconds(5));
}
