// Fixture for dj_lint_test: fully clean header. Mentions of new,
// std::rand and std::cout live only in comments and string literals,
// which every rule must ignore.
#ifndef DEEPJOIN_CLEAN_H_
#define DEEPJOIN_CLEAN_H_

namespace deepjoin_fixture {

// A brand new candidate set; never admit new candidates after the prefix.
inline const char* Decoys() { return "new std::rand() std::cout printf("; }

// Holding std::mutex across a detach() would be bad, says this comment.
inline const char* MoreDecoys() {
  return "std::mutex std::lock_guard std::condition_variable detach(";
}

/* block comment mentioning time(nullptr) and using namespace */
inline int Answer() { return 42; }

// Comment decoys for simd-intrinsics: immintrin.h _mm256_add_ps __m256.
inline const char* SimdDecoys() { return "_mm_load_ss __m128 __m512"; }

// Comment decoys for adhoc-timing: WallTimer, double encode_ms = 0.
// A timing *accessor* stays legal — only stored fields are banned.
inline double ElapsedTotal_ms() { return 0.0; }

}  // namespace deepjoin_fixture

#endif  // DEEPJOIN_CLEAN_H_
