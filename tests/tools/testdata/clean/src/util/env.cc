// Fixture for dj_lint_test: src/util/env.cc is the one TU allowed to call
// mmap — it implements Env::NewMappedRegion for everything else.
#include <sys/mman.h>

namespace deepjoin_fixture {

inline void* EnvMayMap(int fd, unsigned long len) {
  return ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
}

inline void EnvMayUnmap(void* base, unsigned long len) { ::munmap(base, len); }

}  // namespace deepjoin_fixture
