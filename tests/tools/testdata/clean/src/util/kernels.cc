// Fixture: src/util/kernels.* is the sanctioned home for SIMD — the
// simd-intrinsics rule must stay silent here (lint fixture only; never
// compiled).
#include <immintrin.h>

float KernelDot8(const float* a, const float* b) {
  __m256 va = _mm256_loadu_ps(a);
  __m256 vb = _mm256_loadu_ps(b);
  __m256 p = _mm256_mul_ps(va, vb);
  return _mm256_cvtss_f32(p);
}
