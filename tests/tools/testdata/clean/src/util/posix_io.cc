// Fixture for dj_lint_test: src/util/ is the one place raw file I/O is
// permitted — the Env implementation itself has to touch the filesystem.
#include <fstream>

namespace deepjoin_fixture {

inline int UtilMayTouchFiles() {
  std::ifstream in("somefile");
  return in ? 1 : 0;
}

}  // namespace deepjoin_fixture
