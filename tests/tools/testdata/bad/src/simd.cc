// Fixture: SIMD intrinsics outside src/util/kernels.* must be flagged by
// the simd-intrinsics rule (lint fixture only; never compiled).
#include <immintrin.h>

float SumAvx(const float* a) {
  __m256 acc = _mm256_loadu_ps(a);
  acc = _mm256_add_ps(acc, acc);
  return _mm256_cvtss_f32(acc);
}

// dj_lint: allow(simd-intrinsics)
float Tolerated(const float* a) { __m128 v = _mm_load_ss(a); return v[0]; }
