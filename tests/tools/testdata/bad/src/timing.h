// Fixture for dj_lint_test: ad-hoc timing surfaces in a public header.
#ifndef DEEPJOIN_TIMING_H_
#define DEEPJOIN_TIMING_H_

struct SearchTimings {
  double encode_ms = 0.0;
  double total_ms;
  double mean_ms() const { return total_ms; }
  WallTimer timer_;
};

// dj_lint: allow(adhoc-timing)
double g_suppressed_ms = 0.0;

#endif  // DEEPJOIN_TIMING_H_
