// Fixture for dj_lint_test: every violation below carries an allow
// comment, so this file must never appear in lint output.
#include <cstdlib>

int SuppressedFixture() {
  int* p = new int(1);  // dj_lint: allow(naked-new)
  // dj_lint: allow(nondeterminism)
  int r = std::rand();
  delete p;
  return r;
}
