// Fixture for dj_lint_test: every violation below carries an allow
// comment, so this file must never appear in lint output.
#include <cstdlib>
#include <mutex>
#include <thread>

int SuppressedFixture() {
  int* p = new int(1);  // dj_lint: allow(naked-new)
  // dj_lint: allow(nondeterminism)
  int r = std::rand();
  std::mutex mu;  // dj_lint: allow(raw-mutex)
  // dj_lint: allow(raw-mutex)
  std::lock_guard<std::mutex> guard(mu);
  std::thread runaway([] {});
  runaway.detach();  // dj_lint: allow(detached-thread)
  delete p;
  return r;
}

// dj_lint: allow(raw-file-io)
#include <fstream>

int SuppressedFileIo() {
  std::ifstream in("x");  // dj_lint: allow(raw-file-io)
  return in ? 1 : 0;
}
