// Fixture: sleep-in-library. A sleep in library code is either a poll loop
// (wait on a CondVar condition instead) or a timing assumption (a flake).
#include <chrono>
#include <thread>

void PollForCompletion() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::this_thread::sleep_until(std::chrono::steady_clock::now());
}

void AllowedBackoff() {
  // dj_lint: allow(sleep-in-library)
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
