// Fixture for dj_lint_test: wrong include guard and using-namespace.
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

using namespace std;

#endif  // WRONG_GUARD_H
