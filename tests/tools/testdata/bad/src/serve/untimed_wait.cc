// Fixture for dj_lint_test: untimed waits in the serving layer — every
// dispatcher-side block must be a WaitFor bounded by a request deadline
// or the idle tick (rule: untimed-wait-in-serve).
#include "util/mutex.h"

void DispatcherFixture(deepjoin::CondVar& cv, deepjoin::Mutex& mu) {
  cv.Wait(mu);
  (void)cv.WaitFor(mu, std::chrono::milliseconds(5));
  // dj_lint: allow(untimed-wait-in-serve)
  cv.Wait(mu);
}
