// Fixture for dj_lint_test: raw mmap/munmap outside src/util/env.cc —
// zero-copy mappings must flow through Env::NewMappedRegion so region
// lifetime, bounds checks, and fault injection stay centralised.
#include <sys/mman.h>

void* MappingFixture(int fd, unsigned long len) {
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::munmap(base, len);
  // dj_lint: allow(raw-mmap)
  return ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
}
