// Fixture for dj_lint_test: one banned construct per marked line.
#include <cstdlib>
#include <ctime>
#include <iostream>

int BannedFixture() {
  int* leak = new int(3);
  std::cout << *leak;
  std::srand(static_cast<unsigned>(time(nullptr)));
  return std::rand();
}
