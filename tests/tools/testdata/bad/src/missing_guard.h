// Fixture for dj_lint_test: header with no include guard at all.
#pragma once

inline int MissingGuardFixture() { return 1; }
