// Fixture for dj_lint_test: raw file I/O in library code (src/ outside
// util/) must go through Env / BinaryWriter so fault injection covers it.
#include <cstdio>
#include <fstream>

void FileIoFixture() {
  std::FILE* f = std::fopen("artifact.bin", "wb");
  std::fclose(f);
  std::ofstream out("artifact.bin");
  std::ifstream in("artifact.bin");
}
