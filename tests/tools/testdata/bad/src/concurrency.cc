// Fixture for dj_lint_test: raw concurrency primitives, one violation per
// marked line — real code routes these through src/util/mutex.h wrappers.
#include <condition_variable>
#include <mutex>
#include <thread>

int ConcurrencyFixture() {
  std::mutex mu;
  std::lock_guard<std::mutex> guard(mu);
  std::condition_variable cv;
  std::thread watcher([] {});
  watcher.detach();
  cv.notify_all();
  return 0;
}
