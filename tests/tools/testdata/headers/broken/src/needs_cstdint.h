// Fixture for dj_header_check_test: uses uint32_t and std::string without
// including <cstdint>/<string>, so the single-include TU must fail and the
// report must hint at the missing standard headers.
#ifndef DEEPJOIN_NEEDS_CSTDINT_H_
#define DEEPJOIN_NEEDS_CSTDINT_H_

namespace deepjoin_fixture {

inline uint32_t Hash(const std::string& s) {
  uint32_t h = 2166136261u;
  for (char c : s) h = (h ^ static_cast<uint32_t>(c)) * 16777619u;
  return h;
}

}  // namespace deepjoin_fixture

#endif  // DEEPJOIN_NEEDS_CSTDINT_H_
