// Fixture for dj_header_check_test: deliberately not self-sufficient, but
// opted out via the marker below — the checker must skip it entirely.
// dj_header_check: skip
#ifndef DEEPJOIN_FRAGMENT_H_
#define DEEPJOIN_FRAGMENT_H_

inline uint64_t FragmentOnlyWorksAfterCstdint(uint64_t x) { return x + 1; }

#endif  // DEEPJOIN_FRAGMENT_H_
