// Fixture for dj_header_check_test: includes everything it uses, so the
// single-include TU must compile.
#ifndef DEEPJOIN_SELFSUFFICIENT_H_
#define DEEPJOIN_SELFSUFFICIENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace deepjoin_fixture {

inline uint32_t TotalLength(const std::vector<std::string>& parts) {
  uint32_t total = 0;
  for (const std::string& p : parts) {
    total += static_cast<uint32_t>(p.size());
  }
  return total;
}

}  // namespace deepjoin_fixture

#endif  // DEEPJOIN_SELFSUFFICIENT_H_
