// Self-test for tools/dj_lint.cc: runs the real binary (path injected by
// CMake as DJ_LINT_BIN) over fixture trees in tests/tools/testdata/ and
// asserts each rule fires at the expected file:line, that suppression
// comments silence them, and that a clean tree exits 0. The fixture trees
// live under a directory named "testdata", which the tree-wide lint run
// skips by design.
#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string cmd = std::string(DJ_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << cmd;
  LintRun run;
  if (!pipe) return run;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int rc = pclose(pipe);
  run.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return run;
}

std::string Testdata(const std::string& subdir) {
  return std::string(DJ_LINT_TESTDATA) + "/" + subdir;
}

TEST(DjLintTest, BadTreeReportsEveryRuleAtTheRightLocation) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("src/bad_guard.h:2: error: [include-guard]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("expected `DEEPJOIN_BAD_GUARD_H_`"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/bad_guard.h:5: error: [using-namespace]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/missing_guard.h:1: error: [include-guard]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/banned.cc:7: error: [naked-new]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/banned.cc:8: error: [no-printf]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/banned.cc:9: error: [nondeterminism]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/banned.cc:10: error: [nondeterminism]"),
            std::string::npos)
      << run.output;
}

TEST(DjLintTest, RawMutexAndDetachedThreadFireAtTheRightLocation) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // concurrency.cc: std::mutex (8), std::lock_guard (9),
  // std::condition_variable (10), watcher.detach() (12).
  EXPECT_NE(run.output.find("src/concurrency.cc:8: error: [raw-mutex]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/concurrency.cc:9: error: [raw-mutex]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/concurrency.cc:10: error: [raw-mutex]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(
      run.output.find("src/concurrency.cc:12: error: [detached-thread]"),
      std::string::npos)
      << run.output;
  // std::thread itself is allowed; only detach() is banned.
  EXPECT_EQ(run.output.find("src/concurrency.cc:11:"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, RawFileIoFiresOutsideUtil) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // file_io.cc: #include <fstream> (4), std::fopen (7), std::ofstream (9),
  // std::ifstream (10). fclose on line 8 is fine.
  EXPECT_NE(run.output.find("src/file_io.cc:4: error: [raw-file-io]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/file_io.cc:7: error: [raw-file-io]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/file_io.cc:9: error: [raw-file-io]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/file_io.cc:10: error: [raw-file-io]"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/file_io.cc:8:"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, RawFileIoIsAllowedUnderSrcUtil) {
  // clean/src/util/posix_io.cc uses std::ifstream; CleanTreeExitsZero
  // covers it, but pin the file here for a sharper failure message.
  const LintRun run = RunLint("--root " + Testdata("clean"));
  EXPECT_EQ(run.output.find("posix_io.cc"), std::string::npos) << run.output;
}

TEST(DjLintTest, SimdIntrinsicsFireOutsideKernels) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // simd.cc: #include <immintrin.h> (3), __m256/_mm256_loadu_ps (6),
  // _mm256_add_ps (7), _mm256_cvtss_f32 (8). Line 12 carries a
  // suppression on line 11.
  EXPECT_NE(run.output.find("src/simd.cc:3: error: [simd-intrinsics]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/simd.cc:6: error: [simd-intrinsics]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/simd.cc:7: error: [simd-intrinsics]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/simd.cc:8: error: [simd-intrinsics]"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/simd.cc:12:"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, SimdIntrinsicsAllowedInKernelSources) {
  // clean/src/util/kernels.cc is full of intrinsics; the rule must stay
  // silent there (CleanTreeExitsZero covers it, but pin the file here for
  // a sharper failure message).
  const LintRun run = RunLint("--root " + Testdata("clean"));
  EXPECT_EQ(run.output.find("kernels.cc"), std::string::npos) << run.output;
}

TEST(DjLintTest, AdhocTimingFiresInPublicHeaders) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // timing.h: encode_ms field (6), total_ms field (7), WallTimer member
  // (9). The accessor on line 8 and the suppressed field on line 13 must
  // stay silent.
  EXPECT_NE(run.output.find("src/timing.h:6: error: [adhoc-timing]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/timing.h:7: error: [adhoc-timing]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/timing.h:9: error: [adhoc-timing]"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/timing.h:8:"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/timing.h:13:"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, SleepInLibraryFiresAndSuppresses) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // sleeping.cc: sleep_for (7), sleep_until (8). The backoff on line 13
  // carries a suppression on line 12 and must stay silent.
  EXPECT_NE(run.output.find("src/sleeping.cc:7: error: [sleep-in-library]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/sleeping.cc:8: error: [sleep-in-library]"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/sleeping.cc:13:"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, UntimedWaitFiresOnlyInServe) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // serve/untimed_wait.cc: cv.Wait on line 7 fires; the WaitFor on line 8
  // is bounded and must stay silent (token-boundary match, not substring);
  // line 10 carries a suppression on line 9.
  EXPECT_NE(
      run.output.find(
          "src/serve/untimed_wait.cc:7: error: [untimed-wait-in-serve]"),
      std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("untimed_wait.cc:8:"), std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("untimed_wait.cc:10:"), std::string::npos)
      << run.output;
  // The rule is scoped to src/serve/: identical Wait( calls elsewhere in
  // the bad tree must not carry this rule's tag.
  EXPECT_EQ(run.output.find("concurrency.cc:8: error: [untimed-wait-in-serve]"),
            std::string::npos)
      << run.output;
}

TEST(DjLintTest, BoundedWaitInServeStaysClean) {
  // clean/src/serve/bounded_wait.cc uses WaitFor only; CleanTreeExitsZero
  // covers it, but pin the file here for a sharper failure message.
  const LintRun run = RunLint("--root " + Testdata("clean"));
  EXPECT_EQ(run.output.find("bounded_wait.cc"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, RawMmapFiresOutsideEnvImpl) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // mapping.cc: #include <sys/mman.h> (4), ::mmap (7), ::munmap (8). The
  // call on line 10 carries a suppression on line 9 and must stay silent.
  EXPECT_NE(run.output.find("src/mapping.cc:4: error: [raw-mmap]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/mapping.cc:7: error: [raw-mmap]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/mapping.cc:8: error: [raw-mmap]"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("src/mapping.cc:10:"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, RawMmapAllowedInEnvImpl) {
  // clean/src/util/env.cc calls mmap and munmap; the rule must stay
  // silent there (CleanTreeExitsZero covers it, but pin the file here for
  // a sharper failure message).
  const LintRun run = RunLint("--root " + Testdata("clean"));
  EXPECT_EQ(run.output.find("env.cc"), std::string::npos) << run.output;
}

TEST(DjLintTest, SuppressionCommentsSilenceRules) {
  const LintRun run = RunLint("--root " + Testdata("bad"));
  // suppressed.cc holds the same violations as banned.cc, each carrying a
  // `dj_lint: allow(<rule>)` on the line or the line above.
  EXPECT_EQ(run.output.find("suppressed.cc"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, CleanTreeExitsZero) {
  const LintRun run = RunLint("--root " + Testdata("clean"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("dj_lint: clean"), std::string::npos)
      << run.output;
}

TEST(DjLintTest, CommentAndStringDecoysDoNotFire) {
  // clean.h deliberately mentions every banned token inside comments and
  // string literals; any hit would fail CleanTreeExitsZero, but pin the
  // specific file here for a sharper failure message.
  const LintRun run = RunLint("--root " + Testdata("clean"));
  EXPECT_EQ(run.output.find("clean.h:"), std::string::npos) << run.output;
}

TEST(DjLintTest, ListRulesDocumentsEveryRule) {
  const LintRun run = RunLint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule : {"include-guard", "using-namespace",
                           "nondeterminism", "naked-new", "no-printf",
                           "raw-mutex", "detached-thread", "raw-file-io",
                           "simd-intrinsics", "adhoc-timing",
                           "sleep-in-library", "untimed-wait-in-serve"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << rule;
  }
}

TEST(DjLintTest, RealTreeIsClean) {
  // The same invocation ctest registers as dj_lint_tree; duplicated here so
  // a violation shows up with full output in the gtest log too.
  const LintRun run = RunLint("--root " + std::string(DJ_SOURCE_ROOT));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
