#include "nn/mlp.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"

namespace deepjoin {
namespace nn {
namespace {

TEST(MlpTest, EmbedHasHiddenDim) {
  MlpConfig c;
  c.input_dim = 8;
  c.hidden_dim = 16;
  MlpRegressor mlp(c);
  std::vector<float> in(8, 0.5f);
  EXPECT_EQ(mlp.Embed(in).size(), 16u);
}

TEST(MlpTest, DeterministicForSeed) {
  MlpConfig c;
  c.input_dim = 4;
  c.hidden_dim = 8;
  MlpRegressor a(c), b(c);
  std::vector<float> in = {0.1f, -0.3f, 0.7f, 0.0f};
  EXPECT_EQ(a.Embed(in), b.Embed(in));
}

TEST(MlpTest, LearnsASimpleRegression) {
  // Target: jn = 1 when x == y (same 2-hot pattern), 0 otherwise.
  MlpConfig c;
  c.input_dim = 6;
  c.hidden_dim = 12;
  MlpRegressor mlp(c);
  AdamConfig ac;
  ac.lr = 5e-3;
  ac.weight_decay = 0.0;
  AdamW opt(mlp.params().params(), ac);
  Rng rng(1);

  auto one_hot = [](int i) {
    Matrix m(1, 6);
    m.at(0, i) = 1.0f;
    return m;
  };

  double first = 0, last = 0;
  for (int step = 0; step < 200; ++step) {
    Matrix x(4, 6), y(4, 6), t(4, 1);
    for (int b = 0; b < 4; ++b) {
      const int i = static_cast<int>(rng.UniformU64(6));
      const int j = (b % 2 == 0) ? i : static_cast<int>(rng.UniformU64(6));
      Matrix xi = one_hot(i), yj = one_hot(j);
      std::copy(xi.data(), xi.data() + 6, x.row(b));
      std::copy(yj.data(), yj.data() + 6, y.row(b));
      t.at(b, 0) = (i == j) ? 1.0f : 0.0f;
    }
    auto pred = mlp.PredictJoinability(MakeVar(std::move(x)),
                                       MakeVar(std::move(y)));
    auto loss = MseLoss(pred, t);
    if (step == 0) first = loss->value().at(0, 0);
    last = loss->value().at(0, 0);
    Backward(loss);
    opt.Step(1.0);
    mlp.params().ZeroGrads();
  }
  EXPECT_LT(last, first * 0.8);
}

TEST(MlpTest, TowerIsSharedBetweenSides) {
  // Identical inputs to both towers must give identical tower outputs
  // (it's one network applied twice).
  MlpConfig c;
  c.input_dim = 4;
  c.hidden_dim = 8;
  MlpRegressor mlp(c);
  Matrix x(2, 4);
  x.Fill(0.3f);
  auto vx = MakeVar(x);
  auto hx = mlp.Tower(vx);
  auto hy = mlp.Tower(vx);
  for (size_t i = 0; i < hx->value().size(); ++i) {
    EXPECT_FLOAT_EQ(hx->value().data()[i], hy->value().data()[i]);
  }
}

}  // namespace
}  // namespace nn
}  // namespace deepjoin
