#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace deepjoin {
namespace nn {
namespace {

TEST(OptimizerTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2 ; AdamW should converge near 3.
  Matrix init(1, 1);
  init.at(0, 0) = 0.0f;
  auto x = MakeVar(init, true);
  AdamConfig c;
  c.lr = 0.1;
  c.weight_decay = 0.0;
  AdamW opt({x}, c);
  for (int i = 0; i < 300; ++i) {
    x->ZeroGrad();
    x->grad().at(0, 0) = 2.0f * (x->value().at(0, 0) - 3.0f);
    opt.Step(1.0);
  }
  EXPECT_NEAR(x->value().at(0, 0), 3.0f, 0.05);
}

TEST(OptimizerTest, WeightDecayShrinksParameters) {
  Matrix init(1, 1);
  init.at(0, 0) = 1.0f;
  auto x = MakeVar(init, true);
  AdamConfig c;
  c.lr = 0.01;
  c.weight_decay = 0.5;
  AdamW opt({x}, c);
  for (int i = 0; i < 100; ++i) {
    x->ZeroGrad();
    x->grad();  // allocate; zero gradient -> only decay acts
    opt.Step(1.0);
  }
  EXPECT_LT(std::abs(x->value().at(0, 0)), 1.0f);
}

TEST(OptimizerTest, GradientClippingBoundsUpdates) {
  Matrix init(1, 1);
  auto x = MakeVar(init, true);
  AdamConfig c;
  c.lr = 0.1;
  c.weight_decay = 0.0;
  c.clip_norm = 1.0;
  AdamW opt({x}, c);
  x->grad().at(0, 0) = 1e6f;  // exploding gradient
  opt.Step(1.0);
  // Adam's per-step update magnitude is <= lr / (1 - eps-ish); clipped
  // gradients keep the moments finite and the step sane.
  EXPECT_LT(std::abs(x->value().at(0, 0)), 0.5f);
  EXPECT_TRUE(std::isfinite(x->value().at(0, 0)));
}

TEST(OptimizerTest, GradNormComputed) {
  Matrix init(1, 2);
  auto x = MakeVar(init, true);
  x->grad().at(0, 0) = 3.0f;
  x->grad().at(0, 1) = 4.0f;
  AdamW opt({x}, AdamConfig{});
  EXPECT_NEAR(opt.GradNorm(), 5.0, 1e-6);
}

TEST(WarmupLinearTest, RampsUpThenDecays) {
  EXPECT_NEAR(WarmupLinearFactor(0, 10, 100), 0.1, 1e-9);
  EXPECT_NEAR(WarmupLinearFactor(9, 10, 100), 1.0, 1e-9);
  EXPECT_NEAR(WarmupLinearFactor(10, 10, 100), 1.0, 1e-9);
  EXPECT_NEAR(WarmupLinearFactor(55, 10, 100), 0.5, 1e-9);
  EXPECT_NEAR(WarmupLinearFactor(100, 10, 100), 0.0, 1e-9);
}

TEST(WarmupLinearTest, NoWarmupEdgeCases) {
  EXPECT_NEAR(WarmupLinearFactor(0, 0, 10), 1.0, 1e-9);
  EXPECT_NEAR(WarmupLinearFactor(5, 0, 10), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(WarmupLinearFactor(3, 0, 0), 1.0);
}

}  // namespace
}  // namespace nn
}  // namespace deepjoin
