#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace deepjoin {
namespace nn {
namespace {

VarPtr RowVec(std::vector<float> v) {
  Matrix m(1, static_cast<int>(v.size()));
  for (size_t i = 0; i < v.size(); ++i) m.at(0, static_cast<int>(i)) = v[i];
  return MakeVar(std::move(m), true);
}

TEST(LossTest, PerfectAlignmentGivesLowLoss) {
  // x_i == y_i and orthogonal across pairs: diagonal dominates.
  auto x1 = RowVec({1, 0, 0});
  auto x2 = RowVec({0, 1, 0});
  auto loss_good =
      MultipleNegativesRankingLoss({x1, x2}, {RowVec({1, 0, 0}),
                                              RowVec({0, 1, 0})});
  auto loss_bad =
      MultipleNegativesRankingLoss({x1, x2}, {RowVec({0, 1, 0}),
                                              RowVec({1, 0, 0})});
  EXPECT_LT(loss_good->value().at(0, 0), loss_bad->value().at(0, 0));
  EXPECT_LT(loss_good->value().at(0, 0), 0.01);
}

TEST(LossTest, LossIsFiniteAndPositive) {
  auto loss = MultipleNegativesRankingLoss(
      {RowVec({0.3f, -0.2f}), RowVec({-0.1f, 0.9f})},
      {RowVec({0.5f, 0.5f}), RowVec({-0.6f, 0.1f})});
  const float v = loss->value().at(0, 0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0f);
}

TEST(LossTest, GradientFlowsToBothSides) {
  auto x = RowVec({0.3f, -0.2f});
  auto y = RowVec({0.5f, 0.5f});
  auto x2 = RowVec({-0.1f, 0.9f});
  auto y2 = RowVec({-0.6f, 0.1f});
  auto loss = MultipleNegativesRankingLoss({x, x2}, {y, y2});
  Backward(loss);
  double gx = 0, gy = 0;
  for (int i = 0; i < 2; ++i) {
    gx += std::abs(x->grad().at(0, i));
    gy += std::abs(y->grad().at(0, i));
  }
  EXPECT_GT(gx, 0.0);
  EXPECT_GT(gy, 0.0);
}

TEST(LossTest, ScaleSharpensSoftmax) {
  auto make = [&](float scale) {
    return MultipleNegativesRankingLoss(
               {RowVec({1, 0.1f}), RowVec({0.1f, 1})},
               {RowVec({1, 0}), RowVec({0, 1})}, scale)
        ->value()
        .at(0, 0);
  };
  EXPECT_LT(make(20.0f), make(1.0f));
}

TEST(LossTest, SingletonBatchIsZeroLoss) {
  // One pair, no negatives: softmax over a single score -> -log(1) = 0.
  auto loss = MultipleNegativesRankingLoss({RowVec({1, 0})},
                                           {RowVec({0.5f, 0.5f})});
  EXPECT_NEAR(loss->value().at(0, 0), 0.0f, 1e-6);
}

}  // namespace
}  // namespace nn
}  // namespace deepjoin
