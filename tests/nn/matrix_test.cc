#include "nn/matrix.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace nn {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  m.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
}

TEST(MatrixTest, ZeroAndFill) {
  Matrix m(2, 2);
  m.Fill(3.0f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 3.0f);
  m.Zero();
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
}

TEST(MatrixTest, MatMulAccumAgainstHand) {
  Matrix a(2, 3), b(3, 2), c(2, 2);
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  MatMulAccum(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatrixTest, MatMulVariantsAgree) {
  Rng rng(3);
  Matrix a(4, 5), b(5, 3);
  a.RandomNormal(rng, 1.0);
  b.RandomNormal(rng, 1.0);
  Matrix expected(4, 3);
  MatMulAccum(a, b, expected);

  // A @ B == A @ (B^T)^T via MatMulNT.
  Matrix bt(3, 5);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 3; ++c) bt.at(c, r) = b.at(r, c);
  }
  Matrix got_nt(4, 3);
  MatMulNTAccum(a, bt, got_nt);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got_nt.data()[i], expected.data()[i], 1e-4);
  }

  // A @ B == (A^T)^T @ B via MatMulTN.
  Matrix at(5, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 5; ++c) at.at(c, r) = a.at(r, c);
  }
  Matrix got_tn(4, 3);
  MatMulTNAccum(at, b, got_tn);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got_tn.data()[i], expected.data()[i], 1e-4);
  }
}

TEST(MatrixTest, MatMulAccumulates) {
  Matrix a(1, 1), b(1, 1), c(1, 1);
  a.at(0, 0) = 2;
  b.at(0, 0) = 3;
  c.at(0, 0) = 10;
  MatMulAccum(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 16.0f);
}

TEST(MatrixTest, AddTo) {
  Matrix a(2, 2), b(2, 2);
  a.Fill(1.0f);
  b.Fill(2.0f);
  a.AddTo(b);
  EXPECT_FLOAT_EQ(b.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);
}

TEST(MatrixTest, RandomNormalIsSeeded) {
  Rng r1(9), r2(9);
  Matrix a(3, 3), b(3, 3);
  a.RandomNormal(r1, 0.5);
  b.RandomNormal(r2, 0.5);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace nn
}  // namespace deepjoin
