#include "nn/transformer.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace deepjoin {
namespace nn {
namespace {

TransformerConfig SmallConfig(PositionMode mode) {
  TransformerConfig c;
  c.vocab_size = 50;
  c.d_model = 16;
  c.num_layers = 2;
  c.num_heads = 2;
  c.d_ff = 32;
  c.max_seq_len = 12;
  c.position_mode = mode;
  c.rel_radius = 4;
  return c;
}

TEST(TransformerTest, OutputShapeAndDeterminism) {
  TransformerEncoder enc(SmallConfig(PositionMode::kAbsolute));
  const std::vector<u32> ids = {1, 5, 9, 4};
  auto a = enc.EncodeToVector(ids);
  auto b = enc.EncodeToVector(ids);
  ASSERT_EQ(a.size(), 16u);
  EXPECT_EQ(a, b);
}

TEST(TransformerTest, DifferentInputsGiveDifferentEmbeddings) {
  TransformerEncoder enc(SmallConfig(PositionMode::kAbsolute));
  auto a = enc.EncodeToVector({1, 5, 9});
  auto b = enc.EncodeToVector({2, 6, 10});
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-4);
}

TEST(TransformerTest, TruncatesOverlongSequences) {
  TransformerEncoder enc(SmallConfig(PositionMode::kAbsolute));
  std::vector<u32> long_ids(40, 7);
  std::vector<u32> truncated(long_ids.begin(), long_ids.begin() + 12);
  EXPECT_EQ(enc.EncodeToVector(long_ids), enc.EncodeToVector(truncated));
}

TEST(TransformerTest, AbsolutePositionsAreOrderSensitive) {
  TransformerEncoder enc(SmallConfig(PositionMode::kAbsolute));
  auto a = enc.EncodeToVector({3, 4, 5, 6});
  auto b = enc.EncodeToVector({6, 5, 4, 3});
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-5);
}

TEST(TransformerTest, RelativeBiasModeWorks) {
  TransformerEncoder enc(SmallConfig(PositionMode::kRelativeBias));
  auto a = enc.EncodeToVector({3, 4, 5, 6});
  EXPECT_EQ(a.size(), 16u);
  for (float v : a) EXPECT_TRUE(std::isfinite(v));
}

TEST(TransformerTest, InitTokenEmbeddingIsUsed) {
  TransformerEncoder enc(SmallConfig(PositionMode::kAbsolute));
  auto before = enc.EncodeToVector({7});
  std::vector<float> v(16, 0.5f);
  enc.InitTokenEmbedding(7, v);
  auto after = enc.EncodeToVector({7});
  EXPECT_NE(before, after);
}

TEST(TransformerTest, ContrastiveTrainingSeparatesPairs) {
  // Two "topics": token sets {10..14} and {30..34}. Positives pair
  // sequences of the same topic; after a few steps, same-topic cosine
  // should exceed cross-topic cosine.
  TransformerEncoder enc(SmallConfig(PositionMode::kRelativeBias));
  AdamConfig ac;
  ac.lr = 3e-3;
  AdamW opt(enc.params().params(), ac);

  auto topic_seq = [](u32 base, u32 shift) {
    return std::vector<u32>{base + shift, base + (shift + 1) % 5,
                            base + (shift + 2) % 5};
  };
  for (int step = 0; step < 30; ++step) {
    std::vector<VarPtr> xs, ys;
    for (u32 s = 0; s < 4; ++s) {
      const u32 base = (s % 2 == 0) ? 10 : 30;
      xs.push_back(enc.Encode(topic_seq(base, s)));
      ys.push_back(enc.Encode(topic_seq(base, s + 1)));
    }
    auto loss = MultipleNegativesRankingLoss(xs, ys, 10.0f);
    Backward(loss);
    opt.Step(1.0);
    enc.params().ZeroGrads();
  }
  auto cosine = [](const std::vector<float>& a, const std::vector<float>& b) {
    double dot = 0, na = 0, nb = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      dot += a[i] * b[i];
      na += a[i] * a[i];
      nb += b[i] * b[i];
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
  };
  auto a1 = enc.EncodeToVector({10, 11, 12});
  auto a2 = enc.EncodeToVector({12, 13, 14});
  auto b1 = enc.EncodeToVector({30, 31, 32});
  EXPECT_GT(cosine(a1, a2), cosine(a1, b1));
}

TEST(TransformerTest, ParamStoreCountsScalars) {
  TransformerEncoder enc(SmallConfig(PositionMode::kAbsolute));
  EXPECT_GT(enc.params().NumScalars(), 1000u);
  EXPECT_EQ(enc.params().params().size(), enc.params().names().size());
}

}  // namespace
}  // namespace nn
}  // namespace deepjoin
