// Numerical gradient checks for every autograd op: perturb each input
// scalar, compare (f(x+h) - f(x-h)) / 2h against the backward pass.
#include "nn/autograd.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace deepjoin {
namespace nn {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng& rng, double scale = 0.5) {
  Matrix m(rows, cols);
  m.RandomNormal(rng, scale);
  return m;
}

/// Reduces any node to a scalar by a fixed weighted sum, so we can check
/// ops whose output is not 1x1. Weights are deterministic but non-uniform
/// to catch transposed/misplaced gradients.
VarPtr WeightedSum(const VarPtr& x) {
  Matrix w(x->cols(), 1);
  for (int r = 0; r < x->cols(); ++r) {
    w.at(r, 0) = 0.3f + 0.1f * static_cast<float>(r % 7);
  }
  Matrix v(1, x->rows());
  for (int c = 0; c < x->rows(); ++c) {
    v.at(0, c) = 0.5f + 0.07f * static_cast<float>(c % 5);
  }
  auto wv = MakeVar(std::move(w));
  auto vv = MakeVar(std::move(v));
  return MatMul(vv, MatMul(x, wv));  // [1,1]
}

/// Checks d(scalar fn(inputs))/d(inputs[i]) for all entries of all inputs.
void CheckGradients(
    const std::vector<Matrix>& inputs,
    const std::function<VarPtr(const std::vector<VarPtr>&)>& fn,
    double tol = 2e-2, double h = 1e-3) {
  // Analytic gradients.
  std::vector<VarPtr> vars;
  for (const auto& m : inputs) vars.push_back(MakeVar(m, true));
  VarPtr out = fn(vars);
  ASSERT_EQ(out->rows(), 1);
  ASSERT_EQ(out->cols(), 1);
  Backward(out);

  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    for (size_t i = 0; i < inputs[vi].size(); ++i) {
      auto eval_at = [&](double delta) {
        std::vector<VarPtr> probe;
        for (size_t j = 0; j < inputs.size(); ++j) {
          Matrix m = inputs[j];
          if (j == vi) {
            m.data()[i] = static_cast<float>(m.data()[i] + delta);
          }
          probe.push_back(MakeVar(std::move(m), false));
        }
        return static_cast<double>(fn(probe)->value().at(0, 0));
      };
      const double numeric = (eval_at(h) - eval_at(-h)) / (2.0 * h);
      const double analytic = vars[vi]->grad().data()[i];
      const double denom = std::max(1.0, std::abs(numeric));
      EXPECT_NEAR(analytic, numeric, tol * denom)
          << "input " << vi << " index " << i;
    }
  }
}

TEST(AutogradTest, MatMulGradients) {
  Rng rng(1);
  CheckGradients({RandomMatrix(3, 4, rng), RandomMatrix(4, 2, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(MatMul(v[0], v[1]));
                 });
}

TEST(AutogradTest, MatMulNTGradients) {
  Rng rng(2);
  CheckGradients({RandomMatrix(3, 4, rng), RandomMatrix(5, 4, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(MatMulNT(v[0], v[1]));
                 });
}

TEST(AutogradTest, AddAndScaleGradients) {
  Rng rng(3);
  CheckGradients({RandomMatrix(3, 3, rng), RandomMatrix(3, 3, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(Scale(Add(v[0], v[1]), 1.7f));
                 });
}

TEST(AutogradTest, AddRowVectorGradients) {
  Rng rng(4);
  CheckGradients({RandomMatrix(4, 3, rng), RandomMatrix(1, 3, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(AddRowVector(v[0], v[1]));
                 });
}

TEST(AutogradTest, MulGradients) {
  Rng rng(5);
  CheckGradients({RandomMatrix(3, 3, rng), RandomMatrix(3, 3, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(Mul(v[0], v[1]));
                 });
}

TEST(AutogradTest, RowSoftmaxGradients) {
  Rng rng(6);
  CheckGradients({RandomMatrix(3, 5, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(RowSoftmax(v[0], nullptr));
                 });
}

TEST(AutogradTest, LayerNormGradients) {
  Rng rng(7);
  CheckGradients(
      {RandomMatrix(3, 6, rng), RandomMatrix(1, 6, rng),
       RandomMatrix(1, 6, rng)},
      [](const std::vector<VarPtr>& v) {
        return WeightedSum(LayerNormRows(v[0], v[1], v[2]));
      },
      /*tol=*/4e-2);
}

TEST(AutogradTest, GeluGradients) {
  Rng rng(8);
  CheckGradients({RandomMatrix(3, 4, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(Gelu(v[0]));
                 });
}

TEST(AutogradTest, ReluAndTanhGradients) {
  Rng rng(9);
  CheckGradients({RandomMatrix(3, 4, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(Tanh(Relu(v[0])));
                 });
}

TEST(AutogradTest, EmbeddingGatherGradients) {
  Rng rng(10);
  const std::vector<u32> ids = {2, 0, 2, 1};
  CheckGradients({RandomMatrix(4, 3, rng)},
                 [&ids](const std::vector<VarPtr>& v) {
                   return WeightedSum(EmbeddingGather(v[0], ids));
                 });
}

TEST(AutogradTest, MaskedMeanPoolGradients) {
  Rng rng(11);
  CheckGradients({RandomMatrix(5, 3, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(MaskedMeanPool(v[0], 3));
                 });
}

TEST(AutogradTest, SliceAndConcatColsGradients) {
  Rng rng(12);
  CheckGradients({RandomMatrix(3, 6, rng)},
                 [](const std::vector<VarPtr>& v) {
                   auto a = SliceCols(v[0], 0, 2);
                   auto b = SliceCols(v[0], 2, 4);
                   return WeightedSum(ConcatCols({b, a}));
                 });
}

TEST(AutogradTest, ConcatRowsGradients) {
  Rng rng(13);
  CheckGradients({RandomMatrix(1, 4, rng), RandomMatrix(1, 4, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(ConcatRows({v[0], v[1]}));
                 });
}

TEST(AutogradTest, RowL2NormalizeGradients) {
  Rng rng(14);
  CheckGradients({RandomMatrix(3, 4, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(RowL2Normalize(v[0]));
                 });
}

TEST(AutogradTest, AddRelPosBiasGradients) {
  Rng rng(15);
  CheckGradients({RandomMatrix(4, 4, rng), RandomMatrix(1, 7, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return WeightedSum(AddRelPosBias(v[0], v[1]));
                 });
}

TEST(AutogradTest, SoftmaxCrossEntropyDiagonalGradients) {
  Rng rng(16);
  CheckGradients({RandomMatrix(4, 4, rng)},
                 [](const std::vector<VarPtr>& v) {
                   return SoftmaxCrossEntropyDiagonal(v[0]);
                 });
}

TEST(AutogradTest, SoftmaxCrossEntropyIndexGradients) {
  Rng rng(17);
  const std::vector<u32> targets = {1, 3, 0};
  CheckGradients({RandomMatrix(3, 5, rng)},
                 [&targets](const std::vector<VarPtr>& v) {
                   return SoftmaxCrossEntropyIndex(v[0], targets);
                 });
}

TEST(AutogradTest, MseLossGradients) {
  Rng rng(18);
  Matrix target(4, 1);
  target.RandomNormal(rng, 1.0);
  CheckGradients({RandomMatrix(4, 1, rng)},
                 [&target](const std::vector<VarPtr>& v) {
                   return MseLoss(v[0], target);
                 });
}

TEST(AutogradTest, SharedSubgraphAccumulatesGradients) {
  // y = x + x should give dL/dx = 2 * upstream.
  Matrix m(1, 1);
  m.at(0, 0) = 3.0f;
  auto x = MakeVar(m, true);
  auto y = Add(x, x);
  Backward(y);
  EXPECT_FLOAT_EQ(x->grad().at(0, 0), 2.0f);
}

TEST(AutogradTest, NoGradModeBuildsNoGraph) {
  Matrix m(2, 2);
  m.Fill(1.0f);
  auto x = MakeVar(m, true);
  NoGradGuard guard;
  auto y = Add(x, x);
  EXPECT_FALSE(y->requires_grad());
  EXPECT_TRUE(y->parents.empty());
}

TEST(AutogradTest, RowSoftmaxWithMaskZeroesMaskedColumns) {
  Matrix m(1, 3);
  m.Fill(0.0f);
  Matrix mask(1, 3);
  mask.at(0, 2) = -1e9f;
  auto x = MakeVar(m, false);
  auto y = RowSoftmax(x, &mask);
  EXPECT_NEAR(y->value().at(0, 0), 0.5, 1e-5);
  EXPECT_NEAR(y->value().at(0, 1), 0.5, 1e-5);
  EXPECT_NEAR(y->value().at(0, 2), 0.0, 1e-6);
}

}  // namespace
}  // namespace nn
}  // namespace deepjoin
