// Corruption torture: a saved encoder and a saved HNSW index are mangled
// exhaustively — truncated at EVERY byte offset, and with one byte flipped
// per 64-byte stride — and every load must come back as a non-OK Status.
// No abort, no crash, no over-allocation: the CRC32C record framing and
// bounded reads (util/binary_io.h) are what this leans on. Runs in the
// ASan/UBSan legs of tools/check.sh under the `fault` ctest label.
#include <unistd.h>

#include <fstream>
#include <functional>

#include <gtest/gtest.h>

#include "core/model_io.h"
#include "core/searcher.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class CorruptionTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(1234));
    sample_ = gen.GenerateQueries(12, 0x51);
    FastTextConfig fc;
    fc.dim = 8;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    // Per-test filenames: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    encoder_path_ =
        std::string(::testing::TempDir()) + "/torture_encoder_" + tag + ".bin";
    index_path_ =
        std::string(::testing::TempDir()) + "/torture_index_" + tag + ".bin";
  }
  void TearDown() override {
    std::remove(encoder_path_.c_str());
    std::remove(index_path_.c_str());
  }

  static std::string ReadAll(const std::string& path) {
    std::string contents;
    Status st = ReadFileToString(Env::Default(), path, &contents);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return contents;
  }

  static void WriteAll(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<long>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  /// Truncates `path` at every offset from size-1 down to 0; `load` must
  /// fail at each one. Restores the original bytes afterwards.
  void TruncationTorture(const std::string& path, const std::string& baseline,
                         const std::function<bool()>& load) {
    for (size_t t = baseline.size(); t-- > 0;) {
      ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(t)), 0);
      ASSERT_FALSE(load()) << "file truncated at offset " << t
                           << " loaded successfully";
    }
    WriteAll(path, baseline);
  }

  /// Flips one byte per 64-byte stride (all 8 bits of it); `load` must fail
  /// for each flip. Restores the byte after every probe.
  void BitFlipTorture(const std::string& path, const std::string& baseline,
                      const std::function<bool()>& load) {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    for (size_t i = 0; i < baseline.size(); i += 64) {
      file.seekp(static_cast<long>(i));
      file.put(static_cast<char>(baseline[i] ^ '\xFF'));
      file.flush();
      ASSERT_FALSE(load()) << "file with byte " << i
                           << " flipped loaded successfully";
      file.seekp(static_cast<long>(i));
      file.put(baseline[i]);
      file.flush();
    }
  }

  std::vector<lake::Column> sample_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::string encoder_path_;
  std::string index_path_;
};

TEST_F(CorruptionTortureTest, EncoderSurvivesTruncationAndBitRot) {
  PlmEncoderConfig pc;
  pc.kind = PlmKind::kDistilSim;
  pc.max_seq_len = 16;
  pc.max_words = 60;
  pc.oov_buckets = 16;
  pc.transform.cell_budget = 8;
  PlmColumnEncoder encoder(pc, sample_, *embedder_);
  ASSERT_TRUE(SaveEncoder(encoder, encoder_path_).ok());
  const std::string baseline = ReadAll(encoder_path_);
  ASSERT_FALSE(baseline.empty());

  const auto load = [this] { return LoadEncoder(encoder_path_).ok(); };
  ASSERT_TRUE(load()) << "pristine artifact must load";

  TruncationTorture(encoder_path_, baseline, load);
  ASSERT_TRUE(load()) << "restored artifact must load";
  BitFlipTorture(encoder_path_, baseline, load);
  ASSERT_TRUE(load()) << "artifact must survive the torture unscathed";
}

TEST_F(CorruptionTortureTest, IndexSurvivesTruncationAndBitRot) {
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(4321));
  lake::Repository repo = gen.GenerateRepository(40);
  FastTextColumnEncoder encoder(embedder_.get(), TransformConfig{});
  SearcherConfig sc;
  sc.hnsw_M = 4;
  sc.hnsw_ef_construction = 24;
  EmbeddingSearcher searcher(&encoder, sc);
  ASSERT_TRUE(searcher.BuildIndex(repo).ok());
  ASSERT_TRUE(searcher.SaveIndex(index_path_).ok());
  const std::string baseline = ReadAll(index_path_);
  ASSERT_FALSE(baseline.empty());

  const auto load = [this, &encoder, &sc] {
    SearcherConfig fresh_config = sc;
    EmbeddingSearcher fresh(&encoder, fresh_config);
    return fresh.LoadIndex(index_path_).ok();
  };
  ASSERT_TRUE(load()) << "pristine artifact must load";

  TruncationTorture(index_path_, baseline, load);
  ASSERT_TRUE(load()) << "restored artifact must load";
  BitFlipTorture(index_path_, baseline, load);
  ASSERT_TRUE(load()) << "artifact must survive the torture unscathed";
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
