// Fault-injection proof of the atomic-save protocol (tmp + flush + fsync +
// rename): for EVERY injectable failure point in an encoder or index save —
// each write (clean and torn), each fsync, each rename, each open — the
// save must report a non-OK Status, leave no tmp file behind, and leave the
// previous artifact byte-identical and loadable.
#include <gtest/gtest.h>

#include "core/model_io.h"
#include "core/searcher.h"
#include "lake/generator.h"

namespace deepjoin {
namespace core {
namespace {

class AtomicSaveFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(2020));
    sample_ = gen.GenerateQueries(12, 0x2A);
    FastTextConfig fc;
    fc.dim = 8;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    path_ = std::string(::testing::TempDir()) + "/fault_artifact_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override {
    Env* env = Env::Default();
    if (env->FileExists(path_)) env->RemoveFile(path_).IgnoreError();
    const std::string tmp = path_ + ".tmp";
    if (env->FileExists(tmp)) env->RemoveFile(tmp).IgnoreError();
  }

  PlmEncoderConfig SmallConfig(int cell_budget) {
    PlmEncoderConfig pc;
    pc.kind = PlmKind::kDistilSim;
    pc.max_seq_len = 16;
    pc.max_words = 60;   // keeps the vocabulary (and write count) small
    pc.oov_buckets = 16;
    pc.transform.cell_budget = cell_budget;
    return pc;
  }

  /// Asserts `path_` still holds exactly `baseline` and no tmp file exists.
  void ExpectArtifactIntact(const std::string& baseline,
                            const std::string& context) {
    std::string now;
    ASSERT_TRUE(ReadFileToString(Env::Default(), path_, &now).ok())
        << context;
    ASSERT_EQ(now, baseline) << "artifact changed under " << context;
    ASSERT_FALSE(Env::Default()->FileExists(path_ + ".tmp"))
        << "tmp file leaked under " << context;
  }

  std::vector<lake::Column> sample_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::string path_;
};

TEST_F(AtomicSaveFaultTest, EncoderSaveSurvivesEveryInjectedFailure) {
  PlmColumnEncoder previous(SmallConfig(8), sample_, *embedder_);
  PlmColumnEncoder next(SmallConfig(10), sample_, *embedder_);

  // Previous artifact on disk; its bytes are the invariant.
  ASSERT_TRUE(SaveEncoder(previous, path_).ok());
  std::string baseline;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path_, &baseline).ok());

  // Count the save's operations with an all-disabled plan.
  FaultInjectionEnv counter_env(Env::Default());
  ASSERT_TRUE(SaveEncoder(next, path_, &counter_env).ok());
  const FaultCounters totals = counter_env.counters();
  ASSERT_GT(totals.writes, 0);
  ASSERT_GT(totals.syncs, 0);
  ASSERT_GT(totals.renames, 0);
  ASSERT_GT(totals.opens, 0);

  // Restore the previous artifact, then enumerate every failure point.
  ASSERT_TRUE(SaveEncoder(previous, path_).ok());
  ASSERT_TRUE(ReadFileToString(Env::Default(), path_, &baseline).ok());

  for (i64 w = 0; w < totals.writes; ++w) {
    for (const bool torn : {false, true}) {
      FaultInjectionEnv fenv(Env::Default());
      fenv.plan().fail_write_index = w;
      fenv.plan().short_write = torn;
      const Status st = SaveEncoder(next, path_, &fenv);
      const std::string context = "write " + std::to_string(w) +
                                  (torn ? " (torn)" : " (clean)");
      ASSERT_FALSE(st.ok()) << context;
      ExpectArtifactIntact(baseline, context);
    }
  }
  for (i64 s = 0; s < totals.syncs; ++s) {
    FaultInjectionEnv fenv(Env::Default());
    fenv.plan().fail_sync_index = s;
    ASSERT_FALSE(SaveEncoder(next, path_, &fenv).ok()) << "sync " << s;
    ExpectArtifactIntact(baseline, "sync " + std::to_string(s));
  }
  for (i64 r = 0; r < totals.renames; ++r) {
    FaultInjectionEnv fenv(Env::Default());
    fenv.plan().fail_rename_index = r;
    ASSERT_FALSE(SaveEncoder(next, path_, &fenv).ok()) << "rename " << r;
    ExpectArtifactIntact(baseline, "rename " + std::to_string(r));
  }
  for (i64 o = 0; o < totals.opens; ++o) {
    FaultInjectionEnv fenv(Env::Default());
    fenv.plan().fail_open_index = o;
    ASSERT_FALSE(SaveEncoder(next, path_, &fenv).ok()) << "open " << o;
    ExpectArtifactIntact(baseline, "open " + std::to_string(o));
  }

  // After the full gauntlet the surviving artifact still loads, and it is
  // the previous encoder.
  auto loaded = LoadEncoder(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->config().transform.cell_budget, 8);
}

TEST_F(AtomicSaveFaultTest, IndexSaveSurvivesEveryInjectedFailure) {
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(3030));
  lake::Repository repo = gen.GenerateRepository(40);
  FastTextColumnEncoder encoder(embedder_.get(), TransformConfig{});
  SearcherConfig sc;
  sc.hnsw_M = 4;
  sc.hnsw_ef_construction = 24;
  EmbeddingSearcher searcher(&encoder, sc);
  ASSERT_TRUE(searcher.BuildIndex(repo).ok());

  ASSERT_TRUE(searcher.SaveIndex(path_).ok());
  std::string baseline;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path_, &baseline).ok());

  FaultInjectionEnv counter_env(Env::Default());
  ASSERT_TRUE(searcher.SaveIndex(path_, &counter_env).ok());
  const FaultCounters totals = counter_env.counters();

  // The index save is deterministic, so re-saving restored the same bytes.
  std::string after;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path_, &after).ok());
  ASSERT_EQ(after, baseline);

  for (i64 w = 0; w < totals.writes; ++w) {
    for (const bool torn : {false, true}) {
      FaultInjectionEnv fenv(Env::Default());
      fenv.plan().fail_write_index = w;
      fenv.plan().short_write = torn;
      const std::string context = "write " + std::to_string(w) +
                                  (torn ? " (torn)" : " (clean)");
      ASSERT_FALSE(searcher.SaveIndex(path_, &fenv).ok()) << context;
      ExpectArtifactIntact(baseline, context);
    }
  }
  for (i64 s = 0; s < totals.syncs; ++s) {
    FaultInjectionEnv fenv(Env::Default());
    fenv.plan().fail_sync_index = s;
    ASSERT_FALSE(searcher.SaveIndex(path_, &fenv).ok()) << "sync " << s;
    ExpectArtifactIntact(baseline, "sync " + std::to_string(s));
  }
  for (i64 r = 0; r < totals.renames; ++r) {
    FaultInjectionEnv fenv(Env::Default());
    fenv.plan().fail_rename_index = r;
    ASSERT_FALSE(searcher.SaveIndex(path_, &fenv).ok()) << "rename " << r;
    ExpectArtifactIntact(baseline, "rename " + std::to_string(r));
  }
  for (i64 o = 0; o < totals.opens; ++o) {
    FaultInjectionEnv fenv(Env::Default());
    fenv.plan().fail_open_index = o;
    ASSERT_FALSE(searcher.SaveIndex(path_, &fenv).ok()) << "open " << o;
    ExpectArtifactIntact(baseline, "open " + std::to_string(o));
  }

  // The surviving index still loads and serves.
  EmbeddingSearcher reloaded(&encoder, sc);
  ASSERT_TRUE(reloaded.LoadIndex(path_).ok());
  EXPECT_EQ(reloaded.index_size(), repo.size());
}

}  // namespace
}  // namespace core
}  // namespace deepjoin
