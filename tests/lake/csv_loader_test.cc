#include "lake/csv_loader.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace deepjoin {
namespace lake {
namespace {

class CsvLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("csv_lake_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST(ParseCsvLineTest, PlainFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
}

TEST(ParseCsvLineTest, QuotedFields) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(ParseCsvLineTest, StripsCarriageReturn) {
  EXPECT_EQ(ParseCsvLine("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST_F(CsvLoaderTest, LoadsTableWithHeaderAndTitle) {
  WriteFile("city_population.csv",
            "city,population\nparis,2m\nlyon,500k\nnice,340k\nlille,"
            "230k\nbrest,140k\n");
  auto table = LoadCsvTable((dir_ / "city_population.csv").string());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->title, "city population");
  ASSERT_EQ(table->columns.size(), 2u);
  EXPECT_EQ(table->columns[0].name, "city");
  EXPECT_EQ(table->columns[0].cells.size(), 5u);
}

TEST_F(CsvLoaderTest, SidecarContextIsPickedUp) {
  WriteFile("t.csv", "a\n1\n2\n3\n4\n5\n");
  WriteFile("t.context", "  quarterly census export  ");
  auto table = LoadCsvTable((dir_ / "t.csv").string());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->context, "quarterly census export");
}

TEST_F(CsvLoaderTest, RaggedRowsArePadded) {
  WriteFile("r.csv", "a,b\n1,2\n3\n4,5,6\n");
  auto table = LoadCsvTable((dir_ / "r.csv").string());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->columns[0].cells.size(), 3u);
  EXPECT_EQ(table->columns[1].cells[1], "");
}

TEST_F(CsvLoaderTest, EmptyFileIsAnError) {
  WriteFile("e.csv", "");
  EXPECT_FALSE(LoadCsvTable((dir_ / "e.csv").string()).ok());
}

TEST_F(CsvLoaderTest, MissingFileIsIoError) {
  auto r = LoadCsvTable((dir_ / "nope.csv").string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(CsvLoaderTest, DirectoryLoadExtractsColumns) {
  WriteFile("one.csv",
            "id,name\n1,ada\n2,grace\n3,edsger\n4,barbara\n5,tony\n");
  WriteFile("two.csv",
            "name\nada\ngrace\nkatherine\nmargaret\nradia\nanita\n");
  WriteFile("ignored.txt", "not a csv");
  CsvLoadOptions opts;
  opts.policy = ExtractionPolicy::kMaxDistinct;
  auto repo = LoadCsvDirectory(dir_.string(), opts);
  ASSERT_TRUE(repo.ok());
  EXPECT_EQ(repo->size(), 2u);
  // Sorted file order: one.csv first.
  EXPECT_EQ(repo->column(0).meta.table_title, "one");
}

TEST_F(CsvLoaderTest, AllColumnsPolicyKeepsEveryWideColumn) {
  WriteFile("w.csv",
            "a,b\nx1,y1\nx2,y2\nx3,y3\nx4,y4\nx5,y5\n");
  CsvLoadOptions opts;
  opts.policy = ExtractionPolicy::kAllColumns;
  auto repo = LoadCsvDirectory(dir_.string(), opts);
  ASSERT_TRUE(repo.ok());
  EXPECT_EQ(repo->size(), 2u);
}

TEST_F(CsvLoaderTest, MinCellFilterApplies) {
  WriteFile("short.csv", "a\n1\n2\n");
  CsvLoadOptions opts;
  auto repo = LoadCsvDirectory(dir_.string(), opts);
  ASSERT_TRUE(repo.ok());
  EXPECT_EQ(repo->size(), 0u);
}

TEST_F(CsvLoaderTest, EmptyCellsDroppedBeforeSizeCheck) {
  WriteFile("gaps.csv", "a\nv1\n\nv2\n\nv3\nv4\nv5\n");
  CsvLoadOptions opts;
  opts.policy = ExtractionPolicy::kAllColumns;
  auto repo = LoadCsvDirectory(dir_.string(), opts);
  ASSERT_TRUE(repo.ok());
  ASSERT_EQ(repo->size(), 1u);
  EXPECT_EQ(repo->column(0).size(), 5u);
}

TEST_F(CsvLoaderTest, Utf8BomIsStrippedFromFirstHeaderCell) {
  WriteFile("bom.csv", "\xEF\xBB\xBFid,name\n1,ada\n2,grace\n");
  auto table = LoadCsvTable((dir_ / "bom.csv").string());
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->columns.size(), 2u);
  EXPECT_EQ(table->columns[0].name, "id");
}

TEST_F(CsvLoaderTest, BomBeforeQuotedHeaderStillParses) {
  WriteFile("bomq.csv", "\xEF\xBB\xBF\"id\",name\n1,ada\n");
  auto table = LoadCsvTable((dir_ / "bomq.csv").string());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->columns[0].name, "id");
}

TEST_F(CsvLoaderTest, UnterminatedQuoteIsInvalidAndSkipped) {
  WriteFile("broken.csv", "a,b\n\"unclosed,2\n3,4\n");
  auto table = LoadCsvTable((dir_ / "broken.csv").string());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);

  // The directory loader reports the file through `skipped` and carries on.
  WriteFile("fine.csv", "x\n1\n2\n3\n4\n5\n");
  CsvLoadOptions opts;
  std::vector<std::string> skipped;
  auto repo = LoadCsvDirectory(dir_.string(), opts, &skipped);
  ASSERT_TRUE(repo.ok());
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].find("broken.csv"), std::string::npos);
}

TEST(ParseCsvLineTest, ReportsUnterminatedQuote) {
  bool unterminated = false;
  ParseCsvLine("\"open,field", &unterminated);
  EXPECT_TRUE(unterminated);
  ParseCsvLine("\"closed\",x", &unterminated);
  EXPECT_FALSE(unterminated);
}

TEST_F(CsvLoaderTest, NonexistentDirectoryIsNotFound) {
  CsvLoadOptions opts;
  auto repo = LoadCsvDirectory((dir_ / "missing").string(), opts);
  ASSERT_FALSE(repo.ok());
  EXPECT_EQ(repo.status().code(), StatusCode::kNotFound);
}


TEST(ParseCsvLineTest, QuoteEscapeRoundTripFuzz) {
  // Encode random fields with CSV quoting, parse them back, require
  // equality. Covers commas, quotes, and whitespace inside fields.
  Rng rng(0xC5F);
  const std::string alphabet = "ab,\"' xyz09";
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> fields;
    const size_t nf = 1 + rng.UniformU64(5);
    std::string line;
    for (size_t f = 0; f < nf; ++f) {
      std::string field;
      const size_t len = rng.UniformU64(8);
      for (size_t i = 0; i < len; ++i) {
        field.push_back(alphabet[rng.UniformU64(alphabet.size())]);
      }
      fields.push_back(field);
      if (f) line.push_back(',');
      line.push_back('"');
      for (char c : field) {
        if (c == '"') line.push_back('"');
        line.push_back(c);
      }
      line.push_back('"');
    }
    EXPECT_EQ(ParseCsvLine(line), fields) << "line: " << line;
  }
}

}  // namespace
}  // namespace lake
}  // namespace deepjoin
