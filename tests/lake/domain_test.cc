#include "lake/domain.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace deepjoin {
namespace lake {
namespace {

class DomainTest : public ::testing::Test {
 protected:
  DomainTest() : model_(DomainConfig{}) {}
  DomainModel model_;
};

TEST_F(DomainTest, CanonicalCellsAreDeterministic) {
  EXPECT_EQ(model_.CanonicalCell(0, 5), model_.CanonicalCell(0, 5));
  DomainModel other{DomainConfig{}};
  EXPECT_EQ(model_.CanonicalCell(3, 9), other.CanonicalCell(3, 9));
}

TEST_F(DomainTest, DistinctEntitiesRenderDistinctly) {
  std::unordered_set<std::string> seen;
  for (u32 e = 0; e < 300; ++e) {
    EXPECT_TRUE(seen.insert(model_.CanonicalCell(1, e)).second)
        << "entity " << e << " collides";
  }
}

TEST_F(DomainTest, NumericDomainsRenderDigits) {
  bool found_numeric = false;
  for (u32 d = 0; d < 10; ++d) {
    if (!model_.IsNumericDomain(d)) continue;
    found_numeric = true;
    const std::string cell = model_.CanonicalCell(d, 3);
    for (char c : cell) EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)));
  }
  EXPECT_TRUE(found_numeric);
}

TEST_F(DomainTest, TypoVariantDiffersButRecurs) {
  Rng r1(1), r2(1);
  const std::string canonical = model_.CanonicalCell(1, 7);
  const std::string t1 = model_.RenderCell(1, 7, VariantKind::kTypo, r1);
  const std::string t2 = model_.RenderCell(1, 7, VariantKind::kTypo, r2);
  EXPECT_NE(t1, canonical);
  // Same rng state -> same recurring variant (misspellings repeat across
  // a lake, which is what makes them equi-matchable).
  EXPECT_EQ(t1, t2);
}

TEST_F(DomainTest, SynonymVariantUsuallySharesPoolWord) {
  // When the unique word has a synonym group, the pool word is preserved;
  // entities without a group fall back to a typo, which may touch any
  // character. A clear majority must keep the pool word intact.
  Rng rng(2);
  int shared = 0, total = 0;
  for (u32 e = 0; e < 50; ++e) {
    const std::string canonical = model_.CanonicalCell(1, e);
    const std::string syn = model_.RenderCell(1, e, VariantKind::kSynonym, rng);
    const auto sp1 = canonical.find(' ');
    const auto sp2 = syn.find(' ');
    if (sp1 == std::string::npos || sp2 == std::string::npos) continue;
    ++total;
    shared += (canonical.substr(0, sp1) == syn.substr(0, sp2));
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(shared * 2, total);
}

TEST_F(DomainTest, FormatVariantPreservesLetters) {
  Rng rng(3);
  const std::string canonical = model_.CanonicalCell(1, 11);
  const std::string formatted =
      model_.RenderCell(1, 11, VariantKind::kFormat, rng);
  auto letters = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (std::isalpha(static_cast<unsigned char>(c))) {
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(letters(canonical), letters(formatted));
}

TEST_F(DomainTest, SynonymLexiconContainsDistinctSpellings) {
  auto lexicon = model_.SynonymLexicon();
  ASSERT_FALSE(lexicon.empty());
  for (const auto& group : lexicon) {
    std::unordered_set<std::string> s(group.begin(), group.end());
    EXPECT_EQ(s.size(), group.size());
  }
}

TEST_F(DomainTest, ThemeWordsAreStablePerDomain) {
  EXPECT_EQ(model_.DomainThemeWord(4), model_.DomainThemeWord(4));
  EXPECT_NE(model_.DomainThemeWord(4), model_.DomainThemeWord(5));
}

}  // namespace
}  // namespace lake
}  // namespace deepjoin
