#include "lake/generator.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "join/joinability.h"
#include "join/setjoin.h"

namespace deepjoin {
namespace lake {
namespace {

TEST(GeneratorTest, RepositoryHasRequestedSizeAndValidColumns) {
  LakeGenerator gen(LakeConfig::Webtable(3));
  Repository repo = gen.GenerateRepository(200);
  ASSERT_EQ(repo.size(), 200u);
  for (const auto& col : repo.columns()) {
    EXPECT_GE(col.size(), 5u) << "min-cell filter (§5.1) violated";
    EXPECT_FALSE(col.meta.table_title.empty());
    EXPECT_FALSE(col.meta.column_name.empty());
    EXPECT_EQ(col.cells.size(), col.entity_ids.size());
    // Cells are distinct (set semantics of Definition 2.1).
    std::unordered_set<std::string> distinct(col.cells.begin(),
                                             col.cells.end());
    EXPECT_EQ(distinct.size(), col.cells.size());
  }
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  LakeGenerator g1(LakeConfig::Webtable(7));
  LakeGenerator g2(LakeConfig::Webtable(7));
  Repository r1 = g1.GenerateRepository(50);
  Repository r2 = g2.GenerateRepository(50);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(r1.column(i).cells, r2.column(i).cells);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  LakeGenerator g1(LakeConfig::Webtable(7));
  LakeGenerator g2(LakeConfig::Webtable(8));
  EXPECT_NE(g1.GenerateRepository(10).column(0).cells,
            g2.GenerateRepository(10).column(0).cells);
}

TEST(GeneratorTest, QueriesAreFreshDraws) {
  LakeGenerator gen(LakeConfig::Webtable(5));
  Repository repo = gen.GenerateRepository(100);
  auto queries = gen.GenerateQueries(10);
  ASSERT_EQ(queries.size(), 10u);
  std::unordered_set<std::string> repo_first_cells;
  for (const auto& c : repo.columns()) {
    repo_first_cells.insert(c.cells.front() + "|" + c.cells.back() + "|" +
                            std::to_string(c.size()));
  }
  size_t identical = 0;
  for (const auto& q : queries) {
    identical += repo_first_cells.count(q.cells.front() + "|" +
                                        q.cells.back() + "|" +
                                        std::to_string(q.size()));
  }
  EXPECT_LT(identical, queries.size()) << "queries look like repo copies";
}

TEST(GeneratorTest, HighJoinabilityPairsExist) {
  // Family structure must yield training positives at the paper's t = 0.7.
  LakeGenerator gen(LakeConfig::Webtable(11));
  Repository repo = gen.GenerateRepository(300);
  auto tok = join::TokenizedRepository::Build(repo);
  auto pairs = join::EquiSelfJoin(tok.columns(), 0.7);
  EXPECT_GT(pairs.size(), 20u)
      << "too few jn >= 0.7 positives for self-supervised training";
}

TEST(GeneratorTest, JoinabilitySpectrumIsNotDegenerate) {
  LakeGenerator gen(LakeConfig::Webtable(13));
  Repository repo = gen.GenerateRepository(300);
  auto tok = join::TokenizedRepository::Build(repo);
  auto queries = gen.GenerateQueries(10);
  size_t queries_with_good_match = 0;
  for (const auto& q : queries) {
    auto qt = tok.EncodeQuery(q);
    auto top = join::ExactEquiTopK(tok, qt, 5);
    if (!top.empty() && top.front().score >= 0.3) ++queries_with_good_match;
  }
  EXPECT_GE(queries_with_good_match, 5u)
      << "most queries should have joinable targets in the repository";
}

TEST(GeneratorTest, WikitableProfileDiffers) {
  LakeGenerator web(LakeConfig::Webtable(21));
  LakeGenerator wiki(LakeConfig::Wikitable(21));
  Repository rweb = web.GenerateRepository(50);
  Repository rwiki = wiki.GenerateRepository(50);
  // Wikitable titles follow the "list of ..." pattern.
  EXPECT_NE(rwiki.column(0).meta.table_title.find("list of"),
            std::string::npos);
  EXPECT_EQ(rweb.column(0).meta.table_title.find("list of"),
            std::string::npos);
}

TEST(GeneratorTest, SizeRangedQueries) {
  LakeGenerator gen(LakeConfig::Webtable(31));
  auto qs = gen.GenerateQueriesInSizeRange(5, 5, 10);
  ASSERT_EQ(qs.size(), 5u);
  for (const auto& q : qs) {
    EXPECT_GE(q.size(), 5u);
    EXPECT_LE(q.size(), 10u);
  }
}

TEST(GeneratorTest, StatsAreReasonable) {
  LakeGenerator gen(LakeConfig::Webtable(41));
  Repository repo = gen.GenerateRepository(500);
  auto stats = repo.ComputeStats();
  EXPECT_EQ(stats.num_columns, 500u);
  EXPECT_GE(stats.min_size, 5u);
  EXPECT_GT(stats.avg_size, 8.0);   // Table 2 ballpark (~20 avg)
  EXPECT_LT(stats.avg_size, 80.0);
  EXPECT_GT(stats.max_size, 50u);   // heavy tail exists
}

TEST(GeneratorTest, SynonymLexiconNonEmptyAndGrouped) {
  LakeGenerator gen(LakeConfig::Webtable(51));
  auto lexicon = gen.SynonymLexicon();
  ASSERT_FALSE(lexicon.empty());
  for (const auto& group : lexicon) {
    EXPECT_GE(group.size(), 3u);
    EXPECT_NE(group[0], group[1]);
  }
}

}  // namespace
}  // namespace lake
}  // namespace deepjoin
