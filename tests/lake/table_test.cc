#include "lake/table.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace lake {
namespace {

Table MakeTestTable() {
  Table t;
  t.title = "cities of atlantis";
  t.context = "a table about places";
  NamedColumn rank;
  rank.name = "rank";
  rank.cells = {"1", "2", "3", "1", "2", "3"};
  NamedColumn city;
  city.name = "city";
  city.is_key = true;
  city.cells = {"aa", "bb", "cc", "dd", "ee", "aa"};
  city.entity_ids = {0, 1, 2, 3, 4, 0};
  city.domain_id = 7;
  t.columns.push_back(rank);
  t.columns.push_back(city);
  return t;
}

TEST(TableTest, DeduplicateKeepsFirstOccurrenceOrder) {
  std::vector<std::string> cells = {"b", "a", "b", "c", "a"};
  std::vector<u32> ents = {1, 0, 1, 2, 0};
  DeduplicateCells(&cells, &ents);
  EXPECT_EQ(cells, (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_EQ(ents, (std::vector<u32>{1, 0, 2}));
}

TEST(TableTest, ExtractKeyColumnUsesKeyFlag) {
  Column out;
  ASSERT_TRUE(ExtractKeyColumn(MakeTestTable(), 3, &out));
  EXPECT_EQ(out.meta.column_name, "city");
  EXPECT_EQ(out.meta.table_title, "cities of atlantis");
  EXPECT_EQ(out.cells.size(), 5u);  // "aa" deduplicated
  EXPECT_EQ(out.domain_id, 7u);
}

TEST(TableTest, ExtractKeyFallsBackToMaxDistinct) {
  Table t = MakeTestTable();
  t.columns[1].is_key = false;
  Column out;
  ASSERT_TRUE(ExtractKeyColumn(t, 3, &out));
  EXPECT_EQ(out.meta.column_name, "city");  // city has more distinct values
}

TEST(TableTest, ExtractMaxDistinctPicksWidestColumn) {
  Column out;
  ASSERT_TRUE(ExtractMaxDistinctColumn(MakeTestTable(), 3, &out));
  EXPECT_EQ(out.meta.column_name, "city");
}

TEST(TableTest, MinCellFilterRejectsShortColumns) {
  Column out;
  EXPECT_FALSE(ExtractMaxDistinctColumn(MakeTestTable(), 100, &out));
}

TEST(TableTest, EmptyTableFails) {
  Table t;
  Column out;
  EXPECT_FALSE(ExtractMaxDistinctColumn(t, 5, &out));
}

TEST(TableTest, RepositoryAssignsSequentialIds) {
  Repository repo;
  Column a, b;
  a.cells = {"x"};
  b.cells = {"y"};
  EXPECT_EQ(repo.Add(a), 0u);
  EXPECT_EQ(repo.Add(b), 1u);
  EXPECT_EQ(repo.column(1).cells[0], "y");
}

TEST(TableTest, RepositoryStats) {
  Repository repo;
  for (size_t n : {5, 10, 30}) {
    Column c;
    for (size_t i = 0; i < n; ++i) c.cells.push_back(std::to_string(i));
    repo.Add(c);
  }
  auto stats = repo.ComputeStats();
  EXPECT_EQ(stats.num_columns, 3u);
  EXPECT_EQ(stats.min_size, 5u);
  EXPECT_EQ(stats.max_size, 30u);
  EXPECT_DOUBLE_EQ(stats.avg_size, 15.0);
}

}  // namespace
}  // namespace lake
}  // namespace deepjoin
