#include "util/thread_pool.h"

#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(5, [&order](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace deepjoin
