// Tests for the allocation-discipline runtime (src/util/alloc_guard.h):
// ScopedAllocCount tallies, ScopedAllocBan nesting and abort semantics
// (death tests), delete-under-ban legality, and the layer's acceptance
// proof — a steady-state DeepJoin search (PLM encode + HNSW traversal)
// running under a ban performs ZERO heap allocations after warmup.
// Enforcement cases GTEST_SKIP when DJ_ALLOC_GUARD is compiled out so the
// suite stays green in release builds.
#include "util/alloc_guard.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"
#include "util/metrics.h"

namespace deepjoin {
namespace {

TEST(AllocGuardTest, EnabledMatchesCompileTimeConfig) {
#if defined(DJ_ALLOC_GUARD)
  EXPECT_TRUE(alloc_guard::Enabled());
#else
  EXPECT_FALSE(alloc_guard::Enabled());
#endif
}

TEST(AllocGuardTest, CountObservesAllocations) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  alloc_guard::ScopedAllocCount tally;
  const std::uint64_t before = tally.allocations();
  auto p = std::make_unique<std::uint64_t>(42);
  EXPECT_GE(tally.allocations(), before + 1);
  EXPECT_GE(tally.bytes(), sizeof(std::uint64_t));
  EXPECT_EQ(*p, 42u);
}

TEST(AllocGuardTest, CountScopesNestIndependently) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  alloc_guard::ScopedAllocCount outer;
  auto a = std::make_unique<int>(1);
  alloc_guard::ScopedAllocCount inner;
  auto b = std::make_unique<int>(2);
  // The inner scope saw only the second allocation; the outer saw both.
  EXPECT_GE(inner.allocations(), 1u);
  EXPECT_GE(outer.allocations(), inner.allocations() + 1);
  EXPECT_EQ(*a + *b, 3);
}

TEST(AllocGuardTest, ProcessTotalsAreMonotonic) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  const std::uint64_t allocs0 = alloc_guard::TotalAllocations();
  const std::uint64_t bytes0 = alloc_guard::TotalBytes();
  auto p = std::make_unique<double>(1.0);
  EXPECT_GT(alloc_guard::TotalAllocations(), allocs0);
  EXPECT_GE(alloc_guard::TotalBytes(), bytes0 + sizeof(double));
  EXPECT_EQ(*p, 1.0);
}

TEST(AllocGuardTest, PublishMetricsExportsGauges) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  auto p = std::make_unique<int>(9);
  (void)*p;
  alloc_guard::PublishMetrics();
  const auto snapshot = metrics::MetricsRegistry::Global().Snapshot();
  bool saw_count = false;
  bool saw_bytes = false;
  for (const auto& g : snapshot.gauges) {
    if (g.name == "dj_alloc_count") saw_count = g.value > 0;
    if (g.name == "dj_alloc_bytes") saw_bytes = g.value > 0;
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_bytes);
}

TEST(AllocGuardTest, NestedBansUnwindCleanly) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  {
    alloc_guard::ScopedAllocBan outer("outer");
    { alloc_guard::ScopedAllocBan inner("inner"); }
  }
  // Fully unwound: allocation is legal again.
  std::vector<int> v(8, 3);
  EXPECT_EQ(v.size(), 8u);
}

TEST(AllocGuardTest, DeleteUnderBanIsAllowed) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  int* p = new int(3);  // dj_lint: allow(naked-new)
  {
    alloc_guard::ScopedAllocBan ban("release is always legal");
    delete p;
  }
  SUCCEED();
}

TEST(AllocGuardDeathTest, AllocationUnderBanAborts) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  EXPECT_DEATH(
      {
        alloc_guard::ScopedAllocBan ban("death test ban");
        int* leak = new int(7);  // dj_lint: allow(naked-new)
        (void)leak;
      },
      "heap allocation of .* under ScopedAllocBan\\(\"death test ban\"\\)");
}

TEST(AllocGuardDeathTest, InnermostBanSiteIsReported) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  EXPECT_DEATH(
      {
        alloc_guard::ScopedAllocBan outer("outer ban");
        alloc_guard::ScopedAllocBan inner("inner ban");
        int* leak = new int(7);  // dj_lint: allow(naked-new)
        (void)leak;
      },
      "ScopedAllocBan\\(\"inner ban\"\\)");
}

TEST(AllocGuardDeathTest, DestroyedInnerBanRestoresOuterContext) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";
  EXPECT_DEATH(
      {
        alloc_guard::ScopedAllocBan outer("outer ban");
        { alloc_guard::ScopedAllocBan inner("inner ban"); }
        int* leak = new int(7);  // dj_lint: allow(naked-new)
        (void)leak;
      },
      "ScopedAllocBan\\(\"outer ban\"\\)");
}

// The layer's acceptance proof: after warmup, a full DeepJoin query —
// transform, tokenize, vocab lookup, transformer forward, HNSW traversal,
// result copy-out — performs zero heap allocations. The whole steady-state
// query runs under a ScopedAllocBan, so any regression aborts with the
// allocating site's size, and a ScopedAllocCount double-checks the tally.
// Conditions (the DJ_NOALLOC contract's steady state): scratch and pools
// warmed by prior queries on this thread, collect_stats off, HNSW backend.
TEST(AllocGuardSearchTest, SteadyStateSearchPerformsZeroAllocations) {
  if (!alloc_guard::Enabled()) GTEST_SKIP() << "DJ_ALLOC_GUARD compiled out";

  lake::LakeGenerator gen(lake::LakeConfig::Webtable(909));
  const lake::Repository repo = gen.GenerateRepository(80);
  const std::vector<lake::Column> queries = gen.GenerateQueries(6, 0x77);

  FastTextConfig fc;
  fc.dim = 16;
  FastTextEmbedder embedder(fc);
  core::PlmEncoderConfig pc;
  pc.kind = core::PlmKind::kDistilSim;
  pc.max_seq_len = 32;
  core::PlmColumnEncoder encoder(pc, queries, embedder);

  core::SearcherConfig sc;
  sc.backend = core::AnnBackend::kHnsw;
  core::EmbeddingSearcher searcher(&encoder, sc);
  ASSERT_TRUE(searcher.BuildIndex(repo).ok());

  const core::SearchOptions options{.k = 10, .collect_stats = false};
  core::EmbeddingSearcher::SearchResult result;
  // Warmup: grows every thread-local scratch buffer, the HNSW visited
  // pool, the transformer workspace pool, and the function-local metric
  // statics to their steady-state footprint.
  for (int i = 0; i < 3; ++i) {
    searcher.SearchInto(queries[i % queries.size()], options, &result);
  }
  ASSERT_EQ(result.ids.size(), 10u);

  alloc_guard::ScopedAllocCount tally;
  {
    alloc_guard::ScopedAllocBan ban("steady-state DeepJoin search");
    for (size_t i = 0; i < queries.size(); ++i) {
      searcher.SearchInto(queries[i], options, &result);
    }
  }
  EXPECT_EQ(tally.allocations(), 0u);
  EXPECT_EQ(tally.bytes(), 0u);
  EXPECT_EQ(result.ids.size(), 10u);
}

}  // namespace
}  // namespace deepjoin
