#include "util/string_util.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo W0RLD"), "hello w0rld");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace("\t\n x"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string s = "alpha|beta|gamma";
  EXPECT_EQ(Join(Split(s, '|'), "|"), s);
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatDouble(-1.5, 2), "-1.50");
}

}  // namespace
}  // namespace deepjoin
