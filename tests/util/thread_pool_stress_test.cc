// Stress tests for the ThreadPool concurrency contract (thread_pool.h).
// Labeled `tsan` in tests/CMakeLists.txt: tools/check.sh runs them under
// -fsanitize=thread, where a racing Submit/Wait/shutdown shows up as a
// report instead of a rare hang.
#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(ThreadPoolStressTest, SubmitFromInsideTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      pool.Submit([&count] { count.fetch_add(1); });
    });
  }
  // Wait must cover grandchildren: every child is registered before its
  // parent finishes, so in_flight_ never dips to zero early.
  pool.Wait();
  EXPECT_EQ(count.load(), 400);
}

TEST(ThreadPoolStressTest, ConcurrentParallelForAndWaitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> drivers;
  drivers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&pool, &sum] {
      for (int round = 0; round < 25; ++round) {
        pool.ParallelFor(64, [&sum](size_t) { sum.fetch_add(1); });
        pool.Wait();
      }
    });
  }
  for (auto& d : drivers) d.join();
  EXPECT_EQ(sum.load(), 4L * 25 * 64);
}

TEST(ThreadPoolStressTest, ParallelForDoesNotWaitOnUnrelatedTasks) {
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  std::atomic<int> hits{0};
  // A long-running unrelated task must not stall ParallelFor's return
  // (each ParallelFor tracks its own batch, not global in-flight count).
  pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  pool.ParallelFor(32, [&hits](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 32);
  release.store(true);
  pool.Wait();
}

TEST(ThreadPoolStressTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> hits{0};
  pool.ParallelFor(8, [&pool, &hits](size_t) {
    pool.ParallelFor(8, [&hits](size_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPoolStressTest, SubmitRacingShutdownNeverLosesTheTask) {
  std::atomic<int> count{0};
  std::atomic<bool> in_task{false};
  {
    ThreadPool pool(2);
    pool.Submit([&pool, &count, &in_task] {
      in_task.store(true);
      // Let the destructor begin; the nested Submit then lands either
      // before stop_ (drained by the worker) or after (run inline) — in
      // both interleavings it must execute exactly once.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      pool.Submit([&count] { count.fetch_add(1); });
    });
    while (!in_task.load()) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolStressTest, ShutdownDrainsQueuedWorkThatSpawnsMore) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&pool, &count] {
        pool.Submit([&count] { count.fetch_add(1); });
      });
    }
    // Destructor runs while children are still being spawned.
  }
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace deepjoin
