#include "util/rng.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformU64Bounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(9);
  std::map<u64, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[rng.UniformU64(5)];
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [v, c] : counts) EXPECT_GT(c, 700) << "value " << v;
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasRoughlyZeroMeanUnitVariance) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(23);
  auto idx = rng.SampleIndices(100, 30);
  ASSERT_EQ(idx.size(), 30u);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(std::unique(idx.begin(), idx.end()), idx.end());
  EXPECT_LT(idx.back(), 100u);
}

TEST(RngTest, SampleIndicesClampsToN) {
  Rng rng(29);
  EXPECT_EQ(rng.SampleIndices(5, 50).size(), 5u);
}

TEST(RngTest, ZipfSamplerIsSkewed) {
  Rng rng(31);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[500] + 10);
  EXPECT_GT(counts[0], 1000);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(37);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.NextU64() == child.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(41);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace deepjoin
