#include "util/flags.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

Flags ParseArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) argv.push_back(a.data());
  Flags f;
  f.Parse(static_cast<int>(argv.size()), argv.data());
  return f;
}

TEST(FlagsTest, EqualsSyntax) {
  auto f = ParseArgs({"--rows=20", "--name=web"});
  EXPECT_EQ(f.GetInt("rows", 0), 20);
  EXPECT_EQ(f.GetString("name", ""), "web");
}

TEST(FlagsTest, SpaceSyntax) {
  auto f = ParseArgs({"--rows", "30"});
  EXPECT_EQ(f.GetInt("rows", 0), 30);
}

TEST(FlagsTest, BareBooleanFlag) {
  auto f = ParseArgs({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagsTest, DefaultsApply) {
  auto f = ParseArgs({});
  EXPECT_EQ(f.GetInt("missing", 7), 7);
  EXPECT_EQ(f.GetString("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 0.5), 0.5);
  EXPECT_FALSE(f.GetBool("missing", false));
}

TEST(FlagsTest, DoubleParsing) {
  auto f = ParseArgs({"--tau=0.9"});
  EXPECT_DOUBLE_EQ(f.GetDouble("tau", 0.0), 0.9);
}

TEST(FlagsTest, PositionalArguments) {
  auto f = ParseArgs({"input.csv", "--k=5", "out.csv"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "out.csv");
}

TEST(FlagsTest, HasDetectsPresence) {
  auto f = ParseArgs({"--set"});
  EXPECT_TRUE(f.Has("set"));
  EXPECT_FALSE(f.Has("unset"));
}

}  // namespace
}  // namespace deepjoin
