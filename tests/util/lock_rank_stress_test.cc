// Concurrency stress for the lock-rank runtime (label: tsan): many threads
// hammering correctly-ordered ranked locks must produce zero enforcement
// aborts and zero data races in the hook bookkeeping (TLS held stacks,
// the shared LockOrderGraph). The suite also runs in builds without
// DJ_LOCK_RANK, where it degrades to a plain mutex stress test.
#include <atomic>

#include <gtest/gtest.h>

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace deepjoin {
namespace {

TEST(LockRankStressTest, ManyThreadsUphillNoFalsePositives) {
  Mutex low("stress.uphill.low", 81);
  Mutex high("stress.uphill.high", 82);
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lo(low);
        MutexLock hi(high);
        ++counter;
      }
    });
  }
  pool.Wait();
  MutexLock lo(low);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(LockRankStressTest, ConcurrentTryLockDownhillNeverAborts) {
  // TryLock skips rank enforcement (it cannot block), so a downhill
  // try-acquire under contention must never trip the validator — only
  // succeed or fail.
  Mutex low("stress.try.low", 83);
  Mutex high("stress.try.high", 84);
  std::atomic<int> acquired{0};
  constexpr int kThreads = 4;
  ThreadPool pool(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.Submit([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock hi(high);
        if (low.TryLock()) {
          acquired.fetch_add(1, std::memory_order_relaxed);
          low.Unlock();
        }
      }
    });
  }
  pool.Wait();
  EXPECT_GT(acquired.load(), 0);
}

TEST(LockRankStressTest, CondVarPingPongUnderRankChecks) {
  // Producer/consumer handoff through a ranked mutex: every Wait pops and
  // every wakeup re-validates, thousands of times, across threads.
  Mutex mu("stress.cv.state", 85);
  CondVar cv;
  int turn = 0;  // even: ping's move, odd: pong's move
  constexpr int kRounds = 4000;
  ThreadPool pool(2);
  for (int who = 0; who < 2; ++who) {
    pool.Submit([&, who] {
      for (int r = 0; r < kRounds / 2; ++r) {
        MutexLock lock(mu);
        while (turn % 2 != who && turn < kRounds) cv.Wait(mu);
        if (turn >= kRounds) break;
        ++turn;
        cv.NotifyOne();
      }
    });
  }
  pool.Wait();
  MutexLock lock(mu);
  EXPECT_EQ(turn, kRounds);
}

}  // namespace
}  // namespace deepjoin
