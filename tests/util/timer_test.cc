#include "util/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 5000.0);
}

TEST(WallTimerTest, UnitsAreConsistent) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = t.ElapsedSeconds();
  const double ms = t.ElapsedMillis();
  const double us = t.ElapsedMicros();
  EXPECT_NEAR(ms, s * 1e3, s * 1e3);   // within 2x (separate reads)
  EXPECT_GT(us, ms);
}

TEST(WallTimerTest, ResetRestarts) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 15.0);
}

TEST(TimeAccumulatorTest, MeanOverSamples) {
  TimeAccumulator acc;
  acc.Add(0.010);
  acc.Add(0.030);
  EXPECT_EQ(acc.Count(), 2);
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 0.040);
  EXPECT_DOUBLE_EQ(acc.MeanMillis(), 20.0);
}

TEST(TimeAccumulatorTest, EmptyMeanIsZero) {
  TimeAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.MeanMillis(), 0.0);
}

TEST(TimeAccumulatorTest, ResetClears) {
  TimeAccumulator acc;
  acc.Add(1.0);
  acc.Reset();
  EXPECT_EQ(acc.Count(), 0);
  EXPECT_DOUBLE_EQ(acc.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace deepjoin
