// Parity and determinism suite for the compute-kernel layer
// (src/util/kernels.h). Three kinds of guarantee are proven here:
//
//  1. Value parity: each tier matches a scalar reference that implements
//     the documented reduction order — EXACTLY (bitwise) for Dot /
//     SquaredL2 / Axpy / ScaleAdd, and within a double-reference tolerance
//     for the blocked GEMM.
//  2. Order invariance: GEMM results do not depend on leading dimensions
//     or on how rows are partitioned across threads (parallel == serial,
//     bit-identical).
//  3. Path parity: the transformer's allocation-free EncodeToVector
//     fast path is bit-identical to the autograd graph forward.
//
// Buffers are exact-size heap allocations so the ASan leg of check.sh
// catches any out-of-bounds read a tail/corner case might perform;
// odd lengths 1..129 cross every vector-width boundary, and inputs mix in
// denormals and negative zeros.
#include "util/kernels.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "nn/matrix.h"
#include "nn/transformer.h"
#include "util/thread_pool.h"

namespace deepjoin {
namespace kern {
namespace {

// Deterministic value pattern crossing sign, magnitude, denormal, and
// negative-zero cases. (No RNG: failures must print reproducible indices.)
float TestValue(int i) {
  switch (i % 11) {
    case 0: return 0.0f;
    case 1: return -0.0f;
    case 2: return 1e-42f;   // positive denormal
    case 3: return -1e-42f;  // negative denormal
    default: {
      const float base = static_cast<float>((i * 2654435761u) % 2048) / 512.0f;
      return (i % 2 == 0) ? base - 2.0f : -(base - 2.0f) * 0.37f;
    }
  }
}

std::vector<float> MakeVector(int n, int salt) {
  std::vector<float> v(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<size_t>(i)] = TestValue(i + salt);
  return v;
}

// ---- References implementing the documented per-tier reduction orders ----

float RefDotScalar(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc = acc + a[i] * b[i];  // unfused
  return acc;
}

float RefSquaredL2Scalar(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc = acc + d * d;
  }
  return acc;
}

// Emulates the AVX2 order lane by lane with std::fma (the FMA intrinsic
// and std::fma are both single-rounding, so this is bit-exact).
template <typename Term>
float RefAvx2Reduce(int n, const Term& term) {
  float acc0[8] = {0}, acc1[8] = {0};
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    for (int l = 0; l < 8; ++l) acc0[l] = term(i + l, acc0[l]);
    for (int l = 0; l < 8; ++l) acc1[l] = term(i + 8 + l, acc1[l]);
  }
  if (i + 8 <= n) {
    for (int l = 0; l < 8; ++l) acc0[l] = term(i + l, acc0[l]);
    i += 8;
  }
  float acc[8];
  for (int l = 0; l < 8; ++l) acc[l] = acc0[l] + acc1[l];
  float sum = ((acc[0] + acc[4]) + (acc[2] + acc[6])) +
              ((acc[1] + acc[5]) + (acc[3] + acc[7]));
  for (; i < n; ++i) sum = term(i, sum);
  return sum;
}

float RefDotAvx2(const float* a, const float* b, int n) {
  return RefAvx2Reduce(n, [a, b](int i, float acc) {
    return std::fma(a[i], b[i], acc);
  });
}

float RefSquaredL2Avx2(const float* a, const float* b, int n) {
  return RefAvx2Reduce(n, [a, b](int i, float acc) {
    const float d = a[i] - b[i];
    return std::fma(d, d, acc);
  });
}

// SQ8 references per the documented orders: scalar decodes unfused
// (t = scale*code; v = lo + t — two roundings) and accumulates unfused;
// AVX2 decodes with one FMA and accumulates with one FMA in the standard
// two-accumulator interleaved-16 shape.
float RefSquaredL2Sq8Scalar(const float* q, const u8* codes, const float* lo,
                            const float* scale, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float t = scale[i] * static_cast<float>(codes[i]);
    const float v = lo[i] + t;
    const float d = q[i] - v;
    acc = acc + d * d;
  }
  return acc;
}

float RefSquaredL2Sq8Avx2(const float* q, const u8* codes, const float* lo,
                          const float* scale, int n) {
  return RefAvx2Reduce(n, [q, codes, lo, scale](int i, float acc) {
    const float v = std::fma(scale[i], static_cast<float>(codes[i]), lo[i]);
    const float d = q[i] - v;
    return std::fma(d, d, acc);
  });
}

std::vector<u8> MakeCodes(int n, int salt) {
  std::vector<u8> c(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Covers 0 and 255 plus a scattered interior.
    c[static_cast<size_t>(i)] =
        static_cast<u8>(((i + salt) * 2654435761u) % 256);
  }
  return c;
}

// Double-precision GEMM reference (tolerance comparisons only).
enum class Variant { kNN, kNT, kTN };

void RefGemm(Variant v, int m, int n, int k, const float* a, int lda,
             const float* b, int ldb, std::vector<double>& c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = (v == Variant::kTN) ? a[p * lda + i] : a[i * lda + p];
        const float bv = (v == Variant::kNT) ? b[j * ldb + p] : b[p * ldb + j];
        s += static_cast<double>(av) * bv;
      }
      c[static_cast<size_t>(i) * n + j] += s;
    }
  }
}

void CallSgemm(Variant v, int m, int n, int k, const float* a, int lda,
               const float* b, int ldb, float* c, int ldc) {
  switch (v) {
    case Variant::kNN: SgemmNN(m, n, k, a, lda, b, ldb, c, ldc); return;
    case Variant::kNT: SgemmNT(m, n, k, a, lda, b, ldb, c, ldc); return;
    case Variant::kTN: SgemmTN(m, n, k, a, lda, b, ldb, c, ldc); return;
  }
}

/// Tiers available on this machine (scalar always; AVX2 when detected).
std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers = {Tier::kScalar};
  if (DetectedTier() == Tier::kAvx2) tiers.push_back(Tier::kAvx2);
  return tiers;
}

class ForcedTier {
 public:
  explicit ForcedTier(Tier t) { ForceTierForTest(t); }
  ~ForcedTier() { ClearForcedTierForTest(); }
};

TEST(KernelsTest, TierNamesResolve) {
  EXPECT_STREQ("scalar", TierName(Tier::kScalar));
  EXPECT_STREQ("avx2+fma", TierName(Tier::kAvx2));
  // ActiveTier is one of the two and is stable across calls.
  EXPECT_EQ(ActiveTier(), ActiveTier());
}

TEST(KernelsTest, DotMatchesDocumentedOrderExactly) {
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    for (int n = 1; n <= 129; ++n) {
      // Exact-size allocations: any over-read trips ASan.
      const auto a = MakeVector(n, 7);
      const auto b = MakeVector(n, 1000);
      const float got = Dot(a.data(), b.data(), n);
      const float want = (tier == Tier::kAvx2)
                             ? RefDotAvx2(a.data(), b.data(), n)
                             : RefDotScalar(a.data(), b.data(), n);
      ASSERT_EQ(0, std::memcmp(&got, &want, sizeof(float)))
          << TierName(tier) << " n=" << n << " got=" << got
          << " want=" << want;
    }
  }
}

TEST(KernelsTest, SquaredL2MatchesDocumentedOrderExactly) {
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    for (int n = 1; n <= 129; ++n) {
      const auto a = MakeVector(n, 13);
      const auto b = MakeVector(n, 4242);
      const float got = SquaredL2(a.data(), b.data(), n);
      const float want = (tier == Tier::kAvx2)
                             ? RefSquaredL2Avx2(a.data(), b.data(), n)
                             : RefSquaredL2Scalar(a.data(), b.data(), n);
      ASSERT_EQ(0, std::memcmp(&got, &want, sizeof(float)))
          << TierName(tier) << " n=" << n;
      EXPECT_GE(got, 0.0f);
    }
  }
}

// The fused asymmetric kernel behind Sq8Store::Distance: each tier must
// match its documented reduction order bit for bit, so a given machine
// scores quantized rows deterministically (and the vector_store round
// trips can compare owned vs mapped results with EXPECT_EQ).
TEST(KernelsTest, SquaredL2Sq8MatchesDocumentedOrderExactly) {
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    for (int n = 1; n <= 129; ++n) {
      const auto q = MakeVector(n, 29);
      const auto codes = MakeCodes(n, 3);
      const auto lo = MakeVector(n, 401);
      auto scale = MakeVector(n, 733);
      // Scales are non-negative in real stores; keep the reference honest.
      for (float& s : scale) s = std::fabs(s) * 0.01f;
      const float got =
          SquaredL2Sq8(q.data(), codes.data(), lo.data(), scale.data(), n);
      const float want =
          (tier == Tier::kAvx2)
              ? RefSquaredL2Sq8Avx2(q.data(), codes.data(), lo.data(),
                                    scale.data(), n)
              : RefSquaredL2Sq8Scalar(q.data(), codes.data(), lo.data(),
                                      scale.data(), n);
      ASSERT_EQ(0, std::memcmp(&got, &want, sizeof(float)))
          << TierName(tier) << " n=" << n << " got=" << got
          << " want=" << want;
      EXPECT_GE(got, 0.0f);
    }
  }
}

// Cross-tier agreement within quantization-level tolerance: the two tiers
// round differently (fused vs unfused decode), so results are not
// bitwise-equal across tiers, but they must describe the same distance.
TEST(KernelsTest, SquaredL2Sq8TiersAgreeWithinTolerance) {
  if (DetectedTier() != Tier::kAvx2) {
    GTEST_SKIP() << "single-tier machine";
  }
  const int n = 96;
  const auto q = MakeVector(n, 5);
  const auto codes = MakeCodes(n, 17);
  const auto lo = MakeVector(n, 211);
  auto scale = MakeVector(n, 97);
  for (float& s : scale) s = std::fabs(s) * 0.01f;
  float scalar = 0, avx2 = 0;
  {
    ForcedTier forced(Tier::kScalar);
    scalar = SquaredL2Sq8(q.data(), codes.data(), lo.data(), scale.data(), n);
  }
  {
    ForcedTier forced(Tier::kAvx2);
    avx2 = SquaredL2Sq8(q.data(), codes.data(), lo.data(), scale.data(), n);
  }
  EXPECT_NEAR(scalar, avx2, 1e-4f * (1.0f + scalar));
}

TEST(KernelsTest, DotHandlesUnalignedPointers) {
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    for (int n : {1, 7, 8, 9, 31, 64, 127}) {
      // Misalign by one float against a 64-byte-aligned base.
      std::vector<float, AlignedAllocator<float, 64>> abuf(
          static_cast<size_t>(n) + 1);
      std::vector<float, AlignedAllocator<float, 64>> bbuf(
          static_cast<size_t>(n) + 1);
      for (int i = 0; i < n; ++i) {
        abuf[static_cast<size_t>(i) + 1] = TestValue(i + 3);
        bbuf[static_cast<size_t>(i) + 1] = TestValue(i + 900);
      }
      const float* a = abuf.data() + 1;
      const float* b = bbuf.data() + 1;
      const float want = (tier == Tier::kAvx2) ? RefDotAvx2(a, b, n)
                                               : RefDotScalar(a, b, n);
      const float got = Dot(a, b, n);
      ASSERT_EQ(0, std::memcmp(&got, &want, sizeof(float)))
          << TierName(tier) << " n=" << n;
    }
  }
}

TEST(KernelsTest, AxpyAlphaOneIsExactAddInEveryTier) {
  const int n = 101;
  const auto x = MakeVector(n, 21);
  const auto y0 = MakeVector(n, 77);
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    auto y = y0;
    Axpy(n, 1.0f, x.data(), y.data());
    for (int i = 0; i < n; ++i) {
      const float want = x[static_cast<size_t>(i)] + y0[static_cast<size_t>(i)];
      ASSERT_EQ(0, std::memcmp(&y[static_cast<size_t>(i)], &want,
                               sizeof(float)))
          << TierName(tier) << " i=" << i;
    }
  }
}

TEST(KernelsTest, AxpyGeneralAlphaMatchesPerTierSemantics) {
  const int n = 67;
  const float alpha = -1.375f;
  const auto x = MakeVector(n, 5);
  const auto y0 = MakeVector(n, 50);
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    auto y = y0;
    Axpy(n, alpha, x.data(), y.data());
    for (int i = 0; i < n; ++i) {
      const size_t s = static_cast<size_t>(i);
      const float want = (tier == Tier::kAvx2)
                             ? std::fma(alpha, x[s], y0[s])
                             : y0[s] + alpha * x[s];
      ASSERT_EQ(0, std::memcmp(&y[s], &want, sizeof(float)))
          << TierName(tier) << " i=" << i;
    }
  }
}

TEST(KernelsTest, ScaleAddBetaZeroNeverReadsY) {
  const int n = 73;
  const float alpha = 0.8125f;
  const auto x = MakeVector(n, 9);
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    // Poison y with NaN: if the kernel read it, beta*y would infect out.
    std::vector<float> y(static_cast<size_t>(n),
                         std::numeric_limits<float>::quiet_NaN());
    ScaleAdd(n, alpha, x.data(), 0.0f, y.data());
    for (int i = 0; i < n; ++i) {
      const size_t s = static_cast<size_t>(i);
      const float want = alpha * x[s];
      ASSERT_EQ(0, std::memcmp(&y[s], &want, sizeof(float)))
          << TierName(tier) << " i=" << i;
    }
  }
}

TEST(KernelsTest, ScaleAddInPlaceAliasingAllowed) {
  const int n = 41;
  const auto x0 = MakeVector(n, 31);
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    auto x = x0;
    ScaleAdd(n, 2.5f, x.data(), 0.0f, x.data());  // x = 2.5 * x
    for (int i = 0; i < n; ++i) {
      const float want = 2.5f * x0[static_cast<size_t>(i)];
      ASSERT_EQ(0,
                std::memcmp(&x[static_cast<size_t>(i)], &want, sizeof(float)))
          << TierName(tier) << " i=" << i;
    }
  }
}

TEST(KernelsTest, SgemmMatchesDoubleReference) {
  // Shapes cross microkernel boundaries (MR=4, NR=16) and the repo's
  // training shapes; lda/ldb/ldc padding exercises the sub-view paths.
  struct Shape { int m, n, k, pad; };
  const Shape shapes[] = {{1, 1, 1, 0},   {3, 5, 7, 0},   {4, 16, 8, 0},
                          {5, 17, 9, 3},  {13, 29, 31, 1}, {64, 48, 48, 0},
                          {64, 192, 48, 0}, {64, 64, 256, 5}, {2, 300, 2, 0}};
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    for (const auto& s : shapes) {
      for (Variant v : {Variant::kNN, Variant::kNT, Variant::kTN}) {
        const int ar = (v == Variant::kTN) ? s.k : s.m;
        const int ac = (v == Variant::kTN) ? s.m : s.k;
        const int br = (v == Variant::kNT) ? s.n : s.k;
        const int bc = (v == Variant::kNT) ? s.k : s.n;
        const int lda = ac + s.pad, ldb = bc + s.pad, ldc = s.n + s.pad;
        const auto a = MakeVector(ar * lda, 17);
        const auto b = MakeVector(br * ldb, 7100);
        auto c = MakeVector(s.m * ldc, 31);  // accumulate onto nonzero C
        std::vector<double> ref(static_cast<size_t>(s.m) * s.n);
        for (int i = 0; i < s.m; ++i) {
          for (int j = 0; j < s.n; ++j) {
            ref[static_cast<size_t>(i) * s.n + j] =
                c[static_cast<size_t>(i) * ldc + j];
          }
        }
        RefGemm(v, s.m, s.n, s.k, a.data(), lda, b.data(), ldb, ref);
        CallSgemm(v, s.m, s.n, s.k, a.data(), lda, b.data(), ldb, c.data(),
                  ldc);
        for (int i = 0; i < s.m; ++i) {
          for (int j = 0; j < s.n; ++j) {
            const double want = ref[static_cast<size_t>(i) * s.n + j];
            const double got = c[static_cast<size_t>(i) * ldc + j];
            ASSERT_NEAR(want, got, 1e-3 + 1e-4 * std::abs(want))
                << TierName(tier) << " variant=" << static_cast<int>(v)
                << " m=" << s.m << " n=" << s.n << " k=" << s.k << " (" << i
                << "," << j << ")";
          }
        }
      }
    }
  }
}

TEST(KernelsTest, SgemmIsLeadingDimensionInvariant) {
  // Same logical matrices, tight vs padded layouts: bit-identical C. This
  // is the property the transformer fast path's strided per-head views
  // rely on.
  const int m = 33, n = 49, k = 37;
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    for (Variant v : {Variant::kNN, Variant::kNT, Variant::kTN}) {
      const int ar = (v == Variant::kTN) ? k : m;
      const int ac = (v == Variant::kTN) ? m : k;
      const int br = (v == Variant::kNT) ? n : k;
      const int bc = (v == Variant::kNT) ? k : n;
      const auto a_tight = MakeVector(ar * ac, 3);
      const auto b_tight = MakeVector(br * bc, 6000);
      // Padded copies (pad columns filled with garbage the kernel must
      // never touch).
      const int pad = 5;
      auto a_pad = MakeVector(ar * (ac + pad), 999);
      auto b_pad = MakeVector(br * (bc + pad), 555);
      for (int r = 0; r < ar; ++r) {
        std::memcpy(&a_pad[static_cast<size_t>(r) * (ac + pad)],
                    &a_tight[static_cast<size_t>(r) * ac],
                    sizeof(float) * static_cast<size_t>(ac));
      }
      for (int r = 0; r < br; ++r) {
        std::memcpy(&b_pad[static_cast<size_t>(r) * (bc + pad)],
                    &b_tight[static_cast<size_t>(r) * bc],
                    sizeof(float) * static_cast<size_t>(bc));
      }
      std::vector<float> c1(static_cast<size_t>(m) * n, 0.0f);
      std::vector<float> c2(static_cast<size_t>(m) * n, 0.0f);
      CallSgemm(v, m, n, k, a_tight.data(), ac, b_tight.data(), bc, c1.data(),
                n);
      CallSgemm(v, m, n, k, a_pad.data(), ac + pad, b_pad.data(), bc + pad,
                c2.data(), n);
      ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                               c1.size() * sizeof(float)))
          << TierName(tier) << " variant=" << static_cast<int>(v);
    }
  }
}

TEST(KernelsTest, ParallelMatMulBitIdenticalToSerial) {
  // MatMul*Accum split rows across a pool; the determinism contract says
  // any thread count produces the serial bits.
  const int m = 96, k = 64, n = 192;
  nn::Matrix a(m, k), b(k, n);
  for (int i = 0; i < m * k; ++i) a.data()[i] = TestValue(i);
  for (int i = 0; i < k * n; ++i) b.data()[i] = TestValue(i + 31337);
  for (Tier tier : AvailableTiers()) {
    ForcedTier forced(tier);
    nn::Matrix serial(m, n);
    nn::MatMulAccum(a, b, serial);
    for (size_t threads : {2u, 4u, 7u}) {
      ThreadPool pool(threads);
      nn::SetMatMulThreadPool(&pool);
      nn::Matrix parallel(m, n);
      nn::MatMulAccum(a, b, parallel);
      nn::SetMatMulThreadPool(nullptr);
      ASSERT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                               serial.size() * sizeof(float)))
          << TierName(tier) << " threads=" << threads;
    }
  }
}

TEST(KernelsTest, EncoderFastPathBitIdenticalToGraph) {
  // The allocation-free EncodeToVector must reproduce the autograd graph
  // forward bit for bit, in both tiers and both position modes.
  for (nn::PositionMode mode :
       {nn::PositionMode::kAbsolute, nn::PositionMode::kRelativeBias}) {
    nn::TransformerConfig tc;
    tc.vocab_size = 97;
    tc.position_mode = mode;
    nn::TransformerEncoder enc(tc);
    std::vector<u32> ids;
    for (int i = 0; i < 37; ++i) ids.push_back(static_cast<u32>((i * 13) % 97));
    for (Tier tier : AvailableTiers()) {
      ForcedTier forced(tier);
      std::vector<float> graph_out;
      {
        nn::NoGradGuard guard;
        nn::VarPtr out = enc.Encode(ids);
        const float* row = out->value().row(0);
        graph_out.assign(row, row + tc.d_model);
      }
      std::vector<float> fast_out(static_cast<size_t>(tc.d_model));
      enc.EncodeToVector(ids, fast_out.data());
      ASSERT_EQ(0, std::memcmp(graph_out.data(), fast_out.data(),
                               graph_out.size() * sizeof(float)))
          << TierName(tier)
          << " mode=" << (mode == nn::PositionMode::kAbsolute ? "abs" : "rel");
      // The vector overload is the same path.
      const std::vector<float> vec_out = enc.EncodeToVector(ids);
      ASSERT_EQ(0, std::memcmp(graph_out.data(), vec_out.data(),
                               graph_out.size() * sizeof(float)));
    }
  }
}

TEST(KernelsTest, EncoderTruncatesLongInputInFastPath) {
  nn::TransformerConfig tc;
  tc.vocab_size = 50;
  nn::TransformerEncoder enc(tc);
  std::vector<u32> long_ids, trunc_ids;
  for (int i = 0; i < tc.max_seq_len + 40; ++i) {
    long_ids.push_back(static_cast<u32>(i % 50));
    if (i < tc.max_seq_len) trunc_ids.push_back(static_cast<u32>(i % 50));
  }
  const auto a = enc.EncodeToVector(long_ids);
  const auto b = enc.EncodeToVector(trunc_ids);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

TEST(KernelsTest, SgemmZeroDimsAreNoOps) {
  float a = 1.0f, b = 2.0f, c = 3.0f;
  SgemmNN(0, 1, 1, &a, 1, &b, 1, &c, 1);
  SgemmNN(1, 0, 1, &a, 1, &b, 1, &c, 1);
  SgemmNN(1, 1, 0, &a, 1, &b, 1, &c, 1);
  EXPECT_EQ(3.0f, c);
}

TEST(KernelsTest, AlignedAllocatorAligns) {
  std::vector<float, AlignedAllocator<float, 64>> v(100);
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(v.data()) % 64);
}

}  // namespace
}  // namespace kern
}  // namespace deepjoin
