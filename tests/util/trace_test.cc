// Tests for scoped trace spans (src/util/trace.h): span-tree construction
// through DJ_TRACE_SPAN, per-query counter aggregation, the histogram name
// derivation, synthetic-root grafting in Finish(), re-entrant collector
// install, and the inert paths (disabled collector / no collector at all).
#include "util/trace.h"

#include <string>

#include <gtest/gtest.h>

#include "util/metrics.h"

namespace deepjoin {
namespace trace {
namespace {

void Leaf() { DJ_TRACE_SPAN("test.leaf"); }

void Branch() {
  DJ_TRACE_SPAN("test.branch");
  Leaf();
  Leaf();
}

TEST(TraceSpanTest, NestedSpansBuildTree) {
  TraceCollector tc(true);
  {
    DJ_TRACE_SPAN("test.root");
    Branch();
    Leaf();
  }
  const QueryStats stats = tc.Finish();
  EXPECT_EQ(stats.root.name, "test.root");
  ASSERT_EQ(stats.root.children.size(), 2u);
  EXPECT_EQ(stats.root.children[0].name, "test.branch");
  EXPECT_EQ(stats.root.children[1].name, "test.leaf");
  ASSERT_EQ(stats.root.children[0].children.size(), 2u);
  EXPECT_EQ(stats.root.children[0].children[0].name, "test.leaf");
  // The root must take at least as long as any descendant.
  EXPECT_GE(stats.total_ms(), stats.SpanMs("test.branch"));
  EXPECT_GE(stats.SpanMs("test.branch"),
            stats.root.children[0].children[0].elapsed_ms);
}

TEST(TraceSpanTest, SpanMsFindsFirstMatchAndZeroWhenAbsent) {
  QueryStats stats;
  stats.root.name = "a";
  stats.root.elapsed_ms = 10.0;
  stats.root.children.push_back({"b", 4.0, {}});
  stats.root.children.push_back({"b", 2.0, {}});
  EXPECT_DOUBLE_EQ(stats.SpanMs("a"), 10.0);
  EXPECT_DOUBLE_EQ(stats.SpanMs("b"), 4.0);  // first in open order wins
  EXPECT_DOUBLE_EQ(stats.SpanMs("missing"), 0.0);
}

TEST(TraceSpanTest, CountAggregatesByNameAndSorts) {
  TraceCollector tc(true);
  {
    DJ_TRACE_SPAN("test.count_root");
    Count("z.evals", 3);
    Count("a.hops", 1);
    Count("z.evals", 4);
  }
  const QueryStats stats = tc.Finish();
  ASSERT_EQ(stats.counters.size(), 2u);
  EXPECT_EQ(stats.counters[0].name, "a.hops");
  EXPECT_EQ(stats.counters[1].name, "z.evals");
  EXPECT_EQ(stats.CounterValue("z.evals"), 7u);
  EXPECT_EQ(stats.CounterValue("a.hops"), 1u);
  EXPECT_EQ(stats.CounterValue("missing"), 0u);
}

TEST(TraceSpanTest, FinishWithMultipleTopLevelSpansGraftsSyntheticRoot) {
  TraceCollector tc(true);
  tc.OpenSpan("first");
  tc.CloseSpan(2.0);
  tc.OpenSpan("second");
  tc.CloseSpan(3.0);
  const QueryStats stats = tc.Finish();
  EXPECT_EQ(stats.root.name, "query");
  EXPECT_DOUBLE_EQ(stats.total_ms(), 5.0);  // synthetic root sums children
  ASSERT_EQ(stats.root.children.size(), 2u);
  EXPECT_EQ(stats.root.children[0].name, "first");
  EXPECT_EQ(stats.root.children[1].name, "second");
}

TEST(TraceSpanTest, FinishEmptiesTheCollector) {
  TraceCollector tc(true);
  tc.OpenSpan("once");
  tc.CloseSpan(1.0);
  Count("c", 2);
  (void)tc.Finish();
  const QueryStats empty = tc.Finish();
  EXPECT_EQ(empty.root.name, "query");
  EXPECT_DOUBLE_EQ(empty.total_ms(), 0.0);
  EXPECT_TRUE(empty.root.children.empty());
  EXPECT_TRUE(empty.counters.empty());
}

TEST(TraceSpanTest, DisabledCollectorInstallsNothing) {
  ASSERT_EQ(TraceCollector::Current(), nullptr);
  TraceCollector tc(false);
  EXPECT_FALSE(tc.enabled());
  EXPECT_EQ(TraceCollector::Current(), nullptr);
  {
    DJ_TRACE_SPAN("test.uncollected");
  }
  // Nothing was collected: Finish() yields the empty synthetic root.
  const QueryStats stats = tc.Finish();
  EXPECT_EQ(stats.root.name, "query");
  EXPECT_TRUE(stats.root.children.empty());
  EXPECT_DOUBLE_EQ(stats.total_ms(), 0.0);
  EXPECT_TRUE(stats.counters.empty());
}

TEST(TraceSpanTest, NestedCollectorsRestoreOnDestruction) {
  TraceCollector outer(true);
  EXPECT_EQ(TraceCollector::Current(), &outer);
  {
    TraceCollector inner(true);
    EXPECT_EQ(TraceCollector::Current(), &inner);
    {
      DJ_TRACE_SPAN("test.inner_only");
    }
    const QueryStats inner_stats = inner.Finish();
    EXPECT_EQ(inner_stats.root.name, "test.inner_only");
  }
  EXPECT_EQ(TraceCollector::Current(), &outer);
  // The inner collector's spans must not leak into the outer one.
  const QueryStats outer_stats = outer.Finish();
  EXPECT_DOUBLE_EQ(outer_stats.total_ms(), 0.0);
  EXPECT_TRUE(outer_stats.root.children.empty());
}

TEST(TraceSpanTest, SpansRunFineWithNoCollector) {
  ASSERT_EQ(TraceCollector::Current(), nullptr);
  // Still feeds the global histogram; just no per-query tree anywhere.
  DJ_TRACE_SPAN("test.orphan");
}

TEST(TraceSpanTest, SpanFeedsDerivedGlobalHistogram) {
  metrics::Histogram* h = metrics::MetricsRegistry::Global().GetHistogram(
      SpanHistogramName("test.histogram_feed"));
  const u64 before = h->count();
  {
    DJ_TRACE_SPAN("test.histogram_feed");
  }
  EXPECT_EQ(h->count(), before + 1);
}

TEST(TraceSpanTest, KillSwitchSkipsHistogramButKeepsCollector) {
  metrics::Histogram* h = metrics::MetricsRegistry::Global().GetHistogram(
      SpanHistogramName("test.kill_switch"));
  const u64 before = h->count();
  const bool was_enabled = metrics::SetEnabledForTest(false);
  TraceCollector tc(true);
  {
    DJ_TRACE_SPAN("test.kill_switch");
  }
  const QueryStats stats = tc.Finish();
  metrics::SetEnabledForTest(was_enabled);
  EXPECT_EQ(h->count(), before);  // histogram suppressed by DJ_METRICS=off
  EXPECT_EQ(stats.root.name, "test.kill_switch");  // per-query trace kept
}

TEST(SpanHistogramNameTest, MapsDotsAndDashesToUnderscores) {
  EXPECT_EQ(SpanHistogramName("hnsw.search"), "dj_hnsw_search_ms");
  EXPECT_EQ(SpanHistogramName("searcher.ann"), "dj_searcher_ann_ms");
  EXPECT_EQ(SpanHistogramName("two-stage.rerank"), "dj_two_stage_rerank_ms");
}

TEST(QueryStatsTest, ToStringRendersIndentedTreeAndCounters) {
  QueryStats stats;
  stats.root = {"searcher.search", 3.5, {{"searcher.encode", 1.25, {}}}};
  stats.counters.push_back({"hnsw.dist_evals", 42});
  EXPECT_EQ(stats.ToString(),
            "searcher.search: 3.500 ms\n"
            "  searcher.encode: 1.250 ms\n"
            "hnsw.dist_evals = 42\n");
}

TEST(TraceCollectorDeathTest, CloseWithNoOpenSpanAborts) {
  TraceCollector tc(true);
  EXPECT_DEATH(tc.CloseSpan(1.0), "no open span");
}

TEST(TraceCollectorDeathTest, FinishWithOpenSpanAborts) {
  TraceCollector tc(true);
  tc.OpenSpan("dangling");
  EXPECT_DEATH((void)tc.Finish(), "still open");
  tc.CloseSpan(0.0);  // close it so the destructor runs clean
  (void)tc.Finish();
}

}  // namespace
}  // namespace trace
}  // namespace deepjoin
