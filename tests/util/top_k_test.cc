#include "util/top_k.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace deepjoin {
namespace {

TEST(TopKTest, KeepsLargestScores) {
  TopK top(3);
  for (double s : {0.1, 0.9, 0.5, 0.7, 0.2}) {
    top.Push(s, static_cast<u32>(s * 10));
  }
  auto out = top.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].score, 0.9);
  EXPECT_DOUBLE_EQ(out[1].score, 0.7);
  EXPECT_DOUBLE_EQ(out[2].score, 0.5);
}

TEST(TopKTest, TiesBreakBySmallerId) {
  TopK top(2);
  top.Push(0.5, 9);
  top.Push(0.5, 1);
  top.Push(0.5, 4);
  auto out = top.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 4u);
}

TEST(TopKTest, PushReportsAdmission) {
  TopK top(2);
  EXPECT_TRUE(top.Push(0.3, 0));
  EXPECT_TRUE(top.Push(0.4, 1));
  EXPECT_FALSE(top.Push(0.1, 2));
  EXPECT_TRUE(top.Push(0.5, 3));
}

TEST(TopKTest, WorstScoreTracksKthBest) {
  TopK top(2);
  top.Push(0.9, 0);
  top.Push(0.1, 1);
  EXPECT_DOUBLE_EQ(top.WorstScore(), 0.1);
  top.Push(0.5, 2);
  EXPECT_DOUBLE_EQ(top.WorstScore(), 0.5);
}

TEST(TopKTest, FewerThanKItems) {
  TopK top(10);
  top.Push(0.2, 1);
  EXPECT_FALSE(top.Full());
  auto out = top.Take();
  ASSERT_EQ(out.size(), 1u);
}

TEST(TopKTest, MatchesFullSortOnRandomData) {
  Rng rng(5);
  std::vector<Scored> all;
  TopK top(25);
  for (u32 i = 0; i < 500; ++i) {
    const double s = rng.UniformDouble();
    all.push_back({s, i});
    top.Push(s, i);
  }
  std::sort(all.begin(), all.end(), [](const Scored& a, const Scored& b) {
    return b < a;
  });
  all.resize(25);
  auto got = top.Take();
  ASSERT_EQ(got.size(), all.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, all[i].id) << "rank " << i;
  }
}

}  // namespace
}  // namespace deepjoin
