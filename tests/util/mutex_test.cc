// Behavioral tests for the annotated concurrency wrappers in
// src/util/mutex.h. The compile-time half of the contract is covered by the
// thread_safety_negative_compile ctest (Clang only); these tests pin the
// runtime semantics — mutual exclusion, TryLock, condvar wakeups — and run
// under the TSan profile via the `tsan` label.
#include "util/mutex.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  mu.Lock();
  // A different thread must fail TryLock while we hold the mutex
  // (same-thread relock is UB on std::mutex, so probe from a helper).
  bool acquired_while_held = true;
  std::thread probe([&] { acquired_while_held = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired_while_held);

  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitReleasesMutexAndWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 1;
  });
  {
    // If Wait failed to release the mutex, this Lock would deadlock.
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  }
  consumer.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++woken;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
    cv.NotifyAll();
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken, kWaiters);
}

}  // namespace
}  // namespace deepjoin
