// Behavioral tests for the annotated concurrency wrappers in
// src/util/mutex.h. The compile-time half of the contract is covered by the
// thread_safety_negative_compile ctest (Clang only); these tests pin the
// runtime semantics — mutual exclusion, TryLock, condvar wakeups — and run
// under the TSan profile via the `tsan` label.
#include "util/mutex.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  mu.Lock();
  // A different thread must fail TryLock while we hold the mutex
  // (same-thread relock is UB on std::mutex, so probe from a helper).
  bool acquired_while_held = true;
  std::thread probe([&] { acquired_while_held = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(acquired_while_held);

  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitReleasesMutexAndWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;

  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 1;
  });
  {
    // If Wait failed to release the mutex, this Lock would deadlock.
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  }
  consumer.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woken = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++woken;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
    cv.NotifyAll();
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken, kWaiters);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto t0 = std::chrono::steady_clock::now();
  const bool notified = cv.WaitFor(mu, std::chrono::milliseconds(20));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(notified);
  EXPECT_GE(waited, std::chrono::milliseconds(15));
}

TEST(CondVarTest, WaitForReturnsTrueOnNotify) {
  Mutex mu;
  CondVar cv;
  bool entered = false;  // consumer holds mu from here until WaitFor releases
  bool ready = false;
  bool notified = false;

  std::thread consumer([&] {
    MutexLock lock(mu);
    entered = true;
    while (!ready) {
      // A generous bound: the notify must arrive long before it, so a
      // timeout return here is a real failure.
      notified = cv.WaitFor(mu, std::chrono::seconds(30));
      if (!notified) break;
    }
  });
  // Observing entered==true under mu proves the consumer is inside WaitFor
  // (it set the flag with mu held and only releases mu by waiting), so the
  // notify below cannot be lost to a not-yet-waiting consumer.
  for (;;) {
    {
      MutexLock lock(mu);
      if (entered) {
        ready = true;
        cv.NotifyOne();
        break;
      }
    }
    std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(notified);
}

}  // namespace
}  // namespace deepjoin
