#include "util/hash.h"

#include <set>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(HashTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a("hello"), Fnv1a("hello"));
  EXPECT_NE(Fnv1a("hello"), Fnv1a("hellp"));
  EXPECT_NE(Fnv1a(""), Fnv1a("a"));
}

TEST(HashTest, SeededHashFamiliesAreIndependent) {
  // The same key under different seeds should look unrelated.
  std::set<u64> values;
  for (u64 seed = 0; seed < 64; ++seed) {
    values.insert(SeededHash("token", seed));
  }
  EXPECT_EQ(values.size(), 64u);
}

TEST(HashTest, SeededHashIntAndStringDiffer) {
  EXPECT_NE(SeededHash("1", 0), SeededHash(static_cast<u64>(1), 0));
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  const u64 a = Mix64(0x1234);
  const u64 b = Mix64(0x1235);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(HashTest, HashCombineOrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace deepjoin
