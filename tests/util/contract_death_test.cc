// Contract checks: programming errors must trip DJ_CHECK loudly instead
// of corrupting state (failure injection over the API misuse surface).
#include <gtest/gtest.h>

#include "ann/ivfpq.h"
#include "nn/autograd.h"
#include "text/vocab.h"
#include "util/top_k.h"

namespace deepjoin {
namespace {

TEST(ContractDeathTest, TopKZeroAborts) {
  EXPECT_DEATH({ TopK top(0); }, "k > 0");
}

TEST(ContractDeathTest, TopKWorstScoreOnEmptyAborts) {
  TopK top(3);
  EXPECT_DEATH(top.WorstScore(), "empty");
}

TEST(ContractDeathTest, IvfPqAddBeforeTrainAborts) {
  ann::IvfPqConfig c;
  c.dim = 8;
  c.m = 4;
  ann::IvfPqIndex index(c);
  const float v[8] = {0};
  EXPECT_DEATH(index.Add(v), "Train");
}

TEST(ContractDeathTest, IvfPqIndivisibleDimAborts) {
  ann::IvfPqConfig c;
  c.dim = 10;
  c.m = 4;  // 10 % 4 != 0
  EXPECT_DEATH({ ann::IvfPqIndex index(c); }, "divisible");
}

TEST(ContractDeathTest, VocabEncodeBeforeFinalizeAborts) {
  Vocab v(10, 4);
  v.Observe({"a"});
  EXPECT_DEATH(v.Encode("a"), "Finalize");
}

TEST(ContractDeathTest, VocabDoubleFinalizeAborts) {
  Vocab v(10, 4);
  v.Finalize();
  EXPECT_DEATH(v.Finalize(), "twice");
}

TEST(ContractDeathTest, BackwardOnNonScalarAborts) {
  nn::Matrix m(2, 2);
  auto x = nn::MakeVar(m, true);
  EXPECT_DEATH(nn::Backward(x), "rows");
}

TEST(ContractDeathTest, MatMulShapeMismatchAborts) {
  auto a = nn::MakeVar(nn::Matrix(2, 3), true);
  auto b = nn::MakeVar(nn::Matrix(4, 2), true);
  EXPECT_DEATH(nn::MatMul(a, b), "cols");
}

}  // namespace
}  // namespace deepjoin
