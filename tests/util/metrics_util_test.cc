// Tests for the metrics registry (src/util/metrics.h): bucket boundary
// semantics, counter wrap, the DJ_METRICS kill switch, type-clash aborts,
// golden JSON / Prometheus exports, and snapshot consistency while writer
// threads keep incrementing (tsan-labeled via this binary).
#include "util/metrics.h"

#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace deepjoin {
namespace metrics {
namespace {

TEST(CounterTest, AddAndIncrementAccumulate) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("dj_test_events_total");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name returns the same stable pointer.
  EXPECT_EQ(registry.GetCounter("dj_test_events_total"), c);
}

TEST(CounterTest, WrapsModulo64BitsLikePrometheus) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("dj_test_wrap_total");
  c->Add(std::numeric_limits<u64>::max());
  EXPECT_EQ(c->value(), std::numeric_limits<u64>::max());
  c->Add(3);  // wraps: max + 3 == 2 (mod 2^64)
  EXPECT_EQ(c->value(), 2u);
}

TEST(GaugeTest, SetOverwritesAddAccumulates) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("dj_test_depth");
  g->Set(7.5);
  EXPECT_DOUBLE_EQ(g->value(), 7.5);
  g->Set(2.0);
  EXPECT_DOUBLE_EQ(g->value(), 2.0);
  g->Add(0.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
}

TEST(HistogramTest, BucketBoundariesAreLeInclusive) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("dj_test_lat_ms", {1.0, 2.0, 5.0});
  // Prometheus `le` semantics: a sample equal to a bound lands in that
  // bound's bucket, one past it spills into the next.
  h->Record(0.5);  // <= 1.0
  h->Record(1.0);  // <= 1.0 (boundary is inclusive)
  h->Record(1.5);  // <= 2.0
  h->Record(5.0);  // <= 5.0 (last finite bucket, inclusive)
  h->Record(6.0);  // overflow (+Inf)
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->bucket_count(3), 1u);  // overflow bucket
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 5.0 + 6.0);
}

TEST(HistogramTest, DefaultLatencyBucketsCoverMicrosecondsToSeconds) {
  const auto& bounds = Histogram::DefaultLatencyBucketsMs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_LE(bounds.front(), 0.001);   // 1µs in ms
  EXPECT_GE(bounds.back(), 1000.0);   // >= 1s in ms
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bounds must ascend";
  }
}

TEST(KillSwitchTest, DisabledMetricsRecordNothing) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("dj_test_off_total");
  Gauge* g = registry.GetGauge("dj_test_off_gauge");
  Histogram* h = registry.GetHistogram("dj_test_off_ms", {1.0});
  const bool was_enabled = SetEnabledForTest(false);
  c->Add(5);
  g->Set(9.0);
  h->Record(0.5);
  SetEnabledForTest(was_enabled);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // Re-enabled: the same pointers record again.
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(RegistryDeathTest, TypeClashOnOneNameAborts) {
  MetricsRegistry registry;
  registry.GetCounter("dj_test_clash");
  EXPECT_DEATH(registry.GetGauge("dj_test_clash"), "dj_test_clash");
  EXPECT_DEATH(registry.GetHistogram("dj_test_clash"), "dj_test_clash");
}

TEST(RegistryDeathTest, HistogramBoundsMismatchAborts) {
  MetricsRegistry registry;
  registry.GetHistogram("dj_test_hist_ms", {1.0, 2.0});
  EXPECT_EQ(registry.GetHistogram("dj_test_hist_ms", {1.0, 2.0}),
            registry.GetHistogram("dj_test_hist_ms", {1.0, 2.0}));
  EXPECT_DEATH(registry.GetHistogram("dj_test_hist_ms", {1.0, 3.0}),
               "dj_test_hist_ms");
}

TEST(SnapshotTest, GoldenJsonExport) {
  MetricsRegistry registry;
  registry.GetCounter("dj_a_total")->Add(3);
  registry.GetGauge("dj_b_depth")->Set(1.5);
  registry.GetHistogram("dj_c_ms", {1.0, 2.0})->Record(1.5);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json,
            "{\n"
            "  \"counters\": {\n"
            "    \"dj_a_total\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"dj_b_depth\": 1.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"dj_c_ms\": {\"count\": 1, \"sum\": 1.5, "
            "\"bounds\": [1, 2], \"buckets\": [0, 1, 0]}\n"
            "  }\n"
            "}\n");
}

TEST(SnapshotTest, GoldenPrometheusExport) {
  MetricsRegistry registry;
  registry.GetCounter("dj_a_total")->Add(3);
  registry.GetGauge("dj_b_depth")->Set(1.5);
  Histogram* h = registry.GetHistogram("dj_c_ms", {1.0, 2.0});
  h->Record(1.5);
  h->Record(9.0);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_EQ(text,
            "# TYPE dj_a_total counter\n"
            "dj_a_total 3\n"
            "# TYPE dj_b_depth gauge\n"
            "dj_b_depth 1.5\n"
            "# TYPE dj_c_ms histogram\n"
            "dj_c_ms_bucket{le=\"1\"} 0\n"
            "dj_c_ms_bucket{le=\"2\"} 1\n"
            "dj_c_ms_bucket{le=\"+Inf\"} 2\n"
            "dj_c_ms_sum 10.5\n"
            "dj_c_ms_count 2\n");
}

TEST(SnapshotTest, SamplesComeOutSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("dj_z_total");
  registry.GetCounter("dj_a_total");
  registry.GetCounter("dj_m_total");
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "dj_a_total");
  EXPECT_EQ(snap.counters[1].name, "dj_m_total");
  EXPECT_EQ(snap.counters[2].name, "dj_z_total");
}

// TSan coverage: writers hammer a counter and a histogram while the main
// thread repeatedly snapshots. The final tallies must be exact (no lost
// updates) and no intermediate snapshot may exceed the eventual total.
TEST(SnapshotTest, SnapshotUnderConcurrentIncrementsIsConsistent) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("dj_race_total");
  Histogram* h = registry.GetHistogram("dj_race_ms", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(0.25);
      }
    });
  }
  constexpr u64 kTotal = static_cast<u64>(kThreads) * kPerThread;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.Snapshot();
    for (const auto& s : snap.counters) EXPECT_LE(s.value, kTotal);
    for (const auto& s : snap.histograms) EXPECT_LE(s.count, kTotal);
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c->value(), kTotal);
  EXPECT_EQ(h->count(), kTotal);
  EXPECT_EQ(h->bucket_count(0), kTotal);  // every sample <= 0.5
}

}  // namespace
}  // namespace metrics
}  // namespace deepjoin
