// Tests for the lock-rank runtime (src/util/lock_rank.h, util/mutex.h):
// LockOrderGraph bookkeeping with golden JSON/DOT dumps, online cycle
// detection, and — in builds with DJ_LOCK_RANK compiled in — the
// enforcement aborts for rank inversion, re-entry, conflicting rank
// registration, and condvar waits holding a second lock. Enforcement
// cases GTEST_SKIP when the layer is compiled out so the suite stays
// green in release builds.
#include "util/lock_rank.h"

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "util/mutex.h"

namespace deepjoin {
namespace {

using lock_rank::LockOrderGraph;

/// Deliberately violates CondVar::Wait's DJ_REQUIRES(mu) contract for the
/// death test below; the escape hatch keeps the Clang thread-safety build
/// from (correctly) rejecting the call at compile time.
void WaitWithoutHolding(Mutex& mu, CondVar& cv) DJ_NO_THREAD_SAFETY_ANALYSIS {
  cv.Wait(mu);
}

TEST(LockOrderGraphTest, CountsNodesAndDeduplicatesEdges) {
  LockOrderGraph g;
  g.RegisterNode("a.lock", 100, "a.cc:1");
  g.RegisterNode("b.lock", 200, "b.cc:2");
  g.RegisterNode("a.lock", 100, "a.cc:1");  // re-register: no-op
  EXPECT_EQ(g.node_count(), 2u);

  EXPECT_FALSE(g.AddEdge("a.lock", "b.lock", "a.cc:10", "a.cc:11"));
  EXPECT_FALSE(g.AddEdge("a.lock", "b.lock", "x.cc:99", "x.cc:99"));
  EXPECT_EQ(g.edge_count(), 1u);
  // The duplicate bumped the count but kept the first-observed sites.
  EXPECT_NE(g.ToJson().find("\"count\":2,\"from_site\":\"a.cc:10\""),
            std::string::npos)
      << g.ToJson();

  g.Clear();
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(LockOrderGraphTest, GoldenJsonDump) {
  LockOrderGraph g;
  g.RegisterNode("a.lock", 100, "a.cc:1");
  g.RegisterNode("b.lock", 200, "b.cc:2");
  ASSERT_FALSE(g.AddEdge("a.lock", "b.lock", "a.cc:10", "a.cc:11"));
  EXPECT_EQ(
      g.ToJson(),
      "{\"nodes\":["
      "{\"name\":\"a.lock\",\"rank\":100,\"declared_at\":\"a.cc:1\"},"
      "{\"name\":\"b.lock\",\"rank\":200,\"declared_at\":\"b.cc:2\"}],"
      "\"edges\":["
      "{\"from\":\"a.lock\",\"to\":\"b.lock\",\"count\":1,"
      "\"from_site\":\"a.cc:10\",\"to_site\":\"a.cc:11\"}]}");
}

TEST(LockOrderGraphTest, GoldenDotDump) {
  LockOrderGraph g;
  g.RegisterNode("a.lock", 100, "a.cc:1");
  g.RegisterNode("b.lock", 200, "b.cc:2");
  ASSERT_FALSE(g.AddEdge("a.lock", "b.lock", "a.cc:10", "a.cc:11"));
  EXPECT_EQ(g.ToDot(),
            "digraph lock_order {\n"
            "  \"a.lock\" [label=\"a.lock\\nrank=100\"];\n"
            "  \"b.lock\" [label=\"b.lock\\nrank=200\"];\n"
            "  \"a.lock\" -> \"b.lock\" [label=\"1\"];\n"
            "}\n");
}

TEST(LockOrderGraphTest, OnlineCycleDetectionReportsThePath) {
  LockOrderGraph g;
  std::string cycle;
  EXPECT_FALSE(g.AddEdge("a", "b", "s", "s", &cycle));
  EXPECT_FALSE(g.AddEdge("b", "c", "s", "s", &cycle));
  EXPECT_FALSE(g.AddEdge("a", "c", "s", "s", &cycle));  // diamond: acyclic
  EXPECT_TRUE(g.AddEdge("c", "a", "s", "s", &cycle));
  EXPECT_EQ(cycle, "c -> a -> b -> c");
}

TEST(LockRankRuntimeTest, UphillAcquisitionMaintainsDepthAndRecordsEdge) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  Mutex low("test.rt.low", 71);
  Mutex high("test.rt.high", 72);
  EXPECT_EQ(lock_rank::HeldDepth(), 0u);
  {
    MutexLock lo(low);
    EXPECT_EQ(lock_rank::HeldDepth(), 1u);
    MutexLock hi(high);
    EXPECT_EQ(lock_rank::HeldDepth(), 2u);
  }
  EXPECT_EQ(lock_rank::HeldDepth(), 0u);
  const std::string json = LockOrderGraph::Global().ToJson();
  EXPECT_NE(json.find("\"from\":\"test.rt.low\",\"to\":\"test.rt.high\""),
            std::string::npos)
      << json;
}

TEST(LockRankRuntimeTest, UnrankedLocksParticipateWithoutValidation) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  Mutex named("test.rt.named", 77);
  Mutex plain;  // default ctor: unranked, skips rank checks
  MutexLock n(named);
  MutexLock p(plain);
  EXPECT_EQ(lock_rank::HeldDepth(), 2u);
}

TEST(LockRankRuntimeTest, TryLockDownhillIsAllowed) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  // A try-acquire cannot block, so it cannot deadlock: rank order is not
  // enforced, but the acquisition still lands on the held stack.
  Mutex low("test.rt.try_low", 73);
  Mutex high("test.rt.try_high", 74);
  MutexLock hi(high);
  ASSERT_TRUE(low.TryLock());
  EXPECT_EQ(lock_rank::HeldDepth(), 2u);
  low.Unlock();
  EXPECT_EQ(lock_rank::HeldDepth(), 1u);
}

TEST(LockRankRuntimeTest, CondVarWaitSingleLockRoundTrips) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  Mutex mu("test.rt.cv", 75);
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // The wakeup re-acquisition pushed the lock back.
    EXPECT_EQ(lock_rank::HeldDepth(), 1u);
  }
  notifier.join();
}

TEST(LockRankDeathTest, RankInversionAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  Mutex low("test.death.low", 11);
  Mutex high("test.death.high", 22);
  EXPECT_DEATH(
      {
        MutexLock hi(high);
        MutexLock lo(low);
      },
      "lock-rank inversion.*test\\.death\\.low.*test\\.death\\.high");
}

TEST(LockRankDeathTest, EqualRankAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  // Strictly increasing: equal ranks are an inversion too.
  Mutex a("test.death.eq_a", 33);
  Mutex b("test.death.eq_b", 33);
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
      },
      "lock-rank inversion");
}

TEST(LockRankDeathTest, ReentrantAcquisitionAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  Mutex mu("test.death.reentrant", 44);
  EXPECT_DEATH(
      {
        MutexLock outer(mu);
        MutexLock inner(mu);
      },
      "re-entrant acquisition.*test\\.death\\.reentrant");
}

TEST(LockRankDeathTest, ConflictingRankRegistrationAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  EXPECT_DEATH(
      {
        Mutex first("test.death.mismatch", 51);
        Mutex second("test.death.mismatch", 52);
      },
      "exactly one rank");
}

TEST(LockRankDeathTest, CondVarWaitHoldingSecondLockAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  Mutex a("test.death.wait_a", 61);
  Mutex b("test.death.wait_b", 62);
  CondVar cv;
  EXPECT_DEATH(
      {
        MutexLock la(a);
        MutexLock lb(b);
        cv.Wait(b);
      },
      "holding other locks");
}

TEST(LockRankDeathTest, CondVarWaitOnUnheldMutexAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "DJ_LOCK_RANK compiled out";
  Mutex mu("test.death.unheld", 63);
  CondVar cv;
  EXPECT_DEATH(WaitWithoutHolding(mu, cv), "does not hold");
}

}  // namespace
}  // namespace deepjoin
