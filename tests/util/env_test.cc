#include "util/env.h"

#include <cstdio>
#include <cstring>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    path_ = std::string(::testing::TempDir()) + "/env_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".renamed").c_str());
  }
  std::string path_;
};

TEST_F(EnvTest, WriteThenReadBack) {
  Env* env = Env::Default();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile(path_, &file).ok());
  ASSERT_TRUE(file->Append("hello ", 6).ok());
  ASSERT_TRUE(file->Append("world", 5).ok());
  ASSERT_TRUE(file->Flush().ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());

  u64 size = 0;
  ASSERT_TRUE(env->GetFileSize(path_, &size).ok());
  EXPECT_EQ(size, 11u);

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env, path_, &contents).ok());
  EXPECT_EQ(contents, "hello world");
}

TEST_F(EnvTest, RandomAccessReadsAtOffsets) {
  Env* env = Env::Default();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(path_, &file).ok());
    ASSERT_TRUE(file->Append("0123456789", 10).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile(path_, &file).ok());
  char buf[4];
  size_t n = 0;
  ASSERT_TRUE(file->Read(3, 4, buf, &n).ok());
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(std::memcmp(buf, "3456", 4), 0);
  // Short read at EOF is not an error.
  ASSERT_TRUE(file->Read(8, 4, buf, &n).ok());
  EXPECT_EQ(n, 2u);
  ASSERT_TRUE(file->Read(100, 4, buf, &n).ok());
  EXPECT_EQ(n, 0u);
}

TEST_F(EnvTest, RenameReplacesAtomically) {
  Env* env = Env::Default();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(path_, &file).ok());
    ASSERT_TRUE(file->Append("new", 3).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  const std::string target = path_ + ".renamed";
  ASSERT_TRUE(env->RenameFile(path_, target).ok());
  EXPECT_FALSE(env->FileExists(path_));
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env, target, &contents).ok());
  EXPECT_EQ(contents, "new");
}

TEST_F(EnvTest, MissingFileErrors) {
  Env* env = Env::Default();
  std::unique_ptr<RandomAccessFile> file;
  EXPECT_EQ(env->NewRandomAccessFile("/no/such/file", &file).code(),
            StatusCode::kIoError);
  u64 size = 0;
  EXPECT_FALSE(env->GetFileSize("/no/such/file", &size).ok());
  EXPECT_FALSE(env->FileExists("/no/such/file"));
  EXPECT_FALSE(env->RemoveFile("/no/such/file").ok());
}

TEST_F(EnvTest, FaultEnvCountsOperations) {
  FaultInjectionEnv fenv(Env::Default());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fenv.NewWritableFile(path_, &file).ok());
  ASSERT_TRUE(file->Append("a", 1).ok());
  ASSERT_TRUE(file->Append("b", 1).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());
  ASSERT_TRUE(fenv.RenameFile(path_, path_ + ".renamed").ok());
  EXPECT_EQ(fenv.counters().opens, 1);
  EXPECT_EQ(fenv.counters().writes, 2);
  EXPECT_EQ(fenv.counters().syncs, 1);
  EXPECT_EQ(fenv.counters().renames, 1);
  fenv.ResetCounters();
  EXPECT_EQ(fenv.counters().writes, 0);
}

TEST_F(EnvTest, FaultEnvFailsTheNthWrite) {
  FaultInjectionEnv fenv(Env::Default());
  fenv.plan().fail_write_index = 1;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fenv.NewWritableFile(path_, &file).ok());
  ASSERT_TRUE(file->Append("first", 5).ok());
  Status st = file->Append("second", 6);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("injected"), std::string::npos);
  // The plan fires once; later writes succeed again.
  ASSERT_TRUE(file->Append("third", 5).ok());
  ASSERT_TRUE(file->Close().ok());
}

TEST_F(EnvTest, FaultEnvShortWriteTearsTheBuffer) {
  FaultInjectionEnv fenv(Env::Default());
  fenv.plan().fail_write_index = 0;
  fenv.plan().short_write = true;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fenv.NewWritableFile(path_, &file).ok());
  EXPECT_FALSE(file->Append("0123456789", 10).ok());
  ASSERT_TRUE(file->Close().ok());
  // Half the buffer landed on disk: a torn write, not a clean no-op.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(Env::Default(), path_, &contents).ok());
  EXPECT_EQ(contents, "01234");
}

TEST_F(EnvTest, FaultEnvFailsSyncRenameAndOpen) {
  FaultInjectionEnv fenv(Env::Default());
  fenv.plan().fail_sync_index = 0;
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fenv.NewWritableFile(path_, &file).ok());
  EXPECT_FALSE(file->Sync().ok());
  ASSERT_TRUE(file->Close().ok());

  fenv.plan() = FaultPlan();
  fenv.plan().fail_rename_index = 0;
  EXPECT_FALSE(fenv.RenameFile(path_, path_ + ".renamed").ok());
  EXPECT_TRUE(fenv.FileExists(path_));

  // One open already happened above, so indices 1 and 2 are the next two.
  fenv.plan() = FaultPlan();
  fenv.plan().fail_open_index = 2;
  std::unique_ptr<WritableFile> f2;
  ASSERT_TRUE(fenv.NewWritableFile(path_, &f2).ok());
  ASSERT_TRUE(f2->Close().ok());
  EXPECT_FALSE(fenv.NewWritableFile(path_, &f2).ok());
}

TEST_F(EnvTest, MappedRegionSeesFileBytes) {
  Env* env = Env::Default();
  std::string payload(10000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i % 26));
  }
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(path_, &file).ok());
    ASSERT_TRUE(file->Append(payload.data(), payload.size()).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  // Whole file.
  std::shared_ptr<MappedRegion> whole;
  ASSERT_TRUE(env->NewMappedRegion(path_, 0, payload.size(), &whole).ok());
  ASSERT_EQ(whole->length(), payload.size());
  EXPECT_EQ(0, std::memcmp(whole->data(), payload.data(), payload.size()));
  // A page-aligned interior window (the shape DJF1 sections use).
  std::shared_ptr<MappedRegion> window;
  ASSERT_TRUE(env->NewMappedRegion(path_, 4096, 2048, &window).ok());
  ASSERT_EQ(window->length(), 2048u);
  EXPECT_EQ(0, std::memcmp(window->data(), payload.data() + 4096, 2048));
  // The region stays readable after its sibling is released.
  whole.reset();
  EXPECT_EQ(static_cast<const char*>(window->data())[0], payload[4096]);
}

TEST_F(EnvTest, MappedRegionRejectsOutOfRangeAndMissing) {
  Env* env = Env::Default();
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(path_, &file).ok());
    ASSERT_TRUE(file->Append("short", 5).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  std::shared_ptr<MappedRegion> region;
  EXPECT_FALSE(env->NewMappedRegion(path_, 0, 4096, &region).ok());
  EXPECT_FALSE(env->NewMappedRegion(path_, 4096, 1, &region).ok());
  EXPECT_FALSE(
      env->NewMappedRegion("/no/such/file", 0, 1, &region).ok());
}

TEST_F(EnvTest, FaultEnvFailsTheNthMap) {
  FaultInjectionEnv fenv(Env::Default());
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(fenv.NewWritableFile(path_, &file).ok());
    ASSERT_TRUE(file->Append("0123456789", 10).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  fenv.plan().fail_map_index = 1;
  std::shared_ptr<MappedRegion> region;
  ASSERT_TRUE(fenv.NewMappedRegion(path_, 0, 10, &region).ok());
  Status st = fenv.NewMappedRegion(path_, 0, 10, &region);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("injected"), std::string::npos);
  // Fires once; the next map succeeds and the counter kept advancing.
  ASSERT_TRUE(fenv.NewMappedRegion(path_, 0, 10, &region).ok());
  EXPECT_EQ(fenv.counters().maps, 3);
}

}  // namespace
}  // namespace deepjoin
