#include "util/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC32C (Castagnoli) check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // 32 bytes of zeros, from the iSCSI spec (RFC 3720 B.4).
  const char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const u32 one_shot = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    u32 crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleByteCorruption) {
  std::string data = "checksums catch single-byte corruption";
  const u32 clean = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace deepjoin
