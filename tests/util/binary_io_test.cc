#include "util/binary_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

class BinaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test filename: ctest runs each case as its own process, so a
    // shared name races under `ctest -j`.
    path_ = std::string(::testing::TempDir()) + "/binio_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteRawFile(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary);
    out.write(bytes.data(), static_cast<long>(bytes.size()));
  }

  std::string ContainerHeader() {
    const u32 header[2] = {kBinaryIoMagic, kBinaryIoVersion};
    return std::string(reinterpret_cast<const char*>(header), sizeof(header));
  }

  std::string path_;
};

TEST_F(BinaryIoTest, RoundTripAllTypes) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    w.WriteU32(0xDEADBEEF);
    w.WriteU64(0x0123456789ABCDEFULL);
    w.WriteI32(-42);
    w.WriteFloat(3.25f);
    w.WriteDouble(-1.5e100);
    w.WriteString("hello world");
    const float farr[] = {1.0f, -2.0f, 0.5f};
    w.WriteFloatArray(farr, 3);
    const u32 uarr[] = {7, 8};
    w.WriteU32Array(uarr, 2);
    const i32 iarr[] = {-1, 0, 1};
    w.WriteI32Array(iarr, 3);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  u32 a = 0;
  u64 b = 0;
  i32 c = 0;
  float f = 0;
  double d = 0;
  std::string s;
  std::vector<float> fv;
  std::vector<u32> uv;
  std::vector<i32> iv;
  ASSERT_TRUE(r.ReadU32(&a).ok());
  ASSERT_TRUE(r.ReadU64(&b).ok());
  ASSERT_TRUE(r.ReadI32(&c).ok());
  ASSERT_TRUE(r.ReadFloat(&f).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadFloatArray(&fv).ok());
  ASSERT_TRUE(r.ReadU32Array(&uv).ok());
  ASSERT_TRUE(r.ReadI32Array(&iv).ok());
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFULL);
  EXPECT_EQ(c, -42);
  EXPECT_FLOAT_EQ(f, 3.25f);
  EXPECT_DOUBLE_EQ(d, -1.5e100);
  EXPECT_EQ(s, "hello world");
  EXPECT_EQ(fv, (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_EQ(uv, (std::vector<u32>{7, 8}));
  EXPECT_EQ(iv, (std::vector<i32>{-1, 0, 1}));
  EXPECT_TRUE(r.AtEnd());
}

TEST_F(BinaryIoTest, EmptyStringAndArray) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    w.WriteString("");
    w.WriteFloatArray(nullptr, 0);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  std::string s = "sentinel";
  std::vector<float> fv = {1.0f};
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadFloatArray(&fv).ok());
  EXPECT_EQ(s, "");
  EXPECT_TRUE(fv.empty());
}

TEST_F(BinaryIoTest, ReadPastEndIsDataLoss) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    w.WriteU32(7);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  u32 v = 0;
  ASSERT_TRUE(r.ReadU32(&v).ok());
  u64 w = 0;
  Status st = r.ReadU64(&w);  // past EOF
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST_F(BinaryIoTest, TypeMismatchIsDataLoss) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    w.WriteU32(7);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  std::string s;
  Status st = r.ReadString(&s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

// The regression the bounded read exists for: a tiny file whose length
// prefix claims a 2^60-byte string. The reader must reject it as DataLoss
// without ever attempting the allocation (the old reader died with
// bad_alloc or worse).
TEST_F(BinaryIoTest, HugeLengthPrefixInTinyFileIsRejectedNotAllocated) {
  const u64 huge = 1ULL << 60;
  const u32 crc = 0;
  std::string bytes = ContainerHeader();
  bytes.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  bytes.push_back('\x06');  // kTagString payload byte
  WriteRawFile(bytes);

  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  std::string s;
  Status st = r.ReadString(&s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("exceeds remaining file size"),
            std::string::npos)
      << st.ToString();
  EXPECT_TRUE(s.empty());
}

// Same attack against an array read: the element count implied by the
// record length can never exceed the actual file size.
TEST_F(BinaryIoTest, HugeLengthPrefixOnArrayIsRejected) {
  const u64 huge = (1ULL << 60) + 1;
  const u32 crc = 0;
  std::string bytes = ContainerHeader();
  bytes.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  bytes.push_back('\x07');  // kTagFloatArray
  WriteRawFile(bytes);

  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  std::vector<float> fv;
  Status st = r.ReadFloatArray(&fv);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(fv.empty());
}

TEST_F(BinaryIoTest, ZeroLengthRecordIsDataLoss) {
  const u64 zero = 0;
  const u32 crc = 0;
  std::string bytes = ContainerHeader();
  bytes.append(reinterpret_cast<const char*>(&zero), sizeof(zero));
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  bytes.push_back('\x06');
  WriteRawFile(bytes);

  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kDataLoss);
}

TEST_F(BinaryIoTest, BadMagicIsDataLoss) {
  WriteRawFile("this is not a container");
  BinaryReader r(path_);
  Status st = r.Open();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST_F(BinaryIoTest, WrongVersionIsDataLoss) {
  const u32 header[2] = {kBinaryIoMagic, kBinaryIoVersion + 1};
  WriteRawFile(
      std::string(reinterpret_cast<const char*>(header), sizeof(header)));
  BinaryReader r(path_);
  Status st = r.Open();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST_F(BinaryIoTest, TruncatedHeaderIsDataLoss) {
  WriteRawFile("DJ");
  BinaryReader r(path_);
  EXPECT_EQ(r.Open().code(), StatusCode::kDataLoss);
}

TEST_F(BinaryIoTest, CorruptPayloadFailsChecksum) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    w.WriteString("checksummed payload");
    ASSERT_TRUE(w.Close().ok());
  }
  // Flip one payload byte past the header + frame.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes[8 + 12 + 3] ^= 0x01;
  WriteRawFile(bytes);

  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  std::string s;
  Status st = r.ReadString(&s);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
}

TEST_F(BinaryIoTest, AlignedSectionRoundTrip) {
  std::string big(3 * kSectionPageSize + 123, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>(i * 31 + 7);
  }
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    w.WriteU32(77);
    w.WriteAlignedSection(big.data(), big.size());
    w.WriteAlignedSection("tiny", 4);
    w.WriteString("after");
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  u32 v = 0;
  ASSERT_TRUE(r.ReadU32(&v).ok());
  EXPECT_EQ(v, 77u);
  SectionInfo a;
  ASSERT_TRUE(r.ReadSection(&a).ok());
  EXPECT_EQ(a.offset % kSectionPageSize, 0u);
  EXPECT_EQ(a.length, big.size());
  // One CRC per page, last page partial.
  EXPECT_EQ(a.page_crcs.size(), 4u);
  SectionInfo b;
  ASSERT_TRUE(r.ReadSection(&b).ok());
  EXPECT_EQ(b.offset % kSectionPageSize, 0u);
  EXPECT_EQ(b.length, 4u);
  EXPECT_GE(b.offset, a.offset + a.length);
  // Records keep flowing after the sections.
  std::string tail;
  ASSERT_TRUE(r.ReadString(&tail).ok());
  EXPECT_EQ(tail, "after");
  EXPECT_TRUE(r.AtEnd());
  // The payload preads back intact (and CRC-verified).
  std::string got;
  ASSERT_TRUE(r.ReadSectionBytes(a, &got).ok());
  EXPECT_EQ(got, big);
  ASSERT_TRUE(r.ReadSectionBytes(b, &got).ok());
  EXPECT_EQ(got, "tiny");
}

TEST_F(BinaryIoTest, SectionPayloadCorruptionFailsFullCrc) {
  std::string data(2 * kSectionPageSize, 'x');
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    w.WriteAlignedSection(data.data(), data.size());
    ASSERT_TRUE(w.Close().ok());
  }
  SectionInfo info;
  {
    BinaryReader r(path_);
    ASSERT_TRUE(r.Open().ok());
    ASSERT_TRUE(r.ReadSection(&info).ok());
  }
  // Flip one byte inside the second page of the section.
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<long>(info.offset + kSectionPageSize + 9));
    f.put(static_cast<char>('x' ^ 0x10));
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  SectionInfo again;
  // ReadSection itself stays O(1) — it never reads the payload.
  ASSERT_TRUE(r.ReadSection(&again).ok());
  std::string got;
  Status st = r.ReadSectionBytes(again, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

// The pad gap between a section's metadata record and its page-aligned
// payload is the one byte range no CRC covers — ReadSection requires it
// to be all zeros so a flipped bit there cannot hide.
TEST_F(BinaryIoTest, NonzeroSectionPaddingIsDataLoss) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.Open().ok());
    w.WriteU32(1);  // ensures the cursor is not page-aligned
    w.WriteAlignedSection("payload", 7);
    ASSERT_TRUE(w.Close().ok());
  }
  SectionInfo info;
  {
    BinaryReader r(path_);
    ASSERT_TRUE(r.Open().ok());
    u32 v = 0;
    ASSERT_TRUE(r.ReadU32(&v).ok());
    ASSERT_TRUE(r.ReadSection(&info).ok());
  }
  ASSERT_GT(info.offset, 0u);
  {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<long>(info.offset - 1));  // last pad byte
    f.put('\x01');
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  u32 v = 0;
  ASSERT_TRUE(r.ReadU32(&v).ok());
  SectionInfo again;
  Status st = r.ReadSection(&again);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("padding"), std::string::npos) << st.ToString();
}

TEST_F(BinaryIoTest, UnopenableWriterReportsError) {
  BinaryWriter w("/no/such/dir/file.bin");
  EXPECT_FALSE(w.Open().ok());
  EXPECT_FALSE(w.Close().ok());
}

TEST_F(BinaryIoTest, UnopenableReaderReportsError) {
  BinaryReader r("/no/such/dir/file.bin");
  EXPECT_FALSE(r.Open().ok());
}

TEST_F(BinaryIoTest, AtomicSaveReplacesAndPreservesOnFailure) {
  // First save succeeds.
  ASSERT_TRUE(AtomicSave(path_, nullptr, [](BinaryWriter& w) -> Status {
                w.WriteU32(1);
                return w.status();
              }).ok());
  // Second save fails inside fill: the original artifact must survive.
  Status st = AtomicSave(path_, nullptr, [](BinaryWriter& w) -> Status {
    w.WriteU32(2);
    return Status::Internal("simulated fill failure");
  });
  ASSERT_FALSE(st.ok());
  BinaryReader r(path_);
  ASSERT_TRUE(r.Open().ok());
  u32 v = 0;
  ASSERT_TRUE(r.ReadU32(&v).ok());
  EXPECT_EQ(v, 1u);
  // No stray tmp file left behind.
  EXPECT_FALSE(Env::Default()->FileExists(path_ + ".tmp"));
}

}  // namespace
}  // namespace deepjoin
