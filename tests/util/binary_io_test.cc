#include "util/binary_io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

class BinaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string(::testing::TempDir()) + "/binio.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(BinaryIoTest, RoundTripAllTypes) {
  {
    BinaryWriter w(path_);
    ASSERT_TRUE(w.ok());
    w.WriteU32(0xDEADBEEF);
    w.WriteU64(0x0123456789ABCDEFULL);
    w.WriteI32(-42);
    w.WriteFloat(3.25f);
    w.WriteDouble(-1.5e100);
    w.WriteString("hello world");
    const float arr[] = {1.0f, -2.0f, 0.5f};
    w.WriteFloatArray(arr, 3);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadI32(), -42);
  EXPECT_FLOAT_EQ(r.ReadFloat(), 3.25f);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), -1.5e100);
  EXPECT_EQ(r.ReadString(), "hello world");
  auto arr = r.ReadFloatArray();
  EXPECT_EQ(arr, (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_TRUE(r.ok());
}

TEST_F(BinaryIoTest, EmptyStringAndArray) {
  {
    BinaryWriter w(path_);
    w.WriteString("");
    w.WriteFloatArray(nullptr, 0);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.ReadFloatArray().empty());
  EXPECT_TRUE(r.ok());
}

TEST_F(BinaryIoTest, ReadPastEndFlagsFailure) {
  {
    BinaryWriter w(path_);
    w.WriteU32(7);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path_);
  r.ReadU32();
  r.ReadU64();  // past EOF
  EXPECT_FALSE(r.ok());
}

TEST_F(BinaryIoTest, UnopenableWriterReportsError) {
  BinaryWriter w("/no/such/dir/file.bin");
  EXPECT_FALSE(w.ok());
  EXPECT_FALSE(w.Close().ok());
}

TEST_F(BinaryIoTest, UnopenableReaderReportsError) {
  BinaryReader r("/no/such/dir/file.bin");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace deepjoin
