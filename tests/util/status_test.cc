#include "util/status.h"

#include <gtest/gtest.h>

namespace deepjoin {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, ServingCodesRenderTheirNames) {
  EXPECT_EQ(Status::ResourceExhausted("queue full").ToString(),
            "ResourceExhausted: queue full");
  EXPECT_EQ(Status::DeadlineExceeded("too late").ToString(),
            "DeadlineExceeded: too late");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    DJ_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace deepjoin
