// TSan-labeled serving stress (DESIGN.md §13): open-loop clients with
// mixed deadlines racing the dispatcher while a mutator churns the live
// index underneath — the admission queue, the batcher's intrusive list,
// the RCU snapshot swap, and the completion callbacks all under
// -fsanitize=thread via tools/check.sh. The load-bearing invariant:
// every admitted request gets exactly one completion, and every
// completion is OK or DeadlineExceeded.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/searcher.h"
#include "lake/generator.h"
#include "serve/query_service.h"

namespace deepjoin {
namespace serve {
namespace {

class ServeStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(4242));
    repo_ = gen.GenerateRepository(120);
    queries_ = gen.GenerateQueries(8);
    FastTextConfig fc;
    fc.dim = 8;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<core::FastTextColumnEncoder>(
        embedder_.get(), core::TransformConfig{});
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<core::FastTextColumnEncoder> encoder_;
};

TEST_F(ServeStressTest, BlockingClientsRaceLiveMutator) {
  core::SearcherConfig sc;
  // HNSW: the one backend with a concurrent insert/delete/search contract
  // (DESIGN.md §12) — flat has no internal synchronisation, so in-place
  // mutation may not race its scans (snapshot *rebuilds* may: see
  // BlockingClientsRaceSnapshotRebuilds).
  sc.backend = core::AnnBackend::kHnsw;
  core::EmbeddingSearcher searcher(encoder_.get(), sc);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());

  QueryServiceConfig cfg;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait_ms = 0.5;
  QueryService service(&searcher, cfg);
  service.Start();

  // Mutator: adds and removes race the batched searches through the RCU
  // snapshot swap (mutations serialize on the writer token internally).
  std::atomic<bool> done{false};
  std::thread mutator([&] {
    u32 next_remove = 0;
    for (int it = 0; !done.load(std::memory_order_acquire); ++it) {
      if (it % 3 == 2) {
        (void)searcher.RemoveColumn(next_remove++);
      } else {
        (void)searcher.AddColumn(
            repo_.column(static_cast<u32>(it) % repo_.size()));
      }
      if (it % 50 == 49) (void)searcher.Compact();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kClients = 3;
  constexpr int kPerClient = 40;
  std::atomic<int> ok{0}, expired{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerClient; ++i) {
        // Every 4th request gets a deadline tight enough to expire at any
        // of the three stages (queued / batched / executing).
        const Deadline dl = (i % 4 == 3) ? Deadline::AfterMillis(0.05)
                                         : Deadline::AfterMillis(2000);
        core::EmbeddingSearcher::SearchResult out;
        const Status st = service.Query(
            queries_[(i + t) % queries_.size()], {.k = 5}, dl, &out);
        if (st.ok()) {
          EXPECT_LE(out.ids.size(), 5u);
          ok.fetch_add(1);
        } else {
          ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded)
              << st.ToString();
          expired.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  done.store(true, std::memory_order_release);
  mutator.join();
  service.Stop();

  // Exactly one outcome per request, and the slow majority all complete.
  EXPECT_EQ(ok.load() + expired.load(), kClients * kPerClient);
  EXPECT_GT(ok.load(), 0);
}

// Flat-backend racing: the streaming dispatcher's shared scan pins a
// snapshot while a mutator republishes new ones (BuildIndex → RCU swap),
// so the session's stale-drain-reopen edge runs under TSan. In-place
// flat mutation is out of contract; whole-snapshot replacement is not.
TEST_F(ServeStressTest, BlockingClientsRaceSnapshotRebuilds) {
  core::SearcherConfig sc;
  sc.backend = core::AnnBackend::kFlat;
  core::EmbeddingSearcher searcher(encoder_.get(), sc);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());

  QueryServiceConfig cfg;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_wait_ms = 0.5;
  QueryService service(&searcher, cfg);
  service.Start();

  std::atomic<bool> done{false};
  std::thread rebuilder([&] {
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(searcher.BuildIndex(repo_).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  constexpr int kClients = 3;
  constexpr int kPerClient = 40;
  std::atomic<int> ok{0}, expired{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerClient; ++i) {
        const Deadline dl = (i % 4 == 3) ? Deadline::AfterMillis(0.05)
                                         : Deadline::AfterMillis(2000);
        core::EmbeddingSearcher::SearchResult out;
        const Status st = service.Query(
            queries_[(i + t) % queries_.size()], {.k = 5}, dl, &out);
        if (st.ok()) {
          EXPECT_EQ(out.ids.size(), 5u);
          ok.fetch_add(1);
        } else {
          ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded)
              << st.ToString();
          expired.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  done.store(true, std::memory_order_release);
  rebuilder.join();
  service.Stop();

  EXPECT_EQ(ok.load() + expired.load(), kClients * kPerClient);
  EXPECT_GT(ok.load(), 0);
}

TEST_F(ServeStressTest, AsyncFloodCompletesEachAdmittedRequestOnce) {
  core::SearcherConfig sc;
  sc.backend = core::AnnBackend::kFlat;
  core::EmbeddingSearcher searcher(encoder_.get(), sc);
  ASSERT_TRUE(searcher.BuildIndex(repo_).ok());

  QueryServiceConfig cfg;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_queue = 16;  // small queue: force real rejections
  cfg.batcher.max_wait_ms = 0.2;
  QueryService service(&searcher, cfg);
  service.Start();

  constexpr int kTotal = 200;
  std::vector<Request> reqs(kTotal);
  // One completion slot per request: `done` increments exactly its own.
  std::vector<std::atomic<int>> completions(kTotal);
  for (auto& c : completions) c.store(0);
  std::atomic<int> admitted{0}, rejected{0};

  constexpr int kThreads = 2;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = t; i < kTotal; i += kThreads) {
        Request& r = reqs[i];
        r.query = &queries_[i % queries_.size()];
        r.options = {.k = 3};
        r.deadline = (i % 7 == 6) ? Deadline::AfterMillis(0.1)
                                  : Deadline::Infinite();
        r.ctx = &completions[i];
        r.done = [](Request* self) {
          static_cast<std::atomic<int>*>(self->ctx)->fetch_add(1);
        };
        const Status st = service.Submit(&r);
        if (st.ok()) {
          admitted.fetch_add(1);
        } else {
          ASSERT_TRUE(st.code() == StatusCode::kResourceExhausted ||
                      st.code() == StatusCode::kDeadlineExceeded)
              << st.ToString();
          rejected.fetch_add(1);
          completions[i].store(-1);  // mark: must never complete
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  service.Stop();  // drains every admitted request

  int completed = 0;
  for (int i = 0; i < kTotal; ++i) {
    const int c = completions[i].load();
    if (c == -1) continue;  // rejected at admission: untouched by service
    EXPECT_EQ(c, 1) << "request " << i << " completed " << c << " times";
    ++completed;
  }
  EXPECT_EQ(completed, admitted.load());
  EXPECT_EQ(admitted.load() + rejected.load(), kTotal);
  // The tiny queue under a 2-thread flood must have pushed back at least
  // once — otherwise this test isn't exercising backpressure.
  EXPECT_GT(rejected.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace deepjoin
