// End-to-end QueryService tests (DESIGN.md §13): batched results match the
// single-query path, deadline expiry short-circuits before encode
// (metrics-asserted), backpressure surfaces as ResourceExhausted, and the
// SLO counters account for every submitted request.
#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/searcher.h"
#include "lake/generator.h"
#include "util/metrics.h"

namespace deepjoin {
namespace serve {
namespace {

u64 CounterValue(const char* name) {
  return metrics::MetricsRegistry::Global().GetCounter(name)->value();
}

class ServeQueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lake::LakeGenerator gen(lake::LakeConfig::Webtable(808));
    repo_ = gen.GenerateRepository(300);
    queries_ = gen.GenerateQueries(8);
    FastTextConfig fc;
    fc.dim = 16;
    embedder_ = std::make_unique<FastTextEmbedder>(fc);
    encoder_ = std::make_unique<core::FastTextColumnEncoder>(
        embedder_.get(), core::TransformConfig{});
    core::SearcherConfig sc;
    sc.backend = core::AnnBackend::kFlat;
    searcher_ = std::make_unique<core::EmbeddingSearcher>(encoder_.get(), sc);
    ASSERT_TRUE(searcher_->BuildIndex(repo_).ok());
  }

  lake::Repository repo_;
  std::vector<lake::Column> queries_;
  std::unique_ptr<FastTextEmbedder> embedder_;
  std::unique_ptr<core::FastTextColumnEncoder> encoder_;
  std::unique_ptr<core::EmbeddingSearcher> searcher_;
};

TEST_F(ServeQueryServiceTest, BlockingQueryMatchesDirectSearch) {
  QueryService service(searcher_.get(), QueryServiceConfig{});
  service.Start();
  for (const auto& q : queries_) {
    core::EmbeddingSearcher::SearchResult served;
    ASSERT_TRUE(
        service.Query(q, {.k = 10}, Deadline::Infinite(), &served).ok());
    auto direct = searcher_->Search(q, {.k = 10, .collect_stats = false});
    EXPECT_EQ(served.ids, direct.ids);
  }
  service.Stop();
}

TEST_F(ServeQueryServiceTest, AsyncBatchCompletesEveryRequest) {
  QueryServiceConfig cfg;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait_ms = 1.0;
  QueryService service(searcher_.get(), cfg);
  service.Start();
  constexpr size_t kInFlight = 16;
  std::vector<Request> reqs(kInFlight);
  std::atomic<int> completions{0};
  for (size_t i = 0; i < kInFlight; ++i) {
    reqs[i].query = &queries_[i % queries_.size()];
    reqs[i].options = {.k = 5};
    reqs[i].ctx = &completions;
    reqs[i].done = [](Request* r) {
      static_cast<std::atomic<int>*>(r->ctx)->fetch_add(1);
    };
    ASSERT_TRUE(service.Submit(&reqs[i]).ok());
  }
  service.Stop();  // drains: exactly one completion per admitted request
  EXPECT_EQ(completions.load(), static_cast<int>(kInFlight));
  for (auto& r : reqs) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.result.ids.size(), 5u);
    EXPECT_GE(r.total_ms, r.queue_ms);
  }
}

TEST_F(ServeQueryServiceTest, MixedOptionsSplitIntoCompatibleRuns) {
  QueryServiceConfig cfg;
  cfg.batcher.max_batch = 8;
  QueryService service(searcher_.get(), cfg);
  // Submit-before-Start so the mixed batch is collected as one flush.
  std::vector<Request> reqs(6);
  std::atomic<int> completions{0};
  for (size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].query = &queries_[i % queries_.size()];
    reqs[i].options = {.k = (i % 2 == 0) ? size_t{3} : size_t{7}};
    reqs[i].ctx = &completions;
    reqs[i].done = [](Request* r) {
      static_cast<std::atomic<int>*>(r->ctx)->fetch_add(1);
    };
    ASSERT_TRUE(service.Submit(&reqs[i]).ok());
  }
  service.Start();
  service.Stop();
  EXPECT_EQ(completions.load(), 6);
  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(reqs[i].status.ok());
    EXPECT_EQ(reqs[i].result.ids.size(), reqs[i].options.k);
  }
}

// The acceptance-criteria test: a request whose deadline expires in the
// queue completes with DeadlineExceeded WITHOUT entering the encode/search
// stage — asserted through the metrics the SLO layer exports:
// dj_serve_expired_total moves, dj_searcher_searches_total does not.
TEST_F(ServeQueryServiceTest, ServeDeadlineExpiryShortCircuitsBeforeEncode) {
  QueryServiceConfig cfg;
  cfg.batcher.max_wait_ms = 10000;
  cfg.batcher.idle_poll_ms = 10000;
  QueryService service(searcher_.get(), cfg);
  const u64 searches_before = CounterValue("dj_searcher_searches_total");
  const u64 expired_before = CounterValue("dj_serve_expired_total");

  Request req;
  req.query = &queries_[0];
  req.options = {.k = 5};
  req.deadline = Deadline::AfterMillis(5);
  req.done = [](Request*) {};
  // Service not started: the request sits queued past its deadline; the
  // drain pass in Stop() must expire it, not execute it.
  ASSERT_TRUE(service.Submit(&req).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  service.Stop();

  EXPECT_EQ(req.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(req.result.ids.empty());
  EXPECT_EQ(CounterValue("dj_serve_expired_total"), expired_before + 1);
  EXPECT_EQ(CounterValue("dj_searcher_searches_total"), searches_before)
      << "expired request must not reach the encode/search stage";
}

// Expiry at admission: Submit itself refuses an already-expired request.
TEST_F(ServeQueryServiceTest, ServeDeadlineExpiredAtAdmission) {
  QueryService service(searcher_.get(), QueryServiceConfig{});
  service.Start();
  core::EmbeddingSearcher::SearchResult out;
  const u64 searches_before = CounterValue("dj_searcher_searches_total");
  Status st = service.Query(queries_[0], {.k = 5}, Deadline::AfterMillis(-1),
                            &out);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CounterValue("dj_searcher_searches_total"), searches_before);
  service.Stop();
}

// Deterministic backpressure: with the dispatcher not yet running, the
// queue fills to exactly max_queue and the next Submit is rejected with
// ResourceExhausted (and counted as such).
TEST_F(ServeQueryServiceTest, ServeBackpressureRejectsPastMaxQueue) {
  QueryServiceConfig cfg;
  cfg.batcher.max_queue = 8;
  QueryService service(searcher_.get(), cfg);
  const u64 rejected_before = CounterValue("dj_serve_rejected_total");
  std::vector<Request> reqs(9);
  for (size_t i = 0; i < 8; ++i) {
    reqs[i].query = &queries_[0];
    reqs[i].done = [](Request*) {};
    ASSERT_TRUE(service.Submit(&reqs[i]).ok());
  }
  reqs[8].query = &queries_[0];
  reqs[8].done = [](Request*) {};
  EXPECT_EQ(service.Submit(&reqs[8]).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(CounterValue("dj_serve_rejected_total"), rejected_before + 1);
  // Start/Stop drains the 8 admitted requests; the rejected node is
  // untouched (caller still owns it, no completion fires).
  service.Start();
  service.Stop();
  for (size_t i = 0; i < 8; ++i) EXPECT_TRUE(reqs[i].status.ok());
  EXPECT_TRUE(reqs[8].status.ok()) << "rejected request must not be written";
  EXPECT_TRUE(reqs[8].result.ids.empty());
}

// Every submitted request is accounted exactly once across the admission
// and completion counters.
TEST_F(ServeQueryServiceTest, SloCountersBalance) {
  QueryServiceConfig cfg;
  cfg.batcher.max_batch = 4;
  QueryService service(searcher_.get(), cfg);
  const u64 admitted0 = CounterValue("dj_serve_admitted_total");
  const u64 completed0 = CounterValue("dj_serve_completed_total");
  const u64 batches0 = CounterValue("dj_serve_batches_total");
  service.Start();
  for (int i = 0; i < 12; ++i) {
    core::EmbeddingSearcher::SearchResult out;
    ASSERT_TRUE(service
                    .Query(queries_[i % queries_.size()], {.k = 3},
                           Deadline::Infinite(), &out)
                    .ok());
  }
  service.Stop();
  EXPECT_EQ(CounterValue("dj_serve_admitted_total") - admitted0, 12u);
  EXPECT_EQ(CounterValue("dj_serve_completed_total") - completed0, 12u);
  EXPECT_GE(CounterValue("dj_serve_batches_total") - batches0, 1u);
}

// The searcher-level streaming session behind the dispatcher's flat-path
// execution: encodes on Board, maps index ids to repository column ids on
// Harvest, and reports staleness once the searcher publishes a new
// snapshot (the dispatcher's cue to drain and reopen).
TEST_F(ServeQueryServiceTest, StreamScanSessionMatchesSearchAndGoesStale) {
  auto scan = searcher_->NewStreamScan();
  ASSERT_TRUE(scan.valid());
  EXPECT_FALSE(scan.stale());
  const size_t slot = scan.Board(queries_[0], 10);
  std::vector<size_t> done;
  while (scan.Step(&done) == 0) {
    ASSERT_FALSE(scan.empty());
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], slot);
  core::EmbeddingSearcher::SearchResult out;
  scan.Harvest(slot, &out);
  const auto direct =
      searcher_->Search(queries_[0], {.k = 10, .collect_stats = false});
  EXPECT_EQ(out.ids, direct.ids);
  EXPECT_TRUE(scan.empty());
  // A republished snapshot (rebuild) makes the pinned session stale.
  ASSERT_TRUE(searcher_->BuildIndex(repo_).ok());
  EXPECT_TRUE(scan.stale());
}

TEST_F(ServeQueryServiceTest, StreamScanInvalidOffFlatBackend) {
  core::SearcherConfig sc;
  sc.backend = core::AnnBackend::kHnsw;
  core::EmbeddingSearcher hnsw(encoder_.get(), sc);
  // No index yet: invalid rather than aborting.
  EXPECT_FALSE(hnsw.NewStreamScan().valid());
  ASSERT_TRUE(hnsw.BuildIndex(repo_).ok());
  // HNSW has no shared scan — the dispatcher falls back to ExecuteBatch.
  EXPECT_FALSE(hnsw.NewStreamScan().valid());
}

}  // namespace
}  // namespace serve
}  // namespace deepjoin
