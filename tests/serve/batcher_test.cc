// Batcher state-machine tests (DESIGN.md §13): flush-on-size /
// flush-on-wait / flush-on-drain, deadline handling at the admission and
// queued stages, backpressure, and the allocation-free dispatch contract.
#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "util/alloc_guard.h"

namespace deepjoin {
namespace serve {
namespace {

void NoopDone(Request*) {}

Request MakeRequest() {
  Request r;
  r.done = &NoopDone;
  return r;
}

class ServeBatcherTest : public ::testing::Test {
 protected:
  // Collects with generous caps into the fixture arrays.
  size_t Collect(Batcher* b, size_t* num_expired) {
    batch_.assign(64, nullptr);
    expired_.assign(64, nullptr);
    return b->CollectBatch(batch_.data(), batch_.size(), expired_.data(),
                           expired_.size(), num_expired);
  }

  std::vector<Request*> batch_;
  std::vector<Request*> expired_;
};

TEST_F(ServeBatcherTest, FlushesOnBatchSize) {
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_ms = 10000;  // wait flush must not be what fires
  Batcher b(cfg);
  std::vector<Request> reqs(6, MakeRequest());
  for (auto& r : reqs) ASSERT_TRUE(b.Submit(&r).ok());
  size_t num_expired = 0;
  // 6 queued >= max_batch: collect returns immediately with exactly
  // max_batch in FIFO order, leaving the remainder queued.
  size_t n = Collect(&b, &num_expired);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(num_expired, 0u);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(batch_[i], &reqs[i]);
  EXPECT_EQ(b.depth(), 2u);
}

TEST_F(ServeBatcherTest, FlushesOnMaxWait) {
  BatcherConfig cfg;
  cfg.max_batch = 64;
  cfg.max_wait_ms = 5;
  Batcher b(cfg);
  Request r = MakeRequest();
  ASSERT_TRUE(b.Submit(&r).ok());
  size_t num_expired = 0;
  const auto t0 = std::chrono::steady_clock::now();
  size_t n = Collect(&b, &num_expired);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(batch_[0], &r);
  // A lone request flushes once it has waited ~max_wait_ms, not at the
  // (much larger) idle tick and not immediately.
  EXPECT_GE(waited_ms, 1.0);
  EXPECT_LT(waited_ms, 1000.0);
}

TEST_F(ServeBatcherTest, StopDrainsQueuedRequestsThenReturnsEmpty) {
  BatcherConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait_ms = 10000;
  Batcher b(cfg);
  std::vector<Request> reqs(3, MakeRequest());
  for (auto& r : reqs) ASSERT_TRUE(b.Submit(&r).ok());
  b.Stop();
  EXPECT_TRUE(b.stopped());
  // Stopped: everything queued flushes immediately in FIFO batches...
  size_t num_expired = 0;
  EXPECT_EQ(Collect(&b, &num_expired), 2u);
  EXPECT_EQ(Collect(&b, &num_expired), 1u);
  EXPECT_EQ(batch_[0], &reqs[2]);
  // ...then CollectBatch reports fully drained without blocking.
  EXPECT_EQ(Collect(&b, &num_expired), 0u);
  EXPECT_EQ(num_expired, 0u);
  // And new admissions are refused.
  Request late = MakeRequest();
  EXPECT_EQ(b.Submit(&late).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeBatcherTest, ExpiredAtSubmitIsRejectedWithoutQueueing) {
  Batcher b(BatcherConfig{});
  Request r = MakeRequest();
  r.deadline = Deadline::AfterMillis(-1);  // already past
  EXPECT_EQ(b.Submit(&r).code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(b.depth(), 0u);
}

TEST_F(ServeBatcherTest, QueuedExpiryIsOutlistedNotBatched) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_ms = 10000;
  Batcher b(cfg);
  Request expires = MakeRequest();
  expires.deadline = Deadline::AfterMillis(2);
  Request keeps = MakeRequest();
  ASSERT_TRUE(b.Submit(&expires).ok());
  ASSERT_TRUE(b.Submit(&keeps).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The expired node comes back through the expired list; the live one is
  // flushed (its presence behind an expiry must not strand it).
  size_t num_expired = 0;
  size_t n = Collect(&b, &num_expired);
  ASSERT_EQ(num_expired, 1u);
  EXPECT_EQ(expired_[0], &expires);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(batch_[0], &keeps);
  EXPECT_EQ(b.depth(), 0u);
}

TEST_F(ServeBatcherTest, NeverWaitsPastEarliestDeadline) {
  BatcherConfig cfg;
  cfg.max_batch = 64;
  cfg.max_wait_ms = 10000;  // the wait flush alone would sit for 10s
  cfg.idle_poll_ms = 10000;
  Batcher b(cfg);
  Request r = MakeRequest();
  r.deadline = Deadline::AfterMillis(20);
  ASSERT_TRUE(b.Submit(&r).ok());
  size_t num_expired = 0;
  const auto t0 = std::chrono::steady_clock::now();
  size_t n = Collect(&b, &num_expired);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  // The collect wakes at the request's deadline (~20ms), orders of
  // magnitude before max_wait/idle tick, and hands it back as expired.
  EXPECT_LT(waited_ms, 2000.0);
  EXPECT_EQ(n, 0u);
  ASSERT_EQ(num_expired, 1u);
  EXPECT_EQ(expired_[0], &r);
}

TEST_F(ServeBatcherTest, BackpressurePastMaxQueue) {
  BatcherConfig cfg;
  cfg.max_queue = 3;
  Batcher b(cfg);
  std::vector<Request> reqs(4, MakeRequest());
  for (size_t i = 0; i < 3; ++i) ASSERT_TRUE(b.Submit(&reqs[i]).ok());
  EXPECT_EQ(b.Submit(&reqs[3]).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.depth(), 3u);
  // Draining one batch frees admission again.
  size_t num_expired = 0;
  (void)Collect(&b, &num_expired);
  EXPECT_TRUE(b.Submit(&reqs[3]).ok());
}

// The steady-state dispatch path allocates nothing: Submit threads the
// caller-owned node into the intrusive queue, CollectBatch moves pointers
// into a caller-provided array. Enforced for real in guard-enabled builds
// (check.sh alloc-guard leg); elsewhere the ban is a no-op and the tally
// reads zero either way.
TEST_F(ServeBatcherTest, DispatchPathIsAllocationFree) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  Batcher b(cfg);
  std::vector<Request> reqs(8, MakeRequest());
  Request* batch[8];
  Request* expired[8];
  size_t num_expired = 0;
  // Warm-up round: the first mutex acquisition on a thread allocates the
  // lock-rank TLS held-stack (guard-enabled builds) — one-time cost, not
  // part of the steady state the ban covers.
  ASSERT_TRUE(b.Submit(&reqs[0]).ok());
  ASSERT_EQ(b.CollectBatch(batch, 8, expired, 8, &num_expired), 1u);
  alloc_guard::ScopedAllocCount tally;
  {
    alloc_guard::ScopedAllocBan ban("serve dispatch steady state");
    for (auto& r : reqs) ASSERT_TRUE(b.Submit(&r).ok());
    ASSERT_EQ(b.CollectBatch(batch, 8, expired, 8, &num_expired), 8u);
    size_t try_expired = 0;
    // TryCollect shares the pointer-surgery-only contract.
    for (auto& r : reqs) ASSERT_TRUE(b.Submit(&r).ok());
    ASSERT_EQ(b.TryCollect(batch, 8, expired, 8, &try_expired), 8u);
  }
  EXPECT_EQ(tally.allocations(), 0u);
}

// TryCollect is the streaming dispatcher's boarding call: whatever is
// queued comes back immediately — no flush-window wait (the scan it
// boards onto is already running).
TEST_F(ServeBatcherTest, TryCollectTakesImmediatelyWithoutWaiting) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_ms = 10000;  // a blocking collect would sit here
  cfg.idle_poll_ms = 10000;
  Batcher b(cfg);
  std::vector<Request> reqs(3, MakeRequest());
  for (auto& r : reqs) ASSERT_TRUE(b.Submit(&r).ok());
  batch_.assign(64, nullptr);
  expired_.assign(64, nullptr);
  size_t num_expired = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const size_t n = b.TryCollect(batch_.data(), batch_.size(),
                                expired_.data(), expired_.size(),
                                &num_expired);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited_ms, 1000.0);  // no 10s flush window
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(num_expired, 0u);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(batch_[i], &reqs[i]);  // FIFO
  EXPECT_EQ(b.depth(), 0u);
}

TEST_F(ServeBatcherTest, TryCollectEmptyQueueReturnsZeroImmediately) {
  Batcher b(BatcherConfig{});
  batch_.assign(4, nullptr);
  expired_.assign(4, nullptr);
  size_t num_expired = 7;
  EXPECT_EQ(b.TryCollect(batch_.data(), batch_.size(), expired_.data(),
                         expired_.size(), &num_expired),
            0u);
  EXPECT_EQ(num_expired, 0u);
}

TEST_F(ServeBatcherTest, TryCollectSweepsQueuedExpirations) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  Batcher b(cfg);
  Request expires = MakeRequest();
  expires.deadline = Deadline::AfterMillis(2);
  Request keeps = MakeRequest();
  ASSERT_TRUE(b.Submit(&expires).ok());
  ASSERT_TRUE(b.Submit(&keeps).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  batch_.assign(8, nullptr);
  expired_.assign(8, nullptr);
  size_t num_expired = 0;
  const size_t n = b.TryCollect(batch_.data(), batch_.size(),
                                expired_.data(), expired_.size(),
                                &num_expired);
  ASSERT_EQ(num_expired, 1u);
  EXPECT_EQ(expired_[0], &expires);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(batch_[0], &keeps);
}

TEST_F(ServeBatcherTest, TryCollectRespectsBatchCap) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  Batcher b(cfg);
  std::vector<Request> reqs(5, MakeRequest());
  for (auto& r : reqs) ASSERT_TRUE(b.Submit(&r).ok());
  batch_.assign(8, nullptr);
  expired_.assign(8, nullptr);
  size_t num_expired = 0;
  // The cap models the scan's free capacity (max_batch - active riders).
  EXPECT_EQ(b.TryCollect(batch_.data(), 2, expired_.data(), expired_.size(),
                         &num_expired),
            2u);
  EXPECT_EQ(b.depth(), 3u);
}

}  // namespace
}  // namespace serve
}  // namespace deepjoin
