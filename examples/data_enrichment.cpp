// Data enrichment for ML (the paper's motivating application, §1): given a
// "training table" with a key column, find lake tables that can be joined
// onto the key to add features, then materialise the best join and report
// coverage — comparing DeepJoin's picks against an exact JOSIE run.
//
// Run:  ./build/examples/data_enrichment [--repo=3000]
#include <cstdio>
#include <unordered_map>

#include "core/deepjoin.h"
#include "join/josie.h"
#include "lake/generator.h"
#include "util/flags.h"

using namespace deepjoin;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);

  lake::LakeGenerator gen(lake::LakeConfig::Webtable(21));
  lake::Repository repo =
      gen.GenerateRepository(static_cast<size_t>(flags.GetInt("repo", 3000)));

  FastTextConfig fc;
  fc.dim = 24;
  FastTextEmbedder pretrained(fc);
  pretrained.TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);

  auto sample = gen.GenerateQueries(300, 0xE218);
  core::DeepJoinConfig cfg;
  cfg.finetune.max_steps = 60;
  cfg.finetune.batch_size = 16;
  auto deepjoin = core::DeepJoin::Train(sample, pretrained, cfg);
  DJ_CHECK(deepjoin->BuildIndex(repo).ok());

  // Our "ML training table": a fresh column playing the join key.
  lake::Column key_column = gen.GenerateQueries(1, 0xFEED).front();
  std::printf("enriching a training table keyed on \"%s\" (%zu rows)\n",
              key_column.meta.column_name.c_str(), key_column.size());

  // DeepJoin shortlists candidates; exact joinability verifies coverage.
  auto tok = join::TokenizedRepository::Build(repo);
  const auto qt = tok.EncodeQuery(key_column);
  auto out = deepjoin->Search(key_column, {.k = 10});

  std::printf("\n%-6s %-8s %-40s %s\n", "rank", "coverage", "table",
              "verdict");
  size_t used = 0;
  for (size_t r = 0; r < out.ids.size(); ++r) {
    const u32 id = out.ids[r];
    const double jn = join::EquiJoinability(qt, tok.columns()[id]);
    const bool usable = jn >= 0.5;  // enough key coverage to add features
    used += usable;
    std::printf("%-6zu %-8.2f %-40s %s\n", r + 1, jn,
                (repo.column(id).meta.table_title + " / " +
                 repo.column(id).meta.column_name)
                    .c_str(),
                usable ? "JOIN (adds features)" : "skip (low coverage)");
  }

  // Materialise the best join: key -> matched cells of the top table.
  if (!out.ids.empty()) {
    const auto& best = repo.column(out.ids.front());
    std::unordered_map<std::string, bool> target(best.cells.size() * 2);
    for (const auto& c : best.cells) target[c] = true;
    size_t matched = 0;
    for (const auto& c : key_column.cells) matched += target.count(c);
    std::printf("\nbest join materialised: %zu/%zu training rows enriched\n",
                matched, key_column.size());
  }

  // Sanity: how close is the shortlist to the exact top-10?
  join::JosieIndex josie(&tok);
  auto exact = josie.SearchTopK(qt, 10);
  size_t agree = 0;
  for (u32 id : out.ids) {
    for (const auto& s : exact) agree += (s.id == id);
  }
  std::printf("agreement with exact JOSIE top-10: %zu/10 (%zu usable joins)\n",
              agree, used);
  return 0;
}
