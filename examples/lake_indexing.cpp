// Operating a lake-scale index (paper §3.3): compares the three ANN
// backends behind the same encoder — exact flat scan, HNSW (the default),
// and IVFPQ with an HNSW coarse quantizer (the billion-scale composition
// the paper describes for Faiss) — on build time, query latency, and
// recall against the flat ground truth.
//
// Run:  ./build/examples/lake_indexing [--repo=5000]
#include <cstdio>

#include "core/searcher.h"
#include "lake/generator.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace deepjoin;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);

  lake::LakeGenerator gen(lake::LakeConfig::Webtable(55));
  lake::Repository repo = gen.GenerateRepository(
      static_cast<size_t>(flags.GetInt("repo", 5000)));
  auto queries = gen.GenerateQueries(25, 0xAB1E);

  FastTextConfig fc;
  fc.dim = 32;
  FastTextEmbedder ft(fc);
  core::TransformConfig tc;
  core::FastTextColumnEncoder encoder(&ft, tc);

  struct Backend {
    const char* name;
    core::AnnBackend backend;
  };
  const Backend backends[] = {
      {"flat (exact)", core::AnnBackend::kFlat},
      {"hnsw", core::AnnBackend::kHnsw},
      {"ivfpq", core::AnnBackend::kIvfPq},
  };

  // Flat results are the recall reference.
  std::vector<std::vector<u32>> reference;
  std::printf("%-14s %-12s %-14s %s\n", "backend", "build (s)",
              "query (ms)", "recall@10 vs flat");
  for (const auto& b : backends) {
    core::SearcherConfig sc;
    sc.backend = b.backend;
    core::EmbeddingSearcher searcher(&encoder, sc);
    WallTimer build;
    if (auto st = searcher.BuildIndex(repo); !st.ok()) {
      std::printf("%-14s build failed: %s\n", b.name, st.ToString().c_str());
      continue;
    }
    const double build_s = build.ElapsedSeconds();

    TimeAccumulator lat;
    std::vector<std::vector<u32>> results;
    for (const auto& q : queries) {
      auto out = searcher.Search(q, {.k = 10});
      lat.Add(out.stats.total_ms() / 1e3);
      results.push_back(std::move(out.ids));
    }
    double recall = 1.0;
    if (b.backend == core::AnnBackend::kFlat) {
      reference = results;
    } else {
      size_t hits = 0, total = 0;
      for (size_t q = 0; q < results.size(); ++q) {
        for (u32 id : results[q]) {
          for (u32 ref : reference[q]) {
            if (id == ref) {
              ++hits;
              break;
            }
          }
        }
        total += reference[q].size();
      }
      recall = total ? static_cast<double>(hits) / total : 0.0;
    }
    std::printf("%-14s %-12.2f %-14.3f %.3f\n", b.name, build_s,
                lat.MeanMillis(), recall);
  }
  std::printf(
      "\nHNSW trades a small recall loss for sub-linear search; IVFPQ\n"
      "compresses vectors ~%dx for repositories that outgrow memory.\n",
      32 * 4 / 8);
  return 0;
}
