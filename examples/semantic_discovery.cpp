// Semantic join discovery (paper §1, §2.1): tables that store the same
// entities under misspellings, different formats, or different
// terminology cannot be found by equi-joins. This example builds a messy
// lake, trains DeepJoin for semantic joins (labels from vector matching at
// tau, as PEXESO defines), and contrasts what equi- and semantic search
// return for the same query.
//
// Run:  ./build/examples/semantic_discovery [--tau=0.9]
#include <cstdio>

#include "core/deepjoin.h"
#include "join/josie.h"
#include "join/pexeso.h"
#include "lake/generator.h"
#include "util/flags.h"

using namespace deepjoin;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const float tau = static_cast<float>(flags.GetDouble("tau", 0.9));

  // A messier-than-usual lake: most columns render semantic variants.
  lake::LakeConfig lc = lake::LakeConfig::Webtable(33);
  lc.variant_rate = 0.35;
  lc.clean_column_rate = 0.3;
  lake::LakeGenerator gen(lc);
  lake::Repository repo = gen.GenerateRepository(
      static_cast<size_t>(flags.GetInt("repo", 2500)));

  FastTextConfig fc;
  fc.dim = 24;
  FastTextEmbedder pretrained(fc);
  pretrained.TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);

  auto sample = gen.GenerateQueries(250, 0x3E3A);
  core::DeepJoinConfig cfg;
  cfg.training.join_type = core::JoinType::kSemantic;
  cfg.training.tau = tau;
  cfg.finetune.max_steps = 60;
  cfg.finetune.batch_size = 16;
  auto deepjoin = core::DeepJoin::Train(sample, pretrained, cfg);
  DJ_CHECK(deepjoin->BuildIndex(repo).ok());

  lake::Column query = gen.GenerateQueries(1, 0xBEE5).front();
  std::printf("query: \"%s\" with cells like \"%s\", \"%s\"\n",
              query.meta.column_name.c_str(), query.cells[0].c_str(),
              query.cells[1].c_str());

  // Ground truths under both join types.
  auto tok = join::TokenizedRepository::Build(repo);
  auto store = join::ColumnVectorStore::Build(repo, pretrained);
  const auto qt = tok.EncodeQuery(query);
  const auto qv = join::ColumnVectorStore::EmbedColumn(query, pretrained);

  auto out = deepjoin->Search(query, {.k = 5});
  std::printf("\n%-5s %-9s %-9s %s\n", "rank", "equi-jn", "sem-jn",
              "retrieved column");
  for (size_t r = 0; r < out.ids.size(); ++r) {
    const u32 id = out.ids[r];
    const double equi = join::EquiJoinability(qt, tok.columns()[id]);
    const double sem = join::SemanticJoinability(
        qv.data(), query.size(), store.column_vectors(id),
        store.column_count(id), store.dim(), tau);
    std::printf("%-5zu %-9.2f %-9.2f %s / %s\n", r + 1, equi, sem,
                repo.column(id).meta.table_title.c_str(),
                repo.column(id).meta.column_name.c_str());
    if (sem > equi + 0.15) {
      std::printf("      ^ joinable only semantically, e.g. target cell "
                  "\"%s\"\n",
                  repo.column(id).cells.front().c_str());
    }
  }

  // How many of DeepJoin's picks does the exact semantic solution confirm?
  join::PexesoConfig pc;
  pc.tau = tau;
  join::PexesoIndex pexeso(&store, pc);
  auto exact = pexeso.SearchTopK(qv.data(), query.size(), 5);
  size_t confirmed = 0;
  for (u32 id : out.ids) {
    for (const auto& s : exact) confirmed += (s.id == id);
  }
  std::printf("\nconfirmed by exact semantic search (PEXESO): %zu/5\n",
              confirmed);
  return 0;
}
