// Quickstart: the full DeepJoin pipeline on a small synthetic data lake,
// stage by stage (this walks Figure 1 of the paper):
//   1. build a data lake and extract a column repository
//   2. prepare self-supervised training data (self-join + augmentation)
//   3. fine-tune the PLM column encoder (in-batch negatives, MNR loss)
//   4. index the repository embeddings with HNSW
//   5. search: top-k joinable columns for a query column
//
// Run:  ./build/examples/quickstart [--repo=2000] [--steps=60]
#include <cstdio>

#include "core/deepjoin.h"
#include "join/joinability.h"
#include "lake/generator.h"
#include "util/flags.h"

using namespace deepjoin;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);

  // 1. A synthetic data lake (stands in for WDC Webtables; DESIGN.md).
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(/*seed=*/7));
  lake::Repository repo =
      gen.GenerateRepository(static_cast<size_t>(flags.GetInt("repo", 2000)));
  const auto stats = repo.ComputeStats();
  std::printf("repository: %zu columns (size min %zu / avg %.1f / max %zu)\n",
              stats.num_columns, stats.min_size, stats.avg_size,
              stats.max_size);

  // Cell-level subword embedder: the "pre-trained" substrate.
  FastTextConfig fc;
  fc.dim = 24;
  FastTextEmbedder pretrained(fc);
  pretrained.TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);

  // 2.+3. Training sample, self-join positives, fine-tuning.
  auto sample = gen.GenerateQueries(300, /*salt=*/0x7E57);
  core::DeepJoinConfig cfg;
  cfg.training.join_type = core::JoinType::kEqui;
  cfg.finetune.max_steps =
      static_cast<int>(flags.GetInt("steps", 60));
  cfg.finetune.batch_size = 16;
  cfg.finetune.verbose = true;
  auto deepjoin = core::DeepJoin::Train(sample, pretrained, cfg);
  std::printf("fine-tuned on %zu positives (%zu augmented): loss %.3f -> %.3f\n",
              deepjoin->training_data().pairs.size(),
              deepjoin->training_data().num_shuffled,
              deepjoin->train_stats().first_loss,
              deepjoin->train_stats().final_loss);

  // 4. Offline: embed + index every repository column.
  core::BuildStats build_stats;
  if (auto st = deepjoin->BuildIndex(repo, &build_stats); !st.ok()) {
    std::printf("index build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu columns in %.1f ms (encode %.1f ms)\n",
              build_stats.columns, build_stats.trace.total_ms(),
              build_stats.trace.SpanMs("searcher.build_encode"));

  // 5. Online: discover joinable tables for a fresh query column.
  auto queries = gen.GenerateQueries(3, /*salt=*/0xF00D);
  auto tok = join::TokenizedRepository::Build(repo);
  for (const auto& query : queries) {
    auto out = deepjoin->Search(query, {.k = 5});
    std::printf("\nquery column \"%s\" from \"%s\" (%zu cells) -> top-5 "
                "(%.1f ms, encode %.1f ms):\n",
                query.meta.column_name.c_str(),
                query.meta.table_title.c_str(), query.size(),
                out.stats.total_ms(), out.stats.SpanMs("searcher.encode"));
    const auto qt = tok.EncodeQuery(query);
    for (u32 id : out.ids) {
      const auto& col = repo.column(id);
      std::printf("  jn=%.2f  [%u] %s / %s  (e.g. \"%s\")\n",
                  join::EquiJoinability(qt, tok.columns()[id]), id,
                  col.meta.table_title.c_str(), col.meta.column_name.c_str(),
                  col.cells.front().c_str());
    }
  }
  return 0;
}
