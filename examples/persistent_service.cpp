// Operating DeepJoin as a persistent service: ingest a lake from CSV
// files, fine-tune once, save the encoder to disk, reload it in a "fresh
// process", rebuild the index, and serve queries through the two-stage
// searcher (ANNS candidates re-ranked by exact joinability). Demonstrates
// the adoption path: train offline, ship the model file, serve online.
//
// Run:  ./build/examples/persistent_service [--workdir=/tmp/djsvc]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/deepjoin.h"
#include "core/model_io.h"
#include "core/reranker.h"
#include "lake/csv_loader.h"
#include "lake/generator.h"
#include "util/flags.h"

using namespace deepjoin;

namespace {

// Materialise a small CSV lake on disk from the synthetic generator (a
// real deployment points --workdir/csv at its own exports).
void WriteCsvLake(const std::filesystem::path& dir, size_t num_tables) {
  std::filesystem::create_directories(dir);
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(77));
  lake::Repository repo = gen.GenerateRepository(num_tables);
  for (size_t i = 0; i < repo.size(); ++i) {
    const auto& col = repo.column(static_cast<u32>(i));
    std::ofstream out(dir / ("table_" + std::to_string(i) + ".csv"));
    out << col.meta.column_name << "\n";
    for (const auto& cell : col.cells) {
      // Quote cells defensively (they may contain commas).
      out << '"';
      for (char c : cell) {
        if (c == '"') out << '"';
        out << c;
      }
      out << '"' << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const std::filesystem::path workdir =
      flags.GetString("workdir", "/tmp/deepjoin_service");
  const auto csv_dir = workdir / "csv";
  const auto model_path = (workdir / "encoder.djm").string();

  // --- offline: ingest + train + persist ---
  WriteCsvLake(csv_dir, 600);
  lake::CsvLoadOptions opts;
  auto repo = lake::LoadCsvDirectory(csv_dir.string(), opts);
  if (!repo.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 repo.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %zu columns from %s\n", repo->size(),
              csv_dir.c_str());

  lake::LakeGenerator gen(lake::LakeConfig::Webtable(77));
  auto sample = gen.GenerateQueries(200, 0x9A);
  FastTextConfig fc;
  fc.dim = 24;
  FastTextEmbedder pretrained(fc);
  pretrained.TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);

  core::DeepJoinConfig cfg;
  cfg.finetune.max_steps = 50;
  cfg.finetune.batch_size = 16;
  auto trained = core::DeepJoin::Train(sample, pretrained, cfg);
  if (auto st = core::SaveEncoder(trained->encoder(), model_path);
      !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("encoder saved to %s\n", model_path.c_str());

  // --- online: a "fresh process" loads the model and serves ---
  auto loaded = core::LoadEncoder(model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  core::SearcherConfig sc;
  core::EmbeddingSearcher searcher(loaded->get(), sc);
  if (auto st = searcher.BuildIndex(*repo); !st.ok()) {
    std::fprintf(stderr, "index build failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto tok = join::TokenizedRepository::Build(*repo);
  core::TwoStageConfig tsc;
  core::TwoStageSearcher two_stage(&searcher, &tok, nullptr, nullptr, tsc);

  auto queries = gen.GenerateQueries(3, 0xD0);
  for (const auto& q : queries) {
    auto out = two_stage.Search(q, {.k = 5});
    std::printf("\nquery \"%s\" (%zu cells) -> %.1f ms total:\n",
                q.meta.column_name.c_str(), q.size(), out.stats.total_ms());
    for (const auto& s : out.results) {
      std::printf("  jn=%.2f  %s\n", s.score,
                  repo->column(s.id).meta.table_title.c_str());
    }
  }
  std::printf("\nservice round-trip complete (model file survives restarts)\n");
  return 0;
}
