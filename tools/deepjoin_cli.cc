// deepjoin — command-line joinable-table discovery over CSV data lakes.
//
//   deepjoin train  --csv=DIR --model=PATH [--semantic] [--steps=N]
//       Ingest DIR, pre-train subword vectors on its text, prepare
//       self-supervised positives and fine-tune a column encoder.
//   deepjoin index  --csv=DIR --model=PATH --index=PATH
//                   [--index-storage=float|sq8]
//       Encode every extracted column and persist the HNSW index.
//       --index-storage=sq8 quantizes the rows at save time (~4x smaller
//       file and resident set; a float refinement copy rides along for
//       --refine reranking).
//   deepjoin search --csv=DIR --model=PATH --index=PATH --query=FILE [--k=N]
//                   [--index-map=owned|mapped] [--refine=R]
//       Load model + index and print the top-k joinable columns for the
//       query CSV's extracted column, with exact joinability verification.
//       --index-map=mapped opens the index zero-copy (O(1) regardless of
//       size); --refine=R reranks R*k quantized candidates exactly.
//
// The three stages mirror the paper's offline/online split (§3.3): train
// once, index offline, search online.
#include <cstdio>
#include <string>

#include "core/deepjoin.h"
#include "core/model_io.h"
#include "core/searcher.h"
#include "join/joinability.h"
#include "lake/csv_loader.h"
#include "text/tokenizer.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace deepjoin;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "deepjoin: %s\n", message.c_str());
  return 1;
}

Result<lake::Repository> Ingest(const std::string& dir) {
  lake::CsvLoadOptions opts;
  opts.policy = lake::ExtractionPolicy::kAllColumns;
  std::vector<std::string> skipped;
  auto repo = lake::LoadCsvDirectory(dir, opts, &skipped);
  for (const auto& s : skipped) {
    std::fprintf(stderr, "warning: skipped unparseable %s\n", s.c_str());
  }
  return repo;
}

/// Subword pre-training on the ingested corpus itself: the CLI has no
/// external word vectors, so it runs a short skip-gram pass over cell
/// token sequences (the in-repo analogue of downloading fastText).
FastTextEmbedder MakeEmbedder(const lake::Repository& repo) {
  FastTextConfig fc;
  fc.dim = 24;
  FastTextEmbedder embedder(fc);
  std::vector<std::vector<std::string>> sentences;
  for (const auto& col : repo.columns()) {
    if (sentences.size() >= 2000) break;
    std::vector<std::string> sent;
    for (const auto& cell : col.cells) {
      TokenizeWordsInto(cell, &sent);
      if (sent.size() > 64) break;
    }
    if (sent.size() >= 2) sentences.push_back(std::move(sent));
  }
  Rng rng(7);
  embedder.TrainSkipGram(sentences, /*window=*/2, /*negatives=*/3,
                         /*lr=*/0.03, /*epochs=*/1, rng);
  return embedder;
}

int CmdTrain(const Flags& flags) {
  const std::string dir = flags.GetString("csv", "");
  const std::string model = flags.GetString("model", "");
  if (dir.empty() || model.empty()) {
    return Fail("train needs --csv=DIR and --model=PATH");
  }
  auto repo = Ingest(dir);
  if (!repo.ok()) return Fail(repo.status().ToString());
  if (repo->size() < 10) return Fail("too few usable columns to train on");
  std::printf("ingested %zu columns\n", repo->size());

  // Training sample: a slice of the corpus (paper §4.1 trains on a
  // sample of the repository itself).
  const size_t sample_n =
      std::min<size_t>(repo->size(),
                       static_cast<size_t>(flags.GetInt("sample", 400)));
  Rng rng(static_cast<u64>(flags.GetInt("seed", 1)));
  std::vector<lake::Column> sample;
  for (size_t i : rng.SampleIndices(repo->size(), sample_n)) {
    sample.push_back(repo->column(static_cast<u32>(i)));
  }

  WallTimer t;
  FastTextEmbedder embedder = MakeEmbedder(*repo);
  std::printf("subword pre-training done (%.1fs)\n", t.ElapsedSeconds());

  core::DeepJoinConfig cfg;
  cfg.training.join_type = flags.GetBool("semantic", false)
                               ? core::JoinType::kSemantic
                               : core::JoinType::kEqui;
  cfg.training.tau = static_cast<float>(flags.GetDouble("tau", 0.9));
  cfg.finetune.max_steps = static_cast<int>(flags.GetInt("steps", 120));
  cfg.finetune.batch_size = static_cast<int>(flags.GetInt("batch", 16));
  cfg.finetune.verbose = true;
  auto dj = core::DeepJoin::Train(sample, embedder, cfg);
  std::printf("fine-tuned on %zu positives, loss %.3f -> %.3f\n",
              dj->training_data().pairs.size(),
              dj->train_stats().first_loss, dj->train_stats().final_loss);

  if (auto st = core::SaveEncoder(dj->encoder(), model); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("model written to %s\n", model.c_str());
  return 0;
}

int CmdIndex(const Flags& flags) {
  const std::string dir = flags.GetString("csv", "");
  const std::string model = flags.GetString("model", "");
  const std::string index = flags.GetString("index", "");
  if (dir.empty() || model.empty() || index.empty()) {
    return Fail("index needs --csv=DIR, --model=PATH and --index=PATH");
  }
  auto repo = Ingest(dir);
  if (!repo.ok()) return Fail(repo.status().ToString());
  auto encoder = core::LoadEncoder(model);
  if (!encoder.ok()) return Fail(encoder.status().ToString());

  core::SearcherConfig sc;
  core::EmbeddingSearcher searcher(encoder->get(), sc);
  WallTimer t;
  if (auto st = searcher.BuildIndex(*repo); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("indexed %zu columns (%.1fs)\n", repo->size(),
              t.ElapsedSeconds());
  ann::SaveOptions save;
  const std::string storage = flags.GetString("index-storage", "float");
  if (storage == "sq8") {
    save.storage = ann::StorageKind::kSq8;
    save.keep_float_refine = true;  // enables --refine at search time
  } else if (storage != "float") {
    return Fail("--index-storage must be float or sq8");
  }
  if (auto st = searcher.SaveIndex(index, nullptr, save); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("index written to %s\n", index.c_str());
  return 0;
}

int CmdSearch(const Flags& flags) {
  const std::string dir = flags.GetString("csv", "");
  const std::string model = flags.GetString("model", "");
  const std::string index = flags.GetString("index", "");
  const std::string query_file = flags.GetString("query", "");
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  if (dir.empty() || model.empty() || index.empty() || query_file.empty()) {
    return Fail(
        "search needs --csv=DIR, --model=PATH, --index=PATH, --query=FILE");
  }
  auto repo = Ingest(dir);
  if (!repo.ok()) return Fail(repo.status().ToString());
  auto encoder = core::LoadEncoder(model);
  if (!encoder.ok()) return Fail(encoder.status().ToString());

  core::SearcherConfig sc;
  core::EmbeddingSearcher searcher(encoder->get(), sc);
  ann::OpenOptions open;
  const std::string map = flags.GetString("index-map", "owned");
  if (map == "mapped") {
    open.map = ann::MapMode::kMapped;
  } else if (map != "owned") {
    return Fail("--index-map must be owned or mapped");
  }
  if (auto st = searcher.LoadIndex(index, nullptr, open); !st.ok()) {
    return Fail(st.ToString());
  }
  if (searcher.index_size() != repo->size()) {
    return Fail("index/lake size mismatch; re-run `deepjoin index`");
  }

  auto query_table = lake::LoadCsvTable(query_file);
  if (!query_table.ok()) return Fail(query_table.status().ToString());
  lake::Column query;
  if (!lake::ExtractMaxDistinctColumn(*query_table, 1, &query)) {
    return Fail("query file has no usable column");
  }

  core::SearchOptions options;
  options.k = k;
  options.refine_factor = static_cast<int>(flags.GetInt("refine", 0));
  auto out = searcher.Search(query, options);
  auto tok = join::TokenizedRepository::Build(*repo);
  const auto qt = tok.EncodeQuery(query);
  std::printf("query \"%s\" (%zu cells): top-%zu in %.1f ms "
              "(encode %.1f ms)\n",
              query.meta.column_name.c_str(), query.size(), k,
              out.stats.total_ms(), out.stats.SpanMs("searcher.encode"));
  if (flags.GetInt("stats", 0) != 0) {
    std::printf("--- per-query breakdown ---\n%s",
                out.stats.ToString().c_str());
  }
  std::printf("%-5s %-8s %-30s %s\n", "rank", "jn", "table", "column");
  for (size_t r = 0; r < out.ids.size(); ++r) {
    const auto& col = repo->column(out.ids[r]);
    std::printf("%-5zu %-8.3f %-30s %s\n", r + 1,
                join::EquiJoinability(qt, tok.columns()[out.ids[r]]),
                col.meta.table_title.c_str(), col.meta.column_name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: deepjoin <train|index|search> [--flags]\n"
                 "run with a subcommand; see the file header for details\n");
    return 2;
  }
  const std::string& cmd = flags.positional().front();
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "index") return CmdIndex(flags);
  if (cmd == "search") return CmdSearch(flags);
  return Fail("unknown subcommand: " + cmd);
}
