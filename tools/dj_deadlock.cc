// dj_deadlock: cross-translation-unit lock-discipline analysis, the static
// half of the runtime lock-rank layer (src/util/lock_rank.h, DESIGN.md
// §10). Registered as a ctest (label: lint) so orderings on paths no test
// ever executes still fail the build.
//
// What it does, end to end:
//   1. Parses the rank table from <root>/src/util/lock_rank.h (one
//      `inline constexpr int kName = N;` per line).
//   2. Scans every source file for `Mutex <var>{"lock.name", rank::kX}`
//      declarations (a .cc file inherits the declarations of its sibling
//      .h, so member locks resolve across the TU boundary).
//   3. Lexes every function body, tracking the statically-held lock set
//      through scoped MutexLock blocks, manual Lock/Unlock pairs, and
//      DJ_REQUIRES annotations (harvested from header declarations too),
//      and records every call site together with the locks held at it.
//   4. Runs a transitive may-acquire fixpoint over the unqualified-name
//      call graph, then emits an acquired-while-holding edge for every
//      direct acquisition and every lock a callee may take.
//   5. Checks the result: rank-order violations, cycles in the static lock
//      graph, unranked mutexes, annotation inconsistencies, and blocking
//      calls (I/O, pool waits, checkpoint saves) made while a lock is held.
//
// Rules (suppress with `// dj_deadlock: allow(<rule>)` on the same line or
// the line above):
//   unranked-mutex      every `Mutex` in src/** carries a name and a rank
//   rank-order          acquisitions run in strictly increasing rank order
//   lock-cycle          the acquired-while-holding graph is acyclic
//                       (cross-file; reported once per cycle, not
//                       suppressible — break the cycle instead)
//   rank-mismatch       one lock name maps to exactly one rank
//   blocking-under-lock no Env/file I/O, ThreadPool::Wait/ParallelFor, or
//                       checkpoint/atomic-save while holding any lock
//   wait-holding-lock   CondVar::Wait with a second lock statically held
//   excludes-held       calling a DJ_EXCLUDES(mu) function while mu is held
//   requires-unheld     calling a DJ_REQUIRES(mu) function without mu held
//
// The analysis is lexical (tools/lint_common.h) and deliberately
// name-based: functions are keyed by unqualified name and merged on
// collision, locks are resolved by the last identifier of the MutexLock
// argument. That is conservative enough to be sound on this tree and keeps
// the tool standard-library-only and fast. Known blind spot: a lambda's
// body is analysed in its lexical position, so a callback created under a
// lock but invoked elsewhere inherits the creation-site held set.
//
// Usage: dj_deadlock [--root <dir>] [--list-rules] [--dump-graph]
//                    [subdir ...]
//   Scans <root>/src by default. Exit: 0 clean, 1 violations, 2 usage.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_common.h"

namespace fs = std::filesystem;

namespace {

using lintc::FileText;
using lintc::HeadFunctionName;
using lintc::IsAnnotationMacro;
using lintc::Lex;
using lintc::StripCommentsAndStrings;
using lintc::Tok;
using lintc::Violation;

constexpr int kUnranked = -1;

// ---- model ----

struct LockDecl {
  std::string lock_name;  // "threadpool.queue" or synthesized "(unranked:…)"
  int rank = kUnranked;
  std::string site;  // file:line of the declaration
};

struct CallSite {
  std::string callee;              // unqualified name
  std::vector<std::string> held;   // lock names held at the call
  std::string file;
  size_t line = 0;
};

struct AcquireEvent {
  std::string lock;                // lock name acquired
  std::vector<std::string> held;   // lock names already held
  std::string file;
  size_t line = 0;
  bool rank_checked = true;        // false for TryLock
};

struct FuncInfo {
  std::set<std::string> requires_locks;  // DJ_REQUIRES, resolved lock names
  std::set<std::string> excludes_locks;  // DJ_EXCLUDES, resolved lock names
  std::set<std::string> direct_acquires;
  std::vector<CallSite> calls;
  std::vector<AcquireEvent> acquires;
};

struct Edge {
  std::string from_site;  // first-seen site that held `from`…
  std::string to_site;    // …while acquiring `to`
};

/// Calls that may block indefinitely or hit the filesystem: forbidden while
/// holding any lock. Env/file I/O, the pool's blocking entry points, and
/// the checkpoint/save protocol built on them.
const std::set<std::string>& BlockingCalls() {
  // "Wait" here is ThreadPool::Wait — a `Wait(mu)` with a mutex argument is
  // a CondVar wait and is consumed before the call-site scan reaches it.
  static const std::set<std::string> kSet = {
      "Wait",           "ParallelFor",     "NewWritableFile",
      "NewRandomAccessFile",               "RenameFile",
      "RemoveFile",     "ReadFileToString", "GetFileSize",
      "Append",         "Sync",            "Flush",
      "AtomicSave",     "SaveCheckpointTo", "LoadCheckpoint",
  };
  return kSet;
}

class Analyzer {
 public:
  explicit Analyzer(fs::path root) : root_(std::move(root)) {}

  const std::vector<Violation>& violations() const { return violations_; }
  size_t files_scanned() const { return files_scanned_; }

  bool LoadRankTable() {
    const fs::path table = root_ / "src" / "util" / "lock_rank.h";
    std::ifstream in(table);
    if (!in) {
      std::cerr << "dj_deadlock: cannot read rank table " << table << "\n";
      return false;
    }
    // Match `inline constexpr int k<Name> = <int>;` lexically.
    const FileText text = StripCommentsAndStrings(in);
    const std::vector<Tok> toks = Lex(text);
    for (size_t i = 0; i + 5 < toks.size(); ++i) {
      if (toks[i].text != "constexpr" || toks[i + 1].text != "int") continue;
      const std::string& sym = toks[i + 2].text;
      if (toks[i + 3].text != "=") continue;
      int sign = 1;
      size_t v = i + 4;
      if (toks[v].text == "-") {
        sign = -1;
        ++v;
      }
      if (toks[v].kind != Tok::kNumber) continue;
      rank_table_[sym] = sign * std::stoi(toks[v].text);
    }
    return !rank_table_.empty();
  }

  void AnalyzeTree(const fs::path& dir) {
    std::vector<fs::path> files = lintc::CollectSourceFiles(dir);
    // Pass 1: declarations + annotations from every file (headers first is
    // unnecessary — contexts merge by stem in pass 2).
    for (const auto& f : files) ScanDecls(f);
    // Pass 2: function bodies with the merged decl context.
    for (const auto& f : files) ScanBodies(f);
  }

  /// Fixpoint + edge emission + graph checks. Call once after AnalyzeTree.
  void Finish(bool dump_graph) {
    // Name-keyed call graph feeding the shared fixpoint engine.
    lintc::CallGraph call_names;
    for (const auto& [name, f] : funcs_) {
      std::vector<std::string>& v = call_names[name];
      for (const CallSite& c : f.calls) v.push_back(c.callee);
    }

    // Transitive may-acquire over the call graph.
    std::map<std::string, std::set<std::string>> direct_acquires;
    for (const auto& [name, f] : funcs_) {
      direct_acquires[name] = f.direct_acquires;
    }
    const std::map<std::string, std::set<std::string>> may_acquire =
        lintc::ReachableSets(call_names, std::move(direct_acquires));

    // Transitive may-block: a function blocks if its body makes a blocking
    // call or any callee does. The value is a witness chain for reporting.
    std::map<std::string, std::string> block_seeds;
    for (const auto& [name, f] : funcs_) {
      for (const CallSite& c : f.calls) {
        if (BlockingCalls().count(c.callee) != 0) {
          block_seeds[name] = c.callee + "()";
          break;
        }
      }
    }
    const std::map<std::string, std::string> may_block =
        lintc::ReachWitness(call_names, block_seeds);

    bool changed = false;
    // Forward may-hold-at-entry fixpoint (for excludes/requires checks on
    // functions reached with locks already held, e.g. a metrics helper
    // called from inside ThreadPool::Submit's critical section).
    std::map<std::string, std::set<std::string>> held_at_entry;
    changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, f] : funcs_) {
        std::set<std::string> entry = f.requires_locks;
        auto hit = held_at_entry.find(name);
        if (hit != held_at_entry.end()) {
          entry.insert(hit->second.begin(), hit->second.end());
        }
        for (const CallSite& c : f.calls) {
          if (funcs_.find(c.callee) == funcs_.end()) continue;
          std::set<std::string>& callee_entry = held_at_entry[c.callee];
          for (const std::string& l : c.held) {
            if (callee_entry.insert(l).second) changed = true;
          }
          for (const std::string& l : entry) {
            if (callee_entry.insert(l).second) changed = true;
          }
        }
      }
    }

    // Emit edges: direct acquisitions…
    for (const auto& [name, f] : funcs_) {
      (void)name;
      for (const AcquireEvent& a : f.acquires) {
        for (const std::string& h : a.held) {
          AddEdge(h, a.lock, a.file + ":" + std::to_string(a.line));
        }
      }
      // …and call-derived ones (callee may acquire L while we hold H).
      for (const CallSite& c : f.calls) {
        const std::string site = c.file + ":" + std::to_string(c.line);
        auto it = may_acquire.find(c.callee);
        if (it != may_acquire.end()) {
          for (const std::string& h : c.held) {
            for (const std::string& l : it->second) {
              if (l == h) continue;  // re-entry via calls: cycle check's job
              AddEdge(h, l, site);
              CheckRankPair(h, l, c.file, c.line,
                            "via call to " + c.callee + "()");
            }
          }
        }
        // Effective held set: locks held lexically at the call plus locks
        // that may be held whenever the enclosing function is entered
        // (propagated cross-TU through the call graph).
        std::set<std::string> eff(c.held.begin(), c.held.end());
        auto ent = held_at_entry.find(name);
        if (ent != held_at_entry.end()) {
          eff.insert(ent->second.begin(), ent->second.end());
        }
        auto fit = funcs_.find(c.callee);
        if (fit != funcs_.end()) {
          for (const std::string& ex : fit->second.excludes_locks) {
            if (eff.count(ex) != 0 &&
                !Suppressed(c.file, c.line, "excludes-held")) {
              Report(c.file, c.line, "excludes-held",
                     "call to " + c.callee + "() which DJ_EXCLUDES '" + ex +
                         "' while '" + ex + "' is held");
            }
          }
          for (const std::string& rq : fit->second.requires_locks) {
            if (std::find(c.held.begin(), c.held.end(), rq) ==
                    c.held.end() &&
                !Suppressed(c.file, c.line, "requires-unheld")) {
              Report(c.file, c.line, "requires-unheld",
                     "call to " + c.callee + "() which DJ_REQUIRES '" + rq +
                         "' without holding it");
            }
          }
          // Transitive blocking: a callee whose body (or any transitive
          // callee) blocks, reached with a lock held. Direct blocking
          // names were already reported at scan time.
          auto bit = may_block.find(c.callee);
          if (!eff.empty() && bit != may_block.end() &&
              !bit->second.empty() &&
              BlockingCalls().count(c.callee) == 0 &&
              !Suppressed(c.file, c.line, "blocking-under-lock")) {
            Report(c.file, c.line, "blocking-under-lock",
                   "call to " + c.callee + "() while holding '" +
                       *eff.begin() + "'; it may block (" + c.callee +
                       "() -> " + bit->second + ")");
          }
        }
      }
    }

    if (dump_graph) {
      for (const auto& [key, e] : edges_) {
        std::cout << key.first << " -> " << key.second << "  (first at "
                  << e.to_site << ")\n";
      }
    }
    ReportCycles();
  }

 private:
  using DeclContext = std::map<std::string, LockDecl>;  // var -> lock

  std::string Relative(const fs::path& path) const {
    std::error_code ec;
    const fs::path rel = fs::relative(path, root_, ec);
    return (ec ? path : rel).generic_string();
  }

  void Report(const std::string& file, size_t line, const std::string& rule,
              const std::string& message) {
    violations_.push_back({file, line, rule, message});
  }

  /// Suppression check against the file scanned most recently under `rel`.
  bool Suppressed(const std::string& rel, size_t line, const std::string& rule) {
    auto it = texts_.find(rel);
    if (it == texts_.end() || line == 0 || line > it->second.raw.size()) {
      return false;
    }
    return lintc::SuppressedAt(it->second, line - 1, "dj_deadlock", rule);
  }

  int RankOf(const std::string& lock_name) const {
    auto it = lock_ranks_.find(lock_name);
    return it == lock_ranks_.end() ? kUnranked : it->second;
  }

  void CheckRankPair(const std::string& held, const std::string& acquired,
                     const std::string& file, size_t line,
                     const std::string& how) {
    const int rh = RankOf(held);
    const int ra = RankOf(acquired);
    if (rh == kUnranked || ra == kUnranked) return;
    if (ra > rh) return;
    if (Suppressed(file, line, "rank-order")) return;
    Report(file, line, "rank-order",
           "acquires '" + acquired + "' (rank " + std::to_string(ra) + ") " +
               how + " while holding '" + held + "' (rank " +
               std::to_string(rh) +
               "); locks must be acquired in strictly increasing rank order");
  }

  void AddEdge(const std::string& from, const std::string& to,
               const std::string& site) {
    auto [it, inserted] = edges_.try_emplace({from, to}, Edge{site, site});
    (void)it;
    (void)inserted;
  }

  // ---- pass 1: lock declarations + function annotations ----

  void ScanDecls(const fs::path& path) {
    std::ifstream in(path);
    if (!in) return;
    ++files_scanned_;
    const std::string rel = Relative(path);
    FileText text = StripCommentsAndStrings(in);
    const std::vector<Tok> toks = Lex(text);
    texts_.emplace(rel, std::move(text));
    DeclContext& ctx = contexts_[rel];

    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || toks[i].text != "Mutex") continue;
      if (i > 0 && (toks[i - 1].text == "class" || toks[i - 1].text == ":" ||
                    toks[i - 1].text == "friend")) {
        continue;
      }
      const Tok& next = toks[i + 1];
      if (next.kind != Tok::kIdent) continue;  // Mutex( / Mutex& / Mutex* …
      const std::string var = next.text;
      LockDecl decl;
      decl.site = rel + ":" + std::to_string(next.line);
      // `Mutex v{"name", rank::kX}` — anything else is unranked.
      if (i + 2 < toks.size() && toks[i + 2].text == "{" &&
          i + 3 < toks.size() && toks[i + 3].kind == Tok::kString) {
        decl.lock_name = toks[i + 3].text;
        // Rank expression: last identifier before the closing '}'.
        size_t j = i + 4;
        std::string rank_sym;
        while (j < toks.size() && toks[j].text != "}") {
          if (toks[j].kind == Tok::kIdent) rank_sym = toks[j].text;
          ++j;
        }
        auto rit = rank_table_.find(rank_sym);
        decl.rank = (rit == rank_table_.end()) ? kUnranked : rit->second;
      } else {
        decl.lock_name = "(unranked:" +
                         fs::path(rel).filename().string() + "." + var + ")";
        if (rel.rfind("src/", 0) == 0 &&
            !Suppressed(rel, next.line, "unranked-mutex")) {
          Report(rel, next.line, "unranked-mutex",
                 "`Mutex " + var +
                     "` has no name/rank; declare it as Mutex " + var +
                     "{\"<layer>.<name>\", rank::k<Name>} and add the rank "
                     "to src/util/lock_rank.h");
        }
      }
      // One name, one rank — two declarations disagreeing is a config bug.
      auto known = lock_ranks_.find(decl.lock_name);
      if (known == lock_ranks_.end()) {
        lock_ranks_[decl.lock_name] = decl.rank;
        lock_sites_[decl.lock_name] = decl.site;
      } else if (known->second != decl.rank &&
                 !Suppressed(rel, next.line, "rank-mismatch")) {
        Report(rel, next.line, "rank-mismatch",
               "lock '" + decl.lock_name + "' declared with rank " +
                   std::to_string(decl.rank) + " here and rank " +
                   std::to_string(known->second) + " at " +
                   lock_sites_[decl.lock_name]);
      }
      // First declaration of a variable name wins within a file.
      ctx.emplace(var, std::move(decl));
    }
  }

  /// The decl context of `rel` merged with its sibling header's (so a .cc
  /// resolves the member locks its class declares in the .h).
  DeclContext MergedContext(const std::string& rel) const {
    DeclContext ctx;
    auto own = contexts_.find(rel);
    if (own != contexts_.end()) ctx = own->second;
    const fs::path p(rel);
    if (p.extension() != ".h") {
      fs::path sibling = p;
      sibling.replace_extension(".h");
      auto sib = contexts_.find(sibling.generic_string());
      if (sib != contexts_.end()) {
        for (const auto& [var, decl] : sib->second) ctx.emplace(var, decl);
      }
    }
    return ctx;
  }

  // ---- pass 2: function bodies ----

  /// Collects the arguments of every DJ_<macro>(a, b) in the head and
  /// resolves them to lock names via `ctx` (unresolvable arguments — e.g.
  /// function parameters — are skipped).
  static std::set<std::string> HeadAnnotationLocks(
      const std::vector<Tok>& head, const std::string& macro,
      const DeclContext& ctx) {
    std::set<std::string> out;
    for (size_t i = 0; i + 1 < head.size(); ++i) {
      if (head[i].text != macro || head[i + 1].text != "(") continue;
      size_t j = i + 2;
      int depth = 1;
      std::string last_ident;
      while (j < head.size() && depth > 0) {
        if (head[j].text == "(") ++depth;
        if (head[j].text == ")") --depth;
        if (depth == 0) break;
        if (head[j].kind == Tok::kIdent) last_ident = head[j].text;
        if (head[j].text == ",") {
          auto it = ctx.find(last_ident);
          if (it != ctx.end()) out.insert(it->second.lock_name);
          last_ident.clear();
        }
        ++j;
      }
      auto it = ctx.find(last_ident);
      if (it != ctx.end()) out.insert(it->second.lock_name);
    }
    return out;
  }

  void ScanBodies(const fs::path& path) {
    const std::string rel = Relative(path);
    auto tit = texts_.find(rel);
    if (tit == texts_.end()) return;
    const std::vector<Tok> toks = Lex(tit->second);
    const DeclContext ctx = MergedContext(rel);

    enum ScopeKind { kNamespace, kClass, kFunction, kBlock };
    struct Scope {
      ScopeKind kind;
      std::string func;                // enclosing function ("" outside)
      std::vector<std::string> locks;  // scoped locks acquired in this scope
    };
    std::vector<Scope> scopes;
    std::vector<Tok> head;
    // Held stack of lock names for the innermost function, outermost first.
    std::vector<std::string> held;

    auto current_func = [&]() -> std::string {
      for (size_t i = scopes.size(); i-- > 0;) {
        if (!scopes[i].func.empty()) return scopes[i].func;
      }
      return "";
    };
    auto resolve_args_last_ident = [&](size_t open,
                                       size_t* close) -> std::string {
      // Last identifier inside the balanced parens starting at `open`.
      int depth = 1;
      size_t j = open + 1;
      std::string last;
      while (j < toks.size() && depth > 0) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (depth == 0) break;
        if (toks[j].kind == Tok::kIdent) last = toks[j].text;
        ++j;
      }
      if (close != nullptr) *close = j;
      return last;
    };
    auto resolve_args_first_ident = [&](size_t open,
                                        size_t* close) -> std::string {
      // Last identifier of the FIRST top-level argument in the balanced
      // parens starting at `open` (the mutex argument of
      // CondVar::WaitFor(mu, timeout)): member-access mutexes like
      // `waiter.mu` resolve to `mu`, and the timeout expression's
      // identifiers are never mistaken for the mutex.
      int depth = 1;
      size_t j = open + 1;
      bool in_first_arg = true;
      std::string ident;
      while (j < toks.size() && depth > 0) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") --depth;
        if (depth == 0) break;
        if (depth == 1 && toks[j].text == ",") in_first_arg = false;
        if (in_first_arg && toks[j].kind == Tok::kIdent) ident = toks[j].text;
        ++j;
      }
      if (close != nullptr) *close = j;
      return ident;
    };
    auto held_with_requires = [&]() {
      std::vector<std::string> out = held;
      const std::string fn = current_func();
      auto fit = funcs_.find(fn);
      if (fit != funcs_.end()) {
        for (const std::string& rq : fit->second.requires_locks) {
          if (std::find(out.begin(), out.end(), rq) == out.end()) {
            out.insert(out.begin(), rq);  // entry-held: outermost
          }
        }
      }
      return out;
    };
    auto record_acquire = [&](const std::string& lock, size_t line,
                              bool rank_checked) {
      const std::string fn = current_func();
      if (fn.empty()) return;
      FuncInfo& f = funcs_[fn];
      AcquireEvent ev;
      ev.lock = lock;
      ev.held = held_with_requires();
      ev.file = rel;
      ev.line = line;
      ev.rank_checked = rank_checked;
      // Rank + re-entry checks at the acquisition site.
      for (const std::string& h : ev.held) {
        if (h == lock && !Suppressed(rel, line, "rank-order")) {
          Report(rel, line, "rank-order",
                 "re-entrant acquisition of '" + lock + "'");
          continue;
        }
        if (rank_checked) CheckRankPair(h, lock, rel, line, "directly");
      }
      f.direct_acquires.insert(lock);
      f.acquires.push_back(std::move(ev));
      held.push_back(lock);
    };

    for (size_t i = 0; i < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (t.text == "{") {
        Scope s;
        s.func = scopes.empty() ? "" : current_func();
        bool has_class = false, has_namespace = false;
        for (const Tok& h : head) {
          if (h.text == "class" || h.text == "struct" || h.text == "union" ||
              h.text == "enum") {
            has_class = true;
          }
          if (h.text == "namespace") has_namespace = true;
        }
        const bool in_function = !s.func.empty();
        if (has_namespace && !in_function) {
          s.kind = kNamespace;
        } else if (has_class && !in_function) {
          s.kind = kClass;
        } else if (in_function) {
          s.kind = kBlock;
        } else {
          // Candidate function definition: require a ')' (or trailing
          // qualifier after one) right before the '{'.
          const std::string fn = HeadFunctionName(head);
          bool looks_like_fn = false;
          if (!head.empty()) {
            const std::string& prev = head.back().text;
            looks_like_fn = prev == ")" || prev == "const" ||
                            prev == "noexcept" || prev == "override" ||
                            prev == "final";
          }
          if (!fn.empty() && looks_like_fn) {
            s.kind = kFunction;
            s.func = fn;
            FuncInfo& f = funcs_[fn];
            for (const std::string& l :
                 HeadAnnotationLocks(head, "DJ_REQUIRES", ctx)) {
              f.requires_locks.insert(l);
            }
            for (const std::string& l :
                 HeadAnnotationLocks(head, "DJ_EXCLUDES", ctx)) {
              f.excludes_locks.insert(l);
            }
            for (const std::string& l :
                 HeadAnnotationLocks(head, "DJ_ACQUIRE", ctx)) {
              f.direct_acquires.insert(l);
            }
          } else {
            s.kind = kBlock;  // brace-init at class scope, arrays, …
          }
        }
        scopes.push_back(std::move(s));
        head.clear();
        continue;
      }
      if (t.text == "}") {
        if (!scopes.empty()) {
          for (const std::string& l : scopes.back().locks) {
            auto it = std::find(held.rbegin(), held.rend(), l);
            if (it != held.rend()) held.erase(std::next(it).base());
          }
          scopes.pop_back();
        }
        head.clear();
        continue;
      }
      if (t.text == ";") {
        // A declaration ending in ';' may still carry DJ_REQUIRES — harvest
        // it so definitions in the .cc inherit the header's contract.
        const std::string fn = HeadFunctionName(head);
        if (!fn.empty()) {
          auto reqs = HeadAnnotationLocks(head, "DJ_REQUIRES", ctx);
          auto excl = HeadAnnotationLocks(head, "DJ_EXCLUDES", ctx);
          auto acq = HeadAnnotationLocks(head, "DJ_ACQUIRE", ctx);
          if (!reqs.empty() || !excl.empty() || !acq.empty()) {
            FuncInfo& f = funcs_[fn];
            f.requires_locks.insert(reqs.begin(), reqs.end());
            f.excludes_locks.insert(excl.begin(), excl.end());
            f.direct_acquires.insert(acq.begin(), acq.end());
          }
        }
        head.clear();
        continue;
      }
      head.push_back(t);

      const std::string fn = current_func();
      if (fn.empty()) continue;  // events only matter inside functions

      // MutexLock <var>(<expr>);
      if (t.kind == Tok::kIdent && t.text == "MutexLock" &&
          i + 2 < toks.size() && toks[i + 1].kind == Tok::kIdent &&
          toks[i + 2].text == "(") {
        size_t close = 0;
        const std::string var = resolve_args_last_ident(i + 2, &close);
        auto it = ctx.find(var);
        if (it != ctx.end()) {
          record_acquire(it->second.lock_name, t.line, /*rank_checked=*/true);
          if (!scopes.empty()) {
            scopes.back().locks.push_back(it->second.lock_name);
          }
        }
        i = close;
        head.clear();  // consume; the ')' would confuse head heuristics
        continue;
      }

      // <var>.Lock(/.Unlock(/.TryLock( manual pairs, and X.Wait(mu) —
      // through either `.` or `->`.
      const bool via_dot = i > 0 && toks[i - 1].text == ".";
      const bool via_arrow = i > 1 && toks[i - 1].text == ">" &&
                             toks[i - 2].text == "-";
      if (t.kind == Tok::kIdent && i + 2 < toks.size() &&
          toks[i + 1].text == "(" && (via_dot || via_arrow)) {
        const size_t recv = via_dot ? 2 : 3;  // tokens back to the receiver
        const std::string& method = t.text;
        if (method == "Lock" || method == "Unlock" || method == "TryLock") {
          const std::string var =
              (i >= recv && toks[i - recv].kind == Tok::kIdent)
                  ? toks[i - recv].text
                  : "";
          auto it = ctx.find(var);
          if (it != ctx.end()) {
            const std::string& lock = it->second.lock_name;
            if (method == "Unlock") {
              auto hit = std::find(held.rbegin(), held.rend(), lock);
              if (hit != held.rend()) held.erase(std::next(hit).base());
              for (size_t si = scopes.size(); si-- > 0;) {
                auto& ls = scopes[si].locks;
                auto lit = std::find(ls.begin(), ls.end(), lock);
                if (lit != ls.end()) {
                  ls.erase(lit);
                  break;
                }
              }
            } else {
              record_acquire(lock, t.line,
                             /*rank_checked=*/method == "Lock");
              if (!scopes.empty()) scopes.back().locks.push_back(lock);
            }
            continue;
          }
        }
        if (method == "Wait" || method == "WaitFor") {
          size_t close = 0;
          // Wait(mu) carries the mutex as its only argument; the timed
          // WaitFor(mu, timeout) carries it first (the timeout expression's
          // identifiers must not be mistaken for the mutex).
          const std::string arg =
              method == "WaitFor" ? resolve_args_first_ident(i + 1, &close)
                                  : resolve_args_last_ident(i + 1, &close);
          if (!arg.empty()) {
            // CondVar::Wait(mu): exempt from call edges, but waiting while
            // any OTHER lock is statically held is the canonical condvar
            // deadlock shape (see util/mutex.h).
            const std::vector<std::string> h = held_with_requires();
            auto it = ctx.find(arg);
            const std::string waited =
                (it != ctx.end()) ? it->second.lock_name : "";
            for (const std::string& l : h) {
              if (l == waited) continue;
              if (!Suppressed(rel, t.line, "wait-holding-lock")) {
                Report(rel, t.line, "wait-holding-lock",
                       "CondVar::Wait while also holding '" + l +
                           "'; the wait releases only its own mutex, so "
                           "every other lock stays held across the sleep");
              }
            }
            i = close;
            continue;
          }
          // `Wait()` with no argument = ThreadPool::Wait — a blocking call,
          // handled below like any other call site.
        }
      }

      // Generic call site: ident '(' not preceded by a type/keyword.
      if (t.kind == Tok::kIdent && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        static const std::set<std::string> kNotCalls = {
            "if",     "for",    "while",   "switch",   "return", "catch",
            "sizeof", "static_cast",       "const_cast",
            "dynamic_cast",     "reinterpret_cast",    "alignof",
            "decltype",
        };
        if (kNotCalls.count(t.text) != 0 || IsAnnotationMacro(t.text)) {
          continue;
        }
        const std::vector<std::string> h = held_with_requires();
        if (!h.empty() && BlockingCalls().count(t.text) != 0 &&
            !Suppressed(rel, t.line, "blocking-under-lock")) {
          Report(rel, t.line, "blocking-under-lock",
                 "call to " + t.text + "() while holding '" + h.back() +
                     "'; blocking I/O / pool waits / checkpoint saves must "
                     "run outside every critical section");
        }
        CallSite c;
        c.callee = t.text;
        c.held = h;
        c.file = rel;
        c.line = t.line;
        funcs_[fn].calls.push_back(std::move(c));
      }
    }
  }

  // ---- cycles ----

  void ReportCycles() {
    // DFS over the static edge set; each cycle reported once, canonicalised
    // by rotating its smallest node to the front.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, e] : edges_) {
      (void)e;
      adj[key.first].push_back(key.second);
    }
    std::set<std::string> seen_cycles;
    std::set<std::string> done;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;

    std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          stack.push_back(node);
          on_stack.insert(node);
          for (const std::string& next : adj[node]) {
            if (on_stack.count(next) != 0) {
              // Extract the cycle from the stack.
              auto begin =
                  std::find(stack.begin(), stack.end(), next);
              std::vector<std::string> cyc(begin, stack.end());
              auto min_it = std::min_element(cyc.begin(), cyc.end());
              std::rotate(cyc.begin(), min_it, cyc.end());
              std::string text;
              for (const std::string& n : cyc) text += n + " -> ";
              text += cyc.front();
              if (seen_cycles.insert(text).second) {
                const Edge& e = edges_.at({node, next});
                Report(e.to_site.substr(0, e.to_site.rfind(':')), 0,
                       "lock-cycle",
                       "lock-order cycle: " + text + " (edge " + node +
                           " -> " + next + " first seen at " + e.to_site +
                           ")");
              }
              continue;
            }
            if (done.count(next) == 0) dfs(next);
          }
          on_stack.erase(node);
          stack.pop_back();
          done.insert(node);
        };
    for (const auto& [node, nexts] : adj) {
      (void)nexts;
      if (done.count(node) == 0) dfs(node);
    }
  }

  fs::path root_;
  std::map<std::string, int> rank_table_;         // kPool -> 100
  std::map<std::string, int> lock_ranks_;         // lock name -> rank
  std::map<std::string, std::string> lock_sites_; // lock name -> decl site
  std::map<std::string, DeclContext> contexts_;   // rel path -> decls
  std::map<std::string, FileText> texts_;         // rel path -> text
  std::map<std::string, FuncInfo> funcs_;         // unqualified name
  std::map<std::pair<std::string, std::string>, Edge> edges_;
  std::vector<Violation> violations_;
  size_t files_scanned_ = 0;
};

void ListRules() {
  std::cout
      << "unranked-mutex      every Mutex in src/** carries a name and a "
         "rank from src/util/lock_rank.h\n"
      << "rank-order          locks are acquired in strictly increasing "
         "rank order\n"
      << "lock-cycle          the acquired-while-holding graph is acyclic\n"
      << "rank-mismatch       one lock name maps to exactly one rank\n"
      << "blocking-under-lock no Env I/O, ThreadPool Wait/ParallelFor, or "
         "checkpoint saves while holding a lock\n"
      << "wait-holding-lock   no CondVar::Wait with a second lock held\n"
      << "excludes-held       no calling a DJ_EXCLUDES(mu) function with mu "
         "held\n"
      << "requires-unheld     no calling a DJ_REQUIRES(mu) function without "
         "mu held\n"
      << "suppress with       // dj_deadlock: allow(<rule>)\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> subdirs;
  bool dump_graph = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "dj_deadlock: --root requires a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      ListRules();
      return 0;
    } else if (arg == "--dump-graph") {
      dump_graph = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dj_deadlock: unknown flag " << arg << "\n";
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }
  if (subdirs.empty()) subdirs.push_back("src");

  Analyzer analyzer(root);
  if (!analyzer.LoadRankTable()) return 2;
  bool scanned_any = false;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::is_directory(dir)) continue;
    scanned_any = true;
    analyzer.AnalyzeTree(dir);
  }
  if (!scanned_any) {
    std::cerr << "dj_deadlock: nothing to scan under " << root << "\n";
    return 2;
  }
  analyzer.Finish(dump_graph);

  return lintc::PrintReport("dj_deadlock", analyzer.violations(),
                            analyzer.files_scanned());
}
