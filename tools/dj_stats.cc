// dj_stats: reference dumper for the observability layer (DESIGN.md §9).
// Drives a live pipeline — synthetic lake, FastText column encoder,
// EmbeddingSearcher::BuildIndex, then a SearchBatch with per-query stats —
// and dumps the resulting MetricsRegistry snapshot in JSON and/or
// Prometheus text exposition format.
//
//   dj_stats [--repo=N] [--queries=N] [--k=N] [--backend=hnsw|flat|ivfpq]
//            [--format=json|prom|both] [--per-query]
//
// --per-query additionally prints each query's trace-span breakdown (the
// QueryStats tree), showing how encode/ANN time nests under the total.
// Run with DJ_METRICS=off to see the kill switch: the dump comes out
// empty because no call site recorded anything.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "lake/generator.h"
#include "util/alloc_guard.h"
#include "util/flags.h"
#include "util/lock_rank.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

using namespace deepjoin;

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const size_t repo_size = static_cast<size_t>(flags.GetInt("repo", 800));
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", 16));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const std::string backend = flags.GetString("backend", "hnsw");
  const std::string format = flags.GetString("format", "both");
  const bool per_query = flags.GetBool("per-query", false);

  core::SearcherConfig sc;
  if (backend == "flat") {
    sc.backend = core::AnnBackend::kFlat;
  } else if (backend == "ivfpq") {
    sc.backend = core::AnnBackend::kIvfPq;
    sc.ivfpq_m = 4;
  } else if (backend == "hnsw") {
    sc.backend = core::AnnBackend::kHnsw;
  } else {
    std::fprintf(stderr, "dj_stats: unknown --backend=%s\n",
                 backend.c_str());
    return 2;
  }
  if (format != "json" && format != "prom" && format != "both") {
    std::fprintf(stderr, "dj_stats: unknown --format=%s\n", format.c_str());
    return 2;
  }

  // A live run: every layer below (encoder, ANN index, thread pool)
  // records into the global registry as a side effect.
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(4242));
  lake::Repository repo = gen.GenerateRepository(repo_size);
  auto queries = gen.GenerateQueries(num_queries, 0x57A7);
  FastTextConfig fc;
  fc.dim = 24;
  FastTextEmbedder embedder(fc);
  embedder.TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);
  core::FastTextColumnEncoder encoder(&embedder, core::TransformConfig{});

  core::EmbeddingSearcher searcher(&encoder, sc);
  ThreadPool pool(4);
  core::BuildStats build_stats;
  if (auto st = searcher.BuildIndex(repo, &pool, &build_stats); !st.ok()) {
    std::fprintf(stderr, "dj_stats: BuildIndex failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  auto outputs = searcher.SearchBatch(queries, {.k = k}, &pool);

  std::fprintf(stderr,
               "dj_stats: indexed %zu columns (%.1f ms), "
               "searched %zu queries (metrics %s)\n",
               build_stats.columns, build_stats.trace.total_ms(),
               outputs.size(), metrics::Enabled() ? "on" : "off");

  // Mutation episode (DESIGN.md §12): a short live-index churn — open a
  // scratch directory, add/remove a handful of columns, compact, publish —
  // so the dj_index_{inserts,deletes,tombstones,compactions,snapshot_swaps}
  // series and the dj_snapshot_publish_ms histogram carry real values in
  // the dump. HNSW only: it is the mutable backend.
  if (sc.backend == core::AnnBackend::kHnsw) {
    const std::string live_dir =
        (std::filesystem::temp_directory_path() / "dj_stats_live").string();
    std::error_code ec;
    std::filesystem::remove_all(live_dir, ec);
    if (auto st = searcher.OpenLive(live_dir); !st.ok()) {
      std::fprintf(stderr, "dj_stats: OpenLive failed: %s\n",
                   st.ToString().c_str());
    } else {
      std::vector<u32> added;
      for (int i = 0; i < 8; ++i) {
        auto id = searcher.AddColumn(repo.column(static_cast<u32>(i)));
        if (id.ok()) added.push_back(*id);
      }
      for (size_t i = 0; i + 1 < added.size(); i += 2) {
        searcher.RemoveColumn(added[i]).IgnoreError();
      }
      searcher.Compact().IgnoreError();
      searcher.PublishSnapshot().IgnoreError();
      std::fprintf(stderr,
                   "dj_stats: churn episode done (8 adds, %zu removes, "
                   "compact + publish; generation %llu)\n",
                   added.size() / 2,
                   static_cast<unsigned long long>(searcher.generation()));
    }
    std::filesystem::remove_all(live_dir, ec);
  }

  if (per_query) {
    std::printf("--- per-query breakdown ---\n");
    for (size_t i = 0; i < outputs.size(); ++i) {
      std::printf("query %zu (\"%s\"):\n%s", i,
                  queries[i].meta.column_name.c_str(),
                  outputs[i].stats.ToString().c_str());
    }
  }

  // Fold the lock-rank layer's observed graph into the snapshot
  // (dj_lockrank_* gauges; all zero when DJ_LOCK_RANK is compiled out).
  lock_rank::PublishMetrics();
  // Likewise the alloc-guard's process-wide tallies (dj_alloc_count /
  // dj_alloc_bytes; zero when DJ_ALLOC_GUARD is compiled out).
  alloc_guard::PublishMetrics();
  const metrics::MetricsSnapshot snapshot =
      metrics::MetricsRegistry::Global().Snapshot();
  if (format == "json" || format == "both") {
    std::printf("%s\n", snapshot.ToJson().c_str());
  }
  if (format == "prom" || format == "both") {
    std::printf("%s", snapshot.ToPrometheusText().c_str());
  }
  return 0;
}
