#!/usr/bin/env bash
# Full correctness matrix for the DeepJoin tree (see DESIGN.md,
# "Correctness tooling"):
#
#   1. plain build          + full ctest suite (includes the lint label:
#                             dj_lint, dj_header_check, their self-tests)
#   2. clang thread-safety  + full ctest suite, built with clang++ and
#      build                  -DDJ_THREAD_SAFETY=ON so -Wthread-safety
#                             violations are errors and the negative-compile
#                             proof runs [skipped with a notice: no clang++]
#   3. ASan+UBSan build     + full ctest suite, including the `fault` label
#                             (fault-injection + corruption torture), so
#                             every injected failure path is leak/UB-checked
#   4. TSan build           + the `tsan`-labeled concurrency tests
#   4a. churn leg           + the live-index churn suites re-run by name:
#                             churn stress under TSan and the crash torture
#                             (every injected publish fault point) plus the
#                             live-index lifecycle tests under ASan+UBSan,
#                             so a mutability regression fails as its own
#                             labeled line, not buried in a full-suite leg
#   4b. lock-rank build     + Debug tree with -DDJ_LOCK_RANK=ON running the
#                             death/tsan/lint labels (runtime rank
#                             enforcement, dj_deadlock fixtures, tree scan)
#                             and a dj_lockgraph JSON/DOT smoke dump
#   4c. alloc-guard build   + Debug tree with -DDJ_ALLOC_GUARD=ON running
#                             the death/lint labels (ScopedAllocBan aborts,
#                             the zero-allocation steady-state search proof,
#                             dj_alloc fixtures + tree scan) and a guarded
#                             dj_stats smoke checking the tallies export
#   4d. serve leg           + the serving-layer suites re-run by name: the
#                             open-loop serve stress (clients racing the
#                             dispatcher and a live mutator) under TSan,
#                             and the deadline short-circuit / backpressure
#                             suites under ASan+UBSan
#   5. kernel tiers         + kernels_test run twice (native dispatch and
#                             DJ_FORCE_SCALAR_KERNELS=1) in the plain AND
#                             ASan+UBSan trees, then encoder_probe dumps
#                             diffed: bit-identical within a tier, within
#                             1e-4 across tiers (see util/kernels.h)
#   6. clang-tidy           over src/**.cc with the checked-in .clang-tidy
#                             [skipped with a notice when absent]
#
# Usage: tools/check.sh [--quick]
#   --quick  plain build + ctest only (skips everything else)
#
# Build trees land in build/ (plain), build-clang/, build-asan/,
# build-tsan/ next to the source root, so the plain tree matches the
# tier-1 verify command.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run_profile() {
  local dir="$1" label="$2" ctest_args="$3"
  shift 3
  echo "=== [$label] configure ==="
  cmake -B "$ROOT/$dir" -S "$ROOT" "$@" >/dev/null
  echo "=== [$label] build ==="
  cmake --build "$ROOT/$dir" -j "$JOBS"
  echo "=== [$label] test ($ctest_args) ==="
  # --no-tests=error: a label regex that matches nothing is a bug in this
  # script, not a clean leg.
  # shellcheck disable=SC2086
  (cd "$ROOT/$dir" && ctest --output-on-failure --no-tests=error \
    -j "$JOBS" $ctest_args)
}

# Runs the kernel parity suite in both dispatch tiers, then cross-checks
# the encoder through tools/encoder_probe: a fresh dump must compare
# bit-identically against itself within each tier, and the scalar tier
# must stay within 1e-4 of the native tier (the documented precision gap
# between reduction orders — util/kernels.h). On hosts without AVX2 both
# runs exercise the scalar tier; the forced run is then redundant but
# still cheap and green.
check_kernel_tiers() {
  local dir="$1" label="$2"
  echo "=== [$label] kernels_test: native dispatch tier ==="
  "$ROOT/$dir/tests/kernels_test"
  echo "=== [$label] kernels_test: DJ_FORCE_SCALAR_KERNELS=1 ==="
  DJ_FORCE_SCALAR_KERNELS=1 "$ROOT/$dir/tests/kernels_test"
  echo "=== [$label] encoder_probe: tier diff ==="
  local dump
  dump="$(mktemp "${TMPDIR:-/tmp}/encoder_probe.XXXXXX")"
  "$ROOT/$dir/tools/encoder_probe" --out "$dump"
  "$ROOT/$dir/tools/encoder_probe" --compare "$dump"
  DJ_FORCE_SCALAR_KERNELS=1 "$ROOT/$dir/tools/encoder_probe" \
    --compare "$dump" --tol 1e-4
  rm -f "$dump"
}

run_profile build "plain" ""
check_kernel_tiers build "plain"

if [[ "$QUICK" == "0" ]]; then
  # Compile-time concurrency contracts: the whole tree + tests under
  # clang's -Wthread-safety analysis promoted to errors, plus the
  # negative-compile proof that the annotations are live (it only
  # registers as a runnable ctest under a clang toolchain).
  if command -v clang++ >/dev/null 2>&1; then
    run_profile build-clang "clang thread-safety" "" \
      -DCMAKE_CXX_COMPILER=clang++ -DDJ_THREAD_SAFETY=ON
  else
    echo "=== [clang thread-safety] SKIPPED: clang++ not found" \
         "(annotations in src/util/mutex.h compile to no-ops here) ==="
  fi
fi

if [[ "$QUICK" == "0" ]]; then
  # halt_on_error makes a sanitizer finding fail the test instead of just
  # printing; detect_leaks stays off for gtest binaries (gtest's lazy
  # singletons read as leaks and would drown real reports).
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=0"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

  run_profile build-asan "asan+ubsan" "" -DDJ_SANITIZE="address;undefined"
  check_kernel_tiers build-asan "asan+ubsan"
  run_profile build-tsan "tsan" "-L tsan" -DDJ_SANITIZE="thread"

  # Live-index churn (DESIGN.md §12). The tsan and asan profiles above
  # already cover these tests inside their label/full-suite runs; this leg
  # re-selects them by test-name regex so a mutability regression fails as
  # its own "[churn]" line. Name-based selection is deliberate: one ctest
  # label per test (see tests/CMakeLists.txt — gtest_discover_tests cannot
  # forward list-valued LABELS), so "churn" cannot be a second label.
  echo "=== [churn] TSan churn stress ==="
  (cd "$ROOT/build-tsan" && ctest --output-on-failure --no-tests=error \
    -j "$JOBS" -R "Churn")
  echo "=== [churn] ASan+UBSan crash torture + live-index lifecycle ==="
  (cd "$ROOT/build-asan" && ctest --output-on-failure --no-tests=error \
    -j "$JOBS" -R "ChurnTorture|LiveIndex")

  # Lock discipline (DESIGN.md §10): Debug defaults DJ_LOCK_RANK=ON, so
  # the death label exercises the runtime aborts (rank inversion,
  # re-entry, condvar-with-second-lock), tsan hammers the hook
  # bookkeeping, and lint runs dj_deadlock over fixtures + the real tree.
  # NB: $ctest_args is intentionally word-split in run_profile, so the
  # label regex must stay unquoted (quotes would end up inside the regex
  # and silently select the wrong tests).
  run_profile build-lockrank "lock-rank (Debug)" "-L death|tsan|lint" \
    -DCMAKE_BUILD_TYPE=Debug -DDJ_LOCK_RANK=ON
  echo "=== [lock-rank (Debug)] dj_lockgraph: observed-graph dump ==="
  "$ROOT/build-lockrank/tools/dj_lockgraph" --format=json \
    | python3 -c "import json,sys; d=json.load(sys.stdin); \
print('dj_lockgraph: %d nodes, %d edges' % (len(d['nodes']), len(d['edges'])))"
  "$ROOT/build-lockrank/tools/dj_lockgraph" --format=dot >/dev/null

  # Allocation discipline (DESIGN.md §11): Debug defaults DJ_ALLOC_GUARD=ON,
  # so the death label exercises the ScopedAllocBan aborts, the guarded
  # steady-state search test proves zero allocations per query for real,
  # and lint runs dj_alloc over its fixtures plus the real tree. The
  # dj_stats smoke confirms the guard's process-wide tallies reach the
  # metrics snapshot (a live pipeline allocates, so the count is nonzero).
  run_profile build-allocguard "alloc-guard (Debug)" "-L death|lint" \
    -DCMAKE_BUILD_TYPE=Debug -DDJ_ALLOC_GUARD=ON
  echo "=== [alloc-guard (Debug)] dj_stats: alloc tallies exported ==="
  "$ROOT/build-allocguard/tools/dj_stats" --repo=64 --queries=4 \
      --format=json 2>/dev/null \
    | python3 -c "import json,sys; g=json.load(sys.stdin)['gauges']; \
assert g['dj_alloc_count'] > 0 and g['dj_alloc_bytes'] > 0, g; \
print('dj_stats: dj_alloc_count=%d dj_alloc_bytes=%d' \
% (g['dj_alloc_count'], g['dj_alloc_bytes']))"

  # Serving layer (DESIGN.md §13). Like the churn leg: the tsan/asan
  # profiles already run these inside their label/full-suite runs; this
  # re-selects them by test-name regex so a serving regression fails as
  # its own "[serve]" line.
  echo "=== [serve] TSan serve stress + batcher races ==="
  (cd "$ROOT/build-tsan" && ctest --output-on-failure --no-tests=error \
    -j "$JOBS" -R "Serve")
  echo "=== [serve] ASan+UBSan deadline short-circuit + backpressure + shared scan ==="
  (cd "$ROOT/build-asan" && ctest --output-on-failure --no-tests=error \
    -j "$JOBS" -R "ServeDeadline|ServeBackpressure|ServeBatcher|FlatSharedScan")

  # Optional clang-tidy leg over the checked-in .clang-tidy profile; the
  # plain build exported compile_commands.json.
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== [clang-tidy] src/**.cc with .clang-tidy profile ==="
    find "$ROOT/src" -name '*.cc' -print0 \
      | xargs -0 clang-tidy -p "$ROOT/build" --quiet
  else
    echo "=== [clang-tidy] SKIPPED: clang-tidy not found ==="
  fi
fi

echo "=== check.sh: all profiles clean ==="
