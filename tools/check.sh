#!/usr/bin/env bash
# Full correctness matrix for the DeepJoin tree (see DESIGN.md,
# "Correctness tooling"):
#
#   1. plain build          + full ctest suite (includes the lint test)
#   2. ASan+UBSan build     + full ctest suite
#   3. TSan build           + the `tsan`-labeled concurrency tests
#
# Usage: tools/check.sh [--quick]
#   --quick  plain build + ctest only (skips the sanitizer builds)
#
# Build trees land in build/ (plain), build-asan/, build-tsan/ next to the
# source root, so the plain tree matches the tier-1 verify command.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run_profile() {
  local dir="$1" label="$2" ctest_args="$3"
  shift 3
  echo "=== [$label] configure ==="
  cmake -B "$ROOT/$dir" -S "$ROOT" "$@" >/dev/null
  echo "=== [$label] build ==="
  cmake --build "$ROOT/$dir" -j "$JOBS"
  echo "=== [$label] test ($ctest_args) ==="
  # shellcheck disable=SC2086
  (cd "$ROOT/$dir" && ctest --output-on-failure -j "$JOBS" $ctest_args)
}

run_profile build "plain" ""

if [[ "$QUICK" == "0" ]]; then
  # halt_on_error makes a sanitizer finding fail the test instead of just
  # printing; detect_leaks stays off for gtest binaries (gtest's lazy
  # singletons read as leaks and would drown real reports).
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=0"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

  run_profile build-asan "asan+ubsan" "" -DDJ_SANITIZE="address;undefined"
  run_profile build-tsan "tsan" "-L tsan" -DDJ_SANITIZE="thread"
fi

echo "=== check.sh: all profiles clean ==="
