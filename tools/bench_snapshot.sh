#!/usr/bin/env bash
# Records a kernel-benchmark snapshot as BENCH_micro.json at the repo root.
#
# Runs the kernel, GEMM, and encoder micro-benchmarks from bench_micro
# (both dispatch tiers are covered inside the binary via the tier arg) and
# writes google-benchmark's JSON output. Commit the refreshed file when
# kernel performance changes so the before/after numbers travel with the
# code.
#
# The filter also records the metrics-overhead pairs (BM_PlmEncodeColumn /
# BM_HnswSearch vs their *MetricsOff twins), so BENCH_micro.json carries
# the instrumentation cost of the observability layer (DESIGN.md §9
# budgets it at <2%), plus the steady-state allocation-discipline benches
# (BM_HnswSearchInto, BM_SearcherSteadyStateQuery). Their allocs_per_op
# counters only appear when the build compiles the alloc guard in
# (-DDJ_ALLOC_GUARD=ON / Debug); a Release snapshot carries timings only.
#
# Usage: tools/bench_snapshot.sh [build-dir] [extra benchmark args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
shift || true

BIN="$BUILD/bench/bench_micro"
if [[ ! -x "$BIN" ]]; then
  echo "bench_snapshot: $BIN not built (cmake --build $BUILD --target bench_micro)" >&2
  exit 1
fi

FILTER='BM_Kernel|BM_Sgemm|BM_NaiveGemm|BM_EncodeToVector|BM_HnswSearch|BM_PlmEncodeColumn|BM_SearcherSteadyState'
OUT="$ROOT/BENCH_micro.json"

"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time=0.2 \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "bench_snapshot: wrote $OUT"
