#!/usr/bin/env bash
# Records benchmark snapshots at the repo root: BENCH_micro.json (kernel /
# encoder / search micro-benchmarks), BENCH_churn.json (live-index churn),
# and BENCH_serve.json (serving-layer rate sweep from tools/dj_loadgen).
#
# Runs the kernel, GEMM, and encoder micro-benchmarks from bench_micro
# (both dispatch tiers are covered inside the binary via the tier arg) and
# writes google-benchmark's JSON output. Commit the refreshed files when
# performance-relevant code changes so the before/after numbers travel with
# the code.
#
# The micro filter also records the metrics-overhead pairs
# (BM_PlmEncodeColumn / BM_HnswSearch vs their *MetricsOff twins), so
# BENCH_micro.json carries the instrumentation cost of the observability
# layer (DESIGN.md §9 budgets it at <2%), plus the steady-state
# allocation-discipline benches (BM_HnswSearchInto,
# BM_SearcherSteadyStateQuery). Their allocs_per_op counters only appear
# when the build compiles the alloc guard in (-DDJ_ALLOC_GUARD=ON / Debug);
# a Release snapshot carries timings only.
#
# BENCH_churn.json (from bench_churn) carries the live-mutability numbers
# of DESIGN.md §12: search mean + p50/p99 tail with and without a
# concurrent mutator, per-mutation cost in-memory vs WAL-backed, snapshot
# publication and compaction latency, and the recall_churned /
# recall_rebuilt / recall_drift counters against exact flat-index ground
# truth.
#
# Usage: tools/bench_snapshot.sh [build-dir] [extra benchmark args...]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
shift || true

MICRO_BIN="$BUILD/bench/bench_micro"
CHURN_BIN="$BUILD/bench/bench_churn"
for bin in "$MICRO_BIN" "$CHURN_BIN"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_snapshot: $bin not built (cmake --build $BUILD --target $(basename "$bin"))" >&2
    exit 1
  fi
done

FILTER='BM_Kernel|BM_Sgemm|BM_NaiveGemm|BM_EncodeToVector|BM_HnswSearch|BM_PlmEncodeColumn|BM_SearcherSteadyState|BM_FlatSearchBatch'
OUT="$ROOT/BENCH_micro.json"

"$MICRO_BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time=0.2 \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "$@"

echo "bench_snapshot: wrote $OUT"

CHURN_OUT="$ROOT/BENCH_churn.json"

"$CHURN_BIN" \
  --benchmark_min_time=0.2 \
  --benchmark_out="$CHURN_OUT" \
  --benchmark_out_format=json \
  "$@"

echo "bench_snapshot: wrote $CHURN_OUT"

# BENCH_serve.json (DESIGN.md §13): offered-rate sweep against the
# QueryService on a flat-backend corpus sized past cache, where
# single-query scans are memory-bound and batched scans stay
# compute-bound. The derived figures are the serving-layer acceptance
# bar: saturation_speedup >= 3 (batched goodput over single-query
# throughput) and low_rate_p99_ratio <= 2 (batching latency tax at low
# load). Override the corpus with DJ_LOADGEN_ARGS for quick smokes.
SERVE_BIN="$BUILD/tools/dj_loadgen"
if [[ ! -x "$SERVE_BIN" ]]; then
  echo "bench_snapshot: $SERVE_BIN not built (cmake --build $BUILD --target dj_loadgen)" >&2
  exit 1
fi
SERVE_OUT="$ROOT/BENCH_serve.json"
# shellcheck disable=SC2086
"$SERVE_BIN" ${DJ_LOADGEN_ARGS:---repo=250000 --dim=256 --secs=5 \
  --rates=0.25,1,2,4,8 --max-batch=64} --metrics --out="$SERVE_OUT"

echo "bench_snapshot: wrote $SERVE_OUT"

# BENCH_scale.json (DESIGN.md §14): the beyond-RAM matrix — {float,SQ8} x
# {owned,mapped} open latency, resident bytes, and recall (plus the
# refine_factor sweep) through the unified SaveIndexFile/OpenIndex API at
# 500K x 256. Acceptance: sq8_memory_reduction >= 3.5 (the binary exits
# nonzero below it) and mapped opens staying O(1) — milliseconds against
# the owned path's full-file read+CRC. Override with DJ_SCALE_ARGS
# (e.g. --rows=20000) for quick smokes.
SCALE_BIN="$BUILD/bench/bench_scale"
if [[ ! -x "$SCALE_BIN" ]]; then
  echo "bench_snapshot: $SCALE_BIN not built (cmake --build $BUILD --target bench_scale)" >&2
  exit 1
fi
SCALE_OUT="$ROOT/BENCH_scale.json"
# shellcheck disable=SC2086
"$SCALE_BIN" ${DJ_SCALE_ARGS:---rows=500000 --dim=256 --queries=32} \
  --out="$SCALE_OUT"

echo "bench_snapshot: wrote $SCALE_OUT"
