// dj_alloc: cross-translation-unit may-allocate analysis, the static half
// of the allocation-discipline layer (src/util/alloc_guard.h, DESIGN.md
// §11). Registered as a ctest (label: lint) so an allocation introduced on
// a path no test ever executes still fails the build.
//
// What it does, end to end:
//   1. Scans every source file for DJ_NOALLOC function annotations. A
//      declaration ending in ';' annotates the same function key as its
//      definition (header contracts are inherited by the .cc, like
//      DJ_REQUIRES in dj_deadlock).
//   2. Lexes every function body and records (a) direct allocation events
//      — `new`, malloc/calloc/realloc, make_unique/make_shared,
//      std::to_string, local std::vector/std::string construction,
//      std::function declarations, container growth calls
//      (push_back/resize/reserve/append/insert/…) and string
//      concatenation with a literal — and (b) every call site.
//   3. Resolves calls against class-qualified function keys
//      (`Class::Name` for members, bare `Name` for free functions):
//      explicit `X::f(...)` first, then the caller's own class, then a
//      globally unique name; ambiguous names are dropped (see blind
//      spots).
//   4. Runs the shared transitive may-allocate fixpoint
//      (lintc::ReachWitness) over the call graph.
//   5. Reports every DJ_NOALLOC function that can reach an allocation,
//      with the witness call chain down to the allocating line.
//
// Suppression: `// dj_alloc: allow(alloc)` on the line (or the line
// above). On a direct allocation event it discards the event — the
// documented use is one-time warmup work (pool growth, function-local
// static init) and growth of capacity-reusing scratch buffers. On a call
// site it cuts that call edge. Every suppression in the tree must carry a
// justification comment.
//
// Known blind spots (all deliberate, keeping the tool lexical and fast):
// calls through ambiguous unqualified names are dropped rather than
// fanned out (annotate each override of a virtual instead — that is what
// DJ_NOALLOC on both the interface and the implementations buys);
// allocation inside unscanned external code is invisible unless it goes
// through a recognized growth/construction form; a lambda body is
// analysed in its lexical position.
//
// Usage: dj_alloc [--root <dir>] [--list-rules] [--dump-graph]
//                 [subdir ...]
//   Scans <root>/src by default. Exit: 0 clean, 1 violations, 2 usage.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_common.h"

namespace fs = std::filesystem;

namespace {

using lintc::FileText;
using lintc::HeadFunctionName;
using lintc::IsAnnotationMacro;
using lintc::Lex;
using lintc::StripCommentsAndStrings;
using lintc::Tok;
using lintc::Violation;

/// Free functions whose return value is freshly heap-allocated memory.
const std::set<std::string>& AllocCalls() {
  static const std::set<std::string> kSet = {
      "malloc",      "calloc",      "realloc",       "strdup",
      "aligned_alloc", "posix_memalign", "make_unique", "make_shared",
      "to_string",
  };
  return kSet;
}

/// Member calls that may grow a container (vector/string/map/set/deque).
/// `reserve` is included on purpose: on a fresh object it allocates; on a
/// capacity-reusing scratch buffer the site carries a justified
/// suppression.
const std::set<std::string>& GrowthCalls() {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "resize",  "reserve",    "append",
      "insert",    "emplace",      "try_emplace", "assign", "push_front",
      "emplace_front", "push",
  };
  return kSet;
}

struct CallSite {
  std::string callee;     // unqualified name as written
  std::string qualifier;  // explicit `X::` at the call site ("" if none)
  std::string caller_class;  // class of the enclosing function ("" if free)
  bool member_call = false;   // written as `recv.f(...)` or `recv->f(...)`
  bool receiver_this = false;  // the receiver token is `this`
  std::string file;
  size_t line = 0;
};

struct FuncInfo {
  bool noalloc = false;       // carries a DJ_NOALLOC annotation
  std::string def_site_file;  // first seen definition (for reporting)
  size_t def_site_line = 0;
  std::string direct_event;   // first unsuppressed allocation event label
  std::vector<CallSite> calls;
};

class Analyzer {
 public:
  explicit Analyzer(fs::path root) : root_(std::move(root)) {}

  const std::vector<Violation>& violations() const { return violations_; }
  size_t files_scanned() const { return files_scanned_; }

  void AnalyzeTree(const fs::path& dir) {
    for (const fs::path& f : lintc::CollectSourceFiles(dir)) ScanFile(f);
  }

  /// Call resolution + fixpoint + report. Call once after AnalyzeTree.
  void Finish(bool dump_graph) {
    // Unqualified name -> keys carrying it (for unique-name resolution).
    std::map<std::string, std::vector<std::string>> by_name;
    for (const auto& [key, f] : funcs_) {
      (void)f;
      const size_t sep = key.rfind("::");
      by_name[sep == std::string::npos ? key : key.substr(sep + 2)]
          .push_back(key);
    }

    lintc::CallGraph graph;
    for (const auto& [key, f] : funcs_) {
      std::vector<std::string>& out = graph[key];
      for (const CallSite& c : f.calls) {
        const std::string resolved = Resolve(c, by_name);
        if (!resolved.empty()) out.push_back(resolved);
      }
    }

    std::map<std::string, std::string> seeds;
    for (const auto& [key, f] : funcs_) {
      if (!f.direct_event.empty()) seeds[key] = f.direct_event;
    }
    const std::map<std::string, std::string> may_alloc =
        lintc::ReachWitness(graph, seeds);

    if (dump_graph) {
      for (const auto& [key, callees] : graph) {
        for (const std::string& callee : callees) {
          std::cout << key << " -> " << callee << "\n";
        }
      }
    }

    for (const auto& [key, f] : funcs_) {
      if (!f.noalloc) continue;
      auto it = may_alloc.find(key);
      if (it == may_alloc.end() || it->second.empty()) continue;
      violations_.push_back(
          {f.def_site_file, f.def_site_line, "noalloc",
           "DJ_NOALLOC function '" + key + "' may allocate: " + it->second});
    }
  }

 private:
  /// Resolution order: explicit `X::f` > caller's own class `C::f` > exact
  /// free-function key `f` > globally unique `*::f`. Everything else is
  /// dropped (ambiguous or external).
  std::string Resolve(
      const CallSite& c,
      const std::map<std::string, std::vector<std::string>>& by_name) const {
    if (!c.qualifier.empty()) {
      const std::string qualified = c.qualifier + "::" + c.callee;
      if (funcs_.count(qualified) != 0) return qualified;
      // Namespace-qualified free function (e.g. kern::Dot): the key holds
      // only the bare name.
      if (funcs_.count(c.callee) != 0) return c.callee;
      return "";
    }
    // A member call through another receiver (`vocab_.Encode(...)`,
    // `counter->Add(...)`) can match neither the caller's class nor a free
    // function: the receiver's class is unknown, so resolve only when
    // exactly one class in the tree defines the name (annotate each
    // override otherwise — the documented virtual-dispatch blind spot).
    if (c.member_call && !c.receiver_this) {
      auto it = by_name.find(c.callee);
      if (it == by_name.end()) return "";
      std::string found;
      for (const std::string& key : it->second) {
        if (key.find("::") == std::string::npos) continue;  // free function
        if (!found.empty()) return "";                      // ambiguous
        found = key;
      }
      return found;
    }
    if (!c.caller_class.empty()) {
      const std::string same_class = c.caller_class + "::" + c.callee;
      if (funcs_.count(same_class) != 0) return same_class;
    }
    if (funcs_.count(c.callee) != 0) return c.callee;
    auto it = by_name.find(c.callee);
    if (it != by_name.end() && it->second.size() == 1) return it->second[0];
    return "";
  }

  std::string Relative(const fs::path& path) const {
    std::error_code ec;
    const fs::path rel = fs::relative(path, root_, ec);
    return (ec ? path : rel).generic_string();
  }

  void ScanFile(const fs::path& path) {
    std::ifstream in(path);
    if (!in) return;
    ++files_scanned_;
    const std::string rel = Relative(path);
    const FileText text = StripCommentsAndStrings(in);
    const std::vector<Tok> toks = Lex(text);

    auto suppressed = [&](size_t line) {
      return line != 0 && line <= text.raw.size() &&
             lintc::SuppressedAt(text, line - 1, "dj_alloc", "alloc");
    };

    enum ScopeKind { kNamespace, kClass, kFunction, kBlock };
    struct Scope {
      ScopeKind kind = kBlock;
      std::string class_name;  // for kClass
      std::string func_key;    // for kFunction
    };
    std::vector<Scope> scopes;
    std::vector<Tok> head;

    auto current_func = [&]() -> std::string {
      for (size_t i = scopes.size(); i-- > 0;) {
        if (scopes[i].kind == kFunction) return scopes[i].func_key;
      }
      return "";
    };
    auto enclosing_class = [&]() -> std::string {
      for (size_t i = scopes.size(); i-- > 0;) {
        if (scopes[i].kind == kClass) return scopes[i].class_name;
        if (scopes[i].kind == kFunction) break;  // local classes only
      }
      return "";
    };
    // Function key for a head whose name token sits at `idx`: explicit
    // `X::name` qualification wins, else the enclosing class, else bare.
    auto key_for_head = [&](const std::vector<Tok>& h, size_t idx,
                            const std::string& name) {
      if (idx >= 3 && h[idx - 1].text == ":" && h[idx - 2].text == ":" &&
          h[idx - 3].kind == Tok::kIdent) {
        return h[idx - 3].text + "::" + name;
      }
      const std::string cls = enclosing_class();
      return cls.empty() ? name : cls + "::" + name;
    };
    auto head_has_noalloc = [](const std::vector<Tok>& h) {
      for (const Tok& t : h) {
        if (t.kind == Tok::kIdent && t.text == "DJ_NOALLOC") return true;
      }
      return false;
    };
    auto record_event = [&](const std::string& label, size_t line) {
      const std::string fn = current_func();
      if (fn.empty() || suppressed(line)) return;
      FuncInfo& f = funcs_[fn];
      if (f.direct_event.empty()) {
        f.direct_event = label + " (" + rel + ":" + std::to_string(line) + ")";
      }
    };

    for (size_t i = 0; i < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (t.text == "{") {
        Scope s;
        std::string class_kw_name;
        bool has_class = false, has_namespace = false;
        for (size_t h = 0; h + 1 < head.size(); ++h) {
          if (head[h].text == "class" || head[h].text == "struct" ||
              head[h].text == "union") {
            has_class = true;
            if (head[h + 1].kind == Tok::kIdent) {
              class_kw_name = head[h + 1].text;
            }
          }
          if (head[h].text == "namespace") has_namespace = true;
        }
        if (!head.empty() && head.back().text == "namespace") {
          has_namespace = true;  // anonymous namespace
        }
        const bool in_function = !current_func().empty();
        size_t name_idx = 0;
        const std::string fn = HeadFunctionName(head, &name_idx);
        bool looks_like_fn = false;
        if (!head.empty()) {
          const std::string& prev = head.back().text;
          looks_like_fn = prev == ")" || prev == "const" ||
                          prev == "noexcept" || prev == "override" ||
                          prev == "final";
        }
        if (has_namespace && !in_function) {
          s.kind = kNamespace;
        } else if (has_class && !in_function) {
          s.kind = kClass;
          s.class_name = class_kw_name;
        } else if (!in_function && !fn.empty() && looks_like_fn) {
          s.kind = kFunction;
          s.func_key = key_for_head(head, name_idx, fn);
          FuncInfo& f = funcs_[s.func_key];
          if (f.def_site_file.empty()) {
            f.def_site_file = rel;
            f.def_site_line = head[name_idx].line;
          }
          if (head_has_noalloc(head)) f.noalloc = true;
        } else if (in_function && !fn.empty() && looks_like_fn) {
          // Lambda or local helper: analysed in its lexical position —
          // treat the braces as a plain block of the enclosing function.
          s.kind = kBlock;
        } else {
          s.kind = kBlock;
        }
        scopes.push_back(std::move(s));
        head.clear();
        continue;
      }
      if (t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        head.clear();
        continue;
      }
      if (t.text == ";") {
        // Declarations carry DJ_NOALLOC too — harvest so definitions in
        // the .cc inherit the header's contract.
        if (head_has_noalloc(head)) {
          size_t name_idx = 0;
          const std::string fn = HeadFunctionName(head, &name_idx);
          if (!fn.empty()) {
            funcs_[key_for_head(head, name_idx, fn)].noalloc = true;
          }
        }
        head.clear();
        continue;
      }
      head.push_back(t);

      const std::string fn = current_func();
      if (fn.empty()) continue;  // events only matter inside bodies

      // ---- direct allocation events ----
      if (t.kind == Tok::kIdent && t.text == "new") {
        const bool op_def = i > 0 && toks[i - 1].text == "operator";
        if (!op_def) record_event("new", t.line);
        continue;
      }
      if (t.kind == Tok::kIdent && i + 1 < toks.size() &&
          (toks[i + 1].text == "(" || toks[i + 1].text == "<") &&
          AllocCalls().count(t.text) != 0) {
        record_event(t.text + "()", t.line);
        continue;
      }
      if (t.kind == Tok::kIdent && t.text == "function" &&
          i + 1 < toks.size() && toks[i + 1].text == "<") {
        record_event("std::function construction", t.line);
        continue;
      }
      if (t.kind == Tok::kIdent && t.text == "string" &&
          i + 1 < toks.size() && toks[i + 1].text == "(") {
        record_event("std::string construction", t.line);
        continue;
      }
      if (t.kind == Tok::kIdent && t.text == "vector" &&
          i + 1 < toks.size() && toks[i + 1].text == "<") {
        // Local vector: skip reference/pointer bindings (no construction).
        size_t j = i + 1;
        int depth = 0;
        while (j < toks.size()) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">" && --depth == 0) break;
          ++j;
        }
        const bool ref_or_ptr =
            j + 1 < toks.size() &&
            (toks[j + 1].text == "&" || toks[j + 1].text == "*");
        if (!ref_or_ptr) record_event("local std::vector", t.line);
        continue;
      }
      // String concatenation with a literal operand.
      if (t.kind == Tok::kPunct && t.text == "+" &&
          ((i > 0 && toks[i - 1].kind == Tok::kString) ||
           (i + 1 < toks.size() && toks[i + 1].kind == Tok::kString))) {
        record_event("string concatenation", t.line);
        continue;
      }
      // Container growth through a member call.
      const bool via_dot = i > 0 && toks[i - 1].text == ".";
      const bool via_arrow =
          i > 1 && toks[i - 1].text == ">" && toks[i - 2].text == "-";
      if (t.kind == Tok::kIdent && (via_dot || via_arrow) &&
          i + 1 < toks.size() && toks[i + 1].text == "(" &&
          GrowthCalls().count(t.text) != 0) {
        record_event("." + t.text + "()", t.line);
        continue;
      }

      // ---- call sites ----
      if (t.kind == Tok::kIdent && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        static const std::set<std::string> kNotCalls = {
            "if",     "for",    "while",   "switch",   "return", "catch",
            "sizeof", "static_cast",       "const_cast",
            "dynamic_cast",     "reinterpret_cast",    "alignof",
            "decltype",
        };
        if (kNotCalls.count(t.text) != 0 || IsAnnotationMacro(t.text)) {
          continue;
        }
        if (suppressed(t.line)) continue;  // cut the edge, not the function
        CallSite c;
        c.callee = t.text;
        if (i >= 3 && toks[i - 1].text == ":" && toks[i - 2].text == ":" &&
            toks[i - 3].kind == Tok::kIdent) {
          c.qualifier = toks[i - 3].text;
        }
        if (via_dot || via_arrow) {
          c.member_call = true;
          const size_t recv = via_dot ? i - 2 : i - 3;
          c.receiver_this =
              recv < i && toks[recv].text == "this";  // recv underflow-safe
        }
        const size_t sep = fn.rfind("::");
        if (sep != std::string::npos) c.caller_class = fn.substr(0, sep);
        c.file = rel;
        c.line = t.line;
        funcs_[fn].calls.push_back(std::move(c));
      }
    }
  }

  fs::path root_;
  std::map<std::string, FuncInfo> funcs_;  // class-qualified name -> info
  std::vector<Violation> violations_;
  size_t files_scanned_ = 0;
};

void ListRules() {
  std::cout
      << "noalloc        a DJ_NOALLOC function (src/util/alloc_guard.h) "
         "must not reach any allocation: new, malloc/calloc/realloc, "
         "make_unique/make_shared, std::to_string, local vector/string "
         "construction, std::function, container growth "
         "(push_back/resize/reserve/append/insert/...), or string "
         "concatenation — transitively through the call graph\n"
      << "suppress with  // dj_alloc: allow(alloc)  (at the allocation "
         "site: discards the event; at a call site: cuts that edge; "
         "reserved for warmup-only work and capacity-reusing scratch)\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> subdirs;
  bool dump_graph = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "dj_alloc: --root requires a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      ListRules();
      return 0;
    } else if (arg == "--dump-graph") {
      dump_graph = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dj_alloc: unknown flag " << arg << "\n";
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }
  if (subdirs.empty()) subdirs.push_back("src");

  Analyzer analyzer(root);
  bool scanned_any = false;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::is_directory(dir)) continue;
    scanned_any = true;
    analyzer.AnalyzeTree(dir);
  }
  if (!scanned_any) {
    std::cerr << "dj_alloc: nothing to scan under " << root << "\n";
    return 2;
  }
  analyzer.Finish(dump_graph);

  return lintc::PrintReport("dj_alloc", analyzer.violations(),
                            analyzer.files_scanned());
}
