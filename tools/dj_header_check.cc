// dj_header_check: IWYU-lite header-hygiene pass, registered as a ctest
// (label: lint). For every header under the scanned subdirs (default:
// src/), it generates a single-include translation unit and compiles it
// with -fsyntax-only, proving the header is self-sufficient — compilable
// without relying on includes its includers happen to provide. A header
// that drifts into depending on a transitive include breaks the first time
// someone reorders includes or prunes a dependency; this check catches the
// drift at the PR that introduces it.
//
// On failure the report carries the compiler output (trimmed) plus
// best-effort hints mapping undeclared standard names to the missing
// standard header (e.g. `uint32_t` -> <cstdint>, `std::string` ->
// <string>).
//
// Opt-out: a header containing `dj_header_check: skip` anywhere (comment
// included) is not checked — for headers that are deliberately
// fragment-style (none in the tree today).
//
// Usage:
//   dj_header_check --root <dir> [--compiler <c++>] [--std <std>]
//                   [--include <dir>]... [--jobs <n>] [subdir ...]
// Defaults: compiler c++, -std=c++20, include dir <root>/src, subdir src.
// Directories named "testdata" are skipped so fixture trees with
// deliberate violations do not fail the tree-wide run.
// Exit code: 0 when clean, 1 when violations were found, 2 on usage error.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Options {
  fs::path root = ".";
  std::string compiler = "c++";
  std::string std_flag = "c++20";
  std::vector<fs::path> include_dirs;
  std::vector<std::string> subdirs;
  size_t jobs = 0;  // 0 = hardware concurrency
};

struct CheckResult {
  bool ok = true;
  bool skipped = false;
  std::string detail;  // compiler output + hints when !ok
};

/// Known standard names -> the header that declares them. Scanned against
/// compiler error lines with word boundaries, so `uint32_t` does not match
/// inside `my_uint32_tag`.
const std::pair<const char*, const char*> kHintTable[] = {
    {"uint8_t", "<cstdint>"},     {"uint16_t", "<cstdint>"},
    {"uint32_t", "<cstdint>"},    {"uint64_t", "<cstdint>"},
    {"int8_t", "<cstdint>"},      {"int16_t", "<cstdint>"},
    {"int32_t", "<cstdint>"},     {"int64_t", "<cstdint>"},
    {"size_t", "<cstddef>"},      {"ptrdiff_t", "<cstddef>"},
    {"nullptr_t", "<cstddef>"},   {"string", "<string>"},
    {"string_view", "<string_view>"}, {"vector", "<vector>"},
    {"array", "<array>"},         {"deque", "<deque>"},
    {"queue", "<queue>"},         {"map", "<map>"},
    {"set", "<set>"},             {"unordered_map", "<unordered_map>"},
    {"unordered_set", "<unordered_set>"}, {"pair", "<utility>"},
    {"tuple", "<tuple>"},         {"optional", "<optional>"},
    {"variant", "<variant>"},     {"span", "<span>"},
    {"function", "<functional>"}, {"unique_ptr", "<memory>"},
    {"shared_ptr", "<memory>"},   {"make_unique", "<memory>"},
    {"make_shared", "<memory>"},  {"move", "<utility>"},
    {"forward", "<utility>"},     {"swap", "<utility>"},
    {"numeric_limits", "<limits>"}, {"ostream", "<ostream>"},
    {"istream", "<istream>"},     {"ofstream", "<fstream>"},
    {"ifstream", "<fstream>"},    {"atomic", "<atomic>"},
    {"thread", "<thread>"},       {"sort", "<algorithm>"},
    {"min", "<algorithm>"},       {"max", "<algorithm>"},
    {"memcpy", "<cstring>"},      {"memset", "<cstring>"},
    {"strlen", "<cstring>"},      {"sqrt", "<cmath>"},
    {"log", "<cmath>"},           {"exp", "<cmath>"},
    {"fabs", "<cmath>"},          {"FILE", "<cstdio>"},
    {"initializer_list", "<initializer_list>"},
};

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool ContainsToken(const std::string& hay, const std::string& needle) {
  size_t from = 0;
  while (true) {
    const size_t p = hay.find(needle, from);
    if (p == std::string::npos) return false;
    const bool left_ok = p == 0 || !IsWordChar(hay[p - 1]);
    const size_t end = p + needle.size();
    const bool right_ok = end >= hay.size() || !IsWordChar(hay[end]);
    if (left_ok && right_ok) return true;
    from = p + 1;
  }
}

/// Collects `hint: add #include <...>` lines from compiler error output.
std::vector<std::string> Hints(const std::string& compiler_output) {
  std::vector<std::string> hints;
  std::istringstream in(compiler_output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("error:") == std::string::npos) continue;
    for (const auto& [name, header] : kHintTable) {
      if (!ContainsToken(line, name)) continue;
      const std::string hint =
          std::string("hint: add #include ") + header + "  (for `" + name +
          "`)";
      if (std::find(hints.begin(), hints.end(), hint) == hints.end()) {
        hints.push_back(hint);
      }
    }
  }
  return hints;
}

/// Runs `cmd` (stderr folded into stdout), returning exit code + output.
int RunCommand(const std::string& cmd, std::string* output) {
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[1024];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) *output += buf;
  const int rc = pclose(pipe);
  return rc;
}

bool HasSkipMarker(const fs::path& header) {
  std::ifstream in(header);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("dj_header_check: skip") != std::string::npos) return true;
  }
  return false;
}

/// Compiles a one-line TU that includes `header` by absolute path; the
/// include dirs still matter for the header's own includes.
CheckResult CheckHeader(const Options& opt, const fs::path& header,
                        const fs::path& scratch_dir, size_t index) {
  CheckResult result;
  if (HasSkipMarker(header)) {
    result.skipped = true;
    return result;
  }
  const fs::path tu = scratch_dir / ("tu_" + std::to_string(index) + ".cc");
  {
    // Absolute path: the TU lives in a scratch dir, so a root-relative
    // quoted include would resolve against the wrong directory.
    std::ofstream out(tu);
    out << "#include \"" << fs::absolute(header).generic_string() << "\"\n";
  }
  std::string cmd = opt.compiler + " -std=" + opt.std_flag + " -fsyntax-only";
  for (const fs::path& inc : opt.include_dirs) {
    cmd += " -I \"" + fs::absolute(inc).generic_string() + "\"";
  }
  cmd += " \"" + tu.generic_string() + "\"";

  std::string output;
  const int rc = RunCommand(cmd, &output);
  if (rc == 0) return result;

  result.ok = false;
  // Trim the compiler spew: the first errors are the actionable ones.
  constexpr size_t kMaxLines = 12;
  std::istringstream in(output);
  std::string line;
  size_t lines = 0;
  std::ostringstream detail;
  while (std::getline(in, line) && lines < kMaxLines) {
    detail << "    " << line << "\n";
    ++lines;
  }
  if (in.peek() != EOF) detail << "    ... (output trimmed)\n";
  for (const std::string& hint : Hints(output)) {
    detail << "    " << hint << "\n";
  }
  result.detail = detail.str();
  return result;
}

std::vector<fs::path> CollectHeaders(const Options& opt) {
  std::vector<fs::path> headers;
  for (const std::string& sub : opt.subdirs) {
    const fs::path dir = opt.root / sub;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if (name == "testdata" || name.rfind("build", 0) == 0) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (it->path().extension() == ".h") headers.push_back(it->path());
    }
  }
  std::sort(headers.begin(), headers.end());
  return headers;
}

std::string Relative(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  return (ec ? path : rel).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "dj_header_check: " << arg << " requires " << what
                  << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opt.root = next("a directory");
    } else if (arg == "--compiler") {
      opt.compiler = next("a compiler path");
    } else if (arg == "--std") {
      opt.std_flag = next("a -std value (e.g. c++20)");
    } else if (arg == "--include") {
      opt.include_dirs.emplace_back(next("a directory"));
    } else if (arg == "--jobs") {
      opt.jobs = static_cast<size_t>(std::stoul(next("a count")));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dj_header_check: unknown flag " << arg << "\n";
      return 2;
    } else {
      opt.subdirs.push_back(arg);
    }
  }
  if (opt.subdirs.empty()) opt.subdirs.push_back("src");
  if (opt.include_dirs.empty()) opt.include_dirs.push_back(opt.root / "src");
  if (opt.jobs == 0) {
    opt.jobs = std::max(1u, std::thread::hardware_concurrency());
  }

  const std::vector<fs::path> headers = CollectHeaders(opt);
  if (headers.empty()) {
    std::cerr << "dj_header_check: no headers found under " << opt.root
              << "\n";
    return 2;
  }

  std::error_code ec;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("dj_header_check_" + std::to_string(::getpid()));
  fs::create_directories(scratch, ec);
  if (ec) {
    std::cerr << "dj_header_check: cannot create scratch dir " << scratch
              << "\n";
    return 2;
  }

  // One compile per header, fanned out over a worker-per-core loop. Each
  // worker claims indices through the shared atomic and writes into its own
  // result slot, so no locking is needed (and the raw-mutex lint rule stays
  // honest even here).
  std::vector<CheckResult> results(headers.size());
  std::atomic<size_t> next_index{0};
  const size_t workers = std::min(opt.jobs, headers.size());
  {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const size_t i = next_index.fetch_add(1);
          if (i >= headers.size()) return;
          results[i] = CheckHeader(opt, headers[i], scratch, i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  fs::remove_all(scratch, ec);

  size_t failures = 0;
  size_t skipped = 0;
  for (size_t i = 0; i < headers.size(); ++i) {
    if (results[i].skipped) {
      ++skipped;
      continue;
    }
    if (results[i].ok) continue;
    ++failures;
    std::cout << Relative(headers[i], opt.root)
              << ": error: [self-contained] header does not compile in a "
                 "standalone translation unit\n"
              << results[i].detail;
  }
  if (failures == 0) {
    std::cout << "dj_header_check: clean (" << headers.size()
              << " headers checked";
    if (skipped > 0) std::cout << ", " << skipped << " skipped";
    std::cout << ")\n";
    return 0;
  }
  std::cout << "dj_header_check: " << failures << " of " << headers.size()
            << " headers are not self-sufficient\n";
  return 1;
}
