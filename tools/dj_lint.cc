// dj_lint: project-specific static checks for the DeepJoin tree, registered
// as a ctest (label: lint) so the build stays clean forever. Rules:
//
//   include-guard    headers use DEEPJOIN_<PATH>_H_ (path relative to the
//                    repo root, leading "src/" stripped, upper-cased,
//                    '/' and '.' mapped to '_')
//   using-namespace  no `using namespace` at any scope in headers
//   nondeterminism   std::rand / srand / std::random_device / time(nullptr)
//                    are banned everywhere except src/util/rng.h — all
//                    randomness flows through the seeded deepjoin::Rng
//   naked-new        no naked `new`; use std::make_unique/std::make_shared
//                    so ownership is explicit
//   no-printf        no std::cout or printf in library code (src/**);
//                    diagnostics go to stderr, tables via TablePrinter
//   raw-mutex        no std::mutex / std::lock_guard / std::unique_lock /
//                    std::condition_variable (etc.) outside src/util/mutex.h
//                    — locking flows through the annotated deepjoin::Mutex
//                    wrappers so -Wthread-safety analysis sees it
//   detached-thread  no std::thread::detach — a detached thread outlives
//                    every shutdown contract; join it or use ThreadPool
//   raw-file-io      no std::fopen / std::ifstream / std::ofstream /
//                    std::fstream in library code (src/**) outside
//                    src/util/ — file access flows through Env and
//                    BinaryWriter/BinaryReader so fault-injection tests and
//                    atomic saves cover every artifact
//   simd-intrinsics  no SIMD intrinsics (immintrin.h, _mm*/_mm256*/...,
//                    __m128/__m256/..., __builtin_ia32_*) outside
//                    src/util/kernels.* — vector code lives behind the
//                    runtime-dispatched kernel layer so every call site
//                    keeps its scalar fallback and determinism contract
//   adhoc-timing     no WallTimer/TimeAccumulator members or `double *_ms`
//                    fields in library headers (src/**) outside src/util/ —
//                    timing surfaces flow through trace::QueryStats and the
//                    metrics registry (src/util/trace.h, src/util/metrics.h)
//                    instead of per-class ad-hoc millisecond fields
//   sleep-in-library no std::this_thread::sleep_for / sleep_until in
//                    library code (src/**) — a sleep in the library is
//                    either a poll loop (use CondVar::Wait on a real
//                    condition) or a timing assumption (a latent flake);
//                    tests may sleep, the library may not
//   raw-mmap         no mmap / munmap (or <sys/mman.h>) outside
//                    src/util/env.cc — zero-copy mappings flow through
//                    Env::NewMappedRegion so region lifetime (shared_ptr
//                    pinning under RCU), bounds validation, and fault
//                    injection stay in one audited TU
//
// A violation is suppressed by `// dj_lint: allow(<rule>)` on the same line
// or on the line directly above it. Comment and string-literal contents are
// ignored by every rule except include-guard.
//
// The lexical scanner core (comment stripping, token search, suppression
// comments, tree walk) is shared with dj_deadlock via tools/lint_common.h.
//
// Usage: dj_lint [--root <dir>] [--list-rules] [subdir ...]
//   Scans <root>/{src,tests,bench,tools,examples} by default; explicit
//   subdirs (relative to --root) override the default set. Directories
//   named "testdata" are skipped so lint fixtures with deliberate
//   violations do not fail the tree-wide run.
// Exit code: 0 when clean, 1 when violations were found, 2 on usage error.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_common.h"

namespace fs = std::filesystem;

namespace {

using lintc::FileText;
using lintc::FindToken;
using lintc::IsWordChar;
using lintc::StripCommentsAndStrings;

struct Violation {
  std::string file;   // path as reported (relative to the scan root)
  size_t line = 0;    // 1-based
  std::string rule;
  std::string message;
};

bool SuppressedAt(const FileText& text, size_t line_idx,
                  const std::string& rule) {
  return lintc::SuppressedAt(text, line_idx, "dj_lint", rule);
}

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  const std::vector<Violation>& violations() const { return violations_; }
  size_t files_scanned() const { return files_scanned_; }

  void LintFile(const fs::path& path) {
    std::ifstream in(path);
    if (!in) {
      Report(path, 0, "io", "cannot open file");
      return;
    }
    ++files_scanned_;
    const FileText text = StripCommentsAndStrings(in);
    const std::string rel = Relative(path);
    const bool is_header = path.extension() == ".h";
    const bool is_library = rel.rfind("src/", 0) == 0;
    const bool is_util = rel.rfind("src/util/", 0) == 0;
    const bool is_rng_header = rel == "src/util/rng.h";
    const bool is_mutex_header = rel == "src/util/mutex.h";

    if (is_header) {
      CheckIncludeGuard(path, rel, text);
      CheckRule(path, text, "using-namespace", {"using namespace"},
                "`using namespace` in a header leaks into every includer");
    }
    if (!is_rng_header) {
      CheckRule(path, text, "nondeterminism",
                {"std::rand", "srand(", "std::random_device", "random_device",
                 "time(nullptr)", "time(NULL)"},
                "nondeterministic seed source; take a deepjoin::Rng "
                "(src/util/rng.h) instead");
    }
    if (!is_mutex_header) {
      CheckRule(path, text, "raw-mutex",
                {"std::mutex", "std::timed_mutex", "std::recursive_mutex",
                 "std::shared_mutex", "std::lock_guard", "std::unique_lock",
                 "std::scoped_lock", "std::condition_variable",
                 "std::condition_variable_any"},
                "raw standard mutex primitive; use deepjoin::Mutex / "
                "MutexLock / CondVar (src/util/mutex.h) so -Wthread-safety "
                "analysis sees the locking");
    }
    CheckRule(path, text, "detached-thread", {"detach("},
              "detached thread outlives every shutdown contract; join it "
              "or submit to ThreadPool");
    if (rel != "src/util/env.cc") {
      CheckRule(path, text, "raw-mmap", {"mmap(", "munmap(", "sys/mman.h"},
                "raw memory mapping outside src/util/env.cc; use "
                "Env::NewMappedRegion (src/util/env.h) so region lifetime, "
                "bounds checks, and fault injection stay centralised");
    }
    CheckNakedNew(path, text);
    if (is_library) {
      CheckRule(path, text, "no-printf", {"std::cout", "printf("},
                "stdout output in library code; return data or use "
                "fprintf(stderr, ...) for diagnostics");
      CheckRule(path, text, "sleep-in-library", {"sleep_for", "sleep_until"},
                "sleep in library code; wait on a CondVar condition instead "
                "of polling or assuming timing");
    }
    if (is_library && !is_util) {
      CheckRule(path, text, "raw-file-io",
                {"fopen(", "ifstream", "ofstream", "fstream"},
                "raw file I/O in library code; go through Env and "
                "BinaryWriter/BinaryReader (src/util/env.h) so fault "
                "injection and atomic saves cover it");
    }
    if (is_header && is_library && !is_util) {
      CheckAdhocTiming(path, text);
    }
    // Serving-path waits must be time-bounded: an untimed CondVar::Wait (or
    // ThreadPool::Wait) in src/serve/ can outlast every request deadline,
    // so the layer's contract is that all blocking uses WaitFor (or a
    // deadline re-check loop). Token matching gives WaitFor( a pass: the
    // word boundary between `Wait` and `(` fails on the trailing `For`.
    if (rel.rfind("src/serve/", 0) == 0) {
      CheckRule(path, text, "untimed-wait-in-serve", {"Wait("},
                "untimed wait in the serving layer; use CondVar::WaitFor "
                "with a bound derived from the request deadline or the "
                "batcher's idle tick");
    }
    // The kernel layer is the one sanctioned home for vector intrinsics.
    if (rel.rfind("src/util/kernels", 0) != 0) {
      CheckSubstringRule(
          path, text, "simd-intrinsics",
          {"immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
           "arm_neon.h", "_mm_", "_mm256_", "_mm512_", "__m128", "__m256",
           "__m512", "__builtin_ia32_"},
          "SIMD intrinsic outside src/util/kernels.*; add a kernel to the "
          "dispatch layer (src/util/kernels.h) instead");
    }
  }

  /// Recursively lints every .h/.cc/.cpp under `dir`, skipping fixture
  /// directories named "testdata" and build trees.
  void LintTree(const fs::path& dir) {
    for (const auto& f : lintc::CollectSourceFiles(dir)) LintFile(f);
  }

 private:
  std::string Relative(const fs::path& path) const {
    std::error_code ec;
    const fs::path rel = fs::relative(path, root_, ec);
    return (ec ? path : rel).generic_string();
  }

  void Report(const fs::path& path, size_t line, const std::string& rule,
              const std::string& message) {
    violations_.push_back({Relative(path), line, rule, message});
  }

  /// Expected guard for e.g. src/util/hash.h -> DEEPJOIN_UTIL_HASH_H_ and
  /// bench/common.h -> DEEPJOIN_BENCH_COMMON_H_.
  static std::string ExpectedGuard(std::string rel) {
    if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
    std::string guard = "DEEPJOIN_";
    for (char c : rel) {
      if (c == '/' || c == '.') {
        guard += '_';
      } else {
        guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
    }
    guard += '_';
    return guard;
  }

  void CheckIncludeGuard(const fs::path& path, const std::string& rel,
                         const FileText& text) {
    const std::string expected = ExpectedGuard(rel);
    for (size_t i = 0; i < text.code.size(); ++i) {
      std::istringstream line(text.code[i]);
      std::string directive, symbol;
      line >> directive >> symbol;
      if (directive != "#ifndef") continue;
      if (symbol != expected) {
        if (!SuppressedAt(text, i, "include-guard")) {
          Report(path, i + 1, "include-guard",
                 "guard is `" + symbol + "`, expected `" + expected + "`");
        }
        return;
      }
      // Guard symbol matches; the #define on the next line must agree.
      if (i + 1 < text.code.size()) {
        std::istringstream next(text.code[i + 1]);
        std::string def_directive, def_symbol;
        next >> def_directive >> def_symbol;
        if (def_directive == "#define" && def_symbol == expected) return;
      }
      if (!SuppressedAt(text, i, "include-guard")) {
        Report(path, i + 1, "include-guard",
               "#ifndef " + expected + " not followed by matching #define");
      }
      return;
    }
    if (!text.code.empty() && !SuppressedAt(text, 0, "include-guard")) {
      Report(path, 1, "include-guard", "missing guard `" + expected + "`");
    }
  }

  void CheckRule(const fs::path& path, const FileText& text,
                 const std::string& rule,
                 const std::vector<std::string>& needles,
                 const std::string& message) {
    for (size_t i = 0; i < text.code.size(); ++i) {
      for (const std::string& needle : needles) {
        size_t pos = 0;
        if (!FindToken(text.code[i], needle, &pos)) continue;
        if (!SuppressedAt(text, i, rule)) {
          Report(path, i + 1, rule, "`" + needle + "`: " + message);
        }
        break;  // one report per line per rule
      }
    }
  }

  /// Like CheckRule but with plain substring matching: intrinsic names are
  /// PREFIXES of the offending tokens (`_mm256_` matches `_mm256_add_ps`),
  /// which FindToken's word-boundary requirement would reject.
  void CheckSubstringRule(const fs::path& path, const FileText& text,
                          const std::string& rule,
                          const std::vector<std::string>& needles,
                          const std::string& message) {
    for (size_t i = 0; i < text.code.size(); ++i) {
      for (const std::string& needle : needles) {
        if (text.code[i].find(needle) == std::string::npos) continue;
        if (!SuppressedAt(text, i, rule)) {
          Report(path, i + 1, rule, "`" + needle + "`: " + message);
        }
        break;  // one report per line per rule
      }
    }
  }

  /// Library headers outside src/util/ must not grow ad-hoc timing
  /// surfaces: no WallTimer/TimeAccumulator members and no `double *_ms`
  /// data fields. Timing belongs in trace::QueryStats / the metrics
  /// registry so every layer reports through one instrumented path.
  void CheckAdhocTiming(const fs::path& path, const FileText& text) {
    static const char* kMessage =
        "ad-hoc timing in a public header; report through trace::QueryStats "
        "/ MetricsRegistry (src/util/trace.h, src/util/metrics.h) instead";
    for (size_t i = 0; i < text.code.size(); ++i) {
      const std::string& line = text.code[i];
      size_t pos = 0;
      if (FindToken(line, "WallTimer", &pos) ||
          FindToken(line, "TimeAccumulator", &pos)) {
        if (!SuppressedAt(text, i, "adhoc-timing")) {
          Report(path, i + 1, "adhoc-timing",
                 std::string("timer type in a header: ") + kMessage);
        }
        continue;
      }
      // `double something_ms` declarations: flag fields (terminated by
      // ';', '=', or '{'), not functions (`double total_ms() const`), so a
      // forwarding accessor over QueryStats stays legal.
      if (!FindToken(line, "double", &pos)) continue;
      size_t j = line.find_first_not_of(" \t", pos + 6);
      if (j == std::string::npos) continue;
      const size_t ident_begin = j;
      while (j < line.size() && IsWordChar(line[j])) ++j;
      const std::string ident = line.substr(ident_begin, j - ident_begin);
      if (ident.size() < 4 || ident.compare(ident.size() - 3, 3, "_ms") != 0) {
        continue;
      }
      const size_t next = line.find_first_not_of(" \t", j);
      if (next == std::string::npos || line[next] == '(') continue;
      if (line[next] != ';' && line[next] != '=' && line[next] != '{') {
        continue;
      }
      if (!SuppressedAt(text, i, "adhoc-timing")) {
        Report(path, i + 1, "adhoc-timing",
               "`double " + ident + "` field: " + kMessage);
      }
    }
  }

  void CheckNakedNew(const fs::path& path, const FileText& text) {
    for (size_t i = 0; i < text.code.size(); ++i) {
      const std::string& line = text.code[i];
      size_t pos = 0;
      if (!FindToken(line, "new", &pos)) continue;
      // `operator new` overloads manage allocation itself; not our target.
      const size_t before = line.find_last_not_of(" \t", pos == 0 ? 0 : pos - 1);
      if (before != std::string::npos && before >= 7 &&
          line.compare(before - 7, 8, "operator") == 0) {
        continue;
      }
      // Require something allocatable after `new` so lone words in macro
      // names or identifiers never slip through FindToken's boundaries.
      const size_t after = line.find_first_not_of(" \t", pos + 3);
      if (after == std::string::npos) continue;
      if (!IsWordChar(line[after]) && line[after] != '(') continue;
      if (!SuppressedAt(text, i, "naked-new")) {
        Report(path, i + 1, "naked-new",
               "naked `new`; use std::make_unique / std::make_shared");
      }
    }
  }

  fs::path root_;
  std::vector<Violation> violations_;
  size_t files_scanned_ = 0;
};

constexpr const char* kDefaultSubdirs[] = {"src", "tests", "bench", "tools",
                                           "examples"};

void ListRules() {
  std::cout
      << "include-guard    headers use DEEPJOIN_<PATH>_H_\n"
      << "using-namespace  no `using namespace` in headers\n"
      << "nondeterminism   no std::rand/srand/std::random_device/"
         "time(nullptr) outside src/util/rng.h\n"
      << "naked-new        no naked `new`\n"
      << "no-printf        no std::cout/printf in library code (src/**)\n"
      << "raw-mutex        no std::mutex/std::lock_guard/"
         "std::condition_variable etc. outside src/util/mutex.h\n"
      << "detached-thread  no std::thread::detach\n"
      << "raw-file-io      no std::fopen/std::ifstream/std::ofstream/"
         "std::fstream in src/** outside src/util/\n"
      << "simd-intrinsics  no SIMD intrinsics outside src/util/kernels.*\n"
      << "adhoc-timing     no WallTimer/TimeAccumulator or `double *_ms` "
         "fields in src/** headers outside src/util/\n"
      << "sleep-in-library no std::this_thread::sleep_for/sleep_until in "
         "library code (src/**)\n"
      << "raw-mmap         no mmap/munmap/<sys/mman.h> outside "
         "src/util/env.cc (use Env::NewMappedRegion)\n"
      << "untimed-wait-in-serve\n"
         "                 no untimed CondVar::Wait/ThreadPool::Wait in "
         "src/serve/ (use WaitFor with a deadline-derived bound)\n"
      << "suppress with    // dj_lint: allow(<rule>)\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "dj_lint: --root requires a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      ListRules();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dj_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      subdirs.push_back(arg);
    }
  }
  if (subdirs.empty()) {
    for (const char* d : kDefaultSubdirs) subdirs.push_back(d);
  }

  Linter linter(root);
  bool scanned_any = false;
  for (const std::string& sub : subdirs) {
    const fs::path dir = root / sub;
    if (!fs::is_directory(dir)) continue;
    scanned_any = true;
    linter.LintTree(dir);
  }
  if (!scanned_any) {
    std::cerr << "dj_lint: nothing to scan under " << root << "\n";
    return 2;
  }

  for (const Violation& v : linter.violations()) {
    std::cout << v.file << ":" << v.line << ": error: [" << v.rule << "] "
              << v.message << "\n";
  }
  if (linter.violations().empty()) {
    std::cout << "dj_lint: clean (" << linter.files_scanned()
              << " files scanned)\n";
    return 0;
  }
  std::cout << "dj_lint: " << linter.violations().size()
            << " violation(s) in " << linter.files_scanned()
            << " files scanned\n";
  return 1;
}
