// encoder_probe: deterministic PLM-encoder output dump, for diffing the
// kernel dispatch tiers. Builds both encoder kinds (DistilSim, MPNetSim)
// over a fixed synthetic lake, encodes a fixed set of columns through the
// inference fast path, and prints every embedding value as a C99 hex float
// (%a — exact, round-trippable).
//
// tools/check.sh runs the probe twice — once per kernel tier (the second
// run under DJ_FORCE_SCALAR_KERNELS=1) — and compares:
//   encoder_probe --out /tmp/avx2.txt
//   DJ_FORCE_SCALAR_KERNELS=1 encoder_probe --compare /tmp/avx2.txt --tol 1e-4
// Within one tier the dump is bit-stable (tol 0 compares exactly); across
// tiers low-order bits differ by design (util/kernels.h), so the
// cross-tier diff takes a tolerance.
//
// Exit code: 0 on success/match, 1 on mismatch, 2 on usage or I/O error.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/encoders.h"
#include "lake/generator.h"
#include "util/kernels.h"

namespace deepjoin {
namespace {

constexpr int kNumColumns = 24;
constexpr u64 kLakeSeed = 606;

struct ProbeValue {
  std::string key;  // "<kind>/<column>/<dim_index>"
  float value = 0.0f;
};

std::vector<ProbeValue> RunProbe() {
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(kLakeSeed));
  const std::vector<lake::Column> sample = gen.GenerateQueries(60, 0x11);
  FastTextConfig fc;
  fc.dim = 16;
  const FastTextEmbedder embedder(fc);

  std::vector<ProbeValue> out;
  for (core::PlmKind kind :
       {core::PlmKind::kDistilSim, core::PlmKind::kMPNetSim}) {
    core::PlmEncoderConfig cfg;
    cfg.kind = kind;
    core::PlmColumnEncoder enc(cfg, sample, embedder);
    const char* kind_name =
        kind == core::PlmKind::kDistilSim ? "distil" : "mpnet";
    std::vector<float> v(static_cast<size_t>(enc.dim()));
    for (int c = 0; c < kNumColumns; ++c) {
      enc.EncodeInto(sample[static_cast<size_t>(c)], v.data());
      for (int d = 0; d < enc.dim(); ++d) {
        std::ostringstream key;
        key << kind_name << "/" << c << "/" << d;
        out.push_back({key.str(), v[static_cast<size_t>(d)]});
      }
    }
  }
  return out;
}

void Dump(const std::vector<ProbeValue>& values, std::ostream& os) {
  os << "# encoder_probe tier=" << kern::TierName(kern::ActiveTier()) << "\n";
  char buf[64];
  for (const auto& pv : values) {
    std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(pv.value));
    os << pv.key << " " << buf << "\n";
  }
}

int Compare(const std::vector<ProbeValue>& values, const std::string& path,
            double tol) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "encoder_probe: cannot open " << path << "\n";
    return 2;
  }
  size_t idx = 0, mismatches = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      std::cerr << "encoder_probe: malformed line: " << line << "\n";
      return 2;
    }
    if (idx >= values.size()) {
      std::cerr << "encoder_probe: reference has more values than probe\n";
      return 1;
    }
    const std::string key = line.substr(0, space);
    const float ref = std::strtof(line.c_str() + space + 1, nullptr);
    const ProbeValue& got = values[idx++];
    if (key != got.key) {
      std::cerr << "encoder_probe: key mismatch at #" << idx << ": probe `"
                << got.key << "` vs reference `" << key << "`\n";
      return 1;
    }
    const bool ok = (tol == 0.0)
                        ? std::memcmp(&ref, &got.value, sizeof(float)) == 0
                        : std::abs(static_cast<double>(ref) - got.value) <= tol;
    if (!ok && ++mismatches <= 10) {
      std::cerr << "encoder_probe: " << key << ": probe " << got.value
                << " vs reference " << ref << "\n";
    }
  }
  if (idx != values.size()) {
    std::cerr << "encoder_probe: reference has fewer values (" << idx
              << ") than probe (" << values.size() << ")\n";
    return 1;
  }
  if (mismatches > 0) {
    std::cerr << "encoder_probe: " << mismatches << " of " << values.size()
              << " values differ beyond tol=" << tol << "\n";
    return 1;
  }
  std::cout << "encoder_probe: " << values.size() << " values match (tol="
            << tol << ", tier=" << kern::TierName(kern::ActiveTier())
            << ")\n";
  return 0;
}

}  // namespace
}  // namespace deepjoin

int main(int argc, char** argv) {
  std::string out_path, compare_path;
  double tol = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--compare" && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (arg == "--tol" && i + 1 < argc) {
      tol = std::strtod(argv[++i], nullptr);
    } else {
      std::cerr << "usage: encoder_probe [--out FILE] [--compare FILE "
                   "[--tol X]]\n";
      return 2;
    }
  }

  const auto values = deepjoin::RunProbe();
  if (!compare_path.empty()) {
    return deepjoin::Compare(values, compare_path, tol);
  }
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "encoder_probe: cannot write " << out_path << "\n";
      return 2;
    }
    deepjoin::Dump(values, os);
    std::cout << "encoder_probe: wrote " << values.size() << " values to "
              << out_path << " (tier="
              << deepjoin::kern::TierName(deepjoin::kern::ActiveTier())
              << ")\n";
    return 0;
  }
  deepjoin::Dump(values, std::cout);
  return 0;
}
