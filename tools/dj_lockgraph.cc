// dj_lockgraph: dumps the OBSERVED lock-order graph (DESIGN.md §10) after
// driving a small deterministic workload across the tree's concurrent
// layers — ThreadPool Submit/Wait and ParallelFor (threadpool.queue,
// threadpool.batch, metrics.registry), and an HNSW build + concurrent
// searches (hnsw.visited_pool). Every acquired-while-holding edge those
// paths take at runtime lands in lock_rank::LockOrderGraph::Global(), and
// this tool prints it.
//
//   dj_lockgraph [--format=json|dot]
//
// In a build without DJ_LOCK_RANK the hooks are compiled out, so the graph
// is empty; the tool says so on stderr and still emits the (empty) dump so
// scripted pipelines keep working. tools/dj_deadlock derives the same
// graph statically — comparing the two dumps shows which static edges the
// workload actually exercised.
#include <cstdio>
#include <string>
#include <vector>

#include "ann/hnsw.h"
#include "util/lock_rank.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace deepjoin;

namespace {

/// Submit/Wait, nested ParallelFor, and HNSW build + concurrent searches:
/// one pass through every named lock in the rank table that a unit-sized
/// workload can reach.
void RunWorkload() {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] {});
  }
  pool.Wait();
  std::vector<double> sums(64, 0.0);
  pool.ParallelFor(sums.size(), [&](size_t i) { sums[i] = double(i) * i; });

  constexpr int kDim = 16;
  constexpr size_t kVectors = 200;
  ann::HnswConfig hc;
  hc.dim = kDim;
  hc.M = 8;
  hc.ef_construction = 32;
  hc.ef_search = 16;
  ann::HnswIndex index(hc);
  Rng rng(7);
  std::vector<float> data(kVectors * kDim);
  for (float& v : data) {
    v = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  }
  for (size_t i = 0; i < kVectors; ++i) {
    index.Add(&data[i * kDim]);
  }
  pool.ParallelFor(16, [&](size_t i) {
    (void)index.Search(&data[(i % kVectors) * kDim], 5, ann::AnnSearchParams{});
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else {
      std::fprintf(stderr, "dj_lockgraph: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (format != "json" && format != "dot") {
    std::fprintf(stderr, "dj_lockgraph: unknown --format=%s\n",
                 format.c_str());
    return 2;
  }

  if (!lock_rank::Enabled()) {
    std::fprintf(stderr,
                 "dj_lockgraph: built without DJ_LOCK_RANK; the hooks are "
                 "compiled out and the observed graph is empty. Configure "
                 "with -DDJ_LOCK_RANK=ON (default in Debug) for real "
                 "edges.\n");
  }

  RunWorkload();
  lock_rank::PublishMetrics();

  const auto& graph = lock_rank::LockOrderGraph::Global();
  std::fprintf(stderr, "dj_lockgraph: %zu nodes, %zu edges observed\n",
               graph.node_count(), graph.edge_count());
  const std::string dump =
      format == "json" ? graph.ToJson() : graph.ToDot();
  std::printf("%s\n", dump.c_str());
  return 0;
}
