// dj_loadgen: open-loop load generator for the serving layer (DESIGN.md
// §13). Builds a flat-backend searcher over a synthetic lake, measures the
// closed-loop single-query baseline, then drives a QueryService at a sweep
// of offered rates with Poisson (exponential inter-arrival) admissions —
// open loop: arrivals do not wait for completions, so queueing pressure is
// real — and reports p50/p95/p99 latency, throughput, goodput, rejects and
// expiries per rate, as JSON (BENCH_serve.json via tools/bench_snapshot.sh).
//
//   dj_loadgen [--repo=N] [--dim=D] [--k=N] [--secs=S]
//              [--rates=0.3,1,2,4,8]      (multiples of baseline capacity)
//              [--max-batch=N] [--max-queue=N] [--max-wait-ms=MS]
//              [--deadline-ms=MS]         (0 = no per-request deadline)
//              [--out=PATH] [--metrics]
//
// The headline derived figures:
//   saturation_speedup  = best sweep goodput / single-query throughput
//                         (the batched-scan amortisation; >= 3x on a
//                         corpus larger than cache),
//   low_rate_p99_ratio  = p99 at the lowest offered rate / single-query
//                         latency (the batching latency tax; <= 2x).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/searcher.h"
#include "lake/generator.h"
#include "serve/query_service.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace deepjoin;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct SweepResult {
  double rate_multiplier = 0;
  double offered_qps = 0;
  size_t offered = 0;
  size_t completed = 0;
  size_t rejected = 0;
  size_t expired = 0;
  double duration_s = 0;
  double goodput_qps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

double Percentile(std::vector<double>* sorted_into, double p) {
  if (sorted_into->empty()) return 0;
  std::sort(sorted_into->begin(), sorted_into->end());
  const double idx = p * static_cast<double>(sorted_into->size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted_into->size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (*sorted_into)[lo] * (1 - frac) + (*sorted_into)[hi] * frac;
}

/// Shared completion-side state. The callback runs on the dispatcher
/// thread; the arrival loop runs on main — one short-lived lock covers
/// the freelist and the tallies.
struct Harness {
  Mutex mu;  // tool-local, short-lived: unranked by design
  std::vector<size_t> free_slots;
  std::vector<double> ok_latency_ms;
  size_t completed = 0;
  size_t expired = 0;
};

struct ClientReq {
  serve::Request req;
  Harness* harness = nullptr;
  Clock::time_point submit_tp{};
  size_t slot = 0;
};

void OnDone(serve::Request* r) {
  auto* const cr = static_cast<ClientReq*>(r->ctx);
  const double ms = MsSince(cr->submit_tp, Clock::now());
  Harness* const h = cr->harness;
  MutexLock lock(h->mu);
  if (r->status.ok()) {
    h->ok_latency_ms.push_back(ms);
  } else {
    ++h->expired;  // only DeadlineExceeded flows through completions here
  }
  ++h->completed;
  h->free_slots.push_back(cr->slot);
}

SweepResult RunOpenLoop(core::EmbeddingSearcher* searcher,
                        const std::vector<lake::Column>& queries, size_t k,
                        const serve::BatcherConfig& bc, double offered_qps,
                        double secs, double deadline_ms, Rng* rng) {
  serve::QueryServiceConfig qc;
  qc.batcher = bc;
  serve::QueryService service(searcher, qc);
  service.Start();

  const size_t pool_size = bc.max_queue + bc.max_batch + 64;
  std::vector<ClientReq> reqs(pool_size);
  Harness harness;
  {
    MutexLock lock(harness.mu);
    for (size_t i = 0; i < pool_size; ++i) harness.free_slots.push_back(i);
    harness.ok_latency_ms.reserve(
        static_cast<size_t>(offered_qps * secs) + 16);
  }

  SweepResult res;
  res.offered_qps = offered_qps;
  const auto start = Clock::now();
  const auto end = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(secs));
  auto next_arrival = start;
  size_t qi = 0;
  while (next_arrival < end) {
    std::this_thread::sleep_until(next_arrival);
    const auto now = Clock::now();
    // Open loop: submit every arrival that is due, even if the scheduler
    // woke us late — lateness becomes queueing, not a slower arrival
    // process.
    while (next_arrival <= now && next_arrival < end) {
      ++res.offered;
      size_t slot = pool_size;  // sentinel: none free
      {
        MutexLock lock(harness.mu);
        if (!harness.free_slots.empty()) {
          slot = harness.free_slots.back();
          harness.free_slots.pop_back();
        }
      }
      if (slot == pool_size) {
        // More in flight than queue+batch can hold: admission would have
        // rejected it anyway.
        ++res.rejected;
      } else {
        ClientReq& cr = reqs[slot];
        cr.harness = &harness;
        cr.slot = slot;
        cr.submit_tp = Clock::now();
        cr.req.query = &queries[qi++ % queries.size()];
        cr.req.options = {.k = k, .collect_stats = false};
        cr.req.deadline = deadline_ms > 0
                              ? serve::Deadline::AfterMillis(deadline_ms)
                              : serve::Deadline::Infinite();
        cr.req.done = &OnDone;
        cr.req.ctx = &cr;
        const Status st = service.Submit(&cr.req);
        if (!st.ok()) {
          ++res.rejected;
          MutexLock lock(harness.mu);
          harness.free_slots.push_back(slot);
        }
      }
      next_arrival += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(rng->Exponential(offered_qps)));
    }
  }
  // Drain: every admitted request completes (executed or expired).
  service.Stop();
  res.duration_s = std::chrono::duration<double>(Clock::now() - start).count();

  MutexLock lock(harness.mu);
  res.completed = harness.ok_latency_ms.size();
  res.expired = harness.expired;
  res.goodput_qps = static_cast<double>(res.completed) / res.duration_s;
  res.p50_ms = Percentile(&harness.ok_latency_ms, 0.50);
  res.p95_ms = Percentile(&harness.ok_latency_ms, 0.95);
  res.p99_ms = Percentile(&harness.ok_latency_ms, 0.99);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.Parse(argc, argv);
  const size_t repo_size = static_cast<size_t>(flags.GetInt("repo", 4000));
  const int dim = flags.GetInt("dim", 64);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  const double secs = flags.GetDouble("secs", 2.0);
  const std::string rates_csv = flags.GetString("rates", "0.3,1,2,4,8");
  const double deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  const std::string out_path = flags.GetString("out", "");
  const bool dump_metrics = flags.GetBool("metrics", false);

  serve::BatcherConfig bc;
  bc.max_batch = static_cast<size_t>(flags.GetInt("max-batch", 64));
  bc.max_queue = static_cast<size_t>(flags.GetInt("max-queue", 256));
  bc.max_wait_ms = flags.GetDouble("max-wait-ms", 1.0);

  std::vector<double> rate_multipliers;
  for (size_t pos = 0; pos < rates_csv.size();) {
    size_t comma = rates_csv.find(',', pos);
    if (comma == std::string::npos) comma = rates_csv.size();
    rate_multipliers.push_back(std::stod(rates_csv.substr(pos, comma - pos)));
    pos = comma + 1;
  }

  // ---- Corpus: flat backend, dimensioned so the corpus outsizes cache at
  // bench scale (repo * dim * 4 bytes). Single-query scans are then
  // memory-bound while batched scans stay compute-bound — the regime the
  // batcher exists for. ----
  std::fprintf(stderr, "dj_loadgen: building corpus (%zu cols, dim %d)...\n",
               repo_size, dim);
  lake::LakeGenerator gen(lake::LakeConfig::Webtable(4242));
  lake::Repository repo = gen.GenerateRepository(repo_size);
  auto queries = gen.GenerateQueries(256, 0x57A7);
  FastTextConfig fc;
  fc.dim = dim;
  FastTextEmbedder embedder(fc);
  embedder.TrainSynonyms(gen.SynonymLexicon(), 0.8, 2);
  core::FastTextColumnEncoder encoder(&embedder, core::TransformConfig{});
  core::SearcherConfig sc;
  sc.backend = core::AnnBackend::kFlat;
  core::EmbeddingSearcher searcher(&encoder, sc);
  {
    ThreadPool pool(2);
    if (auto st = searcher.BuildIndex(repo, &pool); !st.ok()) {
      std::fprintf(stderr, "dj_loadgen: BuildIndex failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  // ---- Closed-loop single-query baseline ----
  core::SearchOptions so{.k = k, .collect_stats = false};
  for (int i = 0; i < 3; ++i) {
    (void)searcher.Search(queries[i % queries.size()], so);  // warmup
  }
  WallTimer baseline;
  size_t baseline_n = 0;
  while (baseline_n < 64 && baseline.ElapsedSeconds() < 1.5) {
    (void)searcher.Search(queries[baseline_n % queries.size()], so);
    ++baseline_n;
  }
  const double single_ms =
      baseline.ElapsedMillis() / static_cast<double>(baseline_n);
  const double single_qps = 1000.0 / single_ms;
  std::fprintf(stderr,
               "dj_loadgen: baseline %.3f ms/query (%.1f qps, %zu samples)\n",
               single_ms, single_qps, baseline_n);

  // ---- Offered-rate sweep ----
  Rng rng(0xC0FFEE);
  std::vector<SweepResult> sweep;
  for (const double m : rate_multipliers) {
    SweepResult r = RunOpenLoop(&searcher, queries, k, bc, m * single_qps,
                                secs, deadline_ms, &rng);
    r.rate_multiplier = m;
    std::fprintf(stderr,
                 "dj_loadgen: rate %.2fx (%.1f qps): offered %zu, ok %zu, "
                 "rejected %zu, expired %zu, goodput %.1f qps, "
                 "p50/p95/p99 %.2f/%.2f/%.2f ms\n",
                 m, r.offered_qps, r.offered, r.completed, r.rejected,
                 r.expired, r.goodput_qps, r.p50_ms, r.p95_ms, r.p99_ms);
    sweep.push_back(r);
  }

  double best_goodput = 0;
  for (const auto& r : sweep) best_goodput = std::max(best_goodput, r.goodput_qps);
  const double saturation_speedup = best_goodput / single_qps;
  const double low_rate_p99_ratio =
      sweep.empty() || single_ms <= 0 ? 0 : sweep.front().p99_ms / single_ms;

  std::string json;
  char buf[512];
  auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    json += buf;
  };
  json += "{\n";
  add("  \"corpus\": {\"columns\": %zu, \"dim\": %d, \"bytes\": %zu},\n",
      repo_size, dim, repo_size * static_cast<size_t>(dim) * sizeof(float));
  add("  \"config\": {\"k\": %zu, \"max_batch\": %zu, \"max_queue\": %zu, "
      "\"max_wait_ms\": %.3f, \"deadline_ms\": %.3f, \"secs\": %.3f},\n",
      k, bc.max_batch, bc.max_queue, bc.max_wait_ms, deadline_ms, secs);
  add("  \"single_query\": {\"mean_ms\": %.4f, \"qps\": %.2f, "
      "\"samples\": %zu},\n",
      single_ms, single_qps, baseline_n);
  json += "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& r = sweep[i];
    add("    {\"rate_multiplier\": %.2f, \"offered_qps\": %.2f, "
        "\"offered\": %zu, \"completed\": %zu, \"rejected\": %zu, "
        "\"expired\": %zu, \"duration_s\": %.3f, \"goodput_qps\": %.2f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
        r.rate_multiplier, r.offered_qps, r.offered, r.completed, r.rejected,
        r.expired, r.duration_s, r.goodput_qps, r.p50_ms, r.p95_ms, r.p99_ms,
        i + 1 < sweep.size() ? "," : "");
  }
  json += "  ],\n";
  add("  \"saturation_speedup\": %.3f,\n", saturation_speedup);
  add("  \"low_rate_p99_ratio\": %.3f", low_rate_p99_ratio);
  if (dump_metrics) {
    json += ",\n  \"metrics\": ";
    json += metrics::MetricsRegistry::Global().Snapshot().ToJson();
  }
  json += "\n}\n";

  if (out_path.empty()) {
    std::printf("%s", json.c_str());
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "dj_loadgen: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  std::fprintf(stderr,
               "dj_loadgen: saturation_speedup %.2fx, low_rate_p99_ratio "
               "%.2fx\n",
               saturation_speedup, low_rate_p99_ratio);
  return 0;
}
