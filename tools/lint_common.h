// Shared token-scanner core for the project's source-level checkers
// (dj_lint, dj_deadlock). Standard-library only — the checkers must keep
// building (and stay trustworthy) even when the library tree is broken, so
// nothing here may include src/ headers.
//
// The model is deliberately lexical, not syntactic: files are split into
// lines, comment bodies and string/char-literal contents are blanked with
// spaces (preserving line/column structure), and rules search for tokens
// with word boundaries. That is exactly enough for the project's rule set
// and keeps every checker fast (the whole tree scans in well under a
// second) and dependency-free.
#ifndef DEEPJOIN_TOOLS_LINT_COMMON_H_
#define DEEPJOIN_TOOLS_LINT_COMMON_H_

#include <filesystem>
#include <istream>
#include <string>
#include <vector>

namespace lintc {

/// A file as two parallel line vectors: the original text (for suppression
/// comments, which live in comments) and a copy with comment/string
/// contents blanked (for token searches).
struct FileText {
  std::vector<std::string> raw;   // original lines (for suppressions)
  std::vector<std::string> code;  // comments/strings blanked with spaces
};

bool IsWordChar(char c);

/// Produces a copy of the file where comment bodies and string/char literal
/// contents are replaced by spaces, so token searches cannot match prose
/// like "no new candidates" in a comment. Line structure is preserved.
/// Raw strings R"(...)" are handled only in their single-line form — the
/// repo has no multi-line raw strings (and a missed close falls back to
/// plain-literal scanning for the rest of the line).
FileText StripCommentsAndStrings(std::istream& in);

/// True when `needle` occurs in `hay` with non-word characters (or the
/// boundary of the line) on both sides. `pos_out` receives the match
/// offset. Needles ending in punctuation like '(' already carry their own
/// right boundary; only word-char-final needles get the right-side check.
bool FindToken(const std::string& hay, const std::string& needle,
               size_t* pos_out);

/// True when line `line_idx` (0-based) or the line directly above carries
/// `// <tool>: allow(<rule>)`. Each checker passes its own name as `tool`
/// so a dj_lint suppression never silences dj_deadlock or vice versa.
bool SuppressedAt(const FileText& text, size_t line_idx,
                  const std::string& tool, const std::string& rule);

/// Every .h/.cc/.cpp under `dir` in sorted order, skipping fixture
/// directories named "testdata" and build trees (directories whose name
/// starts with "build") so deliberate violations in fixtures never fail a
/// tree-wide run.
std::vector<std::filesystem::path> CollectSourceFiles(
    const std::filesystem::path& dir);

}  // namespace lintc

#endif  // DEEPJOIN_TOOLS_LINT_COMMON_H_
