// Shared token-scanner core for the project's source-level checkers
// (dj_lint, dj_deadlock). Standard-library only — the checkers must keep
// building (and stay trustworthy) even when the library tree is broken, so
// nothing here may include src/ headers.
//
// The model is deliberately lexical, not syntactic: files are split into
// lines, comment bodies and string/char-literal contents are blanked with
// spaces (preserving line/column structure), and rules search for tokens
// with word boundaries. That is exactly enough for the project's rule set
// and keeps every checker fast (the whole tree scans in well under a
// second) and dependency-free.
#ifndef DEEPJOIN_TOOLS_LINT_COMMON_H_
#define DEEPJOIN_TOOLS_LINT_COMMON_H_

#include <cstddef>
#include <filesystem>
#include <istream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace lintc {

/// A file as two parallel line vectors: the original text (for suppression
/// comments, which live in comments) and a copy with comment/string
/// contents blanked (for token searches).
struct FileText {
  std::vector<std::string> raw;   // original lines (for suppressions)
  std::vector<std::string> code;  // comments/strings blanked with spaces
};

bool IsWordChar(char c);

/// Produces a copy of the file where comment bodies and string/char literal
/// contents are replaced by spaces, so token searches cannot match prose
/// like "no new candidates" in a comment. Line structure is preserved.
/// Raw strings R"(...)" are handled only in their single-line form — the
/// repo has no multi-line raw strings (and a missed close falls back to
/// plain-literal scanning for the rest of the line).
FileText StripCommentsAndStrings(std::istream& in);

/// True when `needle` occurs in `hay` with non-word characters (or the
/// boundary of the line) on both sides. `pos_out` receives the match
/// offset. Needles ending in punctuation like '(' already carry their own
/// right boundary; only word-char-final needles get the right-side check.
bool FindToken(const std::string& hay, const std::string& needle,
               size_t* pos_out);

/// True when line `line_idx` (0-based) or the line directly above carries
/// `// <tool>: allow(<rule>)`. Each checker passes its own name as `tool`
/// so a dj_lint suppression never silences dj_deadlock or vice versa.
bool SuppressedAt(const FileText& text, size_t line_idx,
                  const std::string& tool, const std::string& rule);

/// Every .h/.cc/.cpp under `dir` in sorted order, skipping fixture
/// directories named "testdata" and build trees (directories whose name
/// starts with "build") so deliberate violations in fixtures never fail a
/// tree-wide run.
std::vector<std::filesystem::path> CollectSourceFiles(
    const std::filesystem::path& dir);

// ---- token stream (shared by the cross-TU passes) ----

struct Tok {
  enum Kind { kIdent, kNumber, kString, kPunct } kind = kPunct;
  std::string text;  // for kString: the literal's contents (from raw)
  size_t line = 0;   // 1-based
};

/// Lexes the blanked code lines into tokens, reading string contents back
/// out of the raw lines (blanking preserves columns, so the quotes in the
/// code line bracket the original contents in the raw line). Preprocessor
/// lines (and their backslash continuations) are dropped entirely.
std::vector<Tok> Lex(const FileText& text);

/// True for the project's function-head annotation macros (DJ_REQUIRES,
/// DJ_NOALLOC, …): excluded when hunting for the function name in a head.
bool IsAnnotationMacro(const std::string& s);

/// Extracts the function name from head tokens (everything since the last
/// statement boundary): the last identifier directly before a
/// top-paren-level '(' — annotation macros excluded, constructor
/// initializer lists cut off. `name_idx` (if non-null) receives the index
/// of the name token in `head`, so callers can inspect qualifiers like
/// `Class ::` to its left.
std::string HeadFunctionName(const std::vector<Tok>& head,
                             size_t* name_idx = nullptr);

// ---- call-graph fixpoints (shared by dj_deadlock / dj_alloc) ----

/// Caller name -> callee names, in call order. The passes key functions by
/// name (dj_deadlock unqualified, dj_alloc class-qualified) and merge on
/// collision; both feed this shape to the fixpoints below.
using CallGraph = std::map<std::string, std::vector<std::string>>;

/// Transitive set-union fixpoint: every function's set grows by its
/// callees' sets until stable. `direct` seeds each function (e.g. the
/// locks it acquires directly); the result adds everything reachable.
std::map<std::string, std::set<std::string>> ReachableSets(
    const CallGraph& calls, std::map<std::string, std::set<std::string>> direct);

/// Transitive may-reach fixpoint with witness chains: `direct` maps a
/// function to the label of an event in its own body (e.g. "malloc()" or
/// "new Foo"); the result maps every function that can reach an event to a
/// chain "g() -> h() -> <event>" naming the first witness path found
/// (first in call order, so output is deterministic).
std::map<std::string, std::string> ReachWitness(
    const CallGraph& calls, const std::map<std::string, std::string>& direct);

// ---- violation reporting (shared output format) ----

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// Sorts by file then line, prints `file:line: error: [rule] message`
/// lines followed by the `<tool>: clean (N files scanned)` / violation
/// count summary, and returns the process exit code (0 clean, 1 not).
int PrintReport(const std::string& tool,
                const std::vector<Violation>& violations,
                size_t files_scanned);

}  // namespace lintc

#endif  // DEEPJOIN_TOOLS_LINT_COMMON_H_
