#include "lint_common.h"

#include <algorithm>

namespace lintc {

namespace fs = std::filesystem;

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

FileText StripCommentsAndStrings(std::istream& in) {
  FileText out;
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    out.raw.push_back(line);
    std::string code = line;
    size_t i = 0;
    while (i < code.size()) {
      if (in_block_comment) {
        if (code[i] == '*' && i + 1 < code.size() && code[i + 1] == '/') {
          code[i] = code[i + 1] = ' ';
          i += 2;
          in_block_comment = false;
        } else {
          code[i++] = ' ';
        }
        continue;
      }
      const char c = code[i];
      if (c == '/' && i + 1 < code.size() && code[i + 1] == '/') {
        for (size_t j = i; j < code.size(); ++j) code[j] = ' ';
        break;
      }
      if (c == '/' && i + 1 < code.size() && code[i + 1] == '*') {
        code[i] = code[i + 1] = ' ';
        i += 2;
        in_block_comment = true;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        size_t j = i + 1;
        while (j < code.size()) {
          if (code[j] == '\\' && j + 1 < code.size()) {
            code[j] = code[j + 1] = ' ';
            j += 2;
            continue;
          }
          if (code[j] == quote) break;
          code[j] = ' ';
          ++j;
        }
        i = (j < code.size()) ? j + 1 : j;
        continue;
      }
      ++i;
    }
    out.code.push_back(std::move(code));
  }
  return out;
}

bool FindToken(const std::string& hay, const std::string& needle,
               size_t* pos_out) {
  size_t from = 0;
  while (true) {
    const size_t p = hay.find(needle, from);
    if (p == std::string::npos) return false;
    const bool left_ok = p == 0 || !IsWordChar(hay[p - 1]);
    const size_t end = p + needle.size();
    const bool needle_ends_word = IsWordChar(needle.back());
    const bool right_ok =
        !needle_ends_word || end >= hay.size() || !IsWordChar(hay[end]);
    if (left_ok && right_ok) {
      *pos_out = p;
      return true;
    }
    from = p + 1;
  }
}

bool SuppressedAt(const FileText& text, size_t line_idx,
                  const std::string& tool, const std::string& rule) {
  const std::string needle = tool + ": allow(" + rule + ")";
  if (text.raw[line_idx].find(needle) != std::string::npos) return true;
  if (line_idx > 0 &&
      text.raw[line_idx - 1].find(needle) != std::string::npos) {
    return true;
  }
  return false;
}

std::vector<fs::path> CollectSourceFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(dir);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory()) {
      const std::string name = it->path().filename().string();
      if (name == "testdata" || name.rfind("build", 0) == 0) {
        it.disable_recursion_pending();
      }
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace lintc
