#include "lint_common.h"

#include <algorithm>
#include <iostream>
#include <numeric>

namespace lintc {

namespace fs = std::filesystem;

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

FileText StripCommentsAndStrings(std::istream& in) {
  FileText out;
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    out.raw.push_back(line);
    std::string code = line;
    size_t i = 0;
    while (i < code.size()) {
      if (in_block_comment) {
        if (code[i] == '*' && i + 1 < code.size() && code[i + 1] == '/') {
          code[i] = code[i + 1] = ' ';
          i += 2;
          in_block_comment = false;
        } else {
          code[i++] = ' ';
        }
        continue;
      }
      const char c = code[i];
      if (c == '/' && i + 1 < code.size() && code[i + 1] == '/') {
        for (size_t j = i; j < code.size(); ++j) code[j] = ' ';
        break;
      }
      if (c == '/' && i + 1 < code.size() && code[i + 1] == '*') {
        code[i] = code[i + 1] = ' ';
        i += 2;
        in_block_comment = true;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        size_t j = i + 1;
        while (j < code.size()) {
          if (code[j] == '\\' && j + 1 < code.size()) {
            code[j] = code[j + 1] = ' ';
            j += 2;
            continue;
          }
          if (code[j] == quote) break;
          code[j] = ' ';
          ++j;
        }
        i = (j < code.size()) ? j + 1 : j;
        continue;
      }
      ++i;
    }
    out.code.push_back(std::move(code));
  }
  return out;
}

bool FindToken(const std::string& hay, const std::string& needle,
               size_t* pos_out) {
  size_t from = 0;
  while (true) {
    const size_t p = hay.find(needle, from);
    if (p == std::string::npos) return false;
    const bool left_ok = p == 0 || !IsWordChar(hay[p - 1]);
    const size_t end = p + needle.size();
    const bool needle_ends_word = IsWordChar(needle.back());
    const bool right_ok =
        !needle_ends_word || end >= hay.size() || !IsWordChar(hay[end]);
    if (left_ok && right_ok) {
      *pos_out = p;
      return true;
    }
    from = p + 1;
  }
}

bool SuppressedAt(const FileText& text, size_t line_idx,
                  const std::string& tool, const std::string& rule) {
  const std::string needle = tool + ": allow(" + rule + ")";
  if (text.raw[line_idx].find(needle) != std::string::npos) return true;
  if (line_idx > 0 &&
      text.raw[line_idx - 1].find(needle) != std::string::npos) {
    return true;
  }
  return false;
}

std::vector<fs::path> CollectSourceFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  for (auto it = fs::recursive_directory_iterator(dir);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory()) {
      const std::string name = it->path().filename().string();
      if (name == "testdata" || name.rfind("build", 0) == 0) {
        it.disable_recursion_pending();
      }
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Tok> Lex(const FileText& text) {
  std::vector<Tok> toks;
  bool in_continuation = false;
  for (size_t li = 0; li < text.code.size(); ++li) {
    const std::string& code = text.code[li];
    const std::string& raw = text.raw[li];
    const size_t first = code.find_first_not_of(" \t");
    const bool directive =
        !in_continuation && first != std::string::npos && code[first] == '#';
    const bool continues = !code.empty() && code.back() == '\\';
    if (directive || in_continuation) {
      in_continuation = continues;
      continue;
    }
    in_continuation = false;
    size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (IsWordChar(c)) {
        size_t j = i;
        while (j < code.size() && IsWordChar(code[j])) ++j;
        Tok t;
        t.kind = (c >= '0' && c <= '9') ? Tok::kNumber : Tok::kIdent;
        t.text = code.substr(i, j - i);
        t.line = li + 1;
        toks.push_back(std::move(t));
        i = j;
        continue;
      }
      if (c == '"') {
        size_t j = i + 1;
        while (j < code.size() && code[j] != '"') ++j;
        Tok t;
        t.kind = Tok::kString;
        t.text = (j < raw.size()) ? raw.substr(i + 1, j - i - 1) : "";
        t.line = li + 1;
        toks.push_back(std::move(t));
        i = (j < code.size()) ? j + 1 : j;
        continue;
      }
      if (c == '\'') {  // char literal (contents blanked); skip to close
        size_t j = i + 1;
        while (j < code.size() && code[j] != '\'') ++j;
        i = (j < code.size()) ? j + 1 : j;
        continue;
      }
      Tok t;
      t.kind = Tok::kPunct;
      t.text = std::string(1, c);
      t.line = li + 1;
      toks.push_back(std::move(t));
      ++i;
    }
  }
  return toks;
}

bool IsAnnotationMacro(const std::string& s) {
  return s.rfind("DJ_", 0) == 0;
}

std::string HeadFunctionName(const std::vector<Tok>& head, size_t* name_idx) {
  int depth = 0;
  std::string name;
  for (size_t i = 0; i < head.size(); ++i) {
    const Tok& t = head[i];
    if (t.text == "(") {
      if (depth == 0 && i > 0 && head[i - 1].kind == Tok::kIdent &&
          !IsAnnotationMacro(head[i - 1].text)) {
        name = head[i - 1].text;
        if (name_idx != nullptr) *name_idx = i - 1;
      }
      ++depth;
    } else if (t.text == ")") {
      --depth;
    } else if (t.text == ":" && depth == 0 && i > 0 &&
               head[i - 1].text == ")" &&
               (i + 1 >= head.size() || head[i + 1].text != ":")) {
      break;  // constructor initializer list
    }
  }
  return name;
}

std::map<std::string, std::set<std::string>> ReachableSets(
    const CallGraph& calls,
    std::map<std::string, std::set<std::string>> direct) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, callees] : calls) {
      std::set<std::string>& mine = direct[name];
      for (const std::string& callee : callees) {
        auto it = direct.find(callee);
        if (it == direct.end() || &it->second == &mine) continue;
        for (const std::string& v : it->second) {
          if (mine.insert(v).second) changed = true;
        }
      }
    }
  }
  return direct;
}

std::map<std::string, std::string> ReachWitness(
    const CallGraph& calls, const std::map<std::string, std::string>& direct) {
  std::map<std::string, std::string> reach = direct;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, callees] : calls) {
      std::string& mine = reach[name];
      if (!mine.empty()) continue;
      for (const std::string& callee : callees) {
        auto it = reach.find(callee);
        if (it == reach.end() || it->second.empty() || callee == name) {
          continue;
        }
        mine = callee + "() -> " + it->second;
        changed = true;
        break;
      }
    }
  }
  return reach;
}

int PrintReport(const std::string& tool,
                const std::vector<Violation>& violations,
                size_t files_scanned) {
  std::vector<size_t> order(violations.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (violations[a].file != violations[b].file) {
      return violations[a].file < violations[b].file;
    }
    return violations[a].line < violations[b].line;
  });
  for (size_t i : order) {
    const Violation& v = violations[i];
    std::cout << v.file << ":" << v.line << ": error: [" << v.rule << "] "
              << v.message << "\n";
  }
  if (violations.empty()) {
    std::cout << tool << ": clean (" << files_scanned << " files scanned)\n";
    return 0;
  }
  std::cout << tool << ": " << violations.size() << " violation(s) in "
            << files_scanned << " files scanned\n";
  return 1;
}

}  // namespace lintc
