// Shared per-row forward arithmetic for the transformer ops. Both the
// autograd ops (nn/autograd.cc) and the allocation-free inference path
// (TransformerEncoder workspace forward in nn/transformer.cc) call these
// same inline functions, which is what makes the fast path bit-identical
// to the graph path: one definition, one operation order.
#ifndef DEEPJOIN_NN_ROW_OPS_H_
#define DEEPJOIN_NN_ROW_OPS_H_

#include <cmath>

namespace deepjoin {
namespace nn {

inline constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

/// Tanh-approximation GELU (BERT's variant).
inline float GeluValue(float v) {
  const float t = std::tanh(kGeluC * (v + 0.044715f * v * v * v));
  return 0.5f * v * (1.0f + t);
}

/// Numerically-stable softmax over one row of n scores; `mask`, if
/// non-null, is added to x first. In-place (x == out) is allowed: every
/// element is read before it is written.
inline void SoftmaxRow(const float* x, const float* mask, float* out,
                       int n) {
  float maxv = -1e30f;
  for (int j = 0; j < n; ++j) {
    const float v = x[j] + (mask ? mask[j] : 0.0f);
    out[j] = v;
    if (v > maxv) maxv = v;
  }
  double sum = 0.0;
  for (int j = 0; j < n; ++j) {
    out[j] = std::exp(out[j] - maxv);
    sum += out[j];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (int j = 0; j < n; ++j) out[j] *= inv;
}

/// LayerNorm over one row with learned gain/bias. Mean/variance accumulate
/// in double (the documented exception to float accumulation: n <= d_ff
/// and the backward pass depends on a well-conditioned inverse stddev).
/// Writes the normalized row to `xhat` when non-null (the backward pass
/// caches it) and returns the inverse stddev. In-place (x == out) is
/// allowed: per element, x[j] is read before out[j] is written.
inline float LayerNormRow(const float* x, int n, const float* gamma,
                          const float* beta, float eps, float* xhat,
                          float* out) {
  double mean = 0.0;
  for (int j = 0; j < n; ++j) mean += x[j];
  mean /= n;
  double var = 0.0;
  for (int j = 0; j < n; ++j) {
    const double d = x[j] - mean;
    var += d * d;
  }
  var /= n;
  const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
  const float fmean = static_cast<float>(mean);
  for (int j = 0; j < n; ++j) {
    const float h = (x[j] - fmean) * is;
    if (xhat != nullptr) xhat[j] = h;
    out[j] = gamma[j] * h + beta[j];
  }
  return is;
}

/// Relative-position bucket for score position (i, j) with clip radius R:
/// clamp(j - i + R, 0, buckets - 1) where buckets = 2R + 1.
inline int RelPosBucket(int i, int j, int radius, int buckets) {
  int b = j - i + radius;
  if (b < 0) b = 0;
  if (b >= buckets) b = buckets - 1;
  return b;
}

}  // namespace nn
}  // namespace deepjoin

#endif  // DEEPJOIN_NN_ROW_OPS_H_
