#include "nn/autograd.h"

#include <cmath>
#include <unordered_set>

#include "nn/row_ops.h"
#include "util/kernels.h"

namespace deepjoin {
namespace nn {

namespace {

thread_local int g_no_grad_depth = 0;

bool AnyRequiresGrad(const std::vector<VarPtr>& parents) {
  for (const auto& p : parents) {
    if (p->requires_grad()) return true;
  }
  return false;
}

/// Creates an op node wired to `parents` with the given backward closure.
VarPtr MakeOp(Matrix value, std::vector<VarPtr> parents,
              std::function<void(Var&)> backward) {
  if (g_no_grad_depth > 0) {
    return std::make_shared<Var>(std::move(value), false);
  }
  auto node = std::make_shared<Var>(std::move(value),
                                    AnyRequiresGrad(parents));
  node->parents = std::move(parents);
  if (node->requires_grad()) node->backward_fn = std::move(backward);
  return node;
}

}  // namespace

VarPtr MakeVar(Matrix value, bool requires_grad) {
  return std::make_shared<Var>(std::move(value), requires_grad);
}

NoGradGuard::NoGradGuard() { ++g_no_grad_depth; }
NoGradGuard::~NoGradGuard() { --g_no_grad_depth; }
bool InNoGradMode() { return g_no_grad_depth > 0; }

void Backward(const VarPtr& root) {
  DJ_CHECK(root->rows() == 1 && root->cols() == 1);
  // Iterative post-order DFS to get a topological order.
  std::vector<Var*> order;
  std::unordered_set<Var*> visited;
  std::vector<std::pair<Var*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Var* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad() && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  root->grad().Fill(1.0f);
  // `order` is post-order (children before parents-in-graph sense), so the
  // reverse iteration visits each node after all of its consumers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Var* node = *it;
    if (node->backward_fn && node->has_grad()) node->backward_fn(*node);
  }
}

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  DJ_CHECK(a->cols() == b->rows());
  Matrix out(a->rows(), b->cols());
  MatMulAccum(a->value(), b->value(), out);
  return MakeOp(std::move(out), {a, b}, [a, b](Var& self) {
    if (a->requires_grad()) MatMulNTAccum(self.grad(), b->value(), a->grad());
    if (b->requires_grad()) MatMulTNAccum(a->value(), self.grad(), b->grad());
  });
}

VarPtr MatMulNT(const VarPtr& a, const VarPtr& b) {
  DJ_CHECK(a->cols() == b->cols());
  Matrix out(a->rows(), b->rows());
  MatMulNTAccum(a->value(), b->value(), out);
  return MakeOp(std::move(out), {a, b}, [a, b](Var& self) {
    if (a->requires_grad()) MatMulAccum(self.grad(), b->value(), a->grad());
    if (b->requires_grad()) MatMulTNAccum(self.grad(), a->value(), b->grad());
  });
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  DJ_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Matrix out = a->value();
  b->value().AddTo(out);
  return MakeOp(std::move(out), {a, b}, [a, b](Var& self) {
    if (a->requires_grad()) self.grad().AddTo(a->grad());
    if (b->requires_grad()) self.grad().AddTo(b->grad());
  });
}

VarPtr AddRowVector(const VarPtr& a, const VarPtr& bias) {
  DJ_CHECK(bias->rows() == 1 && bias->cols() == a->cols());
  Matrix out = a->value();
  const float* brow = bias->value().row(0);
  const int n = out.cols();
  for (int r = 0; r < out.rows(); ++r) kern::Axpy(n, 1.0f, brow, out.row(r));
  return MakeOp(std::move(out), {a, bias}, [a, bias](Var& self) {
    if (a->requires_grad()) self.grad().AddTo(a->grad());
    if (bias->requires_grad()) {
      float* bg = bias->grad().row(0);
      for (int r = 0; r < self.rows(); ++r) {
        kern::Axpy(self.cols(), 1.0f, self.grad().row(r), bg);
      }
    }
  });
}

VarPtr Scale(const VarPtr& a, float c) {
  Matrix out = a->value();
  kern::ScaleAdd(static_cast<int>(out.size()), c, out.data(), 0.0f,
                 out.data());
  return MakeOp(std::move(out), {a}, [a, c](Var& self) {
    if (!a->requires_grad()) return;
    kern::Axpy(static_cast<int>(self.grad().size()), c, self.grad().data(),
               a->grad().data());
  });
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  DJ_CHECK(a->rows() == b->rows() && a->cols() == b->cols());
  Matrix out(a->rows(), a->cols());
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = a->value().data()[i] * b->value().data()[i];
  }
  return MakeOp(std::move(out), {a, b}, [a, b](Var& self) {
    const Matrix& g = self.grad();
    if (a->requires_grad()) {
      for (size_t i = 0; i < g.size(); ++i) {
        a->grad().data()[i] += g.data()[i] * b->value().data()[i];
      }
    }
    if (b->requires_grad()) {
      for (size_t i = 0; i < g.size(); ++i) {
        b->grad().data()[i] += g.data()[i] * a->value().data()[i];
      }
    }
  });
}

VarPtr RowSoftmax(const VarPtr& a, const Matrix* mask) {
  Matrix out(a->rows(), a->cols());
  const int n = a->cols();
  for (int r = 0; r < a->rows(); ++r) {
    SoftmaxRow(a->value().row(r), mask ? mask->row(r) : nullptr, out.row(r),
               n);
  }
  return MakeOp(std::move(out), {a}, [a](Var& self) {
    if (!a->requires_grad()) return;
    const int n = self.cols();
    for (int r = 0; r < self.rows(); ++r) {
      const float* y = self.value().row(r);
      const float* g = self.grad().row(r);
      float* ag = a->grad().row(r);
      double dot = 0.0;
      for (int j = 0; j < n; ++j) dot += static_cast<double>(g[j]) * y[j];
      for (int j = 0; j < n; ++j) {
        ag[j] += y[j] * (g[j] - static_cast<float>(dot));
      }
    }
  });
}

VarPtr LayerNormRows(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                     float eps) {
  const int n = x->cols();
  DJ_CHECK(gamma->rows() == 1 && gamma->cols() == n);
  DJ_CHECK(beta->rows() == 1 && beta->cols() == n);
  Matrix out(x->rows(), n);
  // Cache per-row inverse stddev and the normalized values for backward.
  auto inv_std = std::make_shared<std::vector<float>>(x->rows());
  auto xhat = std::make_shared<Matrix>(x->rows(), n);
  const float* grow = gamma->value().row(0);
  const float* brow = beta->value().row(0);
  for (int r = 0; r < x->rows(); ++r) {
    (*inv_std)[r] = LayerNormRow(x->value().row(r), n, grow, brow, eps,
                                 xhat->row(r), out.row(r));
  }
  return MakeOp(std::move(out), {x, gamma, beta},
                [x, gamma, beta, inv_std, xhat](Var& self) {
    const int n = self.cols();
    const float* gam = gamma->value().row(0);
    for (int r = 0; r < self.rows(); ++r) {
      const float* g = self.grad().row(r);
      const float* h = xhat->row(r);
      if (gamma->requires_grad()) {
        float* gg = gamma->grad().row(0);
        for (int j = 0; j < n; ++j) gg[j] += g[j] * h[j];
      }
      if (beta->requires_grad()) {
        float* bg = beta->grad().row(0);
        for (int j = 0; j < n; ++j) bg[j] += g[j];
      }
      if (x->requires_grad()) {
        // dL/dx = inv_std * (gh - mean(gh) - xhat * mean(gh * xhat))
        // where gh = gamma * g.
        double mean_gh = 0.0, mean_ghh = 0.0;
        for (int j = 0; j < n; ++j) {
          const double gh = static_cast<double>(gam[j]) * g[j];
          mean_gh += gh;
          mean_ghh += gh * h[j];
        }
        mean_gh /= n;
        mean_ghh /= n;
        float* xg = x->grad().row(r);
        const float is = (*inv_std)[r];
        for (int j = 0; j < n; ++j) {
          const double gh = static_cast<double>(gam[j]) * g[j];
          xg[j] += static_cast<float>(is * (gh - mean_gh - h[j] * mean_ghh));
        }
      }
    }
  });
}

VarPtr Gelu(const VarPtr& x) {
  Matrix out(x->rows(), x->cols());
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = GeluValue(x->value().data()[i]);
  }
  return MakeOp(std::move(out), {x}, [x](Var& self) {
    if (!x->requires_grad()) return;
    for (size_t i = 0; i < self.value().size(); ++i) {
      const float v = x->value().data()[i];
      const float inner = kGeluC * (v + 0.044715f * v * v * v);
      const float t = std::tanh(inner);
      const float dinner = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
      const float dv = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * dinner;
      x->grad().data()[i] += self.grad().data()[i] * dv;
    }
  });
}

VarPtr Relu(const VarPtr& x) {
  Matrix out(x->rows(), x->cols());
  for (size_t i = 0; i < out.size(); ++i) {
    const float v = x->value().data()[i];
    out.data()[i] = v > 0.0f ? v : 0.0f;
  }
  return MakeOp(std::move(out), {x}, [x](Var& self) {
    if (!x->requires_grad()) return;
    for (size_t i = 0; i < self.value().size(); ++i) {
      if (x->value().data()[i] > 0.0f) {
        x->grad().data()[i] += self.grad().data()[i];
      }
    }
  });
}

VarPtr Tanh(const VarPtr& x) {
  Matrix out(x->rows(), x->cols());
  for (size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(x->value().data()[i]);
  }
  return MakeOp(std::move(out), {x}, [x](Var& self) {
    if (!x->requires_grad()) return;
    for (size_t i = 0; i < self.value().size(); ++i) {
      const float y = self.value().data()[i];
      x->grad().data()[i] += self.grad().data()[i] * (1.0f - y * y);
    }
  });
}

VarPtr EmbeddingGather(const VarPtr& table, const std::vector<u32>& ids) {
  const int d = table->cols();
  Matrix out(static_cast<int>(ids.size()), d);
  for (size_t i = 0; i < ids.size(); ++i) {
    DJ_CHECK(static_cast<int>(ids[i]) < table->rows());
    std::memcpy(out.row(static_cast<int>(i)), table->value().row(ids[i]),
                sizeof(float) * static_cast<size_t>(d));
  }
  auto ids_copy = std::make_shared<std::vector<u32>>(ids);
  return MakeOp(std::move(out), {table}, [table, ids_copy](Var& self) {
    if (!table->requires_grad()) return;
    const int d = table->cols();
    for (size_t i = 0; i < ids_copy->size(); ++i) {
      kern::Axpy(d, 1.0f, self.grad().row(static_cast<int>(i)),
                 table->grad().row((*ids_copy)[i]));
    }
  });
}

VarPtr MaskedMeanPool(const VarPtr& x, int valid_len) {
  DJ_CHECK(valid_len >= 1 && valid_len <= x->rows());
  const int d = x->cols();
  Matrix out(1, d);
  for (int r = 0; r < valid_len; ++r) {
    kern::Axpy(d, 1.0f, x->value().row(r), out.row(0));
  }
  const float inv = 1.0f / static_cast<float>(valid_len);
  kern::ScaleAdd(d, inv, out.row(0), 0.0f, out.row(0));
  return MakeOp(std::move(out), {x}, [x, valid_len, inv](Var& self) {
    if (!x->requires_grad()) return;
    const float* g = self.grad().row(0);
    for (int r = 0; r < valid_len; ++r) {
      kern::Axpy(x->cols(), inv, g, x->grad().row(r));
    }
  });
}

VarPtr ConcatRows(const std::vector<VarPtr>& rows) {
  DJ_CHECK(!rows.empty());
  const int d = rows[0]->cols();
  Matrix out(static_cast<int>(rows.size()), d);
  for (size_t i = 0; i < rows.size(); ++i) {
    DJ_CHECK(rows[i]->rows() == 1 && rows[i]->cols() == d);
    std::memcpy(out.row(static_cast<int>(i)), rows[i]->value().row(0),
                sizeof(float) * static_cast<size_t>(d));
  }
  return MakeOp(std::move(out), rows, [](Var& self) {
    for (size_t i = 0; i < self.parents.size(); ++i) {
      auto& p = self.parents[i];
      if (!p->requires_grad()) continue;
      const float* g = self.grad().row(static_cast<int>(i));
      float* pg = p->grad().row(0);
      for (int j = 0; j < self.cols(); ++j) pg[j] += g[j];
    }
  });
}

VarPtr SliceCols(const VarPtr& x, int start, int width) {
  DJ_CHECK(start >= 0 && width > 0 && start + width <= x->cols());
  Matrix out(x->rows(), width);
  for (int r = 0; r < x->rows(); ++r) {
    std::memcpy(out.row(r), x->value().row(r) + start,
                sizeof(float) * static_cast<size_t>(width));
  }
  return MakeOp(std::move(out), {x}, [x, start, width](Var& self) {
    if (!x->requires_grad()) return;
    for (int r = 0; r < self.rows(); ++r) {
      kern::Axpy(width, 1.0f, self.grad().row(r), x->grad().row(r) + start);
    }
  });
}

VarPtr ConcatCols(const std::vector<VarPtr>& parts) {
  DJ_CHECK(!parts.empty());
  const int rows = parts[0]->rows();
  int total = 0;
  for (const auto& p : parts) {
    DJ_CHECK(p->rows() == rows);
    total += p->cols();
  }
  Matrix out(rows, total);
  int offset = 0;
  for (const auto& p : parts) {
    for (int r = 0; r < rows; ++r) {
      std::memcpy(out.row(r) + offset, p->value().row(r),
                  sizeof(float) * static_cast<size_t>(p->cols()));
    }
    offset += p->cols();
  }
  return MakeOp(std::move(out), parts, [](Var& self) {
    int offset = 0;
    for (auto& p : self.parents) {
      if (p->requires_grad()) {
        for (int r = 0; r < self.rows(); ++r) {
          kern::Axpy(p->cols(), 1.0f, self.grad().row(r) + offset,
                     p->grad().row(r));
        }
      }
      offset += p->cols();
    }
  });
}

VarPtr RowL2Normalize(const VarPtr& x) {
  const int d = x->cols();
  Matrix out = x->value();
  auto norms = std::make_shared<std::vector<float>>(x->rows());
  for (int r = 0; r < x->rows(); ++r) {
    float* orow = out.row(r);
    // Single-precision norm via the kernel dot (documented accumulation
    // change: this used to accumulate in double).
    const float n = std::sqrt(kern::Dot(orow, orow, d));
    (*norms)[r] = n;
    if (n > 0.0f) {
      kern::ScaleAdd(d, 1.0f / n, orow, 0.0f, orow);
    }
  }
  return MakeOp(std::move(out), {x}, [x, norms](Var& self) {
    if (!x->requires_grad()) return;
    const int d = self.cols();
    for (int r = 0; r < self.rows(); ++r) {
      const float n = (*norms)[r];
      const float* g = self.grad().row(r);
      float* xg = x->grad().row(r);
      if (n <= 0.0f) {
        for (int j = 0; j < d; ++j) xg[j] += g[j];
        continue;
      }
      const float* y = self.value().row(r);
      double dot = 0.0;
      for (int j = 0; j < d; ++j) dot += static_cast<double>(g[j]) * y[j];
      const float inv = 1.0f / n;
      for (int j = 0; j < d; ++j) {
        xg[j] += inv * (g[j] - y[j] * static_cast<float>(dot));
      }
    }
  });
}

VarPtr AddRelPosBias(const VarPtr& scores, const VarPtr& table) {
  DJ_CHECK(scores->rows() == scores->cols());
  DJ_CHECK(table->rows() == 1);
  const int L = scores->rows();
  const int buckets = table->cols();
  const int radius = (buckets - 1) / 2;
  Matrix out = scores->value();
  const float* trow = table->value().row(0);
  auto bucket_of = [radius, buckets](int i, int j) {
    return RelPosBucket(i, j, radius, buckets);
  };
  for (int i = 0; i < L; ++i) {
    float* orow = out.row(i);
    for (int j = 0; j < L; ++j) orow[j] += trow[bucket_of(i, j)];
  }
  return MakeOp(std::move(out), {scores, table},
                [scores, table, bucket_of, L](Var& self) {
    if (scores->requires_grad()) self.grad().AddTo(scores->grad());
    if (table->requires_grad()) {
      float* tg = table->grad().row(0);
      for (int i = 0; i < L; ++i) {
        const float* g = self.grad().row(i);
        for (int j = 0; j < L; ++j) tg[bucket_of(i, j)] += g[j];
      }
    }
  });
}

VarPtr SoftmaxCrossEntropyIndex(const VarPtr& scores,
                                const std::vector<u32>& targets) {
  const int n = scores->rows();
  const int m = scores->cols();
  DJ_CHECK(static_cast<int>(targets.size()) == n);
  auto probs = std::make_shared<Matrix>(n, m);
  auto tgts = std::make_shared<std::vector<u32>>(targets);
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    DJ_CHECK(static_cast<int>(targets[i]) < m);
    const float* s = scores->value().row(i);
    float* p = probs->row(i);
    float maxv = -1e30f;
    for (int j = 0; j < m; ++j) maxv = std::max(maxv, s[j]);
    double sum = 0.0;
    for (int j = 0; j < m; ++j) {
      p[j] = std::exp(s[j] - maxv);
      sum += p[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < m; ++j) p[j] *= inv;
    loss += -std::log(std::max(1e-12, static_cast<double>(p[targets[i]])));
  }
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / n);
  return MakeOp(std::move(out), {scores}, [scores, probs, tgts, n, m](Var& self) {
    if (!scores->requires_grad()) return;
    const float g = self.grad().at(0, 0) / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
      const float* p = probs->row(i);
      float* sg = scores->grad().row(i);
      const u32 t = (*tgts)[i];
      for (int j = 0; j < m; ++j) {
        sg[j] += g * (p[j] - (static_cast<u32>(j) == t ? 1.0f : 0.0f));
      }
    }
  });
}

VarPtr SoftmaxCrossEntropyDiagonal(const VarPtr& scores) {
  DJ_CHECK(scores->rows() == scores->cols());
  std::vector<u32> diag(static_cast<size_t>(scores->rows()));
  for (size_t i = 0; i < diag.size(); ++i) diag[i] = static_cast<u32>(i);
  return SoftmaxCrossEntropyIndex(scores, diag);
}

VarPtr MseLoss(const VarPtr& pred, const Matrix& target) {
  DJ_CHECK(pred->rows() == target.rows() && pred->cols() == target.cols());
  const size_t n = pred->value().size();
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pred->value().data()[i]) -
                     target.data()[i];
    loss += d * d;
  }
  Matrix out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / static_cast<double>(n));
  auto tgt = std::make_shared<Matrix>(target);
  return MakeOp(std::move(out), {pred}, [pred, tgt, n](Var& self) {
    if (!pred->requires_grad()) return;
    const float g = self.grad().at(0, 0) * 2.0f / static_cast<float>(n);
    for (size_t i = 0; i < n; ++i) {
      pred->grad().data()[i] +=
          g * (pred->value().data()[i] - tgt->data()[i]);
    }
  });
}

}  // namespace nn
}  // namespace deepjoin
