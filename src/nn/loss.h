// Loss builders on top of the autograd ops.
#ifndef DEEPJOIN_NN_LOSS_H_
#define DEEPJOIN_NN_LOSS_H_

#include <vector>

#include "nn/autograd.h"

namespace deepjoin {
namespace nn {

/// Multiple Negatives Ranking loss (paper §4.2): given per-pair embeddings
/// x_i, y_i (each [1,d]), every (x_i, y_j), i != j in the batch acts as a
/// negative. Scores are cosine similarities scaled by `scale` (the
/// sentence-transformers default of 20 sharpens the softmax), and the loss
/// is mean_i -log softmax(S(x_i, y_*))_i.
VarPtr MultipleNegativesRankingLoss(const std::vector<VarPtr>& x_embs,
                                    const std::vector<VarPtr>& y_embs,
                                    float scale = 20.0f);

}  // namespace nn
}  // namespace deepjoin

#endif  // DEEPJOIN_NN_LOSS_H_
