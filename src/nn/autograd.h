// Dynamic reverse-mode autodiff over Matrix values. Each op computes its
// output eagerly and records a closure that propagates gradients to its
// parents; Backward() runs the closures in reverse topological order.
//
// This is the machinery used to fine-tune the transformer column encoder
// (the paper fine-tunes DistilBERT/MPNet with sentence-transformers; see
// DESIGN.md for the substitution).
#ifndef DEEPJOIN_NN_AUTOGRAD_H_
#define DEEPJOIN_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace deepjoin {
namespace nn {

class Var;
using VarPtr = std::shared_ptr<Var>;

/// A node in the computation graph: a value, its gradient buffer, and the
/// backward closure that scatters this node's gradient into its parents.
class Var {
 public:
  Var(Matrix value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const Matrix& value() const { return value_; }
  Matrix& mutable_value() { return value_; }

  /// Gradient buffer; allocated lazily on first access.
  Matrix& grad() {
    if (grad_.empty() && !value_.empty()) {
      grad_ = Matrix(value_.rows(), value_.cols());
    }
    return grad_;
  }
  bool has_grad() const { return !grad_.empty(); }
  void ZeroGrad() {
    if (!grad_.empty()) grad_.Zero();
  }

  bool requires_grad() const { return requires_grad_; }

  int rows() const { return value_.rows(); }
  int cols() const { return value_.cols(); }

  // Graph wiring — used by ops and by Backward().
  std::vector<VarPtr> parents;
  std::function<void(Var&)> backward_fn;

 private:
  Matrix value_;
  Matrix grad_;
  bool requires_grad_;
};

/// Creates a leaf. Parameters pass requires_grad = true; constants false.
VarPtr MakeVar(Matrix value, bool requires_grad = false);

/// While a NoGradGuard is alive, ops produce nodes with no backward
/// closures and no parent links, so inference runs without building (or
/// retaining) a graph. Guards nest.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// True when at least one NoGradGuard is alive on this thread.
bool InNoGradMode();

/// Runs reverse-mode autodiff from `root` (must be 1x1). Seeds d(root)=1.
void Backward(const VarPtr& root);

// ---- Ops. All return a fresh node wired to their inputs. ----

/// [m,k] @ [k,n] -> [m,n]
VarPtr MatMul(const VarPtr& a, const VarPtr& b);
/// [m,k] @ [n,k]^T -> [m,n]
VarPtr MatMulNT(const VarPtr& a, const VarPtr& b);
/// Elementwise sum, same shape.
VarPtr Add(const VarPtr& a, const VarPtr& b);
/// Adds a [1,n] row vector to every row of a [m,n] matrix.
VarPtr AddRowVector(const VarPtr& a, const VarPtr& bias);
/// Multiplies by a scalar constant.
VarPtr Scale(const VarPtr& a, float c);
/// Elementwise product, same shape.
VarPtr Mul(const VarPtr& a, const VarPtr& b);
/// Row-wise softmax. `mask`, if non-null, is an additive constant matrix of
/// the same shape (use -1e9 for disallowed positions).
VarPtr RowSoftmax(const VarPtr& a, const Matrix* mask);
/// LayerNorm over each row with learned gain/bias ([1,n] each).
VarPtr LayerNormRows(const VarPtr& x, const VarPtr& gamma, const VarPtr& beta,
                     float eps = 1e-5f);
/// Tanh-approximation GELU, elementwise.
VarPtr Gelu(const VarPtr& x);
VarPtr Relu(const VarPtr& x);
VarPtr Tanh(const VarPtr& x);
/// Gathers rows of `table` ([V,d]) by `ids` -> [len(ids), d]. Backward
/// scatter-adds into the table gradient.
VarPtr EmbeddingGather(const VarPtr& table, const std::vector<u32>& ids);
/// Mean over the first `valid_len` rows of [L,d] -> [1,d].
VarPtr MaskedMeanPool(const VarPtr& x, int valid_len);
/// Stacks N nodes of shape [1,d] into [N,d].
VarPtr ConcatRows(const std::vector<VarPtr>& rows);
/// Takes the column slice [*, start, start+width) of x.
VarPtr SliceCols(const VarPtr& x, int start, int width);
/// Concatenates same-row-count nodes along columns.
VarPtr ConcatCols(const std::vector<VarPtr>& parts);
/// L2-normalizes each row (rows with zero norm pass through).
VarPtr RowL2Normalize(const VarPtr& x);
/// Adds a learned relative-position bias to attention scores. `table` is
/// [1, num_buckets]; position pair (i,j) uses bucket clamp(j-i+R, 0, 2R)
/// where num_buckets = 2R+1. Scores must be square [L,L] with L <= R+1
/// unaffected... (out-of-range offsets clamp to the edge buckets).
VarPtr AddRelPosBias(const VarPtr& scores, const VarPtr& table);
/// Multiple-negatives-ranking / InfoNCE loss: given a score matrix [N,N]
/// where entry (i,j) scores pair (X_i, Y_j), returns the mean over rows of
/// -log softmax(row_i)_i. This is the loss of paper §4.2.
VarPtr SoftmaxCrossEntropyDiagonal(const VarPtr& scores);
/// Generalised softmax cross-entropy: scores is [N,M], `targets[i]` < M is
/// the positive column of row i; returns mean_i -log softmax(row_i)_t_i.
VarPtr SoftmaxCrossEntropyIndex(const VarPtr& scores,
                                const std::vector<u32>& targets);
/// Mean squared error between pred [N,1] and a constant target [N,1].
VarPtr MseLoss(const VarPtr& pred, const Matrix& target);

}  // namespace nn
}  // namespace deepjoin

#endif  // DEEPJOIN_NN_AUTOGRAD_H_
