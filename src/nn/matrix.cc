#include "nn/matrix.h"

#include <algorithm>
#include <atomic>

#include "util/thread_pool.h"

namespace deepjoin {
namespace nn {

namespace {

// Pool for row-parallel GEMM; nullptr means serial. Installed once at
// startup (SetMatMulThreadPool), read on every large matmul.
std::atomic<ThreadPool*> g_matmul_pool{nullptr};

// Output rows per parallel chunk. The chunk grid depends only on m — never
// on the thread count — and every C element's reduction chain lives
// entirely inside its own row, so any chunking (or none) produces
// bit-identical results; fixing the grid just keeps scheduling stable.
constexpr int kGemmRowChunk = 16;

// Below this many multiply-adds the ParallelFor handoff costs more than
// the arithmetic (the repo's training shapes sit at ~600K and up).
constexpr long kGemmParallelMinMacs = 1L << 17;

/// Runs fn(i0, rows) over [0, m) either inline or chunked across the pool.
template <typename Fn>
void ForEachRowChunk(int m, int n, int k, const Fn& fn) {
  ThreadPool* pool = g_matmul_pool.load(std::memory_order_acquire);
  const long macs = static_cast<long>(m) * n * k;
  if (pool == nullptr || pool->num_threads() <= 1 ||
      m < 2 * kGemmRowChunk || macs < kGemmParallelMinMacs) {
    fn(0, m);
    return;
  }
  const size_t chunks =
      static_cast<size_t>((m + kGemmRowChunk - 1) / kGemmRowChunk);
  pool->ParallelFor(chunks, [m, &fn](size_t ci) {
    const int i0 = static_cast<int>(ci) * kGemmRowChunk;
    fn(i0, std::min(kGemmRowChunk, m - i0));
  });
}

}  // namespace

void SetMatMulThreadPool(ThreadPool* pool) {
  g_matmul_pool.store(pool, std::memory_order_release);
}

void MatMulAccum(const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  DJ_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  ForEachRowChunk(m, n, k, [&](int i0, int rows) {
    kern::SgemmNN(rows, n, k, a.row(i0), k, b.data(), n, c.row(i0), n);
  });
}

void MatMulNTAccum(const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.rows(), k = a.cols(), n = b.rows();
  DJ_CHECK(b.cols() == k && c.rows() == m && c.cols() == n);
  ForEachRowChunk(m, n, k, [&](int i0, int rows) {
    kern::SgemmNT(rows, n, k, a.row(i0), k, b.data(), k, c.row(i0), n);
  });
}

void MatMulTNAccum(const Matrix& a, const Matrix& b, Matrix& c) {
  const int k = a.rows(), m = a.cols(), n = b.cols();
  DJ_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  // Output row i reads column i of A; a chunk is a column band of A.
  ForEachRowChunk(m, n, k, [&](int i0, int rows) {
    kern::SgemmTN(rows, n, k, a.data() + i0, m, b.data(), n, c.row(i0), n);
  });
}

}  // namespace nn
}  // namespace deepjoin
