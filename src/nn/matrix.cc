#include "nn/matrix.h"

namespace deepjoin {
namespace nn {

// i-k-j loop order keeps the inner loop streaming over contiguous rows of B
// and C, which the compiler auto-vectorizes; adequate for the model sizes
// this library trains (d_model <= 128).
void MatMulAccum(const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  DJ_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulNTAccum(const Matrix& a, const Matrix& b, Matrix& c) {
  const int m = a.rows(), k = a.cols(), n = b.rows();
  DJ_CHECK(b.cols() == k && c.rows() == m && c.cols() == n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      double s = 0.0;
      for (int p = 0; p < k; ++p) s += static_cast<double>(arow[p]) * brow[p];
      crow[j] += static_cast<float>(s);
    }
  }
}

void MatMulTNAccum(const Matrix& a, const Matrix& b, Matrix& c) {
  const int k = a.rows(), m = a.cols(), n = b.cols();
  DJ_CHECK(b.rows() == k && c.rows() == m && c.cols() == n);
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace nn
}  // namespace deepjoin
