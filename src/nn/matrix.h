// Dense row-major float matrix — the single tensor type of the nn stack.
// Sequences are [seq_len x d_model]; batched embeddings are [batch x d].
#ifndef DEEPJOIN_NN_MATRIX_H_
#define DEEPJOIN_NN_MATRIX_H_

#include <cstring>
#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace deepjoin {
namespace nn {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    DJ_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  float& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  float at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  void Zero() { std::memset(data_.data(), 0, data_.size() * sizeof(float)); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Gaussian init (BERT-style: N(0, 0.02)).
  void RandomNormal(Rng& rng, double stddev) {
    for (auto& x : data_) x = static_cast<float>(rng.Normal(0.0, stddev));
  }

  /// out += this (shapes must match).
  void AddTo(Matrix& out) const {
    DJ_CHECK(rows_ == out.rows_ && cols_ == out.cols_);
    for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += data_[i];
  }

 private:
  int rows_, cols_;
  std::vector<float> data_;
};

/// C += A @ B. A is [m,k], B is [k,n], C is [m,n].
void MatMulAccum(const Matrix& a, const Matrix& b, Matrix& c);
/// C += A @ B^T. A is [m,k], B is [n,k], C is [m,n].
void MatMulNTAccum(const Matrix& a, const Matrix& b, Matrix& c);
/// C += A^T @ B. A is [k,m], B is [k,n], C is [m,n].
void MatMulTNAccum(const Matrix& a, const Matrix& b, Matrix& c);

}  // namespace nn
}  // namespace deepjoin

#endif  // DEEPJOIN_NN_MATRIX_H_
