// Dense row-major float matrix — the single tensor type of the nn stack.
// Sequences are [seq_len x d_model]; batched embeddings are [batch x d].
// Storage is 64-byte aligned (kern::AlignedAllocator) so every row of the
// repo's model shapes (d_model 48/64, d_ff 192/256 — all multiples of 16
// floats) starts on a cache-line boundary for the SIMD kernels.
#ifndef DEEPJOIN_NN_MATRIX_H_
#define DEEPJOIN_NN_MATRIX_H_

#include <cstring>
#include <vector>

#include "util/common.h"
#include "util/kernels.h"
#include "util/rng.h"

namespace deepjoin {

class ThreadPool;

namespace nn {

class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    DJ_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  float& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  float at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  void Zero() { std::memset(data_.data(), 0, data_.size() * sizeof(float)); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Gaussian init (BERT-style: N(0, 0.02)).
  void RandomNormal(Rng& rng, double stddev) {
    for (auto& x : data_) x = static_cast<float>(rng.Normal(0.0, stddev));
  }

  /// out += this (shapes must match). An exact elementwise add in every
  /// kernel tier (kern::Axpy with alpha == 1).
  void AddTo(Matrix& out) const {
    DJ_CHECK(rows_ == out.rows_ && cols_ == out.cols_);
    kern::Axpy(static_cast<int>(data_.size()), 1.0f, data_.data(),
               out.data_.data());
  }

 private:
  int rows_, cols_;
  std::vector<float, kern::AlignedAllocator<float, 64>> data_;
};

/// C += A @ B. A is [m,k], B is [k,n], C is [m,n].
void MatMulAccum(const Matrix& a, const Matrix& b, Matrix& c);
/// C += A @ B^T. A is [m,k], B is [n,k], C is [m,n].
void MatMulNTAccum(const Matrix& a, const Matrix& b, Matrix& c);
/// C += A^T @ B. A is [k,m], B is [k,n], C is [m,n].
void MatMulTNAccum(const Matrix& a, const Matrix& b, Matrix& c);

// All three variants accumulate in single precision through the shared
// kern::Sgemm* microkernel (one documented chain per element; see
// util/kernels.h). Historically MatMulNTAccum accumulated in double while
// the other two used float — one precision now covers all variants.

/// Installs (or clears, with nullptr) the pool large MatMul*Accum calls
/// split across, chunking output rows into fixed-size blocks. The split is
/// deterministic and each element's reduction chain is row-local, so
/// parallel results are bit-identical to serial for any thread count.
void SetMatMulThreadPool(ThreadPool* pool);

}  // namespace nn
}  // namespace deepjoin

#endif  // DEEPJOIN_NN_MATRIX_H_
