#include "nn/mlp.h"

#include <cmath>

namespace deepjoin {
namespace nn {

MlpRegressor::MlpRegressor(const MlpConfig& config) : config_(config) {
  Rng rng(config_.seed);
  const double init1 = 1.0 / std::sqrt(static_cast<double>(config_.input_dim));
  const double init2 =
      1.0 / std::sqrt(static_cast<double>(config_.hidden_dim));
  w1_ = params_.Create("w1", config_.input_dim, config_.hidden_dim, rng,
                       init1);
  b1_ = params_.CreateConst("b1", 1, config_.hidden_dim, 0.0f);
  w2_ = params_.Create("w2", config_.hidden_dim, config_.hidden_dim, rng,
                       init2);
  b2_ = params_.CreateConst("b2", 1, config_.hidden_dim, 0.0f);
  w3_ = params_.Create("w3", 3 * config_.hidden_dim, 1, rng, init2);
  b3_ = params_.CreateConst("b3", 1, 1, 0.0f);
}

VarPtr MlpRegressor::Tower(const VarPtr& x) {
  VarPtr h1 = Relu(AddRowVector(MatMul(x, w1_), b1_));
  return Tanh(AddRowVector(MatMul(h1, w2_), b2_));
}

VarPtr MlpRegressor::PredictJoinability(const VarPtr& x_cols,
                                        const VarPtr& y_cols) {
  VarPtr hx = Tower(x_cols);
  VarPtr hy = Tower(y_cols);
  VarPtr joint = ConcatCols({hx, hy, Mul(hx, hy)});
  return AddRowVector(MatMul(joint, w3_), b3_);
}

std::vector<float> MlpRegressor::Embed(const std::vector<float>& column_vec) {
  NoGradGuard guard;
  DJ_CHECK(static_cast<int>(column_vec.size()) == config_.input_dim);
  Matrix in(1, config_.input_dim);
  for (int j = 0; j < config_.input_dim; ++j) in.at(0, j) = column_vec[j];
  VarPtr out = Tower(MakeVar(std::move(in)));
  const float* row = out->value().row(0);
  return std::vector<float>(row, row + config_.hidden_dim);
}

}  // namespace nn
}  // namespace deepjoin
