#include "nn/transformer.h"

#include <cmath>
#include <cstring>

#include "nn/row_ops.h"
#include "util/kernels.h"

namespace deepjoin {
namespace nn {

// Scratch for the allocation-free forward pass. Every matrix is sized for
// max_seq_len once; a call over L tokens touches only the first L rows
// (and, for `scores`, the first L columns — the kernels take leading
// dimensions, and per util/kernels.h reduction chains do not depend on
// them, so the values match the graph path's tightly-sized matrices).
struct TransformerEncoder::Workspace {
  Matrix x, q, k, v, ctx, tmp;  // [max_seq, d_model]
  Matrix h1;                    // [max_seq, d_ff]
  Matrix scores;                // [max_seq, max_seq]

  explicit Workspace(const TransformerConfig& c)
      : x(c.max_seq_len, c.d_model),
        q(c.max_seq_len, c.d_model),
        k(c.max_seq_len, c.d_model),
        v(c.max_seq_len, c.d_model),
        ctx(c.max_seq_len, c.d_model),
        tmp(c.max_seq_len, c.d_model),
        h1(c.max_seq_len, c.d_ff),
        scores(c.max_seq_len, c.max_seq_len) {}
};

namespace {

/// Zeroes the first `rows` rows of m (the workspace is reused, so stale
/// values must be cleared before a GEMM accumulates into it).
void ZeroRows(Matrix& m, int rows) {
  std::memset(m.data(), 0,
              static_cast<size_t>(rows) * m.cols() * sizeof(float));
}

}  // namespace

VarPtr ParamStore::Create(const std::string& name, int rows, int cols,
                          Rng& rng, double stddev) {
  Matrix m(rows, cols);
  m.RandomNormal(rng, stddev);
  auto v = MakeVar(std::move(m), /*requires_grad=*/true);
  params_.push_back(v);
  names_.push_back(name);
  return v;
}

VarPtr ParamStore::CreateConst(const std::string& name, int rows, int cols,
                               float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  auto v = MakeVar(std::move(m), /*requires_grad=*/true);
  params_.push_back(v);
  names_.push_back(name);
  return v;
}

size_t ParamStore::NumScalars() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value().size();
  return n;
}

void ParamStore::ZeroGrads() {
  for (auto& p : params_) p->ZeroGrad();
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config)
    : config_(config) {
  DJ_CHECK_MSG(config_.vocab_size > 0, "vocab_size must be set");
  DJ_CHECK(config_.d_model % config_.num_heads == 0);
  Rng rng(config_.seed);
  const double init = 0.02;  // BERT-style N(0, 0.02)

  token_emb_ = params_.Create("token_emb", config_.vocab_size,
                              config_.d_model, rng, init);
  if (config_.position_mode == PositionMode::kAbsolute) {
    pos_emb_ = params_.Create("pos_emb", config_.max_seq_len, config_.d_model,
                              rng, init);
  }
  layers_.resize(config_.num_layers);
  const int d = config_.d_model;
  for (int l = 0; l < config_.num_layers; ++l) {
    auto& layer = layers_[l];
    const std::string p = "layer" + std::to_string(l) + ".";
    layer.wq = params_.Create(p + "wq", d, d, rng, init);
    layer.bq = params_.CreateConst(p + "bq", 1, d, 0.0f);
    layer.wk = params_.Create(p + "wk", d, d, rng, init);
    layer.bk = params_.CreateConst(p + "bk", 1, d, 0.0f);
    layer.wv = params_.Create(p + "wv", d, d, rng, init);
    layer.bv = params_.CreateConst(p + "bv", 1, d, 0.0f);
    layer.wo = params_.Create(p + "wo", d, d, rng, init);
    layer.bo = params_.CreateConst(p + "bo", 1, d, 0.0f);
    layer.ln1_g = params_.CreateConst(p + "ln1_g", 1, d, 1.0f);
    layer.ln1_b = params_.CreateConst(p + "ln1_b", 1, d, 0.0f);
    layer.ff1_w = params_.Create(p + "ff1_w", d, config_.d_ff, rng, init);
    layer.ff1_b = params_.CreateConst(p + "ff1_b", 1, config_.d_ff, 0.0f);
    layer.ff2_w = params_.Create(p + "ff2_w", config_.d_ff, d, rng, init);
    layer.ff2_b = params_.CreateConst(p + "ff2_b", 1, d, 0.0f);
    layer.ln2_g = params_.CreateConst(p + "ln2_g", 1, d, 1.0f);
    layer.ln2_b = params_.CreateConst(p + "ln2_b", 1, d, 0.0f);
    if (config_.position_mode == PositionMode::kRelativeBias) {
      const int buckets = 2 * config_.rel_radius + 1;
      layer.rel_bias.reserve(config_.num_heads);
      for (int h = 0; h < config_.num_heads; ++h) {
        layer.rel_bias.push_back(params_.Create(
            p + "rel_bias" + std::to_string(h), 1, buckets, rng, init));
      }
    }
  }
}

void TransformerEncoder::InitTokenEmbedding(u32 token_id,
                                            const std::vector<float>& vec) {
  DJ_CHECK(static_cast<int>(token_id) < token_emb_->rows());
  Matrix& table = token_emb_->mutable_value();
  const int d = std::min<int>(config_.d_model, static_cast<int>(vec.size()));
  float* row = table.row(static_cast<int>(token_id));
  for (int j = 0; j < d; ++j) row[j] = vec[j];
}

VarPtr TransformerEncoder::Encode(const std::vector<u32>& ids) {
  DJ_CHECK(!ids.empty());
  std::vector<u32> truncated = ids;
  if (static_cast<int>(truncated.size()) > config_.max_seq_len) {
    truncated.resize(config_.max_seq_len);
  }
  const int L = static_cast<int>(truncated.size());
  const int d = config_.d_model;
  const int heads = config_.num_heads;
  const int dh = d / heads;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

  VarPtr x = EmbeddingGather(token_emb_, truncated);
  if (config_.position_mode == PositionMode::kAbsolute) {
    std::vector<u32> pos_ids(truncated.size());
    for (int i = 0; i < L; ++i) pos_ids[i] = static_cast<u32>(i);
    x = Add(x, EmbeddingGather(pos_emb_, pos_ids));
  }

  for (auto& layer : layers_) {
    // Multi-head self-attention (post-LN residual block, as in
    // BERT/DistilBERT).
    VarPtr q = AddRowVector(MatMul(x, layer.wq), layer.bq);
    VarPtr k = AddRowVector(MatMul(x, layer.wk), layer.bk);
    VarPtr v = AddRowVector(MatMul(x, layer.wv), layer.bv);
    std::vector<VarPtr> head_outputs;
    head_outputs.reserve(heads);
    for (int h = 0; h < heads; ++h) {
      VarPtr qh = SliceCols(q, h * dh, dh);
      VarPtr kh = SliceCols(k, h * dh, dh);
      VarPtr vh = SliceCols(v, h * dh, dh);
      VarPtr scores = Scale(MatMulNT(qh, kh), inv_sqrt_dh);
      if (config_.position_mode == PositionMode::kRelativeBias) {
        scores = AddRelPosBias(scores, layer.rel_bias[h]);
      }
      VarPtr attn = RowSoftmax(scores, nullptr);
      head_outputs.push_back(MatMul(attn, vh));
    }
    VarPtr ctx = ConcatCols(head_outputs);
    VarPtr attn_out = AddRowVector(MatMul(ctx, layer.wo), layer.bo);
    x = LayerNormRows(Add(x, attn_out), layer.ln1_g, layer.ln1_b);

    // Feed-forward block.
    VarPtr h1 = Gelu(AddRowVector(MatMul(x, layer.ff1_w), layer.ff1_b));
    VarPtr h2 = AddRowVector(MatMul(h1, layer.ff2_w), layer.ff2_b);
    x = LayerNormRows(Add(x, h2), layer.ln2_g, layer.ln2_b);
  }

  return MaskedMeanPool(x, L);
}

std::vector<float> TransformerEncoder::EncodeToVector(
    const std::vector<u32>& ids) {
  // Convenience overload: allocates its result by design. (dj_alloc merges
  // both EncodeToVector overloads under one key; the out-param one below
  // carries the DJ_NOALLOC contract.)
  std::vector<float> out(  // dj_alloc: allow(alloc)
      static_cast<size_t>(config_.d_model));
  EncodeToVector(ids, out.data());
  return out;
}

void TransformerEncoder::EncodeToVector(const std::vector<u32>& ids,
                                        float* out) {
  DJ_CHECK(!ids.empty());
  const int L = std::min<int>(static_cast<int>(ids.size()),
                              config_.max_seq_len);
  std::unique_ptr<Workspace> ws = AcquireWorkspace();
  ForwardNoGrad(ids.data(), L, *ws, out);
  ReleaseWorkspace(std::move(ws));
}

TransformerEncoder::~TransformerEncoder() = default;

std::unique_ptr<TransformerEncoder::Workspace>
TransformerEncoder::AcquireWorkspace() {
  {
    MutexLock lock(ws_mu_);
    if (!ws_free_.empty()) {
      std::unique_ptr<Workspace> ws = std::move(ws_free_.back());
      ws_free_.pop_back();
      return ws;
    }
  }
  // Allocate outside the lock (same scheme as HNSW's VisitedPool). Pool
  // warmup: once every concurrent caller owns a workspace the free list
  // always satisfies Acquire.
  return std::make_unique<Workspace>(config_);  // dj_alloc: allow(alloc)
}

void TransformerEncoder::ReleaseWorkspace(std::unique_ptr<Workspace> ws) {
  MutexLock lock(ws_mu_);
  // Pool-vector growth is warmup-only: capacity reaches the maximum
  // number of concurrent encoders and then every push reuses the slot
  // its workspace was popped from.
  ws_free_.push_back(std::move(ws));  // dj_alloc: allow(alloc)
}

// Mirrors Encode() op for op: every step below runs the same kernel calls
// and nn/row_ops.h helpers as the corresponding autograd forward, in the
// same order, so the result is bit-identical to Encode() under
// NoGradGuard. When changing either path, change both.
void TransformerEncoder::ForwardNoGrad(const u32* ids, int L, Workspace& ws,
                                       float* out) {
  const int d = config_.d_model;
  const int heads = config_.num_heads;
  const int dh = d / heads;
  const int d_ff = config_.d_ff;
  const int ld_scores = config_.max_seq_len;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

  // Token (+ absolute position) embeddings — EmbeddingGather / Add.
  const Matrix& tok = token_emb_->value();
  for (int i = 0; i < L; ++i) {
    DJ_CHECK(static_cast<int>(ids[i]) < tok.rows());
    std::memcpy(ws.x.row(i), tok.row(static_cast<int>(ids[i])),
                sizeof(float) * static_cast<size_t>(d));
  }
  if (config_.position_mode == PositionMode::kAbsolute) {
    const Matrix& pos = pos_emb_->value();
    for (int i = 0; i < L; ++i) {
      kern::Axpy(d, 1.0f, pos.row(i), ws.x.row(i));
    }
  }

  for (auto& layer : layers_) {
    // Q/K/V projections — MatMul + AddRowVector.
    ZeroRows(ws.q, L);
    ZeroRows(ws.k, L);
    ZeroRows(ws.v, L);
    kern::SgemmNN(L, d, d, ws.x.data(), d, layer.wq->value().data(), d,
                  ws.q.data(), d);
    kern::SgemmNN(L, d, d, ws.x.data(), d, layer.wk->value().data(), d,
                  ws.k.data(), d);
    kern::SgemmNN(L, d, d, ws.x.data(), d, layer.wv->value().data(), d,
                  ws.v.data(), d);
    for (int i = 0; i < L; ++i) {
      kern::Axpy(d, 1.0f, layer.bq->value().row(0), ws.q.row(i));
      kern::Axpy(d, 1.0f, layer.bk->value().row(0), ws.k.row(i));
      kern::Axpy(d, 1.0f, layer.bv->value().row(0), ws.v.row(i));
    }

    // Per-head attention into the ctx columns (the graph path's SliceCols /
    // ConcatCols become strided kernel views).
    ZeroRows(ws.ctx, L);
    for (int h = 0; h < heads; ++h) {
      const float* qh = ws.q.data() + h * dh;
      const float* kh = ws.k.data() + h * dh;
      const float* vh = ws.v.data() + h * dh;
      float* sc = ws.scores.data();
      for (int i = 0; i < L; ++i) {
        std::memset(ws.scores.row(i), 0,
                    sizeof(float) * static_cast<size_t>(L));
      }
      kern::SgemmNT(L, L, dh, qh, d, kh, d, sc, ld_scores);
      for (int i = 0; i < L; ++i) {
        float* srow = ws.scores.row(i);
        kern::ScaleAdd(L, inv_sqrt_dh, srow, 0.0f, srow);  // Scale
      }
      if (config_.position_mode == PositionMode::kRelativeBias) {
        const Matrix& table = layer.rel_bias[h]->value();
        const int buckets = table.cols();
        const int radius = (buckets - 1) / 2;
        const float* trow = table.row(0);
        for (int i = 0; i < L; ++i) {
          float* srow = ws.scores.row(i);
          for (int j = 0; j < L; ++j) {
            srow[j] += trow[RelPosBucket(i, j, radius, buckets)];
          }
        }
      }
      for (int i = 0; i < L; ++i) {
        float* srow = ws.scores.row(i);
        SoftmaxRow(srow, nullptr, srow, L);  // RowSoftmax
      }
      kern::SgemmNN(L, dh, L, sc, ld_scores, vh, d, ws.ctx.data() + h * dh,
                    d);
    }

    // Output projection + residual + LayerNorm.
    ZeroRows(ws.tmp, L);
    kern::SgemmNN(L, d, d, ws.ctx.data(), d, layer.wo->value().data(), d,
                  ws.tmp.data(), d);
    for (int i = 0; i < L; ++i) {
      kern::Axpy(d, 1.0f, layer.bo->value().row(0), ws.tmp.row(i));
      kern::Axpy(d, 1.0f, ws.tmp.row(i), ws.x.row(i));  // Add (residual)
      LayerNormRow(ws.x.row(i), d, layer.ln1_g->value().row(0),
                   layer.ln1_b->value().row(0), 1e-5f, /*xhat=*/nullptr,
                   ws.x.row(i));
    }

    // Feed-forward block.
    ZeroRows(ws.h1, L);
    kern::SgemmNN(L, d_ff, d, ws.x.data(), d, layer.ff1_w->value().data(),
                  d_ff, ws.h1.data(), d_ff);
    for (int i = 0; i < L; ++i) {
      float* hrow = ws.h1.row(i);
      kern::Axpy(d_ff, 1.0f, layer.ff1_b->value().row(0), hrow);
      for (int j = 0; j < d_ff; ++j) hrow[j] = GeluValue(hrow[j]);
    }
    ZeroRows(ws.tmp, L);
    kern::SgemmNN(L, d, d_ff, ws.h1.data(), d_ff,
                  layer.ff2_w->value().data(), d, ws.tmp.data(), d);
    for (int i = 0; i < L; ++i) {
      kern::Axpy(d, 1.0f, layer.ff2_b->value().row(0), ws.tmp.row(i));
      kern::Axpy(d, 1.0f, ws.tmp.row(i), ws.x.row(i));
      LayerNormRow(ws.x.row(i), d, layer.ln2_g->value().row(0),
                   layer.ln2_b->value().row(0), 1e-5f, /*xhat=*/nullptr,
                   ws.x.row(i));
    }
  }

  // Mean pool over the L rows — MaskedMeanPool.
  std::memset(out, 0, sizeof(float) * static_cast<size_t>(d));
  for (int i = 0; i < L; ++i) kern::Axpy(d, 1.0f, ws.x.row(i), out);
  const float inv = 1.0f / static_cast<float>(L);
  kern::ScaleAdd(d, inv, out, 0.0f, out);
}

}  // namespace nn
}  // namespace deepjoin
