#include "nn/transformer.h"

#include <cmath>

namespace deepjoin {
namespace nn {

VarPtr ParamStore::Create(const std::string& name, int rows, int cols,
                          Rng& rng, double stddev) {
  Matrix m(rows, cols);
  m.RandomNormal(rng, stddev);
  auto v = MakeVar(std::move(m), /*requires_grad=*/true);
  params_.push_back(v);
  names_.push_back(name);
  return v;
}

VarPtr ParamStore::CreateConst(const std::string& name, int rows, int cols,
                               float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  auto v = MakeVar(std::move(m), /*requires_grad=*/true);
  params_.push_back(v);
  names_.push_back(name);
  return v;
}

size_t ParamStore::NumScalars() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value().size();
  return n;
}

void ParamStore::ZeroGrads() {
  for (auto& p : params_) p->ZeroGrad();
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config)
    : config_(config) {
  DJ_CHECK_MSG(config_.vocab_size > 0, "vocab_size must be set");
  DJ_CHECK(config_.d_model % config_.num_heads == 0);
  Rng rng(config_.seed);
  const double init = 0.02;  // BERT-style N(0, 0.02)

  token_emb_ = params_.Create("token_emb", config_.vocab_size,
                              config_.d_model, rng, init);
  if (config_.position_mode == PositionMode::kAbsolute) {
    pos_emb_ = params_.Create("pos_emb", config_.max_seq_len, config_.d_model,
                              rng, init);
  }
  layers_.resize(config_.num_layers);
  const int d = config_.d_model;
  for (int l = 0; l < config_.num_layers; ++l) {
    auto& layer = layers_[l];
    const std::string p = "layer" + std::to_string(l) + ".";
    layer.wq = params_.Create(p + "wq", d, d, rng, init);
    layer.bq = params_.CreateConst(p + "bq", 1, d, 0.0f);
    layer.wk = params_.Create(p + "wk", d, d, rng, init);
    layer.bk = params_.CreateConst(p + "bk", 1, d, 0.0f);
    layer.wv = params_.Create(p + "wv", d, d, rng, init);
    layer.bv = params_.CreateConst(p + "bv", 1, d, 0.0f);
    layer.wo = params_.Create(p + "wo", d, d, rng, init);
    layer.bo = params_.CreateConst(p + "bo", 1, d, 0.0f);
    layer.ln1_g = params_.CreateConst(p + "ln1_g", 1, d, 1.0f);
    layer.ln1_b = params_.CreateConst(p + "ln1_b", 1, d, 0.0f);
    layer.ff1_w = params_.Create(p + "ff1_w", d, config_.d_ff, rng, init);
    layer.ff1_b = params_.CreateConst(p + "ff1_b", 1, config_.d_ff, 0.0f);
    layer.ff2_w = params_.Create(p + "ff2_w", config_.d_ff, d, rng, init);
    layer.ff2_b = params_.CreateConst(p + "ff2_b", 1, d, 0.0f);
    layer.ln2_g = params_.CreateConst(p + "ln2_g", 1, d, 1.0f);
    layer.ln2_b = params_.CreateConst(p + "ln2_b", 1, d, 0.0f);
    if (config_.position_mode == PositionMode::kRelativeBias) {
      const int buckets = 2 * config_.rel_radius + 1;
      layer.rel_bias.reserve(config_.num_heads);
      for (int h = 0; h < config_.num_heads; ++h) {
        layer.rel_bias.push_back(params_.Create(
            p + "rel_bias" + std::to_string(h), 1, buckets, rng, init));
      }
    }
  }
}

void TransformerEncoder::InitTokenEmbedding(u32 token_id,
                                            const std::vector<float>& vec) {
  DJ_CHECK(static_cast<int>(token_id) < token_emb_->rows());
  Matrix& table = token_emb_->mutable_value();
  const int d = std::min<int>(config_.d_model, static_cast<int>(vec.size()));
  float* row = table.row(static_cast<int>(token_id));
  for (int j = 0; j < d; ++j) row[j] = vec[j];
}

VarPtr TransformerEncoder::Encode(const std::vector<u32>& ids) {
  DJ_CHECK(!ids.empty());
  std::vector<u32> truncated = ids;
  if (static_cast<int>(truncated.size()) > config_.max_seq_len) {
    truncated.resize(config_.max_seq_len);
  }
  const int L = static_cast<int>(truncated.size());
  const int d = config_.d_model;
  const int heads = config_.num_heads;
  const int dh = d / heads;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

  VarPtr x = EmbeddingGather(token_emb_, truncated);
  if (config_.position_mode == PositionMode::kAbsolute) {
    std::vector<u32> pos_ids(truncated.size());
    for (int i = 0; i < L; ++i) pos_ids[i] = static_cast<u32>(i);
    x = Add(x, EmbeddingGather(pos_emb_, pos_ids));
  }

  for (auto& layer : layers_) {
    // Multi-head self-attention (post-LN residual block, as in
    // BERT/DistilBERT).
    VarPtr q = AddRowVector(MatMul(x, layer.wq), layer.bq);
    VarPtr k = AddRowVector(MatMul(x, layer.wk), layer.bk);
    VarPtr v = AddRowVector(MatMul(x, layer.wv), layer.bv);
    std::vector<VarPtr> head_outputs;
    head_outputs.reserve(heads);
    for (int h = 0; h < heads; ++h) {
      VarPtr qh = SliceCols(q, h * dh, dh);
      VarPtr kh = SliceCols(k, h * dh, dh);
      VarPtr vh = SliceCols(v, h * dh, dh);
      VarPtr scores = Scale(MatMulNT(qh, kh), inv_sqrt_dh);
      if (config_.position_mode == PositionMode::kRelativeBias) {
        scores = AddRelPosBias(scores, layer.rel_bias[h]);
      }
      VarPtr attn = RowSoftmax(scores, nullptr);
      head_outputs.push_back(MatMul(attn, vh));
    }
    VarPtr ctx = ConcatCols(head_outputs);
    VarPtr attn_out = AddRowVector(MatMul(ctx, layer.wo), layer.bo);
    x = LayerNormRows(Add(x, attn_out), layer.ln1_g, layer.ln1_b);

    // Feed-forward block.
    VarPtr h1 = Gelu(AddRowVector(MatMul(x, layer.ff1_w), layer.ff1_b));
    VarPtr h2 = AddRowVector(MatMul(h1, layer.ff2_w), layer.ff2_b);
    x = LayerNormRows(Add(x, h2), layer.ln2_g, layer.ln2_b);
  }

  return MaskedMeanPool(x, L);
}

std::vector<float> TransformerEncoder::EncodeToVector(
    const std::vector<u32>& ids) {
  NoGradGuard guard;
  VarPtr out = Encode(ids);
  const float* row = out->value().row(0);
  return std::vector<float>(row, row + config_.d_model);
}

}  // namespace nn
}  // namespace deepjoin
