// 3-layer perceptron baseline (paper §5.1 "MLP"): takes the fastText
// embeddings of two columns, is trained as a regression onto the
// joinability score, and the last hidden layer's activations serve as the
// column embedding for retrieval.
#ifndef DEEPJOIN_NN_MLP_H_
#define DEEPJOIN_NN_MLP_H_

#include <vector>

#include "nn/autograd.h"
#include "nn/transformer.h"  // ParamStore

namespace deepjoin {
namespace nn {

struct MlpConfig {
  int input_dim = 32;   ///< fastText column-embedding dim
  int hidden_dim = 64;
  u64 seed = 99;
};

class MlpRegressor {
 public:
  explicit MlpRegressor(const MlpConfig& config);

  ParamStore& params() { return params_; }
  int embedding_dim() const { return config_.hidden_dim; }

  /// Shared column tower: input [N, input_dim] -> hidden [N, hidden_dim].
  /// The tower output is the retrieval embedding.
  VarPtr Tower(const VarPtr& x);

  /// Joinability prediction for stacked pairs: towers both sides, then the
  /// third layer reads [h_x ; h_y ; h_x * h_y] -> [N, 1]. The elementwise
  /// product term couples the towers symmetrically, so the regression
  /// shapes a space where joinable columns score high under dot/L2 —
  /// which is what the retrieval stage needs from the tower output.
  VarPtr PredictJoinability(const VarPtr& x_cols, const VarPtr& y_cols);

  /// Inference: embed one column vector through the tower.
  std::vector<float> Embed(const std::vector<float>& column_vec);

 private:
  MlpConfig config_;
  ParamStore params_;
  VarPtr w1_, b1_;  // input -> hidden (tower layer 1)
  VarPtr w2_, b2_;  // hidden -> hidden (tower layer 2)
  VarPtr w3_, b3_;  // [h_x ; h_y] -> 1 (regression head)
};

}  // namespace nn
}  // namespace deepjoin

#endif  // DEEPJOIN_NN_MLP_H_
