#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace deepjoin {
namespace nn {

AdamW::AdamW(std::vector<VarPtr> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

double AdamW::GradNorm() const {
  double s = 0.0;
  for (const auto& p : params_) {
    if (!p->has_grad()) continue;
    const Matrix& g = const_cast<Var&>(*p).grad();
    for (size_t i = 0; i < g.size(); ++i) {
      s += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  return std::sqrt(s);
}

void AdamW::Step(double lr_factor) {
  ++step_;
  const double lr = config_.lr * lr_factor;
  const double bc1 = 1.0 - std::pow(config_.beta1, step_);
  const double bc2 = 1.0 - std::pow(config_.beta2, step_);

  double clip_scale = 1.0;
  if (config_.clip_norm > 0.0) {
    const double norm = GradNorm();
    if (norm > config_.clip_norm) clip_scale = config_.clip_norm / norm;
  }

  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p->has_grad()) continue;
    Matrix& value = p->mutable_value();
    Matrix& grad = p->grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      const double g = static_cast<double>(grad.data()[j]) * clip_scale;
      const double mj = config_.beta1 * m.data()[j] + (1.0 - config_.beta1) * g;
      const double vj =
          config_.beta2 * v.data()[j] + (1.0 - config_.beta2) * g * g;
      m.data()[j] = static_cast<float>(mj);
      v.data()[j] = static_cast<float>(vj);
      const double mhat = mj / bc1;
      const double vhat = vj / bc2;
      double update = lr * mhat / (std::sqrt(vhat) + config_.eps);
      // Decoupled weight decay (AdamW).
      update += lr * config_.weight_decay * value.data()[j];
      value.data()[j] = static_cast<float>(value.data()[j] - update);
    }
  }
}

void AdamW::SaveState(BinaryWriter& writer) const {
  writer.WriteU64(static_cast<u64>(step_));
  writer.WriteU64(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    writer.WriteFloatArray(m_[i].data(), m_[i].size());
    writer.WriteFloatArray(v_[i].data(), v_[i].size());
  }
}

Status AdamW::LoadState(BinaryReader& reader) {
  u64 step = 0;
  u64 n = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU64(&step));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&n));
  if (n != params_.size()) {
    return Status::InvalidArgument("optimizer state parameter count mismatch");
  }
  std::vector<std::vector<float>> ms(n), vs(n);
  for (u64 i = 0; i < n; ++i) {
    DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&ms[i]));
    DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&vs[i]));
    if (ms[i].size() != m_[i].size() || vs[i].size() != v_[i].size()) {
      return Status::InvalidArgument("optimizer moment shape mismatch");
    }
  }
  // All-or-nothing: mutate only after every record validated.
  step_ = static_cast<long>(step);
  for (u64 i = 0; i < n; ++i) {
    std::copy(ms[i].begin(), ms[i].end(), m_[i].data());
    std::copy(vs[i].begin(), vs[i].end(), v_[i].data());
  }
  return Status::OK();
}

double WarmupLinearFactor(long step, long warmup_steps, long total_steps) {
  if (total_steps <= 0) return 1.0;
  if (warmup_steps > 0 && step < warmup_steps) {
    return static_cast<double>(step + 1) / static_cast<double>(warmup_steps);
  }
  if (step >= total_steps) return 0.0;
  const double remain = static_cast<double>(total_steps - step);
  const double span = static_cast<double>(total_steps - warmup_steps);
  return span > 0 ? remain / span : 1.0;
}

}  // namespace nn
}  // namespace deepjoin
