#include "nn/loss.h"

namespace deepjoin {
namespace nn {

VarPtr MultipleNegativesRankingLoss(const std::vector<VarPtr>& x_embs,
                                    const std::vector<VarPtr>& y_embs,
                                    float scale) {
  DJ_CHECK(!x_embs.empty() && x_embs.size() == y_embs.size());
  VarPtr x = RowL2Normalize(ConcatRows(x_embs));
  VarPtr y = RowL2Normalize(ConcatRows(y_embs));
  VarPtr scores = Scale(MatMulNT(x, y), scale);  // cosine * scale
  return SoftmaxCrossEntropyDiagonal(scores);
}

}  // namespace nn
}  // namespace deepjoin
