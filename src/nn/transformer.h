// Transformer sequence encoder — the PLM substitute that DeepJoin
// fine-tunes. Two position-handling modes mirror the paper's two PLMs:
//   * kAbsolute      — learned absolute position embeddings, as in
//                      DistilBERT ("DistilSim").
//   * kRelativeBias  — learned per-head relative-position attention biases
//                      and no absolute positions, capturing the
//                      position-modeling axis MPNet improves on ("MPNetSim").
// Sentence embedding = mean pooling over token states (the
// sentence-transformers convention the paper uses).
#ifndef DEEPJOIN_NN_TRANSFORMER_H_
#define DEEPJOIN_NN_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/autograd.h"
#include "util/alloc_guard.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace deepjoin {
namespace nn {

enum class PositionMode { kAbsolute, kRelativeBias };

struct TransformerConfig {
  int vocab_size = 0;      ///< must be set by the caller
  int d_model = 48;
  int num_layers = 2;
  int num_heads = 4;
  int d_ff = 192;          ///< feed-forward inner width
  int max_seq_len = 64;
  PositionMode position_mode = PositionMode::kAbsolute;
  int rel_radius = 8;      ///< relative-bias clip radius (kRelativeBias)
  u64 seed = 1234;
};

/// Named parameter collection; the optimizer iterates over this.
class ParamStore {
 public:
  VarPtr Create(const std::string& name, int rows, int cols, Rng& rng,
                double stddev);
  /// Creates a parameter filled with a constant (for LayerNorm gains).
  VarPtr CreateConst(const std::string& name, int rows, int cols, float v);

  const std::vector<VarPtr>& params() const { return params_; }
  const std::vector<std::string>& names() const { return names_; }
  size_t NumScalars() const;
  void ZeroGrads();

 private:
  std::vector<VarPtr> params_;
  std::vector<std::string> names_;
};

class TransformerEncoder {
 public:
  explicit TransformerEncoder(const TransformerConfig& config);
  ~TransformerEncoder();  // out-of-line: Workspace is incomplete here

  const TransformerConfig& config() const { return config_; }
  ParamStore& params() { return params_; }

  /// Copies pre-trained vectors into the first min(d_model, dim) columns of
  /// the token embedding table. Stands in for language-model pre-training:
  /// ids produced by the caller's vocabulary are given subword-informed
  /// starting points.
  void InitTokenEmbedding(u32 token_id, const std::vector<float>& vec);

  /// Encodes a (truncated) id sequence to a [1, d_model] graph node.
  /// Builds a full autodiff graph unless a NoGradGuard is alive.
  VarPtr Encode(const std::vector<u32>& ids);

  /// Inference-only convenience: mean-pooled embedding as a plain vector.
  std::vector<float> EncodeToVector(const std::vector<u32>& ids);

  /// Allocation-free inference fast path: writes the [d_model] mean-pooled
  /// embedding to `out`. Runs through a pooled per-encoder Workspace
  /// (scratch matrices sized once for max_seq_len) instead of building an
  /// autograd graph, so the hot search/index loops do no per-op heap
  /// allocation. Bit-identical to Encode() under NoGradGuard: both paths
  /// run the same kernels and the same per-row helpers (nn/row_ops.h) in
  /// the same order. Safe for concurrent calls (the workspace pool hands
  /// each call its own scratch — same scheme as HNSW's VisitedPool).
  /// DJ_NOALLOC steady state: after the workspace pool has warmed up.
  DJ_NOALLOC void EncodeToVector(const std::vector<u32>& ids, float* out);

 private:
  struct Layer {
    VarPtr wq, bq, wk, bk, wv, bv, wo, bo;
    VarPtr ln1_g, ln1_b;
    VarPtr ff1_w, ff1_b, ff2_w, ff2_b;
    VarPtr ln2_g, ln2_b;
    std::vector<VarPtr> rel_bias;  // one [1, 2R+1] table per head
  };

  struct Workspace;  // defined in transformer.cc

  std::unique_ptr<Workspace> AcquireWorkspace() DJ_EXCLUDES(ws_mu_);
  void ReleaseWorkspace(std::unique_ptr<Workspace> ws) DJ_EXCLUDES(ws_mu_);

  /// Runs the forward pass over `L` already-truncated ids into `out`
  /// ([d_model] floats) using only the workspace scratch.
  DJ_NOALLOC void ForwardNoGrad(const u32* ids, int L, Workspace& ws,
                                float* out);

  TransformerConfig config_;
  ParamStore params_;
  VarPtr token_emb_;  // [vocab, d]
  VarPtr pos_emb_;    // [max_seq, d] (absolute mode only)
  std::vector<Layer> layers_;

  // Reusable inference scratch, pooled so concurrent EncodeToVector calls
  // never share one (ColumnEncoder's concurrency contract fans encoding
  // across a ThreadPool).
  Mutex ws_mu_{"transformer.workspace", rank::kWorkspace};
  std::vector<std::unique_ptr<Workspace>> ws_free_ DJ_GUARDED_BY(ws_mu_);
};

}  // namespace nn
}  // namespace deepjoin

#endif  // DEEPJOIN_NN_TRANSFORMER_H_
