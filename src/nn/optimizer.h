// AdamW optimizer with the warmup + linear-decay learning-rate schedule the
// paper uses (batch 32, lr 2e-5, warmup steps, weight decay 0.01 — §5.1;
// our scaled defaults live in core/train.h).
#ifndef DEEPJOIN_NN_OPTIMIZER_H_
#define DEEPJOIN_NN_OPTIMIZER_H_

#include <vector>

#include "nn/autograd.h"
#include "util/binary_io.h"

namespace deepjoin {
namespace nn {

struct AdamConfig {
  double lr = 3e-4;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.01;  ///< decoupled (AdamW)
  double clip_norm = 1.0;      ///< global gradient-norm clip; <=0 disables
};

class AdamW {
 public:
  AdamW(std::vector<VarPtr> params, const AdamConfig& config);

  /// Applies one update using the accumulated gradients, scaled by
  /// `lr_factor` (the schedule multiplier). Does not zero gradients.
  void Step(double lr_factor);

  /// Global L2 norm of all parameter gradients (diagnostic).
  double GradNorm() const;

  long step_count() const { return step_; }

  /// Checkpointing: serializes / restores the step counter and both moment
  /// buffers, so a resumed run's updates are bit-identical to an
  /// uninterrupted one. LoadState rejects a state whose parameter count or
  /// shapes do not match this optimizer's.
  void SaveState(BinaryWriter& writer) const;
  Status LoadState(BinaryReader& reader);

 private:
  std::vector<VarPtr> params_;
  AdamConfig config_;
  std::vector<Matrix> m_, v_;
  long step_ = 0;
};

/// Linear warmup to 1.0 over `warmup_steps`, then linear decay to 0 at
/// `total_steps` — the schedule sentence-transformers applies by default.
double WarmupLinearFactor(long step, long warmup_steps, long total_steps);

}  // namespace nn
}  // namespace deepjoin

#endif  // DEEPJOIN_NN_OPTIMIZER_H_
