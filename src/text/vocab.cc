#include "text/vocab.h"

#include <algorithm>

#include "util/hash.h"

namespace deepjoin {

void Vocab::Observe(const std::vector<std::string>& tokens) {
  DJ_CHECK_MSG(!finalized_, "Observe() after Finalize()");
  for (const auto& t : tokens) ++counts_[t];
}

void Vocab::Finalize() {
  DJ_CHECK_MSG(!finalized_, "Finalize() called twice");
  std::vector<std::pair<std::string, u64>> entries(counts_.begin(),
                                                   counts_.end());
  // Most frequent first; ties broken lexicographically for determinism.
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (entries.size() > max_words_) entries.resize(max_words_);
  words_.reserve(entries.size());
  const u32 base = static_cast<u32>(kUnkBase + oov_buckets_);
  for (auto& [word, cnt] : entries) {
    word_to_id_[word] = base + static_cast<u32>(words_.size());
    words_.push_back(word);
  }
  counts_.clear();
  finalized_ = true;
}

u32 Vocab::Encode(std::string_view token) const {
  DJ_CHECK_MSG(finalized_, "Encode() before Finalize()");
  auto it = word_to_id_.find(token);
  if (it != word_to_id_.end()) return it->second;
  if (oov_buckets_ == 0) return kUnkBase;
  return kUnkBase + static_cast<u32>(Fnv1a(token) % oov_buckets_);
}

void Vocab::Save(BinaryWriter& writer) const {
  DJ_CHECK_MSG(finalized_, "Save() before Finalize()");
  writer.WriteU64(max_words_);
  writer.WriteU64(oov_buckets_);
  writer.WriteU64(words_.size());
  for (const auto& w : words_) writer.WriteString(w);
}

Result<Vocab> Vocab::Load(BinaryReader& reader) {
  u64 max_words = 0;
  u64 oov_buckets = 0;
  u64 n = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU64(&max_words));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&oov_buckets));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&n));
  // Ids are u32; a count or bucket range that cannot fit the id space is
  // corrupt, and every word costs at least one framed record, so the word
  // count is bounded by the bytes actually left in the file.
  if (oov_buckets > (1u << 30) || max_words > (1u << 30)) {
    return Status::DataLoss("vocabulary header out of range");
  }
  if (n > max_words || n > reader.remaining() / kRecordFraming) {
    return Status::DataLoss("vocabulary word count exceeds file size");
  }
  Vocab vocab(max_words, oov_buckets);
  const u32 base = vocab.word_base();
  vocab.words_.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    std::string w;
    DJ_RETURN_IF_ERROR(reader.ReadString(&w));
    vocab.word_to_id_[w] = base + static_cast<u32>(i);
    vocab.words_.push_back(std::move(w));
  }
  vocab.finalized_ = true;
  return vocab;
}

std::string Vocab::Decode(u32 id) const {
  if (id == kPadId) return "[pad]";
  if (id == kClsId) return "[cls]";
  if (id == kSepId) return "[sep]";
  const u32 base = static_cast<u32>(kUnkBase + oov_buckets_);
  if (id < base) return "[unk#" + std::to_string(id - kUnkBase) + "]";
  const size_t idx = id - base;
  if (idx < words_.size()) return words_[idx];
  return "[invalid]";
}

}  // namespace deepjoin
