// Word-level tokenization. All text entering the library (cell values,
// column names, table titles, contexts) is tokenized the same way:
// lowercased and split on any non-alphanumeric rune, so "U.S.A." and
// "usa" produce comparable token streams.
#ifndef DEEPJOIN_TEXT_TOKENIZER_H_
#define DEEPJOIN_TEXT_TOKENIZER_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace deepjoin {

/// A character that belongs to a word token (alphanumeric).
inline bool IsTokenChar(unsigned char c) { return std::isalnum(c) != 0; }

/// Splits `text` into lowercase alphanumeric tokens. Digits-only runs are
/// kept as tokens (numeric cells matter for equi-joins).
std::vector<std::string> TokenizeWords(std::string_view text);

/// Like TokenizeWords but appends into `out` to avoid re-allocation in the
/// hot encoding path.
void TokenizeWordsInto(std::string_view text, std::vector<std::string>* out);

/// Number of word tokens in `text` (no allocation of the token strings).
size_t CountWords(std::string_view text);

/// Calls `fn(std::string_view)` once per lowercase token, materialising
/// each token in `*scratch` (capacity reused across tokens and calls, so
/// a warmed-up scratch makes the whole walk allocation-free). The view
/// passed to `fn` is invalidated by the next token. This is the encoding
/// hot path's tokenizer: PlmColumnEncoder::EncodeInto feeds each token
/// straight into Vocab::Encode without building a token vector.
template <typename Fn>
void ForEachTokenLower(std::string_view text, std::string* scratch, Fn&& fn) {
  scratch->clear();
  for (unsigned char c : text) {
    if (IsTokenChar(c)) {
      // Grows only until the scratch has seen the longest token; steady
      // state reuses capacity.
      scratch->push_back(  // dj_alloc: allow(alloc)
          static_cast<char>(std::tolower(c)));
    } else if (!scratch->empty()) {
      fn(std::string_view(*scratch));
      scratch->clear();
    }
  }
  if (!scratch->empty()) fn(std::string_view(*scratch));
}

}  // namespace deepjoin

#endif  // DEEPJOIN_TEXT_TOKENIZER_H_
