// Word-level tokenization. All text entering the library (cell values,
// column names, table titles, contexts) is tokenized the same way:
// lowercased and split on any non-alphanumeric rune, so "U.S.A." and
// "usa" produce comparable token streams.
#ifndef DEEPJOIN_TEXT_TOKENIZER_H_
#define DEEPJOIN_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace deepjoin {

/// Splits `text` into lowercase alphanumeric tokens. Digits-only runs are
/// kept as tokens (numeric cells matter for equi-joins).
std::vector<std::string> TokenizeWords(std::string_view text);

/// Like TokenizeWords but appends into `out` to avoid re-allocation in the
/// hot encoding path.
void TokenizeWordsInto(std::string_view text, std::vector<std::string>* out);

/// Number of word tokens in `text` (no allocation of the token strings).
size_t CountWords(std::string_view text);

}  // namespace deepjoin

#endif  // DEEPJOIN_TEXT_TOKENIZER_H_
