// Token vocabulary for the PLM substitute. Built from a training corpus,
// with special tokens and hashed fallback buckets for out-of-vocabulary
// words (so unseen test columns still map to stable ids).
#ifndef DEEPJOIN_TEXT_VOCAB_H_
#define DEEPJOIN_TEXT_VOCAB_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/alloc_guard.h"
#include "util/binary_io.h"
#include "util/common.h"

namespace deepjoin {

class Vocab {
 public:
  // Fixed ids for the special tokens, mirroring BERT-family conventions.
  static constexpr u32 kPadId = 0;
  static constexpr u32 kClsId = 1;
  static constexpr u32 kSepId = 2;
  static constexpr u32 kUnkBase = 3;  // first OOV hash bucket

  /// `max_words`: cap on learned word entries; most frequent kept.
  /// `oov_buckets`: hashed buckets shared by all OOV words.
  Vocab(size_t max_words, size_t oov_buckets)
      : max_words_(max_words), oov_buckets_(oov_buckets) {}

  /// Counts tokens from one text. Call repeatedly, then Finalize().
  void Observe(const std::vector<std::string>& tokens);

  /// Freezes the vocabulary: keeps the `max_words` most frequent tokens.
  void Finalize();

  bool finalized() const { return finalized_; }

  /// Token -> id. OOV words hash into [kUnkBase, kUnkBase + oov_buckets).
  /// Allocation-free: the lookup is heterogeneous (no std::string key is
  /// materialised), and the OOV path is a pure hash.
  DJ_NOALLOC u32 Encode(std::string_view token) const;

  /// Total id space size = specials + oov buckets + learned words.
  size_t size() const { return kUnkBase + oov_buckets_ + words_.size(); }
  size_t num_learned_words() const { return words_.size(); }

  /// Id -> token, for debugging. OOV buckets render as "[unk#i]".
  std::string Decode(u32 id) const;

  /// First id of the learned-word range.
  u32 word_base() const { return static_cast<u32>(kUnkBase + oov_buckets_); }
  /// Learned words; word i has id word_base() + i.
  const std::vector<std::string>& learned_words() const { return words_; }

  /// Serializes a finalized vocabulary. Errors stick to the writer.
  void Save(BinaryWriter& writer) const;
  /// Reconstructs a finalized vocabulary (id assignment preserved).
  /// Corrupt or truncated input surfaces as a non-OK status.
  static Result<Vocab> Load(BinaryReader& reader);

 private:
  /// Transparent hash so Encode(string_view) looks words up without
  /// constructing a std::string key (the old find(std::string(token))
  /// allocated for every token beyond SSO — once per word per encode).
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  size_t max_words_;
  size_t oov_buckets_;
  bool finalized_ = false;
  std::unordered_map<std::string, u64> counts_;
  std::unordered_map<std::string, u32, StringHash, std::equal_to<>>
      word_to_id_;
  std::vector<std::string> words_;  // learned words, id = base + index
};

}  // namespace deepjoin

#endif  // DEEPJOIN_TEXT_VOCAB_H_
