// fastText-style subword embedder. Substitutes for the pre-trained fastText
// vectors the paper uses for (a) PEXESO's cell metric space and (b) the
// no-fine-tuning embedding baseline.
//
// A word vector is the normalized mean of hashed char-n-gram vectors plus a
// per-word vector. Two training passes are available:
//   * TrainSynonyms: contrastively pulls the members of each synonym group
//     together (the generator exports the lexicon it sampled from), standing
//     in for large-corpus distributional pre-training.
//   * TrainSkipGram: classic skip-gram with negative sampling over token
//     sequences, for users who bring real text.
// Untrained, the embedder already places misspellings near their source
// word because they share most char n-grams — the property PEXESO's
// semantic joins rely on.
#ifndef DEEPJOIN_TEXT_FASTTEXT_H_
#define DEEPJOIN_TEXT_FASTTEXT_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace deepjoin {

struct FastTextConfig {
  int dim = 32;           ///< embedding dimensionality
  int minn = 3;           ///< min char n-gram length
  int maxn = 5;           ///< max char n-gram length
  u64 buckets = 1 << 16;  ///< hashed n-gram table size
  u64 seed = 7;
};

class FastTextEmbedder {
 public:
  explicit FastTextEmbedder(const FastTextConfig& config);

  int dim() const { return config_.dim; }

  /// Embeds a single word: mean of its n-gram vectors + its word vector,
  /// L2-normalized. Deterministic for a fixed config.
  std::vector<float> WordVector(std::string_view word) const;

  /// Embeds a text (e.g., a cell value): normalized mean of word vectors.
  /// Empty/ non-alphanumeric text maps to the zero vector.
  std::vector<float> TextVector(std::string_view text) const;

  /// Appends TextVector(text) into a flat buffer (hot path for PEXESO).
  void TextVectorInto(std::string_view text, float* out) const;

  /// Pulls words within each synonym group toward their group centroid.
  /// `strength` in (0, 1]: 1 collapses a group to its centroid.
  void TrainSynonyms(const std::vector<std::vector<std::string>>& groups,
                     double strength, int epochs);

  /// Skip-gram with negative sampling over token sequences.
  void TrainSkipGram(const std::vector<std::vector<std::string>>& sentences,
                     int window, int negatives, double lr, int epochs,
                     Rng& rng);

 private:
  /// Raw (unnormalized) word vector into `out` (accumulated, not assigned).
  void AccumulateWord(std::string_view word, float* out) const;
  /// Mutable per-word vector, lazily created.
  float* MutableWordVec(const std::string& word);

  FastTextConfig config_;
  std::vector<float> ngram_table_;  // buckets x dim
  std::unordered_map<std::string, std::vector<float>> word_vecs_;
};

/// L2-normalizes `v` in place; leaves the zero vector untouched.
void L2Normalize(float* v, int dim);
/// Euclidean distance between two dim-length vectors.
float L2Distance(const float* a, const float* b, int dim);
/// Dot product.
float Dot(const float* a, const float* b, int dim);

}  // namespace deepjoin

#endif  // DEEPJOIN_TEXT_FASTTEXT_H_
