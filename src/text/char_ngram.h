// Character n-gram extraction with fastText's boundary convention: a word w
// becomes "<w>" before n-grams are taken, so prefixes/suffixes are
// distinguishable from interior substrings.
#ifndef DEEPJOIN_TEXT_CHAR_NGRAM_H_
#define DEEPJOIN_TEXT_CHAR_NGRAM_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/common.h"
#include "util/hash.h"

namespace deepjoin {

/// Appends the char n-grams of `word` for n in [minn, maxn] into `out`,
/// hashed into [0, buckets). The whole word (with boundaries) is always
/// included as one additional feature.
inline void HashedCharNgrams(std::string_view word, int minn, int maxn,
                             u64 buckets, std::vector<u32>* out) {
  std::string bounded = "<" + std::string(word) + ">";
  const int len = static_cast<int>(bounded.size());
  for (int n = minn; n <= maxn; ++n) {
    for (int i = 0; i + n <= len; ++i) {
      std::string_view gram(bounded.data() + i, static_cast<size_t>(n));
      out->push_back(static_cast<u32>(Fnv1a(gram) % buckets));
    }
  }
  out->push_back(static_cast<u32>(Fnv1a(bounded) % buckets));
}

}  // namespace deepjoin

#endif  // DEEPJOIN_TEXT_CHAR_NGRAM_H_
