#include "text/tokenizer.h"

#include <cctype>

namespace deepjoin {

void TokenizeWordsInto(std::string_view text, std::vector<std::string>* out) {
  std::string cur;
  for (unsigned char c : text) {
    if (IsTokenChar(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      out->push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out->push_back(std::move(cur));
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> out;
  TokenizeWordsInto(text, &out);
  return out;
}

size_t CountWords(std::string_view text) {
  size_t n = 0;
  bool in_token = false;
  for (unsigned char c : text) {
    if (IsTokenChar(c)) {
      if (!in_token) {
        ++n;
        in_token = true;
      }
    } else {
      in_token = false;
    }
  }
  return n;
}

}  // namespace deepjoin
