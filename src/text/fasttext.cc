#include "text/fasttext.h"

#include <cmath>
#include <cstring>

#include "text/char_ngram.h"
#include "text/tokenizer.h"
#include "util/hash.h"
#include "util/kernels.h"

namespace deepjoin {

// These three accumulate in single precision through the kernel layer
// (documented change: they used to accumulate in double). Deterministic
// per kernel tier; see util/kernels.h for the reduction orders.

void L2Normalize(float* v, int dim) {
  const float norm = kern::Dot(v, v, dim);
  if (norm <= 0.0f) return;
  kern::ScaleAdd(dim, 1.0f / std::sqrt(norm), v, 0.0f, v);
}

float L2Distance(const float* a, const float* b, int dim) {
  return std::sqrt(kern::SquaredL2(a, b, dim));
}

float Dot(const float* a, const float* b, int dim) {
  return kern::Dot(a, b, dim);
}

FastTextEmbedder::FastTextEmbedder(const FastTextConfig& config)
    : config_(config) {
  DJ_CHECK(config_.dim > 0 && config_.minn >= 1 &&
           config_.maxn >= config_.minn && config_.buckets > 0);
  // The n-gram table is filled with deterministic pseudo-random values so
  // the embedder is usable without any training pass.
  ngram_table_.resize(config_.buckets * static_cast<u64>(config_.dim));
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_.dim));
  for (u64 b = 0; b < config_.buckets; ++b) {
    for (int d = 0; d < config_.dim; ++d) {
      const u64 h = SeededHash(b * 131071ULL + static_cast<u64>(d),
                               config_.seed);
      // Map hash to roughly uniform in [-scale, scale).
      const double u =
          static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
      ngram_table_[b * config_.dim + d] =
          static_cast<float>((2.0 * u - 1.0) * scale);
    }
  }
}

void FastTextEmbedder::AccumulateWord(std::string_view word,
                                      float* out) const {
  std::vector<u32> grams;
  HashedCharNgrams(word, config_.minn, config_.maxn, config_.buckets, &grams);
  const float inv = 1.0f / static_cast<float>(grams.size());
  for (u32 g : grams) {
    const float* row = &ngram_table_[static_cast<u64>(g) * config_.dim];
    for (int d = 0; d < config_.dim; ++d) out[d] += row[d] * inv;
  }
  auto it = word_vecs_.find(std::string(word));
  if (it != word_vecs_.end()) {
    for (int d = 0; d < config_.dim; ++d) out[d] += it->second[d];
  }
}

std::vector<float> FastTextEmbedder::WordVector(std::string_view word) const {
  std::vector<float> v(config_.dim, 0.0f);
  AccumulateWord(word, v.data());
  L2Normalize(v.data(), config_.dim);
  return v;
}

std::vector<float> FastTextEmbedder::TextVector(std::string_view text) const {
  std::vector<float> v(config_.dim, 0.0f);
  TextVectorInto(text, v.data());
  return v;
}

void FastTextEmbedder::TextVectorInto(std::string_view text,
                                      float* out) const {
  std::memset(out, 0, sizeof(float) * static_cast<size_t>(config_.dim));
  std::vector<std::string> words;
  TokenizeWordsInto(text, &words);
  if (words.empty()) return;
  std::vector<float> tmp(config_.dim);
  for (const auto& w : words) {
    std::fill(tmp.begin(), tmp.end(), 0.0f);
    AccumulateWord(w, tmp.data());
    L2Normalize(tmp.data(), config_.dim);
    for (int d = 0; d < config_.dim; ++d) out[d] += tmp[d];
  }
  const float inv = 1.0f / static_cast<float>(words.size());
  for (int d = 0; d < config_.dim; ++d) out[d] *= inv;
  L2Normalize(out, config_.dim);
  // Real distributional embeddings pack short, low-information strings
  // (codes, single tokens) into a tighter region than multi-word text:
  // fewer subwords, less to distinguish them. Reproduce that by scaling
  // the unit vector with the cell's word count, so one fixed matching
  // threshold over-matches short cells and under-matches long ones — the
  // "fixed tau cannot fit all value types" behaviour PEXESO inherits
  // (paper §5.2, Table 7 discussion).
  const float scale = words.size() == 1   ? 0.80f
                      : words.size() == 2 ? 1.00f
                                          : 1.15f;
  for (int d = 0; d < config_.dim; ++d) out[d] *= scale;
}

float* FastTextEmbedder::MutableWordVec(const std::string& word) {
  auto [it, inserted] = word_vecs_.try_emplace(word);
  if (inserted) it->second.assign(config_.dim, 0.0f);
  return it->second.data();
}

void FastTextEmbedder::TrainSynonyms(
    const std::vector<std::vector<std::string>>& groups, double strength,
    int epochs) {
  const int dim = config_.dim;
  std::vector<float> raw(dim), centroid(dim);
  for (int e = 0; e < epochs; ++e) {
    for (const auto& group : groups) {
      if (group.size() < 2) continue;
      // Centroid of the *raw* (pre-normalization) vectors.
      std::fill(centroid.begin(), centroid.end(), 0.0f);
      for (const auto& w : group) {
        std::fill(raw.begin(), raw.end(), 0.0f);
        AccumulateWord(w, raw.data());
        for (int d = 0; d < dim; ++d) centroid[d] += raw[d];
      }
      const float inv = 1.0f / static_cast<float>(group.size());
      for (int d = 0; d < dim; ++d) centroid[d] *= inv;
      // Move each member's word vector toward the centroid.
      for (const auto& w : group) {
        std::fill(raw.begin(), raw.end(), 0.0f);
        AccumulateWord(w, raw.data());
        float* wv = MutableWordVec(w);
        for (int d = 0; d < dim; ++d) {
          wv[d] += static_cast<float>(strength) * (centroid[d] - raw[d]);
        }
      }
    }
  }
}

void FastTextEmbedder::TrainSkipGram(
    const std::vector<std::vector<std::string>>& sentences, int window,
    int negatives, double lr, int epochs, Rng& rng) {
  const int dim = config_.dim;
  // Output ("context") vectors live only for the duration of training.
  std::unordered_map<std::string, std::vector<float>> ctx;
  auto ctx_vec = [&](const std::string& w) -> float* {
    auto [it, inserted] = ctx.try_emplace(w);
    if (inserted) {
      it->second.assign(dim, 0.0f);
      for (auto& x : it->second) {
        x = static_cast<float>(rng.Normal(0.0, 0.5 / dim));
      }
    }
    return it->second.data();
  };
  // Unigram table for negative sampling.
  std::vector<std::string> unigrams;
  for (const auto& s : sentences) {
    for (const auto& w : s) unigrams.push_back(w);
  }
  if (unigrams.empty()) return;

  std::vector<float> in_vec(dim), grad(dim);
  for (int e = 0; e < epochs; ++e) {
    for (const auto& sent : sentences) {
      const int n = static_cast<int>(sent.size());
      for (int i = 0; i < n; ++i) {
        std::fill(in_vec.begin(), in_vec.end(), 0.0f);
        AccumulateWord(sent[i], in_vec.data());
        std::fill(grad.begin(), grad.end(), 0.0f);
        const int lo = std::max(0, i - window);
        const int hi = std::min(n - 1, i + window);
        for (int j = lo; j <= hi; ++j) {
          if (j == i) continue;
          // One positive + `negatives` sampled negatives.
          for (int k = 0; k <= negatives; ++k) {
            const bool positive = (k == 0);
            const std::string& target =
                positive ? sent[j]
                         : unigrams[rng.UniformU64(unigrams.size())];
            float* out = ctx_vec(target);
            const float score = Dot(in_vec.data(), out, dim);
            const float label = positive ? 1.0f : 0.0f;
            const float sigma = 1.0f / (1.0f + std::exp(-score));
            const float g = static_cast<float>(lr) * (label - sigma);
            for (int d = 0; d < dim; ++d) {
              grad[d] += g * out[d];
              out[d] += g * in_vec[d];
            }
          }
        }
        float* wv = MutableWordVec(sent[i]);
        for (int d = 0; d < dim; ++d) wv[d] += grad[d];
      }
    }
  }
}

}  // namespace deepjoin
