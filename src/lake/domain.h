// Latent domain model behind the synthetic data lake. Every cell value is
// the rendering of a latent (domain, entity) pair; semantic joins hinge on
// the fact that one entity can surface as different strings (synonyms,
// typos, format variants) across tables — the misspelling/terminology
// discrepancy the paper motivates semantic joins with ("American Indian &
// Alaska Native" vs "Mainland Indigenous").
//
// Everything is deterministic from the seed: words are procedurally built
// from syllables, so entity surface forms are stable across runs.
#ifndef DEEPJOIN_LAKE_DOMAIN_H_
#define DEEPJOIN_LAKE_DOMAIN_H_

#include <string>
#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace deepjoin {
namespace lake {

/// kAbbrev abbreviates the shared pool word ("brimel soltar" ->
/// "b. soltar"): humans recognise the entity, but the cell's subword
/// vector moves outside typical vector-matching thresholds — the kind of
/// variant a fixed tau misses (the paper's Table-7 phenomenon).
enum class VariantKind { kCanonical, kSynonym, kTypo, kFormat, kAbbrev };

struct DomainConfig {
  int num_domains = 40;
  int entities_per_domain = 1200;
  /// Fraction of word slots that carry synonym groups.
  double synonym_fraction = 0.5;
  /// Every k-th domain is numeric (codes/years/ids) instead of textual.
  int numeric_every = 5;
  u64 seed = 2024;
};

class DomainModel {
 public:
  explicit DomainModel(const DomainConfig& config);

  int num_domains() const { return config_.num_domains; }
  int entities_per_domain() const { return config_.entities_per_domain; }
  bool IsNumericDomain(u32 d) const {
    return config_.numeric_every > 0 &&
           d % static_cast<u32>(config_.numeric_every) ==
               static_cast<u32>(config_.numeric_every) - 1;
  }

  /// Theme word of the domain (used in titles/column names).
  std::string DomainThemeWord(u32 d) const;
  /// A secondary theme word (titles combine two).
  std::string DomainQualifierWord(u32 d) const;

  /// The canonical surface form of an entity (1-2 words, or digits for
  /// numeric domains). Distinct entities always render distinctly.
  std::string CanonicalCell(u32 d, u32 e) const;

  /// Renders an entity under a variant. kSynonym falls back to kTypo when
  /// the entity's unique word has no synonym group (always for numeric
  /// domains). The rng drives which concrete edit is applied.
  std::string RenderCell(u32 d, u32 e, VariantKind kind, Rng& rng) const;

  /// Word-level synonym groups, for pre-training the subword embedder
  /// (stands in for fastText's distributional semantics; DESIGN.md).
  std::vector<std::vector<std::string>> SynonymLexicon() const;

 private:
  /// Deterministic pseudoword for a 64-bit slot key.
  std::string Pseudoword(u64 key, int min_syllables, int max_syllables) const;
  /// The variant-k spelling of word slot `slot` in domain `d`
  /// (k = 0 is the canonical spelling).
  std::string SlotWord(u32 d, u32 slot, int k) const;
  bool SlotHasSynonyms(u32 d, u32 slot) const;
  /// Word slots of an entity: shared "pool" word and unique word.
  u32 PoolSlot(u32 d, u32 e) const;
  u32 UniqueSlot(u32 e) const { return 1000000u + e; }

  std::string ApplyTypo(const std::string& s, Rng& rng) const;
  std::string ApplyFormat(const std::string& s, Rng& rng) const;

  DomainConfig config_;
};

}  // namespace lake
}  // namespace deepjoin

#endif  // DEEPJOIN_LAKE_DOMAIN_H_
