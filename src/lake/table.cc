#include "lake/table.h"

#include <unordered_set>

namespace deepjoin {
namespace lake {

void DeduplicateCells(std::vector<std::string>* cells,
                      std::vector<u32>* entity_ids) {
  std::unordered_set<std::string> seen;
  size_t w = 0;
  const bool has_entities =
      entity_ids != nullptr && entity_ids->size() == cells->size();
  for (size_t r = 0; r < cells->size(); ++r) {
    if (seen.insert((*cells)[r]).second) {
      if (w != r) {
        (*cells)[w] = std::move((*cells)[r]);
        if (has_entities) (*entity_ids)[w] = (*entity_ids)[r];
      }
      ++w;
    }
  }
  cells->resize(w);
  if (has_entities) entity_ids->resize(w);
}

namespace {

Column MakeColumn(const Table& table, const NamedColumn& nc) {
  Column col;
  col.meta.table_title = table.title;
  col.meta.column_name = nc.name;
  col.meta.context = table.context;
  col.cells = nc.cells;
  col.domain_id = nc.domain_id;
  col.entity_ids = nc.entity_ids;
  DeduplicateCells(&col.cells, &col.entity_ids);
  return col;
}

}  // namespace

bool ExtractKeyColumn(const Table& table, size_t min_cells, Column* out) {
  for (const auto& nc : table.columns) {
    if (!nc.is_key) continue;
    Column col = MakeColumn(table, nc);
    if (col.size() < min_cells) return false;
    *out = std::move(col);
    return true;
  }
  return ExtractMaxDistinctColumn(table, min_cells, out);
}

bool ExtractMaxDistinctColumn(const Table& table, size_t min_cells,
                              Column* out) {
  const NamedColumn* best = nullptr;
  size_t best_distinct = 0;
  std::vector<Column> candidates;
  for (const auto& nc : table.columns) {
    std::unordered_set<std::string> distinct(nc.cells.begin(),
                                             nc.cells.end());
    if (distinct.size() > best_distinct) {
      best_distinct = distinct.size();
      best = &nc;
    }
  }
  if (best == nullptr) return false;
  Column col = MakeColumn(table, *best);
  if (col.size() < min_cells) return false;
  *out = std::move(col);
  return true;
}

}  // namespace lake
}  // namespace deepjoin
