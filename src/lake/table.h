// Multi-column tables and the two column-extraction policies of §5.1:
// Webtable takes the metadata-designated key column; Wikitable takes the
// column with the most distinct values.
#ifndef DEEPJOIN_LAKE_TABLE_H_
#define DEEPJOIN_LAKE_TABLE_H_

#include <string>
#include <vector>

#include "lake/column.h"

namespace deepjoin {
namespace lake {

struct NamedColumn {
  std::string name;
  std::vector<std::string> cells;  ///< raw cells, duplicates allowed
  bool is_key = false;             ///< metadata key flag (Webtable corpus)
  u32 domain_id = kNoDomain;
  std::vector<u32> entity_ids;
};

struct Table {
  std::string title;
  std::string context;
  std::vector<NamedColumn> columns;
};

/// Deduplicates `cells` preserving first-occurrence order, keeping the
/// entity annotation aligned.
void DeduplicateCells(std::vector<std::string>* cells,
                      std::vector<u32>* entity_ids);

/// Extracts the metadata key column (Webtable policy). Falls back to the
/// max-distinct policy when no key is flagged. Returns false if the table
/// has no usable column (e.g., all too short after dedup).
bool ExtractKeyColumn(const Table& table, size_t min_cells, Column* out);

/// Extracts the column with the largest number of distinct values
/// (Wikitable policy).
bool ExtractMaxDistinctColumn(const Table& table, size_t min_cells,
                              Column* out);

}  // namespace lake
}  // namespace deepjoin

#endif  // DEEPJOIN_LAKE_TABLE_H_
