#include "lake/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/hash.h"

namespace deepjoin {
namespace lake {

LakeConfig LakeConfig::Webtable(u64 seed) {
  LakeConfig c;
  c.kind = CorpusKind::kWebtable;
  c.seed = seed;
  c.variant_rate = 0.22;
  c.family_size_mu = 3.1;
  c.family_size_sigma = 1.0;
  c.max_cells = 600;
  return c;
}

LakeConfig LakeConfig::Wikitable(u64 seed) {
  LakeConfig c;
  c.kind = CorpusKind::kWikitable;
  c.seed = seed;
  c.variant_rate = 0.12;            // curated data: fewer messy variants
  c.family_size_mu = 2.9;
  c.family_size_sigma = 0.85;
  c.max_cells = 350;
  c.domain.synonym_fraction = 0.6;  // richer terminology variation
  return c;
}

LakeGenerator::LakeGenerator(const LakeConfig& config)
    : config_(config), domains_([&] {
        DomainConfig dc = config.domain;
        dc.seed = HashCombine(config.seed, dc.seed);
        return dc;
      }()) {}

std::vector<u32> LakeGenerator::FamilyEntities(u32 domain,
                                               u32 family) const {
  Rng rng(HashCombine(HashCombine(config_.seed, domain),
                      0xFA31ULL + family));
  const double ln = rng.Normal(config_.family_size_mu,
                               config_.family_size_sigma);
  size_t size = static_cast<size_t>(std::lround(std::exp(ln)));
  size = std::clamp(size, config_.min_cells * 2, config_.max_cells);

  // Zipfian draw over the domain's entities: head entities recur across
  // families, tail entities are family-specific.
  const size_t universe =
      static_cast<size_t>(domains_.entities_per_domain());
  ZipfSampler zipf(universe, 1.0);
  std::unordered_set<u32> chosen;
  std::vector<u32> entities;
  entities.reserve(size);
  size_t attempts = 0;
  while (entities.size() < size && attempts < size * 30) {
    ++attempts;
    const u32 e = static_cast<u32>(zipf.Sample(rng));
    if (chosen.insert(e).second) entities.push_back(e);
  }
  return entities;
}

Table LakeGenerator::MakeTable(u32 domain, u32 family, Rng& rng) const {
  const bool webtable = config_.kind == CorpusKind::kWebtable;
  Table table;

  // --- key column: subsample the family, render cells ---
  std::vector<u32> base = FamilyEntities(domain, family);
  const double keep =
      rng.UniformDouble(config_.keep_lo, config_.keep_hi);
  std::vector<u32> entities;
  for (u32 e : base) {
    if (rng.Bernoulli(keep)) entities.push_back(e);
  }
  // Stray entities from outside the family dilute the overlap.
  const size_t strays = static_cast<size_t>(
      std::lround(static_cast<double>(entities.size()) * config_.stray_rate));
  std::unordered_set<u32> seen(entities.begin(), entities.end());
  const size_t universe =
      static_cast<size_t>(domains_.entities_per_domain());
  for (size_t s = 0; s < strays; ++s) {
    const u32 e = static_cast<u32>(rng.UniformU64(universe));
    if (seen.insert(e).second) entities.push_back(e);
  }
  // Cells appear in (approximate) frequency order: head entities first.
  // This is the "original order follows some distribution" the paper's
  // shuffle-ablation discusses — shuffling destroys it.
  std::sort(entities.begin(), entities.end());

  NamedColumn key;
  key.is_key = true;
  key.domain_id = domain;
  const std::string theme = domains_.DomainThemeWord(domain);
  key.name = theme + (domains_.IsNumericDomain(domain) ? " code" : " name");
  // Column-level cleanliness: curated tables are fully canonical, messy
  // ones carry a doubled per-cell variant rate.
  const double cell_variant_rate =
      rng.Bernoulli(config_.clean_column_rate)
          ? 0.0
          : config_.variant_rate / std::max(0.01, 1.0 - config_.clean_column_rate);
  for (u32 e : entities) {
    VariantKind kind = VariantKind::kCanonical;
    if (rng.Bernoulli(cell_variant_rate)) {
      const double u = rng.UniformDouble();
      kind = u < 0.32   ? VariantKind::kSynonym
             : u < 0.56 ? VariantKind::kTypo
             : u < 0.78 ? VariantKind::kFormat
                        : VariantKind::kAbbrev;
    }
    key.cells.push_back(domains_.RenderCell(domain, e, kind, rng));
    key.entity_ids.push_back(e);
  }

  // --- distractor columns so extraction has work to do ---
  NamedColumn rank_col;
  rank_col.name = "rank";
  for (size_t i = 0; i < key.cells.size(); ++i) {
    // Low-cardinality buckets: never wins the max-distinct policy.
    rank_col.cells.push_back(std::to_string(1 + (i % 7)));
  }
  NamedColumn attr_col;
  const u32 attr_domain =
      (domain + 1) % static_cast<u32>(domains_.num_domains());
  attr_col.name = domains_.DomainThemeWord(attr_domain) + " ref";
  attr_col.domain_id = attr_domain;
  for (size_t i = 0; i < key.cells.size(); ++i) {
    // Repeats shrink distinct count below the key column's.
    const u32 e = static_cast<u32>(rng.UniformU64(
        std::max<size_t>(1, key.cells.size() / 2)));
    attr_col.cells.push_back(domains_.CanonicalCell(attr_domain, e));
    attr_col.entity_ids.push_back(e);
  }

  // --- metadata ---
  const std::string qualifier = domains_.DomainQualifierWord(domain);
  if (webtable) {
    table.title = theme + " " + qualifier + " table " +
                  std::to_string(family);
    table.context = "source page about " + theme + " " + qualifier +
                    " with ads and navigation extras item " +
                    std::to_string(rng.UniformU64(1000));
  } else {
    table.title = "list of " + theme + " " + qualifier;
    table.context = "wiki article section " + qualifier + " references " +
                    std::to_string(rng.UniformU64(100));
  }

  table.columns.push_back(std::move(rank_col));
  table.columns.push_back(std::move(key));
  table.columns.push_back(std::move(attr_col));
  return table;
}

bool LakeGenerator::DrawColumn(Rng& rng, Column* out) const {
  const u32 num_domains = static_cast<u32>(domains_.num_domains());
  // Zipfian domain popularity: a few domains dominate the lake.
  ZipfSampler domain_zipf(num_domains, config_.domain_zipf_s);
  const u32 domain = static_cast<u32>(domain_zipf.Sample(rng));
  const u32 family =
      static_cast<u32>(rng.UniformU64(config_.families_per_domain));
  Table table = MakeTable(domain, family, rng);
  const bool ok =
      config_.kind == CorpusKind::kWebtable
          ? ExtractKeyColumn(table, config_.min_cells, out)
          : ExtractMaxDistinctColumn(table, config_.min_cells, out);
  if (!ok) return false;
  if (out->size() > config_.max_cells) {
    out->cells.resize(config_.max_cells);
    out->entity_ids.resize(config_.max_cells);
  }
  return true;
}

Repository LakeGenerator::GenerateRepository(size_t num_columns) {
  Repository repo;
  Rng rng(HashCombine(config_.seed, 0x4EB0ULL));
  size_t attempts = 0;
  while (repo.size() < num_columns && attempts < num_columns * 20) {
    ++attempts;
    Column col;
    if (DrawColumn(rng, &col)) repo.Add(std::move(col));
  }
  DJ_CHECK_MSG(repo.size() == num_columns,
               "generator failed to fill the repository");
  return repo;
}

Repository LakeGenerator::GenerateRepositoryInSizeRange(size_t num_columns,
                                                        size_t lo, size_t hi,
                                                        u64 salt) {
  Repository repo;
  Rng rng(HashCombine(config_.seed, salt));
  size_t attempts = 0;
  while (repo.size() < num_columns && attempts < num_columns * 3000) {
    ++attempts;
    Column col;
    if (DrawColumn(rng, &col) && col.size() >= lo && col.size() <= hi) {
      repo.Add(std::move(col));
    }
  }
  return repo;
}

std::vector<Column> LakeGenerator::GenerateQueries(size_t n, u64 salt) {
  std::vector<Column> queries;
  Rng rng(HashCombine(config_.seed, salt));
  size_t attempts = 0;
  while (queries.size() < n && attempts < n * 50) {
    ++attempts;
    Column col;
    if (DrawColumn(rng, &col)) {
      col.id = static_cast<u32>(queries.size());
      queries.push_back(std::move(col));
    }
  }
  return queries;
}

std::vector<Column> LakeGenerator::GenerateQueriesInSizeRange(size_t n,
                                                              size_t lo,
                                                              size_t hi,
                                                              u64 salt) {
  std::vector<Column> queries;
  Rng rng(HashCombine(config_.seed, salt));
  size_t attempts = 0;
  while (queries.size() < n && attempts < n * 3000) {
    ++attempts;
    Column col;
    if (DrawColumn(rng, &col) && col.size() >= lo && col.size() <= hi) {
      col.id = static_cast<u32>(queries.size());
      queries.push_back(std::move(col));
    }
  }
  return queries;
}

}  // namespace lake
}  // namespace deepjoin
