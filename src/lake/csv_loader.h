// CSV ingestion: build a column repository from real tables on disk, the
// path a downstream user takes instead of the synthetic generator. One CSV
// file = one table; the first row is the header (column names); the file
// name (minus extension, underscores to spaces) is the table title. A
// sidecar "<name>.context" file, when present, supplies the table context
// used by the *-context transforms.
#ifndef DEEPJOIN_LAKE_CSV_LOADER_H_
#define DEEPJOIN_LAKE_CSV_LOADER_H_

#include <string>
#include <vector>

#include "lake/column.h"
#include "lake/table.h"
#include "util/status.h"

namespace deepjoin {
namespace lake {

/// RFC-4180-flavoured CSV parsing: quoted fields, embedded commas,
/// doubled quotes, CR/LF line endings. Exposed for tests. The two-arg
/// overload reports a field whose opening quote is never closed (the line
/// ends mid-quote) via `unterminated`.
std::vector<std::string> ParseCsvLine(const std::string& line);
std::vector<std::string> ParseCsvLine(const std::string& line,
                                      bool* unterminated);

/// Reads one CSV file into a Table. Ragged rows are padded with empty
/// cells; empty cells are dropped later by extraction's dedup+min-size.
/// A UTF-8 byte-order mark before the first header cell is stripped; a
/// line with an unterminated quoted field makes the whole file
/// InvalidArgument (LoadCsvDirectory then reports it as skipped).
Result<Table> LoadCsvTable(const std::string& path);

enum class ExtractionPolicy { kKeyColumn, kMaxDistinct, kAllColumns };

struct CsvLoadOptions {
  ExtractionPolicy policy = ExtractionPolicy::kMaxDistinct;
  size_t min_cells = 5;  ///< paper §5.1: drop columns shorter than 5
};

/// Loads every `.csv` under `directory` (non-recursive) and extracts
/// columns into a repository. Files that fail to parse are skipped and
/// reported in `skipped` when non-null.
Result<Repository> LoadCsvDirectory(const std::string& directory,
                                    const CsvLoadOptions& options,
                                    std::vector<std::string>* skipped = nullptr);

/// Extracts columns from an in-memory table under a policy (kAllColumns
/// keeps every column that survives the min-size filter).
std::vector<Column> ExtractColumns(const Table& table,
                                   const CsvLoadOptions& options);

}  // namespace lake
}  // namespace deepjoin

#endif  // DEEPJOIN_LAKE_CSV_LOADER_H_
