// Column and repository model. A data lake's tables are reduced to a
// repository of extracted columns (paper §2.1): each column keeps its cell
// values (distinct, in original order), the metadata the column-to-text
// transforms consume, and the latent generator annotations used by the
// expert-label oracle (never by any search method).
#ifndef DEEPJOIN_LAKE_COLUMN_H_
#define DEEPJOIN_LAKE_COLUMN_H_

#include <string>
#include <vector>

#include "util/common.h"

namespace deepjoin {
namespace lake {

constexpr u32 kNoDomain = 0xffffffffu;

struct ColumnMeta {
  std::string table_title;
  std::string column_name;
  std::string context;  ///< accompanying table description
};

struct Column {
  u32 id = 0;
  ColumnMeta meta;
  /// Distinct cell values in their original order (columns are modeled as
  /// sets for equi-joins, Definition 2.1).
  std::vector<std::string> cells;

  // --- latent generator annotations (oracle-only; see eval/oracle.h) ---
  u32 domain_id = kNoDomain;
  /// Latent entity id of each cell, aligned with `cells`.
  std::vector<u32> entity_ids;

  size_t size() const { return cells.size(); }
};

/// The searchable repository X of target columns.
class Repository {
 public:
  /// Adds a column, assigning its id. Returns the id.
  u32 Add(Column column) {
    column.id = static_cast<u32>(columns_.size());
    columns_.push_back(std::move(column));
    return columns_.back().id;
  }

  const Column& column(u32 id) const { return columns_[id]; }
  Column& mutable_column(u32 id) { return columns_[id]; }
  size_t size() const { return columns_.size(); }
  const std::vector<Column>& columns() const { return columns_; }

  struct Stats {
    size_t num_columns = 0;
    size_t max_size = 0;
    size_t min_size = 0;
    double avg_size = 0.0;
  };
  Stats ComputeStats() const {
    Stats s;
    s.num_columns = columns_.size();
    if (columns_.empty()) return s;
    s.min_size = columns_[0].size();
    double total = 0.0;
    for (const auto& c : columns_) {
      s.max_size = std::max(s.max_size, c.size());
      s.min_size = std::min(s.min_size, c.size());
      total += static_cast<double>(c.size());
    }
    s.avg_size = total / static_cast<double>(columns_.size());
    return s;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace lake
}  // namespace deepjoin

#endif  // DEEPJOIN_LAKE_COLUMN_H_
