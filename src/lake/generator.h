// Synthetic data-lake generator producing the two corpus profiles of §5.1
// (Webtable / Wikitable) at configurable scale. See DESIGN.md for why this
// substitutes for the WDC/Wikipedia corpora.
//
// Columns are organised in "families": a family is a latent entity set;
// every column of the family subsamples it (plus a few strays), so
// same-family columns have high joinability while same-domain,
// cross-family columns have moderate joinability — the spectrum the top-k
// experiments need. Queries are drawn from the same families but are
// fresh draws, never members of the repository (avoiding the data leak the
// paper guards against).
#ifndef DEEPJOIN_LAKE_GENERATOR_H_
#define DEEPJOIN_LAKE_GENERATOR_H_

#include <string>
#include <vector>

#include "lake/column.h"
#include "lake/domain.h"
#include "lake/table.h"
#include "util/rng.h"

namespace deepjoin {
namespace lake {

enum class CorpusKind { kWebtable, kWikitable };

struct LakeConfig {
  CorpusKind kind = CorpusKind::kWebtable;
  u64 seed = 1;

  DomainConfig domain;

  int families_per_domain = 5;
  /// Zipf skew of domain popularity (higher = fewer domains dominate, so
  /// same-family column collisions — joinable pairs — are common).
  double domain_zipf_s = 1.0;
  /// Family base-set size distribution: lognormal(mu, sigma), clamped.
  double family_size_mu = 3.0;     // median ~ e^3 ≈ 20 cells
  double family_size_sigma = 0.9;
  size_t min_cells = 5;    ///< columns shorter than this are dropped (§5.1)
  size_t max_cells = 500;

  /// Corpus-average per-cell probability of rendering a semantic variant
  /// instead of the canonical form. Half the columns are "clean" (fully
  /// canonical, as curated tables are); messy columns use twice this rate.
  double variant_rate = 0.22;
  double clean_column_rate = 0.5;
  /// Fraction of the family base a column keeps: U(keep_lo, keep_hi).
  double keep_lo = 0.72;
  double keep_hi = 0.98;
  /// Stray entities (same domain, outside the family), as fraction of size.
  double stray_rate = 0.08;

  static LakeConfig Webtable(u64 seed = 1);
  static LakeConfig Wikitable(u64 seed = 2);
};

class LakeGenerator {
 public:
  explicit LakeGenerator(const LakeConfig& config);

  const LakeConfig& config() const { return config_; }
  const DomainModel& domains() const { return domains_; }

  /// Generates `num_columns` extracted columns (the repository X). Tables
  /// are generated with distractor columns and run through the profile's
  /// extraction policy, exercising the §5.1 pipeline.
  Repository GenerateRepository(size_t num_columns);

  /// Like GenerateRepository but keeps only columns whose size falls in
  /// [lo, hi] (the column-size strata of Tables 8 and 15).
  Repository GenerateRepositoryInSizeRange(size_t num_columns, size_t lo,
                                           size_t hi, u64 salt = 0x517E);

  /// Generates fresh query columns from the same distribution. Pass a
  /// distinct `salt` per workload to decorrelate from the repository.
  std::vector<Column> GenerateQueries(size_t n, u64 salt = 0xABCD);

  /// Queries whose size falls in [lo, hi] (for Tables 8 and 15). Keeps
  /// drawing until `n` matching queries are found.
  std::vector<Column> GenerateQueriesInSizeRange(size_t n, size_t lo,
                                                 size_t hi,
                                                 u64 salt = 0xDCBA);

  /// The word-level synonym lexicon (to pre-train the subword embedder).
  std::vector<std::vector<std::string>> SynonymLexicon() const {
    return domains_.SynonymLexicon();
  }

 private:
  /// Latent entity list of family (domain, f), deterministic.
  std::vector<u32> FamilyEntities(u32 domain, u32 family) const;
  /// Builds one table whose key column comes from (domain, family).
  Table MakeTable(u32 domain, u32 family, Rng& rng) const;
  /// One extracted column; returns false when the draw is unusable.
  bool DrawColumn(Rng& rng, Column* out) const;

  LakeConfig config_;
  DomainModel domains_;
};

}  // namespace lake
}  // namespace deepjoin

#endif  // DEEPJOIN_LAKE_GENERATOR_H_
