#include "lake/domain.h"

#include <array>
#include <cctype>

#include "util/hash.h"

namespace deepjoin {
namespace lake {

namespace {

constexpr std::array<const char*, 20> kOnsets = {
    "b", "br", "c", "ch", "d", "f", "g", "gr", "k", "l",
    "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v"};
constexpr std::array<const char*, 10> kVowels = {
    "a", "e", "i", "o", "u", "ai", "ea", "io", "ou", "ar"};
constexpr std::array<const char*, 8> kCodas = {"", "n", "l", "s",
                                               "r", "m", "t", "x"};

}  // namespace

DomainModel::DomainModel(const DomainConfig& config) : config_(config) {
  DJ_CHECK(config_.num_domains > 0 && config_.entities_per_domain > 0);
}

std::string DomainModel::Pseudoword(u64 key, int min_syllables,
                                    int max_syllables) const {
  u64 h = Mix64(key ^ Mix64(config_.seed));
  const int span = max_syllables - min_syllables + 1;
  const int syllables = min_syllables + static_cast<int>(h % span);
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    h = Mix64(h + 0x9e3779b97f4a7c15ULL);
    word += kOnsets[h % kOnsets.size()];
    h = Mix64(h + 1);
    word += kVowels[h % kVowels.size()];
    if (s + 1 == syllables) {
      h = Mix64(h + 2);
      word += kCodas[h % kCodas.size()];
    }
  }
  return word;
}

std::string DomainModel::DomainThemeWord(u32 d) const {
  return Pseudoword(HashCombine(0xD0D0, d), 2, 3);
}

std::string DomainModel::DomainQualifierWord(u32 d) const {
  return Pseudoword(HashCombine(0xBEEF, d), 2, 2);
}

std::string DomainModel::SlotWord(u32 d, u32 slot, int k) const {
  const u64 key = HashCombine(HashCombine(d, slot),
                              0x50A7ULL + static_cast<u64>(k) * 0x1111ULL);
  return Pseudoword(key, 2, 3);
}

bool DomainModel::SlotHasSynonyms(u32 d, u32 slot) const {
  const u64 h = Mix64(HashCombine(HashCombine(d, slot), 0x5E11ULL) ^
                      config_.seed);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.synonym_fraction;
}

u32 DomainModel::PoolSlot(u32 d, u32 e) const {
  // ~60 shared "pool" words per domain; many entities share a pool word,
  // giving columns a realistic token-frequency skew.
  return static_cast<u32>(Mix64(HashCombine(HashCombine(d, e), 0x9001ULL)) %
                          60);
}

std::string DomainModel::CanonicalCell(u32 d, u32 e) const {
  if (IsNumericDomain(d)) {
    // Stable 5-7 digit code unique per (domain, entity).
    const u64 h = Mix64(HashCombine(HashCombine(d, e), 0x4242ULL) ^
                        config_.seed);
    const u64 base = 10000 + (static_cast<u64>(d) % 90) * 100000;
    return std::to_string(base + h % 99991 + static_cast<u64>(e));
  }
  return SlotWord(d, PoolSlot(d, e), 0) + " " + SlotWord(d, UniqueSlot(e), 0);
}

std::string DomainModel::ApplyTypo(const std::string& s, Rng& rng) const {
  if (s.size() < 3) return s + "x";
  std::string out = s;
  const size_t pos = 1 + rng.UniformU64(out.size() - 2);
  switch (rng.UniformU64(4)) {
    case 0:  // transpose adjacent
      std::swap(out[pos], out[pos - 1]);
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // duplicate
      out.insert(pos, 1, out[pos]);
      break;
    default: {  // replace with a nearby letter
      char c = out[pos];
      if (c >= 'a' && c < 'z') {
        ++c;
      } else if (c > '0' && c <= '9') {
        --c;
      } else {
        c = 'e';
      }
      out[pos] = c;
      break;
    }
  }
  return out;
}

std::string DomainModel::ApplyFormat(const std::string& s, Rng& rng) const {
  std::string out = s;
  switch (rng.UniformU64(4)) {
    case 0:  // UPPERCASE
      for (auto& c : out) {
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      break;
    case 1:  // Capitalize Words
      for (size_t i = 0; i < out.size(); ++i) {
        if (i == 0 || out[i - 1] == ' ') {
          out[i] =
              static_cast<char>(std::toupper(static_cast<unsigned char>(out[i])));
        }
      }
      break;
    case 2:  // hyphenate
      for (auto& c : out) {
        if (c == ' ') c = '-';
      }
      break;
    default: {  // "last, first" reorder (or suffix when single-word)
      const auto sp = out.find(' ');
      if (sp != std::string::npos) {
        out = out.substr(sp + 1) + ", " + out.substr(0, sp);
      } else {
        out += " co";
      }
      break;
    }
  }
  return out;
}

std::string DomainModel::RenderCell(u32 d, u32 e, VariantKind kind,
                                    Rng& rng) const {
  // The caller's rng only picks WHICH of an entity's (few) recurring
  // variants to use; the variant's spelling itself is deterministic per
  // (domain, entity, kind, slot). Real lakes behave this way: the same
  // misspelling or format of a value recurs across many tables, so
  // variants can still equi-match each other.
  const u64 slot = rng.UniformU64(2);
  Rng det(Mix64(HashCombine(
      HashCombine(HashCombine(d, e), static_cast<u64>(kind) * 0x51D7ULL),
      slot ^ config_.seed)));
  switch (kind) {
    case VariantKind::kCanonical:
      return CanonicalCell(d, e);
    case VariantKind::kTypo:
      return ApplyTypo(CanonicalCell(d, e), det);
    case VariantKind::kFormat:
      return ApplyFormat(CanonicalCell(d, e), det);
    case VariantKind::kAbbrev: {
      if (IsNumericDomain(d)) return ApplyTypo(CanonicalCell(d, e), det);
      const std::string canonical = CanonicalCell(d, e);
      const auto sp = canonical.find(' ');
      if (sp == std::string::npos || sp == 0) {
        return ApplyTypo(canonical, det);
      }
      // Abbreviate the leading (pool) word; the unique word remains.
      return canonical.substr(0, 1) + ". " + canonical.substr(sp + 1);
    }
    case VariantKind::kSynonym: {
      if (IsNumericDomain(d)) return ApplyTypo(CanonicalCell(d, e), det);
      const u32 uslot = UniqueSlot(e);
      if (!SlotHasSynonyms(d, uslot)) {
        return ApplyTypo(CanonicalCell(d, e), det);
      }
      // Swap the unique word for one of its two synonym spellings.
      const int k = 1 + static_cast<int>(slot);
      return SlotWord(d, PoolSlot(d, e), 0) + " " + SlotWord(d, uslot, k);
    }
  }
  return CanonicalCell(d, e);
}

std::vector<std::vector<std::string>> DomainModel::SynonymLexicon() const {
  std::vector<std::vector<std::string>> groups;
  for (u32 d = 0; d < static_cast<u32>(config_.num_domains); ++d) {
    if (IsNumericDomain(d)) continue;
    for (u32 e = 0; e < static_cast<u32>(config_.entities_per_domain); ++e) {
      const u32 uslot = UniqueSlot(e);
      if (!SlotHasSynonyms(d, uslot)) continue;
      groups.push_back(
          {SlotWord(d, uslot, 0), SlotWord(d, uslot, 1), SlotWord(d, uslot, 2)});
    }
  }
  return groups;
}

}  // namespace lake
}  // namespace deepjoin
