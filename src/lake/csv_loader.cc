#include "lake/csv_loader.h"

#include <algorithm>
#include <filesystem>

#include "util/env.h"
#include "util/string_util.h"

namespace deepjoin {
namespace lake {

std::vector<std::string> ParseCsvLine(const std::string& line,
                                      bool* unterminated) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');  // escaped quote
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // swallow CR from CRLF endings
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  if (unterminated != nullptr) *unterminated = quoted;
  return fields;
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  return ParseCsvLine(line, nullptr);
}

namespace {

std::string TitleFromPath(const std::filesystem::path& path) {
  std::string stem = path.stem().string();
  for (auto& c : stem) {
    if (c == '_' || c == '-') c = ' ';
  }
  return stem;
}

std::string ReadSidecarContext(const std::filesystem::path& csv_path) {
  std::filesystem::path ctx = csv_path;
  ctx.replace_extension(".context");
  std::string text;
  if (!ReadFileToString(Env::Default(), ctx.string(), &text).ok()) return "";
  return std::string(StripWhitespace(text));
}

/// Splits `contents` into the next '\n'-terminated line starting at `*pos`.
bool NextLine(const std::string& contents, size_t* pos, std::string* line) {
  if (*pos >= contents.size()) return false;
  const size_t nl = contents.find('\n', *pos);
  if (nl == std::string::npos) {
    line->assign(contents, *pos, contents.size() - *pos);
    *pos = contents.size();
  } else {
    line->assign(contents, *pos, nl - *pos);
    *pos = nl + 1;
  }
  return true;
}

}  // namespace

Result<Table> LoadCsvTable(const std::string& path) {
  std::string contents;
  Status read = ReadFileToString(Env::Default(), path, &contents);
  if (!read.ok()) return read;

  Table table;
  const std::filesystem::path fs_path(path);
  table.title = TitleFromPath(fs_path);
  table.context = ReadSidecarContext(fs_path);

  size_t pos = 0;
  std::string line;
  if (!NextLine(contents, &pos, &line)) {
    return Status::InvalidArgument(path + ": empty file");
  }
  // Strip a UTF-8 byte-order mark so the first column name is clean (and a
  // BOM before an opening quote does not derail the parser).
  if (line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
  bool unterminated = false;
  const auto header = ParseCsvLine(line, &unterminated);
  if (unterminated) {
    return Status::InvalidArgument(path + ": unterminated quoted field");
  }
  if (header.empty()) {
    return Status::InvalidArgument(path + ": empty header");
  }
  table.columns.resize(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    table.columns[c].name = std::string(StripWhitespace(header[c]));
  }

  while (NextLine(contents, &pos, &line)) {
    if (StripWhitespace(line).empty()) continue;
    auto row = ParseCsvLine(line, &unterminated);
    if (unterminated) {
      return Status::InvalidArgument(path + ": unterminated quoted field");
    }
    row.resize(header.size());  // pad / truncate ragged rows
    for (size_t c = 0; c < header.size(); ++c) {
      table.columns[c].cells.push_back(
          std::string(StripWhitespace(row[c])));
    }
  }
  return table;
}

std::vector<Column> ExtractColumns(const Table& table,
                                   const CsvLoadOptions& options) {
  std::vector<Column> out;
  if (options.policy == ExtractionPolicy::kAllColumns) {
    for (const auto& nc : table.columns) {
      Column col;
      col.meta.table_title = table.title;
      col.meta.column_name = nc.name;
      col.meta.context = table.context;
      col.cells = nc.cells;
      // Drop empty cells before dedup (missing values never join).
      col.cells.erase(std::remove(col.cells.begin(), col.cells.end(), ""),
                      col.cells.end());
      DeduplicateCells(&col.cells, nullptr);
      if (col.size() >= options.min_cells) out.push_back(std::move(col));
    }
    return out;
  }
  Column col;
  const bool ok = options.policy == ExtractionPolicy::kKeyColumn
                      ? ExtractKeyColumn(table, options.min_cells, &col)
                      : ExtractMaxDistinctColumn(table, options.min_cells,
                                                 &col);
  if (ok) {
    col.cells.erase(std::remove(col.cells.begin(), col.cells.end(), ""),
                    col.cells.end());
    if (col.size() >= options.min_cells) out.push_back(std::move(col));
  }
  return out;
}

Result<Repository> LoadCsvDirectory(const std::string& directory,
                                    const CsvLoadOptions& options,
                                    std::vector<std::string>* skipped) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::NotFound(directory + " is not a directory");
  }
  // Deterministic order: sort paths.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  Repository repo;
  for (const auto& path : files) {
    auto table = LoadCsvTable(path.string());
    if (!table.ok()) {
      if (skipped != nullptr) skipped->push_back(path.string());
      continue;
    }
    for (auto& col : ExtractColumns(*table, options)) {
      repo.Add(std::move(col));
    }
  }
  return repo;
}

}  // namespace lake
}  // namespace deepjoin
