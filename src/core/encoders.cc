#include "core/encoders.h"

#include "text/tokenizer.h"
#include "util/trace.h"

namespace deepjoin {
namespace core {

PlmColumnEncoder::PlmColumnEncoder(const PlmEncoderConfig& config,
                                   const std::vector<lake::Column>& vocab_corpus,
                                   const FastTextEmbedder& pretrained)
    : config_(config),
      vocab_(static_cast<size_t>(config.max_words),
             static_cast<size_t>(config.oov_buckets)) {
  // Vocabulary from the training sample's transformed texts.
  for (const auto& col : vocab_corpus) {
    vocab_.Observe(TokenizeWords(TransformColumn(col, config_.transform)));
  }
  vocab_.Finalize();
  BuildTransformer();

  // Pre-training substitute: learned-word embeddings start at their
  // subword vectors (scaled into the init distribution's range).
  const auto& words = vocab_.learned_words();
  for (size_t i = 0; i < words.size(); ++i) {
    std::vector<float> v = pretrained.WordVector(words[i]);
    for (auto& x : v) x *= 0.5f;
    encoder_->InitTokenEmbedding(vocab_.word_base() + static_cast<u32>(i), v);
  }
}

PlmColumnEncoder::PlmColumnEncoder(const PlmEncoderConfig& config,
                                   Vocab vocab)
    : config_(config), vocab_(std::move(vocab)) {
  DJ_CHECK_MSG(vocab_.finalized(), "loaded vocab must be finalized");
  BuildTransformer();
}

void PlmColumnEncoder::BuildTransformer() {
  nn::TransformerConfig tc;
  tc.vocab_size = static_cast<int>(vocab_.size());
  tc.max_seq_len = config_.max_seq_len;
  tc.seed = config_.seed;
  if (config_.kind == PlmKind::kDistilSim) {
    tc.position_mode = nn::PositionMode::kAbsolute;
    tc.d_model = 48;
    tc.d_ff = 192;
    tc.num_layers = 2;
    tc.num_heads = 4;
  } else {
    // The "larger, better-position-modeling" PLM of the pair.
    tc.position_mode = nn::PositionMode::kRelativeBias;
    tc.d_model = 64;
    tc.d_ff = 256;
    tc.num_layers = 2;
    tc.num_heads = 4;
    tc.rel_radius = 8;
  }
  encoder_ = std::make_unique<nn::TransformerEncoder>(tc);
}

std::vector<u32> PlmColumnEncoder::ColumnToIds(
    const lake::Column& column) const {
  std::vector<u32> ids;
  ColumnToIdsInto(column, &ids);
  return ids;
}

void PlmColumnEncoder::ColumnToIdsInto(const lake::Column& column,
                                       std::vector<u32>* ids) const {
  struct Scratch {
    TransformScratch transform;
    std::string text;   // transformed column text
    std::string token;  // current token (ForEachTokenLower)
  };
  // Per-thread: EncodeInto runs concurrently (see the ColumnEncoder
  // contract), and every buffer reuses capacity across calls, so the
  // steady state performs no allocation.
  thread_local Scratch tls;
  TransformColumnInto(column, config_.transform, &tls.transform, &tls.text);
  ids->clear();
  // Capacity-reusing output buffer: growth is warmup-only.
  ids->push_back(Vocab::kClsId);  // dj_alloc: allow(alloc)
  ForEachTokenLower(tls.text, &tls.token, [&](std::string_view t) {
    ids->push_back(vocab_.Encode(t));  // dj_alloc: allow(alloc) -- see above
  });
  if (metrics::Enabled()) {
    // Function-local statics: the registry lookups allocate once per
    // process, before the steady state the noalloc contract covers.
    static metrics::Counter* const tokens_total =
        metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
            "dj_encoder_tokens_total");
    static metrics::Counter* const columns_total =
        metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
            "dj_encoder_columns_total");
    tokens_total->Add(ids->size());
    columns_total->Increment();
  }
  // No-op unless a per-query TraceCollector is installed (see the
  // suppression inside trace::Count).
  trace::Count("encoder.tokens", ids->size());
}

std::vector<float> PlmColumnEncoder::Encode(const lake::Column& column) {
  return encoder_->EncodeToVector(ColumnToIds(column));
}

void PlmColumnEncoder::EncodeInto(const lake::Column& column, float* out) {
  // Reused id buffer: the whole encode then runs on warm scratch.
  thread_local std::vector<u32> ids;  // dj_alloc: allow(alloc)
  ColumnToIdsInto(column, &ids);
  encoder_->EncodeToVector(ids, out);
}

nn::VarPtr PlmColumnEncoder::EncodeForTraining(const lake::Column& column) {
  return encoder_->Encode(ColumnToIds(column));
}

nn::VarPtr PlmColumnEncoder::EncodeTextForTraining(const std::string& text) {
  std::vector<std::string> tokens;
  TokenizeWordsInto(text, &tokens);
  std::vector<u32> ids;
  ids.reserve(tokens.size() + 1);
  ids.push_back(Vocab::kClsId);
  for (const auto& t : tokens) ids.push_back(vocab_.Encode(t));
  return encoder_->Encode(ids);
}

std::vector<float> FastTextColumnEncoder::Encode(const lake::Column& column) {
  return embedder_->TextVector(TransformColumn(column, transform_));
}

}  // namespace core
}  // namespace deepjoin
