// Fine-tuning (paper §4): metric learning with in-batch negatives under
// the Multiple Negatives Ranking loss, AdamW, and warmup + linear decay.
// Also hosts the trainers for the MLP baseline (joinability regression)
// and the TaBERT-style baseline (pre-trained on a mismatched objective).
#ifndef DEEPJOIN_CORE_TRAINER_H_
#define DEEPJOIN_CORE_TRAINER_H_

#include <string>

#include "core/encoders.h"
#include "core/training_data.h"
#include "util/env.h"
#include "util/status.h"

namespace deepjoin {
namespace core {

enum class NegativeStrategy {
  kInBatch,          ///< paper's default: reuse the batch's other Y's
  kRemovedOverlap,   ///< ablation: add Y-with-matching-cells-removed
};

struct FineTuneConfig {
  int batch_size = 32;       // paper §5.1
  int max_steps = 140;       // scaled (paper trains far longer on GPUs)
  double lr = 4e-4;          // scaled for the small model (paper: 2e-5)
  double warmup_frac = 0.1;  // paper: 10000 warmup steps out of the run
  double weight_decay = 0.01;
  float cosine_scale = 20.0f;  // sentence-transformers' MNR scale
  NegativeStrategy negatives = NegativeStrategy::kInBatch;
  u64 seed = 5;
  bool verbose = false;

  // --- Checkpointing (FineTunePlm only) ---------------------------------
  // When checkpoint_every > 0 and checkpoint_path is set, an atomic
  // checkpoint (parameters, AdamW moments, RNG state, shuffle order,
  // step) is written every checkpoint_every steps. With resume = true an
  // existing checkpoint at checkpoint_path is loaded first and training
  // continues from the saved step; the resumed loss trajectory is
  // bit-identical to an uninterrupted run with the same seed.
  int checkpoint_every = 0;     ///< steps between checkpoints; 0 disables
  std::string checkpoint_path;  ///< where checkpoints live
  bool resume = false;          ///< load checkpoint_path before training
  long stop_after_step = -1;    ///< test hook: simulate a crash after step N
  Env* env = nullptr;           ///< filesystem, nullptr → Env::Default()
};

struct TrainStats {
  double first_loss = 0.0;
  double final_loss = 0.0;
  long steps = 0;
  double seconds = 0.0;
};

/// Fine-tunes the PLM column encoder on the prepared positives. Fails only
/// on checkpoint I/O problems: a failed checkpoint save (disk full, fsync
/// error) or an unreadable / corrupt / mismatched checkpoint on resume.
/// Checkpoint writes are atomic — an injected or real failure mid-save
/// leaves the previous checkpoint intact.
Result<TrainStats> FineTunePlm(PlmColumnEncoder& encoder,
                               const TrainingData& data,
                               const FineTuneConfig& config);

/// TaBERT-style mismatched pre-training: aligns a column's embedding with
/// the embedding of its own metadata text (a QA-flavoured objective that
/// is *not* joinability — reproducing why TaBERT underperforms in §5.2).
TrainStats TrainTabertStyle(PlmColumnEncoder& encoder,
                            const std::vector<lake::Column>& corpus,
                            const FineTuneConfig& config);

/// Trains the MLP baseline as a joinability regression over fastText
/// column embeddings (positive pairs + sampled negatives).
TrainStats TrainMlp(MlpColumnEncoder& encoder,
                    const std::vector<lake::Column>& sample,
                    const TrainingData& data, const FineTuneConfig& config);

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_TRAINER_H_
