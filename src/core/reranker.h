// Two-stage retrieval — the "more advanced paradigm" the paper's
// introduction points to as a drop-in upgrade: stage 1 fetches a candidate
// pool with ANNS over the column embeddings (cheap, approximate); stage 2
// re-ranks the pool with an exact joinability computation over just those
// candidates (expensive per pair, but the pool is small). The result keeps
// DeepJoin's sub-linear candidate generation while returning exactly
// ordered top-k *within the recalled pool*.
#ifndef DEEPJOIN_CORE_RERANKER_H_
#define DEEPJOIN_CORE_RERANKER_H_

#include <memory>

#include "core/searcher.h"
#include "join/joinability.h"

namespace deepjoin {
namespace core {

struct TwoStageConfig {
  /// Candidate pool size = multiplier * k (paper-style "retrieve then
  /// rank"; 3-5x is the usual sweet spot).
  size_t pool_multiplier = 4;
  /// Semantic stage-2 scoring when set; equi otherwise.
  bool semantic = false;
  float tau = 0.9f;
};

class TwoStageSearcher {
 public:
  /// `searcher` must already have an index built over `repo`'s encoder
  /// output. For equi re-ranking pass `tok`; for semantic pass `store`
  /// and the cell embedder. Non-owning; everything must outlive this.
  TwoStageSearcher(EmbeddingSearcher* searcher,
                   const join::TokenizedRepository* tok,
                   const join::ColumnVectorStore* store,
                   const FastTextEmbedder* cell_embedder,
                   const TwoStageConfig& config);

  struct Output {
    std::vector<Scored> results;  ///< exact jn scores, best first
    /// Span tree rooted at "twostage.search" with the full stage-1
    /// searcher breakdown grafted as its first child and the re-rank
    /// stage beside it. Empty when SearchOptions::collect_stats is false.
    trace::QueryStats stats;
  };

  /// `options.k` is the final result count; the stage-1 pool is
  /// k * pool_multiplier. ef/nprobe overrides pass through to stage 1.
  Output Search(const lake::Column& query, const SearchOptions& options = {});

 private:
  EmbeddingSearcher* searcher_;
  const join::TokenizedRepository* tok_;
  const join::ColumnVectorStore* store_;
  const FastTextEmbedder* cell_embedder_;
  TwoStageConfig config_;
};

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_RERANKER_H_
