#include "core/deepjoin.h"

namespace deepjoin {
namespace core {

std::unique_ptr<DeepJoin> DeepJoin::Train(
    const std::vector<lake::Column>& sample,
    const FastTextEmbedder& pretrained, const DeepJoinConfig& config) {
  // make_unique cannot reach the private constructor. dj_lint: allow(naked-new)
  auto dj = std::unique_ptr<DeepJoin>(new DeepJoin());
  dj->config_ = config;
  dj->training_data_ =
      PrepareTrainingData(sample, &pretrained, config.training);
  dj->encoder_ =
      std::make_unique<PlmColumnEncoder>(config.plm, sample, pretrained);
  // Training without checkpoint I/O cannot fail; .value() asserts that.
  dj->train_stats_ =
      FineTunePlm(*dj->encoder_, dj->training_data_, config.finetune)
          .value();
  dj->searcher_ = std::make_unique<EmbeddingSearcher>(dj->encoder_.get(),
                                                      config.searcher);
  return dj;
}

Status DeepJoin::BuildIndex(const lake::Repository& repo, BuildStats* stats) {
  return searcher_->BuildIndex(repo, nullptr, stats);
}

}  // namespace core
}  // namespace deepjoin
