#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "util/binary_io.h"
#include "util/timer.h"
#include "util/trace.h"

namespace deepjoin {
namespace core {

namespace {

/// Y with every cell that exactly matches a cell of X removed — the
/// "removing matching cells from positives" negative of §4.1.
lake::Column RemoveOverlap(const lake::Column& x, const lake::Column& y) {
  std::unordered_set<std::string> in_x(x.cells.begin(), x.cells.end());
  lake::Column out = y;
  out.cells.clear();
  out.entity_ids.clear();
  const bool aligned = y.entity_ids.size() == y.cells.size();
  for (size_t i = 0; i < y.cells.size(); ++i) {
    if (in_x.count(y.cells[i])) continue;
    out.cells.push_back(y.cells[i]);
    if (aligned) out.entity_ids.push_back(y.entity_ids[i]);
  }
  if (out.cells.empty()) {
    // A fully-overlapping pair leaves nothing; keep one placeholder cell so
    // the encoder still has input.
    out.cells.push_back(y.cells.front());
    if (aligned) out.entity_ids.push_back(y.entity_ids.front());
  }
  return out;
}

nn::AdamConfig MakeAdamConfig(const FineTuneConfig& config) {
  nn::AdamConfig ac;
  ac.lr = config.lr;
  ac.weight_decay = config.weight_decay;
  return ac;
}

// --- Training checkpoints ------------------------------------------------
// Everything a resumed run needs to replay the exact loss trajectory of an
// uninterrupted one: parameters, AdamW moments + step, the RNG's raw
// state, the current shuffle order and cursor, and the loss bookkeeping.

constexpr u32 kCheckpointMagic = 0x444A434B;  // "DJCK"
constexpr u32 kCheckpointVersion = 1;

Status SaveCheckpointTo(BinaryWriter& writer, long next_step, size_t cursor,
                        double first_loss, const Rng& rng,
                        const std::vector<size_t>& order, nn::AdamW& opt,
                        nn::ParamStore& store) {
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointVersion);
  writer.WriteU64(static_cast<u64>(next_step));
  writer.WriteU64(static_cast<u64>(cursor));
  writer.WriteDouble(first_loss);
  u64 rng_state[4];
  rng.GetState(rng_state);
  for (int i = 0; i < 4; ++i) writer.WriteU64(rng_state[i]);
  std::vector<u32> order32(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order32[i] = static_cast<u32>(order[i]);
  }
  writer.WriteU32Array(order32.data(), order32.size());
  opt.SaveState(writer);
  const auto& params = store.params();
  const auto& names = store.names();
  writer.WriteU64(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const nn::Matrix& value = params[i]->value();
    writer.WriteString(names[i]);
    writer.WriteU32(static_cast<u32>(value.rows()));
    writer.WriteU32(static_cast<u32>(value.cols()));
    writer.WriteFloatArray(value.data(), value.size());
  }
  return writer.status();
}

Status LoadCheckpoint(const std::string& path, Env* env, size_t num_pairs,
                      long* next_step, size_t* cursor, double* first_loss,
                      Rng* rng, std::vector<size_t>* order, nn::AdamW* opt,
                      nn::ParamStore* store) {
  BinaryReader reader(path, env);
  DJ_RETURN_IF_ERROR(reader.Open());
  u32 magic = 0, version = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::DataLoss(path + ": not a training checkpoint");
  }
  DJ_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kCheckpointVersion) {
    return Status::DataLoss(path + ": unsupported checkpoint version " +
                            std::to_string(version));
  }
  u64 step64 = 0, cursor64 = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU64(&step64));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&cursor64));
  DJ_RETURN_IF_ERROR(reader.ReadDouble(first_loss));
  u64 rng_state[4];
  for (int i = 0; i < 4; ++i) DJ_RETURN_IF_ERROR(reader.ReadU64(&rng_state[i]));
  std::vector<u32> order32;
  DJ_RETURN_IF_ERROR(reader.ReadU32Array(&order32));
  if (order32.size() != num_pairs || cursor64 > order32.size()) {
    return Status::InvalidArgument(
        "checkpoint was taken on different training data");
  }
  DJ_RETURN_IF_ERROR(opt->LoadState(reader));
  u64 num_params = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU64(&num_params));
  const auto& params = store->params();
  const auto& names = store->names();
  if (num_params != params.size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  }
  // Validate every record before mutating the model (all-or-nothing).
  std::vector<std::vector<float>> values(num_params);
  for (u64 i = 0; i < num_params; ++i) {
    std::string name;
    u32 rows = 0, cols = 0;
    DJ_RETURN_IF_ERROR(reader.ReadString(&name));
    DJ_RETURN_IF_ERROR(reader.ReadU32(&rows));
    DJ_RETURN_IF_ERROR(reader.ReadU32(&cols));
    DJ_RETURN_IF_ERROR(reader.ReadFloatArray(&values[i]));
    const nn::Matrix& value = params[i]->value();
    if (name != names[i] || rows != static_cast<u32>(value.rows()) ||
        cols != static_cast<u32>(value.cols()) ||
        values[i].size() != value.size()) {
      return Status::InvalidArgument("checkpoint parameter \"" + name +
                                     "\" does not match the model");
    }
  }
  for (u64 i = 0; i < num_params; ++i) {
    std::copy(values[i].begin(), values[i].end(),
              params[i]->mutable_value().data());
  }
  *next_step = static_cast<long>(step64);
  *cursor = static_cast<size_t>(cursor64);
  rng->SetState(rng_state);
  order->resize(order32.size());
  for (size_t i = 0; i < order32.size(); ++i) (*order)[i] = order32[i];
  return Status::OK();
}

}  // namespace

Result<TrainStats> FineTunePlm(PlmColumnEncoder& encoder,
                               const TrainingData& data,
                               const FineTuneConfig& config) {
  TrainStats stats;
  if (data.pairs.empty()) return stats;
  WallTimer timer;

  nn::ParamStore& store = encoder.transformer().params();
  nn::AdamW opt(store.params(), MakeAdamConfig(config));
  const long total = config.max_steps;
  const long warmup = static_cast<long>(config.warmup_frac * total);
  const bool checkpointing =
      config.checkpoint_every > 0 && !config.checkpoint_path.empty();

  Rng rng(config.seed);
  std::vector<size_t> order(data.pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  size_t cursor = 0;
  long start_step = 0;

  if (config.resume) {
    if (config.checkpoint_path.empty()) {
      return Status::InvalidArgument("resume requires a checkpoint_path");
    }
    DJ_RETURN_IF_ERROR(LoadCheckpoint(
        config.checkpoint_path, config.env, data.pairs.size(), &start_step,
        &cursor, &stats.first_loss, &rng, &order, &opt, &store));
  }

  for (long step = start_step; step < total; ++step) {
    DJ_TRACE_SPAN("train.step");
    const int n = std::min<int>(config.batch_size,
                                static_cast<int>(data.pairs.size()));
    std::vector<nn::VarPtr> xs, ys;
    std::vector<nn::VarPtr> extra_negs;
    xs.reserve(n);
    ys.reserve(n);
    for (int b = 0; b < n; ++b) {
      if (cursor >= order.size()) {
        rng.Shuffle(order);
        cursor = 0;
      }
      const TrainingExample& ex = data.pairs[order[cursor++]];
      xs.push_back(encoder.EncodeForTraining(ex.x));
      ys.push_back(encoder.EncodeForTraining(ex.y));
      if (config.negatives == NegativeStrategy::kRemovedOverlap) {
        extra_negs.push_back(
            encoder.EncodeForTraining(RemoveOverlap(ex.x, ex.y)));
      }
    }

    nn::VarPtr loss;
    if (config.negatives == NegativeStrategy::kInBatch) {
      loss = nn::MultipleNegativesRankingLoss(xs, ys, config.cosine_scale);
    } else {
      // Scores [n, 2n]: the batch's Ys followed by the removed-overlap
      // hard negatives; row i's positive stays at column i.
      std::vector<nn::VarPtr> candidates = ys;
      candidates.insert(candidates.end(), extra_negs.begin(),
                        extra_negs.end());
      nn::VarPtr x = nn::RowL2Normalize(nn::ConcatRows(xs));
      nn::VarPtr y = nn::RowL2Normalize(nn::ConcatRows(candidates));
      nn::VarPtr scores =
          nn::Scale(nn::MatMulNT(x, y), config.cosine_scale);
      std::vector<u32> targets(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) targets[static_cast<size_t>(i)] = i;
      loss = nn::SoftmaxCrossEntropyIndex(scores, targets);
    }

    const double loss_value = loss->value().at(0, 0);
    if (step == 0) stats.first_loss = loss_value;
    stats.final_loss = loss_value;

    nn::Backward(loss);
    opt.Step(nn::WarmupLinearFactor(step, warmup, total));
    store.ZeroGrads();
    ++stats.steps;

    {
      static metrics::Counter* const steps_total =
          metrics::MetricsRegistry::Global().GetCounter(
              "dj_train_steps_total");
      static metrics::Gauge* const loss_gauge =
          metrics::MetricsRegistry::Global().GetGauge("dj_train_loss");
      steps_total->Increment();
      loss_gauge->Set(loss_value);
    }

    if (config.verbose && (step % 20 == 0 || step + 1 == total)) {
      std::fprintf(stderr, "  [fine-tune %s] step %ld/%ld loss %.4f\n",
                   encoder.name().c_str(), step, total, loss_value);
    }

    if (checkpointing && (step + 1) % config.checkpoint_every == 0) {
      const long next_step = step + 1;
      const double first_loss = stats.first_loss;
      DJ_RETURN_IF_ERROR(AtomicSave(
          config.checkpoint_path, config.env,
          [&](BinaryWriter& writer) -> Status {
            return SaveCheckpointTo(writer, next_step, cursor, first_loss,
                                    rng, order, opt, store);
          }));
    }

    if (config.stop_after_step >= 0 && step >= config.stop_after_step) {
      break;  // simulated crash (test hook); checkpoint already on disk
    }
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

TrainStats TrainTabertStyle(PlmColumnEncoder& encoder,
                            const std::vector<lake::Column>& corpus,
                            const FineTuneConfig& config) {
  TrainStats stats;
  if (corpus.empty()) return stats;
  WallTimer timer;

  nn::AdamW opt(encoder.transformer().params().params(),
                MakeAdamConfig(config));
  const long total = config.max_steps;
  const long warmup = static_cast<long>(config.warmup_frac * total);
  Rng rng(config.seed ^ 0x7AB3);

  for (long step = 0; step < total; ++step) {
    const int n = std::min<int>(config.batch_size,
                                static_cast<int>(corpus.size()));
    std::vector<nn::VarPtr> xs, ys;
    for (int b = 0; b < n; ++b) {
      const lake::Column& col = corpus[rng.UniformU64(corpus.size())];
      xs.push_back(encoder.EncodeForTraining(col));
      // The mismatched objective: align with the question-ish metadata
      // utterance, not with joinable columns.
      ys.push_back(encoder.EncodeTextForTraining(
          "what is " + col.meta.column_name + " in " +
          col.meta.table_title));
    }
    nn::VarPtr loss =
        nn::MultipleNegativesRankingLoss(xs, ys, config.cosine_scale);
    if (step == 0) stats.first_loss = loss->value().at(0, 0);
    stats.final_loss = loss->value().at(0, 0);
    nn::Backward(loss);
    opt.Step(nn::WarmupLinearFactor(step, warmup, total));
    encoder.transformer().params().ZeroGrads();
    ++stats.steps;
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

TrainStats TrainMlp(MlpColumnEncoder& encoder,
                    const std::vector<lake::Column>& sample,
                    const TrainingData& data, const FineTuneConfig& config) {
  TrainStats stats;
  if (data.pairs.empty() || sample.empty()) return stats;
  WallTimer timer;

  auto& mlp = encoder.mlp();
  auto& featurizer = encoder.featurizer();
  const int in_dim = featurizer.dim();

  // Precompute features: pair sides + sample columns (negative pool).
  std::vector<std::vector<float>> fx(data.pairs.size()),
      fy(data.pairs.size());
  for (size_t i = 0; i < data.pairs.size(); ++i) {
    fx[i] = featurizer.Encode(data.pairs[i].x);
    fy[i] = featurizer.Encode(data.pairs[i].y);
  }
  std::vector<std::vector<float>> fs(sample.size());
  for (size_t i = 0; i < sample.size(); ++i) {
    fs[i] = featurizer.Encode(sample[i]);
  }

  nn::AdamW opt(mlp.params().params(), MakeAdamConfig(config));
  const long total = config.max_steps;
  const long warmup = static_cast<long>(config.warmup_frac * total);
  Rng rng(config.seed ^ 0x31A9);

  for (long step = 0; step < total; ++step) {
    const int n = config.batch_size;
    nn::Matrix mx(n, in_dim), my(n, in_dim), target(n, 1);
    for (int b = 0; b < n; ++b) {
      if (b % 2 == 0) {  // positive
        const size_t i = rng.UniformU64(data.pairs.size());
        std::copy(fx[i].begin(), fx[i].end(), mx.row(b));
        std::copy(fy[i].begin(), fy[i].end(), my.row(b));
        target.at(b, 0) = static_cast<float>(data.pairs[i].jn);
      } else {  // random pair: joinability approximately zero
        const size_t i = rng.UniformU64(fs.size());
        const size_t j = rng.UniformU64(fs.size());
        std::copy(fs[i].begin(), fs[i].end(), mx.row(b));
        std::copy(fs[j].begin(), fs[j].end(), my.row(b));
        target.at(b, 0) = 0.0f;
      }
    }
    nn::VarPtr pred = mlp.PredictJoinability(nn::MakeVar(std::move(mx)),
                                             nn::MakeVar(std::move(my)));
    nn::VarPtr loss = nn::MseLoss(pred, target);
    if (step == 0) stats.first_loss = loss->value().at(0, 0);
    stats.final_loss = loss->value().at(0, 0);
    nn::Backward(loss);
    opt.Step(nn::WarmupLinearFactor(step, warmup, total));
    mlp.params().ZeroGrads();
    ++stats.steps;
  }
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace core
}  // namespace deepjoin
