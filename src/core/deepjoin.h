// DeepJoin — the end-to-end pipeline of the paper: prepare training data
// from a corpus sample by self-join (§4.1), fine-tune the PLM column
// encoder with in-batch negatives under the MNR loss (§4.2), index the
// repository's column embeddings, and serve top-k joinable-table discovery
// through ANNS (§3.3).
//
// Quick start:
//   FastTextEmbedder ft(FastTextConfig{});                 // cell space
//   DeepJoinConfig cfg;                                    // defaults OK
//   auto dj = DeepJoin::Train(training_sample, ft, cfg);   // fine-tune
//   DJ_CHECK(dj->BuildIndex(repository).ok());             // offline
//   auto out = dj->Search(query_column, {.k = 10});        // online
#ifndef DEEPJOIN_CORE_DEEPJOIN_H_
#define DEEPJOIN_CORE_DEEPJOIN_H_

#include <memory>
#include <vector>

#include "core/searcher.h"
#include "core/trainer.h"

namespace deepjoin {
namespace core {

struct DeepJoinConfig {
  PlmEncoderConfig plm;
  TrainingDataConfig training;
  FineTuneConfig finetune;
  SearcherConfig searcher;
};

class DeepJoin {
 public:
  /// Fine-tunes a fresh PLM encoder on `sample` (the paper's 30K-column
  /// training subset, scaled). `pretrained` provides the subword vectors
  /// standing in for language-model pre-training.
  static std::unique_ptr<DeepJoin> Train(
      const std::vector<lake::Column>& sample,
      const FastTextEmbedder& pretrained, const DeepJoinConfig& config);

  /// Offline phase: encode + index the repository.
  [[nodiscard]] Status BuildIndex(const lake::Repository& repo,
                                  BuildStats* stats = nullptr);

  /// Online top-k search.
  EmbeddingSearcher::SearchResult Search(const lake::Column& query,
                                         const SearchOptions& options = {}) {
    return searcher_->Search(query, options);
  }
  /// Batched (accelerated) search; see EmbeddingSearcher::SearchBatch.
  std::vector<EmbeddingSearcher::SearchResult> SearchBatch(
      const std::vector<lake::Column>& queries, const SearchOptions& options,
      ThreadPool* pool) {
    return searcher_->SearchBatch(queries, options, pool);
  }

  PlmColumnEncoder& encoder() { return *encoder_; }
  EmbeddingSearcher& searcher() { return *searcher_; }
  const TrainStats& train_stats() const { return train_stats_; }
  const TrainingData& training_data() const { return training_data_; }
  const DeepJoinConfig& config() const { return config_; }

 private:
  DeepJoin() = default;

  DeepJoinConfig config_;
  std::unique_ptr<PlmColumnEncoder> encoder_;
  std::unique_ptr<EmbeddingSearcher> searcher_;
  TrainingData training_data_;
  TrainStats train_stats_;
};

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_DEEPJOIN_H_
