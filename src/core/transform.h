// Column-to-text transformation (paper §3.1, Table 1): the prompt-
// engineering step that turns a column plus its metadata into the text
// sequence the PLM reads. Seven options; `title-colname-stat-col` is the
// paper's best and our default.
//
// When the column exceeds the cell budget (the PLM's input length limit,
// §3.2), the cells with the highest document frequency — the number of
// repository columns containing the value — are kept, in their original
// order.
#ifndef DEEPJOIN_CORE_TRANSFORM_H_
#define DEEPJOIN_CORE_TRANSFORM_H_

#include <string>
#include <vector>

#include "join/joinability.h"
#include "lake/column.h"

namespace deepjoin {
namespace core {

enum class TransformOption {
  kCol,
  kColnameCol,
  kColnameColContext,
  kColnameStatCol,
  kTitleColnameCol,
  kTitleColnameColContext,
  kTitleColnameStatCol,
};

/// All options, in Table 1's order (for the ablation benches).
const std::vector<TransformOption>& AllTransformOptions();
const char* TransformOptionName(TransformOption option);

struct TransformConfig {
  TransformOption option = TransformOption::kTitleColnameStatCol;
  /// Max cells included in the text. <= 0 disables the budget.
  int cell_budget = 24;
  /// Frequency source for cell selection; nullptr falls back to truncation
  /// in original order (the ablation's "naive truncation" arm).
  const join::CellDictionary* dict = nullptr;
};

/// Renders `column` to its text sequence.
std::string TransformColumn(const lake::Column& column,
                            const TransformConfig& config);

/// Reused buffers for the allocation-free transform path. All members
/// grow to a working size during warmup and then reuse capacity.
struct TransformScratch {
  std::vector<size_t> order;     // doc-freq ranking permutation
  std::vector<size_t> selected;  // indices of the cells the budget keeps
};

/// Renders `column` into `*out` (cleared first) — byte-identical to
/// TransformColumn, but appending into caller-owned, capacity-reusing
/// buffers. This is the encoding hot path's entry point
/// (PlmColumnEncoder::EncodeInto): after warmup it performs no heap
/// allocation, which tools/dj_alloc enforces via the DJ_NOALLOC chain
/// rooted at EncodeInto.
void TransformColumnInto(const lake::Column& column,
                         const TransformConfig& config,
                         TransformScratch* scratch, std::string* out);

/// Fills `scratch->selected` with the indices of the cells the budget
/// keeps, in original column order (the selection core shared by
/// SelectCells and TransformColumnInto).
void SelectCellIndices(const lake::Column& column,
                       const TransformConfig& config,
                       TransformScratch* scratch);

/// The cell subset the budget keeps (exposed for tests/ablation).
std::vector<std::string> SelectCells(const lake::Column& column,
                                     const TransformConfig& config);

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_TRANSFORM_H_
