// Column encoders: the pluggable embedding stage of DeepJoin's
// embedding-based retrieval (paper Fig. 1). One interface serves the
// fine-tuned PLM (DeepJoin proper) and every embedding baseline of §5.1
// (fastText, raw BERT/MPNet, TaBERT-style, MLP).
#ifndef DEEPJOIN_CORE_ENCODERS_H_
#define DEEPJOIN_CORE_ENCODERS_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/transform.h"
#include "nn/mlp.h"
#include "nn/transformer.h"
#include "text/fasttext.h"
#include "text/vocab.h"
#include "util/alloc_guard.h"

namespace deepjoin {
namespace core {

/// Maps a column to a fixed-length vector.
///
/// Concurrency contract: EmbeddingSearcher::BuildIndex and SearchBatch
/// fan Encode out over a ThreadPool, so one encoder instance is invoked
/// from many threads at once. Encode must therefore be safe for
/// concurrent calls — keep scratch per-call or thread_local (the autograd
/// NoGradGuard flag is thread_local for exactly this reason), and guard
/// any shared mutable cache with a deepjoin::Mutex + DJ_GUARDED_BY (see
/// src/util/mutex.h). Training-time graph building
/// (EncodeForTraining/...) is single-threaded and exempt. Exercised by
/// searcher_concurrent_test under the TSan profile.
class ColumnEncoder {
 public:
  virtual ~ColumnEncoder() = default;
  virtual std::vector<float> Encode(const lake::Column& column) = 0;

  /// Writes the embedding into `out` (dim() floats). The hot indexing and
  /// batch-search loops call this so encoders with a fast path can skip
  /// the per-column vector allocation; the default just forwards to
  /// Encode. Same concurrency contract as Encode.
  virtual void EncodeInto(const lake::Column& column, float* out) {
    const std::vector<float> v = Encode(column);
    std::copy(v.begin(), v.end(), out);
  }

  virtual int dim() const = 0;
  virtual std::string name() const = 0;
};

/// Which PLM architecture a PlmColumnEncoder mirrors (DESIGN.md):
/// DistilSim = absolute positions (DistilBERT-like), MPNetSim = relative
/// position biases + wider model (MPNet-like).
enum class PlmKind { kDistilSim, kMPNetSim };

struct PlmEncoderConfig {
  PlmKind kind = PlmKind::kMPNetSim;
  TransformConfig transform;
  int max_words = 10000;     ///< vocabulary size cap
  int oov_buckets = 8192;
  int max_seq_len = 64;
  u64 seed = 1234;
};

/// The PLM column encoder. Construction builds the vocabulary from the
/// training sample's transformed texts and initialises token embeddings
/// from the subword embedder (the pre-training substitute); fine-tuning is
/// performed by core/trainer.h.
class PlmColumnEncoder : public ColumnEncoder {
 public:
  PlmColumnEncoder(const PlmEncoderConfig& config,
                   const std::vector<lake::Column>& vocab_corpus,
                   const FastTextEmbedder& pretrained);

  /// Reconstructs an encoder from persisted parts (see core/model_io.h).
  /// Parameters are freshly initialised; the loader overwrites them.
  PlmColumnEncoder(const PlmEncoderConfig& config, Vocab vocab);

  std::vector<float> Encode(const lake::Column& column) override;
  /// Allocation-free path: transform/tokenize/vocab via thread-local
  /// capacity-reusing scratch, then the transformer workspace forward
  /// straight into `out` (bit-identical to Encode; see
  /// TransformerEncoder). The DJ_NOALLOC contract holds for the steady
  /// state — after scratch warmup, with no per-query TraceCollector
  /// installed — and is enforced by tools/dj_alloc plus the guard-enabled
  /// searcher test.
  DJ_NOALLOC void EncodeInto(const lake::Column& column, float* out) override;
  int dim() const override { return encoder_->config().d_model; }
  std::string name() const override {
    return config_.kind == PlmKind::kDistilSim ? "DeepJoin-DistilSim"
                                               : "DeepJoin-MPNetSim";
  }

  /// Token ids for a column (transform -> tokenize -> vocab).
  std::vector<u32> ColumnToIds(const lake::Column& column) const;
  /// Same pipeline into a caller-owned id buffer (cleared first), with
  /// all intermediate text/token state in thread-local capacity-reusing
  /// scratch. The hot encode path under EncodeInto.
  DJ_NOALLOC void ColumnToIdsInto(const lake::Column& column,
                                  std::vector<u32>* ids) const;
  /// Graph-building encode for training.
  nn::VarPtr EncodeForTraining(const lake::Column& column);
  /// Graph-building encode of a raw text (TaBERT-style objectives).
  nn::VarPtr EncodeTextForTraining(const std::string& text);

  nn::TransformerEncoder& transformer() { return *encoder_; }
  const TransformConfig& transform_config() const {
    return config_.transform;
  }
  void set_transform_config(const TransformConfig& t) {
    config_.transform = t;
  }
  const Vocab& vocab() const { return vocab_; }
  const PlmEncoderConfig& config() const { return config_; }

 private:
  void BuildTransformer();

  PlmEncoderConfig config_;
  Vocab vocab_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
};

/// Mean-of-word-vectors baseline ("fastText" row of the tables). Also used
/// as the input featurizer for the MLP baseline and PEXESO's cell space.
class FastTextColumnEncoder : public ColumnEncoder {
 public:
  FastTextColumnEncoder(const FastTextEmbedder* embedder,
                        const TransformConfig& transform)
      : embedder_(embedder), transform_(transform) {}

  std::vector<float> Encode(const lake::Column& column) override;
  int dim() const override { return embedder_->dim(); }
  std::string name() const override { return "fastText"; }

 private:
  const FastTextEmbedder* embedder_;
  TransformConfig transform_;
};

/// MLP baseline: fastText column vector -> trained 2-layer tower; the last
/// hidden layer is the retrieval embedding (paper §5.1).
class MlpColumnEncoder : public ColumnEncoder {
 public:
  MlpColumnEncoder(std::shared_ptr<nn::MlpRegressor> mlp,
                   const FastTextEmbedder* embedder,
                   const TransformConfig& transform)
      : mlp_(std::move(mlp)), inner_(embedder, transform) {}

  std::vector<float> Encode(const lake::Column& column) override {
    return mlp_->Embed(inner_.Encode(column));
  }
  int dim() const override { return mlp_->embedding_dim(); }
  std::string name() const override { return "MLP"; }

  nn::MlpRegressor& mlp() { return *mlp_; }
  FastTextColumnEncoder& featurizer() { return inner_; }

 private:
  std::shared_ptr<nn::MlpRegressor> mlp_;
  FastTextColumnEncoder inner_;
};

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_ENCODERS_H_
