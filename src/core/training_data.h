// Training-data preparation (paper §4.1): positives from a self-join on a
// sample of the repository with jn >= t (set-similarity join for
// equi-joins, PEXESO-style vector matching for semantic joins), plus the
// cell-shuffle data augmentation that teaches the encoder that joinability
// is order-insensitive.
#ifndef DEEPJOIN_CORE_TRAINING_DATA_H_
#define DEEPJOIN_CORE_TRAINING_DATA_H_

#include <vector>

#include "lake/column.h"
#include "text/fasttext.h"
#include "util/rng.h"

namespace deepjoin {
namespace core {

enum class JoinType { kEqui, kSemantic };

struct TrainingDataConfig {
  JoinType join_type = JoinType::kEqui;
  double positive_threshold = 0.7;  ///< jn >= t (paper: 0.7)
  float tau = 0.9f;                 ///< semantic vector-matching threshold
  /// Shuffle rate r: each base positive spawns a cell-shuffled copy with
  /// probability r, so r/(1+r) of the final positives are shuffled.
  double shuffle_rate = 0.2;
  size_t max_pairs = 6000;          ///< runtime cap; subsampled beyond this
  u64 seed = 77;
};

/// One positive example; columns are materialised (the X side may be a
/// shuffled permutation of a sample column).
struct TrainingExample {
  lake::Column x;
  lake::Column y;
  double jn = 1.0;  ///< the self-join's measured joinability jn(x -> y)
  bool shuffled = false;
};

struct TrainingData {
  std::vector<TrainingExample> pairs;
  size_t num_base = 0;
  size_t num_shuffled = 0;
};

/// Runs the self-join over `sample`, applies the shuffle augmentation and
/// the size cap. `embedder` is only consulted for semantic joins.
TrainingData PrepareTrainingData(const std::vector<lake::Column>& sample,
                                 const FastTextEmbedder* embedder,
                                 const TrainingDataConfig& config);

/// Random cell permutation of a column (entity annotations follow).
lake::Column ShuffleColumn(const lake::Column& column, Rng& rng);

}  // namespace core
}  // namespace deepjoin

#endif  // DEEPJOIN_CORE_TRAINING_DATA_H_
