#include "core/training_data.h"

#include <algorithm>
#include <numeric>

#include "join/joinability.h"
#include "join/setjoin.h"

namespace deepjoin {
namespace core {

lake::Column ShuffleColumn(const lake::Column& column, Rng& rng) {
  lake::Column out = column;
  std::vector<size_t> perm(out.cells.size());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  const bool aligned = out.entity_ids.size() == out.cells.size();
  for (size_t i = 0; i < perm.size(); ++i) {
    out.cells[i] = column.cells[perm[i]];
    if (aligned) out.entity_ids[i] = column.entity_ids[perm[i]];
  }
  return out;
}

TrainingData PrepareTrainingData(const std::vector<lake::Column>& sample,
                                 const FastTextEmbedder* embedder,
                                 const TrainingDataConfig& config) {
  // Self-join on the sample to collect directed positives.
  std::vector<join::JoinPair> positives;
  if (config.join_type == JoinType::kEqui) {
    // Local tokenization of the sample (independent of any repository).
    join::CellDictionary dict;
    std::vector<join::TokenSet> sets;
    sets.reserve(sample.size());
    for (const auto& col : sample) {
      join::TokenSet ts;
      for (const auto& cell : col.cells) {
        ts.tokens.push_back(dict.GetOrAssign(cell));
      }
      std::sort(ts.tokens.begin(), ts.tokens.end());
      ts.tokens.erase(std::unique(ts.tokens.begin(), ts.tokens.end()),
                      ts.tokens.end());
      ts.query_size = ts.tokens.size();
      sets.push_back(std::move(ts));
    }
    positives = join::EquiSelfJoin(sets, config.positive_threshold);
  } else {
    DJ_CHECK_MSG(embedder != nullptr,
                 "semantic training data needs a cell embedder");
    lake::Repository tmp;
    for (const auto& col : sample) tmp.Add(col);
    auto store = join::ColumnVectorStore::Build(tmp, *embedder);
    positives = join::SemanticSelfJoin(store, config.positive_threshold,
                                       config.tau);
  }

  Rng rng(config.seed);
  if (positives.size() > config.max_pairs) {
    const auto keep = rng.SampleIndices(positives.size(), config.max_pairs);
    std::vector<join::JoinPair> subset;
    subset.reserve(config.max_pairs);
    for (size_t i : keep) subset.push_back(positives[i]);
    positives = std::move(subset);
  }

  TrainingData data;
  data.num_base = positives.size();
  data.pairs.reserve(positives.size() * 2);
  for (const auto& p : positives) {
    TrainingExample ex;
    ex.x = sample[p.x];
    ex.y = sample[p.y];
    ex.jn = p.jn;
    data.pairs.push_back(ex);
    if (rng.Bernoulli(config.shuffle_rate)) {
      TrainingExample shuffled;
      shuffled.x = ShuffleColumn(sample[p.x], rng);
      shuffled.y = sample[p.y];
      shuffled.jn = p.jn;
      shuffled.shuffled = true;
      data.pairs.push_back(std::move(shuffled));
      ++data.num_shuffled;
    }
  }
  rng.Shuffle(data.pairs);
  return data;
}

}  // namespace core
}  // namespace deepjoin
