#include "core/searcher.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "ann/index_io.h"
#include "util/crc32c.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace deepjoin {
namespace core {

namespace {

// ---- Live-directory on-disk formats (DESIGN.md §12) ----
//
// MANIFEST (AtomicSave'd DJF1 container): the commit point. Naming
// generation G makes index-G.dj + wal-G.log the authoritative state; the
// previous generation's artifacts are retained until the generation after
// next publishes, so recovery always has a fallback.
constexpr u32 kManifestMagic = 0x444A4D46;  // "DJMF"
constexpr u32 kManifestVersion = 1;
// index-<gen>.dj (AtomicSave'd DJF1 container): next_column_id, the
// optional id->column map, then the embedded index as a DJIX payload
// (ann::SaveIndexPayload). Checkpoints written before the unified format
// embedded the legacy standalone-HNSW payload instead; recovery reads
// both (ann::LoadIndexPayload dispatches on the embedded magic).
constexpr u32 kCheckpointMagic = 0x444A434B;  // "DJCK"
constexpr u32 kCheckpointVersion = 1;
// wal-<gen>.log (raw appends, fsync'd per record): a 16-byte header
// [magic:u32 version:u32 generation:u64] then records framed as
// [len:u32][crc32c(payload):u32][payload]. payload := tag:u8 data. A torn
// tail (incomplete frame or CRC mismatch at the end) is ignored on replay,
// exactly like a write the crash interrupted.
constexpr u32 kWalMagic = 0x444A574C;  // "DJWL"
constexpr u32 kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 16;
constexpr u8 kWalInsert = 1;  // u32 column_id, i32 level, float[dim]
constexpr u8 kWalRemove = 2;  // u32 index_id

void PutU32(std::string* s, u32 v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  s->append(b, sizeof(v));
}

void PutU64(std::string* s, u64 v) {
  char b[sizeof(v)];
  std::memcpy(b, &v, sizeof(v));
  s->append(b, sizeof(v));
}

u32 GetU32(const char* p) {
  u32 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

u64 GetU64(const char* p) {
  u64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

ann::AnnSearchParams AnnParamsFrom(const SearchOptions& options) {
  ann::AnnSearchParams params;
  params.ef_search = options.ef_search;
  params.nprobe = options.nprobe;
  params.refine_factor = options.refine_factor;
  return params;
}

ann::HnswConfig MakeHnswConfig(const SearcherConfig& config, int dim,
                               u64 min_capacity) {
  ann::HnswConfig hc;
  hc.dim = dim;
  hc.M = config.hnsw_M;
  hc.ef_construction = config.hnsw_ef_construction;
  hc.ef_search = config.hnsw_ef_search;
  // A bulk build larger than the configured live ceiling raises the
  // capacity to fit (the ceiling gates incremental growth, not builds).
  const u64 cap = std::max<u64>(config.hnsw_max_elements, min_capacity);
  hc.max_elements = static_cast<u32>(
      std::min<u64>(cap, std::numeric_limits<u32>::max()));
  return hc;
}

metrics::Counter* SearchesCounter() {
  // Function-local static: the registry lookup allocates once per process,
  // before the steady state the noalloc contract covers.
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
          "dj_searcher_searches_total");
  return c;
}

metrics::Counter* InsertsCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_index_inserts");
  return c;
}

metrics::Counter* DeletesCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_index_deletes");
  return c;
}

metrics::Counter* CompactionsCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_index_compactions");
  return c;
}

metrics::Counter* SwapsCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_index_snapshot_swaps");
  return c;
}

metrics::Gauge* TombstonesGauge() {
  static metrics::Gauge* const g =
      metrics::MetricsRegistry::Global().GetGauge("dj_index_tombstones");
  return g;
}

metrics::Histogram* PublishHistogram() {
  static metrics::Histogram* const h =
      metrics::MetricsRegistry::Global().GetHistogram("dj_snapshot_publish_ms");
  return h;
}

metrics::Counter* WalRecordsCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_wal_records_total");
  return c;
}

// Physical WAL fsyncs. records/syncs is the group-commit amortisation
// ratio: 1.0 with per-record syncs, > 1 once commits batch.
metrics::Counter* WalSyncsCounter() {
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter("dj_wal_syncs_total");
  return c;
}

// Per-thread query scratch for the allocation-free search path: every
// buffer grows to its working size during warmup and then reuses capacity.
struct QueryScratch {
  std::vector<float> q;               // encoded query embedding
  std::vector<ann::Neighbor> hits;    // raw index results
};

}  // namespace

EmbeddingSearcher::EmbeddingSearcher(ColumnEncoder* encoder,
                                     const SearcherConfig& config)
    : encoder_(encoder), config_(config), dim_(encoder->dim()) {}

std::shared_ptr<const IndexSnapshot> EmbeddingSearcher::PinSnapshot() const {
  MutexLock lock(snapshot_mu_);
  return snapshot_;
}

void EmbeddingSearcher::Publish(std::shared_ptr<const IndexSnapshot> snap) {
  {
    MutexLock lock(snapshot_mu_);
    snapshot_ = std::move(snap);
  }
  SwapsCounter()->Increment();
}

std::string EmbeddingSearcher::ManifestPath() const {
  return dir_ + "/MANIFEST";
}

std::string EmbeddingSearcher::IndexPath(u64 gen) const {
  return dir_ + "/index-" + std::to_string(gen) + ".dj";
}

std::string EmbeddingSearcher::WalPath(u64 gen) const {
  return dir_ + "/wal-" + std::to_string(gen) + ".log";
}

Status EmbeddingSearcher::BuildIndex(const lake::Repository& repo,
                                     ThreadPool* pool, BuildStats* stats) {
  if (config_.backend == AnnBackend::kIvfPq && repo.size() == 0) {
    return Status::InvalidArgument(
        "IVFPQ BuildIndex needs a non-empty repository: the coarse "
        "quantizer trains on the indexed columns");
  }
  trace::TraceCollector collector(stats != nullptr);
  std::shared_ptr<ann::VectorIndex> index;
  {
    DJ_TRACE_SPAN("searcher.build");
    std::vector<float> embeddings(repo.size() * static_cast<size_t>(dim_));
    {
      DJ_TRACE_SPAN("searcher.build_encode");
      // EncodeInto writes straight into the flat buffer — no per-column
      // vector allocation on the hot indexing path. No searcher lock is
      // held here: ParallelFor takes the pool locks, and the writer lock
      // must never be held across a pool wait.
      auto encode_one = [&](size_t i) {
        encoder_->EncodeInto(
            repo.column(static_cast<u32>(i)),
            embeddings.data() + i * static_cast<size_t>(dim_));
      };
      if (pool != nullptr && pool->num_threads() > 1) {
        pool->ParallelFor(repo.size(), encode_one);
      } else {
        for (size_t i = 0; i < repo.size(); ++i) encode_one(i);
      }
    }
    {
      DJ_TRACE_SPAN("searcher.build_index");
      switch (config_.backend) {
        case AnnBackend::kFlat:
          index = std::make_shared<ann::FlatIndex>(dim_,
                                                   config_.flat_storage);
          break;
        case AnnBackend::kHnsw:
          index = std::make_shared<ann::HnswIndex>(
              MakeHnswConfig(config_, dim_, repo.size()));
          break;
        case AnnBackend::kIvfPq: {
          ann::IvfPqConfig ic;
          ic.dim = dim_;
          ic.nlist = config_.ivfpq_nlist;
          ic.m = config_.ivfpq_m;
          ic.nbits = config_.ivfpq_nbits;
          ic.nprobe = config_.ivfpq_nprobe;
          auto idx = std::make_shared<ann::IvfPqIndex>(ic);
          idx->Train(embeddings.data(), repo.size());
          index = std::move(idx);
          break;
        }
      }
      index->AddBatch(embeddings.data(), repo.size());
    }
  }
  Status publish_st = Status::OK();
  {
    const WriterLock writer(this);
    next_column_id_ = static_cast<u32>(repo.size());
    col_to_index_.clear();
    col_to_index_.reserve(repo.size());
    for (u32 i = 0; i < static_cast<u32>(repo.size()); ++i) {
      col_to_index_[i] = i;
    }
    map_.reset();
    Publish(std::make_shared<const IndexSnapshot>(
        IndexSnapshot{std::move(index), nullptr, generation_}));
    if (LiveLocked()) {
      // The open WAL describes mutations against the index this build just
      // replaced — appending to it would make recovery replay new records
      // on top of the old checkpoint. Poison it so no record lands there,
      // then publish the rebuilt state as a fresh generation. On failure
      // the previous generation stays the durable state and the poison
      // makes the next mutation retry the publish first.
      wal_poisoned_ = true;
      publish_st = RepairWalLocked();
    }
  }
  {
    static metrics::Counter* const builds =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_searcher_builds_total");
    static metrics::Counter* const indexed =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_searcher_columns_indexed_total");
    builds->Increment();
    indexed->Add(repo.size());
  }
  if (stats != nullptr) {
    stats->columns = repo.size();
    stats->trace = collector.Finish();
  }
  return publish_st;
}

Status EmbeddingSearcher::EnsureIndexLocked() {
  if (PinSnapshot() != nullptr) return Status::OK();
  // First column of an empty searcher: start an index (IVFPQ cannot — its
  // quantizer needs training data).
  if (config_.backend == AnnBackend::kIvfPq) {
    return Status::FailedPrecondition(
        "IVFPQ needs BuildIndex() before incremental adds");
  }
  std::shared_ptr<ann::VectorIndex> index;
  if (config_.backend == AnnBackend::kFlat) {
    index = std::make_shared<ann::FlatIndex>(dim_, config_.flat_storage);
  } else {
    index = std::make_shared<ann::HnswIndex>(MakeHnswConfig(config_, dim_, 0));
  }
  next_column_id_ = 0;
  col_to_index_.clear();
  map_.reset();
  Publish(std::make_shared<const IndexSnapshot>(
      IndexSnapshot{std::move(index), nullptr, generation_}));
  return Status::OK();
}

IndexSnapshot EmbeddingSearcher::CurrentStateLocked(u64 gen) const {
  auto snap = PinSnapshot();
  DJ_CHECK_MSG(snap != nullptr, "CurrentStateLocked with no index");
  return IndexSnapshot{snap->index, map_, gen};
}

Result<u32> EmbeddingSearcher::AddColumn(const lake::Column& column) {
  u64 lsn = 0;
  Result<u32> res = AddColumnImpl(column, &lsn);
  if (res.ok() && lsn != 0) {
    // Group commit: the record is appended and the mutation applied, but
    // the acknowledgement waits — outside the writer token, so concurrent
    // mutators pile onto the same fsync — until the record is durable.
    DJ_RETURN_IF_ERROR(
        committer_.WaitDurable(lsn, config_.wal_commit_window_ms));
  }
  return res;
}

Result<u32> EmbeddingSearcher::AddColumnImpl(const lake::Column& column,
                                             u64* lsn) {
  const WriterLock writer(this);
  DJ_RETURN_IF_ERROR(EnsureIndexLocked());
  if (LiveLocked()) {
    DJ_RETURN_IF_ERROR(RepairWalLocked());
  }
  auto snap = PinSnapshot();
  const u32 col = next_column_id_;
  const std::vector<float> v = encoder_->Encode(column);
  u32 id = 0;
  if (config_.backend == AnnBackend::kHnsw) {
    auto* hnsw = static_cast<ann::HnswIndex*>(snap->index.get());
    if (hnsw->size() >= hnsw->capacity()) {
      return Status::FailedPrecondition(
          "hnsw index full (" + std::to_string(hnsw->capacity()) +
          " elements): Compact() or rebuild with a larger "
          "hnsw_max_elements");
    }
    // Durability order: draw the level, make the record durable, then
    // apply — the WAL always describes the graph (recorded levels make
    // replay bit-identical), and a logged-but-unapplied record is exactly
    // what replay handles.
    const i32 level = hnsw->DrawLevel();
    if (LiveLocked()) {
      DJ_RETURN_IF_ERROR(WalAppendInsert(col, level, v, lsn));
    }
    // IdMap before index: readers that see the published id must find its
    // mapping (the index's release-store of the count is the fence).
    if (map_ != nullptr) map_->Append(col);
    DJ_RETURN_IF_ERROR(hnsw->InsertWithLevel(v.data(), level, &id));
  } else {
    id = static_cast<u32>(snap->index->size());
    snap->index->Add(v.data());
  }
  if (map_ == nullptr) {
    DJ_CHECK_MSG(id == col, "identity id space drifted");
  }
  col_to_index_[col] = id;
  next_column_id_ = col + 1;
  InsertsCounter()->Increment();
  return col;
}

Status EmbeddingSearcher::RemoveColumn(u32 column_id) {
  u64 lsn = 0;
  DJ_RETURN_IF_ERROR(RemoveColumnImpl(column_id, &lsn));
  if (lsn != 0) {
    DJ_RETURN_IF_ERROR(
        committer_.WaitDurable(lsn, config_.wal_commit_window_ms));
  }
  return Status::OK();
}

Status EmbeddingSearcher::RemoveColumnImpl(u32 column_id, u64* lsn) {
  const WriterLock writer(this);
  auto snap = PinSnapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "RemoveColumn before BuildIndex()/AddColumn()");
  }
  if (LiveLocked()) {
    DJ_RETURN_IF_ERROR(RepairWalLocked());
  }
  const auto it = col_to_index_.find(column_id);
  if (it == col_to_index_.end()) {
    return Status::NotFound("column " + std::to_string(column_id) +
                            " is not indexed (never added or already "
                            "removed)");
  }
  const u32 id = it->second;
  if (LiveLocked()) {
    DJ_RETURN_IF_ERROR(WalAppendRemove(id, lsn));
  }
  DJ_RETURN_IF_ERROR(snap->index->Remove(id));
  col_to_index_.erase(it);
  DeletesCounter()->Increment();
  const size_t dead = snap->index->deleted_count();
  TombstonesGauge()->Set(static_cast<double>(dead));
  // Auto-compaction keeps a churn-heavy index from filling up with
  // tombstones. Best-effort: compaction is an optimisation, so a failure
  // (e.g. an injected publish I/O error) does not fail the remove — the
  // tombstoned state stays fully consistent and a later trigger retries.
  if (dead >= config_.compact_min_dead &&
      static_cast<double>(dead) >= config_.compact_dead_fraction *
                                       static_cast<double>(
                                           snap->index->size())) {
    if (config_.compaction_pool != nullptr) {
      // Off-thread: the remove returns now; a worker takes the writer
      // token and compacts in the background (tombstoned reads stay
      // correct in the meantime).
      ScheduleCompaction();
    } else {
      CompactLocked().IgnoreError();
    }
  }
  return Status::OK();
}

void EmbeddingSearcher::ScheduleCompaction() {
  bool expected = false;
  // At most one queued/running background compact; concurrent triggers
  // collapse into it (and a later remove re-arms the trigger).
  if (!compact_scheduled_.compare_exchange_strong(expected, true)) return;
  config_.compaction_pool->Submit([this] {
    Compact().IgnoreError();  // best-effort, like the inline trigger
    compact_scheduled_.store(false);
  });
}

Status EmbeddingSearcher::Compact() {
  const WriterLock writer(this);
  return CompactLocked();
}

Status EmbeddingSearcher::CompactLocked() {
  auto snap = PinSnapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition("Compact before an index exists");
  }
  if (config_.backend != AnnBackend::kHnsw) {
    return Status::FailedPrecondition("Compact supports the HNSW backend only");
  }
  const auto* hnsw = static_cast<const ann::HnswIndex*>(snap->index.get());
  // Rebuild off to the side; searches keep hitting the old snapshot.
  std::vector<u32> new_to_old;
  auto compacted =
      std::make_shared<ann::HnswIndex>(hnsw->CompactedCopy(&new_to_old));
  auto map = std::make_shared<IdMap>(compacted->capacity());
  std::unordered_map<u32, u32> col_map;
  col_map.reserve(new_to_old.size());
  for (u32 nid = 0; nid < static_cast<u32>(new_to_old.size()); ++nid) {
    const u32 col = snap->to_column != nullptr
                        ? snap->to_column->At(new_to_old[nid])
                        : new_to_old[nid];
    map->Append(col);
    col_map[col] = nid;
  }
  IndexSnapshot next{std::move(compacted), map, generation_};
  if (LiveLocked()) {
    // Publish the compacted state as a durable generation BEFORE the
    // in-memory swap: a failure (or crash) leaves both disk and memory on
    // the previous, fully-consistent generation.
    next.generation = generation_ + 1;
    DJ_RETURN_IF_ERROR(PublishGenerationLocked(next));
    wal_poisoned_ = false;
  }
  map_ = std::move(map);
  col_to_index_ = std::move(col_map);
  Publish(std::make_shared<const IndexSnapshot>(std::move(next)));
  CompactionsCounter()->Increment();
  TombstonesGauge()->Set(0.0);
  return Status::OK();
}

Status EmbeddingSearcher::PublishSnapshot() {
  const WriterLock writer(this);
  if (!LiveLocked()) {
    return Status::FailedPrecondition("PublishSnapshot requires OpenLive()");
  }
  IndexSnapshot next = CurrentStateLocked(generation_ + 1);
  DJ_RETURN_IF_ERROR(PublishGenerationLocked(next));
  wal_poisoned_ = false;
  Publish(std::make_shared<const IndexSnapshot>(std::move(next)));
  return Status::OK();
}

void EmbeddingSearcher::AcquireWriter() const {
  MutexLock lock(writer_mu_);
  while (writer_busy_) writer_cv_.Wait(writer_mu_);
  writer_busy_ = true;
}

void EmbeddingSearcher::ReleaseWriter() const {
  {
    MutexLock lock(writer_mu_);
    writer_busy_ = false;
  }
  writer_cv_.NotifyOne();
}

u64 EmbeddingSearcher::generation() const {
  return generation_.load(std::memory_order_relaxed);
}

Status EmbeddingSearcher::OpenLive(const std::string& dir, Env* env) {
  if (config_.backend != AnnBackend::kHnsw) {
    return Status::FailedPrecondition(
        "OpenLive supports the HNSW backend only");
  }
  const WriterLock writer(this);
  if (LiveLocked()) {
    return Status::FailedPrecondition("OpenLive: searcher is already live");
  }
  env_ = env != nullptr ? env : Env::Default();
  dir_ = dir;
  Status st = env_->CreateDir(dir_);
  if (st.ok()) {
    if (env_->FileExists(ManifestPath())) {
      st = RecoverLocked();
    } else {
      // Fresh directory: persist whatever is in memory (an empty index
      // when the searcher is fresh too).
      st = EnsureIndexLocked();
    }
  }
  if (st.ok()) {
    // Roll the recovered (or initial) state forward as a new generation:
    // the WAL cannot be re-opened for append (NewWritableFile truncates),
    // so a fresh checkpoint + fresh WAL re-establishes durability.
    IndexSnapshot next = CurrentStateLocked(generation_ + 1);
    st = PublishGenerationLocked(next);
    if (st.ok()) {
      Publish(std::make_shared<const IndexSnapshot>(std::move(next)));
    }
  }
  if (!st.ok()) {
    // Leave the searcher in-memory only; the directory is untouched
    // beyond best-effort artifacts a future OpenLive overwrites.
    dir_.clear();
    env_ = nullptr;
    wal_.reset();
    wal_poisoned_ = false;
    return st;
  }
  return Status::OK();
}

Status EmbeddingSearcher::PublishGenerationLocked(const IndexSnapshot& state) {
  WallTimer timer;
  if (config_.wal_group_commit) {
    // Wait out any in-flight group fsync before the WAL file it targets
    // can be retired below.
    committer_.Drain();
  }
  const u64 gen = state.generation;
  const std::string index_path = IndexPath(gen);
  const u64 next_col = next_column_id_;
  // 1. Checkpoint (atomic: tmp + fsync + rename).
  Status st = AtomicSave(
      index_path, env_, [&](BinaryWriter& w) -> Status {
        w.WriteU32(kCheckpointMagic);
        w.WriteU32(kCheckpointVersion);
        w.WriteU64(next_col);
        w.WriteU32(state.to_column != nullptr ? 1 : 0);
        if (state.to_column != nullptr) {
          std::vector<u32> flat(state.to_column->size());
          for (u32 i = 0; i < static_cast<u32>(flat.size()); ++i) {
            flat[i] = state.to_column->At(i);
          }
          w.WriteU32Array(flat.data(), flat.size());
        }
        return ann::SaveIndexPayload(*state.index, w);
      });
  if (!st.ok()) return st;
  // 2. Fresh WAL for the new generation (header written + fsync'd so the
  // file is well-formed before the manifest can name it).
  std::unique_ptr<WritableFile> wal;
  st = env_->NewWritableFile(WalPath(gen), &wal);
  if (st.ok()) {
    std::string header;
    PutU32(&header, kWalMagic);
    PutU32(&header, kWalVersion);
    PutU64(&header, gen);
    st = wal->Append(header.data(), header.size());
    if (st.ok()) st = wal->Sync();
  }
  if (!st.ok()) {
    env_->RemoveFile(index_path).IgnoreError();
    return st;
  }
  // 3. Commit: flip the MANIFEST. Until this rename lands, recovery sees
  // the previous generation; after it, the new one.
  st = AtomicSave(
      ManifestPath(), env_, [&](BinaryWriter& w) -> Status {
        w.WriteU32(kManifestMagic);
        w.WriteU32(kManifestVersion);
        w.WriteU64(gen);
        w.WriteU64(generation_);  // retained fallback generation
        return w.status();
      });
  if (!st.ok()) {
    env_->RemoveFile(index_path).IgnoreError();
    env_->RemoveFile(WalPath(gen)).IgnoreError();
    return st;
  }
  // 4. Committed. Retire the grandparent (best-effort: stray files are
  // harmless and get overwritten if their generation number recurs).
  if (prev_generation_ != 0) {
    env_->RemoveFile(IndexPath(prev_generation_)).IgnoreError();
    env_->RemoveFile(WalPath(prev_generation_)).IgnoreError();
  }
  wal_ = std::move(wal);
  if (config_.wal_group_commit) {
    // The checkpoint above captured every applied mutation, so Reset
    // marks all outstanding LSNs durable and rebinds to the fresh WAL.
    committer_.Reset(wal_.get());
  }
  prev_generation_ = generation_;
  generation_ = gen;
  PublishHistogram()->Record(timer.ElapsedMillis());
  return Status::OK();
}

Status EmbeddingSearcher::RepairWalLocked() {
  if (config_.wal_group_commit && !committer_.Error().ok()) {
    // A shared fsync failed after its records were appended: the log may
    // end in frames that were never made durable. Same remedy as a torn
    // append — roll a fresh generation.
    wal_poisoned_ = true;
  }
  if (!wal_poisoned_) return Status::OK();
  // A WAL append failed mid-record, so the log may end in a torn frame —
  // appending more records after it would make them unreachable on replay
  // (replay stops at the first bad frame). Roll a fresh generation; until
  // that succeeds every mutation keeps failing while searches and the
  // durable previous generation stay intact.
  IndexSnapshot next = CurrentStateLocked(generation_ + 1);
  DJ_RETURN_IF_ERROR(PublishGenerationLocked(next));
  wal_poisoned_ = false;
  Publish(std::make_shared<const IndexSnapshot>(std::move(next)));
  return Status::OK();
}

Status EmbeddingSearcher::RecoverLocked() {
  BinaryReader reader(ManifestPath(), env_);
  DJ_RETURN_IF_ERROR(reader.Open());
  u32 magic = 0;
  u32 version = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kManifestMagic) {
    return Status::DataLoss("MANIFEST: bad magic");
  }
  DJ_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kManifestVersion) {
    return Status::DataLoss("MANIFEST: unsupported version");
  }
  u64 gen = 0;
  u64 prev = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU64(&gen));
  DJ_RETURN_IF_ERROR(reader.ReadU64(&prev));
  if (gen == 0) return Status::DataLoss("MANIFEST: generation 0");
  Status st = RecoverGenerationLocked(gen, prev);
  if (!st.ok() && prev != 0) {
    // The newest generation is unusable (its publish may have been cut
    // down by a crash after the manifest flip but... the manifest flip is
    // the commit point, so in practice: corruption). Its predecessor is
    // retained exactly for this.
    st = RecoverGenerationLocked(prev, 0);
  }
  return st;
}

Status EmbeddingSearcher::RecoverGenerationLocked(u64 gen, u64 manifest_prev) {
  // ---- Checkpoint ----
  BinaryReader reader(IndexPath(gen), env_);
  DJ_RETURN_IF_ERROR(reader.Open());
  u32 magic = 0;
  u32 version = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kCheckpointMagic) {
    return Status::DataLoss("checkpoint: bad magic");
  }
  DJ_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kCheckpointVersion) {
    return Status::DataLoss("checkpoint: unsupported version");
  }
  u64 next_col = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU64(&next_col));
  u32 has_map = 0;
  DJ_RETURN_IF_ERROR(reader.ReadU32(&has_map));
  std::vector<u32> flat;
  if (has_map != 0) {
    DJ_RETURN_IF_ERROR(reader.ReadU32Array(&flat));
  }
  // The embedded index may be a DJIX payload (current checkpoints) or the
  // legacy standalone HNSW payload (pre-DJIX checkpoints) — the dispatch
  // handles both. Default OpenOptions produce a live owned-float index,
  // which WAL replay below requires (InsertWithLevel).
  auto loaded = ann::LoadIndexPayload(reader);
  if (!loaded.ok()) return loaded.status();
  std::unique_ptr<ann::VectorIndex> any = std::move(loaded).value();
  if (std::strcmp(any->name(), "hnsw") != 0) {
    return Status::DataLoss("checkpoint: embedded index is not hnsw");
  }
  std::shared_ptr<ann::HnswIndex> index(
      static_cast<ann::HnswIndex*>(any.release()));
  if (index->read_only()) {
    return Status::DataLoss("checkpoint: embedded index is not replayable");
  }
  if (index->dim() != dim_) {
    return Status::InvalidArgument("live checkpoint dimensionality mismatch");
  }
  if (has_map != 0 && flat.size() != index->size()) {
    return Status::DataLoss("checkpoint: id map size mismatch");
  }
  std::shared_ptr<IdMap> map;
  if (has_map != 0) {
    map = std::make_shared<IdMap>(index->capacity());
    for (const u32 c : flat) map->Append(c);
  }
  // ---- WAL replay ----
  std::string wal;
  DJ_RETURN_IF_ERROR(ReadFileToString(env_, WalPath(gen), &wal));
  if (wal.size() < kWalHeaderBytes) {
    return Status::DataLoss("WAL: truncated header");
  }
  if (GetU32(wal.data()) != kWalMagic ||
      GetU32(wal.data() + 4) != kWalVersion) {
    return Status::DataLoss("WAL: bad header");
  }
  if (GetU64(wal.data() + 8) != gen) {
    return Status::DataLoss("WAL: generation mismatch");
  }
  const size_t vec_bytes = static_cast<size_t>(dim_) * sizeof(float);
  std::vector<float> vec(static_cast<size_t>(dim_));
  size_t off = kWalHeaderBytes;
  while (wal.size() - off >= 8) {
    const u32 len = GetU32(wal.data() + off);
    const u32 crc = GetU32(wal.data() + off + 4);
    if (static_cast<u64>(len) > wal.size() - off - 8) break;  // torn tail
    const char* payload = wal.data() + off + 8;
    // A bad CRC means the record (and therefore everything after it) was
    // never durably acknowledged: stop, exactly like EOF.
    if (Crc32c(payload, len) != crc) break;
    if (len < 1) return Status::DataLoss("WAL: empty record");
    const u8 tag = static_cast<u8>(payload[0]);
    if (tag == kWalInsert) {
      if (len != 9 + vec_bytes) {
        return Status::DataLoss("WAL: bad insert record size");
      }
      const u32 col = GetU32(payload + 1);
      const i32 level = static_cast<i32>(GetU32(payload + 5));
      std::memcpy(vec.data(), payload + 9, vec_bytes);
      u32 id = 0;
      // Recorded levels replace the RNG draw, so the replayed graph is
      // bit-identical to the pre-crash one.
      const Status st = index->InsertWithLevel(vec.data(), level, &id);
      if (!st.ok()) {
        return Status::DataLoss("WAL replay insert failed: " + st.ToString());
      }
      if (map != nullptr) {
        map->Append(col);
      } else if (col != id) {
        return Status::DataLoss("WAL: identity id mapping violated");
      }
      if (static_cast<u64>(col) + 1 > next_col) {
        next_col = static_cast<u64>(col) + 1;
      }
    } else if (tag == kWalRemove) {
      if (len != 5) return Status::DataLoss("WAL: bad remove record size");
      const u32 id = GetU32(payload + 1);
      if (id >= index->size()) {
        return Status::DataLoss("WAL: remove of unknown id");
      }
      const Status st = index->Remove(id);
      if (!st.ok()) {
        return Status::DataLoss("WAL replay remove failed: " + st.ToString());
      }
    } else {
      return Status::DataLoss("WAL: unknown record tag");
    }
    off += 8 + static_cast<size_t>(len);
  }
  // ---- Commit the recovered state ----
  std::unordered_map<u32, u32> col_map;
  const u32 n = static_cast<u32>(index->size());
  for (u32 id = 0; id < n; ++id) {
    if (index->IsDeleted(id)) continue;
    col_map[map != nullptr ? map->At(id) : id] = id;
  }
  next_column_id_ = static_cast<u32>(
      std::max<u64>(next_col, map != nullptr ? 0 : n));
  col_to_index_ = std::move(col_map);
  map_ = map;
  generation_ = gen;
  prev_generation_ = manifest_prev;
  wal_.reset();
  wal_poisoned_ = false;
  TombstonesGauge()->Set(static_cast<double>(index->deleted_count()));
  Publish(std::make_shared<const IndexSnapshot>(
      IndexSnapshot{std::move(index), std::move(map), gen}));
  return Status::OK();
}

Status EmbeddingSearcher::WalAppendInsert(u32 column_id, i32 level,
                                          const std::vector<float>& vec,
                                          u64* lsn) {
  wal_buf_.clear();
  wal_buf_.append(8, '\0');  // len + crc, patched below
  wal_buf_.push_back(static_cast<char>(kWalInsert));
  PutU32(&wal_buf_, column_id);
  PutU32(&wal_buf_, static_cast<u32>(level));
  wal_buf_.append(reinterpret_cast<const char*>(vec.data()),
                  vec.size() * sizeof(float));
  const u32 len = static_cast<u32>(wal_buf_.size() - 8);
  const u32 crc = Crc32c(wal_buf_.data() + 8, len);
  std::memcpy(&wal_buf_[0], &len, sizeof(len));
  std::memcpy(&wal_buf_[4], &crc, sizeof(crc));
  Status st = wal_->Append(wal_buf_.data(), wal_buf_.size());
  if (st.ok()) {
    WalRecordsCounter()->Increment();
    if (config_.wal_group_commit) {
      // Group commit: register the LSN now, fsync later (shared). The
      // caller acknowledges only after WaitDurable(*lsn) succeeds.
      *lsn = committer_.RecordAppended();
    } else {
      st = wal_->Sync();
      if (st.ok()) WalSyncsCounter()->Increment();
    }
  }
  if (!st.ok()) wal_poisoned_ = true;
  return st;
}

Status EmbeddingSearcher::WalAppendRemove(u32 index_id, u64* lsn) {
  wal_buf_.clear();
  wal_buf_.append(8, '\0');
  wal_buf_.push_back(static_cast<char>(kWalRemove));
  PutU32(&wal_buf_, index_id);
  const u32 len = static_cast<u32>(wal_buf_.size() - 8);
  const u32 crc = Crc32c(wal_buf_.data() + 8, len);
  std::memcpy(&wal_buf_[0], &len, sizeof(len));
  std::memcpy(&wal_buf_[4], &crc, sizeof(crc));
  Status st = wal_->Append(wal_buf_.data(), wal_buf_.size());
  if (st.ok()) {
    WalRecordsCounter()->Increment();
    if (config_.wal_group_commit) {
      *lsn = committer_.RecordAppended();
    } else {
      st = wal_->Sync();
      if (st.ok()) WalSyncsCounter()->Increment();
    }
  }
  if (!st.ok()) wal_poisoned_ = true;
  return st;
}

// ---- WalCommitter (group commit; SearcherConfig::wal_group_commit) ----

void EmbeddingSearcher::WalCommitter::Reset(WritableFile* file) {
  MutexLock lock(mu_);
  file_ = file;
  // Everything appended so far was applied in memory under the writer
  // token, and the caller (PublishGenerationLocked) just checkpointed that
  // very memory into the new generation — so every outstanding record is
  // durable through the checkpoint even though its old-WAL frame may not
  // be. Waiters on old LSNs are satisfied, not stranded.
  durable_ = appended_;
  sync_active_ = false;
  error_ = Status::OK();
  cv_.NotifyAll();
}

u64 EmbeddingSearcher::WalCommitter::RecordAppended() {
  MutexLock lock(mu_);
  return ++appended_;  // LSNs are monotonic across WAL files (see Reset)
}

Status EmbeddingSearcher::WalCommitter::WaitDurable(u64 lsn,
                                                    double window_ms)
    DJ_NO_THREAD_SAFETY_ANALYSIS {
  // Leader/follower: the first waiter to find no sync in flight becomes
  // the leader, lingers for the commit window so concurrent mutators'
  // records join, then issues ONE fsync for everything appended. The
  // manual Unlock around the fsync keeps blocking I/O outside the
  // critical section (DESIGN.md §10); the annotation-free analysis cannot
  // follow the hand-over-hand locking here.
  mu_.Lock();
  for (;;) {
    if (!error_.ok()) {
      const Status st = error_;
      mu_.Unlock();
      return st;
    }
    if (durable_ >= lsn) {
      mu_.Unlock();
      return Status::OK();
    }
    if (sync_active_) {
      // Ride on the in-flight (or imminent) sync. Bounded wait + re-check
      // rather than an unbounded sleep.
      (void)cv_.WaitFor(mu_, std::chrono::milliseconds(100));
      continue;
    }
    sync_active_ = true;
    if (window_ms > 0) {
      (void)cv_.WaitFor(
          mu_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::duration<double, std::milli>(window_ms)));
    }
    const u64 target = appended_;
    WritableFile* file = file_;
    mu_.Unlock();
    Status st = file->Sync();
    mu_.Lock();
    sync_active_ = false;
    if (st.ok()) {
      WalSyncsCounter()->Increment();
      if (target > durable_) durable_ = target;
    } else if (error_.ok()) {
      // Sticky: every waiter past durable_ fails, and the next mutation
      // repairs the WAL (RepairWalLocked) before appending anything.
      error_ = std::move(st);
    }
    cv_.NotifyAll();
  }
}

void EmbeddingSearcher::WalCommitter::Drain() {
  MutexLock lock(mu_);
  while (sync_active_) {
    (void)cv_.WaitFor(mu_, std::chrono::milliseconds(100));
  }
}

Status EmbeddingSearcher::WalCommitter::Error() const {
  MutexLock lock(mu_);
  return error_;
}

Status EmbeddingSearcher::SaveIndex(const std::string& path, Env* env,
                                    const ann::SaveOptions& save) const {
  auto snap = PinSnapshot();
  if (snap == nullptr) {
    return Status::FailedPrecondition(
        "SaveIndex before BuildIndex()/AddColumn()");
  }
  return ann::SaveIndexFile(*snap->index, path, save, env);
}

Status EmbeddingSearcher::LoadIndex(const std::string& path, Env* env,
                                    const ann::OpenOptions& open) {
  auto loaded = ann::OpenIndex(path, open, env);
  if (!loaded.ok()) return loaded.status();
  std::shared_ptr<ann::VectorIndex> index(std::move(loaded).value());
  if (index->dim() != dim_) {
    return Status::InvalidArgument("index dimensionality mismatch");
  }
  // Mutators downcast through config_.backend, so a kind mismatch would
  // be UB later — reject it here instead.
  const char* kind = index->name();
  const bool kind_matches =
      (config_.backend == AnnBackend::kFlat &&
       std::strcmp(kind, "flat") == 0) ||
      (config_.backend == AnnBackend::kHnsw &&
       std::strcmp(kind, "hnsw") == 0) ||
      (config_.backend == AnnBackend::kIvfPq &&
       std::strncmp(kind, "ivfpq", 5) == 0);
  if (!kind_matches) {
    return Status::FailedPrecondition(
        std::string("LoadIndex: file holds a '") + kind +
        "' index but the searcher is configured for a different backend");
  }
  const WriterLock writer(this);
  // Legacy single-file load: the id space resets to identity (the file
  // carries the graph only, not the column mapping — see the header).
  const u32 n = static_cast<u32>(index->size());
  next_column_id_ = n;
  col_to_index_.clear();
  for (u32 id = 0; id < n; ++id) {
    if (!index->IsDeleted(id)) col_to_index_[id] = id;
  }
  map_.reset();
  Publish(std::make_shared<const IndexSnapshot>(
      IndexSnapshot{std::move(index), nullptr, generation_}));
  if (LiveLocked()) {
    // Same as BuildIndex: the open WAL belongs to the replaced index.
    wal_poisoned_ = true;
    return RepairWalLocked();
  }
  return Status::OK();
}

EmbeddingSearcher::SearchResult EmbeddingSearcher::Search(
    const lake::Column& query, const SearchOptions& options) {
  SearchResult out;
  SearchInto(query, options, &out);
  return out;
}

void EmbeddingSearcher::SearchInto(const lake::Column& query,
                                   const SearchOptions& options,
                                   SearchResult* out) {
  // RCU read side: pin the snapshot once (a shared_ptr copy under a brief
  // lock) and run the whole query against it — a concurrent Compact or
  // BuildIndex swapping the current snapshot cannot pull the index out
  // from under this query.
  const auto snap = PinSnapshot();
  DJ_CHECK_MSG(snap != nullptr,
               "EmbeddingSearcher::Search() before BuildIndex()/LoadIndex()");
  out->ids.clear();
  trace::TraceCollector collector(options.collect_stats);
  {
    DJ_TRACE_SPAN("searcher.search");
    thread_local QueryScratch tls;
    if (tls.q.size() < static_cast<size_t>(dim_)) {
      // Warmup: the embedding buffer grows to dim_ once.
      tls.q.resize(static_cast<size_t>(dim_));  // dj_alloc: allow(alloc)
    }
    {
      DJ_TRACE_SPAN("searcher.encode");
      encoder_->EncodeInto(query, tls.q.data());
    }
    {
      DJ_TRACE_SPAN("searcher.ann");
      snap->index->SearchInto(tls.q.data(), options.k, AnnParamsFrom(options),
                              &tls.hits);
    }
    const IdMap* map = snap->to_column.get();
    for (const auto& h : tls.hits) {
      // Capacity-reusing result buffer; growth is warmup-only.
      out->ids.push_back(map != nullptr ? map->At(h.id)  // dj_alloc: allow(alloc)
                                        : h.id);
    }
  }
  SearchesCounter()->Increment();
  if (options.collect_stats) {
    // Per-query stats allocate by design; collect_stats == true is
    // excluded from the noalloc steady state (see the header contract).
    out->stats = collector.Finish();  // dj_alloc: allow(alloc)
  }
}

std::vector<EmbeddingSearcher::SearchResult> EmbeddingSearcher::SearchBatch(
    const std::vector<lake::Column>& queries, const SearchOptions& options,
    ThreadPool* pool) {
  const auto snap = PinSnapshot();
  DJ_CHECK_MSG(
      snap != nullptr,
      "EmbeddingSearcher::SearchBatch() before BuildIndex()/LoadIndex()");
  std::vector<SearchResult> outputs(queries.size());
  if (queries.empty()) return outputs;
  DJ_TRACE_SPAN("searcher.search_batch");

  // Encoding is the parallel stage (it dominates; §5.4). One flat buffer
  // for the whole batch; EncodeInto avoids per-query allocation. Worker
  // threads carry no trace collector, so the encode stage is reported
  // amortised per query below — that *is* its per-query cost when the
  // stage runs batched.
  std::vector<float> embeddings(queries.size() * static_cast<size_t>(dim_));
  WallTimer encode;
  auto encode_one = [&](size_t i) {
    encoder_->EncodeInto(queries[i],
                         embeddings.data() + i * static_cast<size_t>(dim_));
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(queries.size(), encode_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) encode_one(i);
  }
  const double encode_ms_per_query =
      encode.ElapsedMillis() / static_cast<double>(queries.size());

  const ann::AnnSearchParams ann_params = AnnParamsFrom(options);
  const IdMap* map = snap->to_column.get();
  std::vector<ann::Neighbor> hits;  // reused across the batch loop
  for (size_t i = 0; i < queries.size(); ++i) {
    trace::TraceCollector collector(options.collect_stats);
    {
      DJ_TRACE_SPAN("searcher.ann");
      snap->index->SearchInto(
          embeddings.data() + i * static_cast<size_t>(dim_), options.k,
          ann_params, &hits);
    }
    outputs[i].ids.reserve(hits.size());
    for (const auto& h : hits) {
      outputs[i].ids.push_back(map != nullptr ? map->At(h.id) : h.id);
    }
    if (options.collect_stats) {
      // Graft amortised encode + exact ANN under a synthetic per-query
      // root, so children sum to the root by construction.
      trace::QueryStats ann_stats = collector.Finish();
      trace::SpanNode enc;
      enc.name = "searcher.encode";
      enc.elapsed_ms = encode_ms_per_query;
      trace::SpanNode root;
      root.name = "searcher.search";
      root.elapsed_ms = encode_ms_per_query + ann_stats.root.elapsed_ms;
      root.children.push_back(std::move(enc));
      root.children.push_back(std::move(ann_stats.root));
      outputs[i].stats.root = std::move(root);
      outputs[i].stats.counters = std::move(ann_stats.counters);
    }
  }
  SearchesCounter()->Add(queries.size());
  return outputs;
}

void EmbeddingSearcher::SearchBatchInto(const lake::Column* const* queries,
                                        size_t n, const SearchOptions& options,
                                        ThreadPool* pool, BatchScratch* scratch,
                                        SearchResult* const* outs) {
  if (n == 0) return;
  const auto snap = PinSnapshot();
  DJ_CHECK_MSG(
      snap != nullptr,
      "EmbeddingSearcher::SearchBatchInto() before BuildIndex()/AddColumn()");
  // Encode the whole batch into the caller's scratch (capacity-reusing).
  if (scratch->embeddings.size() < n * static_cast<size_t>(dim_)) {
    scratch->embeddings.resize(n * static_cast<size_t>(dim_));
  }
  auto encode_one = [&](size_t i) {
    encoder_->EncodeInto(*queries[i], scratch->embeddings.data() +
                                          i * static_cast<size_t>(dim_));
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, encode_one);
  } else {
    for (size_t i = 0; i < n; ++i) encode_one(i);
  }
  // One index call for the whole batch — the flat backend streams the
  // corpus once per batch here instead of once per query.
  if (scratch->hits.size() < n) scratch->hits.resize(n);
  snap->index->SearchBatchInto(scratch->embeddings.data(), n, options.k,
                               AnnParamsFrom(options), scratch->hits.data());
  const IdMap* map = snap->to_column.get();
  for (size_t i = 0; i < n; ++i) {
    outs[i]->ids.clear();
    for (const auto& h : scratch->hits[i]) {
      outs[i]->ids.push_back(map != nullptr ? map->At(h.id) : h.id);
    }
  }
  SearchesCounter()->Add(n);
}

EmbeddingSearcher::StreamScan EmbeddingSearcher::NewStreamScan() const {
  StreamScan s;
  s.searcher_ = this;
  s.snap_ = PinSnapshot();
  if (s.snap_ != nullptr) {
    const ann::FlatIndex* const flat = s.snap_->index->AsFlat();
    if (flat != nullptr) {
      s.scan_ = std::make_unique<ann::FlatIndex::SharedScan>(flat);
    }
  }
  return s;
}

bool EmbeddingSearcher::StreamScan::stale() const {
  return searcher_ != nullptr && searcher_->PinSnapshot() != snap_;
}

size_t EmbeddingSearcher::StreamScan::Board(const lake::Column& query,
                                            size_t k) {
  DJ_CHECK_MSG(valid(), "StreamScan::Board on an invalid session");
  const size_t d = static_cast<size_t>(searcher_->dim_);
  if (qbuf_.size() < d) qbuf_.resize(d);
  searcher_->encoder_->EncodeInto(query, qbuf_.data());
  return scan_->Board(qbuf_.data(), k);
}

void EmbeddingSearcher::StreamScan::Harvest(size_t slot, SearchResult* out) {
  scan_->Harvest(slot, &hitbuf_);
  const IdMap* const map = snap_->to_column.get();
  out->ids.clear();
  for (const auto& h : hitbuf_) {
    out->ids.push_back(map != nullptr ? map->At(h.id) : h.id);
  }
  SearchesCounter()->Increment();
}

size_t EmbeddingSearcher::index_size() const {
  const auto snap = PinSnapshot();
  return snap != nullptr ? snap->index->size() : 0;
}

size_t EmbeddingSearcher::live_size() const {
  const auto snap = PinSnapshot();
  return snap != nullptr ? snap->index->size() - snap->index->deleted_count()
                         : 0;
}

const ann::VectorIndex& EmbeddingSearcher::index() const {
  const auto snap = PinSnapshot();
  DJ_CHECK_MSG(snap != nullptr,
               "EmbeddingSearcher::index() before BuildIndex()/LoadIndex()");
  return *snap->index;
}

}  // namespace core
}  // namespace deepjoin
