#include "core/searcher.h"

namespace deepjoin {
namespace core {

EmbeddingSearcher::EmbeddingSearcher(ColumnEncoder* encoder,
                                     const SearcherConfig& config)
    : encoder_(encoder), config_(config), dim_(encoder->dim()) {}

void EmbeddingSearcher::BuildIndex(const lake::Repository& repo,
                                   ThreadPool* pool) {
  std::vector<float> embeddings(repo.size() * static_cast<size_t>(dim_));
  // EncodeInto writes straight into the flat buffer — no per-column
  // vector allocation on the hot indexing path.
  auto encode_one = [&](size_t i) {
    encoder_->EncodeInto(repo.column(static_cast<u32>(i)),
                         embeddings.data() + i * static_cast<size_t>(dim_));
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(repo.size(), encode_one);
  } else {
    for (size_t i = 0; i < repo.size(); ++i) encode_one(i);
  }
  switch (config_.backend) {
    case AnnBackend::kFlat:
      index_ = std::make_unique<ann::FlatIndex>(dim_);
      break;
    case AnnBackend::kHnsw: {
      ann::HnswConfig hc;
      hc.dim = dim_;
      hc.M = config_.hnsw_M;
      hc.ef_construction = config_.hnsw_ef_construction;
      hc.ef_search = config_.hnsw_ef_search;
      index_ = std::make_unique<ann::HnswIndex>(hc);
      break;
    }
    case AnnBackend::kIvfPq: {
      ann::IvfPqConfig ic;
      ic.dim = dim_;
      ic.nlist = config_.ivfpq_nlist;
      ic.m = config_.ivfpq_m;
      ic.nbits = config_.ivfpq_nbits;
      ic.nprobe = config_.ivfpq_nprobe;
      auto idx = std::make_unique<ann::IvfPqIndex>(ic);
      idx->Train(embeddings.data(), repo.size());
      index_ = std::move(idx);
      break;
    }
  }
  index_->AddBatch(embeddings.data(), repo.size());
}

u32 EmbeddingSearcher::AddColumn(const lake::Column& column) {
  if (index_ == nullptr) {
    // First column of an empty searcher: start an index (IVFPQ cannot —
    // its quantizer needs training data).
    DJ_CHECK_MSG(config_.backend != AnnBackend::kIvfPq,
                 "IVFPQ needs BuildIndex() before incremental adds");
    lake::Repository empty;
    BuildIndex(empty);
  }
  const auto v = encoder_->Encode(column);
  index_->Add(v.data());
  return static_cast<u32>(index_->size() - 1);
}

Status EmbeddingSearcher::SaveIndex(const std::string& path,
                                    Env* env) const {
  if (config_.backend != AnnBackend::kHnsw || index_ == nullptr) {
    return Status::FailedPrecondition(
        "SaveIndex supports a built HNSW index only");
  }
  const auto* hnsw = static_cast<const ann::HnswIndex*>(index_.get());
  return AtomicSave(path, env, [hnsw](BinaryWriter& writer) -> Status {
    hnsw->Save(writer);
    return writer.status();
  });
}

Status EmbeddingSearcher::LoadIndex(const std::string& path, Env* env) {
  if (config_.backend != AnnBackend::kHnsw) {
    return Status::FailedPrecondition("LoadIndex supports HNSW only");
  }
  BinaryReader reader(path, env);
  DJ_RETURN_IF_ERROR(reader.Open());
  auto loaded = ann::HnswIndex::Load(reader);
  if (!loaded.ok()) return loaded.status();
  if (loaded->dim() != dim_) {
    return Status::InvalidArgument("index dimensionality mismatch");
  }
  index_ = std::make_unique<ann::HnswIndex>(std::move(loaded).value());
  return Status::OK();
}

EmbeddingSearcher::SearchOutput EmbeddingSearcher::Search(
    const lake::Column& query, size_t k) {
  DJ_CHECK_MSG(index_ != nullptr, "Search() before BuildIndex()");
  SearchOutput out;
  WallTimer total;
  WallTimer encode;
  std::vector<float> q(static_cast<size_t>(dim_));
  encoder_->EncodeInto(query, q.data());
  out.encode_ms = encode.ElapsedMillis();
  const auto hits = index_->Search(q.data(), k);
  out.total_ms = total.ElapsedMillis();
  out.ids.reserve(hits.size());
  for (const auto& h : hits) out.ids.push_back(h.id);
  return out;
}

std::vector<EmbeddingSearcher::SearchOutput> EmbeddingSearcher::SearchBatch(
    const std::vector<lake::Column>& queries, size_t k, ThreadPool* pool) {
  DJ_CHECK_MSG(index_ != nullptr, "SearchBatch() before BuildIndex()");
  std::vector<SearchOutput> outputs(queries.size());
  WallTimer total;
  // Encoding is the parallel stage (it dominates; §5.4). One flat buffer
  // for the whole batch; EncodeInto avoids per-query allocation.
  std::vector<float> embeddings(queries.size() * static_cast<size_t>(dim_));
  WallTimer encode;
  auto encode_one = [&](size_t i) {
    encoder_->EncodeInto(queries[i],
                         embeddings.data() + i * static_cast<size_t>(dim_));
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(queries.size(), encode_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) encode_one(i);
  }
  const double encode_ms = encode.ElapsedMillis();
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto hits =
        index_->Search(embeddings.data() + i * static_cast<size_t>(dim_), k);
    outputs[i].ids.reserve(hits.size());
    for (const auto& h : hits) outputs[i].ids.push_back(h.id);
  }
  const double total_ms = total.ElapsedMillis();
  const double n = static_cast<double>(std::max<size_t>(1, queries.size()));
  for (auto& o : outputs) {
    o.encode_ms = encode_ms / n;  // amortised per query
    o.total_ms = total_ms / n;
  }
  return outputs;
}

}  // namespace core
}  // namespace deepjoin
