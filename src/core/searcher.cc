#include "core/searcher.h"

#include <algorithm>

#include "util/timer.h"

namespace deepjoin {
namespace core {

namespace {

ann::AnnSearchParams AnnParamsFrom(const SearchOptions& options) {
  ann::AnnSearchParams params;
  params.ef_search = options.ef_search;
  params.nprobe = options.nprobe;
  return params;
}

metrics::Counter* SearchesCounter() {
  // Function-local static: the registry lookup allocates once per process,
  // before the steady state the noalloc contract covers.
  static metrics::Counter* const c =
      metrics::MetricsRegistry::Global().GetCounter(  // dj_alloc: allow(alloc)
          "dj_searcher_searches_total");
  return c;
}

// Per-thread query scratch for the allocation-free search path: every
// buffer grows to its working size during warmup and then reuses capacity.
struct QueryScratch {
  std::vector<float> q;               // encoded query embedding
  std::vector<ann::Neighbor> hits;    // raw index results
};

}  // namespace

EmbeddingSearcher::EmbeddingSearcher(ColumnEncoder* encoder,
                                     const SearcherConfig& config)
    : encoder_(encoder), config_(config), dim_(encoder->dim()) {}

Status EmbeddingSearcher::BuildIndex(const lake::Repository& repo,
                                     ThreadPool* pool, BuildStats* stats) {
  if (config_.backend == AnnBackend::kIvfPq && repo.size() == 0) {
    return Status::InvalidArgument(
        "IVFPQ BuildIndex needs a non-empty repository: the coarse "
        "quantizer trains on the indexed columns");
  }
  trace::TraceCollector collector(stats != nullptr);
  {
    DJ_TRACE_SPAN("searcher.build");
    std::vector<float> embeddings(repo.size() * static_cast<size_t>(dim_));
    {
      DJ_TRACE_SPAN("searcher.build_encode");
      // EncodeInto writes straight into the flat buffer — no per-column
      // vector allocation on the hot indexing path.
      auto encode_one = [&](size_t i) {
        encoder_->EncodeInto(
            repo.column(static_cast<u32>(i)),
            embeddings.data() + i * static_cast<size_t>(dim_));
      };
      if (pool != nullptr && pool->num_threads() > 1) {
        pool->ParallelFor(repo.size(), encode_one);
      } else {
        for (size_t i = 0; i < repo.size(); ++i) encode_one(i);
      }
    }
    {
      DJ_TRACE_SPAN("searcher.build_index");
      switch (config_.backend) {
        case AnnBackend::kFlat:
          index_ = std::make_unique<ann::FlatIndex>(dim_);
          break;
        case AnnBackend::kHnsw: {
          ann::HnswConfig hc;
          hc.dim = dim_;
          hc.M = config_.hnsw_M;
          hc.ef_construction = config_.hnsw_ef_construction;
          hc.ef_search = config_.hnsw_ef_search;
          index_ = std::make_unique<ann::HnswIndex>(hc);
          break;
        }
        case AnnBackend::kIvfPq: {
          ann::IvfPqConfig ic;
          ic.dim = dim_;
          ic.nlist = config_.ivfpq_nlist;
          ic.m = config_.ivfpq_m;
          ic.nbits = config_.ivfpq_nbits;
          ic.nprobe = config_.ivfpq_nprobe;
          auto idx = std::make_unique<ann::IvfPqIndex>(ic);
          idx->Train(embeddings.data(), repo.size());
          index_ = std::move(idx);
          break;
        }
      }
      index_->AddBatch(embeddings.data(), repo.size());
    }
  }
  {
    static metrics::Counter* const builds =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_searcher_builds_total");
    static metrics::Counter* const indexed =
        metrics::MetricsRegistry::Global().GetCounter(
            "dj_searcher_columns_indexed_total");
    builds->Increment();
    indexed->Add(repo.size());
  }
  if (stats != nullptr) {
    stats->columns = repo.size();
    stats->trace = collector.Finish();
  }
  return Status::OK();
}

Result<u32> EmbeddingSearcher::AddColumn(const lake::Column& column) {
  if (index_ == nullptr) {
    // First column of an empty searcher: start an index (IVFPQ cannot —
    // its quantizer needs training data).
    if (config_.backend == AnnBackend::kIvfPq) {
      return Status::FailedPrecondition(
          "IVFPQ needs BuildIndex() before incremental adds");
    }
    lake::Repository empty;
    DJ_RETURN_IF_ERROR(BuildIndex(empty));
  }
  const auto v = encoder_->Encode(column);
  index_->Add(v.data());
  return static_cast<u32>(index_->size() - 1);
}

Status EmbeddingSearcher::SaveIndex(const std::string& path,
                                    Env* env) const {
  if (config_.backend != AnnBackend::kHnsw || index_ == nullptr) {
    return Status::FailedPrecondition(
        "SaveIndex supports a built HNSW index only");
  }
  const auto* hnsw = static_cast<const ann::HnswIndex*>(index_.get());
  return AtomicSave(path, env, [hnsw](BinaryWriter& writer) -> Status {
    hnsw->Save(writer);
    return writer.status();
  });
}

Status EmbeddingSearcher::LoadIndex(const std::string& path, Env* env) {
  if (config_.backend != AnnBackend::kHnsw) {
    return Status::FailedPrecondition("LoadIndex supports HNSW only");
  }
  BinaryReader reader(path, env);
  DJ_RETURN_IF_ERROR(reader.Open());
  auto loaded = ann::HnswIndex::Load(reader);
  if (!loaded.ok()) return loaded.status();
  if (loaded->dim() != dim_) {
    return Status::InvalidArgument("index dimensionality mismatch");
  }
  index_ = std::make_unique<ann::HnswIndex>(std::move(loaded).value());
  return Status::OK();
}

EmbeddingSearcher::SearchResult EmbeddingSearcher::Search(
    const lake::Column& query, const SearchOptions& options) {
  SearchResult out;
  SearchInto(query, options, &out);
  return out;
}

void EmbeddingSearcher::SearchInto(const lake::Column& query,
                                   const SearchOptions& options,
                                   SearchResult* out) {
  DJ_CHECK_MSG(index_ != nullptr,
               "EmbeddingSearcher::Search() before BuildIndex()/LoadIndex()");
  out->ids.clear();
  trace::TraceCollector collector(options.collect_stats);
  {
    DJ_TRACE_SPAN("searcher.search");
    thread_local QueryScratch tls;
    if (tls.q.size() < static_cast<size_t>(dim_)) {
      // Warmup: the embedding buffer grows to dim_ once.
      tls.q.resize(static_cast<size_t>(dim_));  // dj_alloc: allow(alloc)
    }
    {
      DJ_TRACE_SPAN("searcher.encode");
      encoder_->EncodeInto(query, tls.q.data());
    }
    {
      DJ_TRACE_SPAN("searcher.ann");
      index_->SearchInto(tls.q.data(), options.k, AnnParamsFrom(options),
                         &tls.hits);
    }
    for (const auto& h : tls.hits) {
      // Capacity-reusing result buffer; growth is warmup-only.
      out->ids.push_back(h.id);  // dj_alloc: allow(alloc)
    }
  }
  SearchesCounter()->Increment();
  if (options.collect_stats) {
    // Per-query stats allocate by design; collect_stats == true is
    // excluded from the noalloc steady state (see the header contract).
    out->stats = collector.Finish();  // dj_alloc: allow(alloc)
  }
}

std::vector<EmbeddingSearcher::SearchResult> EmbeddingSearcher::SearchBatch(
    const std::vector<lake::Column>& queries, const SearchOptions& options,
    ThreadPool* pool) {
  DJ_CHECK_MSG(
      index_ != nullptr,
      "EmbeddingSearcher::SearchBatch() before BuildIndex()/LoadIndex()");
  std::vector<SearchResult> outputs(queries.size());
  if (queries.empty()) return outputs;
  DJ_TRACE_SPAN("searcher.search_batch");

  // Encoding is the parallel stage (it dominates; §5.4). One flat buffer
  // for the whole batch; EncodeInto avoids per-query allocation. Worker
  // threads carry no trace collector, so the encode stage is reported
  // amortised per query below — that *is* its per-query cost when the
  // stage runs batched.
  std::vector<float> embeddings(queries.size() * static_cast<size_t>(dim_));
  WallTimer encode;
  auto encode_one = [&](size_t i) {
    encoder_->EncodeInto(queries[i],
                         embeddings.data() + i * static_cast<size_t>(dim_));
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(queries.size(), encode_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) encode_one(i);
  }
  const double encode_ms_per_query =
      encode.ElapsedMillis() / static_cast<double>(queries.size());

  const ann::AnnSearchParams ann_params = AnnParamsFrom(options);
  std::vector<ann::Neighbor> hits;  // reused across the batch loop
  for (size_t i = 0; i < queries.size(); ++i) {
    trace::TraceCollector collector(options.collect_stats);
    {
      DJ_TRACE_SPAN("searcher.ann");
      index_->SearchInto(embeddings.data() + i * static_cast<size_t>(dim_),
                         options.k, ann_params, &hits);
    }
    outputs[i].ids.reserve(hits.size());
    for (const auto& h : hits) outputs[i].ids.push_back(h.id);
    if (options.collect_stats) {
      // Graft amortised encode + exact ANN under a synthetic per-query
      // root, so children sum to the root by construction.
      trace::QueryStats ann_stats = collector.Finish();
      trace::SpanNode enc;
      enc.name = "searcher.encode";
      enc.elapsed_ms = encode_ms_per_query;
      trace::SpanNode root;
      root.name = "searcher.search";
      root.elapsed_ms = encode_ms_per_query + ann_stats.root.elapsed_ms;
      root.children.push_back(std::move(enc));
      root.children.push_back(std::move(ann_stats.root));
      outputs[i].stats.root = std::move(root);
      outputs[i].stats.counters = std::move(ann_stats.counters);
    }
  }
  SearchesCounter()->Add(queries.size());
  return outputs;
}

}  // namespace core
}  // namespace deepjoin
